// Quickstart: simulate one hour of the tunable-harvester-powered wireless
// sensor node at the paper's original configuration (4 MHz MCU clock,
// 320 s watchdog, 5 s transmission interval) and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "dse/rsm_flow.hpp"
#include "dse/system_evaluator.hpp"

int main() {
    using namespace ehdse;

    // Default scenario = paper section V: 60 mg base acceleration, input
    // frequency stepping 64 -> 69 -> 74 Hz every 25 minutes, 1 h horizon.
    dse::system_evaluator evaluator;

    dse::system_config config = dse::system_config::original();
    std::printf("configuration: clock=%.0f Hz, watchdog=%.0f s, tx interval=%.3f s\n",
                config.mcu_clock_hz, config.watchdog_period_s, config.tx_interval_s);

    dse::evaluation_options opts;
    opts.record_traces = true;
    const dse::evaluation_result r = evaluator.evaluate(config, opts);

    std::printf("\n=== one hour of simulated operation ===\n");
    std::printf("transmissions           : %llu (of which %llu in the 2.7-2.8 V band)\n",
                static_cast<unsigned long long>(r.transmissions),
                static_cast<unsigned long long>(r.low_band_transmissions));
    std::printf("supercap voltage        : start 2.800 V, end %.3f V (min %.3f, max %.3f)\n",
                r.final_voltage_v, r.min_voltage_v, r.max_voltage_v);
    std::printf("harvested into store    : %.1f mJ\n", r.harvested_energy_j * 1e3);
    std::printf("burst withdrawals       : %.1f mJ\n", r.withdrawn_energy_j * 1e3);
    std::printf("sustained (sleep) loads : %.1f mJ\n", r.sustained_load_energy_j * 1e3);

    std::printf("\ntuning controller: %llu wakeups, %llu measurements, "
                "%llu coarse moves (%llu steps), %llu fine iterations (%llu steps)\n",
                static_cast<unsigned long long>(r.tuning.wakeups),
                static_cast<unsigned long long>(r.tuning.measurements),
                static_cast<unsigned long long>(r.tuning.coarse_tunings),
                static_cast<unsigned long long>(r.tuning.coarse_steps),
                static_cast<unsigned long long>(r.tuning.fine_iterations),
                static_cast<unsigned long long>(r.tuning.fine_steps));

    std::printf("\nenergy ledger (discrete withdrawals):\n");
    for (const auto& [account, joules] : r.ledger.accounts())
        std::printf("  %-24s %8.2f mJ\n", account.c_str(), joules * 1e3);

    std::printf("\nkernel: %zu ODE steps, %llu events, sim %s\n", r.ode_steps,
                static_cast<unsigned long long>(r.events), r.sim_ok ? "ok" : "FAILED");
    return 0;
}
