// Telemetry logger: the paper's actual application (Fig. 3) — the node
// senses the environment temperature and reports it, with the
// supercapacitor voltage, over the radio. This example plays the role of
// the PC-side receiver: it runs 30 minutes of the system against a daily
// temperature profile and writes the received packet log as CSV.
//
//   ./build/examples/telemetry_logger > telemetry.csv
#include <cmath>
#include <cstdio>
#include <numbers>

#include "dse/envelope_system.hpp"
#include "harvester/tuning_table.hpp"
#include "mcu/tuning_controller.hpp"
#include "node/sensor_node.hpp"

int main() {
    using namespace ehdse;

    harvester::microgenerator gen;
    harvester::tuning_table table(gen);
    const auto vib =
        harvester::vibration_source::stepped_mg(60.0, 64.0, 5.0, 900.0, 1);

    dse::envelope_system system(gen, vib);
    auto x0 = system.initial_state(2.85, table.lookup(64.0));
    sim::ode_options ode;
    ode.max_dt = 5.0;
    sim::simulator sim(system, std::move(x0), ode);
    system.attach(sim);

    node::node_params np;
    np.fast_interval_s = 10.0;
    node::sensor_node node(sim, system, np);
    mcu::tuning_controller controller(sim, system, table, {});

    // Environment: a slow daily swing plus a mild machine-heating ramp.
    node.enable_telemetry([](double t) {
        return 21.5 + 3.0 * std::sin(2.0 * std::numbers::pi * t / 86400.0) +
               1.5e-3 * std::min(t, 1800.0) / 60.0;
    });

    sim.run_until(1800.0);

    std::fprintf(stderr,
                 "received %zu packets over 30 minutes (radio has no ACKs; "
                 "every transmitted packet is logged)\n",
                 node.telemetry().size());
    std::printf("time_s,temperature_c,supercap_v\n");
    for (const auto& pkt : node.telemetry())
        std::printf("%.1f,%.3f,%.4f\n", pkt.time_s, pkt.temperature_c,
                    pkt.supercap_v);
    return 0;
}
