// Design trade-offs tour: the extension stack in one walkthrough —
// fit two response surfaces from one DOE, sweep the Pareto front with
// NSGA-II, check the surfaces' statistical credentials, and compare
// storage technologies for the chosen design.
//
//   ./build/examples/design_tradeoffs
#include <cstdio>
#include <memory>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "dse/system_evaluator.hpp"
#include "opt/nsga2.hpp"
#include "power/battery.hpp"
#include "rsm/anova.hpp"
#include "rsm/quadratic_model.hpp"
#include "rsm/sensitivity.hpp"

int main() {
    using namespace ehdse;

    dse::system_evaluator evaluator;
    const auto space = dse::paper_design_space();
    power::supercapacitor cap;

    // --- one DOE (16 runs so the fits are statistically assessable) ---
    const auto candidates = doe::full_factorial(3, 3);
    const auto selection = doe::d_optimal_design(
        candidates, [](const numeric::vec& x) { return rsm::quadratic_basis(x); },
        16);
    std::printf("DOE: %zu D-optimal runs of %zu candidates\n\n",
                selection.selected.size(), candidates.size());

    std::vector<numeric::vec> pts;
    numeric::vec y_tx, y_reserve;
    for (std::size_t idx : selection.selected) {
        const auto& coded = candidates[idx];
        const auto r = evaluator.evaluate(dse::config_from_coded(space, coded));
        pts.push_back(coded);
        y_tx.push_back(static_cast<double>(r.transmissions));
        y_reserve.push_back(cap.energy_at(r.final_voltage_v) * 1e3);
    }
    const auto fit_tx = rsm::fit_quadratic(pts, y_tx);
    const auto fit_reserve = rsm::fit_quadratic(pts, y_reserve);

    // --- credentials: which inputs drive each output? ---
    const auto sens_tx = rsm::sobol_indices(fit_tx.model);
    const auto sens_rv = rsm::sobol_indices(fit_reserve.model);
    std::printf("Sobol total indices      x1      x2      x3\n");
    std::printf("  transmissions       %5.1f%%  %5.1f%%  %5.1f%%\n",
                100 * sens_tx.total_order[0], 100 * sens_tx.total_order[1],
                100 * sens_tx.total_order[2]);
    std::printf("  final reserve       %5.1f%%  %5.1f%%  %5.1f%%\n\n",
                100 * sens_rv.total_order[0], 100 * sens_rv.total_order[1],
                100 * sens_rv.total_order[2]);

    const auto anova = rsm::analyse_fit(pts, y_tx, fit_tx);
    std::printf("transmissions surface: R^2 %.3f, F = %.1f (p = %.4f)\n\n",
                anova.r_squared, anova.f_statistic, anova.f_p_value);

    // --- the trade-off front ---
    numeric::rng rng(2026);
    const auto front = opt::nsga2().optimize(
        [&](const numeric::vec& x) {
            return numeric::vec{fit_tx.model.predict(x),
                                fit_reserve.model.predict(x)};
        },
        2, opt::box_bounds::unit(3), rng);
    std::printf("Pareto front (%zu points), three picks:\n", front.size());
    for (const double pick : {0.05, 0.5, 0.95}) {
        const auto& p = front[static_cast<std::size_t>(pick * (front.size() - 1))];
        const auto cfg = dse::config_from_coded(space, p.x);
        std::printf("  interval %7.3f s -> ~%4.0f tx, ~%4.0f mJ reserve\n",
                    cfg.tx_interval_s, p.objectives[0], p.objectives[1]);
    }

    // --- storage technology check for the max-transmissions pick ---
    const auto& knee = front.back();
    const auto cfg = dse::config_from_coded(space, knee.x);
    std::printf("\nmax-transmissions design on two storage technologies:\n");
    const auto on_cap = evaluator.evaluate(cfg);
    std::printf("  supercapacitor : %llu tx, %.3f-%.3f V\n",
                static_cast<unsigned long long>(on_cap.transmissions),
                on_cap.min_voltage_v, on_cap.max_voltage_v);
    evaluator.set_storage(std::make_shared<power::thin_film_battery>());
    const auto on_bat = evaluator.evaluate(cfg);
    std::printf("  thin-film cell : %llu tx, %.3f-%.3f V\n",
                static_cast<unsigned long long>(on_bat.transmissions),
                on_bat.min_voltage_v, on_bat.max_voltage_v);
    return 0;
}
