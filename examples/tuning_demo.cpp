// Tuning demo: watch the two-stage controller (Algorithms 1-3) track a
// wandering ambient frequency over 40 minutes, printing every actuator
// move and a timeline of resonant vs ambient frequency.
//
//   ./build/examples/tuning_demo
#include <cstdio>

#include "dse/envelope_system.hpp"
#include "dse/system_evaluator.hpp"
#include "harvester/envelope.hpp"

int main() {
    using namespace ehdse;

    // A harsher stimulus than the paper's: four 3 Hz hops.
    harvester::microgenerator gen;
    harvester::tuning_table table(gen);
    const auto vib =
        harvester::vibration_source::stepped_mg(60.0, 65.0, 3.0, 600.0, 4);

    dse::envelope_system system(gen, vib);
    const int start_pos = table.lookup(65.0);
    auto x0 = system.initial_state(2.85, start_pos);

    sim::ode_options ode;
    ode.max_dt = 5.0;
    sim::simulator sim(system, std::move(x0), ode);
    system.attach(sim);

    mcu::controller_params ctl;
    ctl.watchdog_period_s = 120.0;
    ctl.mcu.clock_hz = 4e6;
    node::sensor_node node(sim, system, {});
    mcu::tuning_controller controller(sim, system, table, ctl);

    std::printf("t(s)    ambient(Hz)  resonant(Hz)  position  V(store)  P(store)\n");
    std::printf("------------------------------------------------------------------\n");
    for (int minute = 0; minute <= 40; ++minute) {
        const double t = minute * 60.0;
        if (t > 0.0) sim.run_until(t);
        const double f_in = vib.frequency_at(t);
        const int pos = system.position();
        const double fr = gen.resonant_frequency(pos);
        const double v = sim.state_at(dse::envelope_system::ix_voltage);
        const auto op = harvester::solve_envelope(
            gen, pos, f_in, vib.amplitude_at(t), v, {});
        std::printf("%5.0f   %8.2f    %8.2f     %5d    %6.3f V  %6.1f uW %s\n", t,
                    f_in, fr, pos, v, op.elec.p_store_w * 1e6,
                    std::abs(fr - f_in) > 0.5 ? "  <-- detuned" : "");
    }

    const auto& st = controller.stats();
    std::printf("\ncontroller totals: %llu wakeups, %llu coarse moves (%llu steps), "
                "%llu fine iterations (%llu steps), %llu converged\n",
                static_cast<unsigned long long>(st.wakeups),
                static_cast<unsigned long long>(st.coarse_tunings),
                static_cast<unsigned long long>(st.coarse_steps),
                static_cast<unsigned long long>(st.fine_iterations),
                static_cast<unsigned long long>(st.fine_steps),
                static_cast<unsigned long long>(st.fine_converged));
    std::printf("node transmissions: %llu\n",
                static_cast<unsigned long long>(node.transmissions()));
    std::printf("\nenergy ledger:\n");
    for (const auto& [account, joules] : system.ledger().accounts())
        std::printf("  %-22s %8.2f mJ\n", account.c_str(), joules * 1e3);
    return 0;
}
