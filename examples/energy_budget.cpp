// Energy-budget explorer: sweep the transmission interval (the paper's
// dominant parameter x3) across its range and print where the system flips
// from interval-limited to energy-limited, with the full per-component
// energy breakdown at three representative points.
//
//   ./build/examples/energy_budget
#include <cstdio>

#include "dse/system_evaluator.hpp"

int main() {
    using namespace ehdse;

    dse::system_evaluator evaluator;

    std::printf("=== transmission interval sweep (1-hour runs) ===\n\n");
    std::printf("%12s %8s %10s %12s %12s %10s\n", "interval (s)", "tx/h",
                "ceiling", "harvested", "node spend", "final V");

    const double intervals[] = {0.005, 0.02, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0};
    for (double interval : intervals) {
        dse::system_config cfg = dse::system_config::original();
        cfg.tx_interval_s = interval;
        const auto r = evaluator.evaluate(cfg);
        const double ceiling = 3600.0 / interval;
        std::printf("%12.3f %8llu %10.0f %9.1f mJ %9.1f mJ %9.3f V %s\n", interval,
                    static_cast<unsigned long long>(r.transmissions), ceiling,
                    r.harvested_energy_j * 1e3,
                    r.ledger.total("node.transmission") * 1e3, r.final_voltage_v,
                    static_cast<double>(r.transmissions) > 0.95 * ceiling
                        ? "interval-limited"
                        : "energy-limited");
    }

    std::printf("\n=== energy breakdown at three operating points ===\n");
    for (double interval : {0.005, 0.5, 10.0}) {
        dse::system_config cfg = dse::system_config::original();
        cfg.tx_interval_s = interval;
        const auto r = evaluator.evaluate(cfg);
        std::printf("\n--- interval %.3f s: %llu transmissions ---\n", interval,
                    static_cast<unsigned long long>(r.transmissions));
        std::printf("  %-24s %8.1f mJ\n", "harvested into store",
                    r.harvested_energy_j * 1e3);
        for (const auto& [account, joules] : r.ledger.accounts())
            std::printf("  %-24s %8.1f mJ\n", account.c_str(), joules * 1e3);
        std::printf("  %-24s %8.1f mJ\n", "sustained (sleep floors)",
                    r.sustained_load_energy_j * 1e3);
        std::printf("  %-24s %8.3f V -> %.3f V\n", "storage voltage", 2.8,
                    r.final_voltage_v);
    }

    std::printf("\nReading: below ~0.5 s the node can absorb every joule the\n"
                "harvester nets (energy-limited plateau); above it the interval\n"
                "ceiling bites — the crossover the RSM's x3 terms encode.\n");
    return 0;
}
