// Custom RSM study: the DOE + response-surface + optimiser stack applied to
// a user-defined objective — here, a black-box "peak power vs (magnet
// position, load voltage)" map of the harvester itself, showing the
// library's methodology layer is independent of the sensor-node use case.
//
//   ./build/examples/custom_rsm
#include <cstdio>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "harvester/envelope.hpp"
#include "harvester/vibration.hpp"
#include "harvester/tuning_table.hpp"
#include "opt/simulated_annealing.hpp"
#include "rsm/design_space.hpp"
#include "rsm/quadratic_model.hpp"

int main() {
    using namespace ehdse;

    // Black box under study: stored power at a fixed 70 Hz excitation as a
    // function of actuator position and storage voltage.
    const harvester::microgenerator gen;
    const auto expensive_experiment = [&](double position, double store_v) {
        const auto pt = harvester::solve_envelope(
            gen, static_cast<int>(position + 0.5), 70.0,
            0.060 * harvester::k_gravity, store_v);
        return pt.elec.p_store_w * 1e6;  // uW
    };

    // 1. Define the design space in natural units. The position range
    //    brackets the 70 Hz resonance (position ~64) by roughly one
    //    half-power bandwidth per side — the region where a quadratic is an
    //    honest local model; far off-resonance the response is flat zero.
    const rsm::design_space space({
        {"actuator_position", 52.0, 76.0},
        {"storage_voltage", 2.0, 3.4},
    });

    // 2. Pick design points: D-optimal 8 of a 5x5 grid for the 6-term model.
    const auto candidates = doe::full_factorial(2, 5);
    const auto selection = doe::d_optimal_design(
        candidates, [](const numeric::vec& x) { return rsm::quadratic_basis(x); },
        8);
    std::printf("D-optimal design: 8 of %zu grid points, log det = %.2f\n\n",
                candidates.size(), selection.log_det);

    // 3. Run the experiments.
    std::vector<numeric::vec> points;
    numeric::vec responses;
    std::printf("%10s %12s %12s\n", "position", "voltage (V)", "P_store (uW)");
    for (std::size_t idx : selection.selected) {
        const auto& coded = candidates[idx];
        const auto natural = space.decode(coded);
        const double y = expensive_experiment(natural[0], natural[1]);
        points.push_back(coded);
        responses.push_back(y);
        std::printf("%10.0f %12.2f %12.1f\n", natural[0], natural[1], y);
    }

    // 4. Fit the response surface.
    const auto fit = rsm::fit_quadratic(points, responses);
    std::printf("\nfitted surface (coded): %s\n", fit.model.to_string(2).c_str());
    std::printf("R^2 = %.4f, PRESS rmse = %.2f\n", fit.r_squared, fit.press_rmse);

    // 5. Maximise it.
    numeric::rng rng(42);
    const auto best = opt::simulated_annealing().maximize(
        [&](const numeric::vec& x) { return fit.model.predict(x); },
        opt::box_bounds::unit(2), rng);
    const auto natural = space.decode(space.clamp(best.best_x));
    std::printf("\nRSM optimum: position %.0f, storage %.2f V -> predicted %.1f uW\n",
                natural[0], natural[1], best.best_value);
    std::printf("validated by direct evaluation: %.1f uW\n",
                expensive_experiment(natural[0], natural[1]));
    std::printf("\n(for reference, a 70 Hz input resonates near position %d)\n",
                harvester::tuning_table(gen).lookup(70.0));
    return 0;
}
