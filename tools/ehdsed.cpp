// ehdsed — the long-running experiment service (docs/service.md). One
// process serves many concurrent clients: it listens on a unix-domain
// socket and/or TCP, accepts experiment-spec submissions over the
// ehdse.svc/1 wire protocol, schedules them onto the shared exec pool,
// and answers every evaluation through one cross-request cache — two
// clients submitting the same canonical spec cost one simulation.
//
//   ehdsed [--unix PATH] [--listen HOST:PORT] [--jobs N]
//          [--queue N] [--quota N] [--cache-capacity N]
//          [--max-evaluators N] [--name NAME] [--metrics-out FILE.json]
//   ehdsed --list-harvesters
//
// At least one of --unix / --listen is required. --listen accepts port 0
// for an ephemeral port; the resolved endpoint is printed on stdout as
//
//   listening unix /path/to.sock
//   listening tcp 127.0.0.1:41837
//   ready
//
// so scripts can scrape the port before connecting. SIGTERM and SIGINT
// trigger a graceful drain: no new connections or submits are accepted,
// every already-accepted request reaches its terminal frame, clients get
// a `goodbye`, then the process exits 0. A final svc.*/dse.cache.*
// metrics snapshot goes to --metrics-out when given.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include <unistd.h>

#include "harvester/harvester_model.hpp"
#include "obs/metrics.hpp"
#include "svc/server.hpp"

namespace {

using namespace ehdse;

int g_signal_pipe[2] = {-1, -1};

extern "C" void handle_shutdown_signal(int) {
    const char byte = 's';
    // write(2) is async-signal-safe; the result only matters insofar as
    // a full pipe means a shutdown is already pending.
    (void)!::write(g_signal_pipe[1], &byte, 1);
}

void print_usage() {
    std::puts(
        "usage:\n"
        "  ehdsed [--unix PATH] [--listen HOST:PORT] [--jobs N]\n"
        "         [--queue N] [--quota N] [--cache-capacity N]\n"
        "         [--max-evaluators N] [--name NAME]\n"
        "         [--metrics-out FILE.json]\n"
        "  ehdsed --list-harvesters\n"
        "\n"
        "--list-harvesters prints every harvester backend a submitted\n"
        "spec's harvester.model may name (with a short description) and\n"
        "exits 0.\n"
        "Serve experiment-spec requests over the ehdse.svc/1 protocol\n"
        "(docs/service.md). At least one listener is required; --listen\n"
        "with port 0 picks an ephemeral port (printed on stdout).\n"
        "SIGTERM/SIGINT drain gracefully: accepted work completes, new\n"
        "submits are rejected with code 'draining'.");
}

struct options {
    svc::server_config server;
    std::string metrics_out;
};

options parse_options(int argc, char** argv) {
    const std::set<std::string> allowed = {
        "unix",  "listen",         "jobs", "queue",
        "quota", "cache-capacity", "name", "max-evaluators",
        "metrics-out"};
    options opt;
    std::map<std::string, std::string> kv;
    for (int i = 1; i < argc; ++i) {
        std::string key = argv[i];
        if (key == "help" || key == "--help" || key == "-h") {
            print_usage();
            std::exit(0);
        }
        if (key == "--list-harvesters") {
            for (const harvester::harvester_info& info :
                 harvester::harvester_registry())
                std::printf("%-24s %s\n", info.name.c_str(),
                            info.description.c_str());
            std::exit(0);
        }
        if (key.rfind("--", 0) != 0) {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         key.c_str());
            std::exit(2);
        }
        key = key.substr(2);
        std::string value;
        const auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else if (i + 1 < argc) {
            value = argv[++i];
        }
        if (allowed.count(key) == 0) {
            std::fprintf(stderr, "error: unknown flag '--%s'\n", key.c_str());
            std::exit(2);
        }
        if (value.empty()) {
            std::fprintf(stderr, "error: flag '--%s' requires a value\n",
                         key.c_str());
            std::exit(2);
        }
        kv[key] = value;
    }

    const auto num = [&kv](const char* key, long fallback) {
        const auto it = kv.find(key);
        if (it == kv.end()) return fallback;
        char* end = nullptr;
        const long v = std::strtol(it->second.c_str(), &end, 10);
        if (end == it->second.c_str() || *end != '\0' || v < 0) {
            std::fprintf(stderr,
                         "error: --%s expects a non-negative integer, got "
                         "'%s'\n",
                         key, it->second.c_str());
            std::exit(2);
        }
        return v;
    };

    if (kv.count("unix")) opt.server.unix_path = kv["unix"];
    if (kv.count("listen")) {
        const std::string endpoint = kv["listen"];
        const auto colon = endpoint.rfind(':');
        if (colon == std::string::npos || colon + 1 == endpoint.size()) {
            std::fprintf(stderr,
                         "error: --listen expects HOST:PORT, got '%s'\n",
                         endpoint.c_str());
            std::exit(2);
        }
        opt.server.tcp_host = endpoint.substr(0, colon);
        char* end = nullptr;
        const long port = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
        if (*end != '\0' || port < 0 || port > 65535) {
            std::fprintf(stderr, "error: invalid port in '%s'\n",
                         endpoint.c_str());
            std::exit(2);
        }
        opt.server.tcp_port = static_cast<int>(port);
    }
    if (opt.server.unix_path.empty() && opt.server.tcp_port < 0) {
        std::fprintf(stderr,
                     "error: no listener; pass --unix PATH and/or --listen "
                     "HOST:PORT\n");
        std::exit(2);
    }

    opt.server.jobs = static_cast<std::size_t>(num("jobs", 0));
    opt.server.limits.max_queued = static_cast<std::size_t>(
        num("queue", static_cast<long>(opt.server.limits.max_queued)));
    opt.server.limits.max_per_client = static_cast<std::size_t>(
        num("quota", static_cast<long>(opt.server.limits.max_per_client)));
    opt.server.cache_capacity = static_cast<std::size_t>(num(
        "cache-capacity", static_cast<long>(opt.server.cache_capacity)));
    opt.server.max_evaluators = static_cast<std::size_t>(num(
        "max-evaluators", static_cast<long>(opt.server.max_evaluators)));
    if (kv.count("name")) opt.server.name = kv["name"];
    if (kv.count("metrics-out")) opt.metrics_out = kv["metrics-out"];
    if (opt.server.limits.max_queued == 0 ||
        opt.server.limits.max_per_client == 0 ||
        opt.server.cache_capacity == 0 || opt.server.max_evaluators == 0) {
        std::fprintf(stderr,
                     "error: --queue/--quota/--cache-capacity/"
                     "--max-evaluators must be positive\n");
        std::exit(2);
    }
    return opt;
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);

    // Install the registry BEFORE the server so the pool, the caches and
    // the svc.* instruments all bind to it (docs/observability.md).
    static obs::metrics_registry registry;
    obs::set_global_registry(&registry);

    if (::pipe(g_signal_pipe) != 0) {
        std::perror("ehdsed: pipe");
        return 1;
    }
    struct sigaction action {};
    action.sa_handler = handle_shutdown_signal;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    svc::server server(opt.server);
    try {
        server.start();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ehdsed: %s\n", e.what());
        return 1;
    }

    if (!server.unix_path().empty())
        std::printf("listening unix %s\n", server.unix_path().c_str());
    if (server.tcp_port() >= 0)
        std::printf("listening tcp %s:%d\n", opt.server.tcp_host.c_str(),
                    server.tcp_port());
    std::printf("ready\n");
    std::fflush(stdout);

    // Park until a shutdown signal lands (EINTR = the handler itself).
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }

    std::printf("draining\n");
    std::fflush(stdout);
    server.drain();

    const svc::server_stats totals = server.stats();
    std::printf(
        "served %llu connections, %llu accepted, %llu completed, "
        "%llu failed, %llu cancelled, %llu rejected; cache hit rate %.2f\n",
        static_cast<unsigned long long>(totals.connections),
        static_cast<unsigned long long>(totals.accepted),
        static_cast<unsigned long long>(totals.completed),
        static_cast<unsigned long long>(totals.failed),
        static_cast<unsigned long long>(totals.cancelled),
        static_cast<unsigned long long>(totals.rejected),
        totals.cache.hit_rate());

    if (!opt.metrics_out.empty()) {
        std::ofstream out(opt.metrics_out);
        if (!out) {
            std::fprintf(stderr, "ehdsed: cannot write '%s'\n",
                         opt.metrics_out.c_str());
            return 1;
        }
        registry.write_json(out);
        out << '\n';
    }
    return 0;
}
