// ehdse_cli — command-line driver for the library, aimed at downstream
// users who want runs without writing C++:
//
//   ehdse_cli simulate [--clock HZ] [--watchdog S] [--interval S]
//                      [--duration S] [--accel MG] [--seed N]
//                      [--fidelity envelope|transient] [--trace FILE.csv]
//   ehdse_cli flow     [--runs N] [--seed N]
//   ehdse_cli sweep    --param clock|watchdog|interval
//                      [--from X] [--to X] [--points N] [--log]
//
// Outputs are plain text; `--trace` writes the supercapacitor waveform CSV.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "dse/report.hpp"
#include "dse/rsm_flow.hpp"

namespace {

using namespace ehdse;

struct arg_map {
    std::map<std::string, std::string> kv;
    bool has(const std::string& key) const { return kv.count(key) != 0; }
    double num(const std::string& key, double fallback) const {
        const auto it = kv.find(key);
        if (it == kv.end()) return fallback;
        char* end = nullptr;
        const double v = std::strtod(it->second.c_str(), &end);
        if (end == it->second.c_str()) {
            std::fprintf(stderr, "error: --%s expects a number, got '%s'\n",
                         key.c_str(), it->second.c_str());
            std::exit(2);
        }
        return v;
    }
    std::string str(const std::string& key, std::string fallback) const {
        const auto it = kv.find(key);
        return it == kv.end() ? fallback : it->second;
    }
};

arg_map parse_args(int argc, char** argv, int first) {
    arg_map args;
    for (int i = first; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strncmp(a, "--", 2) != 0) {
            std::fprintf(stderr, "error: unexpected argument '%s'\n", a);
            std::exit(2);
        }
        std::string key = a + 2;
        std::string value = "true";
        const auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            value = argv[++i];
        }
        args.kv[key] = value;
    }
    return args;
}

void print_usage() {
    std::puts(
        "usage:\n"
        "  ehdse_cli simulate [--clock HZ] [--watchdog S] [--interval S]\n"
        "                     [--duration S] [--accel MG] [--seed N]\n"
        "                     [--fidelity envelope|transient] [--trace FILE]\n"
        "                     [--schedule FILE.csv]\n"
        "  ehdse_cli flow     [--runs N] [--seed N] [--replicates N]\n"
        "                     [--parallel] [--report FILE.md]\n"
        "  ehdse_cli sweep    --param clock|watchdog|interval\n"
        "                     [--from X] [--to X] [--points N] [--log]");
}

dse::scenario scenario_from(const arg_map& args) {
    dse::scenario s;
    s.duration_s = args.num("duration", s.duration_s);
    s.accel_mg = args.num("accel", s.accel_mg);
    const std::string schedule_file = args.str("schedule", "");
    if (!schedule_file.empty()) {
        std::ifstream in(schedule_file);
        if (!in) {
            std::fprintf(stderr, "error: cannot read '%s'\n", schedule_file.c_str());
            std::exit(2);
        }
        s.frequency_schedule =
            harvester::vibration_source::parse_schedule_csv(in);
    }
    return s;
}

int cmd_simulate(const arg_map& args) {
    dse::system_config cfg = dse::system_config::original();
    cfg.mcu_clock_hz = args.num("clock", cfg.mcu_clock_hz);
    cfg.watchdog_period_s = args.num("watchdog", cfg.watchdog_period_s);
    cfg.tx_interval_s = args.num("interval", cfg.tx_interval_s);

    dse::evaluation_options opts;
    opts.controller_seed = static_cast<std::uint64_t>(args.num("seed", 0x5eed));
    const std::string fid = args.str("fidelity", "envelope");
    if (fid == "transient") {
        opts.model = dse::fidelity::transient;
    } else if (fid != "envelope") {
        std::fprintf(stderr, "error: --fidelity must be envelope or transient\n");
        return 2;
    }
    const std::string trace_file = args.str("trace", "");
    opts.record_traces = !trace_file.empty();

    dse::system_evaluator evaluator(scenario_from(args));
    const auto r = evaluator.evaluate(cfg, opts);

    std::printf("config: clock=%.6g Hz, watchdog=%.6g s, interval=%.6g s "
                "(fidelity: %s)\n",
                cfg.mcu_clock_hz, cfg.watchdog_period_s, cfg.tx_interval_s,
                fid.c_str());
    std::printf("transmissions: %llu (low-band %llu, suppressed polls %llu)\n",
                static_cast<unsigned long long>(r.transmissions),
                static_cast<unsigned long long>(r.low_band_transmissions),
                static_cast<unsigned long long>(r.suppressed_wakeups));
    std::printf("voltage: final %.4f V (min %.4f, max %.4f)\n", r.final_voltage_v,
                r.min_voltage_v, r.max_voltage_v);
    std::printf("energy: harvested %.2f mJ, bursts %.2f mJ, sustained %.2f mJ\n",
                r.harvested_energy_j * 1e3, r.withdrawn_energy_j * 1e3,
                r.sustained_load_energy_j * 1e3);
    std::printf("tuning: %llu wakeups, %llu coarse (%llu steps), %llu fine "
                "(%llu steps)\n",
                static_cast<unsigned long long>(r.tuning.wakeups),
                static_cast<unsigned long long>(r.tuning.coarse_tunings),
                static_cast<unsigned long long>(r.tuning.coarse_steps),
                static_cast<unsigned long long>(r.tuning.fine_iterations),
                static_cast<unsigned long long>(r.tuning.fine_steps));
    std::printf("ledger:\n");
    for (const auto& [account, joules] : r.ledger.accounts())
        std::printf("  %-24s %10.3f mJ\n", account.c_str(), joules * 1e3);
    if (!r.sim_ok) {
        std::fprintf(stderr, "warning: analogue integrator reported failure\n");
        return 1;
    }
    if (opts.record_traces && r.voltage_trace) {
        std::ofstream os(trace_file);
        if (!os) {
            std::fprintf(stderr, "error: cannot write '%s'\n", trace_file.c_str());
            return 1;
        }
        r.voltage_trace->write_csv(os);
        std::printf("trace written to %s (%zu samples)\n", trace_file.c_str(),
                    r.voltage_trace->size());
    }
    return 0;
}

int cmd_flow(const arg_map& args) {
    dse::flow_options opts;
    opts.doe_runs = static_cast<std::size_t>(args.num("runs", 10));
    opts.optimizer_seed = static_cast<std::uint64_t>(args.num("seed", 0x0b7a1));
    opts.replicates = static_cast<std::size_t>(args.num("replicates", 1));
    opts.parallel = args.has("parallel");

    dse::system_evaluator evaluator(scenario_from(args));
    const auto flow = dse::run_rsm_flow(evaluator, opts);

    const std::string report_file = args.str("report", "");
    if (!report_file.empty()) {
        std::ofstream os(report_file);
        if (!os) {
            std::fprintf(stderr, "error: cannot write '%s'\n", report_file.c_str());
            return 1;
        }
        dse::write_report(os, flow);
        std::printf("report written to %s\n", report_file.c_str());
    }

    std::printf("D-optimal: %zu of %zu candidates, log det = %.3f\n",
                flow.selection.selected.size(), flow.candidates.size(),
                flow.selection.log_det);
    std::printf("fit: R^2 = %.4f\n  y = %s\n", flow.fit.r_squared,
                flow.fit.model.to_string(2).c_str());
    std::printf("original: %llu tx\n",
                static_cast<unsigned long long>(flow.original_eval.transmissions));
    for (const auto& oc : flow.outcomes)
        std::printf("%-22s clock=%.4g wd=%.0f int=%.4g -> predicted %.0f, "
                    "validated %llu (%.2fx)\n",
                    oc.name.c_str(), oc.config.mcu_clock_hz,
                    oc.config.watchdog_period_s, oc.config.tx_interval_s,
                    oc.predicted,
                    static_cast<unsigned long long>(oc.validated.transmissions),
                    static_cast<double>(oc.validated.transmissions) /
                        static_cast<double>(flow.original_eval.transmissions));
    return 0;
}

int cmd_sweep(const arg_map& args) {
    const std::string param = args.str("param", "");
    const auto space = dse::paper_design_space();
    std::size_t axis = 0;
    if (param == "clock") axis = 0;
    else if (param == "watchdog") axis = 1;
    else if (param == "interval") axis = 2;
    else {
        std::fprintf(stderr, "error: --param must be clock|watchdog|interval\n");
        return 2;
    }

    const double lo = args.num("from", space.parameter(axis).min);
    const double hi = args.num("to", space.parameter(axis).max);
    const int points = static_cast<int>(args.num("points", 9));
    const bool log_axis = args.has("log");
    if (points < 2 || lo <= 0.0 || hi <= lo) {
        std::fprintf(stderr, "error: need --from < --to (positive) and --points >= 2\n");
        return 2;
    }

    dse::system_evaluator evaluator(scenario_from(args));
    std::printf("%16s %10s %12s %12s\n", param.c_str(), "tx/h", "harvested",
                "final V");
    for (int i = 0; i < points; ++i) {
        const double frac = static_cast<double>(i) / (points - 1);
        const double value = log_axis
                                 ? lo * std::pow(hi / lo, frac)
                                 : lo + frac * (hi - lo);
        dse::system_config cfg = dse::system_config::original();
        if (axis == 0) cfg.mcu_clock_hz = value;
        if (axis == 1) cfg.watchdog_period_s = value;
        if (axis == 2) cfg.tx_interval_s = value;
        const auto r = evaluator.evaluate(cfg);
        std::printf("%16.6g %10llu %9.1f mJ %10.4f\n", value,
                    static_cast<unsigned long long>(r.transmissions),
                    r.harvested_energy_j * 1e3, r.final_voltage_v);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        print_usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const arg_map args = parse_args(argc, argv, 2);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "flow") return cmd_flow(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "help" || cmd == "--help") {
        print_usage();
        return 0;
    }
    std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
    print_usage();
    return 2;
}
