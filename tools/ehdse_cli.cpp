// ehdse_cli — command-line driver for the library, aimed at downstream
// users who want runs without writing C++:
//
//   ehdse_cli simulate [--clock HZ] [--watchdog S] [--interval S]
//                      [--duration S] [--accel MG] [--seed N]
//                      [--harvester NAME]
//                      [--fidelity envelope|transient] [--trace FILE.csv]
//                      [--metrics-out FILE.json]
//   ehdse_cli flow     [--runs N] [--seed N] [--replicates N] [--parallel]
//                      [--harvester NAME] [--design NAME] [--surrogate NAME]
//                      [--report FILE.md] [--metrics-out FILE.json] [--progress]
//   ehdse_cli sweep    --param clock|watchdog|interval
//                      [--from X] [--to X] [--points N] [--log]
//                      [--harvester NAME]
//
// `simulate` and `flow` are spec-driven: every invocation first builds a
// canonical spec::experiment_spec — defaults, overlaid by `--spec
// FILE.json` when given, overlaid by explicit flags — and then runs it.
// `--dump-spec FILE.json` writes that spec (canonical form) before the
// run; feeding it back through `--spec` replays the identical experiment,
// down to the spec_hash stamped in the manifest.
//
// Outputs are plain text; `--trace` writes the supercapacitor waveform
// CSV; `--metrics-out` writes a run manifest (docs/observability.md) as
// JSON, or as JSONL when the path ends in `.jsonl`. Unknown flags and
// unwritable output paths are hard errors (exit 2) before any simulation
// starts.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "doe/design.hpp"
#include "dse/report.hpp"
#include "harvester/harvester_model.hpp"
#include "dse/rsm_flow.hpp"
#include "obs/metrics.hpp"
#include "opt/optimizer.hpp"
#include "rsm/surrogate.hpp"
#include "obs/run_manifest.hpp"
#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"

namespace {

using namespace ehdse;

struct arg_map {
    std::map<std::string, std::string> kv;
    bool has(const std::string& key) const { return kv.count(key) != 0; }
    double num(const std::string& key, double fallback) const {
        const auto it = kv.find(key);
        if (it == kv.end()) return fallback;
        char* end = nullptr;
        const double v = std::strtod(it->second.c_str(), &end);
        if (end == it->second.c_str()) {
            std::fprintf(stderr, "error: --%s expects a number, got '%s'\n",
                         key.c_str(), it->second.c_str());
            std::exit(2);
        }
        return v;
    }
    std::string str(const std::string& key, std::string fallback) const {
        const auto it = kv.find(key);
        return it == kv.end() ? fallback : it->second;
    }
};

/// Flags that stand alone; every other flag requires a non-empty value.
const std::set<std::string> k_boolean_flags = {"parallel", "progress", "log",
                                               "no-cache"};

/// Parse `--key value` / `--key=value` pairs, rejecting any key not in
/// `allowed` (exit 2) so a typo cannot silently fall back to defaults.
arg_map parse_args(int argc, char** argv, int first,
                   const std::set<std::string>& allowed) {
    arg_map args;
    for (int i = first; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strncmp(a, "--", 2) != 0) {
            std::fprintf(stderr, "error: unexpected argument '%s'\n", a);
            std::exit(2);
        }
        std::string key = a + 2;
        std::string value;
        bool have_value = false;
        const auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
            have_value = true;
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            value = argv[++i];
            have_value = true;
        }
        if (allowed.count(key) == 0) {
            std::fprintf(stderr,
                         "error: unknown flag '--%s' (run 'ehdse_cli help' for "
                         "the flag list)\n",
                         key.c_str());
            std::exit(2);
        }
        if (k_boolean_flags.count(key)) {
            if (!have_value) value = "true";
        } else if (!have_value || value.empty()) {
            std::fprintf(stderr, "error: flag '--%s' requires a value\n",
                         key.c_str());
            std::exit(2);
        }
        args.kv[key] = value;
    }
    return args;
}

void print_usage() {
    std::puts(
        "usage:\n"
        "  ehdse_cli simulate [--clock HZ] [--watchdog S] [--interval S]\n"
        "                     [--duration S] [--accel MG] [--seed N]\n"
        "                     [--harvester NAME]\n"
        "                     [--fidelity envelope|transient] [--trace FILE]\n"
        "                     [--schedule FILE.csv] [--metrics-out FILE.json]\n"
        "                     [--spec FILE.json] [--dump-spec FILE.json]\n"
        "  ehdse_cli flow     [--runs N] [--seed N] [--replicates N]\n"
        "                     [--harvester NAME] [--design NAME]\n"
        "                     [--surrogate NAME]\n"
        "                     [--parallel] [--jobs N] [--no-cache]\n"
        "                     [--duration S] [--accel MG] [--schedule FILE.csv]\n"
        "                     [--report FILE.md] [--progress]\n"
        "                     [--metrics-out FILE.json]\n"
        "                     [--spec FILE.json] [--dump-spec FILE.json]\n"
        "  ehdse_cli sweep    --param clock|watchdog|interval\n"
        "                     [--from X] [--to X] [--points N] [--log]\n"
        "                     [--harvester NAME]\n"
        "                     [--duration S] [--accel MG] [--schedule FILE.csv]\n"
        "  ehdse_cli --list-designs | --list-surrogates | --list-optimizers\n"
        "  ehdse_cli --list-harvesters\n"
        "\n"
        "--list-* prints every registry name the flow accepts (one per\n"
        "line with a short description) and exits 0. --harvester selects\n"
        "the harvester backend (see --list-harvesters; default\n"
        "electromagnetic).\n"
        "--spec seeds the run from a canonical experiment-spec JSON file\n"
        "(explicit flags still win); --dump-spec writes the spec a run\n"
        "resolves to, for replay. --metrics-out writes a run manifest\n"
        "(see docs/observability.md); a .jsonl suffix selects\n"
        "one-record-per-line output.");
}

/// Open `path` for writing, exiting with a clear message when it cannot be
/// created — checked BEFORE any simulation so a bad path fails in
/// milliseconds, not after the whole flow has run.
std::ofstream open_output_or_die(const std::string& path, const char* what) {
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "error: cannot write %s '%s'\n", what, path.c_str());
        std::exit(2);
    }
    return os;
}

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void write_manifest(std::ofstream& os, const std::string& path,
                    const obs::run_manifest& manifest) {
    if (ends_with(path, ".jsonl"))
        manifest.write_jsonl(os);
    else
        manifest.write_json(os);
    std::printf("manifest written to %s\n", path.c_str());
}

/// Overlay scenario flags onto a base (the spec's scenario, or defaults).
dse::scenario scenario_from(const arg_map& args, dse::scenario s = {}) {
    s.duration_s = args.num("duration", s.duration_s);
    s.accel_mg = args.num("accel", s.accel_mg);
    const std::string schedule_file = args.str("schedule", "");
    if (!schedule_file.empty()) {
        std::ifstream in(schedule_file);
        if (!in) {
            std::fprintf(stderr, "error: cannot read '%s'\n", schedule_file.c_str());
            std::exit(2);
        }
        s.frequency_schedule =
            harvester::vibration_source::parse_schedule_csv(in);
    }
    return s;
}

/// Base spec for a spec-driven command: defaults, or `--spec FILE` parsed
/// strictly (schema check, unknown keys rejected, validated). The command
/// builders overlay explicit flags on top, so precedence is
/// defaults < spec file < flags.
spec::experiment_spec load_spec(const arg_map& args) {
    const std::string path = args.str("spec", "");
    if (path.empty()) return {};
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read spec '%s'\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return spec::parse_spec(text.str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: spec '%s': %s\n", path.c_str(), e.what());
        std::exit(2);
    }
}

/// Exit 2 with the validator's message (names the offending field) when
/// the flag-assembled spec is inconsistent — before any simulation runs.
void validate_or_die(const spec::experiment_spec& espec) {
    try {
        espec.validate();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
    }
}

/// Honour --dump-spec FILE: write the canonical form of the request this
/// invocation resolved to. `--spec` on that file replays it exactly.
void dump_spec_if_requested(const arg_map& args,
                            const spec::experiment_spec& espec) {
    const std::string path = args.str("dump-spec", "");
    if (path.empty()) return;
    std::ofstream os = open_output_or_die(path, "spec file");
    spec::to_json(espec.canonicalized()).write(os, 2);
    os << '\n';
    std::printf("spec written to %s\n", path.c_str());
}

/// Embed the canonical spec and its content hash into a manifest — the
/// same two fields run_rsm_flow stamps, so every manifest identifies the
/// experiment it records.
void stamp_spec(obs::run_manifest& manifest,
                const spec::experiment_spec& espec) {
    const spec::experiment_spec canon = espec.canonicalized();
    manifest.set_option("spec", spec::to_json(canon));
    manifest.set_option(
        "spec_hash",
        obs::json_value(spec::spec_hash_hex(spec::spec_hash(canon))));
}

int cmd_simulate(const arg_map& args) {
    spec::experiment_spec espec = load_spec(args);
    espec.harv.model = args.str("harvester", espec.harv.model);
    espec.config.mcu_clock_hz = args.num("clock", espec.config.mcu_clock_hz);
    espec.config.watchdog_period_s =
        args.num("watchdog", espec.config.watchdog_period_s);
    espec.config.tx_interval_s =
        args.num("interval", espec.config.tx_interval_s);
    espec.scn = scenario_from(args, espec.scn);

    espec.eval.controller_seed = static_cast<std::uint64_t>(
        args.num("seed", static_cast<double>(espec.eval.controller_seed)));
    const std::string fid = args.str("fidelity", "");
    if (fid == "transient") {
        espec.eval.model = dse::fidelity::transient;
    } else if (fid == "envelope") {
        espec.eval.model = dse::fidelity::envelope;
    } else if (!fid.empty()) {
        std::fprintf(stderr, "error: --fidelity must be envelope or transient\n");
        return 2;
    }
    const std::string trace_file = args.str("trace", "");
    if (!trace_file.empty()) espec.eval.record_traces = true;

    validate_or_die(espec);
    dump_spec_if_requested(args, espec);
    const dse::system_config& cfg = espec.config;
    const dse::evaluation_options& opts = espec.eval;

    const std::string metrics_file = args.str("metrics-out", "");
    std::ofstream metrics_os;
    obs::metrics_registry registry;
    if (!metrics_file.empty()) {
        metrics_os = open_output_or_die(metrics_file, "metrics file");
        obs::set_global_registry(&registry);
    }

    dse::system_evaluator evaluator(espec.scn, espec.harv);
    const auto r = evaluator.evaluate(cfg, opts);

    std::printf("config: clock=%.6g Hz, watchdog=%.6g s, interval=%.6g s "
                "(fidelity: %s)\n",
                cfg.mcu_clock_hz, cfg.watchdog_period_s, cfg.tx_interval_s,
                spec::to_string(opts.model).c_str());
    std::printf("transmissions: %llu (low-band %llu, suppressed polls %llu)\n",
                static_cast<unsigned long long>(r.transmissions),
                static_cast<unsigned long long>(r.low_band_transmissions),
                static_cast<unsigned long long>(r.suppressed_wakeups));
    std::printf("voltage: final %.4f V (min %.4f, max %.4f)\n", r.final_voltage_v,
                r.min_voltage_v, r.max_voltage_v);
    std::printf("energy: harvested %.2f mJ, bursts %.2f mJ, sustained %.2f mJ\n",
                r.harvested_energy_j * 1e3, r.withdrawn_energy_j * 1e3,
                r.sustained_load_energy_j * 1e3);
    std::printf("tuning: %llu wakeups, %llu coarse (%llu steps), %llu fine "
                "(%llu steps)\n",
                static_cast<unsigned long long>(r.tuning.wakeups),
                static_cast<unsigned long long>(r.tuning.coarse_tunings),
                static_cast<unsigned long long>(r.tuning.coarse_steps),
                static_cast<unsigned long long>(r.tuning.fine_iterations),
                static_cast<unsigned long long>(r.tuning.fine_steps));
    std::printf("sim: %zu ode steps (%zu rejected), %llu events, %.3f s wall\n",
                r.ode_steps, r.ode_steps_rejected,
                static_cast<unsigned long long>(r.events), r.wall_time_s);
    std::printf("ledger:\n");
    for (const auto& [account, joules] : r.ledger.accounts())
        std::printf("  %-24s %10.3f mJ\n", account.c_str(), joules * 1e3);

    if (!metrics_file.empty()) {
        obs::run_manifest manifest;
        manifest.set_tool("ehdse_cli simulate", "1.0");
        manifest.set_option("seed", obs::json_value(opts.controller_seed));
        manifest.set_option("fidelity",
                            obs::json_value(spec::to_string(opts.model)));
        stamp_spec(manifest, espec);
        manifest.add_sim_run(
            [&] {
                obs::sim_run_record rec;
                rec.kind = "simulate";
                rec.mcu_clock_hz = cfg.mcu_clock_hz;
                rec.watchdog_period_s = cfg.watchdog_period_s;
                rec.tx_interval_s = cfg.tx_interval_s;
                rec.seed = opts.controller_seed;
                rec.response = static_cast<double>(r.transmissions);
                rec.wall_s = r.wall_time_s;
                rec.ode_steps = r.ode_steps;
                rec.ode_steps_rejected = r.ode_steps_rejected;
                rec.events = r.events;
                rec.sim_ok = r.sim_ok;
                return rec;
            }());
        manifest.set_metrics(registry.to_json());
        write_manifest(metrics_os, metrics_file, manifest);
        obs::set_global_registry(nullptr);
    }

    if (!r.sim_ok) {
        std::fprintf(stderr, "warning: analogue integrator reported failure\n");
        return 1;
    }
    if (opts.record_traces && r.voltage_trace) {
        std::ofstream os(trace_file);
        if (!os) {
            std::fprintf(stderr, "error: cannot write '%s'\n", trace_file.c_str());
            return 1;
        }
        r.voltage_trace->write_csv(os);
        std::printf("trace written to %s (%zu samples)\n", trace_file.c_str(),
                    r.voltage_trace->size());
    }
    return 0;
}

int cmd_flow(const arg_map& args) {
    spec::experiment_spec espec = load_spec(args);
    espec.harv.model = args.str("harvester", espec.harv.model);
    espec.scn = scenario_from(args, espec.scn);
    espec.flow.doe_runs = static_cast<std::size_t>(
        args.num("runs", static_cast<double>(espec.flow.doe_runs)));
    espec.flow.optimizer_seed = static_cast<std::uint64_t>(
        args.num("seed", static_cast<double>(espec.flow.optimizer_seed)));
    espec.flow.replicates = static_cast<std::size_t>(
        args.num("replicates", static_cast<double>(espec.flow.replicates)));
    espec.flow.design = args.str("design", espec.flow.design);
    espec.flow.surrogate = args.str("surrogate", espec.flow.surrogate);
    if (args.has("parallel")) espec.flow.parallel = true;
    espec.flow.jobs = static_cast<std::size_t>(
        args.num("jobs", static_cast<double>(espec.flow.jobs)));
    if (args.has("no-cache")) espec.flow.cache = false;

    validate_or_die(espec);
    dump_spec_if_requested(args, espec);

    dse::flow_options opts;
    // Output paths are validated before the (potentially long) run.
    const std::string metrics_file = args.str("metrics-out", "");
    const std::string report_file = args.str("report", "");
    std::ofstream metrics_os;
    std::ofstream report_os;
    if (!metrics_file.empty())
        metrics_os = open_output_or_die(metrics_file, "metrics file");
    if (!report_file.empty())
        report_os = open_output_or_die(report_file, "report file");

    obs::metrics_registry registry;
    obs::run_manifest manifest;
    if (!metrics_file.empty()) {
        obs::set_global_registry(&registry);
        opts.manifest = &manifest;
    }
    if (args.has("progress"))
        opts.progress = [](const std::string& line) {
            std::fprintf(stderr, "[flow] %s\n", line.c_str());
        };

    const auto flow = dse::run_rsm_flow(espec, opts);

    if (!report_file.empty()) {
        dse::write_report(report_os, flow);
        std::printf("report written to %s\n", report_file.c_str());
    }
    if (!metrics_file.empty()) {
        manifest.set_tool("ehdse_cli flow", "1.0");
        manifest.set_metrics(registry.to_json());
        write_manifest(metrics_os, metrics_file, manifest);
        obs::set_global_registry(nullptr);
    }

    if (flow.design.name == "d_optimal")
        std::printf("D-optimal: %zu of %zu candidates, log det = %.3f\n",
                    flow.design.selected.size(), flow.design.candidates.size(),
                    flow.design.log_det);
    else
        std::printf("design[%s]: %zu runs (of %zu candidates)\n",
                    flow.design.name.c_str(), flow.design.points.size(),
                    flow.design.candidates.size());
    std::printf("fit[%s]: R^2 = %.4f, LOO-CV RMSE = %.4g\n  y = %s\n",
                flow.fit.surrogate.c_str(), flow.fit.r_squared,
                flow.fit.loo_rmse, flow.fit.surface->to_string(2).c_str());
    std::printf("original: %llu tx\n",
                static_cast<unsigned long long>(flow.original_eval.transmissions));
    if (espec.flow.cache)
        std::printf("cache: %llu hits, %llu misses (hit rate %.0f%%)\n",
                    static_cast<unsigned long long>(flow.cache.hits),
                    static_cast<unsigned long long>(flow.cache.misses),
                    100.0 * flow.cache.hit_rate());
    for (const auto& oc : flow.outcomes)
        std::printf("%-22s clock=%.4g wd=%.0f int=%.4g -> predicted %.0f, "
                    "validated %llu (%.2fx)\n",
                    oc.name.c_str(), oc.config.mcu_clock_hz,
                    oc.config.watchdog_period_s, oc.config.tx_interval_s,
                    oc.predicted,
                    static_cast<unsigned long long>(oc.validated.transmissions),
                    static_cast<double>(oc.validated.transmissions) /
                        static_cast<double>(flow.original_eval.transmissions));
    return 0;
}

int cmd_sweep(const arg_map& args) {
    const std::string param = args.str("param", "");
    const auto space = dse::paper_design_space();
    std::size_t axis = 0;
    if (param == "clock") axis = 0;
    else if (param == "watchdog") axis = 1;
    else if (param == "interval") axis = 2;
    else {
        std::fprintf(stderr, "error: --param must be clock|watchdog|interval\n");
        return 2;
    }

    const double lo = args.num("from", space.parameter(axis).min);
    const double hi = args.num("to", space.parameter(axis).max);
    const int points = static_cast<int>(args.num("points", 9));
    const bool log_axis = args.has("log");
    if (points < 2 || lo <= 0.0 || hi <= lo) {
        std::fprintf(stderr, "error: need --from < --to (positive) and --points >= 2\n");
        return 2;
    }

    spec::harvester_spec harv;
    harv.model = args.str("harvester", harv.model);
    try {
        harv.validate();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    dse::system_evaluator evaluator(scenario_from(args), harv);
    std::printf("%16s %10s %12s %12s\n", param.c_str(), "tx/h", "harvested",
                "final V");
    for (int i = 0; i < points; ++i) {
        const double frac = static_cast<double>(i) / (points - 1);
        const double value = log_axis
                                 ? lo * std::pow(hi / lo, frac)
                                 : lo + frac * (hi - lo);
        dse::system_config cfg = dse::system_config::original();
        if (axis == 0) cfg.mcu_clock_hz = value;
        if (axis == 1) cfg.watchdog_period_s = value;
        if (axis == 2) cfg.tx_interval_s = value;
        const auto r = evaluator.evaluate(cfg);
        std::printf("%16.6g %10llu %9.1f mJ %10.4f\n", value,
                    static_cast<unsigned long long>(r.transmissions),
                    r.harvested_energy_j * 1e3, r.final_voltage_v);
    }
    return 0;
}

const std::set<std::string> k_simulate_flags = {
    "clock", "watchdog", "interval", "duration", "accel", "seed", "harvester",
    "fidelity", "trace", "schedule", "metrics-out", "spec", "dump-spec"};
const std::set<std::string> k_flow_flags = {
    "runs", "seed", "replicates", "harvester", "design", "surrogate",
    "parallel", "jobs", "no-cache", "report", "duration", "accel", "schedule",
    "metrics-out", "progress", "spec", "dump-spec"};
const std::set<std::string> k_sweep_flags = {
    "param", "from", "to", "points", "log", "harvester", "duration", "accel",
    "schedule"};

/// `--list-optimizers` / `--list-surrogates` / `--list-designs` /
/// `--list-harvesters`: print each registry (name + one-line description)
/// and exit 0. The names printed here are exactly the ones a spec's
/// flow.optimizers / flow.surrogate / flow.design / harvester.model
/// accept.
int cmd_list(const std::string& which) {
    if (which == "--list-harvesters") {
        for (const harvester::harvester_info& info :
             harvester::harvester_registry())
            std::printf("%-24s %s\n", info.name.c_str(),
                        info.description.c_str());
        return 0;
    }
    if (which == "--list-optimizers") {
        for (const opt::optimizer_info& info : opt::optimizer_registry())
            std::printf("%-24s %s\n", info.name.c_str(),
                        info.description.c_str());
        return 0;
    }
    if (which == "--list-surrogates") {
        for (const rsm::surrogate_info& info : rsm::surrogate_registry())
            std::printf("%-24s %s\n", info.name.c_str(),
                        info.description.c_str());
        return 0;
    }
    for (const doe::design_info& info : doe::design_registry())
        std::printf("%-24s %s\n", info.name.c_str(), info.description.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        print_usage();
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--list-optimizers" || cmd == "--list-surrogates" ||
        cmd == "--list-designs" || cmd == "--list-harvesters")
        return cmd_list(cmd);
    if (cmd == "simulate")
        return cmd_simulate(parse_args(argc, argv, 2, k_simulate_flags));
    if (cmd == "flow") return cmd_flow(parse_args(argc, argv, 2, k_flow_flags));
    if (cmd == "sweep") return cmd_sweep(parse_args(argc, argv, 2, k_sweep_flags));
    if (cmd == "help" || cmd == "--help") {
        print_usage();
        return 0;
    }
    std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
    print_usage();
    return 2;
}
