// ehdse_client — command-line client for the ehdsed experiment service,
// speaking the ehdse.svc/1 wire protocol (docs/service.md):
//
//   ehdse_client (--unix PATH | --connect HOST:PORT) ping
//   ehdse_client ... stats
//   ehdse_client ... submit [--spec FILE.json] [--kind simulate|flow]
//                           [--id ID] [--cancel-after-ms N] [--quiet]
//   ehdse_client ... cancel --id ID
//
// `submit` sends one spec (defaults when --spec is absent — the paper's
// baseline scenario) and streams every frame the server sends for it
// until a terminal frame arrives. `--cancel-after-ms N` sends a cancel N
// milliseconds after acceptance (exercises the queued-cancel path).
//
// Exit codes: 0 result ok (or pong/stats/cancelled-as-requested),
// 2 usage, 3 result failed, 4 request cancelled (without
// --cancel-after-ms), 5 rejected or protocol error, 1 transport error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "spec/json_codec.hpp"
#include "svc/framing.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace {

using namespace ehdse;

void print_usage() {
    std::puts(
        "usage:\n"
        "  ehdse_client (--unix PATH | --connect HOST:PORT) ping\n"
        "  ehdse_client (--unix PATH | --connect HOST:PORT) stats\n"
        "  ehdse_client (--unix PATH | --connect HOST:PORT) submit\n"
        "               [--spec FILE.json] [--kind simulate|flow]\n"
        "               [--id ID] [--cancel-after-ms N] [--quiet]\n"
        "  ehdse_client (--unix PATH | --connect HOST:PORT) cancel --id ID\n"
        "\n"
        "Talks ehdse.svc/1 (docs/service.md) to a running ehdsed. `submit`\n"
        "streams accepted/event/result frames for one spec; exit code 0 =\n"
        "result ok, 3 = result failed, 4 = cancelled, 5 = rejected/error.");
}

/// One frame from the server; false on EOF/error before a full frame.
bool read_frame(int fd, svc::frame_splitter& splitter, std::string& out) {
    for (;;) {
        switch (splitter.next(out)) {
            case svc::frame_splitter::status::frame:
                return true;
            case svc::frame_splitter::status::overflow:
                return false;
            case svc::frame_splitter::status::need_more:
                break;
        }
        char buf[4096];
        const long n = svc::recv_some(fd, buf, sizeof buf);
        if (n <= 0) return false;
        splitter.feed(buf, static_cast<std::size_t>(n));
    }
}

bool send_frame(int fd, const obs::json_value& doc) {
    std::string line = doc.dump();
    line.push_back('\n');
    return svc::send_all(fd, line.data(), line.size());
}

std::string frame_type(const obs::json_value& doc) {
    const obs::json_value* type = doc.find("type");
    return type && type->is_string() ? type->as_string() : "";
}

[[noreturn]] void transport_error(const char* what) {
    std::fprintf(stderr, "ehdse_client: connection lost (%s)\n", what);
    std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
    std::string unix_path;
    std::string tcp_host;
    int tcp_port = -1;
    std::string command;
    std::map<std::string, std::string> kv;
    const std::set<std::string> allowed = {"unix",  "connect",         "spec",
                                           "kind",  "cancel-after-ms", "id",
                                           "quiet"};

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "help" || arg == "--help" || arg == "-h") {
            print_usage();
            return 0;
        }
        if (arg.rfind("--", 0) != 0) {
            if (!command.empty()) {
                std::fprintf(stderr, "error: unexpected argument '%s'\n",
                             arg.c_str());
                return 2;
            }
            command = arg;
            continue;
        }
        std::string key = arg.substr(2);
        std::string value;
        const auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else if (key != "quiet" && i + 1 < argc) {
            value = argv[++i];
        }
        if (allowed.count(key) == 0) {
            std::fprintf(stderr, "error: unknown flag '--%s'\n", key.c_str());
            return 2;
        }
        if (key == "quiet")
            value = "true";
        else if (value.empty()) {
            std::fprintf(stderr, "error: flag '--%s' requires a value\n",
                         key.c_str());
            return 2;
        }
        kv[key] = value;
    }

    if (command.empty()) {
        print_usage();
        return 2;
    }
    if (kv.count("unix")) unix_path = kv["unix"];
    if (kv.count("connect")) {
        const std::string endpoint = kv["connect"];
        const auto colon = endpoint.rfind(':');
        if (colon == std::string::npos || colon + 1 == endpoint.size()) {
            std::fprintf(stderr,
                         "error: --connect expects HOST:PORT, got '%s'\n",
                         endpoint.c_str());
            return 2;
        }
        tcp_host = endpoint.substr(0, colon);
        tcp_port = std::atoi(endpoint.c_str() + colon + 1);
    }
    if (unix_path.empty() && tcp_port < 0) {
        std::fprintf(stderr,
                     "error: pass --unix PATH or --connect HOST:PORT\n");
        return 2;
    }
    const bool quiet = kv.count("quiet") != 0;

    svc::socket_fd sock;
    try {
        sock = unix_path.empty() ? svc::connect_tcp(tcp_host, tcp_port)
                                 : svc::connect_unix(unix_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ehdse_client: %s\n", e.what());
        return 1;
    }
    svc::frame_splitter splitter;
    std::string frame;

    if (command == "ping" || command == "stats") {
        if (!send_frame(sock.get(), command == "ping"
                                        ? svc::make_ping()
                                        : svc::make_stats_request()))
            transport_error("send");
        if (!read_frame(sock.get(), splitter, frame)) transport_error("recv");
        std::puts(frame.c_str());
        return 0;
    }

    if (command == "cancel") {
        if (!kv.count("id")) {
            std::fprintf(stderr, "error: cancel requires --id ID\n");
            return 2;
        }
        if (!send_frame(sock.get(), svc::make_cancel(kv["id"])))
            transport_error("send");
        if (!read_frame(sock.get(), splitter, frame)) transport_error("recv");
        std::puts(frame.c_str());
        return frame_type(obs::json_value::parse(frame)) == "cancelled" ? 0
                                                                        : 5;
    }

    if (command != "submit") {
        std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
        return 2;
    }

    spec::experiment_spec request_spec;
    if (kv.count("spec")) {
        std::ifstream in(kv["spec"]);
        if (!in) {
            std::fprintf(stderr, "error: cannot read '%s'\n",
                         kv["spec"].c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        try {
            request_spec = spec::parse_spec(text.str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s: %s\n", kv["spec"].c_str(),
                         e.what());
            return 2;
        }
    }
    svc::workload work = svc::workload::simulate;
    if (kv.count("kind")) {
        try {
            work = svc::workload_from_string(kv["kind"]);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    const std::string id = kv.count("id") ? kv["id"] : "req-1";
    const long cancel_after_ms =
        kv.count("cancel-after-ms") ? std::atol(kv["cancel-after-ms"].c_str())
                                    : -1;

    if (!send_frame(sock.get(), svc::make_submit(id, work, request_spec)))
        transport_error("send");

    bool cancel_sent = false;
    for (;;) {
        if (!read_frame(sock.get(), splitter, frame)) transport_error("recv");
        if (!quiet) std::puts(frame.c_str());
        obs::json_value doc;
        try {
            doc = obs::json_value::parse(frame);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "ehdse_client: unparsable frame: %s\n",
                         e.what());
            return 5;
        }
        const std::string type = frame_type(doc);
        if (type == "accepted" && cancel_after_ms >= 0 && !cancel_sent) {
            cancel_sent = true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cancel_after_ms));
            if (!send_frame(sock.get(), svc::make_cancel(id)))
                transport_error("send");
            continue;
        }
        if (type == "result") {
            const obs::json_value* status = doc.find("status");
            const bool ok = status && status->is_string() &&
                            status->as_string() == "ok";
            if (quiet) std::puts(frame.c_str());
            return ok ? 0 : 3;
        }
        if (type == "cancelled") return cancel_sent ? 0 : 4;
        if (type == "rejected") return 5;
        if (type == "error") {
            // too_late after our own cancel: the request is still running
            // and will produce a result — keep streaming.
            const obs::json_value* code = doc.find("code");
            if (cancel_sent && code && code->is_string() &&
                code->as_string() == "too_late")
                continue;
            return 5;
        }
        if (type == "goodbye") transport_error("server shut down");
    }
}
