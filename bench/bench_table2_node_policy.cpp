// Table II reproduction: sensor node transmission cadence per
// supercapacitor voltage band, observed by running the node process
// against a plant pinned at one voltage per band.
#include <cstdio>

#include "node/sensor_node.hpp"
#include "sim/simulator.hpp"

namespace {

class pinned_plant final : public ehdse::harvester::plant {
public:
    explicit pinned_plant(double v) : voltage_(v) {}
    double storage_voltage() const override { return voltage_; }
    void withdraw(double, const std::string&) override {}
    void set_sustained_draw(const std::string&, double) override {}
    int position() const override { return 0; }
    void set_position(int) override {}
    double vibration_frequency() const override { return 64.0; }
    double phase_lag() const override { return 1.5707963; }

private:
    double voltage_;
};

class null_system final : public ehdse::sim::analog_system {
public:
    std::size_t state_size() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> d) const override {
        d[0] = 0.0;
    }
};

}  // namespace

int main() {
    std::printf("=== Table II: sensor node behaviour vs supercapacitor voltage ===\n");
    std::printf("(observed over a 30-minute run at a pinned voltage; fast interval 5 s)\n\n");
    std::printf("%-22s %-28s %-16s %-14s\n", "voltage band", "paper behaviour",
                "observed tx", "observed rate");

    struct band {
        const char* label;
        double voltage;
        const char* paper;
    };
    const band bands[] = {
        {"below 2.7 V", 2.65, "no transmission"},
        {"2.7 V - 2.8 V", 2.75, "every 1 minute"},
        {"above 2.8 V", 2.90, "every 5 s (parameter x3)"},
    };

    constexpr double horizon = 1800.0;
    for (const band& b : bands) {
        null_system sys;
        ehdse::sim::simulator sim(sys, {0.0});
        pinned_plant plant(b.voltage);
        ehdse::node::sensor_node node(sim, plant);
        sim.run_until(horizon);
        const auto tx = node.transmissions();
        char rate[64];
        if (tx == 0)
            std::snprintf(rate, sizeof rate, "none");
        else
            std::snprintf(rate, sizeof rate, "every %.1f s",
                          horizon / static_cast<double>(tx));
        std::printf("%-22s %-28s %-16llu %-14s\n", b.label, b.paper,
                    static_cast<unsigned long long>(tx), rate);
    }
    std::printf("\nPASS criteria: 0 tx below cut-off, ~30 tx at 1/min, ~360 tx at 1/5 s.\n");
    return 0;
}
