#!/usr/bin/env bash
# Driver for the perf-gate ctests: run a bench binary (it writes
# BENCH_<name>.json into the work dir), then hand the fresh file to
# scripts/check_perf.sh for comparison against the committed baseline.
# The JSON name derives from the binary name (bench_foo -> BENCH_foo.json).
# Exit 77 (skip) propagates so ctest's SKIP_RETURN_CODE applies.
#
# A wall-clock benchmark on a shared/virtualised host sees bursty
# external load, so a single marginal reading must not fail the build:
# the bench+check cycle retries up to EHDSE_PERF_GATE_ATTEMPTS (default
# 3) times and passes on the first clean run. Genuine code regressions
# fail every attempt.
#
# Usage: run_perf_gate.sh <bench_exe> <work_dir> <check_perf.sh>
set -u

if [ -n "${EHDSE_SKIP_PERF_GATE:-}" ]; then
    echo "perf gate skipped (EHDSE_SKIP_PERF_GATE set)"
    exit 77
fi

bench_exe="$1"
work_dir="$2"
check_script="$3"
attempts="${EHDSE_PERF_GATE_ATTEMPTS:-3}"

json_name="$(basename "$bench_exe")"
json_name="BENCH_${json_name#bench_}.json"

cd "$work_dir" || exit 2
rc=1
for attempt in $(seq 1 "$attempts"); do
    [ "$attempt" -gt 1 ] && echo "perf gate: retry $attempt/$attempts"
    "$bench_exe" || exit 1
    "$check_script" "$work_dir/$json_name"
    rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 77 ] && exit "$rc"
done
exit "$rc"
