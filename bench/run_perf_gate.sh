#!/usr/bin/env bash
# Driver for the perf_batch_kernel_gate ctest: run the bench (it writes
# BENCH_batch_kernel.json into the work dir), then hand the fresh file to
# scripts/check_perf.sh for comparison against the committed baseline.
# Exit 77 (skip) propagates so ctest's SKIP_RETURN_CODE applies.
#
# Usage: run_perf_gate.sh <bench_batch_kernel_exe> <work_dir> <check_perf.sh>
set -u

if [ -n "${EHDSE_SKIP_PERF_GATE:-}" ]; then
    echo "perf gate skipped (EHDSE_SKIP_PERF_GATE set)"
    exit 77
fi

bench_exe="$1"
work_dir="$2"
check_script="$3"

cd "$work_dir" || exit 2
"$bench_exe" || exit 1
exec "$check_script" "$work_dir/BENCH_batch_kernel.json"
