// Fig. 4 reproduction: one-dimensional design-space exploration — each
// parameter swept across its range with the other two held at the centre,
// showing both the fitted response surface (paper: green solid) and the
// underlying simulation (paper: red dashed design-space extent).
#include <algorithm>
#include <cstdio>
#include <string>

#include "dse/rsm_flow.hpp"
#include "rsm/sensitivity.hpp"

namespace {

/// Minimal ASCII sparkline for a series scaled to its own min/max.
std::string sparkline(const std::vector<double>& ys) {
    static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    const auto [lo, hi] = std::minmax_element(ys.begin(), ys.end());
    std::string out;
    for (double y : ys) {
        const double t = *hi > *lo ? (y - *lo) / (*hi - *lo) : 0.5;
        out += levels[static_cast<int>(t * 7.0 + 0.5)];
    }
    return out;
}

}  // namespace

int main() {
    using namespace ehdse;

    dse::system_evaluator evaluator;
    const auto flow = dse::run_rsm_flow(evaluator, {});
    const auto& space = flow.space;

    std::printf("=== Fig. 4: design space exploration (1-D slices) ===\n");
    std::printf("(other parameters held at the coded origin = original design)\n");

    const char* names[] = {"x1: MCU clock frequency (Hz)",
                           "x2: watchdog wake-up time (s)",
                           "x3: transmission interval (s)"};

    for (std::size_t axis = 0; axis < 3; ++axis) {
        std::printf("\n--- %s ---\n", names[axis]);
        std::printf("%12s %12s %12s %12s\n", "natural", "coded", "RSM y",
                    "simulated y");
        std::vector<double> rsm_series;
        for (int step = 0; step <= 10; ++step) {
            const double coded = -1.0 + 0.2 * step;
            numeric::vec x{0.0, 0.0, 0.0};
            x[axis] = coded;
            const double y_rsm = flow.fit.predict(x);
            rsm_series.push_back(y_rsm);
            // Validate with a true simulation at every other grid point.
            if (step % 2 == 0) {
                const auto cfg = dse::config_from_coded(space, x);
                const auto r = evaluator.evaluate(cfg);
                std::printf("%12.4g %12.1f %12.1f %12llu\n",
                            space.decode(axis, coded), coded, y_rsm,
                            static_cast<unsigned long long>(r.transmissions));
            } else {
                std::printf("%12.4g %12.1f %12.1f %12s\n",
                            space.decode(axis, coded), coded, y_rsm, "-");
            }
        }
        std::printf("  RSM slice: [%s]  (coded -1 .. +1)\n",
                    sparkline(rsm_series).c_str());
    }

    // Quantify "x3 dominates": analytic Sobol decomposition of the surface.
    const auto sens = rsm::sobol_indices(flow.fit.quadratic()->model);
    std::printf("\n=== variance-based sensitivity of the fitted surface ===\n");
    std::printf("%6s %14s %14s\n", "var", "first-order S", "total ST");
    for (std::size_t i = 0; i < 3; ++i)
        std::printf("  x%zu   %13.1f%% %13.1f%%\n", i + 1,
                    100.0 * sens.first_order[i], 100.0 * sens.total_order[i]);

    std::printf("\nShape check vs paper Fig. 4: y falls steeply along x3 (smaller\n"
                "interval -> more transmissions) and is comparatively flat along\n"
                "x1/x2 with curvature from the measurement/energy trade-offs.\n");
    return 0;
}
