// DOE-method ablation: the paper's D-optimal selection against the other
// classical designs the library implements — central composite,
// Box-Behnken and a maximin Latin hypercube — each fitted with the same
// quadratic and judged on grid-truth accuracy and on the validated optimum
// its surface leads to.
#include <cstdio>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "doe/sampling.hpp"
#include "dse/system_evaluator.hpp"
#include "numeric/stats.hpp"
#include "opt/simulated_annealing.hpp"
#include "rsm/quadratic_model.hpp"

int main() {
    using namespace ehdse;

    dse::system_evaluator evaluator;
    const auto space = dse::paper_design_space();
    const auto grid = doe::full_factorial(3, 3);
    const auto basis = [](const numeric::vec& x) { return rsm::quadratic_basis(x); };

    // Ground truth over the grid for the accuracy metric.
    numeric::vec truth;
    for (const auto& c : grid)
        truth.push_back(static_cast<double>(
            evaluator.evaluate(dse::config_from_coded(space, c)).transmissions));

    struct design_case {
        std::string name;
        std::vector<numeric::vec> points;
    };
    std::vector<design_case> cases;

    {
        const auto sel = doe::d_optimal_design(grid, basis, 10);
        design_case d{"D-optimal (10)", {}};
        for (std::size_t idx : sel.selected) d.points.push_back(grid[idx]);
        cases.push_back(std::move(d));
    }
    cases.push_back({"face-centred CCD (15)", doe::central_composite(3, 1.0, 1)});
    cases.push_back({"Box-Behnken (13)", doe::box_behnken(3, 1)});
    {
        numeric::rng rng(7);
        cases.push_back({"maximin LHS (14)",
                         doe::maximin_latin_hypercube(3, 14, rng)});
    }

    std::printf("=== DOE methods through the full flow ===\n\n");
    std::printf("%-24s %6s %11s %12s | %10s %10s\n", "design", "runs",
                "grid RMSE", "probe max", "pred opt", "valid opt");
    for (const auto& d : cases) {
        numeric::vec y;
        for (const auto& p : d.points)
            y.push_back(static_cast<double>(
                evaluator.evaluate(dse::config_from_coded(space, p)).transmissions));
        const auto fit = rsm::fit_quadratic(d.points, y);

        numeric::vec pred;
        for (const auto& c : grid) pred.push_back(fit.model.predict(c));
        const double rmse = numeric::rmse(truth, pred);
        const double maxerr = numeric::max_abs_error(truth, pred);

        numeric::rng rng(11);
        const auto best = opt::simulated_annealing().maximize(
            [&](const numeric::vec& x) { return fit.model.predict(x); },
            opt::box_bounds::unit(3), rng);
        const auto validated = evaluator.evaluate(
            dse::config_from_coded(space, space.clamp(best.best_x)));

        std::printf("%-24s %6zu %11.1f %12.1f | %10.0f %10llu\n", d.name.c_str(),
                    d.points.size(), rmse, maxerr, best.best_value,
                    static_cast<unsigned long long>(validated.transmissions));
    }

    std::printf("\nReading: every classical design lands its optimiser in the\n"
                "same small-interval basin — the decision the surface exists to\n"
                "support — while differing in run count and off-grid accuracy.\n"
                "D-optimal does it with the fewest simulations, which is the\n"
                "paper's §II-B argument.\n");
    return 0;
}
