// Multi-objective extension: the paper maximises transmissions alone; a
// deployed node also values the energy left in the store at the end of the
// horizon (resilience against an upcoming lull). This bench fits TWO
// response surfaces from the same 10 D-optimal simulations — transmissions
// and final stored energy — runs NSGA-II over them, and validates a few
// points of the resulting Pareto front with full simulations.
#include <algorithm>
#include <cstdio>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "dse/system_evaluator.hpp"
#include "opt/nsga2.hpp"
#include "rsm/quadratic_model.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Pareto trade-off: transmissions vs final stored energy ===\n\n");
    dse::system_evaluator evaluator;
    const auto space = dse::paper_design_space();
    power::supercapacitor cap;

    // One DOE, two responses per run.
    const auto candidates = doe::full_factorial(3, 3);
    const auto basis = [](const numeric::vec& x) { return rsm::quadratic_basis(x); };
    const auto selection = doe::d_optimal_design(candidates, basis, 10);

    std::vector<numeric::vec> pts;
    numeric::vec y_tx, y_energy;
    for (std::size_t idx : selection.selected) {
        const auto& coded = candidates[idx];
        const auto r = evaluator.evaluate(dse::config_from_coded(space, coded));
        pts.push_back(coded);
        y_tx.push_back(static_cast<double>(r.transmissions));
        y_energy.push_back(cap.energy_at(r.final_voltage_v) * 1e3);  // mJ
    }
    const auto fit_tx = rsm::fit_quadratic(pts, y_tx);
    const auto fit_energy = rsm::fit_quadratic(pts, y_energy);
    std::printf("fitted both surfaces from %zu runs (R^2 = %.3f / %.3f)\n\n",
                pts.size(), fit_tx.r_squared, fit_energy.r_squared);

    // NSGA-II over the two surfaces.
    numeric::rng rng(99);
    const auto front = opt::nsga2().optimize(
        [&](const numeric::vec& x) {
            return numeric::vec{fit_tx.model.predict(x),
                                fit_energy.model.predict(x)};
        },
        2, opt::box_bounds::unit(3), rng);
    std::printf("Pareto front: %zu non-dominated points\n\n", front.size());

    // Show a spread of the front, validating every third point.
    std::printf("%28s | %10s %12s | %10s %12s\n", "config (clock, wd, int)",
                "pred tx", "pred E(mJ)", "sim tx", "sim E(mJ)");
    const std::size_t stride = std::max<std::size_t>(front.size() / 6, 1);
    for (std::size_t i = 0; i < front.size(); i += stride) {
        const auto& p = front[i];
        const auto cfg = dse::config_from_coded(space, p.x);
        const auto r = evaluator.evaluate(cfg);
        std::printf("(%8.3g, %5.0f, %7.3f) | %10.0f %12.1f | %10llu %12.1f\n",
                    cfg.mcu_clock_hz, cfg.watchdog_period_s, cfg.tx_interval_s,
                    p.objectives[0], p.objectives[1],
                    static_cast<unsigned long long>(r.transmissions),
                    cap.energy_at(r.final_voltage_v) * 1e3);
    }

    // Reference corners.
    const auto greedy = evaluator.evaluate(
        dse::config_from_coded(space, {0.0, 1.0, -1.0}));
    const auto hoarder = evaluator.evaluate(
        dse::config_from_coded(space, {0.0, 1.0, 1.0}));
    std::printf("\nreference: greedy (interval 5 ms)  -> %llu tx, %.1f mJ stored\n",
                static_cast<unsigned long long>(greedy.transmissions),
                cap.energy_at(greedy.final_voltage_v) * 1e3);
    std::printf("reference: hoarder (interval 10 s) -> %llu tx, %.1f mJ stored\n",
                static_cast<unsigned long long>(hoarder.transmissions),
                cap.energy_at(hoarder.final_voltage_v) * 1e3);

    std::printf("\nReading: the transmission interval sweeps the node along the\n"
                "trade-off — every transmission beyond the interval ceiling is\n"
                "paid for out of the final reserve. The single-objective optimum\n"
                "of Table VI is the maximum-transmissions end of this front.\n");
    return 0;
}
