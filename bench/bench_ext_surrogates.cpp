// Surrogate comparison: the paper's quadratic RSM vs a Gaussian-process
// (kriging) surrogate at identical simulation budgets, judged on how well
// each predicts unseen configurations of the real system.
#include <cmath>
#include <cstdio>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "doe/sampling.hpp"
#include "dse/system_evaluator.hpp"
#include "numeric/stats.hpp"
#include "rsm/kriging.hpp"
#include "rsm/quadratic_model.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Surrogate comparison: quadratic RSM vs kriging ===\n\n");
    dse::system_evaluator evaluator;
    const auto space = dse::paper_design_space();

    // Ground truth over the full 27-point grid.
    const auto grid = doe::full_factorial(3, 3);
    numeric::vec truth;
    for (const auto& c : grid)
        truth.push_back(static_cast<double>(
            evaluator.evaluate(dse::config_from_coded(space, c)).transmissions));

    // Off-grid probe set (harder: tests between the training levels).
    numeric::rng probe_rng(2024);
    std::vector<numeric::vec> probes;
    numeric::vec probe_truth;
    for (int i = 0; i < 15; ++i) {
        numeric::vec c{probe_rng.uniform(-1.0, 1.0), probe_rng.uniform(-1.0, 1.0),
                       probe_rng.uniform(-1.0, 1.0)};
        probe_truth.push_back(static_cast<double>(
            evaluator.evaluate(dse::config_from_coded(space, c)).transmissions));
        probes.push_back(std::move(c));
    }

    std::printf("%-12s %-22s %12s %12s\n", "budget", "surrogate", "grid RMSE",
                "probe RMSE");
    const auto basis = [](const numeric::vec& x) { return rsm::quadratic_basis(x); };
    for (std::size_t runs : {10u, 16u, 27u}) {
        // Shared training set: D-optimal selection of `runs` grid points.
        std::vector<std::size_t> sel;
        if (runs == grid.size()) {
            for (std::size_t i = 0; i < grid.size(); ++i) sel.push_back(i);
        } else {
            sel = doe::d_optimal_design(grid, basis, runs).selected;
        }
        std::vector<numeric::vec> train;
        numeric::vec y;
        for (std::size_t idx : sel) {
            train.push_back(grid[idx]);
            y.push_back(truth[idx]);
        }

        const auto quad = rsm::fit_quadratic(train, y);
        const auto gp = rsm::fit_gp_auto(train, y, 1.0);

        auto rmse_of = [&](auto&& predict) {
            numeric::vec on_grid, on_probe;
            for (const auto& c : grid) on_grid.push_back(predict(c));
            for (const auto& c : probes) on_probe.push_back(predict(c));
            return std::pair{numeric::rmse(truth, on_grid),
                             numeric::rmse(probe_truth, on_probe)};
        };
        const auto [qg, qp] = rmse_of(
            [&](const numeric::vec& c) { return quad.model.predict(c); });
        const auto [gg, gp_rmse] =
            rmse_of([&](const numeric::vec& c) { return gp.predict(c); });

        std::printf("%-12zu %-22s %12.1f %12.1f\n", runs, "quadratic RSM", qg, qp);
        std::printf("%-12s %-22s %12.1f %12.1f   (l=%.2f)\n", "", "kriging (GP)",
                    gg, gp_rmse, gp.params().length_scale);
    }

    std::printf("\nReading: the GP edges out the quadratic at every budget here\n"
                "(~20%% lower probe RMSE) because the true response carries the\n"
                "3600/x3 ceiling curvature a second-order polynomial cannot bend\n"
                "around; at 27 runs the GP interpolates the grid outright. The\n"
                "quadratic remains the cheaper, analysable choice (ANOVA, Sobol,\n"
                "closed-form optimisation structure) — both slot into the same\n"
                "DOE + optimiser flow.\n");
    return 0;
}
