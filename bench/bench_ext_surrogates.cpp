// Surrogate comparison, registry-driven: every model rsm::make_surrogate
// can build (the paper's quadratic RSM, the backward-eliminated stepwise
// variant, a Gaussian-process surrogate) fitted on identical simulation
// budgets and judged on how well each predicts unseen configurations of
// the real system — plus where each surface puts its optimum.
#include <cmath>
#include <cstdio>

#include "doe/design.hpp"
#include "doe/designs.hpp"
#include "dse/system_evaluator.hpp"
#include "numeric/stats.hpp"
#include "rsm/quadratic_model.hpp"
#include "rsm/surrogate.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Surrogate comparison (rsm::surrogate_registry) ===\n\n");
    dse::system_evaluator evaluator;
    const auto space = dse::paper_design_space();

    // Ground truth over the full 27-point grid.
    const auto grid = doe::full_factorial(3, 3);
    numeric::vec truth;
    for (const auto& c : grid)
        truth.push_back(static_cast<double>(
            evaluator.evaluate(dse::config_from_coded(space, c)).transmissions));

    // Off-grid probe set (harder: tests between the training levels).
    numeric::rng probe_rng(2024);
    std::vector<numeric::vec> probes;
    numeric::vec probe_truth;
    for (int i = 0; i < 15; ++i) {
        numeric::vec c{probe_rng.uniform(-1.0, 1.0), probe_rng.uniform(-1.0, 1.0),
                       probe_rng.uniform(-1.0, 1.0)};
        probe_truth.push_back(static_cast<double>(
            evaluator.evaluate(dse::config_from_coded(space, c)).transmissions));
        probes.push_back(std::move(c));
    }

    std::printf("%-8s %-12s %8s %10s %10s %10s  %s\n", "budget", "surrogate",
                "R^2", "LOO RMSE", "grid RMSE", "probe RMSE", "argmax (coded)");
    for (std::size_t runs : {10u, 16u, 27u}) {
        // Shared training set per budget: the registry's D-optimal design.
        doe::design_request request;
        request.dimension = 3;
        request.runs = runs;
        request.basis = [](const numeric::vec& x) {
            return rsm::quadratic_basis(x);
        };
        const auto design = runs == grid.size()
                                ? [&] {
                                      doe::design_request full = request;
                                      full.name = "full_factorial";
                                      return doe::make_design(full);
                                  }()
                                : doe::make_design(request);
        numeric::vec y;
        for (const numeric::vec& pt : design.points) {
            for (std::size_t g = 0; g < grid.size(); ++g)
                if (grid[g] == pt) {
                    y.push_back(truth[g]);
                    break;
                }
        }

        for (const rsm::surrogate_info& info : rsm::surrogate_registry()) {
            rsm::surrogate_fit fit;
            try {
                fit = rsm::make_surrogate(info.name)->fit(design.points, y);
            } catch (const std::exception&) {
                std::printf("%-8zu %-12s %8s   (unfittable at this budget)\n",
                            runs, info.name.c_str(), "-");
                continue;
            }
            numeric::vec on_grid, on_probe;
            for (const auto& c : grid) on_grid.push_back(fit.predict(c));
            for (const auto& c : probes) on_probe.push_back(fit.predict(c));

            // Argmax over a dense coded grid — where this surface would
            // send the optimiser.
            numeric::vec best{0.0, 0.0, 0.0};
            double best_y = -1e300;
            for (int i = 0; i <= 20; ++i)
                for (int j = 0; j <= 20; ++j)
                    for (int l = 0; l <= 20; ++l) {
                        const numeric::vec x{-1.0 + 0.1 * i, -1.0 + 0.1 * j,
                                             -1.0 + 0.1 * l};
                        const double v = fit.predict(x);
                        if (v > best_y) {
                            best_y = v;
                            best = x;
                        }
                    }
            std::printf("%-8zu %-12s %8.4f %10.4g %10.1f %10.1f  "
                        "(%+.1f, %+.1f, %+.1f) -> %.0f\n",
                        runs, info.name.c_str(), fit.r_squared, fit.loo_rmse,
                        numeric::rmse(truth, on_grid),
                        numeric::rmse(probe_truth, on_probe), best[0], best[1],
                        best[2], best_y);
        }
    }

    std::printf("\nReading: the GP edges out the quadratic on probe RMSE because\n"
                "the true response carries the 3600/x3 ceiling curvature a\n"
                "second-order polynomial cannot bend around; the stepwise\n"
                "variant needs an over-determined design (runs > 10 terms) but\n"
                "then reports a sparser, analysable polynomial. All three slot\n"
                "into the same flow via --surrogate NAME.\n");
    return 0;
}
