// Robustness ablation: does the RSM-optimised configuration keep its edge
// over the original when the deployment conditions deviate from the
// nominal scenario the DOE was run under? (Extension beyond the paper,
// which evaluates one fixed stimulus.)
#include <cstdio>

#include "dse/robustness.hpp"
#include "dse/rsm_flow.hpp"
#include "harvester/vibration.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Robustness of the optimised configuration ===\n");
    std::printf("(5 noise seeds; 40/60/80 mg excitation; 3/5/8 Hz steps)\n\n");

    dse::system_evaluator evaluator;
    const auto flow = dse::run_rsm_flow(evaluator, {});

    const dse::scenario base;  // nominal paper scenario
    const auto orig = dse::run_robustness_study(
        base, dse::system_config::original(), "original");
    const auto best = dse::run_robustness_study(
        base, flow.outcomes.front().config, flow.outcomes.front().name);

    auto show = [](const dse::robustness_summary& s) {
        std::printf("%-22s mean %7.1f  min %6.0f  max %6.0f  stddev %6.1f\n",
                    s.label.c_str(), s.mean_tx, s.min_tx, s.max_tx, s.stddev_tx);
    };
    show(orig);
    show(best);

    std::printf("\nper-variant transmissions (same variant order):\n");
    std::printf("%-10s %12s %12s %10s\n", "variant", "original", "optimised",
                "ratio");
    const char* variant_names[] = {"seed 1",  "seed 2",  "seed 3",  "seed 4",
                                   "seed 5",  "40 mg",   "60 mg",   "80 mg",
                                   "3Hz step", "5Hz step", "8Hz step"};
    for (std::size_t i = 0; i < orig.samples.size(); ++i) {
        const double ratio =
            orig.samples[i] > 0 ? best.samples[i] / orig.samples[i] : 0.0;
        std::printf("%-10s %12.0f %12.0f %9.2fx\n",
                    i < std::size(variant_names) ? variant_names[i] : "?",
                    orig.samples[i], best.samples[i], ratio);
    }

    // A harsher world than the paper's two clean steps: a bounded random
    // walk of the ambient frequency (new 1-3 Hz hop every 6 minutes).
    std::printf("\n=== random-walk ambient (3 seeds, 10 hops of <=3 Hz) ===\n\n");
    std::printf("%8s %12s %12s %9s\n", "walk", "original", "optimised", "ratio");
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        const auto walk = harvester::vibration_source::random_walk(
            0.060 * harvester::k_gravity, 69.0, 360.0, 3.0, 64.5, 87.5, 10, seed);
        dse::scenario s;
        s.frequency_schedule.emplace_back(0.0, 69.0);
        for (std::size_t i = 0; i < walk.change_times().size(); ++i) {
            const double t = walk.change_times()[i];
            s.frequency_schedule.emplace_back(t, walk.frequency_at(t));
        }
        dse::system_evaluator ev(s);
        const auto r_orig = ev.evaluate(dse::system_config::original());
        const auto r_best = ev.evaluate(flow.outcomes.front().config);
        std::printf("%8llu %12llu %12llu %8.2fx\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(r_orig.transmissions),
                    static_cast<unsigned long long>(r_best.transmissions),
                    static_cast<double>(r_best.transmissions) /
                        static_cast<double>(r_orig.transmissions));
    }

    std::printf("\nReading: the optimised design must dominate across every\n"
                "variant (ratio > 1), with the margin growing in energy-rich\n"
                "conditions (higher acceleration) and shrinking when retunes get\n"
                "costlier (larger frequency steps); it holds under a wandering\n"
                "ambient as well, where the tuning loop works far harder.\n");
    return 0;
}
