// Eq. (9) reproduction: the fitted quadratic response-surface coefficients,
// printed term by term beside the paper's published polynomial.
//
// Absolute coefficient values depend on the underlying simulator, so the
// comparison is about structure: which terms dominate, with which signs.
#include <cmath>
#include <cstdio>

#include "dse/rsm_flow.hpp"
#include "rsm/quadratic_model.hpp"
#include "paper_refs.hpp"

int main() {
    using namespace ehdse;

    dse::system_evaluator evaluator;
    const auto flow = dse::run_rsm_flow(evaluator, {});
    const rsm::quadratic_model& model = flow.fit.quadratic()->model;
    const auto& beta = model.coefficients();

    std::printf("=== eq. (9): fitted response surface (coded variables) ===\n\n");
    std::printf("%-8s %12s %12s %8s\n", "term", "paper", "this repo", "signs");
    int sign_matches = 0;
    for (std::size_t t = 0; t < beta.size(); ++t) {
        const double ours = beta[t];
        const double paper = bench::k_paper_eq9[t];
        const bool same = (ours >= 0) == (paper >= 0);
        sign_matches += same;
        std::printf("%-8s %12.2f %12.2f %8s\n",
                    rsm::quadratic_term_name(3, t).c_str(), paper, ours,
                    same ? "match" : "differ");
    }
    std::printf("\n%d/10 coefficient signs match the paper.\n", sign_matches);

    // Which linear effect dominates (paper: x3, the transmission interval).
    std::size_t dominant = 0;
    for (std::size_t i = 1; i < 3; ++i)
        if (std::abs(model.linear(i)) > std::abs(model.linear(dominant)))
            dominant = i;
    std::printf("dominant linear effect: x%zu (paper: x3)\n", dominant + 1);

    std::printf("\nfit diagnostics: R^2 = %.6f, adjusted R^2 = %.6f, SSE = %.3g\n",
                flow.fit.r_squared, flow.fit.adj_r_squared, flow.fit.sse);
    std::printf("(10 runs, 10 terms: the paper's design is saturated too — the\n"
                " polynomial interpolates its design points exactly.)\n");

    std::printf("\nfitted model:\n  y = %s\n", model.to_string(2).c_str());

    std::printf("\ndesign points (coded) and responses:\n");
    for (std::size_t i = 0; i < flow.design_coded.size(); ++i) {
        const auto& c = flow.design_coded[i];
        std::printf("  (%+.0f, %+.0f, %+.0f) -> %5.0f tx\n", c[0], c[1], c[2],
                    flow.responses[i]);
    }
    return 0;
}
