// Coding ablation: linear coded variables (the paper's eq. 3) versus
// log-axis coding for the clock frequency, whose range spans 64x
// (125 kHz - 8 MHz). With linear coding the three DOE levels are
// {125 kHz, 4.06 MHz, 8 MHz} — the whole sub-MHz regime collapses into one
// level; a log axis probes {125 kHz, 1 MHz, 8 MHz} instead.
#include <cmath>
#include <cstdio>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "dse/system_evaluator.hpp"
#include "numeric/stats.hpp"
#include "opt/simulated_annealing.hpp"
#include "rsm/quadratic_model.hpp"

int main() {
    using namespace ehdse;

    dse::system_evaluator evaluator;
    const auto candidates = doe::full_factorial(3, 3);
    const auto basis = [](const numeric::vec& x) { return rsm::quadratic_basis(x); };

    struct variant {
        const char* name;
        rsm::design_space space;
    };
    const variant variants[] = {
        {"linear coding (paper)", dse::paper_design_space()},
        {"log-coded clock",
         rsm::design_space({
             {"mcu_clock_hz", 125e3, 8e6, rsm::axis_scale::logarithmic},
             {"watchdog_period_s", 60.0, 600.0, rsm::axis_scale::linear},
             {"tx_interval_s", 0.005, 10.0, rsm::axis_scale::linear},
         })},
    };

    std::printf("=== Coding ablation: linear vs log clock axis ===\n\n");
    for (const auto& v : variants) {
        std::printf("--- %s ---\n", v.name);
        std::printf("clock DOE levels: %.3g / %.3g / %.3g Hz\n",
                    v.space.decode(0, -1.0), v.space.decode(0, 0.0),
                    v.space.decode(0, 1.0));

        const auto selection = doe::d_optimal_design(candidates, basis, 10);
        std::vector<numeric::vec> pts;
        numeric::vec y;
        for (std::size_t idx : selection.selected) {
            const auto& coded = candidates[idx];
            pts.push_back(coded);
            const auto cfg = dse::system_config::from_vector(v.space.decode(coded));
            y.push_back(static_cast<double>(evaluator.evaluate(cfg).transmissions));
        }
        const auto fit = rsm::fit_quadratic(pts, y);

        // Optimise and validate.
        numeric::rng rng(7);
        const auto best = opt::simulated_annealing().maximize(
            [&](const numeric::vec& x) { return fit.model.predict(x); },
            opt::box_bounds::unit(3), rng);
        const auto best_cfg =
            dse::system_config::from_vector(v.space.decode(v.space.clamp(best.best_x)));
        const auto validated = evaluator.evaluate(best_cfg);

        // Off-design accuracy: 8 probe points between the grid levels.
        numeric::vec probe_true, probe_pred;
        numeric::rng prng(99);
        for (int i = 0; i < 8; ++i) {
            numeric::vec coded{prng.uniform(-1.0, 1.0), prng.uniform(-1.0, 1.0),
                               prng.uniform(-1.0, 1.0)};
            const auto cfg = dse::system_config::from_vector(v.space.decode(coded));
            probe_true.push_back(
                static_cast<double>(evaluator.evaluate(cfg).transmissions));
            probe_pred.push_back(fit.model.predict(coded));
        }

        std::printf("optimum: clock %.3g Hz, wd %.0f s, interval %.3f s -> "
                    "predicted %.0f, validated %llu tx\n",
                    best_cfg.mcu_clock_hz, best_cfg.watchdog_period_s,
                    best_cfg.tx_interval_s, best.best_value,
                    static_cast<unsigned long long>(validated.transmissions));
        std::printf("off-design probe RMSE: %.1f tx\n\n",
                    numeric::rmse(probe_true, probe_pred));
    }

    std::printf("Reading: the response is mild along the clock axis in either\n"
                "coding (x1's effects are second-order here), so the paper's\n"
                "linear choice is adequate; the log axis mainly redistributes\n"
                "where the sub-MHz regime is sampled.\n");
    return 0;
}
