// Storage sizing study: the paper fixes the 0.55 F supercapacitor "as an
// example". How does the optimisation story change with the storage size
// and its initial charge? Small stores swing through the Table II bands
// quickly (policy-dominated behaviour); large ones buffer everything.
#include <cstdio>
#include <memory>

#include "dse/system_evaluator.hpp"
#include "power/battery.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Storage sizing: capacitance x configuration ===\n\n");
    std::printf("%10s | %18s | %18s | %14s\n", "C (F)", "original (5 s)",
                "greedy (5 ms)", "ratio");
    std::printf("%10s | %8s %9s | %8s %9s |\n", "", "tx/h", "V swing", "tx/h",
                "V swing");

    for (double c_f : {0.055, 0.22, 0.55, 1.1, 2.2}) {
        power::supercapacitor_params cap;
        cap.capacitance_f = c_f;
        dse::system_evaluator ev({}, harvester::microgenerator_params{}, cap);

        dse::system_config original = dse::system_config::original();
        dse::system_config greedy = original;
        greedy.tx_interval_s = 0.005;

        const auto r_orig = ev.evaluate(original);
        const auto r_greedy = ev.evaluate(greedy);
        std::printf("%10.3f | %8llu %7.3f V | %8llu %7.3f V | %12.2fx\n", c_f,
                    static_cast<unsigned long long>(r_orig.transmissions),
                    r_orig.max_voltage_v - r_orig.min_voltage_v,
                    static_cast<unsigned long long>(r_greedy.transmissions),
                    r_greedy.max_voltage_v - r_greedy.min_voltage_v,
                    static_cast<double>(r_greedy.transmissions) /
                        static_cast<double>(r_orig.transmissions));
    }

    std::printf("\n=== Initial-charge sensitivity (0.55 F, greedy config) ===\n\n");
    std::printf("%12s %10s %12s %12s\n", "V initial", "tx/h", "harvested",
                "final V");
    for (double v0 : {2.60, 2.70, 2.75, 2.80, 2.90, 3.00}) {
        dse::scenario s;
        s.v_initial = v0;
        dse::system_evaluator ev(s);
        dse::system_config greedy = dse::system_config::original();
        greedy.tx_interval_s = 0.005;
        const auto r = ev.evaluate(greedy);
        std::printf("%10.2f V %10llu %9.1f mJ %10.3f V\n", v0,
                    static_cast<unsigned long long>(r.transmissions),
                    r.harvested_energy_j * 1e3, r.final_voltage_v);
    }

    std::printf("\n=== Supercapacitor vs thin-film battery (1 h, original config) ===\n\n");
    std::printf("%-26s %8s %10s %12s %12s\n", "storage", "tx/h", "V swing",
                "harvested", "final V");
    {
        dse::scenario s;
        s.v_initial = 2.95;  // inside the battery's usable window
        dse::system_evaluator ev(s);
        const auto sc = ev.evaluate(dse::system_config::original());
        std::printf("%-26s %8llu %8.3f V %9.1f mJ %10.3f V\n",
                    "supercapacitor 0.55 F",
                    static_cast<unsigned long long>(sc.transmissions),
                    sc.max_voltage_v - sc.min_voltage_v,
                    sc.harvested_energy_j * 1e3, sc.final_voltage_v);

        ev.set_storage(std::make_shared<power::thin_film_battery>());
        const auto bat = ev.evaluate(dse::system_config::original());
        std::printf("%-26s %8llu %8.3f V %9.1f mJ %10.3f V\n",
                    "thin-film battery 1 mAh",
                    static_cast<unsigned long long>(bat.transmissions),
                    bat.max_voltage_v - bat.min_voltage_v,
                    bat.harvested_energy_j * 1e3, bat.final_voltage_v);
    }

    std::printf("\nReading: the greedy design's advantage is robust across a 40x\n"
                "capacitance range; the initial charge mostly shifts how much of\n"
                "the pre-stored reserve the hour can liquidate (each extra 0.1 V\n"
                "above the 2.8 V band is ~150 mJ ~ 700 transmissions' worth).\n"
                "The battery's near-flat terminal voltage keeps the node in one\n"
                "Table II band the entire hour — stable service, at the price of\n"
                "cycle-life wear the supercapacitor does not incur.\n");
    return 0;
}
