// Fig. 5 reproduction: supercapacitor voltage over the one-hour run for
// the original and the SA-optimised designs. Prints a sampled table and an
// ASCII strip chart, and writes full-resolution CSVs next to the binary.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "dse/rsm_flow.hpp"
#include "sim/waveform_db.hpp"

namespace {

void ascii_plot(const ehdse::sim::trace& tr, double t_end) {
    constexpr int cols = 72;
    constexpr int rows = 12;
    const double lo = tr.min_value();
    const double hi = tr.max_value();
    std::vector<std::string> grid(rows, std::string(cols, ' '));
    for (int c = 0; c < cols; ++c) {
        const double t = t_end * c / (cols - 1);
        const double v = tr.sample(t);
        const double frac = hi > lo ? (v - lo) / (hi - lo) : 0.5;
        const int r = static_cast<int>((1.0 - frac) * (rows - 1) + 0.5);
        grid[r][c] = '*';
    }
    std::printf("  %.3f V\n", hi);
    for (const auto& line : grid) std::printf("  |%s\n", line.c_str());
    std::printf("  %.3f V  (0 .. %.0f s; frequency steps at 1500 s and 3000 s)\n",
                lo, t_end);
}

}  // namespace

int main() {
    using namespace ehdse;

    std::printf("=== Fig. 5: supercapacitor voltage, original vs optimised ===\n\n");
    dse::system_evaluator evaluator;
    const auto flow = dse::run_rsm_flow(evaluator, {});

    dse::evaluation_options opts;
    opts.record_traces = true;
    opts.trace_interval_s = 1.0;

    const auto original = evaluator.evaluate(dse::system_config::original(), opts);
    const auto& best_cfg = flow.outcomes.front().config;
    const auto optimised = evaluator.evaluate(best_cfg, opts);

    const double t_end = evaluator.scene().duration_s;
    std::printf("original design (4 MHz, 320 s, 5 s): %llu transmissions\n",
                static_cast<unsigned long long>(original.transmissions));
    ascii_plot(*original.voltage_trace, t_end);

    std::printf("\noptimised design (%.3g Hz, %.0f s, %.3f s): %llu transmissions\n",
                best_cfg.mcu_clock_hz, best_cfg.watchdog_period_s,
                best_cfg.tx_interval_s,
                static_cast<unsigned long long>(optimised.transmissions));
    ascii_plot(*optimised.voltage_trace, t_end);

    std::printf("\n%8s %14s %14s\n", "time (s)", "V original", "V optimised");
    for (int t = 0; t <= 3600; t += 300)
        std::printf("%8d %14.4f %14.4f\n", t, original.voltage_trace->sample(t),
                    optimised.voltage_trace->sample(t));

    // Full-resolution CSVs for external plotting.
    for (const auto& [name, res] :
         {std::pair<const char*, const dse::evaluation_result*>{
              "fig5_original.csv", &original},
          {"fig5_optimised.csv", &optimised}}) {
        std::ofstream os(name);
        res->voltage_trace->write_csv(os);
        std::printf("wrote %s (%zu samples)\n", name, res->voltage_trace->size());
    }

    // Combined VCD (voltage + actuator position, both runs) for GTKWave.
    {
        sim::waveform_db db(1e-3);
        const auto add = [&db](const char* prefix,
                               const dse::evaluation_result& res) {
            const auto v = db.add_signal(std::string(prefix) + "_vcap");
            const auto p = db.add_signal(std::string(prefix) + "_position");
            for (std::size_t i = 0; i < res.voltage_trace->size(); ++i)
                db.record(v, res.voltage_trace->times()[i],
                          res.voltage_trace->values()[i]);
            for (std::size_t i = 0; i < res.position_trace->size(); ++i)
                db.record(p, res.position_trace->times()[i],
                          res.position_trace->values()[i]);
        };
        add("original", original);
        add("optimised", optimised);
        std::ofstream os("fig5_waveforms.vcd");
        db.write_vcd(os, "fig5");
        std::printf("wrote fig5_waveforms.vcd (4 signals)\n");
    }

    std::printf("\nShape check vs paper Fig. 5: both waveforms dip after each\n"
                "frequency step (retune actuation) and recover; the optimised\n"
                "design rides lower — it converts the margin into transmissions.\n");
    std::printf("original:  min %.3f V, max %.3f V, final %.3f V\n",
                original.voltage_trace->min_value(),
                original.voltage_trace->max_value(), original.final_voltage_v);
    std::printf("optimised: min %.3f V, max %.3f V, final %.3f V\n",
                optimised.voltage_trace->min_value(),
                optimised.voltage_trace->max_value(), optimised.final_voltage_v);
    return 0;
}
