// Reference numbers quoted from the paper (Wang et al., DATE 2012), used by
// the benchmark harnesses to print paper-vs-measured comparisons.
#pragma once

#include <array>

namespace ehdse::bench {

/// Paper eq. (9): fitted response surface in coded variables, term order
/// [1, x1, x2, x3, x1^2, x2^2, x3^2, x1x2, x1x3, x2x3].
inline constexpr std::array<double, 10> k_paper_eq9 = {
    484.02, -121.79, -16.77, -208.43, 120.98,
    106.69, -69.75,  -34.23, -121.79, 32.54};

/// Paper Table VI.
struct table6_row {
    const char* name;
    double clock_hz;
    double watchdog_s;
    double interval_s;
    unsigned transmissions;
};
inline constexpr table6_row k_paper_table6[] = {
    {"original", 4e6, 320.0, 5.0, 405},
    {"simulated-annealing", 8e6, 60.0, 0.005, 899},
    {"genetic-algorithm", 125e3, 600.0, 3.065, 894},
};

/// Paper Table III (sensor node current draw) and derived figures.
inline constexpr double k_paper_tx_energy_j = 227e-6;
inline constexpr double k_paper_r_transmit_ohm = 167.0;
inline constexpr double k_paper_r_sleep_ohm = 5.8e6;

/// Paper Table IV rows: {operation, time_ms, power_mw, energy_mj}.
struct table4_row {
    const char* component;
    const char* operation;
    double time_ms;
    double power_mw;
    double energy_mj;
};
inline constexpr table4_row k_paper_table4[] = {
    {"accelerometer", "measurement", 153.0, 13.2, 2.02},
    {"actuator", "1 step", 5.0, 811.0, 4.06},
    {"actuator", "100 steps", 500.0, 405.0, 203.0},
    {"mcu", "coarse-grain tuning", 149.0, 5.0, 0.745},
    {"mcu", "fine-grain tuning", 325.0, 6.5, 2.11},
};

}  // namespace ehdse::bench
