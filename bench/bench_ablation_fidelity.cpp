// Whole-system fidelity ablation: the COMPLETE mixed-signal system (node +
// tuning controller + storage) run at envelope and full-transient fidelity.
// Where bench_ablation_statespace validates the bare harvester models, this
// validates end-to-end behaviour: transmission counts, tuning decisions and
// the energy budget.
#include <chrono>
#include <cstdio>

#include "dse/system_evaluator.hpp"

int main() {
    using namespace ehdse;
    using clock = std::chrono::steady_clock;

    std::printf("=== Whole-system fidelity: envelope vs full transient ===\n\n");

    struct case_row {
        const char* name;
        dse::system_config cfg;
        double duration_s;
    };
    const case_row cases[] = {
        {"original, 10 min", dse::system_config::original(), 600.0},
        {"greedy (8M,60,0.005), 10 min", {8e6, 60.0, 0.005}, 600.0},
        {"original, full hour", dse::system_config::original(), 3600.0},
    };

    std::printf("%-30s | %9s %9s | %9s %9s | %10s %10s\n", "case", "tx env",
                "tx trans", "harv env", "harv tr", "wall env", "wall tr");
    for (const auto& c : cases) {
        dse::scenario s;
        s.duration_s = c.duration_s;
        s.step_period_s = c.duration_s / 2.4;  // keep both retunes in window
        dse::system_evaluator ev(s);

        dse::evaluation_options env_o, tr_o;
        tr_o.model = dse::fidelity::transient;

        const auto t0 = clock::now();
        const auto env = ev.evaluate(c.cfg, env_o);
        const auto t1 = clock::now();
        const auto tr = ev.evaluate(c.cfg, tr_o);
        const auto t2 = clock::now();

        std::printf("%-30s | %9llu %9llu | %6.1f mJ %6.1f mJ | %7.0f ms %7.0f ms\n",
                    c.name, static_cast<unsigned long long>(env.transmissions),
                    static_cast<unsigned long long>(tr.transmissions),
                    env.harvested_energy_j * 1e3, tr.harvested_energy_j * 1e3,
                    std::chrono::duration<double, std::milli>(t1 - t0).count(),
                    std::chrono::duration<double, std::milli>(t2 - t1).count());
    }

    std::printf("\nThe envelope fast path and the cycle-resolving transient model\n"
                "agree on transmissions within a couple of counts and on harvested\n"
                "energy within a few percent, at ~30-100x less wall clock for the\n"
                "whole system (the gap narrows vs the bare-harvester 5000x because\n"
                "digital events dominate the envelope run's step count).\n");
    return 0;
}
