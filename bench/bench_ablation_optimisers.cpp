// Optimiser ablation: the paper's SA and GA against Nelder-Mead, pattern
// search and random search, on (a) the paper's published surface (eq. 9)
// and (b) this repo's freshly fitted surface. 20 seeds each; success =
// within 0.5% of the best value any optimiser found.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "dse/rsm_flow.hpp"
#include "rsm/quadratic_model.hpp"
#include "opt/genetic_algorithm.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/pattern_search.hpp"
#include "opt/simulated_annealing.hpp"
#include "opt/swarm.hpp"
#include "paper_refs.hpp"

int main() {
    using namespace ehdse;

    const std::vector<std::shared_ptr<opt::optimizer>> optimizers = {
        std::make_shared<opt::simulated_annealing>(),
        std::make_shared<opt::genetic_algorithm>(),
        std::make_shared<opt::particle_swarm>(),
        std::make_shared<opt::differential_evolution>(),
        std::make_shared<opt::nelder_mead>(),
        std::make_shared<opt::pattern_search>(),
        std::make_shared<opt::random_search>(),
    };

    // Surface (a): the paper's eq. 9.
    const rsm::quadratic_model paper_model(
        3, numeric::vec(bench::k_paper_eq9.begin(), bench::k_paper_eq9.end()));

    // Surface (b): our fitted model.
    dse::system_evaluator evaluator;
    const auto flow = dse::run_rsm_flow(evaluator, {});

    struct surface {
        const char* name;
        const rsm::quadratic_model* model;
    };
    const surface surfaces[] = {{"paper eq. (9)", &paper_model},
                                {"this repo's fit", &flow.fit.quadratic()->model}};

    constexpr int seeds = 20;
    for (const auto& s : surfaces) {
        std::printf("=== surface: %s ===\n\n", s.name);
        const opt::objective_fn f = [&](const numeric::vec& x) {
            return s.model->predict(x);
        };
        const auto bounds = opt::box_bounds::unit(3);

        // Establish the best-known value across all algorithms and seeds.
        double best_known = -1e300;
        std::vector<std::vector<double>> values(optimizers.size());
        std::vector<std::vector<std::size_t>> evals(optimizers.size());
        for (std::size_t a = 0; a < optimizers.size(); ++a) {
            for (int seed = 0; seed < seeds; ++seed) {
                numeric::rng rng(1000 + seed);
                const auto r = optimizers[a]->maximize(f, bounds, rng);
                values[a].push_back(r.best_value);
                evals[a].push_back(r.evaluations);
                best_known = std::max(best_known, r.best_value);
            }
        }

        std::printf("%-22s %10s %10s %10s %10s %9s\n", "algorithm", "best",
                    "median", "worst", "avg evals", "success");
        for (std::size_t a = 0; a < optimizers.size(); ++a) {
            auto vs = values[a];
            std::sort(vs.begin(), vs.end());
            double eval_sum = 0.0;
            for (std::size_t e : evals[a]) eval_sum += static_cast<double>(e);
            int successes = 0;
            for (double v : vs)
                if (v >= best_known - 0.005 * std::abs(best_known)) ++successes;
            std::printf("%-22s %10.1f %10.1f %10.1f %10.0f %7d/%d\n",
                        optimizers[a]->name().c_str(), vs.back(), vs[vs.size() / 2],
                        vs.front(), eval_sum / seeds, successes, seeds);
        }
        std::printf("\nbest known maximum: %.1f\n\n", best_known);
    }

    std::printf("Paper context: MATLAB's SA and GA found 899 and 894 on eq. (9);\n"
                "both implementations here must reach the same basin, with the\n"
                "local baselines competitive only thanks to multistart.\n");
    return 0;
}
