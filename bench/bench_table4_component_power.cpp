// Table IV reproduction: power/energy models of the tuning-subsystem
// components, printed beside the paper's measured values. The MCU rows are
// derived from the clock-dependent model at the original design's 4 MHz.
#include <cstdio>

#include "mcu/power_model.hpp"
#include "paper_refs.hpp"

int main() {
    using namespace ehdse;
    const mcu::mcu_params mcu_p;                 // 4 MHz default
    const mcu::actuator_params act;
    const mcu::accelerometer_params acc;
    constexpr double f_vib = 64.0;

    std::printf("=== Table IV: power consumption models of system components ===\n\n");
    std::printf("%-15s %-22s | %9s %9s | %9s %9s\n", "component", "operation",
                "paper t", "model t", "paper E", "model E");
    std::printf("%-15s %-22s | %8s %8s | %8s %8s\n", "", "", "(ms)", "(ms)",
                "(mJ)", "(mJ)");

    auto row = [](const char* comp, const char* op, double pt, double mt,
                  double pe, double me) {
        std::printf("%-15s %-22s | %9.1f %9.1f | %9.3f %9.3f\n", comp, op, pt, mt,
                    pe, me);
    };

    row("accelerometer", "measurement",
        ehdse::bench::k_paper_table4[0].time_ms, acc.on_time_s * 1e3,
        ehdse::bench::k_paper_table4[0].energy_mj, acc.energy_per_use_j * 1e3);

    row("actuator", "1 step", ehdse::bench::k_paper_table4[1].time_ms,
        mcu::actuator_move_time(act, 1) * 1e3,
        ehdse::bench::k_paper_table4[1].energy_mj,
        mcu::actuator_move_energy(act, 1) * 1e3);

    row("actuator", "100 steps", ehdse::bench::k_paper_table4[2].time_ms,
        mcu::actuator_move_time(act, 100) * 1e3,
        ehdse::bench::k_paper_table4[2].energy_mj,
        mcu::actuator_move_energy(act, 100) * 1e3);

    const double t_coarse = mcu::measurement_duration(mcu_p, f_vib) +
                            mcu_p.coarse_calc_cycles / mcu_p.clock_hz;
    row("mcu (4 MHz)", "coarse-grain tuning",
        ehdse::bench::k_paper_table4[3].time_ms, t_coarse * 1e3,
        ehdse::bench::k_paper_table4[3].energy_mj,
        mcu::coarse_energy(mcu_p, f_vib) * 1e3);

    const double t_fine = mcu::fine_measurement_duration(mcu_p, f_vib) +
                          mcu_p.fine_calc_cycles / mcu_p.clock_hz;
    row("mcu (4 MHz)", "fine-grain tuning",
        ehdse::bench::k_paper_table4[4].time_ms, t_fine * 1e3,
        ehdse::bench::k_paper_table4[4].energy_mj,
        mcu::fine_energy(mcu_p, f_vib) * 1e3);

    std::printf("\n=== clock dependence of the MCU energy (the x1 trade-off) ===\n\n");
    std::printf("%10s %14s %18s %20s\n", "clock", "active power",
                "coarse energy", "freq-meas sigma @64Hz");
    for (double clk : {125e3, 0.5e6, 1e6, 2e6, 4e6, 8e6}) {
        mcu::mcu_params p = mcu_p;
        p.clock_hz = clk;
        const double sigma = p.capture_loop_cycles * f_vib * f_vib /
                             (p.measured_signal_cycles * clk);
        std::printf("%7.3f MHz %11.2f mW %15.3f mJ %17.4f Hz\n", clk / 1e6,
                    mcu::mcu_active_power(p) * 1e3,
                    mcu::coarse_energy(p, f_vib) * 1e3, sigma);
    }
    std::printf("\nHigher clocks spend more energy in the fixed, signal-defined\n"
                "measurement window but measure the input frequency more accurately\n"
                "(paper section III, parameter 1).\n");
    return 0;
}
