// Ref [9] ablation: the envelope (cycle-averaged, "linearised state-space")
// fast path against the full nonlinear transient model — accuracy of the
// predicted charging power and the wall-clock speed-up that makes hour-long
// design-space sweeps affordable.
#include <chrono>
#include <cstdio>

#include "harvester/envelope.hpp"
#include "harvester/transient_model.hpp"
#include "harvester/tuning_table.hpp"
#include "power/supercapacitor.hpp"
#include "sim/simulator.hpp"

int main() {
    using namespace ehdse;
    using clock = std::chrono::steady_clock;

    const harvester::microgenerator gen;
    const harvester::tuning_table table(gen);
    const power::supercapacitor cap;
    const power::load_bank no_loads;
    constexpr double accel = 0.060 * harvester::k_gravity;
    constexpr double window_s = 20.0;  // measured after a 4 s settling lead-in

    std::printf("=== Accelerated (envelope) vs full transient model ===\n");
    std::printf("(charging power into the store at V = 2.8 V, 60 mg excitation)\n\n");
    std::printf("%8s %6s | %12s %10s | %12s %10s | %8s %9s\n", "f (Hz)", "pos",
                "transient P", "wall (ms)", "envelope P", "wall (ms)", "err %",
                "speed-up");

    struct case_row {
        double f_hz;
        double detune_hz;  ///< position targets f - detune (0 = tuned)
    };
    const case_row cases[] = {{64.0, 0.0}, {69.0, 0.0}, {69.0, 0.5},
                              {69.0, 1.5}, {74.0, 0.0}, {80.0, 0.0}};
    for (const auto& [f, detune] : cases) {
        const int pos = table.lookup(f - detune);

        // Full transient run.
        const harvester::vibration_source vib(accel, f);
        harvester::transient_model model(gen, vib, cap, no_loads);
        model.set_position(pos);
        sim::ode_options opt;
        opt.abs_tol = 1e-9;
        opt.rel_tol = 1e-6;
        opt.initial_dt = 1e-5;
        opt.max_dt = harvester::transient_model::suggested_max_dt(f);

        const auto t0 = clock::now();
        auto x = harvester::transient_model::initial_state(2.8);
        sim::simulator sim(model, x, opt);
        sim.run_until(4.0);
        const double e0 = sim.state_at(harvester::transient_model::ix_harvested);
        sim.run_until(4.0 + window_s);
        const double e1 = sim.state_at(harvester::transient_model::ix_harvested);
        const auto t1 = clock::now();
        const double p_transient = (e1 - e0) / window_s;
        const double ms_transient =
            std::chrono::duration<double, std::milli>(t1 - t0).count();

        // Envelope solution (amortised over the same simulated window: the
        // hour-long simulator re-solves it per integrator stage, so time a
        // representative batch).
        const auto t2 = clock::now();
        harvester::envelope_point pt;
        constexpr int solves = 200;
        for (int i = 0; i < solves; ++i)
            pt = harvester::solve_envelope(gen, pos, f, accel, 2.8);
        const auto t3 = clock::now();
        const double ms_envelope =
            std::chrono::duration<double, std::milli>(t3 - t2).count() / solves;

        const double err = pt.elec.p_store_w > 0.0 || p_transient > 0.0
                               ? 100.0 * (pt.elec.p_store_w - p_transient) /
                                     (p_transient > 0 ? p_transient : 1.0)
                               : 0.0;
        std::printf("%5.1f%+3.1f %5d | %9.2f uW %10.1f | %9.2f uW %10.3f | %+7.1f %8.0fx\n",
                    f, detune, pos, p_transient * 1e6, ms_transient,
                    pt.elec.p_store_w * 1e6, ms_envelope, err,
                    ms_transient / ms_envelope);
    }

    std::printf("\nThe envelope model tracks the transient ground truth within a\n"
                "few percent at and around resonance while being orders of\n"
                "magnitude faster — the property (paper ref [9]) that makes the\n"
                "10-run DOE over one-hour simulations practical.\n");
    return 0;
}
