// Extension study: electromagnetic (the paper's device) vs piezoelectric
// transduction on the same mechanics, tuning mechanism and rectifier —
// which harvester family suits the 2.7-2.8 V supercapacitor system?
#include <cstdio>

#include "harvester/envelope.hpp"
#include "harvester/piezo.hpp"
#include "harvester/piezo_transient.hpp"
#include "power/supercapacitor.hpp"
#include "sim/simulator.hpp"
#include "harvester/tuning_table.hpp"
#include "harvester/vibration.hpp"

int main() {
    using namespace ehdse;

    const harvester::microgenerator em;
    const harvester::piezo_microgenerator pz;
    const harvester::tuning_table table(em);
    constexpr double accel = 0.060 * harvester::k_gravity;
    constexpr double f = 69.0;
    const int pos = table.lookup(f);

    std::printf("=== EM vs piezo transduction (same mechanics, 60 mg, %.0f Hz) ===\n\n",
                f);
    std::printf("piezo open-circuit voltage at the open amplitude: %.2f V\n",
                pz.open_circuit_voltage(
                    em.response(2.0 * 3.14159265 * f, accel, pos, 0.0)
                        .displacement_amp_m));
    std::printf("piezo first-order optimal sink U* = V_oc/2 = %.2f V\n\n",
                pz.optimal_sink_voltage(pos, f, accel));

    std::printf("%10s | %14s %14s | %12s\n", "V store", "EM P_store",
                "piezo P_store", "piezo I_avg");
    for (double v = 0.4; v <= 4.01; v += 0.4) {
        const auto em_pt = harvester::solve_envelope(em, pos, f, accel, v);
        const auto pz_pt = pz.solve(pos, f, accel, v);
        std::printf("%8.1f V | %11.1f uW %11.1f uW | %9.1f uA\n", v,
                    em_pt.elec.p_store_w * 1e6, pz_pt.p_store_w * 1e6,
                    pz_pt.i_avg_a * 1e6);
    }

    std::printf("\nAt the system's 2.8 V operating band:\n");
    const auto em_28 = harvester::solve_envelope(em, pos, f, accel, 2.8);
    const auto pz_28 = pz.solve(pos, f, accel, 2.8);
    std::printf("  EM    : %.1f uW stored (bridge conduction angle %.2f rad)\n",
                em_28.elec.p_store_w * 1e6, em_28.elec.conduction_angle);
    std::printf("  piezo : %.1f uW stored (V_oc at solution %.2f V)\n",
                pz_28.p_store_w * 1e6, pz_28.v_oc_amp_v);

    // Ground-truth check of the averaged piezo model: full transient run.
    {
        power::supercapacitor cap;
        power::load_bank no_loads;
        const harvester::vibration_source vib(accel, f);
        harvester::piezo_transient_model model(pz, vib, cap, no_loads);
        model.set_position(pos);
        auto x = harvester::piezo_transient_model::initial_state(2.8);
        sim::ode_options opt;
        opt.abs_tol = 1e-9;
        opt.rel_tol = 1e-6;
        opt.initial_dt = 1e-6;
        opt.max_dt = harvester::piezo_transient_model::suggested_max_dt(f);
        sim::simulator sim(model, x, opt);
        sim.run_until(4.0);
        const double e0 = sim.state_at(harvester::piezo_transient_model::ix_harvested);
        sim.run_until(10.0);
        const double e1 = sim.state_at(harvester::piezo_transient_model::ix_harvested);
        std::printf("  piezo transient ground truth: %.1f uW stored (averaged "
                    "model %+.1f%%)\n",
                    (e1 - e0) / 6.0 * 1e6,
                    100.0 * (pz_28.p_store_w - (e1 - e0) / 6.0) / ((e1 - e0) / 6.0));
    }

    std::printf("\nReading: the piezo element's stored power peaks near V_oc/2\n"
                "(visible as the maximum around ~2.8 V above) and falls off on\n"
                "either side, so its output is hostage to wherever the storage\n"
                "voltage happens to sit; the EM device keeps climbing towards its\n"
                "optimum beyond the supercap band. Both families deliver the same\n"
                "order of power from the same mechanical budget — the choice is a\n"
                "front-end/operating-point question, not a raw-power one.\n");
    return 0;
}
