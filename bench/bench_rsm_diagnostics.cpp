// Statistical assessment of the response surface — the analysis paper
// section II omits "due to space limitations", supplied here: re-run the
// methodology with an over-determined D-optimal design (16 runs instead of
// the saturated 10) and report the regression ANOVA, per-term significance
// and prediction standard errors across the design space.
#include <cstdio>

#include "dse/rsm_flow.hpp"
#include "rsm/anova.hpp"
#include "rsm/stepwise.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== RSM statistical assessment (16-run D-optimal design) ===\n\n");
    dse::system_evaluator evaluator;
    dse::flow_options opts;
    opts.doe_runs = 16;
    const auto flow = dse::run_rsm_flow(evaluator, opts);

    const rsm::fit_result& fit = *flow.fit.quadratic();
    const auto anova = rsm::analyse_fit(flow.design_coded, flow.responses, fit);
    std::printf("%s\n", rsm::format_anova(anova).c_str());

    std::printf("LOO-CV RMSE (leave-one-out): %.1f transmissions\n\n",
                flow.fit.loo_rmse);

    std::printf("prediction standard error across the space:\n");
    std::printf("%24s %12s %14s\n", "coded point", "y_hat", "std.err(y_hat)");
    const numeric::vec probes[] = {
        {0.0, 0.0, 0.0}, {1.0, 1.0, -1.0}, {-1.0, -1.0, -1.0}, {0.0, 0.0, 1.0},
        {0.5, -0.5, -0.5}};
    for (const auto& x : probes) {
        std::printf("      (%+.1f, %+.1f, %+.1f) %12.1f %14.1f\n", x[0], x[1],
                    x[2], fit.model.predict(x),
                    rsm::prediction_std_error(flow.design_coded, anova, x));
    }

    // Lack-of-fit: replicate every design point with distinct measurement
    // seeds so residual error splits into pure error vs model inadequacy.
    std::printf("\n=== lack-of-fit test (12-run design, 2 replicates each) ===\n\n");
    dse::flow_options rep_opts;
    rep_opts.doe_runs = 12;
    rep_opts.replicates = 2;
    const auto rep_flow = dse::run_rsm_flow(evaluator, rep_opts);
    const auto lof = rsm::lack_of_fit(rep_flow.design_coded, rep_flow.responses,
                                      *rep_flow.fit.quadratic());
    if (lof.testable) {
        std::printf("SS lack-of-fit %.1f (df %zu), SS pure error %.1f (df %zu)\n",
                    lof.ss_lack_of_fit, lof.df_lack_of_fit, lof.ss_pure_error,
                    lof.df_pure_error);
        std::printf("F = %.2f, p = %.4f -> the quadratic is %s at the 5%% level\n",
                    lof.f_statistic, lof.p_value,
                    lof.p_value < 0.05 ? "INADEQUATE (curvature beyond order 2)"
                                       : "not rejected");
    } else {
        std::printf("not testable (no replicate/pure-error degrees of freedom)\n");
    }

    // Backward elimination on the same data: the sparse model a careful
    // analyst would actually report.
    const auto reduced =
        rsm::backward_eliminate(flow.design_coded, flow.responses, 0.05);
    std::printf("=== backward elimination (alpha = 0.05) ===\n\n");
    std::printf("dropped (in order):");
    for (const auto& name : reduced.dropped) std::printf(" %s", name.c_str());
    std::printf("\nreduced model: y = %s\n", reduced.model.to_string(2).c_str());
    std::printf("R^2 %.4f (full: %.4f), adj R^2 %.4f, %zu refits\n\n",
                reduced.r_squared, flow.fit.r_squared, reduced.adj_r_squared,
                reduced.refits);

    std::printf("significant terms (p < 0.05):");
    for (const auto& c : anova.coefficients)
        if (c.significant_05) std::printf(" %s", c.term.c_str());
    std::printf("\n\nReading: x3 and the x3-linked terms carry the response — the\n"
                "statistical backing for the paper's design-space conclusion. A\n"
                "saturated 10-run design (the paper's and our default) cannot\n"
                "produce this table at all: it interpolates with zero residual\n"
                "degrees of freedom, which is why the library also supports\n"
                "over-determined D-optimal designs.\n");
    return 0;
}
