// Execution-engine throughput: system evaluations per second through the
// work-stealing pool at jobs = 1/2/4/8, with and without the memoising
// cache, plus the end-to-end flow sequential vs parallel. Speedups over
// jobs=1 depend on the host's core count — on a single-core container
// every jobs setting collapses to ~1x, which is expected.
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "dse/cached_evaluator.hpp"
#include "dse/rsm_flow.hpp"
#include "dse/system_evaluator.hpp"
#include "exec/batch.hpp"
#include "exec/thread_pool.hpp"
#include "obs/timing.hpp"
#include "rsm/quadratic_model.hpp"

int main() {
    using namespace ehdse;

    // The paper's 10-point D-optimal design on a 10-minute scenario: the
    // same work the flow's simulate phase does, just isolated.
    dse::scenario scn;
    scn.duration_s = 600.0;
    scn.step_period_s = 250.0;
    scn.step_count = 1;
    dse::system_evaluator evaluator(scn);

    const auto space = dse::paper_design_space();
    const auto candidates = doe::full_factorial(3, 3);
    const auto selection = doe::d_optimal_design(
        candidates,
        [](const numeric::vec& x) { return rsm::quadratic_basis(x); }, 10, {});
    std::vector<dse::system_config> configs;
    for (std::size_t idx : selection.selected)
        configs.push_back(dse::config_from_coded(space, candidates[idx]));

    std::printf("=== Execution engine throughput ===\n");
    std::printf("hardware threads: %zu\n", exec::default_concurrency());
    std::printf("workload: %zu design-point evaluations, %g s scenario\n\n",
                configs.size(), scn.duration_s);

    const auto evaluate_batch = [&](exec::thread_pool* pool) {
        exec::parallel_for(pool, configs.size(), [&](std::size_t i) {
            (void)evaluator.evaluate(configs[i]);
        });
    };

    // Warm-up so first-touch effects don't land on the jobs=1 row.
    evaluate_batch(nullptr);

    bench::json_emitter json("exec_throughput");
    const std::string workload = std::to_string(configs.size()) +
                                 "-point d-optimal, 600 s scenario";

    std::printf("--- pool scaling (cache off) ---\n");
    std::printf("%6s %12s %12s %10s\n", "jobs", "wall s", "evals/s", "speedup");
    double base_wall = 0.0;
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
        exec::thread_pool pool(jobs);
        obs::stopwatch watch;
        evaluate_batch(&pool);
        const double wall = watch.seconds();
        if (jobs == 1) base_wall = wall;
        std::printf("%6zu %12.3f %12.2f %9.2fx\n", jobs, wall,
                    static_cast<double>(configs.size()) / wall,
                    base_wall / wall);
        json.record("evals_per_s_jobs" + std::to_string(jobs),
                    static_cast<double>(configs.size()) / wall, "evals/s",
                    workload + ", scalar path");
    }

    std::printf("\n--- batch kernel (1 thread) ---\n");
    {
        (void)evaluator.evaluate_batch(configs);  // warm-up
        obs::stopwatch watch;
        (void)evaluator.evaluate_batch(configs);
        const double wall = watch.seconds();
        const double rate = static_cast<double>(configs.size()) / wall;
        std::printf("evaluate_batch: %.3f s (%.2f evals/s, %.2fx jobs=1)\n",
                    wall, rate, base_wall / wall);
        json.record("batch_evals_per_s", rate, "evals/s",
                    workload + ", SoA batch, 1 thread");
    }

    std::printf("\n--- memoisation (jobs = 4) ---\n");
    {
        dse::cached_evaluator cache(evaluator);
        exec::thread_pool pool(4);
        const auto cached_batch = [&] {
            exec::parallel_for(&pool, configs.size(), [&](std::size_t i) {
                (void)cache.evaluate(configs[i]);
            });
        };
        obs::stopwatch cold;
        cached_batch();
        const double cold_wall = cold.seconds();
        obs::stopwatch warm;
        cached_batch();
        const double warm_wall = warm.seconds();
        const auto stats = cache.stats();
        std::printf("cold pass (all misses): %.3f s\n", cold_wall);
        std::printf("warm pass (all hits):   %.6f s (%.0fx faster)\n",
                    warm_wall, cold_wall / warm_wall);
        std::printf("hits %llu, misses %llu, hit rate %.0f%%\n",
                    static_cast<unsigned long long>(stats.hits),
                    static_cast<unsigned long long>(stats.misses),
                    100.0 * stats.hit_rate());
    }

    std::printf("\n--- end-to-end flow ---\n");
    {
        dse::flow_options seq;
        obs::stopwatch seq_watch;
        (void)dse::run_rsm_flow(evaluator, seq);
        const double seq_wall = seq_watch.seconds();

        dse::flow_options par;
        par.parallel = true;
        par.jobs = 4;
        obs::stopwatch par_watch;
        const auto flow = dse::run_rsm_flow(evaluator, par);
        const double par_wall = par_watch.seconds();

        std::printf("sequential:        %.3f s\n", seq_wall);
        std::printf("parallel (jobs 4): %.3f s (%.2fx)\n", par_wall,
                    seq_wall / par_wall);
        std::printf("flow cache: %llu hits / %llu misses\n",
                    static_cast<unsigned long long>(flow.cache.hits),
                    static_cast<unsigned long long>(flow.cache.misses));
        json.record("flow_sequential_s", seq_wall, "s", "full rsm flow");
    }
    json.write();
    return 0;
}
