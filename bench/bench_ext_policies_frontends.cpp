// Extension study: transmission-policy and power-front-end upgrades on top
// of the paper's system — the two "future work" levers the architecture
// suggests. One hour each, original configuration unless noted.
#include <cstdio>

#include "dse/system_evaluator.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Policy x front-end matrix (1 h, 60 mg, 2 freq steps) ===\n\n");
    std::printf("%-14s %-14s %-12s | %8s %12s %10s\n", "policy", "front-end",
                "interval", "tx/h", "harvested", "final V");

    struct row {
        const char* policy_name;
        node::tx_policy policy;
        const char* fe_name;
        dse::frontend_kind fe;
        double interval;
    };
    const row rows[] = {
        {"banded (paper)", node::tx_policy::banded, "bridge (paper)",
         dse::frontend_kind::diode_bridge, 5.0},
        {"proportional", node::tx_policy::proportional, "bridge (paper)",
         dse::frontend_kind::diode_bridge, 5.0},
        {"banded (paper)", node::tx_policy::banded, "MPPT 75%",
         dse::frontend_kind::mppt, 5.0},
        {"proportional", node::tx_policy::proportional, "MPPT 75%",
         dse::frontend_kind::mppt, 5.0},
        {"banded (paper)", node::tx_policy::banded, "bridge (paper)",
         dse::frontend_kind::diode_bridge, 0.05},
        {"banded (paper)", node::tx_policy::banded, "MPPT 75%",
         dse::frontend_kind::mppt, 0.05},
    };

    for (const auto& r : rows) {
        node::node_params node_params;
        node_params.policy = r.policy;
        dse::system_evaluator ev({}, harvester::microgenerator_params{}, {}, {},
                                 node_params, {});

        dse::system_config cfg = dse::system_config::original();
        cfg.tx_interval_s = r.interval;
        dse::evaluation_options opts;
        opts.frontend = r.fe;

        const auto res = ev.evaluate(cfg, opts);
        std::printf("%-14s %-14s %-12.3g | %8llu %9.1f mJ %9.3f V\n",
                    r.policy_name, r.fe_name, r.interval,
                    static_cast<unsigned long long>(res.transmissions),
                    res.harvested_energy_j * 1e3, res.final_voltage_v);
    }

    std::printf("\nReading:\n"
                "* The proportional policy removes the 2.8 V cliff but slows the\n"
                "  cadence everywhere below its full-speed voltage: it transmits\n"
                "  less and banks more at every excitation level — a smooth knob\n"
                "  along the count-vs-reserve Pareto front of\n"
                "  bench_ext_multiobjective rather than a free win.\n"
                "* The MPPT front-end lifts the gross harvest ~1.7x (no conduction\n"
                "  threshold, matched load), which the small-interval row converts\n"
                "  into 2.2x the transmissions; at the 5 s interval the ceiling\n"
                "  hides the gain entirely — the same interval-vs-energy coupling\n"
                "  the paper's x3 term encodes.\n");
    return 0;
}
