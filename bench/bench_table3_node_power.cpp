// Table III reproduction: sensor-node current draw per transmission phase
// and the derived per-transmission energy / equivalent resistances
// (paper eq. 8).
#include <cstdio>

#include "node/sensor_node.hpp"
#include "paper_refs.hpp"

int main() {
    using namespace ehdse;
    const node::node_params p;
    const auto m = node::derive_energy_model(p);

    std::printf("=== Table III: current draw of the sensor node ===\n\n");
    std::printf("%-14s %-10s %-10s\n", "operation", "time", "current");
    std::printf("%-14s %-10s %-10.1f uA\n", "sleep", "-", p.sleep_current_a * 1e6);
    std::printf("%-14s %-7.1f ms %-10.1f mA\n", "wake-up", p.wakeup_time_s * 1e3,
                p.wakeup_current_a * 1e3);
    std::printf("%-14s %-7.1f ms %-10.1f mA\n", "sensing", p.sensing_time_s * 1e3,
                p.sensing_current_a * 1e3);
    std::printf("%-14s %-7.1f ms %-10.1f mA\n", "transmission", p.tx_time_s * 1e3,
                p.tx_current_a * 1e3);

    std::printf("\n=== derived figures vs paper ===\n\n");
    std::printf("%-34s %12s %12s\n", "quantity", "paper", "this model");
    std::printf("%-34s %9.0f uJ %9.1f uJ\n", "energy per transmission (at 2.8 V)",
                bench::k_paper_tx_energy_j * 1e6, m.energy_per_tx_j * 1e6);
    std::printf("%-34s %9.0f oh %9.1f oh\n", "equivalent R while transmitting",
                bench::k_paper_r_transmit_ohm, m.r_transmit_ohm);
    std::printf("%-34s %9.1f Mo %9.1f Mo\n", "equivalent R asleep",
                bench::k_paper_r_sleep_ohm / 1e6, m.r_sleep_ohm / 1e6);
    std::printf("%-34s %12s %9.1f ms\n", "active burst duration", "4.5 ms",
                m.active_time_s * 1e3);
    std::printf("%-34s %12s %9.1f uC\n", "charge per burst", "-",
                m.charge_per_tx_c * 1e6);

    std::printf("\nNote: the paper's 227 uJ/167 ohm pair is internally rounded; the\n"
                "model integrates Table III exactly, landing ~4%% below (219 uJ).\n");
    return 0;
}
