// Table VI reproduction — the paper's headline experiment.
//
// Runs the complete methodology (D-optimal DOE -> 10 mixed-signal
// simulations -> quadratic RSM -> SA + GA maximisation -> validating
// simulations) and prints the optimised configurations and transmission
// counts beside the paper's Table VI.
#include <cstdio>

#include "dse/rsm_flow.hpp"
#include "paper_refs.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Table V: system parameters for optimisation ===\n\n");
    const auto space = dse::paper_design_space();
    const char* symbols[] = {"x1", "x2", "x3"};
    for (std::size_t i = 0; i < space.dimension(); ++i) {
        const auto& p = space.parameter(i);
        std::printf("  %-20s %12g .. %-12g  coded %s\n", p.name.c_str(), p.min,
                    p.max, symbols[i]);
    }

    std::printf("\nRunning the RSM flow (DOE + %d simulations + fit + SA/GA)...\n", 10);
    dse::system_evaluator evaluator;
    const auto flow = dse::run_rsm_flow(evaluator, {});

    std::printf("\nD-optimal design: %zu of %zu candidate points, log det(X'X) = %.2f\n",
                flow.design.selected.size(), flow.design.candidates.size(),
                flow.design.log_det);
    std::printf("Surface fit: R^2 = %.4f (saturated design: exact interpolation)\n",
                flow.fit.r_squared);

    std::printf("\n=== Table VI: optimisation results ===\n\n");
    std::printf("%-22s | %10s %9s %11s | %7s %7s | %8s\n", "design", "clock",
                "watchdog", "tx interval", "paper", "ours", "ratio");
    std::printf("%-22s | %10s %9s %11s | %7s %7s | %8s\n", "", "(Hz)", "(s)",
                "(s)", "(tx/h)", "(tx/h)", "vs orig");

    const double base = static_cast<double>(flow.original_eval.transmissions);
    std::printf("%-22s | %10.3g %9.0f %11.3f | %7u %7llu | %8.2f\n", "original",
                4e6, 320.0, 5.0, bench::k_paper_table6[0].transmissions,
                static_cast<unsigned long long>(flow.original_eval.transmissions),
                1.0);
    for (std::size_t i = 0; i < flow.outcomes.size(); ++i) {
        const auto& oc = flow.outcomes[i];
        const auto& paper = bench::k_paper_table6[i + 1 < 3 ? i + 1 : 2];
        std::printf("%-22s | %10.3g %9.0f %11.3f | %7u %7llu | %8.2f\n",
                    oc.name.c_str(), oc.config.mcu_clock_hz,
                    oc.config.watchdog_period_s, oc.config.tx_interval_s,
                    paper.transmissions,
                    static_cast<unsigned long long>(oc.validated.transmissions),
                    static_cast<double>(oc.validated.transmissions) / base);
        std::printf("%-22s | %10s %9s %11s |  (RSM predicted %.0f)\n", "", "", "",
                    "", oc.predicted);
    }

    std::printf("\npaper ratios: SA %.2fx, GA %.2fx — the optimised designs double\n"
                "the transmission count; the reproduction must land in the same\n"
                "winners-and-factor regime (see EXPERIMENTS.md for the deviation\n"
                "discussion: our baseline sits nearer its 5 s interval ceiling).\n",
                899.0 / 405.0, 894.0 / 405.0);

    std::printf("\n=== energy budget of the validated optimum (%s) ===\n\n",
                flow.outcomes.front().name.c_str());
    const auto& best = flow.outcomes.front().validated;
    std::printf("harvested %.1f mJ, bursts %.1f mJ, sustained %.1f mJ, "
                "final voltage %.3f V\n",
                best.harvested_energy_j * 1e3, best.withdrawn_energy_j * 1e3,
                best.sustained_load_energy_j * 1e3, best.final_voltage_v);
    return 0;
}
