// Machine-readable benchmark output: each harness records named metrics
// and writes BENCH_<name>.json next to the working directory (or into
// $EHDSE_BENCH_OUT when set). The format is deliberately flat — one
// metric object per line — so scripts/check_perf.sh can diff a fresh run
// against the committed baselines with awk, no JSON library required:
//
//   {
//     "bench": "batch_kernel",
//     "metrics": [
//       {"metric": "scalar_evals_per_s", "value": 77.31, "unit": "evals/s", "config": "..."},
//       ...
//     ]
//   }
//
// Committed BENCH_*.json files at the repo root pin the perf trajectory;
// EXPERIMENTS.md points at them and the perf-labelled ctest compares.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace ehdse::bench {

class json_emitter {
public:
    explicit json_emitter(std::string name) : name_(std::move(name)) {}

    /// Record one metric. `config` describes the workload (free text).
    void record(const std::string& metric, double value,
                const std::string& unit, const std::string& config) {
        rows_.push_back({metric, value, unit, config});
    }

    /// Write BENCH_<name>.json; throws std::runtime_error on I/O failure.
    /// Call explicitly at the end of main so a crashed bench leaves no
    /// half-written baseline behind.
    void write() const {
        const char* dir = std::getenv("EHDSE_BENCH_OUT");
        const std::string path =
            (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
            "BENCH_" + name_ + ".json";
        std::FILE* out = std::fopen(path.c_str(), "w");
        if (out == nullptr)
            throw std::runtime_error("bench_json: cannot write " + path);
        std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"metrics\": [\n",
                     name_.c_str());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const row& r = rows_[i];
            std::fprintf(out,
                         "    {\"metric\": \"%s\", \"value\": %.6g, "
                         "\"unit\": \"%s\", \"config\": \"%s\"}%s\n",
                         r.metric.c_str(), r.value, r.unit.c_str(),
                         r.config.c_str(),
                         i + 1 < rows_.size() ? "," : "");
        }
        std::fprintf(out, "  ]\n}\n");
        if (std::fclose(out) != 0)
            throw std::runtime_error("bench_json: short write to " + path);
        std::printf("wrote %s\n", path.c_str());
    }

private:
    struct row {
        std::string metric;
        double value;
        std::string unit;
        std::string config;
    };

    std::string name_;
    std::vector<row> rows_;
};

}  // namespace ehdse::bench
