// Section II-B claim: a D-optimal design needs 10 simulations where the
// full factorial needs 27, at comparable model quality.
//
// Method: simulate ALL 27 factorial points once (ground truth), then fit
// quadratics from (a) the D-optimal 10, (b) random 10-point subsets,
// (c) the full 27, and compare prediction error over the whole grid plus
// the D-efficiency of each design.
#include <cmath>
#include <cstdio>

#include "doe/d_optimal.hpp"
#include "doe/design.hpp"
#include "doe/designs.hpp"
#include "dse/rsm_flow.hpp"
#include "numeric/stats.hpp"
#include "rsm/quadratic_model.hpp"
#include "rsm/surrogate.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== DOE comparison: D-optimal(10) vs full factorial(27) ===\n\n");
    std::printf("simulating all 27 candidate points once (ground truth)...\n");

    dse::system_evaluator evaluator;
    const auto space = dse::paper_design_space();
    const auto candidates = doe::full_factorial(3, 3);
    const auto basis = [](const numeric::vec& x) { return rsm::quadratic_basis(x); };

    numeric::vec truth;
    for (const auto& c : candidates) {
        const auto cfg = dse::config_from_coded(space, c);
        truth.push_back(static_cast<double>(evaluator.evaluate(cfg).transmissions));
    }

    struct entry {
        std::string name;
        std::size_t runs;
        double rmse;
        double max_err;
        double log_det;
    };
    std::vector<entry> table;

    auto evaluate_subset = [&](const std::string& name,
                               const std::vector<std::size_t>& sel) {
        std::vector<numeric::vec> pts;
        numeric::vec y;
        for (std::size_t idx : sel) {
            pts.push_back(candidates[idx]);
            y.push_back(truth[idx]);
        }
        const auto fit = rsm::fit_quadratic(pts, y);
        numeric::vec pred;
        for (const auto& c : candidates) pred.push_back(fit.model.predict(c));
        table.push_back({name, sel.size(), numeric::rmse(truth, pred),
                         numeric::max_abs_error(truth, pred),
                         doe::selection_log_det(candidates, basis, sel)});
    };

    // (a) D-optimal 10.
    const auto dopt = doe::d_optimal_design(candidates, basis, 10);
    evaluate_subset("D-optimal (10 runs)", dopt.selected);

    // (b) random 10-point subsets (report the median-quality one of 20
    //     non-singular draws plus the failure rate).
    numeric::rng rng(2012);
    int singular = 0;
    std::vector<std::pair<double, std::vector<std::size_t>>> randoms;
    while (randoms.size() < 20 && singular < 200) {
        const auto perm = rng.permutation(candidates.size());
        std::vector<std::size_t> sel(perm.begin(), perm.begin() + 10);
        const double ld = doe::selection_log_det(candidates, basis, sel);
        if (!std::isfinite(ld)) {
            ++singular;
            continue;
        }
        std::vector<numeric::vec> pts;
        numeric::vec y;
        for (std::size_t idx : sel) {
            pts.push_back(candidates[idx]);
            y.push_back(truth[idx]);
        }
        const auto fit = rsm::fit_quadratic(pts, y);
        numeric::vec pred;
        for (const auto& c : candidates) pred.push_back(fit.model.predict(c));
        randoms.emplace_back(numeric::rmse(truth, pred), sel);
    }
    std::sort(randoms.begin(), randoms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    evaluate_subset("random-10 (median of 20)", randoms[randoms.size() / 2].second);

    // (c) the full factorial.
    std::vector<std::size_t> all(candidates.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    evaluate_subset("full factorial (27 runs)", all);

    std::printf("\n%-26s %6s %12s %12s %12s %10s\n", "design", "runs",
                "grid RMSE", "grid max err", "log det", "D-eff");
    const double ref_ld = table.back().log_det;  // full factorial reference
    for (const auto& e : table) {
        const double deff =
            doe::relative_d_efficiency(e.log_det, e.runs, ref_ld, 27, 10);
        std::printf("%-26s %6zu %12.2f %12.2f %12.2f %9.1f%%\n", e.name.c_str(),
                    e.runs, e.rmse, e.max_err, e.log_det, 100.0 * deff);
    }
    std::printf("\n%d of %d random draws were singular (could not fit a quadratic\n"
                "at all); the D-optimal selection is both fit-capable and close to\n"
                "the factorial's per-run information at 37%% of the cost.\n",
                singular, singular + 20);

    // Registry sweep: every design doe::make_design can build, fitted with
    // the registry quadratic and judged on the same 27-point truth grid.
    // CCD / Box-Behnken place points off the factorial grid, so their runs
    // are simulated fresh.
    std::printf("\n=== design registry sweep (doe::design_registry) ===\n\n");
    std::printf("%-20s %6s %12s %12s %12s\n", "design", "runs", "grid RMSE",
                "grid max err", "log det");
    const auto quadratic = rsm::make_surrogate("quadratic");
    for (const doe::design_info& info : doe::design_registry()) {
        doe::design_request request;
        request.name = info.name;
        request.dimension = 3;
        request.runs = 10;
        request.basis = basis;
        const auto design = doe::make_design(request);
        numeric::vec y;
        for (const auto& pt : design.points) {
            const auto cfg = dse::config_from_coded(space, pt);
            y.push_back(
                static_cast<double>(evaluator.evaluate(cfg).transmissions));
        }
        rsm::surrogate_fit fit;
        try {
            fit = quadratic->fit(design.points, y);
        } catch (const std::exception&) {
            std::printf("%-20s %6zu   (quadratic unfittable on this design)\n",
                        info.name.c_str(), design.points.size());
            continue;
        }
        numeric::vec pred;
        for (const auto& c : candidates) pred.push_back(fit.predict(c));
        std::printf("%-20s %6zu %12.2f %12.2f %12.2f\n", info.name.c_str(),
                    design.points.size(), numeric::rmse(truth, pred),
                    numeric::max_abs_error(truth, pred), design.log_det);
    }
    return 0;
}
