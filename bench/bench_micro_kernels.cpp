// google-benchmark micro-benchmarks of the computational kernels behind
// the reproduction: the envelope solve (hot path of the hour-long runs),
// the RK45 integrator, the QR-based RSM fit, the D-optimal exchange, the
// event queue, and one full one-hour system evaluation.
#include <benchmark/benchmark.h>

#include "doe/d_optimal.hpp"
#include "obs/metrics.hpp"
#include "doe/designs.hpp"
#include "dse/system_evaluator.hpp"
#include "harvester/envelope.hpp"
#include "harvester/piezo.hpp"
#include "harvester/tuning_table.hpp"
#include "numeric/decomp.hpp"
#include "opt/nsga2.hpp"
#include "rsm/kriging.hpp"
#include "rsm/quadratic_model.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ehdse;

void bm_envelope_solve(benchmark::State& state) {
    const harvester::microgenerator gen;
    const harvester::tuning_table table(gen);
    const int pos = table.lookup(69.0);
    const double accel = 0.060 * harvester::k_gravity;
    for (auto _ : state) {
        auto pt = harvester::solve_envelope(gen, pos, 69.0, accel, 2.8);
        benchmark::DoNotOptimize(pt.elec.p_store_w);
    }
}
BENCHMARK(bm_envelope_solve);

void bm_rk45_oscillator(benchmark::State& state) {
    const sim::functional_system sys(
        2, [](double, std::span<const double> x, std::span<double> d) {
            d[0] = x[1];
            d[1] = -400.0 * x[0];
        });
    sim::rk45_integrator integ;
    for (auto _ : state) {
        std::vector<double> x{1.0, 0.0};
        auto status = integ.integrate(sys, 0.0, 1.0, x);
        benchmark::DoNotOptimize(status.steps_taken);
    }
}
BENCHMARK(bm_rk45_oscillator);

void bm_quadratic_fit_27(benchmark::State& state) {
    const auto points = doe::full_factorial(3, 3);
    const rsm::quadratic_model truth(
        3, {484.0, -121.8, -16.8, -208.4, 121.0, 106.7, -69.8, -34.2, -121.8, 32.5});
    numeric::vec y;
    for (const auto& p : points) y.push_back(truth.predict(p));
    for (auto _ : state) {
        auto fit = rsm::fit_quadratic(points, y);
        benchmark::DoNotOptimize(fit.r_squared);
    }
}
BENCHMARK(bm_quadratic_fit_27);

void bm_d_optimal_10_of_27(benchmark::State& state) {
    const auto candidates = doe::full_factorial(3, 3);
    const auto basis = [](const numeric::vec& x) { return rsm::quadratic_basis(x); };
    doe::d_optimal_options opt;
    opt.restarts = 2;
    for (auto _ : state) {
        auto r = doe::d_optimal_design(candidates, basis, 10, opt);
        benchmark::DoNotOptimize(r.log_det);
    }
}
BENCHMARK(bm_d_optimal_10_of_27);

void bm_lu_determinant_10x10(benchmark::State& state) {
    numeric::rng rng(3);
    numeric::matrix a(10, 10);
    for (std::size_t r = 0; r < 10; ++r)
        for (std::size_t c = 0; c < 10; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0) + (r == c ? 10.0 : 0.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(numeric::determinant(a));
    }
}
BENCHMARK(bm_lu_determinant_10x10);

void bm_event_queue_schedule_pop(benchmark::State& state) {
    for (auto _ : state) {
        sim::event_queue q;
        for (int i = 0; i < 1000; ++i)
            q.schedule(static_cast<double>((i * 7919) % 1000), [] {});
        while (!q.empty()) q.pop_and_run();
        benchmark::DoNotOptimize(q.executed_count());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(bm_event_queue_schedule_pop);

void bm_piezo_solve(benchmark::State& state) {
    const harvester::piezo_microgenerator gen;
    const harvester::tuning_table table(gen.mechanics());
    const int pos = table.lookup(69.0);
    const double accel = 0.060 * harvester::k_gravity;
    for (auto _ : state) {
        auto pt = gen.solve(pos, 69.0, accel, 2.8);
        benchmark::DoNotOptimize(pt.p_store_w);
    }
}
BENCHMARK(bm_piezo_solve);

void bm_gp_fit_16(benchmark::State& state) {
    const auto candidates = doe::full_factorial(3, 3);
    std::vector<numeric::vec> pts(candidates.begin(), candidates.begin() + 16);
    numeric::vec y;
    for (const auto& p : pts) y.push_back(p[0] - 2.0 * p[2] + p[1] * p[1]);
    for (auto _ : state) {
        rsm::gp_model gp(pts, y, {1.0, 1.0, 1e-6});
        benchmark::DoNotOptimize(gp.log_marginal_likelihood());
    }
}
BENCHMARK(bm_gp_fit_16);

void bm_nsga2_schaffer(benchmark::State& state) {
    opt::nsga2_options o;
    o.population = 40;
    o.generations = 30;
    const opt::multi_objective_fn f = [](const numeric::vec& x) {
        return numeric::vec{-x[0] * x[0], -(x[0] - 2.0) * (x[0] - 2.0)};
    };
    for (auto _ : state) {
        numeric::rng rng(7);
        auto front = opt::nsga2(o).optimize(f, 2, {{-5.0}, {5.0}}, rng);
        benchmark::DoNotOptimize(front.size());
    }
}
BENCHMARK(bm_nsga2_schaffer)->Unit(benchmark::kMillisecond);

void bm_full_hour_evaluation(benchmark::State& state) {
    dse::system_evaluator evaluator;
    for (auto _ : state) {
        auto r = evaluator.evaluate(dse::system_config::original());
        benchmark::DoNotOptimize(r.transmissions);
    }
}
BENCHMARK(bm_full_hour_evaluation)->Unit(benchmark::kMillisecond);

// Observability overhead: the detached-sink check that instrumented code
// performs, and the attached-sink instrument operations themselves.
void bm_obs_sink_detached(benchmark::State& state) {
    obs::set_global_registry(nullptr);
    for (auto _ : state) {
        obs::metrics_registry* reg = obs::global_registry();
        benchmark::DoNotOptimize(reg);
        if (reg) reg->get_counter("bench.never").add();
    }
}
BENCHMARK(bm_obs_sink_detached);

void bm_obs_counter_add(benchmark::State& state) {
    obs::metrics_registry reg;
    obs::counter& c = reg.get_counter("bench.hits");
    for (auto _ : state) c.add();
    benchmark::DoNotOptimize(c.value());
}
BENCHMARK(bm_obs_counter_add);

void bm_obs_histogram_observe(benchmark::State& state) {
    obs::metrics_registry reg;
    obs::histogram& h = reg.get_histogram("bench.seconds");
    double v = 1e-6;
    for (auto _ : state) {
        h.observe(v);
        v = v < 1.0 ? v * 1.0001 : 1e-6;  // walk across buckets
    }
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(bm_obs_histogram_observe);

void bm_full_hour_evaluation_with_metrics(benchmark::State& state) {
    obs::metrics_registry reg;
    obs::set_global_registry(&reg);
    dse::system_evaluator evaluator;
    for (auto _ : state) {
        auto r = evaluator.evaluate(dse::system_config::original());
        benchmark::DoNotOptimize(r.transmissions);
    }
    obs::set_global_registry(nullptr);
}
BENCHMARK(bm_full_hour_evaluation_with_metrics)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
