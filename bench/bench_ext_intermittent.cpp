// Intermittent-source study: many real vibration sources (machinery, HVAC,
// vehicles) run on duty cycles rather than continuously. The storage must
// bridge the off periods — exactly the sizing question the paper's 0.55 F
// "example" capacitor raises. One hour, original vs optimised interval, at
// several duty cycles and two capacitor sizes.
#include <cstdio>

#include "dse/system_evaluator.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Intermittent vibration: duty-cycled source (1 h) ===\n");
    std::printf("(64 Hz constant frequency; 10-minute machine cycles)\n\n");

    std::printf("%12s %8s | %14s | %14s | %12s\n", "duty", "C (F)",
                "tx (5 s cfg)", "tx (50 ms cfg)", "min voltage");
    for (const double duty : {1.0, 0.7, 0.5, 0.3}) {
        for (const double c_f : {0.55, 0.11}) {
            dse::scenario s;
            s.step_count = 0;  // constant frequency: isolate the duty effect
            if (duty < 1.0) {
                const double period = 600.0;
                const double on_s = duty * period;
                std::vector<std::pair<double, double>> schedule;
                for (double t = 0.0; t < s.duration_s; t += period) {
                    schedule.emplace_back(t, 1.0);
                    schedule.emplace_back(t + on_s, 0.0);
                }
                s.amplitude_schedule = std::move(schedule);
            }
            power::supercapacitor_params cap;
            cap.capacitance_f = c_f;
            dse::system_evaluator ev(s, harvester::microgenerator_params{}, cap);

            dse::system_config slow = dse::system_config::original();
            dse::system_config fast = slow;
            fast.tx_interval_s = 0.05;
            const auto r_slow = ev.evaluate(slow);
            const auto r_fast = ev.evaluate(fast);
            std::printf("%11.0f%% %8.2f | %14llu | %14llu | %10.3f V\n",
                        100.0 * duty, c_f,
                        static_cast<unsigned long long>(r_slow.transmissions),
                        static_cast<unsigned long long>(r_fast.transmissions),
                        r_fast.min_voltage_v);
        }
    }

    std::printf("\nReading: transmissions track the duty cycle almost linearly in\n"
                "the energy-limited (50 ms) column — the storage successfully\n"
                "bridges 3-7 minute outages at either capacitance, with the\n"
                "smaller capacitor swinging further (min voltage column). The 5 s\n"
                "column is ceiling-limited until the duty cycle starves it.\n");
    return 0;
}
