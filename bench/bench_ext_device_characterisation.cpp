// Device characterisation: the harvester-level figures a device paper
// would publish — stored power vs excitation frequency at several
// acceleration levels and actuator positions (the frequency-response
// curves behind the tuning story), plus the tuning map f_r(position).
#include <algorithm>
#include <cstdio>
#include <string>

#include "harvester/envelope.hpp"
#include "harvester/tuning_table.hpp"
#include "harvester/vibration.hpp"

namespace {

std::string bar(double value, double full_scale, int width = 40) {
    const int n = full_scale > 0.0
                      ? static_cast<int>(value / full_scale * width + 0.5)
                      : 0;
    return std::string(std::min(n, width), '#');
}

}  // namespace

int main() {
    using namespace ehdse;

    const harvester::microgenerator gen;
    const harvester::tuning_table table(gen);

    std::printf("=== Tuning map: resonant frequency vs actuator position ===\n\n");
    std::printf("%10s %12s %14s\n", "position", "f_r (Hz)", "gap (mm)");
    for (int p = 0; p <= 255; p += 51)
        std::printf("%10d %12.2f %14.3f\n", p, gen.resonant_frequency(p),
                    gen.gap_at(p) * 1e3);
    std::printf("worst-case LUT quantisation: %.3f Hz\n",
                table.max_quantisation_error());

    const int pos = table.lookup(69.0);
    const double fr = gen.resonant_frequency(pos);
    std::printf("\n=== Frequency response at position %d (f_r = %.2f Hz) ===\n",
                pos, fr);
    std::printf("(the rectifier threshold sharpens the usable band well below\n"
                " the mechanical half-power width)\n\n");
    for (double mg : {30.0, 60.0, 120.0}) {
        const double accel = mg * 1e-3 * harvester::k_gravity;
        std::printf("--- %.0f mg ---\n", mg);
        double peak = 0.0;
        for (double df = -0.6; df <= 0.601; df += 0.1) {
            const auto pt =
                harvester::solve_envelope(gen, pos, fr + df, accel, 2.8);
            peak = std::max(peak, pt.elec.p_store_w);
        }
        for (double df = -0.6; df <= 0.601; df += 0.1) {
            const auto pt =
                harvester::solve_envelope(gen, pos, fr + df, accel, 2.8);
            std::printf("  %+5.1f Hz %8.1f uW  |%s\n", df,
                        pt.elec.p_store_w * 1e6,
                        bar(pt.elec.p_store_w, peak).c_str());
        }
    }

    std::printf("\n=== Stored power vs acceleration (tuned, 2.8 V store) ===\n\n");
    std::printf("%10s %14s %14s %16s\n", "accel", "P_store", "displacement",
                "emf amplitude");
    for (double mg : {10.0, 20.0, 40.0, 60.0, 100.0, 150.0, 250.0}) {
        const double accel = mg * 1e-3 * harvester::k_gravity;
        const auto pt = harvester::solve_envelope(gen, 128, fr, accel, 2.8);
        std::printf("%7.0f mg %11.1f uW %11.3f mm %13.2f V %s\n", mg,
                    pt.elec.p_store_w * 1e6, pt.mech.displacement_amp_m * 1e3,
                    pt.mech.emf_amp_v,
                    pt.mech.displacement_limited ? "(end-stop limited)" : "");
    }

    std::printf("\nReading: output collapses within ~1.5 Hz of resonance (the\n"
                "high-Q device the paper's tuning loop exists for); below the\n"
                "rectifier threshold (~20 mg here) nothing is stored at all, and\n"
                "at high drive the end stops cap the response.\n");
    return 0;
}
