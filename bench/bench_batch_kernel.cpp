// Batch-kernel throughput: the paper's 10-point D-optimal workload
// evaluated per-config through the scalar envelope path versus in one
// SoA batch through system_evaluator::evaluate_batch, on one thread.
// This is the perf-gated number: the batch kernel must hold >= 4x the
// scalar single-thread evaluations/s (scripts/check_perf.sh).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "dse/rsm_flow.hpp"
#include "dse/system_evaluator.hpp"
#include "obs/timing.hpp"
#include "rsm/quadratic_model.hpp"

int main() {
    using namespace ehdse;

    // Same workload as bench_exec_throughput's pool rows: the flow's
    // simulate phase in isolation on a 10-minute scenario.
    dse::scenario scn;
    scn.duration_s = 600.0;
    scn.step_period_s = 250.0;
    scn.step_count = 1;
    dse::system_evaluator evaluator(scn);

    const auto space = dse::paper_design_space();
    const auto candidates = doe::full_factorial(3, 3);
    const auto selection = doe::d_optimal_design(
        candidates,
        [](const numeric::vec& x) { return rsm::quadratic_basis(x); }, 10, {});
    std::vector<dse::system_config> configs;
    for (std::size_t idx : selection.selected)
        configs.push_back(dse::config_from_coded(space, candidates[idx]));
    const double n = static_cast<double>(configs.size());
    const std::string workload =
        std::to_string(configs.size()) + "-point d-optimal, 600 s scenario, 1 thread";

    std::printf("=== Batch kernel throughput ===\n");
    std::printf("workload: %s\n\n", workload.c_str());

    // Warm-up, then best-of-3 each way: the numbers feed a regression
    // gate, so keep scheduler noise out of the committed baseline.
    (void)evaluator.evaluate(configs.front());
    (void)evaluator.evaluate_batch(configs);

    double scalar_wall = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        obs::stopwatch watch;
        for (const dse::system_config& config : configs)
            (void)evaluator.evaluate(config);
        scalar_wall = std::min(scalar_wall, watch.seconds());
    }
    double batch_wall = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        obs::stopwatch watch;
        (void)evaluator.evaluate_batch(configs);
        batch_wall = std::min(batch_wall, watch.seconds());
    }

    const double scalar_rate = n / scalar_wall;
    const double batch_rate = n / batch_wall;
    const double speedup = batch_rate / scalar_rate;
    std::printf("scalar: %.3f s (%.2f evals/s)\n", scalar_wall, scalar_rate);
    std::printf("batch:  %.3f s (%.2f evals/s)\n", batch_wall, batch_rate);
    std::printf("speedup: %.2fx\n", speedup);

    bench::json_emitter json("batch_kernel");
    json.record("scalar_evals_per_s", scalar_rate, "evals/s", workload);
    json.record("batch_evals_per_s", batch_rate, "evals/s", workload);
    json.record("batch_speedup_x", speedup, "x", workload);
    json.write();
    return 0;
}
