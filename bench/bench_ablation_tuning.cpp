// Section IV-C ablation: two-subroutine tuning (coarse + fine) against
// coarse-only, fine-only and no tuning at all, over the full one-hour
// scenario. Run at a small transmission interval so the transmission count
// tracks the energy budget, plus the original 5 s interval for reference.
#include <cstdio>

#include "dse/system_evaluator.hpp"

int main() {
    using namespace ehdse;

    std::printf("=== Tuning-mode ablation (paper section IV-C) ===\n\n");

    struct mode_row {
        const char* name;
        mcu::tuning_mode mode;
    };
    const mode_row modes[] = {
        {"two-stage (paper)", mcu::tuning_mode::two_stage},
        {"coarse-only", mcu::tuning_mode::coarse_only},
        {"fine-only", mcu::tuning_mode::fine_only},
        {"disabled (fixed f_r)", mcu::tuning_mode::disabled},
    };

    for (double interval : {0.05, 5.0}) {
        std::printf("--- transmission interval %.2f s ---\n", interval);
        std::printf("%-22s %8s %12s %12s %10s %10s\n", "mode", "tx/h",
                    "harvested", "tuning cost", "act steps", "fine iters");
        for (const auto& m : modes) {
            mcu::controller_params ctl;
            ctl.mode = m.mode;
            dse::system_evaluator ev({}, harvester::microgenerator_params{}, {}, {},
                                     {}, ctl);
            dse::system_config cfg = dse::system_config::original();
            cfg.tx_interval_s = interval;
            const auto r = ev.evaluate(cfg);
            const double tuning_cost =
                r.ledger.total("actuator.coarse") + r.ledger.total("actuator.fine") +
                r.ledger.total("accelerometer") + r.ledger.total("mcu.measure") +
                r.ledger.total("mcu.fine") + r.ledger.total("mcu.wake_check");
            std::printf("%-22s %8llu %9.1f mJ %9.1f mJ %10llu %10llu\n", m.name,
                        static_cast<unsigned long long>(r.transmissions),
                        r.harvested_energy_j * 1e3, tuning_cost * 1e3,
                        static_cast<unsigned long long>(r.tuning.coarse_steps +
                                                        r.tuning.fine_steps),
                        static_cast<unsigned long long>(r.tuning.fine_iterations));
        }
        std::printf("\n");
    }

    std::printf("Expected shape (paper): the two-subroutine method harvests the\n"
                "most per joule spent on tuning; fine-only cannot track the 5 Hz\n"
                "steps (1-step walks with settle time), and no tuning strands the\n"
                "harvester off-resonance after the first frequency change.\n");
    return 0;
}
