// Harvester-backend throughput: the paper's 10-point D-optimal workload
// evaluated through every registered harvester backend, scalar envelope
// path versus evaluate_batch, on one thread. Registry-driven: a new
// backend joins this table (and the perf gate) just by registering.
//
// What the gate pins (scripts/check_perf.sh, baseline
// BENCH_harvester_backends.json at the repo root):
//   * <name>_scalar_evals_per_s / <name>_batch_evals_per_s hold the
//     >-15% regression rule per backend — the generic per-lane batch
//     kernel (batch_generic_system) must not silently decay any more
//     than the hand-vectorised electromagnetic one;
//   * the electromagnetic batch numbers additionally ride the dedicated
//     bench_batch_kernel gate with its 4x speedup floor.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "dse/rsm_flow.hpp"
#include "dse/system_evaluator.hpp"
#include "harvester/harvester_model.hpp"
#include "obs/timing.hpp"
#include "rsm/quadratic_model.hpp"

int main() {
    using namespace ehdse;

    dse::scenario scn;
    scn.duration_s = 600.0;
    scn.step_period_s = 250.0;
    scn.step_count = 1;

    const auto space = dse::paper_design_space();
    const auto candidates = doe::full_factorial(3, 3);
    const auto selection = doe::d_optimal_design(
        candidates,
        [](const numeric::vec& x) { return rsm::quadratic_basis(x); }, 10, {});
    std::vector<dse::system_config> configs;
    for (std::size_t idx : selection.selected)
        configs.push_back(dse::config_from_coded(space, candidates[idx]));
    const double n = static_cast<double>(configs.size());

    std::printf("=== Harvester backend throughput ===\n");
    std::printf("workload: %zu-point d-optimal, 600 s scenario, 1 thread\n\n",
                configs.size());

    bench::json_emitter json("harvester_backends");
    for (const harvester::harvester_info& info :
         harvester::harvester_registry()) {
        const dse::system_evaluator evaluator(scn,
                                              spec::harvester_spec{info.name});
        const std::string workload = info.name + ", " +
                                     std::to_string(configs.size()) +
                                     "-point d-optimal, 600 s scenario";

        // Warm-up, then best-of-3 each way (regression-gated numbers).
        (void)evaluator.evaluate(configs.front());
        (void)evaluator.evaluate_batch(configs);

        double scalar_wall = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            obs::stopwatch watch;
            for (const dse::system_config& config : configs)
                (void)evaluator.evaluate(config);
            scalar_wall = std::min(scalar_wall, watch.seconds());
        }
        double batch_wall = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            obs::stopwatch watch;
            (void)evaluator.evaluate_batch(configs);
            batch_wall = std::min(batch_wall, watch.seconds());
        }

        const double scalar_rate = n / scalar_wall;
        const double batch_rate = n / batch_wall;
        std::printf("%-18s scalar %.2f evals/s, batch %.2f evals/s (%.2fx)\n",
                    info.name.c_str(), scalar_rate, batch_rate,
                    batch_rate / scalar_rate);

        json.record(info.name + "_scalar_evals_per_s", scalar_rate, "evals/s",
                    workload);
        json.record(info.name + "_batch_evals_per_s", batch_rate, "evals/s",
                    workload);
        json.record(info.name + "_batch_speedup", batch_rate / scalar_rate,
                    "x", workload);
    }
    json.write();
    return 0;
}
