// The kit tests itself: PRNG known-answer vectors, env plumbing, the
// property runner's pass/fail/shrink/repro behaviour on planted bugs,
// and the validity promise of every generator.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "testkit/generators.hpp"
#include "testkit/property.hpp"
#include "testkit/prng.hpp"

namespace tk = ehdse::testkit;

// Restores one environment variable on scope exit so env-driven tests
// cannot leak state into later suites.
class env_guard {
public:
    explicit env_guard(const char* name) : name_(name) {
        const char* value = std::getenv(name);
        if (value) saved_ = value;
    }
    ~env_guard() {
        if (saved_)
            ::setenv(name_, saved_->c_str(), 1);
        else
            ::unsetenv(name_);
    }

private:
    const char* name_;
    std::optional<std::string> saved_;
};

TEST(TestkitPrng, SplitmixKnownAnswer) {
    // Reference vector for splitmix64 seeded with 0 (Vigna's test values).
    std::uint64_t state = 0;
    EXPECT_EQ(tk::splitmix64_next(state), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(tk::splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(tk::splitmix64_next(state), 0x06c45d188009454fULL);
}

TEST(TestkitPrng, StreamsAreDeterministicAndSeedSensitive) {
    tk::prng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    tk::prng a2(42);
    for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
    EXPECT_TRUE(differs);
    EXPECT_NE(tk::mix(42, 0), tk::mix(42, 1));
    EXPECT_NE(tk::mix(42, 0), tk::mix(43, 0));
    EXPECT_EQ(tk::mix(42, 7), tk::mix(42, 7));
}

TEST(TestkitPrng, UniformHelpersRespectBounds) {
    tk::prng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const double v = r.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
        const double w = r.log_uniform(125e3, 8e6);
        EXPECT_GE(w, 125e3);
        EXPECT_LE(w, 8e6);
        EXPECT_LT(r.index(10), 10u);
        const std::int64_t n = r.integer(-3, 4);
        EXPECT_GE(n, -3);
        EXPECT_LE(n, 4);
    }
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
}

TEST(TestkitPrng, EnvSeedParsesDecimalAndHex) {
    env_guard guard("EHDSE_TESTKIT_SEED");
    ::unsetenv("EHDSE_TESTKIT_SEED");
    EXPECT_EQ(tk::env_seed(), tk::k_default_seed);
    ::setenv("EHDSE_TESTKIT_SEED", "12345", 1);
    EXPECT_EQ(tk::env_seed(), 12345u);
    ::setenv("EHDSE_TESTKIT_SEED", "0x2a", 1);
    EXPECT_EQ(tk::env_seed(), 42u);
}

TEST(TestkitPrng, EnvCasesOverridesFallback) {
    env_guard guard("EHDSE_TESTKIT_CASES");
    ::unsetenv("EHDSE_TESTKIT_CASES");
    EXPECT_EQ(tk::env_cases(100), 100u);
    ::setenv("EHDSE_TESTKIT_CASES", "7", 1);
    EXPECT_EQ(tk::env_cases(100), 7u);
    ::setenv("EHDSE_TESTKIT_CASES", "0", 1);
    EXPECT_EQ(tk::env_cases(100), 100u);
}

TEST(TestkitProperty, PassingPropertyRunsAllCases) {
    // The exact-count assertion must not see a nightly depth override.
    env_guard guard("EHDSE_TESTKIT_CASES");
    ::unsetenv("EHDSE_TESTKIT_CASES");
    tk::property_def<double> def;
    def.name = "TestkitProperty.PassingPropertyRunsAllCases";
    def.generate = [](tk::prng& r) { return r.uniform(); };
    def.property = [](const double& x) {
        tk::require(x >= 0.0 && x < 1.0, "uniform out of range");
    };
    tk::property_options options;
    options.cases = 50;
    options.seed = 1;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
    EXPECT_EQ(result.cases_run, 50u);
}

TEST(TestkitProperty, PlantedBugIsFoundShrunkAndReproducible) {
    tk::property_def<double> def;
    def.name = "TestkitProperty.PlantedBugIsFoundShrunkAndReproducible";
    def.generate = [](tk::prng& r) { return r.uniform(0.0, 1000.0); };
    def.property = [](const double& x) {
        tk::require(x <= 50.0, "planted bug: value exceeds 50");
    };
    def.shrink = [](const double& x) { return tk::shrink_double(x); };
    tk::property_options options;
    options.cases = 100;
    options.seed = 99;
    const auto first = tk::run_property(def, options);
    ASSERT_FALSE(first.ok);
    ASSERT_TRUE(first.counterexample.has_value());
    // Greedy halving towards 0 cannot stop above twice the threshold.
    EXPECT_GT(*first.counterexample, 50.0);
    EXPECT_LE(*first.counterexample, 101.0);
    // The repro line names the seed and the gtest filter.
    EXPECT_NE(first.repro.find("EHDSE_TESTKIT_SEED=0x"), std::string::npos)
        << first.repro;
    EXPECT_NE(first.repro.find("--gtest_filter=" + def.name),
              std::string::npos)
        << first.repro;
    // Same seed -> byte-identical failure (case index and counterexample).
    const auto second = tk::run_property(def, options);
    ASSERT_FALSE(second.ok);
    EXPECT_EQ(first.failing_case, second.failing_case);
    EXPECT_EQ(*first.counterexample, *second.counterexample);
}

TEST(TestkitProperty, UnexpectedExceptionsCountAsFailures) {
    tk::property_def<int> def;
    def.name = "TestkitProperty.UnexpectedExceptionsCountAsFailures";
    def.generate = [](tk::prng& r) { return static_cast<int>(r.index(10)); };
    def.property = [](const int& x) {
        if (x == 3) throw std::invalid_argument("boom");
    };
    tk::property_options options;
    options.cases = 100;
    options.seed = 5;
    const auto result = tk::run_property(def, options);
    ASSERT_FALSE(result.ok);
    EXPECT_NE(result.message.find("unexpected exception"), std::string::npos);
    EXPECT_NE(result.message.find("boom"), std::string::npos);
}

TEST(TestkitProperty, TimeBudgetGovernsWhenSet) {
    int calls = 0;
    tk::property_def<int> def;
    def.name = "TestkitProperty.TimeBudgetGovernsWhenSet";
    def.generate = [&](tk::prng& r) {
        ++calls;
        return static_cast<int>(r.index(10));
    };
    def.property = [](const int&) {};
    tk::property_options options;
    options.cases = 3;
    options.seed = 2;
    options.budget_ms = 30.0;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
    // A cheap property inside a 30 ms budget runs far past the case floor.
    EXPECT_GT(result.cases_run, 3u);
    EXPECT_EQ(static_cast<std::size_t>(calls), result.cases_run);
}

TEST(TestkitProperty, SequenceShrinkerDropsChunksThenElements) {
    const std::vector<int> xs{1, 2, 3, 4};
    const auto candidates = tk::shrink_sequence(xs);
    ASSERT_FALSE(candidates.empty());
    // Every candidate is strictly shorter and a subsequence of xs.
    for (const auto& c : candidates) {
        EXPECT_LT(c.size(), xs.size());
        std::size_t j = 0;
        for (const int v : c) {
            while (j < xs.size() && xs[j] != v) ++j;
            ASSERT_LT(j, xs.size()) << "candidate is not a subsequence";
            ++j;
        }
    }
    // The first candidates remove the biggest chunks (delta debugging).
    EXPECT_EQ(candidates.front().size(), xs.size() / 2);
    EXPECT_TRUE(tk::shrink_sequence(std::vector<int>{}).empty());
}

TEST(TestkitGenerators, EveryGeneratedSpecValidates) {
    tk::property_def<ehdse::spec::experiment_spec> def;
    def.name = "TestkitGenerators.EveryGeneratedSpecValidates";
    def.generate = [](tk::prng& r) { return tk::gen_experiment_spec(r); };
    def.property = [](const ehdse::spec::experiment_spec& s) { s.validate(); };
    const auto result = tk::run_property(def);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitGenerators, SchedulesStartAtZeroAndIncrease) {
    tk::property_def<std::vector<std::pair<double, double>>> def;
    def.name = "TestkitGenerators.SchedulesStartAtZeroAndIncrease";
    def.generate = [](tk::prng& r) {
        return tk::gen_schedule(r, 300.0, 58.0, 76.0);
    };
    def.property = [](const std::vector<std::pair<double, double>>& sched) {
        tk::require(!sched.empty(), "schedule is empty");
        tk::require(sched.front().first == 0.0,
                    "schedule does not start at t = 0");
        for (std::size_t i = 1; i < sched.size(); ++i)
            tk::require(sched[i].first > sched[i - 1].first,
                        "schedule times are not strictly increasing");
        for (const auto& [t, v] : sched) {
            tk::require(t < 300.0, "schedule entry beyond the horizon");
            tk::require(v >= 58.0 && v < 76.0, "schedule value out of range");
        }
    };
    const auto result = tk::run_property(def);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitGenerators, CasesAreIndexKeyedNotOrderKeyed) {
    // Case i is a pure function of (seed, i): generating case 7 alone
    // yields the same spec as generating cases 0..9 in order.
    const std::uint64_t seed = 0xabcddcba;
    tk::prng direct(tk::mix(seed, 7));
    const auto lone = tk::gen_experiment_spec(direct);
    ehdse::spec::experiment_spec in_order;
    for (std::size_t i = 0; i < 10; ++i) {
        tk::prng r(tk::mix(seed, i));
        if (i == 7) in_order = tk::gen_experiment_spec(r);
        else (void)tk::gen_experiment_spec(r);
    }
    EXPECT_TRUE(lone == in_order);
}
