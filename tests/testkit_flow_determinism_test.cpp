// Metamorphic property over the whole pipeline: the flow's results are a
// pure function of the spec — running the same experiment sequentially
// and over a 3-worker pool yields identical design responses, fits, and
// optimiser outcomes. Few cases (each runs two complete flows), but each
// case draws a different design/surrogate/optimiser combination from the
// registries.
#include <gtest/gtest.h>

#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;

TEST(TestkitFlowProperty, JobsOneAndJobsThreeAgreeExactly) {
    tk::property_def<ehdse::spec::experiment_spec> def;
    def.name = "TestkitFlowProperty.JobsOneAndJobsThreeAgreeExactly";
    def.generate = [](tk::prng& r) {
        ehdse::spec::experiment_spec s = tk::gen_experiment_spec(r);
        s.scn.duration_s = r.uniform(60.0, 120.0);
        s.flow.replicates = 1;  // replication multiplies runs; keep 2 flows cheap
        return s;
    };
    def.property = tk::oracles::check_jobs_determinism;
    def.shrink = [](const ehdse::spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    def.show = [](const ehdse::spec::experiment_spec& s) {
        return ehdse::spec::to_json(s).dump();
    };
    tk::property_options options;
    options.cases = 6;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}
