// Markdown report rendering of a flow result.
#include <gtest/gtest.h>

#include "dse/report.hpp"

namespace ed = ehdse::dse;

namespace {
const ed::flow_result& shared_flow(bool saturated) {
    static const ed::flow_result sat = [] {
        ed::scenario s;
        s.duration_s = 900.0;
        s.step_period_s = 400.0;
        ed::system_evaluator ev(s);
        return ed::run_rsm_flow(ev, {});
    }();
    static const ed::flow_result over = [] {
        ed::scenario s;
        s.duration_s = 900.0;
        s.step_period_s = 400.0;
        ed::system_evaluator ev(s);
        ed::flow_options o;
        o.doe_runs = 14;
        return ed::run_rsm_flow(ev, o);
    }();
    return saturated ? sat : over;
}
}  // namespace

TEST(Report, ContainsAllSections) {
    const std::string text = ed::report_to_string(shared_flow(false));
    for (const char* needle :
         {"# Response-surface design-space exploration report",
          "## Design points and responses", "## Fitted response surface",
          "## Statistical assessment", "ANOVA", "## Sensitivity (Sobol indices)",
          "## Optimisation outcomes", "simulated-annealing", "baseline",
          "mcu_clock_hz", "tx_interval_s"})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(Report, SaturatedDesignExplainsMissingAnova) {
    const std::string text = ed::report_to_string(shared_flow(true));
    EXPECT_NE(text.find("Saturated design"), std::string::npos);
    EXPECT_EQ(text.find("ANOVA\n"), std::string::npos);
}

TEST(Report, SectionsToggle) {
    ed::report_options opts;
    opts.include_design_table = false;
    opts.include_sensitivity = false;
    opts.title = "Custom title";
    const std::string text = ed::report_to_string(shared_flow(false), opts);
    EXPECT_NE(text.find("# Custom title"), std::string::npos);
    EXPECT_EQ(text.find("## Design points and responses"), std::string::npos);
    EXPECT_EQ(text.find("## Sensitivity"), std::string::npos);
    EXPECT_NE(text.find("## Optimisation outcomes"), std::string::npos);
}

TEST(Report, RowCountsMatchFlow) {
    const auto& flow = shared_flow(false);
    const std::string text = ed::report_to_string(flow);
    // One table row per observation: count "| 14 |" style last index.
    EXPECT_NE(text.find("| " + std::to_string(flow.responses.size()) + " |"),
              std::string::npos);
}
