// Optimiser properties: a bigger budget under the same seed never
// reports a worse optimum (the smaller run is an iteration prefix and
// the incumbent is best-ever), and PRNG-injected NaN objective values
// can never displace a finite incumbent.
#include <gtest/gtest.h>

#include <cmath>

#include "testkit/fault_injection.hpp"
#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;
namespace opt = ehdse::opt;

TEST(TestkitOptimizerProperty, BudgetIncreaseIsMonotone) {
    tk::property_def<std::uint64_t> def;
    def.name = "TestkitOptimizerProperty.BudgetIncreaseIsMonotone";
    def.generate = [](tk::prng& r) { return r.next(); };
    def.property = [](const std::uint64_t& seed) {
        tk::oracles::check_budget_monotonicity(seed);
    };
    tk::property_options options;
    options.cases = 30;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitOptimizerProperty, NanObjectiveNeverWinsOrEscapes) {
    tk::property_def<std::uint64_t> def;
    def.name = "TestkitOptimizerProperty.NanObjectiveNeverWinsOrEscapes";
    def.generate = [](tk::prng& r) { return r.next(); };
    def.property = [](const std::uint64_t& seed) {
        tk::prng r(seed);
        const ehdse::numeric::vec beta = tk::gen_quadratic_coefficients(r, 3);
        const opt::objective_fn clean = [beta](const ehdse::numeric::vec& x) {
            return tk::eval_quadratic(beta, x);
        };
        opt::box_bounds bounds;
        bounds.lo = ehdse::numeric::vec(3, -1.0);
        bounds.hi = ehdse::numeric::vec(3, 1.0);
        const std::uint64_t opt_seed = r.next();
        const double nan_p = r.uniform(0.05, 0.4);
        {
            opt::sa_options o;
            o.max_epochs = 40;
            o.steps_per_epoch = 10;
            o.calibration_samples = 8;
            ehdse::numeric::rng orng(opt_seed);
            const opt::opt_result res =
                opt::simulated_annealing(o).maximize(
                    tk::faulty_objective(clean, r.next(), nan_p), bounds,
                    orng);
            tk::require(std::isfinite(res.best_value),
                        "SA reported a non-finite optimum under NaN faults");
            tk::require(bounds.contains(res.best_x),
                        "SA optimum escaped the box under NaN faults");
        }
        {
            opt::ga_options o;
            o.population = 16;
            o.generations = 15;
            ehdse::numeric::rng orng(opt_seed);
            const opt::opt_result res =
                opt::genetic_algorithm(o).maximize(
                    tk::faulty_objective(clean, r.next(), nan_p), bounds,
                    orng);
            tk::require(std::isfinite(res.best_value),
                        "GA reported a non-finite optimum under NaN faults");
            tk::require(bounds.contains(res.best_x),
                        "GA optimum escaped the box under NaN faults");
        }
    };
    tk::property_options options;
    options.cases = 25;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}
