// Supercapacitor, load bank and energy ledger.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "power/energy_ledger.hpp"
#include "power/load_bank.hpp"
#include "power/supercapacitor.hpp"

namespace ep = ehdse::power;

TEST(Supercap, EnergyQuadraticInVoltage) {
    ep::supercapacitor cap;
    EXPECT_NEAR(cap.energy_at(2.0), 0.5 * 0.55 * 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(cap.energy_at(0.0), 0.0);
    EXPECT_NEAR(cap.energy_between(2.8, 2.7), cap.energy_at(2.8) - cap.energy_at(2.7),
                1e-15);
}

TEST(Supercap, WithdrawalRoundTrip) {
    ep::supercapacitor cap;
    const double v0 = 2.8;
    const double joules = 0.01;
    const double v1 = cap.voltage_after_withdrawal(v0, joules);
    EXPECT_LT(v1, v0);
    EXPECT_NEAR(cap.energy_at(v0) - cap.energy_at(v1), joules, 1e-12);
}

TEST(Supercap, OverdrawFloorsAtZero) {
    ep::supercapacitor cap;
    EXPECT_DOUBLE_EQ(cap.voltage_after_withdrawal(0.1, 100.0), 0.0);
    EXPECT_THROW(cap.voltage_after_withdrawal(2.8, -1.0), std::invalid_argument);
}

TEST(Supercap, LeakageCurrentOhmic) {
    ep::supercapacitor cap;
    EXPECT_NEAR(cap.leakage_current(2.8),
                2.8 / cap.params().leakage_resistance_ohm, 1e-18);
}

TEST(Supercap, DvDtSignsAndRatingClamp) {
    ep::supercapacitor cap;
    EXPECT_GT(cap.dv_dt(2.8, 1e-3), 0.0);   // strong charge
    EXPECT_LT(cap.dv_dt(2.8, 0.0), 0.0);    // leakage discharges
    // At the rating, charging clamps to zero but discharge still allowed.
    const double vmax = cap.params().max_voltage_v;
    EXPECT_DOUBLE_EQ(cap.dv_dt(vmax, 1.0), 0.0);
    EXPECT_LT(cap.dv_dt(vmax, -1e-3), 0.0);
}

TEST(Supercap, RcDischargeMatchesExponential) {
    // Pure leakage discharge: V(t) = V0 exp(-t/RC). Forward-Euler with a
    // tiny step approximates it; validates dv_dt's sign/scale.
    ep::supercapacitor cap;
    const double rc = cap.params().leakage_resistance_ohm * cap.capacitance();
    double v = 2.8;
    const double dt = rc / 1e5;
    const double t_end = 0.2 * rc;
    for (double t = 0.0; t < t_end; t += dt) v += dt * cap.dv_dt(v, 0.0);
    EXPECT_NEAR(v, 2.8 * std::exp(-0.2), 2.8 * 1e-4);
}

TEST(Supercap, InvalidParamsThrow) {
    ep::supercapacitor_params p;
    p.capacitance_f = 0.0;
    EXPECT_THROW(ep::supercapacitor{p}, std::invalid_argument);
    p = {};
    p.leakage_resistance_ohm = -1.0;
    EXPECT_THROW(ep::supercapacitor{p}, std::invalid_argument);
}

TEST(LoadBank, RegistrationAndTotals) {
    ep::load_bank bank;
    const auto a = bank.add_load("node");
    const auto b = bank.add_load("mcu");
    EXPECT_EQ(bank.load_count(), 2u);
    EXPECT_EQ(bank.name_of(a), "node");

    bank.set_current(a, 1e-3);
    bank.set_resistance(b, 1000.0);
    EXPECT_NEAR(bank.total_current(2.0), 1e-3 + 2.0 / 1000.0, 1e-15);
    EXPECT_NEAR(bank.current_of(b, 2.0), 2e-3, 1e-15);

    bank.clear_resistance(b);
    EXPECT_NEAR(bank.total_current(2.0), 1e-3, 1e-15);
    bank.turn_off(a);
    EXPECT_DOUBLE_EQ(bank.total_current(2.0), 0.0);
}

TEST(LoadBank, Validation) {
    ep::load_bank bank;
    const auto id = bank.add_load("x");
    EXPECT_THROW(bank.set_current(id, -1.0), std::invalid_argument);
    EXPECT_THROW(bank.set_resistance(id, 0.0), std::invalid_argument);
    EXPECT_THROW(bank.set_current(99, 1.0), std::out_of_range);
    EXPECT_THROW(bank.name_of(99), std::out_of_range);
}

TEST(Ledger, AccumulatesPerAccount) {
    ep::energy_ledger ledger;
    ledger.record("a", 1.0);
    ledger.record("a", 2.0);
    ledger.record("b", 0.5);
    EXPECT_DOUBLE_EQ(ledger.total("a"), 3.0);
    EXPECT_DOUBLE_EQ(ledger.total("b"), 0.5);
    EXPECT_DOUBLE_EQ(ledger.total("missing"), 0.0);
    EXPECT_DOUBLE_EQ(ledger.grand_total(), 3.5);
    EXPECT_EQ(ledger.account_count(), 2u);
}

TEST(Ledger, NegativeEnergyRejected) {
    ep::energy_ledger ledger;
    EXPECT_THROW(ledger.record("a", -0.1), std::invalid_argument);
}

TEST(Ledger, ReportContainsAccountsAndTotal) {
    ep::energy_ledger ledger;
    ledger.record("node.transmission", 0.1);
    ledger.record("actuator.coarse", 0.3);
    std::ostringstream os;
    ledger.write_report(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("node.transmission"), std::string::npos);
    EXPECT_NE(text.find("actuator.coarse"), std::string::npos);
    EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(Ledger, ClearEmpties) {
    ep::energy_ledger ledger;
    ledger.record("a", 1.0);
    ledger.clear();
    EXPECT_EQ(ledger.account_count(), 0u);
    EXPECT_DOUBLE_EQ(ledger.grand_total(), 0.0);
}
