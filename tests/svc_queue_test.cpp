// Admission-control contract of the request queue: bounded admission,
// per-client quotas, queued-only cancellation, disconnect sweeps, and
// drain semantics (docs/service.md §Quotas, §Cancellation, §Graceful
// drain) — exercised without a server or sockets around it.
#include "svc/request_queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

using ehdse::svc::queue_limits;
using ehdse::svc::request_queue;

request_queue::job make_job(std::uint64_t client, std::string id,
                            std::vector<std::string>* cancelled = nullptr) {
    request_queue::job job;
    job.client = client;
    job.id = std::move(id);
    job.run = [] {};
    if (cancelled)
        job.cancelled = [cancelled, id = job.id](bool) {
            cancelled->push_back(id);
        };
    return job;
}

TEST(SvcQueue, EnqueuePopFinishLifecycle) {
    request_queue queue;
    std::size_t depth = 0;
    ASSERT_EQ(queue.enqueue(make_job(1, "a"), &depth),
              request_queue::admit::accepted);
    EXPECT_EQ(depth, 1u);
    EXPECT_EQ(queue.queued(), 1u);
    EXPECT_EQ(queue.running(), 0u);

    auto job = queue.pop();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->id, "a");
    EXPECT_EQ(queue.queued(), 0u);
    EXPECT_EQ(queue.running(), 1u);

    queue.finish(job->client, job->id);
    EXPECT_EQ(queue.running(), 0u);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(SvcQueue, FifoOrder) {
    request_queue queue;
    queue.enqueue(make_job(1, "first"));
    queue.enqueue(make_job(2, "second"));
    queue.enqueue(make_job(1, "third"));
    EXPECT_EQ(queue.pop()->id, "first");
    EXPECT_EQ(queue.pop()->id, "second");
    EXPECT_EQ(queue.pop()->id, "third");
}

TEST(SvcQueue, GlobalBoundRejectsQueueFull) {
    request_queue queue(queue_limits{.max_queued = 2, .max_per_client = 64});
    EXPECT_EQ(queue.enqueue(make_job(1, "a")), request_queue::admit::accepted);
    EXPECT_EQ(queue.enqueue(make_job(2, "b")), request_queue::admit::accepted);
    EXPECT_EQ(queue.enqueue(make_job(3, "c")),
              request_queue::admit::queue_full);
    // Popping frees a pending slot (running requests do not count against
    // max_queued).
    auto job = queue.pop();
    EXPECT_EQ(queue.enqueue(make_job(3, "c")), request_queue::admit::accepted);
    queue.finish(job->client, job->id);
}

TEST(SvcQueue, PerClientQuotaCountsQueuedPlusRunning) {
    request_queue queue(queue_limits{.max_queued = 64, .max_per_client = 2});
    EXPECT_EQ(queue.enqueue(make_job(1, "a")), request_queue::admit::accepted);
    auto job = queue.pop();  // "a" now running — still counts
    EXPECT_EQ(queue.enqueue(make_job(1, "b")), request_queue::admit::accepted);
    EXPECT_EQ(queue.enqueue(make_job(1, "c")),
              request_queue::admit::quota_exceeded);
    // Another client is unaffected.
    EXPECT_EQ(queue.enqueue(make_job(2, "c")), request_queue::admit::accepted);
    // Finishing the running request frees the quota slot.
    queue.finish(job->client, job->id);
    EXPECT_EQ(queue.enqueue(make_job(1, "c")), request_queue::admit::accepted);
}

TEST(SvcQueue, DuplicateIdPerConnectionRejected) {
    request_queue queue;
    EXPECT_EQ(queue.enqueue(make_job(1, "a")), request_queue::admit::accepted);
    EXPECT_EQ(queue.enqueue(make_job(1, "a")),
              request_queue::admit::duplicate_id);
    // Same id on a DIFFERENT connection is fine — ids are per-connection.
    EXPECT_EQ(queue.enqueue(make_job(2, "a")), request_queue::admit::accepted);
    // Once finished, the id is reusable.
    auto job = queue.pop();
    queue.finish(1, "a");
    EXPECT_EQ(queue.enqueue(make_job(1, "a")), request_queue::admit::accepted);
    (void)job;
}

TEST(SvcQueue, CancelQueuedInvokesCallback) {
    request_queue queue;
    std::vector<std::string> cancelled;
    queue.enqueue(make_job(1, "a", &cancelled));
    EXPECT_EQ(queue.cancel(1, "a"), request_queue::cancel_outcome::cancelled);
    ASSERT_EQ(cancelled.size(), 1u);
    EXPECT_EQ(cancelled[0], "a");
    EXPECT_EQ(queue.queued(), 0u);
    // The slot is released: the id is reusable immediately.
    EXPECT_EQ(queue.enqueue(make_job(1, "a")), request_queue::admit::accepted);
}

TEST(SvcQueue, CancelRunningIsTooLate) {
    request_queue queue;
    std::vector<std::string> cancelled;
    queue.enqueue(make_job(1, "a", &cancelled));
    auto job = queue.pop();
    EXPECT_EQ(queue.cancel(1, "a"), request_queue::cancel_outcome::running);
    EXPECT_TRUE(cancelled.empty());
    queue.finish(job->client, job->id);
    EXPECT_EQ(queue.cancel(1, "a"), request_queue::cancel_outcome::not_found);
}

TEST(SvcQueue, CancelUnknownNotFound) {
    request_queue queue;
    EXPECT_EQ(queue.cancel(1, "ghost"),
              request_queue::cancel_outcome::not_found);
    // Wrong client for a live id is equally not_found (per-connection
    // namespaces never leak across clients).
    queue.enqueue(make_job(1, "a"));
    EXPECT_EQ(queue.cancel(2, "a"), request_queue::cancel_outcome::not_found);
}

TEST(SvcQueue, DropClientSweepsOnlyThatClient) {
    request_queue queue;
    std::vector<std::string> cancelled;
    queue.enqueue(make_job(1, "a", &cancelled));
    queue.enqueue(make_job(2, "b", &cancelled));
    queue.enqueue(make_job(1, "c", &cancelled));
    EXPECT_EQ(queue.drop_client(1), 2u);
    EXPECT_EQ(cancelled.size(), 2u);
    EXPECT_EQ(queue.queued(), 1u);
    EXPECT_EQ(queue.pop()->id, "b");
}

TEST(SvcQueue, DrainRejectsNewKeepsExisting) {
    request_queue queue;
    queue.enqueue(make_job(1, "a"));
    EXPECT_FALSE(queue.draining());
    queue.begin_drain();
    EXPECT_TRUE(queue.draining());
    EXPECT_EQ(queue.enqueue(make_job(1, "b")),
              request_queue::admit::draining);
    // Already-accepted work still pops and completes.
    auto job = queue.pop();
    ASSERT_TRUE(job.has_value());
    queue.finish(job->client, job->id);
    queue.wait_idle();  // returns immediately — nothing queued or running
}

TEST(SvcQueue, CancelAllSweepsEverything) {
    request_queue queue;
    std::vector<std::string> cancelled;
    queue.enqueue(make_job(1, "a", &cancelled));
    queue.enqueue(make_job(2, "b", &cancelled));
    EXPECT_EQ(queue.cancel_all(), 2u);
    EXPECT_EQ(cancelled.size(), 2u);
    EXPECT_EQ(queue.queued(), 0u);
}

TEST(SvcQueue, WaitIdleBlocksUntilRunningFinishes) {
    request_queue queue;
    queue.enqueue(make_job(1, "a"));
    auto job = queue.pop();
    std::atomic<bool> idle{false};
    std::thread waiter([&] {
        queue.wait_idle();
        idle.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(idle.load());
    queue.finish(job->client, job->id);
    waiter.join();
    EXPECT_TRUE(idle.load());
}

}  // namespace
