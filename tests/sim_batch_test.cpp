// SoA batch kernel units: masked per-lane RK45 stepping, per-lane event
// queues, watch ranges, failure containment, and lane independence. A
// per-lane exponential decay dx/dt = -k[l] x gives every test a closed
// form to check against.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/batch_ode.hpp"
#include "sim/batch_simulator.hpp"

namespace {

using ehdse::sim::batch_analog_system;
using ehdse::sim::batch_rk45_integrator;
using ehdse::sim::batch_simulator;
using ehdse::sim::batch_state;
using ehdse::sim::lane_step;

/// B lanes of dx/dt = -k[lane] * x: exact solution x0 * exp(-k t).
class decay_batch final : public batch_analog_system {
public:
    explicit decay_batch(std::vector<double> k) : k_(std::move(k)) {}

    std::size_t state_size() const override { return 1; }
    std::size_t lanes() const override { return k_.size(); }
    void derivatives(std::span<const double> /*t*/, const batch_state& x,
                     batch_state& dxdt,
                     std::span<const std::uint8_t> /*active*/) const override {
        const double* xv = x.var(0);
        double* d = dxdt.var(0);
        for (std::size_t l = 0; l < k_.size(); ++l) d[l] = -k_[l] * xv[l];
    }

private:
    std::vector<double> k_;
};

TEST(BatchState, LaneRoundTripAndRowLayout) {
    batch_state s(3, 4);
    EXPECT_EQ(s.vars(), 3u);
    EXPECT_EQ(s.lanes(), 4u);
    const std::vector<double> lane2 = {1.5, -2.0, 7.25};
    s.set_lane(2, lane2);
    EXPECT_EQ(s.lane_state(2), lane2);
    // Rows are lane-contiguous: var(v)[lane] is the storage contract the
    // vectorised inner loops rely on.
    EXPECT_DOUBLE_EQ(s.var(1)[2], -2.0);
    s.var(1)[2] = 9.0;
    EXPECT_DOUBLE_EQ(s.at(1, 2), 9.0);
    // Untouched lanes stay zero-initialised.
    EXPECT_DOUBLE_EQ(s.at(0, 0), 0.0);
}

TEST(BatchRk45, MatchesClosedFormPerLane) {
    const std::vector<double> k = {0.5, 1.0, 2.0, 4.0};
    decay_batch sys(k);
    batch_rk45_integrator integ(1, k.size());

    batch_state x(1, k.size());
    for (std::size_t l = 0; l < k.size(); ++l) x.set(0, l, 1.0);
    std::vector<double> t(k.size(), 0.0);
    const std::vector<double> target(k.size(), 1.0);
    std::vector<lane_step> outcome(k.size());

    while (integ.step_once(sys, t, target, x, outcome) > 0) {
    }
    for (std::size_t l = 0; l < k.size(); ++l) {
        EXPECT_DOUBLE_EQ(t[l], 1.0) << "lane " << l;
        EXPECT_NEAR(x.at(0, l), std::exp(-k[l]), 1e-6) << "lane " << l;
        EXPECT_GT(integ.steps_taken(l), 0u) << "lane " << l;
        EXPECT_GT(integ.last_dt(l), 0.0) << "lane " << l;
    }
}

TEST(BatchRk45, MaskedSteppingLeavesArrivedLanesAlone) {
    const std::vector<double> k = {1.0, 1.0, 1.0};
    decay_batch sys(k);
    batch_rk45_integrator integ(1, k.size());

    batch_state x(1, k.size());
    for (std::size_t l = 0; l < k.size(); ++l) x.set(0, l, 1.0);
    // Lane 1 is already at its target; only lanes 0 and 2 may move.
    std::vector<double> t = {0.0, 0.5, 0.0};
    const std::vector<double> target = {1.0, 0.5, 1.0};
    std::vector<lane_step> outcome(k.size());

    const std::size_t attempted = integ.step_once(sys, t, target, x, outcome);
    EXPECT_EQ(attempted, 2u);
    EXPECT_EQ(outcome[1], lane_step::idle);
    EXPECT_DOUBLE_EQ(t[1], 0.5);
    EXPECT_DOUBLE_EQ(x.at(0, 1), 1.0);
    EXPECT_EQ(integ.steps_taken(1), 0u);

    while (integ.step_once(sys, t, target, x, outcome) > 0) {
    }
    EXPECT_NEAR(x.at(0, 0), std::exp(-1.0), 1e-6);
    EXPECT_NEAR(x.at(0, 2), std::exp(-1.0), 1e-6);
}

TEST(BatchSimulator, PerLaneEventQueuesFireAtExactTimes) {
    const std::vector<double> k = {1.0, 2.0};
    decay_batch sys(k);
    batch_simulator sim(sys, {1.0});

    // Each lane samples its own state at a lane-specific time; the kernel
    // contract is that integration stops exactly on the event time.
    std::vector<double> sampled(k.size(), -1.0);
    std::vector<double> sampled_at(k.size(), -1.0);
    for (std::size_t l = 0; l < k.size(); ++l) {
        const double when = 0.25 * static_cast<double>(l + 1);
        sim.lane(l).at(when, [&, l, when] {
            sampled[l] = sim.lane(l).state_at(0);
            sampled_at[l] = sim.lane(l).now();
            (void)when;
        });
    }
    EXPECT_TRUE(sim.run_until(1.0));
    for (std::size_t l = 0; l < k.size(); ++l) {
        const double when = 0.25 * static_cast<double>(l + 1);
        EXPECT_DOUBLE_EQ(sampled_at[l], when) << "lane " << l;
        EXPECT_NEAR(sampled[l], std::exp(-k[l] * when), 1e-6) << "lane " << l;
        EXPECT_EQ(sim.lane_events(l), 1u) << "lane " << l;
        EXPECT_DOUBLE_EQ(sim.now(l), 1.0) << "lane " << l;
        EXPECT_TRUE(sim.lane_ok(l)) << "lane " << l;
    }
}

TEST(BatchSimulator, EventsCanRescheduleAndPerturbTheirOwnLane) {
    decay_batch sys({1.0, 1.0});
    batch_simulator sim(sys, {1.0});

    // Lane 0: a self-rescheduling process that resets x to 1 every 0.2 s —
    // the batch equivalent of a digital controller kicking the analogue
    // state. Lane 1 decays undisturbed.
    int fires = 0;
    std::function<void()> kick = [&] {
        sim.lane(0).set_state(0, 1.0);
        ++fires;
        if (fires < 4) sim.lane(0).after(0.2, kick);
    };
    sim.lane(0).after(0.2, kick);

    EXPECT_TRUE(sim.run_until(1.0));
    EXPECT_EQ(fires, 4);
    EXPECT_EQ(sim.lane_events(0), 4u);
    EXPECT_EQ(sim.lane_events(1), 0u);
    // Lane 0 last reset at t=0.8, so it decayed only 0.2 s.
    EXPECT_NEAR(sim.state_at(0, 0), std::exp(-0.2), 1e-6);
    EXPECT_NEAR(sim.state_at(1, 0), std::exp(-1.0), 1e-6);
}

TEST(BatchSimulator, WatchRangeTracksPerLaneExtremes) {
    decay_batch sys({1.0, 1.0});
    batch_simulator sim(sys, {1.0});
    sim.watch_range(0);

    // Lane 1 gets kicked above its initial value mid-run; the watch must
    // see the kick (events refresh the watch too, not just ODE steps).
    sim.lane(1).at(0.5, [&] { sim.lane(1).set_state(0, 2.0); });

    EXPECT_TRUE(sim.run_until(1.0));
    EXPECT_NEAR(sim.watched_min(0), std::exp(-1.0), 1e-6);
    EXPECT_DOUBLE_EQ(sim.watched_max(0), 1.0);
    EXPECT_DOUBLE_EQ(sim.watched_max(1), 2.0);
    EXPECT_NEAR(sim.watched_min(1), std::exp(-0.5), 1e-6);
}

TEST(BatchSimulator, NonFiniteLaneFailsAloneOthersFinish) {
    decay_batch sys({1.0, 1.0, 1.0});
    batch_simulator sim(sys, {1.0});

    sim.lane(1).at(0.5, [&] {
        sim.lane(1).set_state(0, std::numeric_limits<double>::quiet_NaN());
    });

    EXPECT_FALSE(sim.run_until(1.0));
    EXPECT_TRUE(sim.lane_ok(0));
    EXPECT_FALSE(sim.lane_ok(1));
    EXPECT_TRUE(sim.lane_ok(2));
    EXPECT_FALSE(sim.lane_state_finite(1));
    // The failed lane stopped where it broke; the healthy lanes reached
    // t_end with the exact closed-form answer.
    EXPECT_DOUBLE_EQ(sim.now(1), 0.5);
    for (const std::size_t l : {std::size_t{0}, std::size_t{2}}) {
        EXPECT_DOUBLE_EQ(sim.now(l), 1.0);
        EXPECT_NEAR(sim.state_at(l, 0), std::exp(-1.0), 1e-6);
    }
}

TEST(BatchSimulator, LanesAreIndependentOfBatchComposition) {
    // The same lane run alone and inside a wider batch must be bitwise
    // identical — trajectory, step counts, event count.
    const double k_probe = 1.3;

    const auto run = [&](std::vector<double> rates, std::size_t probe) {
        decay_batch sys(std::move(rates));
        batch_simulator sim(sys, {1.0});
        sim.lane(probe).at(0.4, [&sim, probe] {
            sim.lane(probe).set_state(0, sim.lane(probe).state_at(0) + 0.5);
        });
        EXPECT_TRUE(sim.run_until(1.0));
        return std::tuple{sim.state_at(probe, 0), sim.lane_steps(probe),
                          sim.lane_events(probe)};
    };

    const auto alone = run({k_probe}, 0);
    const auto batched = run({0.3, k_probe, 2.7, 5.1}, 1);
    EXPECT_EQ(alone, batched);
}

}  // namespace
