// Mixed-signal coordination: analogue integration stopping exactly at
// digital events, state perturbation by events, process wake semantics,
// and waveform tracing.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace es = ehdse::sim;

namespace {

/// dx/dt = rate (integrator ramp), rate adjustable by digital events.
class ramp_system final : public es::analog_system {
public:
    std::size_t state_size() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> dxdt) const override {
        dxdt[0] = rate;
    }
    double rate = 1.0;
};

}  // namespace

TEST(Simulator, PureAnalogRun) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    ASSERT_TRUE(sim.run_until(2.0));
    EXPECT_NEAR(sim.state_at(0), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, EventChangesAnalogInput) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    sim.at(1.0, [&] { sys.rate = 3.0; });
    ASSERT_TRUE(sim.run_until(2.0));
    // 1 s at rate 1 plus 1 s at rate 3.
    EXPECT_NEAR(sim.state_at(0), 4.0, 1e-8);
}

TEST(Simulator, EventReadsConsistentAnalogState) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    double observed = -1.0;
    sim.at(1.5, [&] { observed = sim.state_at(0); });
    ASSERT_TRUE(sim.run_until(3.0));
    EXPECT_NEAR(observed, 1.5, 1e-8);
}

TEST(Simulator, EventPerturbsState) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    sim.at(1.0, [&] { sim.set_state(0, sim.state_at(0) - 0.5); });
    ASSERT_TRUE(sim.run_until(2.0));
    EXPECT_NEAR(sim.state_at(0), 1.5, 1e-8);
}

TEST(Simulator, SchedulingInPastThrows) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    ASSERT_TRUE(sim.run_until(1.0));
    EXPECT_THROW(sim.at(0.5, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.after(-1.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.run_until(0.5), std::invalid_argument);
}

TEST(Simulator, InitialStateSizeMismatchThrows) {
    ramp_system sys;
    EXPECT_THROW(es::simulator(sys, {0.0, 0.0}), std::invalid_argument);
}

TEST(Simulator, CascadedEventsWithinHorizon) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5) sim.after(0.1, chain);
    };
    sim.after(0.1, chain);
    ASSERT_TRUE(sim.run_until(1.0));
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.total_events(), 5u);
}

namespace {

class counting_process final : public es::process {
public:
    counting_process(es::simulator& sim, double period)
        : es::process(sim), period_(period) {
        wake_after(period_);
    }
    int activations = 0;

private:
    void activate() override {
        ++activations;
        wake_after(period_);
    }
    double period_;
};

class reschedule_process final : public es::process {
public:
    explicit reschedule_process(es::simulator& sim) : es::process(sim) {
        wake_after(10.0);  // will be replaced
        wake_after(1.0);   // replaces the pending wake
    }
    std::vector<double> activation_times;

private:
    void activate() override { activation_times.push_back(sim().now()); }
};

}  // namespace

TEST(Process, PeriodicActivation) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    counting_process proc(sim, 0.25);
    ASSERT_TRUE(sim.run_until(1.0));
    EXPECT_EQ(proc.activations, 4);
}

TEST(Process, RescheduleReplacesPendingWake) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    reschedule_process proc(sim);
    ASSERT_TRUE(sim.run_until(20.0));
    // Only the 1 s wake fires; the 10 s wake was cancelled by replacement.
    ASSERT_EQ(proc.activation_times.size(), 1u);
    EXPECT_DOUBLE_EQ(proc.activation_times[0], 1.0);
}

TEST(Process, CancelWakeStopsActivation) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});

    class cancelling final : public es::process {
    public:
        explicit cancelling(es::simulator& s) : es::process(s) {
            wake_after(1.0);
            EXPECT_TRUE(wake_pending());
            cancel_wake();
            EXPECT_FALSE(wake_pending());
        }
        bool activated = false;

    private:
        void activate() override { activated = true; }
    } proc(sim);

    ASSERT_TRUE(sim.run_until(5.0));
    EXPECT_FALSE(proc.activated);
}

TEST(Trace, RecordsAndInterpolates) {
    es::trace tr("x");
    tr.record(0.0, 0.0);
    tr.record(1.0, 2.0);
    tr.record(2.0, 4.0);
    EXPECT_EQ(tr.size(), 3u);
    EXPECT_DOUBLE_EQ(tr.sample(0.5), 1.0);
    EXPECT_DOUBLE_EQ(tr.sample(-1.0), 0.0);  // clamped
    EXPECT_DOUBLE_EQ(tr.sample(9.0), 4.0);
    EXPECT_DOUBLE_EQ(tr.min_value(), 0.0);
    EXPECT_DOUBLE_EQ(tr.max_value(), 4.0);
    EXPECT_DOUBLE_EQ(tr.last_value(), 4.0);
}

TEST(Trace, MinIntervalThinsSamples) {
    es::trace tr("x", 0.5);
    for (int i = 0; i <= 100; ++i) tr.record(i * 0.01, i);
    EXPECT_LE(tr.size(), 4u);
}

TEST(Trace, SameTimeUpdateReplaces) {
    es::trace tr("x");
    tr.record(1.0, 5.0);
    tr.record(1.0, 7.0);
    EXPECT_EQ(tr.size(), 1u);
    EXPECT_DOUBLE_EQ(tr.last_value(), 7.0);
}

TEST(Trace, BackwardsTimeThrows) {
    es::trace tr("x");
    tr.record(1.0, 1.0);
    EXPECT_THROW(tr.record(0.5, 1.0), std::invalid_argument);
}

TEST(Trace, ObserverIntegrationWithSimulator) {
    ramp_system sys;
    es::simulator sim(sys, {0.0});
    es::trace tr("ramp", 0.0);
    sim.add_step_observer([&](double t, std::span<const double> x) {
        tr.record(t, x[0]);
    });
    ASSERT_TRUE(sim.run_until(1.0));
    ASSERT_FALSE(tr.empty());
    EXPECT_NEAR(tr.last_value(), 1.0, 1e-8);
    EXPECT_NEAR(tr.sample(0.5), 0.5, 1e-6);
}
