// obs::run_manifest — record accounting, JSON/JSONL serialisation, and a
// full write -> parse -> verify round trip.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/run_manifest.hpp"

namespace eo = ehdse::obs;

namespace {

// run_manifest owns a mutex, so it is neither copyable nor movable; the
// sample is filled in place.
void fill_sample(eo::run_manifest& m) {
    m.set_tool("unit-test", "0.1");
    m.set_option("doe_runs", eo::json_value(10));
    m.set_option("optimizer_seed", eo::json_value(0x0b7a1));
    m.add_phase({"candidates", 0.001, 27});
    m.add_phase({"simulate", 1.25, 10});

    eo::sim_run_record run;
    run.kind = "design_point";
    run.index = 3;
    run.coded = {-1.0, 0.0, 1.0};
    run.mcu_clock_hz = 4e6;
    run.watchdog_period_s = 320.0;
    run.tx_interval_s = 5.0;
    run.seed = 0x5eed;
    run.response = 4242.0;
    run.wall_s = 0.075;
    run.ode_steps = 123456;
    run.ode_steps_rejected = 78;
    run.events = 9876;
    m.add_sim_run(run);

    eo::optimizer_record opt;
    opt.name = "simulated-annealing";
    opt.evaluations = 20033;
    opt.iterations = 400;
    opt.proposed_moves = 20000;
    opt.accepted_moves = 9000;
    opt.acceptance_rate = 0.45;
    opt.converged = true;
    opt.predicted = 7101.0;
    opt.validated_response = 7056.0;
    opt.coded = {1.0, -1.0, -1.0};
    opt.wall_s = 0.4;
    m.add_optimizer(opt);
}

}  // namespace

TEST(Manifest, CountsByKind) {
    eo::run_manifest m;
    fill_sample(m);
    EXPECT_EQ(m.sim_run_count("design_point"), 1u);
    EXPECT_EQ(m.sim_run_count("baseline"), 0u);
    EXPECT_EQ(m.phases().size(), 2u);
    EXPECT_EQ(m.optimizers().size(), 1u);
}

TEST(Manifest, JsonRoundTrip) {
    eo::run_manifest m;
    fill_sample(m);
    std::ostringstream os;
    m.write_json(os);

    const eo::json_value doc = eo::json_value::parse(os.str());
    EXPECT_EQ(doc.at("schema").as_string(), eo::run_manifest::k_schema);
    EXPECT_EQ(doc.at("tool").at("name").as_string(), "unit-test");
    EXPECT_DOUBLE_EQ(doc.at("options").at("doe_runs").as_number(), 10.0);

    ASSERT_EQ(doc.at("phases").size(), 2u);
    EXPECT_EQ(doc.at("phases").at(1).at("name").as_string(), "simulate");
    EXPECT_DOUBLE_EQ(doc.at("phases").at(1).at("items").as_number(), 10.0);

    ASSERT_EQ(doc.at("runs").size(), 1u);
    const auto& run = doc.at("runs").at(0);
    EXPECT_EQ(run.at("kind").as_string(), "design_point");
    EXPECT_DOUBLE_EQ(run.at("index").as_number(), 3.0);
    EXPECT_DOUBLE_EQ(run.at("coded").at(0).as_number(), -1.0);
    EXPECT_DOUBLE_EQ(run.at("config").at("mcu_clock_hz").as_number(), 4e6);
    EXPECT_DOUBLE_EQ(run.at("response").as_number(), 4242.0);
    EXPECT_DOUBLE_EQ(run.at("ode_steps").as_number(), 123456.0);
    EXPECT_DOUBLE_EQ(run.at("ode_steps_rejected").as_number(), 78.0);
    EXPECT_DOUBLE_EQ(run.at("events").as_number(), 9876.0);
    EXPECT_TRUE(run.at("sim_ok").as_bool());

    ASSERT_EQ(doc.at("optimizers").size(), 1u);
    const auto& opt = doc.at("optimizers").at(0);
    EXPECT_EQ(opt.at("name").as_string(), "simulated-annealing");
    EXPECT_DOUBLE_EQ(opt.at("evaluations").as_number(), 20033.0);
    EXPECT_DOUBLE_EQ(opt.at("acceptance_rate").as_number(), 0.45);
    EXPECT_TRUE(opt.at("converged").as_bool());

    // No metrics snapshot attached -> key absent entirely.
    EXPECT_FALSE(doc.contains("metrics"));
}

TEST(Manifest, MetricsSnapshotEmbedded) {
    eo::run_manifest m;
    fill_sample(m);
    eo::json_value metrics = eo::json_object{};
    metrics.set("counters", eo::json_value(eo::json_object{
                                {"sim.ode_steps", eo::json_value(42)}}));
    m.set_metrics(std::move(metrics));
    const auto doc = eo::json_value::parse(m.to_json().dump());
    EXPECT_DOUBLE_EQ(
        doc.at("metrics").at("counters").at("sim.ode_steps").as_number(), 42.0);
}

TEST(Manifest, JsonlOneRecordPerLine) {
    eo::run_manifest m;
    fill_sample(m);
    std::ostringstream os;
    m.write_jsonl(os);
    std::istringstream is(os.str());
    std::string line;
    std::vector<std::string> kinds;
    while (std::getline(is, line)) {
        const auto rec = eo::json_value::parse(line);  // every line parses alone
        kinds.push_back(rec.at("record").as_string());
    }
    EXPECT_EQ(kinds, (std::vector<std::string>{"header", "phase", "phase",
                                               "run", "optimizer"}));
}

TEST(Manifest, ConcurrentAppendsAreLossless) {
    eo::run_manifest m;
    constexpr int k_threads = 8;
    constexpr int k_records = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < k_threads; ++t)
        threads.emplace_back([&m, t] {
            for (int i = 0; i < k_records; ++i) {
                eo::sim_run_record r;
                r.kind = "design_point";
                r.index = static_cast<std::size_t>(t * k_records + i);
                m.add_sim_run(r);
            }
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(m.sim_runs().size(),
              static_cast<std::size_t>(k_threads) * k_records);
    EXPECT_EQ(m.sim_run_count("design_point"),
              static_cast<std::size_t>(k_threads) * k_records);
}
