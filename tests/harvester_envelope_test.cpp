// Envelope solver: convergence, self-consistency, energy bounds,
// and physical monotonicities across the operating space.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "harvester/envelope.hpp"
#include "harvester/vibration.hpp"
#include "harvester/tuning_table.hpp"

namespace eh = ehdse::harvester;

namespace {
constexpr double k_accel_60mg = 0.060 * eh::k_gravity;

const eh::microgenerator& gen() {
    static eh::microgenerator g;
    return g;
}
}  // namespace

TEST(Envelope, ConvergesAtResonance) {
    eh::tuning_table table(gen());
    const int pos = table.lookup(69.0);
    const auto pt = eh::solve_envelope(gen(), pos, 69.0, k_accel_60mg, 2.8);
    EXPECT_TRUE(pt.converged);
    EXPECT_GT(pt.elec.p_store_w, 0.0);
    EXPECT_GT(pt.c_electrical, 0.0);
}

TEST(Envelope, SelfConsistentDamping) {
    eh::tuning_table table(gen());
    const int pos = table.lookup(69.0);
    const auto pt = eh::solve_envelope(gen(), pos, 69.0, k_accel_60mg, 2.8);
    // c_e must equal 2 P_mech / (omega^2 Z^2) at the reported point.
    const double vel2 = pt.mech.velocity_amp_ms * pt.mech.velocity_amp_ms;
    const double c_implied = 2.0 * pt.elec.p_mech_w / vel2;
    EXPECT_NEAR(pt.c_electrical, c_implied, 1e-3 * gen().mech_damping());
}

TEST(Envelope, MechanicalPowerBoundedByTheory) {
    // P_mech can never exceed (mA)^2 / (8 c_m) — the regression guard for
    // the fixed-point bug this solver replaced.
    eh::tuning_table table(gen());
    const double p_max = std::pow(gen().params().mass_kg * k_accel_60mg, 2) /
                         (8.0 * gen().mech_damping());
    for (double f : {64.0, 66.0, 69.0, 74.0, 80.0, 87.0}) {
        const int pos = table.lookup(f);
        const auto pt = eh::solve_envelope(gen(), pos, f, k_accel_60mg, 2.8);
        ASSERT_LE(pt.elec.p_mech_w, p_max * (1.0 + 1e-6)) << "at f=" << f;
    }
}

TEST(Envelope, BlockedWhenStoreVoltageTooHigh) {
    eh::tuning_table table(gen());
    const int pos = table.lookup(69.0);
    // Open-circuit emf at resonance is a few volts; a 50 V store blocks.
    const auto pt = eh::solve_envelope(gen(), pos, 69.0, k_accel_60mg, 50.0);
    EXPECT_TRUE(pt.converged);
    EXPECT_FALSE(pt.elec.conducting);
    EXPECT_DOUBLE_EQ(pt.elec.p_store_w, 0.0);
    EXPECT_DOUBLE_EQ(pt.c_electrical, 0.0);
}

TEST(Envelope, ZeroAccelerationGivesZeroOutput) {
    const auto pt = eh::solve_envelope(gen(), 128, 70.0, 0.0, 2.8);
    EXPECT_DOUBLE_EQ(pt.mech.displacement_amp_m, 0.0);
    EXPECT_DOUBLE_EQ(pt.elec.p_store_w, 0.0);
}

TEST(Envelope, DetuningCollapsesOutput) {
    eh::tuning_table table(gen());
    const int pos = table.lookup(69.0);
    const auto tuned = eh::solve_envelope(gen(), pos, 69.0, k_accel_60mg, 2.8);
    const auto detuned = eh::solve_envelope(gen(), pos, 74.0, k_accel_60mg, 2.8);
    // 5 Hz off resonance with a high-Q device: output essentially gone.
    EXPECT_LT(detuned.elec.p_store_w, 0.05 * tuned.elec.p_store_w);
}

TEST(Envelope, InvalidInputsThrow) {
    EXPECT_THROW(eh::solve_envelope(gen(), 0, 0.0, 1.0, 2.8), std::invalid_argument);
    EXPECT_THROW(eh::solve_envelope(gen(), 0, 70.0, -1.0, 2.8), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Monotonicity sweeps across the storage-voltage axis at several detunings.

class EnvelopeVoltageSweep : public ::testing::TestWithParam<double> {};

TEST_P(EnvelopeVoltageSweep, ChargingCurrentDecreasesWithStoreVoltage) {
    const double detune_hz = GetParam();
    eh::tuning_table table(gen());
    const double f = 69.0 + detune_hz;
    const int pos = table.lookup(69.0);
    double last_i = 1e9;
    for (double v = 2.0; v <= 3.2; v += 0.2) {
        const auto pt = eh::solve_envelope(gen(), pos, f, k_accel_60mg, v);
        ASSERT_TRUE(pt.converged);
        ASSERT_LE(pt.elec.i_avg_a, last_i + 1e-12)
            << "detune=" << detune_hz << " v=" << v;
        last_i = pt.elec.i_avg_a;
    }
}

INSTANTIATE_TEST_SUITE_P(Detunings, EnvelopeVoltageSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 1.0));

// Output power must fall monotonically as |detuning| grows.
TEST(Envelope, PowerFallsWithDetuneMagnitude) {
    eh::tuning_table table(gen());
    const int pos = table.lookup(72.0);
    const double f0 = gen().resonant_frequency(pos);
    double last = 1e9;
    for (double d = 0.0; d <= 2.0; d += 0.25) {
        const auto pt = eh::solve_envelope(gen(), pos, f0 + d, k_accel_60mg, 2.8);
        ASSERT_LE(pt.elec.p_store_w, last * (1.0 + 1e-9)) << "detune " << d;
        last = pt.elec.p_store_w;
    }
}
