// Robustness-study plumbing (statistics and variant enumeration).
#include <gtest/gtest.h>

#include "dse/robustness.hpp"

namespace ed = ehdse::dse;

namespace {
ed::scenario quick() {
    ed::scenario s;
    s.duration_s = 300.0;
    s.step_period_s = 120.0;
    s.step_count = 1;
    return s;
}
}  // namespace

TEST(Robustness, VariantCountAndOrdering) {
    ed::robustness_options opts;
    opts.seeds = {1, 2};
    opts.accel_levels_mg = {60.0};
    opts.step_sizes_hz = {5.0, 8.0};
    const auto s = ed::run_robustness_study(quick(), ed::system_config::original(),
                                            "orig", opts);
    EXPECT_EQ(s.samples.size(), 5u);  // 2 seeds + 1 accel + 2 steps
    EXPECT_EQ(s.label, "orig");
}

TEST(Robustness, StatisticsConsistent) {
    ed::robustness_options opts;
    opts.seeds = {1, 2, 3};
    opts.accel_levels_mg = {40.0, 80.0};
    opts.step_sizes_hz = {};
    const auto s = ed::run_robustness_study(quick(), ed::system_config::original(),
                                            "orig", opts);
    ASSERT_EQ(s.samples.size(), 5u);
    EXPECT_LE(s.min_tx, s.mean_tx);
    EXPECT_GE(s.max_tx, s.mean_tx);
    EXPECT_GE(s.stddev_tx, 0.0);
    for (double v : s.samples) {
        EXPECT_GE(v, s.min_tx);
        EXPECT_LE(v, s.max_tx);
    }
}

TEST(Robustness, HigherAccelerationNeverHurts) {
    ed::robustness_options opts;
    opts.seeds = {};
    opts.accel_levels_mg = {30.0, 60.0, 120.0};
    opts.step_sizes_hz = {};
    ed::system_config greedy = ed::system_config::original();
    greedy.tx_interval_s = 0.05;  // energy-limited: tx tracks harvest
    const auto s = ed::run_robustness_study(quick(), greedy, "greedy", opts);
    ASSERT_EQ(s.samples.size(), 3u);
    EXPECT_LE(s.samples[0], s.samples[1]);
    EXPECT_LE(s.samples[1], s.samples[2]);
}

TEST(Robustness, EmptyAxesGiveEmptySummary) {
    ed::robustness_options opts;
    opts.seeds = {};
    opts.accel_levels_mg = {};
    opts.step_sizes_hz = {};
    const auto s = ed::run_robustness_study(quick(), ed::system_config::original(),
                                            "none", opts);
    EXPECT_TRUE(s.samples.empty());
    EXPECT_DOUBLE_EQ(s.mean_tx, 0.0);
}
