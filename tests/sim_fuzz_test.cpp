// Randomised differential test, on the testkit harness: the event queue
// against a reference model (std::multimap ordered by (time, sequence))
// under random schedule/cancel/pop operation tapes; plus simulator edge
// cases. EHDSE_TESTKIT_SEED reseeds the tapes, EHDSE_FUZZ_MS trades the
// fixed case count for a wall-time budget (the nightly fuzz knob), and a
// failure shrinks to a minimal op tape and prints a one-line repro.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "testkit/property.hpp"
#include "testkit/prng.hpp"

namespace es = ehdse::sim;
namespace tk = ehdse::testkit;

namespace {

struct reference_queue {
    struct entry {
        es::event_id id;
        int payload;
    };
    std::multimap<std::pair<double, std::uint64_t>, entry> entries;
    std::uint64_t seq = 0;

    void schedule(double t, es::event_id id, int payload) {
        entries.emplace(std::make_pair(t, seq++), entry{id, payload});
    }
    bool cancel(es::event_id id) {
        for (auto it = entries.begin(); it != entries.end(); ++it)
            if (it->second.id == id) {
                entries.erase(it);
                return true;
            }
        return false;
    }
    entry pop() {
        auto it = entries.begin();
        entry e = it->second;
        entries.erase(it);
        return e;
    }
};

/// One step of an operation tape. Times are coarse so ties are common
/// (the interesting case for a (time, sequence)-ordered queue).
struct fuzz_op {
    enum kind_t { schedule, cancel, pop } kind = schedule;
    double t = 0.0;       ///< schedule time
    std::size_t pick = 0; ///< cancel target (mod live id count)

    bool operator==(const fuzz_op&) const = default;
};

std::vector<fuzz_op> gen_op_tape(tk::prng& rng) {
    const std::size_t n = 500 + rng.index(1500);
    std::vector<fuzz_op> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        fuzz_op op;
        const double dice = rng.uniform();
        op.kind = dice < 0.5    ? fuzz_op::schedule
                  : dice < 0.65 ? fuzz_op::cancel
                                : fuzz_op::pop;
        op.t = static_cast<double>(rng.index(50));
        op.pick = rng.index(1024);
        ops.push_back(op);
    }
    return ops;
}

/// Replay a tape against queue + reference; throws property_failure on
/// the first divergence.
void run_op_tape(const std::vector<fuzz_op>& ops) {
    es::event_queue queue;
    reference_queue reference;
    std::vector<int> fired;
    std::vector<es::event_id> live_ids;
    int next_payload = 0;

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const fuzz_op& op = ops[i];
        const std::string at = " (op " + std::to_string(i) + ")";
        switch (op.kind) {
            case fuzz_op::schedule: {
                const int payload = next_payload++;
                const es::event_id id = queue.schedule(
                    op.t, [payload, &fired] { fired.push_back(payload); });
                reference.schedule(op.t, id, payload);
                live_ids.push_back(id);
                break;
            }
            case fuzz_op::cancel: {
                if (live_ids.empty()) break;
                const es::event_id id =
                    live_ids[op.pick % live_ids.size()];
                const bool ours = queue.cancel(id);
                const bool refs = reference.cancel(id);
                tk::require(ours == refs, "cancel result diverged" + at);
                break;
            }
            case fuzz_op::pop: {
                tk::require(queue.empty() == reference.entries.empty(),
                            "emptiness diverged before pop" + at);
                if (queue.empty()) break;
                const auto expected = reference.pop();
                fired.clear();
                queue.pop_and_run();
                tk::require(fired.size() == 1,
                            "pop fired " + std::to_string(fired.size()) +
                                " events" + at);
                tk::require(fired[0] == expected.payload,
                            "pop order diverged from the reference" + at);
                break;
            }
        }
        tk::require(queue.size() == reference.entries.size(),
                    "size diverged" + at);
    }

    // Drain both: total order identical.
    while (!queue.empty()) {
        const auto expected = reference.pop();
        fired.clear();
        queue.pop_and_run();
        tk::require(!fired.empty() && fired[0] == expected.payload,
                    "drain order diverged from the reference");
    }
    tk::require(reference.entries.empty(),
                "reference still holds entries after the drain");
}

}  // namespace

TEST(SimFuzz, EventQueueMatchesReferenceModel) {
    tk::property_def<std::vector<fuzz_op>> def;
    def.name = "SimFuzz.EventQueueMatchesReferenceModel";
    def.generate = gen_op_tape;
    def.property = run_op_tape;
    def.shrink = [](const std::vector<fuzz_op>& ops) {
        return tk::shrink_sequence(ops);
    };
    def.show = [](const std::vector<fuzz_op>& ops) {
        std::ostringstream os;
        os << ops.size() << " ops:";
        for (const fuzz_op& op : ops)
            os << (op.kind == fuzz_op::schedule ? " s@"
                   : op.kind == fuzz_op::cancel ? " c#"
                                                : " p@")
               << (op.kind == fuzz_op::cancel ? static_cast<double>(op.pick)
                                              : op.t);
        return os.str();
    };
    tk::property_options options;
    options.cases = 12;
    options.budget_ms = tk::env_fuzz_ms(0.0);  // nightly: fuzz by wall time
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}

// --- simulator edge cases -------------------------------------------------

namespace {
class still_system final : public es::analog_system {
public:
    std::size_t state_size() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> d) const override {
        d[0] = 0.0;
    }
};
}  // namespace

TEST(SimulatorEdge, EventExactlyAtHorizonFires) {
    still_system sys;
    es::simulator sim(sys, {0.0});
    bool fired = false;
    sim.at(1.0, [&] { fired = true; });
    ASSERT_TRUE(sim.run_until(1.0));
    EXPECT_TRUE(fired);
}

TEST(SimulatorEdge, ZeroDurationRunIsNoop) {
    still_system sys;
    es::simulator sim(sys, {0.5});
    ASSERT_TRUE(sim.run_until(0.0));
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_DOUBLE_EQ(sim.state_at(0), 0.5);
}

TEST(SimulatorEdge, EventSchedulingAtCurrentTimeRunsThisSweep) {
    still_system sys;
    es::simulator sim(sys, {0.0});
    std::vector<int> order;
    sim.at(1.0, [&] {
        order.push_back(1);
        sim.at(1.0, [&] { order.push_back(2); });  // same-time follow-up
    });
    ASSERT_TRUE(sim.run_until(2.0));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorEdge, ManyZeroSpacedEventsTerminate) {
    still_system sys;
    es::simulator sim(sys, {0.0});
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 1000) sim.at(sim.now(), chain);
    };
    sim.at(0.5, chain);
    ASSERT_TRUE(sim.run_until(1.0));
    EXPECT_EQ(count, 1000);
}

TEST(SimulatorEdge, NonFiniteStateFailsTheRunCleanly) {
    // An event corrupting the state to NaN (what the fault-injection
    // wrappers do deliberately) must fail run_until instead of stalling
    // the error-controlled integrator.
    still_system sys;
    es::simulator sim(sys, {1.0});
    sim.at(0.5, [&] {
        sim.set_state(0, std::numeric_limits<double>::quiet_NaN());
    });
    EXPECT_TRUE(sim.state_finite());
    EXPECT_FALSE(sim.run_until(1.0));
    EXPECT_FALSE(sim.state_finite());
}
