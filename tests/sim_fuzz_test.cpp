// Randomised differential test: the event queue against a reference model
// (std::multimap ordered by (time, sequence)) under thousands of random
// schedule/cancel/pop operations; plus simulator edge cases.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "numeric/rng.hpp"
#include "sim/simulator.hpp"

namespace es = ehdse::sim;

namespace {

struct reference_queue {
    struct entry {
        es::event_id id;
        int payload;
    };
    std::multimap<std::pair<double, std::uint64_t>, entry> entries;
    std::uint64_t seq = 0;

    void schedule(double t, es::event_id id, int payload) {
        entries.emplace(std::make_pair(t, seq++), entry{id, payload});
    }
    bool cancel(es::event_id id) {
        for (auto it = entries.begin(); it != entries.end(); ++it)
            if (it->second.id == id) {
                entries.erase(it);
                return true;
            }
        return false;
    }
    entry pop() {
        auto it = entries.begin();
        entry e = it->second;
        entries.erase(it);
        return e;
    }
};

}  // namespace

class EventQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
    ehdse::numeric::rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
    es::event_queue queue;
    reference_queue reference;

    std::vector<int> fired;
    std::vector<es::event_id> live_ids;
    int next_payload = 0;

    for (int op = 0; op < 5000; ++op) {
        const double dice = rng.uniform();
        if (dice < 0.5 || queue.empty()) {
            // Schedule at a coarse-grained time so ties are common.
            const double t = static_cast<double>(rng.uniform_index(50));
            const int payload = next_payload++;
            const es::event_id id =
                queue.schedule(t, [payload, &fired] { fired.push_back(payload); });
            reference.schedule(t, id, payload);
            live_ids.push_back(id);
        } else if (dice < 0.65 && !live_ids.empty()) {
            // Cancel a random (possibly already-fired) id.
            const es::event_id id = live_ids[rng.uniform_index(live_ids.size())];
            const bool ours = queue.cancel(id);
            const bool refs = reference.cancel(id);
            ASSERT_EQ(ours, refs);
        } else {
            // Pop: payload order must match the reference exactly.
            ASSERT_EQ(queue.size(), reference.entries.size());
            const auto expected = reference.pop();
            fired.clear();
            queue.pop_and_run();
            ASSERT_EQ(fired.size(), 1u);
            ASSERT_EQ(fired[0], expected.payload);
        }
        ASSERT_EQ(queue.size(), reference.entries.size());
        ASSERT_EQ(queue.empty(), reference.entries.empty());
    }

    // Drain both: total order identical.
    while (!queue.empty()) {
        const auto expected = reference.pop();
        fired.clear();
        queue.pop_and_run();
        ASSERT_EQ(fired[0], expected.payload);
    }
    EXPECT_TRUE(reference.entries.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz, ::testing::Range(0, 6));

// --- simulator edge cases -------------------------------------------------

namespace {
class still_system final : public es::analog_system {
public:
    std::size_t state_size() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> d) const override {
        d[0] = 0.0;
    }
};
}  // namespace

TEST(SimulatorEdge, EventExactlyAtHorizonFires) {
    still_system sys;
    es::simulator sim(sys, {0.0});
    bool fired = false;
    sim.at(1.0, [&] { fired = true; });
    ASSERT_TRUE(sim.run_until(1.0));
    EXPECT_TRUE(fired);
}

TEST(SimulatorEdge, ZeroDurationRunIsNoop) {
    still_system sys;
    es::simulator sim(sys, {0.5});
    ASSERT_TRUE(sim.run_until(0.0));
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_DOUBLE_EQ(sim.state_at(0), 0.5);
}

TEST(SimulatorEdge, EventSchedulingAtCurrentTimeRunsThisSweep) {
    still_system sys;
    es::simulator sim(sys, {0.0});
    std::vector<int> order;
    sim.at(1.0, [&] {
        order.push_back(1);
        sim.at(1.0, [&] { order.push_back(2); });  // same-time follow-up
    });
    ASSERT_TRUE(sim.run_until(2.0));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorEdge, ManyZeroSpacedEventsTerminate) {
    still_system sys;
    es::simulator sim(sys, {0.0});
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 1000) sim.at(sim.now(), chain);
    };
    sim.at(0.5, chain);
    ASSERT_TRUE(sim.run_until(1.0));
    EXPECT_EQ(count, 1000);
}
