// The pluggable flow: run_rsm_flow driven through non-default surrogate /
// design registry names — same pipeline, different fitted surface — with
// the manifest recording which names ran and the uniform fit diagnostics.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dse/rsm_flow.hpp"
#include "obs/run_manifest.hpp"

namespace ed = ehdse::dse;

namespace {

ed::scenario flow_scenario() {
    ed::scenario s;
    s.duration_s = 1200.0;
    s.step_period_s = 500.0;
    s.step_count = 2;
    return s;
}

ed::flow_result run_with(const std::string& surrogate,
                         const std::string& design,
                         std::size_t doe_runs = 10, bool parallel = false,
                         ehdse::obs::run_manifest* manifest = nullptr) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options opts;
    opts.surrogate = surrogate;
    opts.design = design;
    opts.doe_runs = doe_runs;
    opts.parallel = parallel;
    opts.manifest = manifest;
    return ed::run_rsm_flow(ev, opts);
}

}  // namespace

// The same 10-run D-optimal design fitted by each registered surrogate:
// deterministic finite predictions over the coded box, and the LOO-CV
// diagnostic populated (finite when cross-validation has folds to spare,
// +inf on the saturated quadratic — but never silently absent).
TEST(FlowSurrogates, EverySurrogateDrivesTheFlow) {
    for (const std::string surrogate : {"quadratic", "gp"}) {
        const auto a = run_with(surrogate, "d_optimal");
        const auto b = run_with(surrogate, "d_optimal");
        EXPECT_EQ(a.fit.surrogate, surrogate);
        ASSERT_NE(a.fit.surface, nullptr);
        EXPECT_FALSE(std::isnan(a.fit.loo_rmse)) << surrogate;
        for (const auto& x : a.design_coded) {
            const double p = a.fit.predict(x);
            EXPECT_TRUE(std::isfinite(p)) << surrogate;
            EXPECT_DOUBLE_EQ(p, b.fit.predict(x)) << surrogate;
        }
        ASSERT_FALSE(a.outcomes.empty());
        for (const auto& oc : a.outcomes) {
            EXPECT_TRUE(std::isfinite(oc.predicted)) << surrogate;
            EXPECT_TRUE(oc.validated.sim_ok) << surrogate;
        }
    }
}

// The stepwise surrogate needs an over-determined design; at 14 runs it
// fits, reports a finite LOO-CV RMSE, and the optimise phase maximises
// the reduced polynomial.
TEST(FlowSurrogates, StepwiseNeedsOverDeterminedDesign) {
    const auto r = run_with("stepwise", "d_optimal", 14);
    EXPECT_EQ(r.fit.surrogate, "stepwise");
    EXPECT_EQ(r.design_coded.size(), 14u);
    EXPECT_TRUE(std::isfinite(r.fit.loo_rmse));
    EXPECT_TRUE(std::isfinite(r.fit.r_squared));
    EXPECT_EQ(r.fit.quadratic(), nullptr);  // reduced model, not fit_result
    for (const auto& oc : r.outcomes)
        EXPECT_TRUE(r.space.contains(oc.coded, 1e-9)) << oc.name;
}

// Non-default design: Box-Behnken fixes its own 13-run shape, and the
// manifest phase that used to be "d_optimal" carries the design's name.
TEST(FlowSurrogates, BoxBehnkenDesignDrivesTheFlow) {
    ehdse::obs::run_manifest manifest;
    const auto r = run_with("quadratic", "box_behnken", 10, false, &manifest);
    EXPECT_EQ(r.design.name, "box_behnken");
    EXPECT_EQ(r.design.points.size(), 13u);
    EXPECT_EQ(r.design_coded.size(), 13u);
    EXPECT_EQ(manifest.sim_run_count("design_point"), 13u);

    std::vector<std::string> names;
    for (const auto& p : manifest.phases()) names.push_back(p.name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"candidates", "box_behnken", "simulate",
                                        "fit", "baseline", "optimise",
                                        "validate"}));
}

// The manifest echoes the registry names and the uniform fit diagnostics.
TEST(FlowSurrogates, ManifestRecordsNamesAndDiagnostics) {
    ehdse::obs::run_manifest manifest;
    const auto r = run_with("gp", "d_optimal", 10, false, &manifest);
    const auto doc = manifest.to_json();
    EXPECT_EQ(doc.at("options").at("design").as_string(), "d_optimal");
    EXPECT_EQ(doc.at("options").at("surrogate").as_string(), "gp");
    const auto& fit = doc.at("options").at("fit");
    EXPECT_EQ(fit.at("surrogate").as_string(), "gp");
    EXPECT_DOUBLE_EQ(fit.at("r_squared").as_number(), r.fit.r_squared);
    EXPECT_TRUE(fit.at("model").is_object());
}

// GP fit under the worker pool: results identical to sequential (the rsm
// label puts this file in the TSan job).
TEST(FlowSurrogates, ParallelGpMatchesSequential) {
    const auto seq = run_with("gp", "d_optimal");
    const auto par = run_with("gp", "d_optimal", 10, true);
    ASSERT_EQ(seq.responses.size(), par.responses.size());
    for (std::size_t i = 0; i < seq.responses.size(); ++i)
        EXPECT_DOUBLE_EQ(seq.responses[i], par.responses[i]);
    for (const auto& x : seq.design_coded)
        EXPECT_DOUBLE_EQ(seq.fit.predict(x), par.fit.predict(x));
}

// Unknown names surface as std::invalid_argument before any simulation,
// naming the offender.
TEST(FlowSurrogates, UnknownNamesRejected) {
    EXPECT_THROW(run_with("cubic", "d_optimal"), std::invalid_argument);
    EXPECT_THROW(run_with("quadratic", "taguchi"), std::invalid_argument);
}
