// Designs of experiments: classical constructions and D-optimal selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "numeric/rng.hpp"
#include "rsm/quadratic_model.hpp"

namespace ed = ehdse::doe;
namespace en = ehdse::numeric;

namespace {
en::vec quad_basis(const en::vec& x) { return ehdse::rsm::quadratic_basis(x); }
}  // namespace

TEST(Designs, FullFactorialCountsAndLevels) {
    const auto pts = ed::full_factorial(3, 3);
    EXPECT_EQ(pts.size(), 27u);  // the paper's 3^3 candidate set
    std::set<double> levels;
    for (const auto& p : pts)
        for (double v : p) levels.insert(v);
    EXPECT_EQ(levels, (std::set<double>{-1.0, 0.0, 1.0}));

    // All points distinct.
    std::set<std::vector<double>> uniq(pts.begin(), pts.end());
    EXPECT_EQ(uniq.size(), 27u);
}

TEST(Designs, FullFactorialValidation) {
    EXPECT_THROW(ed::full_factorial(0, 3), std::invalid_argument);
    EXPECT_THROW(ed::full_factorial(3, 1), std::invalid_argument);
    EXPECT_THROW(ed::full_factorial(30, 3), std::invalid_argument);  // too large
}

TEST(Designs, FactorialCornersAreCubeVertices) {
    const auto pts = ed::factorial_corners(3);
    EXPECT_EQ(pts.size(), 8u);
    for (const auto& p : pts)
        for (double v : p) EXPECT_EQ(std::abs(v), 1.0);
}

TEST(Designs, CentralCompositeStructure) {
    const auto pts = ed::central_composite(3, 1.0, 2);
    // 8 corners + 6 axial + 2 centre.
    EXPECT_EQ(pts.size(), 16u);
    const auto axial_count = std::count_if(pts.begin(), pts.end(), [](const en::vec& p) {
        int nonzero = 0;
        for (double v : p)
            if (v != 0.0) ++nonzero;
        return nonzero == 1;
    });
    EXPECT_EQ(axial_count, 6);
    EXPECT_THROW(ed::central_composite(3, 0.0), std::invalid_argument);
}

TEST(Designs, BoxBehnkenStructure) {
    const auto pts = ed::box_behnken(3, 3);
    // 3 pairs * 4 sign combos + 3 centre = 15.
    EXPECT_EQ(pts.size(), 15u);
    for (std::size_t i = 0; i + 3 < pts.size(); ++i) {
        int nonzero = 0;
        for (double v : pts[i])
            if (v != 0.0) ++nonzero;
        EXPECT_EQ(nonzero, 2);  // edge midpoints
    }
    EXPECT_THROW(ed::box_behnken(2), std::invalid_argument);
}

TEST(DOptimal, PaperSelectionTenOfTwentySeven) {
    const auto candidates = ed::full_factorial(3, 3);
    const auto result = ed::d_optimal_design(candidates, quad_basis, 10);
    EXPECT_EQ(result.selected.size(), 10u);
    EXPECT_TRUE(std::isfinite(result.log_det));
    // Indices are valid and unique.
    std::set<std::size_t> uniq(result.selected.begin(), result.selected.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (std::size_t idx : result.selected) EXPECT_LT(idx, 27u);
}

TEST(DOptimal, BeatsRandomSelections) {
    const auto candidates = ed::full_factorial(3, 3);
    const auto result = ed::d_optimal_design(candidates, quad_basis, 10);

    en::rng rng(21);
    int beaten = 0;
    constexpr int trials = 200;
    for (int t = 0; t < trials; ++t) {
        const auto perm = rng.permutation(candidates.size());
        const std::vector<std::size_t> sel(perm.begin(), perm.begin() + 10);
        const double ld = ed::selection_log_det(candidates, quad_basis, sel);
        if (result.log_det >= ld - 1e-9) ++beaten;
    }
    // The exchange optimum must dominate essentially every random subset.
    EXPECT_GE(beaten, trials - 1);
}

TEST(DOptimal, SelectionSupportsQuadraticFit) {
    const auto candidates = ed::full_factorial(3, 3);
    const auto result = ed::d_optimal_design(candidates, quad_basis, 10);
    std::vector<en::vec> pts;
    for (std::size_t idx : result.selected) pts.push_back(candidates[idx]);
    en::vec y(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
        y[i] = 1.0 + pts[i][0] - 2.0 * pts[i][2];
    EXPECT_NO_THROW(ehdse::rsm::fit_quadratic(pts, y));
}

TEST(DOptimal, DeterministicForFixedSeed) {
    const auto candidates = ed::full_factorial(3, 3);
    ed::d_optimal_options opt;
    opt.seed = 555;
    const auto a = ed::d_optimal_design(candidates, quad_basis, 10, opt);
    const auto b = ed::d_optimal_design(candidates, quad_basis, 10, opt);
    EXPECT_EQ(a.selected, b.selected);
    EXPECT_DOUBLE_EQ(a.log_det, b.log_det);
}

TEST(DOptimal, MoreRunsNeverHurtPerModelInformation) {
    const auto candidates = ed::full_factorial(2, 3);
    const auto small = ed::d_optimal_design(candidates, quad_basis, 6);
    const auto large = ed::d_optimal_design(candidates, quad_basis, 9);
    // Adding rows can only grow det(X'X).
    EXPECT_GE(large.log_det, small.log_det - 1e-9);
}

TEST(DOptimal, Validation) {
    const auto candidates = ed::full_factorial(2, 3);
    EXPECT_THROW(ed::d_optimal_design({}, quad_basis, 3), std::invalid_argument);
    EXPECT_THROW(ed::d_optimal_design(candidates, quad_basis, 100),
                 std::invalid_argument);
    EXPECT_THROW(ed::d_optimal_design(candidates, quad_basis, 5),
                 std::invalid_argument);  // below term count 6
    EXPECT_THROW(
        ed::selection_log_det(candidates, quad_basis, std::vector<std::size_t>{99}),
        std::out_of_range);
}

TEST(DOptimal, RelativeEfficiencyIdentities) {
    // A design compared with itself has efficiency 1.
    EXPECT_NEAR(ed::relative_d_efficiency(5.0, 10, 5.0, 10, 10), 1.0, 1e-12);
    // Doubling det at equal run counts: eff = 2^(1/p).
    EXPECT_NEAR(ed::relative_d_efficiency(std::log(2.0), 10, 0.0, 10, 10),
                std::pow(2.0, 0.1), 1e-12);
    EXPECT_THROW(ed::relative_d_efficiency(1.0, 10, 1.0, 10, 0),
                 std::invalid_argument);
}

TEST(DOptimal, FullFactorialSelectionMatchesItsOwnLogDet) {
    const auto candidates = ed::full_factorial(3, 3);
    std::vector<std::size_t> all(candidates.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    const double ld = ed::selection_log_det(candidates, quad_basis, all);
    EXPECT_TRUE(std::isfinite(ld));
    // 27 runs must carry more total information than the best 10-run subset.
    const auto best10 = ed::d_optimal_design(candidates, quad_basis, 10);
    EXPECT_GT(ld, best10.log_det);
}

TEST(DOptimal, DegenerateCandidateSetUsesGreedyFallback) {
    // A candidate set dominated by replicates of a single point: random
    // 6-subsets are nearly always singular for the 6-term quadratic, so the
    // exchange must fall back to greedy construction — and still succeed,
    // because exactly six linearly independent points exist.
    std::vector<en::vec> candidates(40, en::vec{0.5, 0.5});
    const std::vector<en::vec> support{{-1, -1}, {1, -1}, {-1, 1},
                                       {1, 1},   {0, -1}, {1, 0}};
    candidates.insert(candidates.end(), support.begin(), support.end());

    const auto result = ed::d_optimal_design(candidates, quad_basis, 6);
    EXPECT_TRUE(std::isfinite(result.log_det));
    // Every support point must be selected (they are the only full-rank set).
    std::set<std::size_t> sel(result.selected.begin(), result.selected.end());
    for (std::size_t i = 40; i < 46; ++i) EXPECT_TRUE(sel.count(i)) << i;
}

TEST(DOptimal, ImpossibleModelThrows) {
    // All candidates identical: no design of any size supports the model.
    const std::vector<en::vec> candidates(20, en::vec{0.3, -0.3});
    EXPECT_THROW(ed::d_optimal_design(candidates, quad_basis, 6),
                 std::domain_error);
}

// Sweep: D-optimal selections of growing size are all fit-capable.
class DOptimalSizes : public ::testing::TestWithParam<int> {};

TEST_P(DOptimalSizes, SelectionNonSingular) {
    const auto candidates = ed::full_factorial(3, 3);
    const auto result = ed::d_optimal_design(
        candidates, quad_basis, static_cast<std::size_t>(GetParam()));
    EXPECT_TRUE(std::isfinite(result.log_det));
}

INSTANTIATE_TEST_SUITE_P(RunCounts, DOptimalSizes,
                         ::testing::Values(10, 12, 14, 18, 22, 27));
