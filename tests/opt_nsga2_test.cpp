// NSGA-II: dominance primitives, sorting, and front recovery on problems
// with known Pareto sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "opt/nsga2.hpp"

namespace eo = ehdse::opt;
namespace en = ehdse::numeric;

TEST(Dominance, Definition) {
    EXPECT_TRUE(eo::dominates({2.0, 3.0}, {1.0, 3.0}));
    EXPECT_TRUE(eo::dominates({2.0, 4.0}, {1.0, 3.0}));
    EXPECT_FALSE(eo::dominates({1.0, 3.0}, {2.0, 2.0}));   // trade-off
    EXPECT_FALSE(eo::dominates({1.0, 3.0}, {1.0, 3.0}));   // equal
    EXPECT_THROW(eo::dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(NonDominatedSort, LayersCorrectly) {
    // Points: A(4,4) front 0; B(3,5) front 0; C(3,3) dominated by A;
    // D(1,1) dominated by everything.
    const std::vector<en::vec> obj{{4, 4}, {3, 5}, {3, 3}, {1, 1}};
    const auto rank = eo::non_dominated_sort(obj);
    EXPECT_EQ(rank[0], 0u);
    EXPECT_EQ(rank[1], 0u);
    EXPECT_EQ(rank[2], 1u);
    EXPECT_EQ(rank[3], 2u);
}

namespace {

/// Schaffer's problem (maximised form): f1 = -x^2, f2 = -(x-2)^2.
/// Pareto set: x in [0, 2]; the front satisfies
/// sqrt(-f1) + sqrt(-f2) = 2.
eo::multi_objective_fn schaffer() {
    return [](const en::vec& x) {
        return en::vec{-x[0] * x[0], -(x[0] - 2.0) * (x[0] - 2.0)};
    };
}

}  // namespace

TEST(Nsga2, RecoversSchafferFront) {
    eo::nsga2_options opts;
    opts.population = 60;
    opts.generations = 80;
    en::rng rng(7);
    const auto front = eo::nsga2(opts).optimize(
        schaffer(), 2, eo::box_bounds{{-5.0}, {5.0}}, rng);

    ASSERT_GE(front.size(), 15u);
    for (const auto& p : front) {
        // On the Pareto set: x within [0, 2] (small numerical slack).
        EXPECT_GT(p.x[0], -0.05);
        EXPECT_LT(p.x[0], 2.05);
        // On the front curve.
        const double s = std::sqrt(-p.objectives[0]) + std::sqrt(-p.objectives[1]);
        EXPECT_NEAR(s, 2.0, 0.05);
    }
    // Front spans both ends of the trade-off.
    const auto [lo, hi] = std::minmax_element(
        front.begin(), front.end(), [](const auto& a, const auto& b) {
            return a.x[0] < b.x[0];
        });
    EXPECT_LT(lo->x[0], 0.3);
    EXPECT_GT(hi->x[0], 1.7);
}

TEST(Nsga2, FrontIsMutuallyNonDominated) {
    en::rng rng(13);
    const auto front = eo::nsga2().optimize(
        schaffer(), 2, eo::box_bounds{{-5.0}, {5.0}}, rng);
    for (std::size_t i = 0; i < front.size(); ++i)
        for (std::size_t j = 0; j < front.size(); ++j)
            if (i != j)
                ASSERT_FALSE(eo::dominates(front[i].objectives, front[j].objectives));
}

TEST(Nsga2, SingleObjectiveDegeneratesToMaximisation) {
    // With one objective the front collapses to (near) the maximiser.
    en::rng rng(3);
    const auto front = eo::nsga2().optimize(
        [](const en::vec& x) {
            return en::vec{-(x[0] - 0.5) * (x[0] - 0.5)};
        },
        1, eo::box_bounds{{-1.0}, {1.0}}, rng);
    ASSERT_FALSE(front.empty());
    for (const auto& p : front) EXPECT_NEAR(p.x[0], 0.5, 0.05);
}

TEST(Nsga2, Validation) {
    en::rng rng(1);
    eo::nsga2_options bad;
    bad.population = 2;
    EXPECT_THROW(eo::nsga2(bad).optimize(schaffer(), 2,
                                         eo::box_bounds{{-1.0}, {1.0}}, rng),
                 std::invalid_argument);
    EXPECT_THROW(eo::nsga2().optimize(schaffer(), 0,
                                      eo::box_bounds{{-1.0}, {1.0}}, rng),
                 std::invalid_argument);
    // Objective-size mismatch reported.
    EXPECT_THROW(eo::nsga2().optimize(schaffer(), 3,
                                      eo::box_bounds{{-1.0}, {1.0}}, rng),
                 std::invalid_argument);
}

TEST(Nsga2, DeterministicGivenSeed) {
    en::rng a(21), b(21);
    const auto fa = eo::nsga2().optimize(schaffer(), 2,
                                         eo::box_bounds{{-5.0}, {5.0}}, a);
    const auto fb = eo::nsga2().optimize(schaffer(), 2,
                                         eo::box_bounds{{-5.0}, {5.0}}, b);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i)
        EXPECT_EQ(fa[i].objectives, fb[i].objectives);
}
