// Optimisers: every algorithm must locate the maximum of standard test
// surfaces — including the paper's fitted response surface (eq. 9) —
// across seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "opt/genetic_algorithm.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/pattern_search.hpp"
#include "opt/simulated_annealing.hpp"
#include "rsm/quadratic_model.hpp"

namespace eo = ehdse::opt;
namespace en = ehdse::numeric;

namespace {

/// Concave sphere: max 0 at the centre point c.
eo::objective_fn neg_sphere(en::vec c) {
    return [c = std::move(c)](const en::vec& x) {
        double acc = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
            acc -= (x[i] - c[i]) * (x[i] - c[i]);
        return acc;
    };
}

/// Multimodal ripple on a concave bowl; global max 1 at origin.
double rippled_bowl(const en::vec& x) {
    double r2 = 0.0;
    for (double v : x) r2 += v * v;
    return std::cos(3.0 * std::sqrt(r2)) - 0.5 * r2 + (1.0 - 1.0);
}

/// The paper's fitted response surface, eq. 9 (maximise).
const ehdse::rsm::quadratic_model& paper_surface() {
    static ehdse::rsm::quadratic_model m(
        3, {484.02, -121.79, -16.77, -208.43, 120.98, 106.69, -69.75, -34.23,
            -121.79, 32.54});
    return m;
}

std::vector<std::shared_ptr<eo::optimizer>> all_optimizers() {
    return {std::make_shared<eo::simulated_annealing>(),
            std::make_shared<eo::genetic_algorithm>(),
            std::make_shared<eo::nelder_mead>(),
            std::make_shared<eo::pattern_search>(),
            std::make_shared<eo::random_search>()};
}

}  // namespace

TEST(Bounds, UnitBoxAndValidation) {
    const auto b = eo::box_bounds::unit(3);
    EXPECT_EQ(b.dimension(), 3u);
    EXPECT_NO_THROW(b.validate());
    EXPECT_TRUE(b.contains({0.0, 0.5, -1.0}));
    EXPECT_FALSE(b.contains({0.0, 1.5, 0.0}));
    const auto clamped = b.clamp({2.0, -2.0, 0.5});
    EXPECT_DOUBLE_EQ(clamped[0], 1.0);
    EXPECT_DOUBLE_EQ(clamped[1], -1.0);
    eo::box_bounds bad{{0.0}, {0.0}};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Bounds, RandomPointsInsideBox) {
    const eo::box_bounds b{{-2.0, 1.0}, {3.0, 4.0}};
    en::rng rng(4);
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(b.contains(b.random_point(rng)));
}

// Every optimiser, on the smooth concave sphere: must land near the optimum.
class EveryOptimizerSphere
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EveryOptimizerSphere, FindsInteriorMaximum) {
    const auto [which, seed] = GetParam();
    const auto opts = all_optimizers();
    const auto& optimizer = opts[static_cast<std::size_t>(which)];
    en::rng rng(static_cast<std::uint64_t>(seed));

    const en::vec target{0.3, -0.4, 0.1};
    const auto result =
        optimizer->maximize(neg_sphere(target), eo::box_bounds::unit(3), rng);

    EXPECT_GT(result.evaluations, 0u);
    EXPECT_EQ(result.algorithm, optimizer->name());
    // Random search is the weakest — give it a looser bar.
    const double tol = optimizer->name() == "random-search" ? 0.15 : 0.02;
    EXPECT_GT(result.best_value, -tol)
        << optimizer->name() << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(AlgosBySeeds, EveryOptimizerSphere,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1, 7, 42)));

// Global optimisers (SA, GA) on the multimodal ripple: must escape the
// local maxima ring and reach the centre basin.
class GlobalOptimizerRipple : public ::testing::TestWithParam<int> {};

TEST_P(GlobalOptimizerRipple, ReachesGlobalBasin) {
    const int seed = GetParam();
    for (const auto& optimizer :
         std::vector<std::shared_ptr<eo::optimizer>>{
             std::make_shared<eo::simulated_annealing>(),
             std::make_shared<eo::genetic_algorithm>()}) {
        en::rng rng(static_cast<std::uint64_t>(seed));
        const auto result =
            optimizer->maximize(rippled_bowl, eo::box_bounds::unit(2), rng);
        EXPECT_GT(result.best_value, 0.95) << optimizer->name();
        EXPECT_LT(en::norm(result.best_x), 0.35) << optimizer->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalOptimizerRipple,
                         ::testing::Values(3, 13, 23, 33));

// The paper's surface: its box-constrained maximum sits at a known corner
// region; every global optimiser must reach the same value.
TEST(PaperSurface, SaAndGaAgreeOnMaximum) {
    const eo::objective_fn f = [](const en::vec& x) {
        return paper_surface().predict(x);
    };
    const auto bounds = eo::box_bounds::unit(3);

    en::rng rng_sa(5);
    const auto sa = eo::simulated_annealing().maximize(f, bounds, rng_sa);
    en::rng rng_ga(5);
    const auto ga = eo::genetic_algorithm().maximize(f, bounds, rng_ga);

    // Paper Table VI reports ~899 (SA) and ~894 (GA) transmissions at the
    // optimum of this surface; both implementations must find >= that.
    EXPECT_GT(sa.best_value, 890.0);
    EXPECT_GT(ga.best_value, 890.0);
    EXPECT_NEAR(sa.best_value, ga.best_value, 10.0);
    // Both must drive x3 towards its minimum (smallest interval).
    EXPECT_LT(sa.best_x[2], -0.95);
    EXPECT_LT(ga.best_x[2], -0.95);
}

TEST(PaperSurface, DeterministicGivenSeed) {
    const eo::objective_fn f = [](const en::vec& x) {
        return paper_surface().predict(x);
    };
    const auto bounds = eo::box_bounds::unit(3);
    en::rng a(9), b(9);
    const auto ra = eo::simulated_annealing().maximize(f, bounds, a);
    const auto rb = eo::simulated_annealing().maximize(f, bounds, b);
    EXPECT_DOUBLE_EQ(ra.best_value, rb.best_value);
    EXPECT_EQ(ra.best_x, rb.best_x);
}

TEST(GeneticAlgorithm, OptionValidation) {
    eo::ga_options bad;
    bad.population = 1;
    en::rng rng(1);
    EXPECT_THROW(eo::genetic_algorithm(bad).maximize(
                     neg_sphere({0.0}), eo::box_bounds::unit(1), rng),
                 std::invalid_argument);
    bad = {};
    bad.elite_count = bad.population;
    EXPECT_THROW(eo::genetic_algorithm(bad).maximize(
                     neg_sphere({0.0}), eo::box_bounds::unit(1), rng),
                 std::invalid_argument);
}

TEST(Optimizers, RespectBoxWhenOptimumOutside) {
    // Maximum of the unconstrained sphere sits outside the box: every
    // optimiser must return a point inside and push towards the boundary.
    const auto f = neg_sphere({5.0, 5.0});
    const auto bounds = eo::box_bounds::unit(2);
    for (const auto& optimizer : all_optimizers()) {
        en::rng rng(17);
        const auto r = optimizer->maximize(f, bounds, rng);
        EXPECT_TRUE(bounds.contains(r.best_x)) << optimizer->name();
        if (optimizer->name() != "random-search") {
            EXPECT_GT(r.best_x[0], 0.97) << optimizer->name();
            EXPECT_GT(r.best_x[1], 0.97) << optimizer->name();
        }
    }
}
