// Quadratic RSM: basis layout, exact recovery of synthetic surfaces,
// gradient, diagnostics, and the paper's own eq. 9 as a round-trip case.
#include <gtest/gtest.h>

#include <cmath>

#include "doe/designs.hpp"
#include "numeric/rng.hpp"
#include "rsm/quadratic_model.hpp"

namespace er = ehdse::rsm;
namespace en = ehdse::numeric;

TEST(QuadraticBasis, TermCountFormula) {
    EXPECT_EQ(er::quadratic_term_count(1), 3u);
    EXPECT_EQ(er::quadratic_term_count(2), 6u);
    EXPECT_EQ(er::quadratic_term_count(3), 10u);  // the paper's case
    EXPECT_EQ(er::quadratic_term_count(4), 15u);
}

TEST(QuadraticBasis, LayoutForTwoVariables) {
    const en::vec b = er::quadratic_basis({2.0, 3.0});
    ASSERT_EQ(b.size(), 6u);
    EXPECT_DOUBLE_EQ(b[0], 1.0);   // intercept
    EXPECT_DOUBLE_EQ(b[1], 2.0);   // x1
    EXPECT_DOUBLE_EQ(b[2], 3.0);   // x2
    EXPECT_DOUBLE_EQ(b[3], 4.0);   // x1^2
    EXPECT_DOUBLE_EQ(b[4], 9.0);   // x2^2
    EXPECT_DOUBLE_EQ(b[5], 6.0);   // x1*x2
}

TEST(QuadraticBasis, TermNames) {
    EXPECT_EQ(er::quadratic_term_name(3, 0), "1");
    EXPECT_EQ(er::quadratic_term_name(3, 2), "x2");
    EXPECT_EQ(er::quadratic_term_name(3, 4), "x1^2");
    EXPECT_EQ(er::quadratic_term_name(3, 7), "x1*x2");
    EXPECT_EQ(er::quadratic_term_name(3, 9), "x2*x3");
    EXPECT_THROW(er::quadratic_term_name(3, 10), std::out_of_range);
}

TEST(QuadraticModel, AccessorsMatchLayout) {
    // k = 2: beta = [b0, b1, b2, b11, b22, b12]
    er::quadratic_model m(2, {10.0, 1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(m.intercept(), 10.0);
    EXPECT_DOUBLE_EQ(m.linear(0), 1.0);
    EXPECT_DOUBLE_EQ(m.linear(1), 2.0);
    EXPECT_DOUBLE_EQ(m.quadratic(0), 3.0);
    EXPECT_DOUBLE_EQ(m.quadratic(1), 4.0);
    EXPECT_DOUBLE_EQ(m.interaction(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(m.interaction(1, 0), 5.0);  // symmetric access
    EXPECT_THROW(m.interaction(0, 0), std::out_of_range);
    EXPECT_THROW(er::quadratic_model(2, {1.0, 2.0}), std::invalid_argument);
}

TEST(QuadraticModel, GradientMatchesFiniteDifference) {
    er::quadratic_model m(3, {4.0, 1.0, -2.0, 0.5, 3.0, -1.0, 2.0, 0.7, -0.3, 1.1});
    const en::vec x{0.3, -0.6, 0.9};
    const en::vec g = m.gradient(x);
    const double h = 1e-7;
    for (std::size_t i = 0; i < 3; ++i) {
        en::vec xp = x, xm = x;
        xp[i] += h;
        xm[i] -= h;
        const double fd = (m.predict(xp) - m.predict(xm)) / (2.0 * h);
        EXPECT_NEAR(g[i], fd, 1e-6);
    }
}

TEST(FitQuadratic, ExactRecoveryOnFullFactorial) {
    // Synthesize y from a known quadratic; the fit must recover it exactly.
    const en::vec truth{484.02, -121.79, -16.77, -208.43, 120.98,
                        106.69, -69.75,  -34.23, -121.79, 32.54};  // paper eq. 9
    er::quadratic_model true_model(3, truth);

    const auto points = ehdse::doe::full_factorial(3, 3);
    en::vec y;
    for (const auto& p : points) y.push_back(true_model.predict(p));

    const auto fit = er::fit_quadratic(points, y);
    for (std::size_t t = 0; t < truth.size(); ++t)
        EXPECT_NEAR(fit.model.coefficients()[t], truth[t], 1e-8)
            << er::quadratic_term_name(3, t);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
    EXPECT_LT(fit.sse, 1e-12);
}

TEST(FitQuadratic, NoisyFitStillCloseAndDiagnosticsSane) {
    const en::vec truth{10.0, 2.0, -3.0, 1.0, 0.5, -0.7};
    er::quadratic_model true_model(2, truth);
    const auto points = ehdse::doe::full_factorial(2, 5);  // 25 runs
    en::rng rng(7);
    en::vec y;
    for (const auto& p : points)
        y.push_back(true_model.predict(p) + rng.normal(0.0, 0.05));

    const auto fit = er::fit_quadratic(points, y);
    for (std::size_t t = 0; t < truth.size(); ++t)
        EXPECT_NEAR(fit.model.coefficients()[t], truth[t], 0.15);
    EXPECT_GT(fit.r_squared, 0.99);
    EXPECT_LE(fit.adj_r_squared, fit.r_squared + 1e-12);
    EXPECT_TRUE(std::isfinite(fit.press_rmse));
    EXPECT_GT(fit.press_rmse, 0.0);
}

TEST(FitQuadratic, SaturatedDesignInterpolatesWithInfinitePress) {
    // n == p: exact interpolation, PRESS undefined (reported as +inf).
    // (A hand-picked 6-point subset: corners + two axial points — full rank
    // for the 6-term quadratic, unlike an arbitrary factorial slice.)
    const std::vector<en::vec> pts{{-1, -1}, {1, -1}, {-1, 1},
                                   {1, 1},   {0, -1}, {1, 0}};
    const en::vec y{1.0, 2.0, 0.5, -1.0, 3.0, 2.2};
    const auto fit = er::fit_quadratic(pts, y);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
    EXPECT_LT(fit.sse, 1e-18);
    EXPECT_TRUE(std::isinf(fit.press));
}

TEST(FitQuadratic, ErrorsOnBadInput) {
    const auto points = ehdse::doe::full_factorial(2, 3);
    en::vec y(points.size(), 1.0);
    y.pop_back();
    EXPECT_THROW(er::fit_quadratic(points, y), std::invalid_argument);

    // Too few runs for the term count.
    std::vector<en::vec> few(points.begin(), points.begin() + 4);
    EXPECT_THROW(er::fit_quadratic(few, en::vec(4, 1.0)), std::invalid_argument);

    // Degenerate design (all points identical) is rank-deficient.
    std::vector<en::vec> degen(6, en::vec{0.5, 0.5});
    EXPECT_THROW(er::fit_quadratic(degen, en::vec(6, 1.0)), std::domain_error);
}

TEST(FitQuadratic, ToStringMentionsEveryTerm) {
    const en::vec truth{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    er::quadratic_model m(2, truth);
    const std::string s = m.to_string();
    for (const char* term : {"x1", "x2", "x1^2", "x2^2", "x1*x2"})
        EXPECT_NE(s.find(term), std::string::npos) << term;
}

// Exact-recovery property across dimensions.
class RecoveryAcrossDims : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryAcrossDims, FullFactorialRecoversRandomQuadratic) {
    const std::size_t k = static_cast<std::size_t>(GetParam());
    en::rng rng(1000 + k);
    en::vec truth(er::quadratic_term_count(k));
    for (double& b : truth) b = rng.uniform(-5.0, 5.0);
    er::quadratic_model true_model(k, truth);

    const auto points = ehdse::doe::full_factorial(k, 3);
    en::vec y;
    for (const auto& p : points) y.push_back(true_model.predict(p));

    const auto fit = er::fit_quadratic(points, y);
    for (std::size_t t = 0; t < truth.size(); ++t)
        EXPECT_NEAR(fit.model.coefficients()[t], truth[t], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Dims, RecoveryAcrossDims, ::testing::Values(1, 2, 3, 4));
