// Deterministic fault injection, end to end: plans are pure functions of
// (seed, request), analogue faults bend the physics the way they claim,
// an injected NaN fails the run cleanly, and an injected evaluator
// exception surfaces through the whole flow as a typed dse::flow_error
// with the failure recorded in the manifest — never a crash.
#include <gtest/gtest.h>

#include <cmath>

#include "dse/cached_evaluator.hpp"
#include "dse/rsm_flow.hpp"
#include "obs/run_manifest.hpp"
#include "testkit/fault_injection.hpp"
#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;
namespace spec = ehdse::spec;
namespace dse = ehdse::dse;

namespace {

spec::experiment_spec gen_short_case(tk::prng& r) {
    spec::experiment_spec s = tk::gen_experiment_spec(r);
    s.scn.duration_s = r.uniform(60.0, 180.0);
    s.eval.record_traces = false;
    return s;
}

}  // namespace

TEST(TestkitFaultInjection, PlansAreRequestKeyedAndDeterministic) {
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitFaultInjection.PlansAreRequestKeyedAndDeterministic";
    def.generate = [](tk::prng& r) { return tk::gen_experiment_spec(r); };
    def.property = [](const spec::experiment_spec& s) {
        tk::fault_options faults;
        faults.seed = 0x7e57;
        faults.dropout_probability = 0.5;
        faults.leak_probability = 0.5;
        faults.nan_probability = 0.2;
        faults.exception_probability = 0.3;
        const std::uint64_t hash =
            spec::evaluation_request_hash(s.config, s.eval);
        const tk::fault_plan a =
            tk::fault_plan::make(faults, hash, s.scn.duration_s);
        const tk::fault_plan b =
            tk::fault_plan::make(faults, hash, s.scn.duration_s);
        tk::require(a.throw_before_run == b.throw_before_run &&
                        a.dropouts.size() == b.dropouts.size() &&
                        a.leaks.size() == b.leaks.size(),
                    "same request produced different fault plans");
        for (std::size_t i = 0; i < a.dropouts.size(); ++i)
            tk::require(a.dropouts[i].start_s == b.dropouts[i].start_s &&
                            a.dropouts[i].end_s == b.dropouts[i].end_s,
                        "dropout windows differ between identical requests");
        for (std::size_t i = 0; i < a.leaks.size(); ++i)
            tk::require(a.leaks[i].at_s == b.leaks[i].at_s &&
                            a.leaks[i].drop_v == b.leaks[i].drop_v &&
                            a.leaks[i].inject_nan == b.leaks[i].inject_nan,
                        "leak steps differ between identical requests");
        for (const tk::dropout_window& w : a.dropouts)
            tk::require(0.0 <= w.start_s && w.start_s < w.end_s &&
                            w.end_s <= s.scn.duration_s,
                        "dropout window outside the horizon");
        for (const tk::leak_step& l : a.leaks)
            tk::require(0.0 < l.at_s && l.at_s < s.scn.duration_s,
                        "leak step outside the horizon");
    };
    const auto result = tk::run_property(def);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitFaultInjection, DropoutReducesHarvestDeterministically) {
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitFaultInjection.DropoutReducesHarvestDeterministically";
    def.generate = gen_short_case;
    def.property = [](const spec::experiment_spec& s) {
        // Random windows: the run must stay healthy and deterministic.
        tk::fault_options faults;
        faults.dropout_probability = 1.0;
        const tk::faulty_evaluator faulty(s.scn, faults);
        tk::require(!faulty.plan_for(s.config, s.eval).dropouts.empty(),
                    "dropout_probability=1 planned no windows");
        const dse::evaluation_result hit = faulty.evaluate(s.config, s.eval);
        const dse::evaluation_result hit2 = faulty.evaluate(s.config, s.eval);
        tk::require(hit.sim_ok, "dropout run failed to simulate");
        tk::oracles::require_results_bit_equal(
            hit, hit2, "repeated faulty evaluation");
        // A dropout covering the WHOLE horizon starves the store: the
        // clean run harvests strictly more than the blacked-out run.
        tk::fault_plan blackout;
        blackout.dropouts.push_back({0.0, s.scn.duration_s});
        const tk::faulty_evaluator dark(s.scn, blackout);
        const dse::system_evaluator clean(s.scn);
        const dse::evaluation_result base = clean.evaluate(s.config, s.eval);
        const dse::evaluation_result none = dark.evaluate(s.config, s.eval);
        tk::require(none.harvested_energy_j <= 1e-9,
                    "a full-horizon dropout still harvested energy");
        tk::require(base.harvested_energy_j >= none.harvested_energy_j,
                    "clean run harvested less than a blacked-out run");
    };
    def.shrink = [](const spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    tk::property_options options;
    options.cases = 30;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitFaultInjection, LeakStepsAreDeterministicAndBounded) {
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitFaultInjection.LeakStepsAreDeterministicAndBounded";
    def.generate = gen_short_case;
    def.property = [](const spec::experiment_spec& s) {
        tk::fault_options faults;
        faults.leak_probability = 1.0;
        const tk::faulty_evaluator faulty(s.scn, faults);
        const tk::fault_plan plan = faulty.plan_for(s.config, s.eval);
        tk::require(!plan.leaks.empty(), "leak_probability=1 planned no leaks");
        const dse::evaluation_result a = faulty.evaluate(s.config, s.eval);
        const dse::evaluation_result b = faulty.evaluate(s.config, s.eval);
        tk::require(a.sim_ok, "leak run failed to simulate");
        tk::require(a.min_voltage_v >= 0.0,
                    "leak drove the storage voltage negative");
        tk::oracles::require_results_bit_equal(a, b,
                                               "repeated leak evaluation");
    };
    def.shrink = [](const spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    tk::property_options options;
    options.cases = 30;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitFaultInjection, InjectedNanFailsTheRunCleanly) {
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitFaultInjection.InjectedNanFailsTheRunCleanly";
    def.generate = gen_short_case;
    def.property = [](const spec::experiment_spec& s) {
        tk::fault_options faults;
        faults.leak_probability = 1.0;
        faults.nan_probability = 1.0;
        const tk::faulty_evaluator faulty(s.scn, faults);
        // Never throws, never hangs: the simulator's non-finite halt turns
        // the corrupted state into sim_ok = false.
        const dse::evaluation_result out = faulty.evaluate(s.config, s.eval);
        tk::require(!out.sim_ok,
                    "a NaN storage voltage still reported sim_ok = true");
        const dse::evaluation_result again = faulty.evaluate(s.config, s.eval);
        tk::require(!again.sim_ok && out.events == again.events,
                    "NaN-corrupted run is not deterministic");
    };
    def.shrink = [](const spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    tk::property_options options;
    options.cases = 20;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitFaultInjection, EvaluatorExceptionSurfacesAsTypedFlowError) {
    ehdse::spec::scenario scn;
    scn.duration_s = 120.0;
    tk::fault_options faults;
    faults.exception_probability = 1.0;
    const tk::faulty_evaluator faulty(scn, faults);
    ehdse::obs::run_manifest manifest;
    dse::flow_options options;
    options.doe_runs = 10;
    options.manifest = &manifest;
    try {
        (void)dse::run_rsm_flow(faulty, options);
        FAIL() << "flow over an always-throwing evaluator did not throw";
    } catch (const dse::flow_error& e) {
        EXPECT_FALSE(e.phase().empty());
        EXPECT_NE(std::string(e.what()).find("injected fault"),
                  std::string::npos)
            << e.what();
    }
    const ehdse::obs::json_value doc = manifest.to_json();
    const ehdse::obs::json_value& opts = doc.at("options");
    ASSERT_TRUE(opts.contains("error"));
    ASSERT_TRUE(opts.contains("error_phase"));
    EXPECT_NE(opts.at("error").as_string().find("injected fault"),
              std::string::npos);
    EXPECT_FALSE(opts.at("error_phase").as_string().empty());
}

TEST(TestkitFaultInjection, CachedEvaluatorPropagatesInjectedExceptions) {
    ehdse::spec::scenario scn;
    scn.duration_s = 120.0;
    tk::fault_options faults;
    faults.exception_probability = 1.0;
    const tk::faulty_evaluator faulty(scn, faults);
    const dse::cached_evaluator cached(faulty, 4);
    const ehdse::spec::system_config config;
    // The exception is not memoised: both calls throw the typed fault.
    EXPECT_THROW((void)cached.evaluate(config), tk::evaluator_fault);
    EXPECT_THROW((void)cached.evaluate(config), tk::evaluator_fault);
    EXPECT_EQ(cached.stats().entries, 0u);
}
