// Multi-signal waveform database and its VCD/CSV exports.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/waveform_db.hpp"

namespace es = ehdse::sim;

TEST(WaveformDb, SignalRegistration) {
    es::waveform_db db;
    const auto v = db.add_signal("vcap");
    const auto p = db.add_signal("position");
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(p, 1u);
    EXPECT_EQ(db.signal_count(), 2u);
    EXPECT_EQ(db.signal(0).name(), "vcap");
    EXPECT_THROW(db.add_signal(""), std::invalid_argument);
    EXPECT_THROW(db.add_signal("vcap"), std::invalid_argument);
    EXPECT_THROW(db.signal(9), std::out_of_range);
    EXPECT_THROW(db.record(9, 0.0, 1.0), std::out_of_range);
}

TEST(WaveformDb, SignalLimit) {
    es::waveform_db db;
    for (int i = 0; i < 90; ++i) db.add_signal("s" + std::to_string(i));
    EXPECT_THROW(db.add_signal("one_too_many"), std::length_error);
}

TEST(WaveformDb, InvalidTimescaleRejected) {
    EXPECT_THROW(es::waveform_db(0.0), std::invalid_argument);
}

TEST(WaveformDb, VcdStructure) {
    es::waveform_db db(1e-3);  // millisecond timescale
    const auto v = db.add_signal("vcap");
    const auto p = db.add_signal("pos");
    db.record(v, 0.0, 2.8);
    db.record(v, 0.010, 2.79);
    db.record(p, 0.005, 64.0);

    std::ostringstream os;
    db.write_vcd(os, "node");
    const std::string vcd = os.str();

    EXPECT_NE(vcd.find("$timescale 1 ms $end"), std::string::npos);
    EXPECT_NE(vcd.find("$scope module node $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var real 64 ! vcap $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var real 64 \" pos $end"), std::string::npos);
    EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
    // Timestamps in ms units, in order.
    EXPECT_NE(vcd.find("#0\nr2.8 !"), std::string::npos);
    EXPECT_NE(vcd.find("#5\nr64 \""), std::string::npos);
    EXPECT_NE(vcd.find("#10\nr2.79 !"), std::string::npos);
    EXPECT_LT(vcd.find("#0\n"), vcd.find("#5\n"));
    EXPECT_LT(vcd.find("#5\n"), vcd.find("#10\n"));
}

TEST(WaveformDb, CsvMergesTimestamps) {
    es::waveform_db db;
    const auto a = db.add_signal("a");
    const auto b = db.add_signal("b");
    db.record(a, 0.0, 1.0);
    db.record(a, 2.0, 3.0);
    db.record(b, 1.0, 10.0);

    std::ostringstream os;
    db.write_csv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("time,a,b"), std::string::npos);
    // Three distinct timestamps, with interpolation of 'a' at t=1.
    EXPECT_NE(csv.find("1,2,10"), std::string::npos);
}
