// Regression diagnostics: ANOVA decomposition, coefficient inference and
// prediction standard errors on synthetic data with known structure.
#include <gtest/gtest.h>

#include <cmath>

#include "doe/designs.hpp"
#include "numeric/rng.hpp"
#include "rsm/anova.hpp"

namespace er = ehdse::rsm;
namespace en = ehdse::numeric;

namespace {

struct synthetic {
    std::vector<en::vec> points;
    en::vec y;
    er::fit_result fit;
};

/// y = 10 + 5 x1 - 3 x2 + noise(sigma); quadratic/interaction truth = 0.
synthetic make_linear_truth(double sigma, std::uint64_t seed) {
    synthetic s;
    s.points = ehdse::doe::full_factorial(2, 5);  // 25 runs, 6 terms
    en::rng rng(seed);
    for (const auto& p : s.points)
        s.y.push_back(10.0 + 5.0 * p[0] - 3.0 * p[1] + rng.normal(0.0, sigma));
    s.fit = er::fit_quadratic(s.points, s.y);
    return s;
}

}  // namespace

TEST(Anova, SumsOfSquaresDecompose) {
    const auto s = make_linear_truth(0.3, 1);
    const auto a = er::analyse_fit(s.points, s.y, s.fit);
    EXPECT_NEAR(a.ss_total, a.ss_regression + a.ss_residual, 1e-8 * a.ss_total);
    EXPECT_EQ(a.df_regression, 5u);
    EXPECT_EQ(a.df_residual, 19u);
    EXPECT_GT(a.f_statistic, 1.0);
    EXPECT_LT(a.f_p_value, 1e-6);  // the linear terms are strongly real
}

TEST(Anova, SigmaEstimatesNoiseLevel) {
    const double sigma = 0.5;
    const auto s = make_linear_truth(sigma, 2);
    const auto a = er::analyse_fit(s.points, s.y, s.fit);
    EXPECT_NEAR(a.sigma, sigma, 0.4 * sigma);
}

TEST(Anova, IdentifiesSignificantTerms) {
    const auto s = make_linear_truth(0.2, 3);
    const auto a = er::analyse_fit(s.points, s.y, s.fit);
    ASSERT_EQ(a.coefficients.size(), 6u);
    // Intercept, x1, x2 are real; x1^2, x2^2, x1*x2 are pure noise.
    EXPECT_TRUE(a.coefficients[0].significant_05);   // 1
    EXPECT_TRUE(a.coefficients[1].significant_05);   // x1 (truth 5)
    EXPECT_TRUE(a.coefficients[2].significant_05);   // x2 (truth -3)
    int spurious = 0;
    for (std::size_t t = 3; t < 6; ++t)
        if (a.coefficients[t].significant_05) ++spurious;
    EXPECT_LE(spurious, 1);  // ~5% false-positive rate per term
    EXPECT_EQ(a.coefficients[4].term, "x2^2");
}

TEST(Anova, TValuesMatchEstimateOverError) {
    const auto s = make_linear_truth(0.3, 4);
    const auto a = er::analyse_fit(s.points, s.y, s.fit);
    for (const auto& c : a.coefficients)
        EXPECT_NEAR(c.t_value, c.estimate / c.std_error, 1e-9);
}

TEST(Anova, SaturatedDesignRejected) {
    // 6 points, 6 terms: no residual dof.
    const std::vector<en::vec> pts{{-1, -1}, {1, -1}, {-1, 1},
                                   {1, 1},   {0, -1}, {1, 0}};
    const en::vec y{1.0, 2.0, 0.5, -1.0, 3.0, 2.2};
    const auto fit = er::fit_quadratic(pts, y);
    EXPECT_THROW(er::analyse_fit(pts, y, fit), std::invalid_argument);
}

TEST(Anova, MismatchedInputsRejected) {
    const auto s = make_linear_truth(0.3, 5);
    en::vec wrong = s.y;
    wrong.pop_back();
    EXPECT_THROW(er::analyse_fit(s.points, wrong, s.fit), std::invalid_argument);
}

TEST(Anova, PredictionErrorSmallestNearCentre) {
    const auto s = make_linear_truth(0.3, 6);
    const auto a = er::analyse_fit(s.points, s.y, s.fit);
    const double se_centre = er::prediction_std_error(s.points, a, {0.0, 0.0});
    const double se_corner = er::prediction_std_error(s.points, a, {1.0, 1.0});
    const double se_outside = er::prediction_std_error(s.points, a, {2.0, 2.0});
    EXPECT_GT(se_corner, se_centre);
    EXPECT_GT(se_outside, se_corner);  // extrapolation inflates variance
    EXPECT_GT(se_centre, 0.0);
}

TEST(Anova, FormatContainsTables) {
    const auto s = make_linear_truth(0.3, 7);
    const auto a = er::analyse_fit(s.points, s.y, s.fit);
    const std::string text = er::format_anova(a);
    EXPECT_NE(text.find("ANOVA"), std::string::npos);
    EXPECT_NE(text.find("regression"), std::string::npos);
    EXPECT_NE(text.find("x1*x2"), std::string::npos);
    EXPECT_NE(text.find("p-value"), std::string::npos);
}

TEST(LackOfFit, QuadraticTruthNotRejected) {
    // Replicated design, quadratic truth + noise: lack-of-fit must not fire.
    en::rng rng(11);
    std::vector<en::vec> points;
    en::vec y;
    const auto grid = ehdse::doe::full_factorial(2, 3);
    for (int rep = 0; rep < 3; ++rep)
        for (const auto& p : grid) {
            points.push_back(p);
            y.push_back(5.0 + 2.0 * p[0] - p[1] + 0.8 * p[0] * p[0] +
                        rng.normal(0.0, 0.3));
        }
    const auto fit = er::fit_quadratic(points, y);
    const auto lof = er::lack_of_fit(points, y, fit);
    EXPECT_TRUE(lof.testable);
    EXPECT_EQ(lof.replicate_groups, 9u);
    EXPECT_EQ(lof.df_pure_error, 18u);
    EXPECT_EQ(lof.df_lack_of_fit, 3u);  // 9 groups - 6 terms
    EXPECT_GT(lof.p_value, 0.05);
    EXPECT_NEAR(lof.ss_lack_of_fit + lof.ss_pure_error, fit.sse,
                1e-6 * fit.sse + 1e-9);
}

TEST(LackOfFit, CubicTruthDetected) {
    // A strong cubic component the quadratic cannot represent: the test
    // must reject the model.
    en::rng rng(13);
    std::vector<en::vec> points;
    en::vec y;
    const auto grid = ehdse::doe::full_factorial(1, 5);  // 5 levels, 1 var
    for (int rep = 0; rep < 4; ++rep)
        for (const auto& p : grid) {
            points.push_back(p);
            y.push_back(10.0 * p[0] * p[0] * p[0] + rng.normal(0.0, 0.1));
        }
    const auto fit = er::fit_quadratic(points, y);
    const auto lof = er::lack_of_fit(points, y, fit);
    ASSERT_TRUE(lof.testable);
    EXPECT_LT(lof.p_value, 1e-6);
    EXPECT_GT(lof.ss_lack_of_fit, 100.0 * lof.ss_pure_error / lof.df_pure_error);
}

TEST(LackOfFit, NotTestableWithoutReplicates) {
    const auto grid = ehdse::doe::full_factorial(2, 4);  // all distinct
    en::vec y;
    en::rng rng(17);
    for (const auto& p : grid) y.push_back(p[0] + rng.normal(0.0, 0.1));
    const auto fit = er::fit_quadratic(grid, y);
    const auto lof = er::lack_of_fit(grid, y, fit);
    EXPECT_FALSE(lof.testable);
    EXPECT_EQ(lof.df_pure_error, 0u);
    EXPECT_DOUBLE_EQ(lof.ss_pure_error, 0.0);
}

TEST(LackOfFit, MismatchedInputsRejected) {
    const auto s = make_linear_truth(0.3, 19);
    en::vec wrong = s.y;
    wrong.pop_back();
    EXPECT_THROW(er::lack_of_fit(s.points, wrong, s.fit), std::invalid_argument);
}

// Pure-noise surface: the F test must usually fail to reject H0.
class AnovaNullCalibration : public ::testing::TestWithParam<int> {};

TEST_P(AnovaNullCalibration, PureNoiseRarelySignificant) {
    en::rng rng(100 + GetParam());
    const auto points = ehdse::doe::full_factorial(2, 5);
    en::vec y;
    for (std::size_t i = 0; i < points.size(); ++i)
        y.push_back(rng.normal(0.0, 1.0));
    const auto fit = er::fit_quadratic(points, y);
    const auto a = er::analyse_fit(points, y, fit);
    // Not a hard guarantee per seed; across the suite's seeds all happen to
    // be non-significant at the 1% level.
    EXPECT_GT(a.f_p_value, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnovaNullCalibration,
                         ::testing::Values(1, 2, 3, 4, 5));
