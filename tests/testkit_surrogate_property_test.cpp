// Differential oracle: the quadratic surrogate must interpolate a
// synthetic quadratic EXACTLY, whatever registered design family
// produced the training points — least squares on an exact model has
// zero residual. One property per family so a failure names its design.
#include <gtest/gtest.h>

#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;

namespace {

void run_exactness_property(const std::string& design) {
    tk::property_def<std::uint64_t> def;
    def.name = "TestkitSurrogateProperty.QuadraticExactOnEveryDesign";
    def.generate = [](tk::prng& r) { return r.next(); };
    def.property = [design](const std::uint64_t& seed) {
        tk::oracles::check_quadratic_exactness(design, seed);
    };
    tk::property_options options;
    options.cases = 25;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << "design '" << design << "': "
                           << result.report();
}

}  // namespace

TEST(TestkitSurrogateProperty, QuadraticExactOnEveryDesign) {
    const auto& registry = ehdse::doe::design_registry();
    ASSERT_FALSE(registry.empty());
    for (const auto& family : registry) run_exactness_property(family.name);
}

TEST(TestkitSurrogateProperty, FitReproducesTrainingResponsesExactly) {
    // The fitted values at the training points equal the synthetic
    // responses (residuals ~ 0) for every family in one sweep.
    tk::property_def<std::uint64_t> def;
    def.name = "TestkitSurrogateProperty.FitReproducesTrainingResponsesExactly";
    def.generate = [](tk::prng& r) { return r.next(); };
    def.property = [](const std::uint64_t& seed) {
        tk::prng r(seed);
        const auto& registry = ehdse::doe::design_registry();
        const std::string design = registry[r.index(registry.size())].name;
        const ehdse::numeric::vec beta = tk::gen_quadratic_coefficients(r, 3);
        ehdse::doe::design_request request;
        request.name = design;
        request.dimension = 3;
        request.runs = 14;
        request.factorial_levels = 3;
        request.basis = [](const ehdse::numeric::vec& x) {
            return ehdse::rsm::quadratic_basis(x);
        };
        const ehdse::doe::design_result d = ehdse::doe::make_design(request);
        ehdse::numeric::vec y(d.points.size(), 0.0);
        for (std::size_t i = 0; i < d.points.size(); ++i)
            y[i] = tk::eval_quadratic(beta, d.points[i]);
        const ehdse::rsm::surrogate_fit fit =
            ehdse::rsm::make_surrogate("quadratic")->fit(d.points, y);
        for (std::size_t i = 0; i < y.size(); ++i)
            tk::require_near(fit.fitted[i], y[i], 1e-4,
                             design + ": training residual not ~0");
        tk::require(fit.r_squared > 1.0 - 1e-8,
                    design + ": R^2 below 1 on an exact quadratic");
    };
    tk::property_options options;
    options.cases = 40;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}
