// Frame layer of the wire protocol: newline-delimited JSON with a hard
// per-frame byte bound (docs/service.md §Framing). The splitter is the
// only piece that touches raw bytes, so its edge cases — partial
// delivery, batched frames, CRLF, oversize poisoning — live here.
#include "svc/framing.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using ehdse::svc::frame_splitter;

TEST(SvcFraming, SingleFrameRoundTrip) {
    frame_splitter splitter;
    const std::string line = "{\"type\":\"ping\"}\n";
    splitter.feed(line.data(), line.size());
    std::string frame;
    ASSERT_EQ(splitter.next(frame), frame_splitter::status::frame);
    EXPECT_EQ(frame, "{\"type\":\"ping\"}");
    EXPECT_EQ(splitter.next(frame), frame_splitter::status::need_more);
    EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(SvcFraming, PartialDeliveryAccumulates) {
    frame_splitter splitter;
    std::string frame;
    splitter.feed("{\"a\":", 5);
    EXPECT_EQ(splitter.next(frame), frame_splitter::status::need_more);
    splitter.feed("1}", 2);
    EXPECT_EQ(splitter.next(frame), frame_splitter::status::need_more);
    splitter.feed("\n", 1);
    ASSERT_EQ(splitter.next(frame), frame_splitter::status::frame);
    EXPECT_EQ(frame, "{\"a\":1}");
}

TEST(SvcFraming, MultipleFramesInOneFeed) {
    frame_splitter splitter;
    const std::string bytes = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n";
    splitter.feed(bytes.data(), bytes.size());
    std::string frame;
    ASSERT_EQ(splitter.next(frame), frame_splitter::status::frame);
    EXPECT_EQ(frame, "{\"a\":1}");
    ASSERT_EQ(splitter.next(frame), frame_splitter::status::frame);
    EXPECT_EQ(frame, "{\"b\":2}");
    ASSERT_EQ(splitter.next(frame), frame_splitter::status::frame);
    EXPECT_EQ(frame, "{\"c\":3}");
    EXPECT_EQ(splitter.next(frame), frame_splitter::status::need_more);
}

TEST(SvcFraming, CarriageReturnStrippedAndBlankLinesSkipped) {
    frame_splitter splitter;
    const std::string bytes = "\n\r\n{\"a\":1}\r\n\n{\"b\":2}\n";
    splitter.feed(bytes.data(), bytes.size());
    std::string frame;
    ASSERT_EQ(splitter.next(frame), frame_splitter::status::frame);
    EXPECT_EQ(frame, "{\"a\":1}");
    ASSERT_EQ(splitter.next(frame), frame_splitter::status::frame);
    EXPECT_EQ(frame, "{\"b\":2}");
}

TEST(SvcFraming, OversizedFramePoisons) {
    frame_splitter splitter(64);
    const std::string big(100, 'x');  // no terminator, already past limit
    splitter.feed(big.data(), big.size());
    std::string frame;
    EXPECT_EQ(splitter.next(frame), frame_splitter::status::overflow);
    EXPECT_TRUE(splitter.poisoned());
    // Poisoned for good: even a well-formed follow-up is rejected, since
    // byte-stream framing is lost inside the oversized line.
    splitter.feed("{\"a\":1}\n", 8);
    EXPECT_EQ(splitter.next(frame), frame_splitter::status::overflow);
}

TEST(SvcFraming, TerminatorPastLimitPoisons) {
    frame_splitter splitter(8);
    const std::string bytes = "0123456789\n";  // newline beyond byte 8
    splitter.feed(bytes.data(), bytes.size());
    std::string frame;
    EXPECT_EQ(splitter.next(frame), frame_splitter::status::overflow);
    EXPECT_TRUE(splitter.poisoned());
}

TEST(SvcFraming, FrameAtLimitPasses) {
    frame_splitter splitter(8);
    const std::string bytes = "0123456\n";  // 8 bytes with terminator
    splitter.feed(bytes.data(), bytes.size());
    std::string frame;
    ASSERT_EQ(splitter.next(frame), frame_splitter::status::frame);
    EXPECT_EQ(frame, "0123456");
    EXPECT_FALSE(splitter.poisoned());
}

TEST(SvcFraming, NeedMoreUnderLimitDoesNotPoison) {
    frame_splitter splitter(64);
    const std::string bytes(32, 'y');
    splitter.feed(bytes.data(), bytes.size());
    std::string frame;
    EXPECT_EQ(splitter.next(frame), frame_splitter::status::need_more);
    EXPECT_FALSE(splitter.poisoned());
}

}  // namespace
