// Sensor node: Table III energy model, eq. 8 equivalent resistances, and
// the Table II voltage-banded policy on a scripted plant.
#include <gtest/gtest.h>

#include <cmath>

#include "node/sensor_node.hpp"
#include "sim/simulator.hpp"

namespace enode = ehdse::node;
namespace es = ehdse::sim;

namespace {

/// Plant stub with a settable voltage and withdrawal log.
class scripted_plant final : public ehdse::harvester::plant {
public:
    double voltage = 2.9;
    double withdrawn = 0.0;
    int withdraw_calls = 0;
    double sustained_amps = 0.0;

    double storage_voltage() const override { return voltage; }
    void withdraw(double joules, const std::string&) override {
        withdrawn += joules;
        ++withdraw_calls;
    }
    void set_sustained_draw(const std::string&, double amps) override {
        sustained_amps = amps;
    }
    int position() const override { return 0; }
    void set_position(int) override {}
    double vibration_frequency() const override { return 64.0; }
    double phase_lag() const override { return 1.5707963; }
};

/// Trivial analogue system (the node tests exercise only the digital side).
class null_system final : public es::analog_system {
public:
    std::size_t state_size() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> dxdt) const override {
        dxdt[0] = 0.0;
    }
};

}  // namespace

TEST(NodeEnergyModel, PaperTable3Figures) {
    const auto m = enode::derive_energy_model(enode::node_params{});
    EXPECT_NEAR(m.active_time_s, 4.5e-3, 1e-12);                 // 4.5 ms burst
    EXPECT_NEAR(m.charge_per_tx_c, 78.2e-6, 1e-9);               // 78.2 uC
    EXPECT_NEAR(m.energy_per_tx_j, 219e-6, 3e-6);                // ~227 uJ in the paper
    EXPECT_NEAR(m.r_transmit_ohm, 161.0, 2.0);                   // paper: 167 ohm
    EXPECT_NEAR(m.r_sleep_ohm, 5.6e6, 0.3e6);                    // paper: 5.8 Mohm
}

TEST(Node, RegistersSleepDrawOnConstruction) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    enode::sensor_node node(sim, plant);
    EXPECT_DOUBLE_EQ(plant.sustained_amps, 0.5e-6);
}

TEST(Node, FastBandTransmitsAtConfiguredInterval) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    plant.voltage = 2.9;  // above 2.8: fast band
    enode::node_params params;
    params.fast_interval_s = 2.0;
    enode::sensor_node node(sim, plant, params);
    ASSERT_TRUE(sim.run_until(10.5));
    // Wakes at t = 0, 2, 4, 6, 8, 10.
    EXPECT_EQ(node.transmissions(), 6u);
    EXPECT_EQ(node.low_band_transmissions(), 0u);
    EXPECT_EQ(plant.withdraw_calls, 6);
}

TEST(Node, LowBandTransmitsEveryMinute) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    plant.voltage = 2.75;  // Table II row 2
    enode::sensor_node node(sim, plant);
    ASSERT_TRUE(sim.run_until(180.5));
    EXPECT_EQ(node.transmissions(), 4u);  // t = 0, 60, 120, 180
    EXPECT_EQ(node.low_band_transmissions(), 4u);
}

TEST(Node, BelowCutoffNeverTransmits) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    plant.voltage = 2.65;  // Table II row 1
    enode::sensor_node node(sim, plant);
    ASSERT_TRUE(sim.run_until(300.0));
    EXPECT_EQ(node.transmissions(), 0u);
    EXPECT_GT(node.suppressed_wakeups(), 0u);
    EXPECT_DOUBLE_EQ(plant.withdrawn, 0.0);
}

TEST(Node, PolicyFollowsVoltageChanges) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    plant.voltage = 2.9;
    enode::node_params params;
    params.fast_interval_s = 1.0;
    enode::sensor_node node(sim, plant, params);
    // 10 s fast, then drop below cutoff.
    ASSERT_TRUE(sim.run_until(10.5));
    const auto fast_count = node.transmissions();
    EXPECT_EQ(fast_count, 11u);  // t=0..10
    plant.voltage = 2.5;
    ASSERT_TRUE(sim.run_until(70.0));
    EXPECT_EQ(node.transmissions(), fast_count);  // nothing while starved
    plant.voltage = 2.9;
    ASSERT_TRUE(sim.run_until(200.0));
    EXPECT_GT(node.transmissions(), fast_count + 100u);  // resumed at 1 Hz
}

TEST(Node, BurstEnergyScalesWithVoltage) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    enode::sensor_node node(sim, plant);
    const double e28 = node.burst_energy_at(2.8);
    EXPECT_NEAR(e28, 78.2e-6 * 2.8, 1e-8);
    EXPECT_NEAR(node.burst_energy_at(3.0) / e28, 3.0 / 2.8, 1e-12);
}

TEST(Node, TinyIntervalClampedToBurstDuration) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    plant.voltage = 2.9;
    enode::node_params params;
    params.fast_interval_s = 1e-4;  // shorter than the 4.5 ms burst
    enode::sensor_node node(sim, plant, params);
    ASSERT_TRUE(sim.run_until(1.0));
    // Bursts cannot overlap: at most one per 4.5 ms.
    EXPECT_LE(node.transmissions(), static_cast<std::uint64_t>(1.0 / 4.5e-3) + 2);
    EXPECT_GT(node.transmissions(), 200u);
}

TEST(Node, TelemetryLogsOnePacketPerTransmission) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    plant.voltage = 2.9;
    enode::node_params params;
    params.fast_interval_s = 2.0;
    enode::sensor_node node(sim, plant, params);
    node.enable_telemetry([](double t) { return 20.0 + t; });
    ASSERT_TRUE(sim.run_until(10.5));
    ASSERT_EQ(node.telemetry().size(), node.transmissions());
    for (const auto& pkt : node.telemetry()) {
        EXPECT_NEAR(pkt.temperature_c, 20.0 + pkt.time_s, 1e-9);
        EXPECT_DOUBLE_EQ(pkt.supercap_v, 2.9);
    }
    EXPECT_DOUBLE_EQ(node.telemetry()[1].time_s, 2.0);
}

TEST(Node, TelemetryRingBufferKeepsNewest) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    plant.voltage = 2.9;
    enode::node_params params;
    params.fast_interval_s = 1.0;
    enode::sensor_node node(sim, plant, params);
    node.enable_telemetry([](double) { return 0.0; }, 5);
    ASSERT_TRUE(sim.run_until(20.0));
    ASSERT_EQ(node.telemetry().size(), 5u);
    EXPECT_DOUBLE_EQ(node.telemetry().back().time_s, 20.0);
    EXPECT_DOUBLE_EQ(node.telemetry().front().time_s, 16.0);
}

TEST(Node, TelemetryValidation) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    enode::sensor_node node(sim, plant);
    EXPECT_THROW(node.enable_telemetry(nullptr), std::invalid_argument);
    EXPECT_THROW(node.enable_telemetry([](double) { return 0.0; }, 0),
                 std::invalid_argument);
    EXPECT_TRUE(node.telemetry().empty());
}

TEST(Node, InvalidParamsThrow) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    scripted_plant plant;
    enode::node_params p;
    p.fast_interval_s = 0.0;
    EXPECT_THROW(enode::sensor_node(sim, plant, p), std::invalid_argument);
    p = {};
    p.cutoff_voltage_v = 2.9;  // above the low band edge
    EXPECT_THROW(enode::sensor_node(sim, plant, p), std::invalid_argument);
}
