// Special functions: incomplete beta, Student-t and F distributions,
// validated against identities and standard table values.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/special.hpp"

namespace en = ehdse::numeric;

TEST(IncompleteBeta, Endpoints) {
    EXPECT_DOUBLE_EQ(en::incomplete_beta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(en::incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformCase) {
    // I_x(1, 1) = x.
    for (double x : {0.1, 0.25, 0.5, 0.9})
        EXPECT_NEAR(en::incomplete_beta(1.0, 1.0, x), x, 1e-12);
}

TEST(IncompleteBeta, ClosedFormA1) {
    // I_x(1, b) = 1 - (1-x)^b.
    for (double x : {0.2, 0.5, 0.8})
        for (double b : {1.0, 2.0, 5.0})
            EXPECT_NEAR(en::incomplete_beta(1.0, b, x), 1.0 - std::pow(1.0 - x, b),
                        1e-12);
}

TEST(IncompleteBeta, SymmetryIdentity) {
    // I_x(a,b) = 1 - I_{1-x}(b,a).
    for (double x : {0.1, 0.37, 0.6, 0.93})
        EXPECT_NEAR(en::incomplete_beta(2.5, 4.0, x),
                    1.0 - en::incomplete_beta(4.0, 2.5, 1.0 - x), 1e-11);
}

TEST(IncompleteBeta, MonotoneInX) {
    double last = -1.0;
    for (double x = 0.0; x <= 1.0; x += 0.05) {
        const double v = en::incomplete_beta(3.0, 2.0, x);
        EXPECT_GE(v, last);
        last = v;
    }
}

TEST(IncompleteBeta, InvalidArguments) {
    EXPECT_THROW(en::incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
    EXPECT_THROW(en::incomplete_beta(1.0, -1.0, 0.5), std::invalid_argument);
    EXPECT_THROW(en::incomplete_beta(1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(StudentT, SymmetryAndCenter) {
    EXPECT_NEAR(en::student_t_cdf(0.0, 5.0), 0.5, 1e-12);
    for (double t : {0.5, 1.3, 2.8})
        EXPECT_NEAR(en::student_t_cdf(t, 7.0) + en::student_t_cdf(-t, 7.0), 1.0,
                    1e-11);
}

TEST(StudentT, TableValues) {
    // Critical values: P(T <= 2.776, nu=4) = 0.975; P(T <= 1.812, nu=10) = 0.95.
    EXPECT_NEAR(en::student_t_cdf(2.776, 4.0), 0.975, 1e-3);
    EXPECT_NEAR(en::student_t_cdf(1.812, 10.0), 0.95, 1e-3);
    // Large nu approaches the normal: P(T <= 1.96) ~ 0.975.
    EXPECT_NEAR(en::student_t_cdf(1.96, 1e6), 0.975, 1e-3);
}

TEST(StudentT, TwoSidedPValues) {
    EXPECT_NEAR(en::student_t_two_sided_p(0.0, 5.0), 1.0, 1e-12);
    EXPECT_NEAR(en::student_t_two_sided_p(2.776, 4.0), 0.05, 2e-3);
    EXPECT_NEAR(en::student_t_two_sided_p(-2.776, 4.0),
                en::student_t_two_sided_p(2.776, 4.0), 1e-12);
}

TEST(FDist, BasicsAndTableValues) {
    EXPECT_DOUBLE_EQ(en::f_cdf(0.0, 3.0, 5.0), 0.0);
    // Critical values: P(F <= 5.41, 3, 5) ~ 0.95; P(F <= 4.26, 2, 9) ~ 0.95.
    EXPECT_NEAR(en::f_cdf(5.41, 3.0, 5.0), 0.95, 2e-3);
    EXPECT_NEAR(en::f_cdf(4.26, 2.0, 9.0), 0.95, 2e-3);
    EXPECT_NEAR(en::f_upper_p(5.41, 3.0, 5.0), 0.05, 2e-3);
}

TEST(FDist, RelationToT) {
    // T^2 with nu dof is F(1, nu): P(F <= t^2) = P(|T| <= t).
    const double t = 1.7, nu = 8.0;
    EXPECT_NEAR(en::f_cdf(t * t, 1.0, nu), 1.0 - en::student_t_two_sided_p(t, nu),
                1e-10);
}

TEST(FDist, InvalidArguments) {
    EXPECT_THROW(en::f_cdf(1.0, 0.0, 5.0), std::invalid_argument);
    EXPECT_THROW(en::student_t_cdf(1.0, 0.0), std::invalid_argument);
}
