// Vibration stimulus: amplitude conversion, stepping, phase continuity.
#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "harvester/vibration.hpp"

namespace eh = ehdse::harvester;

TEST(Vibration, ConstantSource) {
    eh::vibration_source src(1.0, 10.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(0.0), 10.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(100.0), 10.0);
    EXPECT_NEAR(src.acceleration(0.0), 0.0, 1e-12);             // sin(0)
    EXPECT_NEAR(src.acceleration(0.025), 1.0, 1e-9);            // quarter period
}

TEST(Vibration, MgConversion) {
    const auto src = eh::vibration_source::stepped_mg(60.0, 64.0, 5.0, 1500.0, 2);
    EXPECT_NEAR(src.amplitude(), 0.060 * eh::k_gravity, 1e-12);
}

TEST(Vibration, PaperScheduleFrequencies) {
    const auto src = eh::vibration_source::stepped_mg(60.0, 64.0, 5.0, 1500.0, 2);
    EXPECT_DOUBLE_EQ(src.frequency_at(0.0), 64.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(1499.9), 64.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(1500.0), 69.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(2999.9), 69.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(3000.0), 74.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(3600.0), 74.0);
    ASSERT_EQ(src.change_times().size(), 2u);
    EXPECT_DOUBLE_EQ(src.change_times()[0], 1500.0);
    EXPECT_DOUBLE_EQ(src.change_times()[1], 3000.0);
}

TEST(Vibration, PhaseContinuousAcrossStep) {
    const auto src = eh::vibration_source::stepped(1.0, 7.3, 2.1, 10.0, 3);
    // Acceleration must be continuous at every change time.
    for (const double tc : src.change_times()) {
        const double before = src.acceleration(tc - 1e-9);
        const double after = src.acceleration(tc + 1e-9);
        EXPECT_NEAR(before, after, 1e-5);
    }
}

TEST(Vibration, HoldsLastFrequencyAfterAllSteps) {
    const auto src = eh::vibration_source::stepped(1.0, 10.0, 1.0, 5.0, 2);
    EXPECT_DOUBLE_EQ(src.frequency_at(1e6), 12.0);
}

TEST(Vibration, InvalidParamsThrow) {
    EXPECT_THROW(eh::vibration_source(-1.0, 10.0), std::invalid_argument);
    EXPECT_THROW(eh::vibration_source(1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(eh::vibration_source::stepped(1.0, 10.0, 1.0, 0.0, 2),
                 std::invalid_argument);
    // Steps that would drive the frequency non-positive are rejected.
    EXPECT_THROW(eh::vibration_source::stepped(1.0, 10.0, -6.0, 5.0, 2),
                 std::invalid_argument);
}

TEST(Vibration, ScheduleBuilder) {
    const auto src = eh::vibration_source::from_schedule(
        1.0, {{0.0, 50.0}, {10.0, 55.0}, {25.0, 48.0}});
    EXPECT_DOUBLE_EQ(src.frequency_at(5.0), 50.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(12.0), 55.0);
    EXPECT_DOUBLE_EQ(src.frequency_at(100.0), 48.0);
    for (const double tc : src.change_times())
        EXPECT_NEAR(src.acceleration(tc - 1e-9), src.acceleration(tc + 1e-9), 1e-5);
}

TEST(Vibration, ScheduleValidation) {
    using sched = std::vector<std::pair<double, double>>;
    EXPECT_THROW(eh::vibration_source::from_schedule(1.0, sched{}),
                 std::invalid_argument);
    EXPECT_THROW(eh::vibration_source::from_schedule(1.0, sched{{1.0, 50.0}}),
                 std::invalid_argument);
    EXPECT_THROW(eh::vibration_source::from_schedule(
                     1.0, sched{{0.0, 50.0}, {0.0, 55.0}}),
                 std::invalid_argument);
    EXPECT_THROW(eh::vibration_source::from_schedule(
                     1.0, sched{{0.0, 50.0}, {5.0, -1.0}}),
                 std::invalid_argument);
}

TEST(Vibration, RandomWalkStaysInBandAndIsDeterministic) {
    const auto a = eh::vibration_source::random_walk(1.0, 70.0, 60.0, 3.0, 64.0,
                                                     88.0, 50, 42);
    const auto b = eh::vibration_source::random_walk(1.0, 70.0, 60.0, 3.0, 64.0,
                                                     88.0, 50, 42);
    EXPECT_EQ(a.change_times().size(), 50u);
    for (double t = 0.0; t < 50.0 * 60.0; t += 30.0) {
        const double f = a.frequency_at(t);
        ASSERT_GE(f, 64.0);
        ASSERT_LE(f, 88.0);
        ASSERT_DOUBLE_EQ(f, b.frequency_at(t));
    }
    // Different seed: different walk.
    const auto c = eh::vibration_source::random_walk(1.0, 70.0, 60.0, 3.0, 64.0,
                                                     88.0, 50, 43);
    bool any_diff = false;
    for (double t = 0.0; t < 50.0 * 60.0; t += 60.0)
        if (c.frequency_at(t) != a.frequency_at(t)) any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST(Vibration, CsvScheduleParsing) {
    std::istringstream in(
        "time,frequency\n"
        "0,64\n"
        "# mid-run retune\n"
        "1500, 69.5\n"
        "\n"
        "3000,74 # trailing comment\n");
    const auto sched = eh::vibration_source::parse_schedule_csv(in);
    ASSERT_EQ(sched.size(), 3u);
    EXPECT_DOUBLE_EQ(sched[0].first, 0.0);
    EXPECT_DOUBLE_EQ(sched[0].second, 64.0);
    EXPECT_DOUBLE_EQ(sched[1].second, 69.5);
    EXPECT_DOUBLE_EQ(sched[2].first, 3000.0);
    // Round-trips into a source.
    const auto src = eh::vibration_source::from_schedule(1.0, sched);
    EXPECT_DOUBLE_EQ(src.frequency_at(2000.0), 69.5);
}

TEST(Vibration, CsvScheduleErrors) {
    std::istringstream empty("# only comments\n");
    EXPECT_THROW(eh::vibration_source::parse_schedule_csv(empty),
                 std::invalid_argument);
    std::istringstream missing_col("0\n");
    EXPECT_THROW(eh::vibration_source::parse_schedule_csv(missing_col),
                 std::invalid_argument);
    std::istringstream bad_freq("0,sixty\n");
    EXPECT_THROW(eh::vibration_source::parse_schedule_csv(bad_freq),
                 std::invalid_argument);
    std::istringstream late_header("0,64\nheader,row\n");
    EXPECT_THROW(eh::vibration_source::parse_schedule_csv(late_header),
                 std::invalid_argument);
}

TEST(Vibration, AmplitudeScheduleScalesAcceleration) {
    eh::vibration_source base(2.0, 10.0);
    const auto src = base.with_amplitude_schedule(
        {{0.0, 1.0}, {10.0, 0.0}, {20.0, 0.5}});
    EXPECT_DOUBLE_EQ(src.amplitude_at(5.0), 2.0);
    EXPECT_DOUBLE_EQ(src.amplitude_at(15.0), 0.0);
    EXPECT_DOUBLE_EQ(src.amplitude_at(25.0), 1.0);
    EXPECT_DOUBLE_EQ(src.acceleration(15.3), 0.0);  // source off
    // Base amplitude (and the un-scheduled source) unaffected.
    EXPECT_DOUBLE_EQ(src.amplitude(), 2.0);
    EXPECT_DOUBLE_EQ(base.amplitude_at(15.0), 2.0);
}

TEST(Vibration, AmplitudeScheduleValidation) {
    eh::vibration_source base(1.0, 10.0);
    using sched = std::vector<std::pair<double, double>>;
    EXPECT_THROW(base.with_amplitude_schedule(sched{}), std::invalid_argument);
    EXPECT_THROW(base.with_amplitude_schedule(sched{{1.0, 1.0}}),
                 std::invalid_argument);
    EXPECT_THROW(base.with_amplitude_schedule(sched{{0.0, -0.5}}),
                 std::invalid_argument);
    EXPECT_THROW(base.with_amplitude_schedule(sched{{0.0, 1.0}, {0.0, 0.5}}),
                 std::invalid_argument);
}

TEST(Vibration, DutyCycleBuilder) {
    eh::vibration_source base(1.0, 10.0);
    const auto src = base.with_duty_cycle(60.0, 30.0, 3);
    EXPECT_DOUBLE_EQ(src.amplitude_at(10.0), 1.0);   // on
    EXPECT_DOUBLE_EQ(src.amplitude_at(70.0), 0.0);   // off
    EXPECT_DOUBLE_EQ(src.amplitude_at(100.0), 1.0);  // second cycle on
    EXPECT_DOUBLE_EQ(src.amplitude_at(170.0), 0.0);
    EXPECT_THROW(base.with_duty_cycle(0.0, 30.0, 2), std::invalid_argument);
}

TEST(Vibration, AmplitudeBound) {
    const auto src = eh::vibration_source::stepped(2.5, 20.0, 5.0, 1.0, 3);
    for (double t = 0.0; t < 5.0; t += 0.001)
        ASSERT_LE(std::abs(src.acceleration(t)), 2.5 + 1e-12);
}
