// Work-stealing thread pool: bounded worker counts, submit/parallel_for
// semantics, exception propagation, stealing, and obs integration.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/batch.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace ex = ehdse::exec;

TEST(ThreadPool, DefaultSizeIsHardwareConcurrency) {
    ex::thread_pool pool;
    EXPECT_EQ(pool.size(), ex::default_concurrency());
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitFutureReturnsValues) {
    ex::thread_pool pool(2);
    auto a = pool.submit_future([] { return 7; });
    auto b = pool.submit_future([] { return std::string("ok"); });
    EXPECT_EQ(a.get(), 7);
    EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, SubmitFuturePropagatesExceptions) {
    ex::thread_pool pool(2);
    auto f = pool.submit_future(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueuedTasksBeforeDestruction) {
    std::atomic<int> done{0};
    {
        ex::thread_pool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&done] { done.fetch_add(1); });
    }
    EXPECT_EQ(done.load(), 32);
}

// The regression the engine exists for: however many tasks are in flight,
// the number of distinct worker threads — and the observed concurrency —
// never exceeds the constructed size (the old per-job std::async pattern
// spawned one thread per task).
TEST(ThreadPool, WorkerCountNeverExceedsJobs) {
    constexpr std::size_t jobs = 2;
    ex::thread_pool pool(jobs);

    std::mutex mutex;
    std::set<std::thread::id> worker_ids;
    std::atomic<std::size_t> live{0};
    std::atomic<std::size_t> high_water{0};

    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit_future([&] {
            const std::size_t now = live.fetch_add(1) + 1;
            std::size_t seen = high_water.load();
            while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                worker_ids.insert(std::this_thread::get_id());
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            live.fetch_sub(1);
        }));
    for (auto& f : futures) f.get();

    EXPECT_LE(worker_ids.size(), jobs);
    EXPECT_LE(high_water.load(), jobs);
    EXPECT_EQ(pool.counters().executed, 64u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
    ex::thread_pool pool(3);
    constexpr std::size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
    ex::thread_pool pool(2);
    EXPECT_THROW(pool.parallel_for(16,
                                   [](std::size_t i) {
                                       if (i == 5)
                                           throw std::runtime_error("bad index");
                                   }),
                 std::runtime_error);
    // The pool stays usable afterwards.
    std::atomic<int> sum{0};
    pool.parallel_for(8, [&](std::size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 28);
}

// A body that fans out again must not deadlock waiting on tasks queued
// behind its own worker slot — nested ranges run inline.
TEST(ThreadPool, NestedParallelForRunsInline) {
    ex::thread_pool pool(1);
    std::atomic<int> inner_total{0};
    pool.parallel_for(4, [&](std::size_t) {
        pool.parallel_for(4,
                          [&](std::size_t j) {
                              inner_total.fetch_add(static_cast<int>(j) + 1);
                          });
    });
    EXPECT_EQ(inner_total.load(), 4 * 10);
}

TEST(ThreadPool, FreeParallelForFallsBackSequentially) {
    std::vector<std::size_t> order;
    ex::parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);

    const auto values = ex::map_indexed<int>(
        nullptr, 4, [](std::size_t i) { return static_cast<int>(i * i); });
    EXPECT_EQ(values, (std::vector<int>{0, 1, 4, 9}));
}

// Block one worker, then round-robin enough tasks that some land in the
// blocked worker's deque; the free worker must steal them.
TEST(ThreadPool, StealsFromABlockedWorkersQueue) {
    ex::thread_pool pool(2);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();

    auto blocker = pool.submit_future([gate] { gate.wait(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

    std::vector<std::future<void>> futures;
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit_future([&done] { done.fetch_add(1); }));

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (done.load() < 16 && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(done.load(), 16) << "free worker failed to steal";
    EXPECT_GT(pool.counters().stolen, 0u);

    release.set_value();
    blocker.get();
    for (auto& f : futures) f.get();
}

TEST(ThreadPool, MetricsRecordedWhenRegistryAttached) {
    ehdse::obs::metrics_registry registry;
    ehdse::obs::set_global_registry(&registry);
    {
        ex::thread_pool pool(2);
        pool.parallel_for(64, [](std::size_t) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        });
        EXPECT_DOUBLE_EQ(registry.get_gauge("exec.pool.workers").value(), 2.0);
    }
    ehdse::obs::set_global_registry(nullptr);

    EXPECT_GT(registry.get_counter("exec.pool.tasks").value(), 0u);
    EXPECT_GT(registry.get_histogram("exec.pool.task_wait_seconds").count(),
              0u);
    EXPECT_GT(registry.get_histogram("exec.pool.task_run_seconds").count(),
              0u);
    EXPECT_GE(registry.get_gauge("exec.pool.queue_depth").value(), 0.0);
}
