// Paper-level integration tests: the full one-hour scenario of section V,
// checking the qualitative results the reproduction must preserve.
//
// These are the slowest tests in the suite (each case is a complete
// mixed-signal hour); they pin down the headline shapes:
//   * the optimised configurations roughly double the baseline (Table VI),
//   * the transmission interval x3 is the dominant effect (eq. 9 / Fig. 4),
//   * two-stage tuning beats fine-only and no tuning (section IV-C),
//   * the supercapacitor waveform stays in the operating band (Fig. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "dse/rsm_flow.hpp"
#include "rsm/quadratic_model.hpp"

namespace ed = ehdse::dse;
namespace em = ehdse::mcu;

namespace {
const ed::evaluation_result& eval_original() {
    static const ed::evaluation_result r = [] {
        ed::system_evaluator ev;
        return ev.evaluate(ed::system_config::original());
    }();
    return r;
}
}  // namespace

TEST(PaperIntegration, OriginalDesignInPlausibleBand) {
    const auto& r = eval_original();
    EXPECT_TRUE(r.sim_ok);
    // Paper Table VI reports 405 for the original design; our calibrated
    // plant lands in the same few-hundred band, bounded by the 5 s
    // interval ceiling of 720.
    EXPECT_GT(r.transmissions, 250u);
    EXPECT_LE(r.transmissions, 721u);
}

TEST(PaperIntegration, OptimisedConfigurationRoughlyDoubles) {
    // The validated optimum of the RSM flow must improve on the original
    // by a factor comparable to the paper's 899/405 ~ 2.2.
    ed::system_evaluator ev;
    const auto flow = ed::run_rsm_flow(ev, {});
    for (const auto& oc : flow.outcomes) {
        const double gain = static_cast<double>(oc.validated.transmissions) /
                            static_cast<double>(flow.original_eval.transmissions);
        EXPECT_GT(gain, 1.5) << oc.name;
        EXPECT_LT(gain, 3.5) << oc.name;
    }
}

TEST(PaperIntegration, TransmissionIntervalIsDominantEffect) {
    // Fig. 4 / eq. 9: the x3 linear coefficient dwarfs x1's and x2's.
    ed::system_evaluator ev;
    const auto flow = ed::run_rsm_flow(ev, {});
    const ehdse::rsm::fit_result* fit = flow.fit.quadratic();
    ASSERT_NE(fit, nullptr);
    const auto& m = fit->model;
    EXPECT_GT(std::abs(m.linear(2)), std::abs(m.linear(0)));
    EXPECT_GT(std::abs(m.linear(2)), std::abs(m.linear(1)));
    // And the sign matches: smaller interval -> more transmissions.
    EXPECT_LT(m.linear(2), 0.0);
}

TEST(PaperIntegration, LongIntervalCapsTransmissions) {
    // x3 = 10 s gives at most 360 transmissions/h; the simulation must hit
    // that ceiling (minus the below-band stretches).
    ed::system_evaluator ev;
    ed::system_config c = ed::system_config::original();
    c.tx_interval_s = 10.0;
    const auto r = ev.evaluate(c);
    EXPECT_LE(r.transmissions, 361u);
    EXPECT_GT(r.transmissions, 180u);
}

TEST(PaperIntegration, TwoStageTuningBeatsAlternatives) {
    // Section IV-C: coarse+fine is the energy-efficient choice. Compare
    // one-hour runs under each controller mode at a small transmission
    // interval, where the transmission count tracks the energy budget
    // rather than the interval ceiling.
    auto run_mode = [](em::tuning_mode mode) {
        em::controller_params ctl;
        ctl.mode = mode;
        ed::system_evaluator ev({}, ehdse::harvester::microgenerator_params{},
                                {}, {}, {}, ctl);
        ed::system_config c = ed::system_config::original();
        c.tx_interval_s = 0.05;
        return ev.evaluate(c);
    };
    const auto two_stage = run_mode(em::tuning_mode::two_stage);
    const auto disabled = run_mode(em::tuning_mode::disabled);
    const auto fine_only = run_mode(em::tuning_mode::fine_only);

    // Retuning must pay for itself against a fixed harvester.
    EXPECT_GT(two_stage.transmissions, disabled.transmissions);
    EXPECT_GT(two_stage.harvested_energy_j, 1.5 * disabled.harvested_energy_j);
    // Fine-only cannot track 5 Hz jumps: it harvests less than two-stage.
    EXPECT_GT(two_stage.harvested_energy_j, fine_only.harvested_energy_j);
}

TEST(PaperIntegration, SupercapStaysInOperatingBand) {
    // Fig. 5: the waveform never collapses or overcharges during the hour.
    ed::system_evaluator ev;
    ed::evaluation_options opts;
    opts.record_traces = true;
    const auto r = ev.evaluate(ed::system_config::original(), opts);
    ASSERT_TRUE(r.voltage_trace.has_value());
    EXPECT_GT(r.voltage_trace->min_value(), 2.3);
    EXPECT_LT(r.voltage_trace->max_value(), 3.3);
}

TEST(PaperIntegration, ControllerRetunesAfterEachFrequencyStep) {
    const auto& r = eval_original();
    // Two frequency steps -> at least two coarse retunes, and the magnet
    // travelled a substantial fraction of the range.
    EXPECT_GE(r.tuning.coarse_tunings, 2u);
    EXPECT_GT(r.tuning.coarse_steps, 80u);
    // Watchdog fired roughly duration / period times.
    EXPECT_NEAR(static_cast<double>(r.tuning.wakeups), 3600.0 / 320.0, 2.0);
}

TEST(PaperIntegration, EnergyLedgerDominatedByActuatorAndNode) {
    const auto& r = eval_original();
    const double actuator =
        r.ledger.total("actuator.coarse") + r.ledger.total("actuator.fine");
    const double node = r.ledger.total("node.transmission");
    // These two accounts carry most of the discrete budget (Table IV
    // actuator costs are the largest single figures in the paper).
    EXPECT_GT(actuator + node, 0.8 * r.ledger.grand_total());
    EXPECT_GT(actuator, 0.0);
    EXPECT_GT(node, 0.0);
}

// Energy conservation must hold at EVERY design point, not just the
// baseline: stored-energy change = harvested - withdrawn - sustained -
// leakage (leakage being the only unlogged term, bounded analytically).
class EnergyConservationSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EnergyConservationSweep, BalanceClosesWithinLeakageBound) {
    const auto [clock, wd, interval] = GetParam();
    ed::scenario s;
    s.duration_s = 1200.0;
    s.step_period_s = 500.0;
    ed::system_evaluator ev(s);
    const auto r = ev.evaluate(ed::system_config{clock, wd, interval});
    ASSERT_TRUE(r.sim_ok);

    ehdse::power::supercapacitor cap;
    const double dE = cap.energy_at(r.final_voltage_v) - cap.energy_at(2.80);
    const double balance =
        r.harvested_energy_j - r.withdrawn_energy_j - r.sustained_load_energy_j;
    const double leak_max = r.max_voltage_v * r.max_voltage_v /
                            cap.params().leakage_resistance_ohm * s.duration_s;
    const double leak_min = r.min_voltage_v * r.min_voltage_v /
                            cap.params().leakage_resistance_ohm * s.duration_s;
    // dE = balance - leakage, with leakage in [leak_min, leak_max].
    EXPECT_LE(dE, balance - leak_min + 1e-4);
    EXPECT_GE(dE, balance - leak_max - 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EnergyConservationSweep,
    ::testing::Values(std::make_tuple(125e3, 60.0, 0.005),
                      std::make_tuple(125e3, 600.0, 10.0),
                      std::make_tuple(8e6, 60.0, 10.0),
                      std::make_tuple(8e6, 600.0, 0.005),
                      std::make_tuple(4e6, 320.0, 5.0),
                      std::make_tuple(1e6, 150.0, 0.5)));

TEST(PaperIntegration, FasterWatchdogRespondsFasterToFrequencySteps) {
    ed::system_evaluator ev;
    ed::system_config slow = ed::system_config::original();
    slow.watchdog_period_s = 600.0;
    ed::system_config fast = ed::system_config::original();
    fast.watchdog_period_s = 60.0;
    const auto r_slow = ev.evaluate(slow);
    const auto r_fast = ev.evaluate(fast);
    // Faster wake-up shortens the detuned windows after each step, so the
    // fast config harvests at least as much energy.
    EXPECT_GE(r_fast.harvested_energy_j, r_slow.harvested_energy_j);
}
