// Extension features: the proportional transmission policy and the MPPT
// front-end option.
#include <gtest/gtest.h>

#include <cmath>

#include "dse/system_evaluator.hpp"
#include "node/sensor_node.hpp"
#include "sim/simulator.hpp"

namespace ed = ehdse::dse;
namespace enode = ehdse::node;
namespace es = ehdse::sim;

namespace {

class pinned_plant final : public ehdse::harvester::plant {
public:
    explicit pinned_plant(double v) : voltage_(v) {}
    double storage_voltage() const override { return voltage_; }
    void withdraw(double, const std::string&) override {}
    void set_sustained_draw(const std::string&, double) override {}
    int position() const override { return 0; }
    void set_position(int) override {}
    double vibration_frequency() const override { return 64.0; }
    double phase_lag() const override { return 1.5707963; }

private:
    double voltage_;
};

class null_system final : public es::analog_system {
public:
    std::size_t state_size() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> d) const override {
        d[0] = 0.0;
    }
};

enode::node_params proportional_params() {
    enode::node_params p;
    p.policy = enode::tx_policy::proportional;
    p.fast_interval_s = 1.0;
    return p;
}

}  // namespace

TEST(ProportionalPolicy, IntervalEndpoints) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    pinned_plant plant(2.9);
    enode::sensor_node node(sim, plant, proportional_params());
    // At/above full voltage: fast interval; at cut-off: slow interval.
    EXPECT_DOUBLE_EQ(node.interval_at(2.9), 1.0);
    EXPECT_DOUBLE_EQ(node.interval_at(3.2), 1.0);
    EXPECT_NEAR(node.interval_at(2.7), 60.0, 1e-9);
    EXPECT_TRUE(std::isinf(node.interval_at(2.69)));
}

TEST(ProportionalPolicy, IntervalMonotoneInVoltage) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    pinned_plant plant(2.9);
    enode::sensor_node node(sim, plant, proportional_params());
    double last = 1e9;
    for (double v = 2.70; v <= 2.90001; v += 0.01) {
        const double i = node.interval_at(v);
        ASSERT_LE(i, last + 1e-12) << "v=" << v;
        last = i;
    }
    // Geometric midpoint: log interpolation puts sqrt(60*1) at v = 2.8.
    EXPECT_NEAR(node.interval_at(2.8), std::sqrt(60.0), 0.5);
}

TEST(ProportionalPolicy, BandedIntervalUnchanged) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    pinned_plant plant(2.9);
    enode::sensor_node node(sim, plant, {});  // default banded
    EXPECT_DOUBLE_EQ(node.interval_at(2.85), 5.0);
    EXPECT_DOUBLE_EQ(node.interval_at(2.75), 60.0);
    EXPECT_TRUE(std::isinf(node.interval_at(2.6)));
}

TEST(ProportionalPolicy, SmoothsTheBandCliff) {
    null_system sys;
    es::simulator sim(sys, {0.0});
    pinned_plant plant(2.795);  // just under the 2.8 V band edge
    enode::node_params banded;
    enode::sensor_node nb(sim, plant, banded);
    enode::node_params prop = banded;
    prop.policy = enode::tx_policy::proportional;
    enode::sensor_node np(sim, plant, prop);
    // Banded: full slow interval. Proportional: far faster just below the
    // old cliff.
    EXPECT_DOUBLE_EQ(nb.interval_at(2.795), 60.0);
    EXPECT_LT(np.interval_at(2.795), 25.0);
}

TEST(Frontend, MpptValidation) {
    ehdse::harvester::microgenerator gen;
    ehdse::harvester::vibration_source vib(0.1, 69.0);
    ed::envelope_system system(gen, vib);
    EXPECT_THROW(system.set_frontend(ed::frontend_kind::mppt, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(system.set_frontend(ed::frontend_kind::mppt, 1.5),
                 std::invalid_argument);
    system.set_frontend(ed::frontend_kind::mppt, 0.8);
    EXPECT_EQ(system.frontend(), ed::frontend_kind::mppt);
}

TEST(Frontend, MpptHarvestsMoreThanBridge) {
    // The matched-load converter extracts more than the threshold-limited
    // bridge at the same excitation (that is its entire point).
    ed::scenario s;
    s.duration_s = 900.0;
    s.step_period_s = 400.0;
    s.step_count = 1;
    ed::system_evaluator ev(s);
    ed::evaluation_options bridge, mppt;
    mppt.frontend = ed::frontend_kind::mppt;
    mppt.frontend_efficiency = 0.75;
    const auto rb = ev.evaluate(ed::system_config::original(), bridge);
    const auto rm = ev.evaluate(ed::system_config::original(), mppt);
    EXPECT_GT(rm.harvested_energy_j, 1.2 * rb.harvested_energy_j);
    EXPECT_GE(rm.transmissions, rb.transmissions);
}

TEST(Frontend, MpptEfficiencyScalesHarvest) {
    ed::scenario s;
    s.duration_s = 600.0;
    s.step_count = 0;
    ed::system_evaluator ev(s);
    ed::evaluation_options hi, lo;
    hi.frontend = lo.frontend = ed::frontend_kind::mppt;
    hi.frontend_efficiency = 0.9;
    lo.frontend_efficiency = 0.45;
    const auto rh = ev.evaluate(ed::system_config::original(), hi);
    const auto rl = ev.evaluate(ed::system_config::original(), lo);
    EXPECT_NEAR(rl.harvested_energy_j / rh.harvested_energy_j, 0.5, 0.05);
}
