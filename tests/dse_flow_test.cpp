// End-to-end RSM flow (DOE -> simulate -> fit -> optimise -> validate).
#include <gtest/gtest.h>

#include <cmath>

#include "dse/rsm_flow.hpp"
#include "obs/metrics.hpp"
#include "obs/run_manifest.hpp"
#include "rsm/anova.hpp"
#include "opt/nelder_mead.hpp"

namespace ed = ehdse::dse;

namespace {
/// The flow on a shortened scenario so the whole file stays fast.
ed::scenario flow_scenario() {
    ed::scenario s;
    s.duration_s = 1200.0;
    s.step_period_s = 500.0;
    s.step_count = 2;
    return s;
}

const ed::flow_result& shared_flow() {
    static const ed::flow_result result = [] {
        ed::system_evaluator ev(flow_scenario());
        return ed::run_rsm_flow(ev, {});
    }();
    return result;
}
}  // namespace

TEST(Flow, DoeSelectsRequestedRunCount) {
    const auto& r = shared_flow();
    EXPECT_EQ(r.design.candidates.size(), 27u);
    EXPECT_EQ(r.design.selected.size(), 10u);
    EXPECT_EQ(r.design.points.size(), 10u);
    EXPECT_EQ(r.design_coded.size(), 10u);
    EXPECT_EQ(r.design_configs.size(), 10u);
    EXPECT_EQ(r.responses.size(), 10u);
}

TEST(Flow, DesignConfigsDecodeSelectedPoints) {
    const auto& r = shared_flow();
    for (std::size_t i = 0; i < r.design_coded.size(); ++i) {
        const auto expected = ed::config_from_coded(r.space, r.design_coded[i]);
        EXPECT_DOUBLE_EQ(r.design_configs[i].mcu_clock_hz, expected.mcu_clock_hz);
        EXPECT_DOUBLE_EQ(r.design_configs[i].tx_interval_s, expected.tx_interval_s);
    }
}

TEST(Flow, FitInterpolatesSaturatedDesign) {
    const auto& r = shared_flow();
    // n = 10 runs, 10 coefficients: residuals are numerically zero.
    EXPECT_NEAR(r.fit.r_squared, 1.0, 1e-9);
    for (double e : r.fit.residuals) EXPECT_NEAR(e, 0.0, 1e-6);
}

TEST(Flow, DefaultOptimizersAreThePapersPair) {
    const auto& r = shared_flow();
    ASSERT_EQ(r.outcomes.size(), 2u);
    EXPECT_EQ(r.outcomes[0].name, "simulated-annealing");
    EXPECT_EQ(r.outcomes[1].name, "genetic-algorithm");
}

TEST(Flow, OptimaInsideBoxAndValidated) {
    const auto& r = shared_flow();
    for (const auto& oc : r.outcomes) {
        EXPECT_TRUE(r.space.contains(oc.coded, 1e-9)) << oc.name;
        EXPECT_GT(oc.evaluations, 0u);
        EXPECT_TRUE(oc.validated.sim_ok);
        // The surface optimum should not be predicted below the best
        // observed design point.
        double best_observed = 0.0;
        for (double y : r.responses) best_observed = std::max(best_observed, y);
        EXPECT_GE(oc.predicted, best_observed - 1e-6) << oc.name;
    }
}

TEST(Flow, OptimisedBeatsOriginal) {
    const auto& r = shared_flow();
    for (const auto& oc : r.outcomes) {
        EXPECT_GT(oc.validated.transmissions,
                  r.original_eval.transmissions)
            << oc.name << " failed to beat the baseline";
    }
}

TEST(Flow, CustomOptimizerListHonoured) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options opts;
    opts.optimizers = {std::make_shared<ehdse::opt::nelder_mead>()};
    const auto r = ed::run_rsm_flow(ev, opts);
    ASSERT_EQ(r.outcomes.size(), 1u);
    EXPECT_EQ(r.outcomes[0].name, "nelder-mead");
}

TEST(Flow, ReplicatedRunsEnableLackOfFit) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options opts;
    opts.doe_runs = 12;
    opts.replicates = 2;
    const auto r = ed::run_rsm_flow(ev, opts);
    EXPECT_EQ(r.design_coded.size(), 24u);
    EXPECT_EQ(r.responses.size(), 24u);
    // Each consecutive pair shares a design point (replicate layout).
    for (std::size_t i = 0; i + 1 < r.design_coded.size(); i += 2)
        EXPECT_EQ(r.design_coded[i], r.design_coded[i + 1]);
    const ehdse::rsm::fit_result* fit = r.fit.quadratic();
    ASSERT_NE(fit, nullptr);
    const auto lof = ehdse::rsm::lack_of_fit(r.design_coded, r.responses, *fit);
    EXPECT_TRUE(lof.testable);
    EXPECT_EQ(lof.replicate_groups, 12u);
}

TEST(Flow, ParallelMatchesSequential) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options seq, par;
    par.parallel = true;
    const auto a = ed::run_rsm_flow(ev, seq);
    const auto b = ed::run_rsm_flow(ev, par);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i)
        EXPECT_DOUBLE_EQ(a.responses[i], b.responses[i]);
    EXPECT_EQ(a.outcomes[0].validated.transmissions,
              b.outcomes[0].validated.transmissions);
}

TEST(Flow, ManifestEmitsOneRecordPerDoeRun) {
    ed::system_evaluator ev(flow_scenario());
    ehdse::obs::run_manifest manifest;
    ed::flow_options opts;
    opts.manifest = &manifest;
    const auto r = ed::run_rsm_flow(ev, opts);

    // One design-point record per DoE run, plus the baseline and one
    // validation per optimiser.
    EXPECT_EQ(manifest.sim_run_count("design_point"), r.responses.size());
    EXPECT_EQ(manifest.sim_run_count("baseline"), 1u);
    EXPECT_EQ(manifest.sim_run_count("validation"), r.outcomes.size());

    for (const auto& run : manifest.sim_runs()) {
        EXPECT_GT(run.ode_steps, 0u) << run.kind;
        EXPECT_GT(run.events, 0u) << run.kind;
        EXPECT_GE(run.wall_s, 0.0);
        EXPECT_TRUE(run.sim_ok);
        if (run.kind == "design_point") EXPECT_EQ(run.coded.size(), 3u);
    }

    // Recorded responses match the flow's responses, in order.
    std::size_t i = 0;
    for (const auto& run : manifest.sim_runs()) {
        if (run.kind != "design_point") continue;
        EXPECT_DOUBLE_EQ(run.response, r.responses[i]) << i;
        ++i;
    }

    // Every phase present, in pipeline order.
    std::vector<std::string> names;
    for (const auto& p : manifest.phases()) names.push_back(p.name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"candidates", "d_optimal", "simulate",
                                        "fit", "baseline", "optimise",
                                        "validate"}));
    for (const auto& p : manifest.phases()) EXPECT_GE(p.wall_s, 0.0) << p.name;

    // One optimizer record per optimiser; SA exposes its acceptance rate.
    // (accessors snapshot by value — keep the copy alive while indexing)
    const auto optimizers = manifest.optimizers();
    ASSERT_EQ(optimizers.size(), 2u);
    for (const auto& opt : optimizers) {
        EXPECT_GT(opt.evaluations, 0u) << opt.name;
        EXPECT_GT(opt.iterations, 0u) << opt.name;
    }
    const auto& sa = optimizers[0];
    EXPECT_EQ(sa.name, "simulated-annealing");
    EXPECT_GT(sa.acceptance_rate, 0.0);
    EXPECT_LE(sa.acceptance_rate, 1.0);

    // The whole manifest serialises to valid JSON.
    const auto doc = ehdse::obs::json_value::parse(manifest.to_json().dump(2));
    EXPECT_EQ(doc.at("runs").size(), manifest.sim_runs().size());
    EXPECT_DOUBLE_EQ(doc.at("options").at("doe_runs").as_number(), 10.0);
}

TEST(Flow, ManifestCountsReplicatesAndParallel) {
    ed::system_evaluator ev(flow_scenario());
    ehdse::obs::run_manifest manifest;
    ed::flow_options opts;
    opts.doe_runs = 12;
    opts.replicates = 2;
    opts.parallel = true;
    opts.manifest = &manifest;
    const auto r = ed::run_rsm_flow(ev, opts);
    EXPECT_EQ(r.responses.size(), 24u);
    EXPECT_EQ(manifest.sim_run_count("design_point"), 24u);
    // Replicates carry their distinct measurement-noise seeds.
    const auto runs = manifest.sim_runs();
    EXPECT_NE(runs[0].seed, runs[1].seed);
}

TEST(Flow, ProgressCallbackSeesEveryDesignPoint) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options opts;
    std::vector<std::string> lines;
    opts.progress = [&lines](const std::string& line) { lines.push_back(line); };
    const auto r = ed::run_rsm_flow(ev, opts);
    std::size_t run_lines = 0;
    for (const auto& l : lines)
        if (l.rfind("run ", 0) == 0) ++run_lines;
    EXPECT_EQ(run_lines, r.responses.size());
    // Milestone lines for every phase family.
    const auto has_prefix = [&lines](const char* prefix) {
        for (const auto& l : lines)
            if (l.rfind(prefix, 0) == 0) return true;
        return false;
    };
    EXPECT_TRUE(has_prefix("candidates:"));
    EXPECT_TRUE(has_prefix("d-optimal:"));
    EXPECT_TRUE(has_prefix("fit:"));
    EXPECT_TRUE(has_prefix("optimise["));
    EXPECT_TRUE(has_prefix("validate["));
}

TEST(Flow, GlobalMetricsPopulatedWhenInstalled) {
    ehdse::obs::metrics_registry registry;
    ehdse::obs::set_global_registry(&registry);
    ed::system_evaluator ev(flow_scenario());
    const auto r = ed::run_rsm_flow(ev, {});
    ehdse::obs::set_global_registry(nullptr);

    // The memoising cache (on by default) may serve optimiser revisits, so
    // count evaluations and cache hits together.
    EXPECT_GE(registry.get_counter("dse.evaluate.runs").value() +
                  registry.get_counter("dse.cache.hits").value(),
              r.responses.size() + 1 + r.outcomes.size());
    EXPECT_GT(registry.get_counter("sim.ode_steps").value(), 0u);
    EXPECT_GT(registry.get_counter("sim.events").value(), 0u);
    EXPECT_GT(registry.get_histogram("dse.evaluate.seconds").count(), 0u);
    EXPECT_GT(
        registry.get_histogram("dse.flow.phase_seconds.simulate").count(), 0u);
    EXPECT_GT(registry.get_counter("dse.flow.optimizer_evaluations").value(),
              0u);
}

TEST(Flow, OptimiserTelemetryExposed) {
    const auto& r = shared_flow();
    const auto& sa = r.outcomes[0];
    EXPECT_EQ(sa.details.algorithm, "simulated-annealing");
    EXPECT_GT(sa.details.proposed_moves, 0u);
    EXPECT_GT(sa.details.accepted_moves, 0u);
    EXPECT_LE(sa.details.accepted_moves, sa.details.proposed_moves);
    EXPECT_EQ(sa.details.trajectory.size(), sa.details.iterations);
    const auto& ga = r.outcomes[1];
    EXPECT_EQ(ga.details.proposed_moves, 0u);  // no acceptance notion
    EXPECT_DOUBLE_EQ(ga.details.acceptance_rate(), -1.0);
    EXPECT_EQ(ga.details.trajectory.size(), ga.details.iterations);
    // Best-so-far trajectories never decrease.
    for (const auto& oc : r.outcomes)
        for (std::size_t i = 1; i < oc.details.trajectory.size(); ++i)
            EXPECT_GE(oc.details.trajectory[i], oc.details.trajectory[i - 1])
                << oc.name;
}

TEST(Flow, ReducedDoeRunsStillWork) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options opts;
    opts.doe_runs = 14;
    const auto r = ed::run_rsm_flow(ev, opts);
    EXPECT_EQ(r.design_coded.size(), 14u);
    // Over-determined fit: R^2 well-defined and LOO-CV RMSE finite.
    EXPECT_TRUE(std::isfinite(r.fit.loo_rmse));
}
