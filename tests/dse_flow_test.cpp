// End-to-end RSM flow (DOE -> simulate -> fit -> optimise -> validate).
#include <gtest/gtest.h>

#include <cmath>

#include "dse/rsm_flow.hpp"
#include "rsm/anova.hpp"
#include "opt/nelder_mead.hpp"

namespace ed = ehdse::dse;

namespace {
/// The flow on a shortened scenario so the whole file stays fast.
ed::scenario flow_scenario() {
    ed::scenario s;
    s.duration_s = 1200.0;
    s.step_period_s = 500.0;
    s.step_count = 2;
    return s;
}

const ed::flow_result& shared_flow() {
    static const ed::flow_result result = [] {
        ed::system_evaluator ev(flow_scenario());
        return ed::run_rsm_flow(ev, {});
    }();
    return result;
}
}  // namespace

TEST(Flow, DoeSelectsRequestedRunCount) {
    const auto& r = shared_flow();
    EXPECT_EQ(r.candidates.size(), 27u);
    EXPECT_EQ(r.selection.selected.size(), 10u);
    EXPECT_EQ(r.design_coded.size(), 10u);
    EXPECT_EQ(r.design_configs.size(), 10u);
    EXPECT_EQ(r.responses.size(), 10u);
}

TEST(Flow, DesignConfigsDecodeSelectedPoints) {
    const auto& r = shared_flow();
    for (std::size_t i = 0; i < r.design_coded.size(); ++i) {
        const auto expected = ed::config_from_coded(r.space, r.design_coded[i]);
        EXPECT_DOUBLE_EQ(r.design_configs[i].mcu_clock_hz, expected.mcu_clock_hz);
        EXPECT_DOUBLE_EQ(r.design_configs[i].tx_interval_s, expected.tx_interval_s);
    }
}

TEST(Flow, FitInterpolatesSaturatedDesign) {
    const auto& r = shared_flow();
    // n = 10 runs, 10 coefficients: residuals are numerically zero.
    EXPECT_NEAR(r.fit.r_squared, 1.0, 1e-9);
    for (double e : r.fit.residuals) EXPECT_NEAR(e, 0.0, 1e-6);
}

TEST(Flow, DefaultOptimizersAreThePapersPair) {
    const auto& r = shared_flow();
    ASSERT_EQ(r.outcomes.size(), 2u);
    EXPECT_EQ(r.outcomes[0].name, "simulated-annealing");
    EXPECT_EQ(r.outcomes[1].name, "genetic-algorithm");
}

TEST(Flow, OptimaInsideBoxAndValidated) {
    const auto& r = shared_flow();
    for (const auto& oc : r.outcomes) {
        EXPECT_TRUE(r.space.contains(oc.coded, 1e-9)) << oc.name;
        EXPECT_GT(oc.evaluations, 0u);
        EXPECT_TRUE(oc.validated.sim_ok);
        // The surface optimum should not be predicted below the best
        // observed design point.
        double best_observed = 0.0;
        for (double y : r.responses) best_observed = std::max(best_observed, y);
        EXPECT_GE(oc.predicted, best_observed - 1e-6) << oc.name;
    }
}

TEST(Flow, OptimisedBeatsOriginal) {
    const auto& r = shared_flow();
    for (const auto& oc : r.outcomes) {
        EXPECT_GT(oc.validated.transmissions,
                  r.original_eval.transmissions)
            << oc.name << " failed to beat the baseline";
    }
}

TEST(Flow, CustomOptimizerListHonoured) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options opts;
    opts.optimizers = {std::make_shared<ehdse::opt::nelder_mead>()};
    const auto r = ed::run_rsm_flow(ev, opts);
    ASSERT_EQ(r.outcomes.size(), 1u);
    EXPECT_EQ(r.outcomes[0].name, "nelder-mead");
}

TEST(Flow, ReplicatedRunsEnableLackOfFit) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options opts;
    opts.doe_runs = 12;
    opts.replicates = 2;
    const auto r = ed::run_rsm_flow(ev, opts);
    EXPECT_EQ(r.design_coded.size(), 24u);
    EXPECT_EQ(r.responses.size(), 24u);
    // Each consecutive pair shares a design point (replicate layout).
    for (std::size_t i = 0; i + 1 < r.design_coded.size(); i += 2)
        EXPECT_EQ(r.design_coded[i], r.design_coded[i + 1]);
    const auto lof = ehdse::rsm::lack_of_fit(r.design_coded, r.responses, r.fit);
    EXPECT_TRUE(lof.testable);
    EXPECT_EQ(lof.replicate_groups, 12u);
}

TEST(Flow, ParallelMatchesSequential) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options seq, par;
    par.parallel = true;
    const auto a = ed::run_rsm_flow(ev, seq);
    const auto b = ed::run_rsm_flow(ev, par);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i)
        EXPECT_DOUBLE_EQ(a.responses[i], b.responses[i]);
    EXPECT_EQ(a.outcomes[0].validated.transmissions,
              b.outcomes[0].validated.transmissions);
}

TEST(Flow, ReducedDoeRunsStillWork) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options opts;
    opts.doe_runs = 14;
    const auto r = ed::run_rsm_flow(ev, opts);
    EXPECT_EQ(r.design_coded.size(), 14u);
    // Over-determined fit: R^2 well-defined and PRESS finite.
    EXPECT_TRUE(std::isfinite(r.fit.press_rmse));
}
