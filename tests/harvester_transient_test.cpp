// Full transient model: physical sanity and agreement with the envelope
// fast path (the validation behind using the accelerated technique for the
// hour-long design-space runs).
#include <gtest/gtest.h>

#include <cmath>

#include "harvester/envelope.hpp"
#include "harvester/transient_model.hpp"
#include "harvester/tuning_table.hpp"
#include "power/supercapacitor.hpp"
#include "sim/simulator.hpp"

namespace eh = ehdse::harvester;
namespace ep = ehdse::power;
namespace es = ehdse::sim;

namespace {
constexpr double k_accel_60mg = 0.060 * eh::k_gravity;

struct rig {
    rig() = default;
    explicit rig(eh::microgenerator g) : gen(std::move(g)) {}
    eh::microgenerator gen;
    eh::tuning_table table{gen};
    ep::supercapacitor cap{};
    ep::load_bank loads;
};

es::ode_options transient_options(double freq_hz) {
    es::ode_options opt;
    opt.abs_tol = 1e-9;
    opt.rel_tol = 1e-6;
    opt.initial_dt = 1e-5;
    opt.max_dt = eh::transient_model::suggested_max_dt(freq_hz);
    return opt;
}
}  // namespace

TEST(Transient, MassAtRestStaysAtRestWithoutExcitation) {
    rig r;
    const eh::vibration_source vib(0.0, 69.0);
    eh::transient_model model(r.gen, vib, r.cap, r.loads);
    model.set_position(r.table.lookup(69.0));
    auto x = eh::transient_model::initial_state(2.8);
    es::simulator sim(model, x, transient_options(69.0));
    ASSERT_TRUE(sim.run_until(0.5));
    EXPECT_NEAR(sim.state_at(eh::transient_model::ix_displacement), 0.0, 1e-12);
    EXPECT_NEAR(sim.state_at(eh::transient_model::ix_harvested), 0.0, 1e-15);
}

TEST(Transient, CoilBlockedBelowThreshold) {
    rig r;
    const eh::vibration_source vib(k_accel_60mg, 69.0);
    eh::transient_model model(r.gen, vib, r.cap, r.loads);
    // Tiny velocity: emf below V + 2Vd -> no current.
    EXPECT_DOUBLE_EQ(model.coil_current(1e-4, 2.8), 0.0);
    // Large velocity conducts with the right sign.
    EXPECT_GT(model.coil_current(0.2, 2.8), 0.0);
    EXPECT_LT(model.coil_current(-0.2, 2.8), 0.0);
}

TEST(Transient, PositionValidation) {
    rig r;
    const eh::vibration_source vib(k_accel_60mg, 69.0);
    eh::transient_model model(r.gen, vib, r.cap, r.loads);
    EXPECT_THROW(model.set_position(-1), std::out_of_range);
    EXPECT_THROW(model.set_position(256), std::out_of_range);
    model.set_position(200);
    EXPECT_EQ(model.position(), 200);
}

TEST(Transient, DisplacementStaysNearEndStops) {
    // Excite hard at resonance with a model whose free response would exceed
    // the stop; the one-sided springs must keep the excursion close to it.
    eh::microgenerator_params p;
    p.max_displacement_m = 0.2e-3;
    rig r{eh::microgenerator{p}};
    const double f = r.gen.resonant_frequency(128);
    const eh::vibration_source vib(5.0 * k_accel_60mg, f);
    eh::transient_model model(r.gen, vib, r.cap, r.loads);
    model.set_position(128);
    auto x = eh::transient_model::initial_state(2.8);
    es::simulator sim(model, x, transient_options(f));

    double worst = 0.0;
    sim.add_step_observer([&](double, std::span<const double> s) {
        worst = std::max(worst, std::abs(s[eh::transient_model::ix_displacement]));
    });
    ASSERT_TRUE(sim.run_until(2.0));
    EXPECT_LT(worst, 1.6 * p.max_displacement_m);
}

TEST(Transient, HarvestedEnergyAgreesWithEnvelope) {
    // Steady-state charging power of the full transient model must match
    // the cycle-averaged envelope solution within a few percent — this is
    // the core validation of the accelerated technique (paper ref [9]).
    rig r;
    const double f = 69.0;
    const int pos = r.table.lookup(f);
    const eh::vibration_source vib(k_accel_60mg, f);
    eh::transient_model model(r.gen, vib, r.cap, r.loads);
    model.set_position(pos);

    auto x = eh::transient_model::initial_state(2.8);
    es::simulator sim(model, x, transient_options(f));
    // Let the mechanical envelope settle, then measure over a window.
    ASSERT_TRUE(sim.run_until(4.0));
    const double e0 = sim.state_at(eh::transient_model::ix_harvested);
    ASSERT_TRUE(sim.run_until(9.0));
    const double e1 = sim.state_at(eh::transient_model::ix_harvested);
    const double p_transient = (e1 - e0) / 5.0;

    const auto env = eh::solve_envelope(r.gen, pos, f, k_accel_60mg, 2.8);
    EXPECT_GT(p_transient, 0.0);
    EXPECT_NEAR(p_transient, env.elec.p_store_w, 0.10 * env.elec.p_store_w);
}

TEST(Transient, VoltageRisesWhileCharging) {
    rig r;
    const double f = 69.0;
    const eh::vibration_source vib(k_accel_60mg, f);
    eh::transient_model model(r.gen, vib, r.cap, r.loads);
    model.set_position(r.table.lookup(f));
    auto x = eh::transient_model::initial_state(2.6);
    es::simulator sim(model, x, transient_options(f));
    ASSERT_TRUE(sim.run_until(5.0));
    EXPECT_GT(sim.state_at(eh::transient_model::ix_voltage), 2.6);
}

TEST(Transient, LoadDischargesFasterThanNoLoad) {
    rig r;
    const double f = 69.0;
    const eh::vibration_source vib(k_accel_60mg, f);

    // Detuned so almost nothing is harvested; a resistive load must pull
    // the voltage down faster than leakage alone.
    auto run_with = [&](bool with_load) {
        ep::load_bank loads;
        if (with_load) {
            const auto id = loads.add_load("burn");
            loads.set_resistance(id, 10'000.0);
        }
        eh::transient_model model(r.gen, vib, r.cap, loads);
        model.set_position(255);  // resonance ~88 Hz, far from 69 Hz input
        auto x = eh::transient_model::initial_state(2.8);
        es::simulator sim(model, x, transient_options(f));
        EXPECT_TRUE(sim.run_until(2.0));
        return sim.state_at(eh::transient_model::ix_voltage);
    };

    EXPECT_LT(run_with(true), run_with(false) - 1e-4);
}
