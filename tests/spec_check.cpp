// spec_check — replay validator for the --dump-spec / --spec round trip.
//
//   spec_check <manifest_a.json> <manifest_b.json>
//
// Both manifests must embed an experiment spec ("spec" option) and its
// content hash ("spec_hash"). The check passes (exit 0) when:
//   1. each manifest's recorded spec_hash matches a fresh hash of its own
//      embedded spec (decoded through the strict spec codec);
//   2. the two manifests carry the same spec_hash and byte-identical
//      canonical spec documents;
//   3. the two runs produced the same responses: every sim_run agrees on
//      (kind, seed, response) — the transmission counts of a replayed
//      experiment are bitwise-reproducible.
// Any mismatch prints a diagnostic and exits 1 (exit 2 on unreadable or
// malformed input). Used by the spec_roundtrip ctest fixture.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"

namespace {

using namespace ehdse;

obs::json_value load_json(const char* path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "spec_check: cannot read '%s'\n", path);
        std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return obs::json_value::parse(text.str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "spec_check: '%s': %s\n", path, e.what());
        std::exit(2);
    }
}

/// Recorded spec_hash, after verifying it against a fresh hash of the
/// embedded spec document.
std::string verified_hash(const obs::json_value& manifest, const char* path) {
    const obs::json_value* options = manifest.find("options");
    if (!options || !options->find("spec") || !options->find("spec_hash")) {
        std::fprintf(stderr, "spec_check: '%s' has no spec/spec_hash options\n",
                     path);
        std::exit(2);
    }
    const std::string recorded = options->at("spec_hash").as_string();
    try {
        const spec::experiment_spec embedded =
            spec::spec_from_json(options->at("spec"));
        const std::string fresh =
            spec::spec_hash_hex(spec::spec_hash(embedded));
        if (fresh != recorded) {
            std::fprintf(stderr,
                         "spec_check: '%s': recorded spec_hash %s but the "
                         "embedded spec hashes to %s\n",
                         path, recorded.c_str(), fresh.c_str());
            std::exit(1);
        }
        if (embedded != embedded.canonicalized()) {
            std::fprintf(stderr,
                         "spec_check: '%s': embedded spec is not in "
                         "canonical form\n",
                         path);
            std::exit(1);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "spec_check: '%s': embedded spec: %s\n", path,
                     e.what());
        std::exit(2);
    }
    return recorded;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 3) {
        std::fprintf(stderr, "usage: spec_check <manifest_a> <manifest_b>\n");
        return 2;
    }
    const obs::json_value a = load_json(argv[1]);
    const obs::json_value b = load_json(argv[2]);

    const std::string hash_a = verified_hash(a, argv[1]);
    const std::string hash_b = verified_hash(b, argv[2]);
    if (hash_a != hash_b) {
        std::fprintf(stderr, "spec_check: spec_hash differs: %s vs %s\n",
                     hash_a.c_str(), hash_b.c_str());
        return 1;
    }
    if (a.at("options").at("spec").dump() != b.at("options").at("spec").dump()) {
        std::fprintf(stderr,
                     "spec_check: equal hashes but different spec documents\n");
        return 1;
    }

    const obs::json_array& runs_a = a.at("runs").as_array();
    const obs::json_array& runs_b = b.at("runs").as_array();
    if (runs_a.size() != runs_b.size()) {
        std::fprintf(stderr, "spec_check: %zu vs %zu sim runs\n", runs_a.size(),
                     runs_b.size());
        return 1;
    }
    for (std::size_t i = 0; i < runs_a.size(); ++i) {
        const obs::json_value& ra = runs_a[i];
        const obs::json_value& rb = runs_b[i];
        if (ra.at("kind").as_string() != rb.at("kind").as_string() ||
            ra.at("seed").as_number() != rb.at("seed").as_number() ||
            ra.at("response").as_number() != rb.at("response").as_number()) {
            std::fprintf(stderr,
                         "spec_check: run %zu differs: %s seed %.0f -> %.0f "
                         "vs %s seed %.0f -> %.0f\n",
                         i, ra.at("kind").as_string().c_str(),
                         ra.at("seed").as_number(),
                         ra.at("response").as_number(),
                         rb.at("kind").as_string().c_str(),
                         rb.at("seed").as_number(),
                         rb.at("response").as_number());
            return 1;
        }
    }

    std::printf("spec_check: OK (%s, %zu runs)\n", hash_a.c_str(),
                runs_a.size());
    return 0;
}
