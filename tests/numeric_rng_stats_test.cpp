// Determinism and distribution sanity of the PRNG, and the statistics kit.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/rng.hpp"
#include "numeric/stats.hpp"

namespace en = ehdse::numeric;

TEST(Rng, SameSeedSameStream) {
    en::rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    en::rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
    en::rng parent1(7), parent2(7);
    en::rng child1 = parent1.split();
    en::rng child2 = parent2.split();
    for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next(), child2.next());
    // Parent's continuation differs from the child's stream.
    en::rng p(7);
    en::rng c = p.split();
    EXPECT_NE(p.next(), c.next());
}

TEST(Rng, UniformInRange) {
    en::rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-2.0, 5.0);
        ASSERT_GE(u, -2.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    en::rng r(5);
    double acc = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) acc += r.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
    en::rng r(11);
    constexpr int n = 200000;
    std::vector<double> xs(n);
    for (double& x : xs) x = r.normal(3.0, 2.0);
    EXPECT_NEAR(en::mean(xs), 3.0, 0.05);
    EXPECT_NEAR(en::sample_stddev(xs), 2.0, 0.05);
}

TEST(Rng, UniformIndexCoversAllValues) {
    en::rng r(13);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 7000; ++i) ++counts[r.uniform_index(7)];
    for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, BernoulliFrequency) {
    en::rng r(17);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
    EXPECT_FALSE(en::rng(1).bernoulli(0.0));
    EXPECT_TRUE(en::rng(1).bernoulli(1.0));
}

TEST(Rng, PermutationIsAPermutation) {
    en::rng r(19);
    const auto perm = r.permutation(50);
    std::vector<bool> seen(50, false);
    for (std::size_t p : perm) {
        ASSERT_LT(p, 50u);
        ASSERT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(Stats, MeanVarianceBasics) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(en::mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(en::variance(xs), 1.25);
    EXPECT_NEAR(en::sample_variance(xs), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(en::mean(std::vector<double>{}), 0.0);
}

TEST(Stats, RSquaredPerfectFitIsOne) {
    const std::vector<double> y{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(en::r_squared(y, y), 1.0);
}

TEST(Stats, RSquaredMeanModelIsZero) {
    const std::vector<double> y{1.0, 2.0, 3.0};
    const std::vector<double> fitted{2.0, 2.0, 2.0};
    EXPECT_NEAR(en::r_squared(y, fitted), 0.0, 1e-12);
}

TEST(Stats, AdjustedRSquaredPenalisesTerms) {
    const std::vector<double> y{1.0, 2.1, 2.9, 4.2, 5.0};
    const std::vector<double> fitted{1.1, 2.0, 3.0, 4.0, 5.1};
    const double r2 = en::r_squared(y, fitted);
    EXPECT_LT(en::adjusted_r_squared(y, fitted, 3), r2);
}

TEST(Stats, RmseAndMaxError) {
    const std::vector<double> y{0.0, 0.0};
    const std::vector<double> f{3.0, 4.0};
    EXPECT_NEAR(en::rmse(y, f), std::sqrt(12.5), 1e-12);
    EXPECT_DOUBLE_EQ(en::max_abs_error(y, f), 4.0);
}

TEST(Stats, PearsonOfLinearRelationIsOne) {
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(en::pearson(x, y), 1.0, 1e-12);
    const std::vector<double> yneg{8.0, 6.0, 4.0, 2.0};
    EXPECT_NEAR(en::pearson(x, yneg), -1.0, 1e-12);
}

TEST(Stats, QuantileInterpolates) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(en::quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(en::quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(en::quantile(xs, 0.5), 2.5);
    EXPECT_THROW(en::quantile(std::vector<double>{}, 0.5), std::invalid_argument);
    EXPECT_THROW(en::quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, MinMax) {
    const std::vector<double> xs{3.0, -1.0, 7.0};
    const auto [lo, hi] = en::min_max(xs);
    EXPECT_DOUBLE_EQ(lo, -1.0);
    EXPECT_DOUBLE_EQ(hi, 7.0);
}

TEST(Stats, SizeMismatchThrows) {
    const std::vector<double> a{1.0, 2.0};
    const std::vector<double> b{1.0};
    EXPECT_THROW(en::residual_sum_squares(a, b), std::invalid_argument);
    EXPECT_THROW(en::pearson(a, b), std::invalid_argument);
}
