// Pinned regressions: one shrunk case per metamorphic invariant, stored
// as a tiny canonical spec document under tests/data/regressions/ and
// replayed straight through the shared oracle — no PRNG anywhere, so a
// failure here is a plain deterministic unit-test failure.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;

namespace {

ehdse::spec::experiment_spec load_regression(const std::string& name) {
    const std::string path =
        std::string(EHDSE_TEST_DATA_DIR) + "/regressions/" + name;
    std::ifstream in(path);
    if (!in) throw std::runtime_error("missing regression file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return ehdse::spec::parse_spec(text.str());
}

// Turns an oracle's property_failure into a readable gtest failure.
#define EHDSE_EXPECT_ORACLE(expr)                           \
    try {                                                   \
        expr;                                               \
    } catch (const std::exception& e) {                     \
        FAIL() << "pinned invariant violated: " << e.what(); \
    }

}  // namespace

TEST(TestkitRegressions, SpecRoundTrip) {
    const auto s = load_regression("roundtrip.json");
    EHDSE_EXPECT_ORACLE(tk::oracles::check_spec_roundtrip(s));
}

TEST(TestkitRegressions, CanonicalIdempotence) {
    const auto s = load_regression("canonical_idempotence.json");
    EHDSE_EXPECT_ORACLE(tk::oracles::check_canonical_idempotence(s));
}

TEST(TestkitRegressions, CacheBitEquality) {
    const auto s = load_regression("cache_bit_equality.json");
    EHDSE_EXPECT_ORACLE(tk::oracles::check_cache_bit_equality(s));
}

TEST(TestkitRegressions, BatchVsScalar) {
    // Steps through the frequency schedule so lanes diverge mid-run; the
    // spec hash picks the batch width and the extra lane configs.
    const auto s = load_regression("batch_vs_scalar.json");
    EHDSE_EXPECT_ORACLE(tk::oracles::check_batch_vs_scalar(s));
}

TEST(TestkitRegressions, JobsDeterminism) {
    const auto s = load_regression("jobs_determinism.json");
    EHDSE_EXPECT_ORACLE(tk::oracles::check_jobs_determinism(s));
}

TEST(TestkitRegressions, QuadraticExactness) {
    // The pinned spec's design family and optimiser seed select the case.
    const auto s = load_regression("quadratic_exactness.json");
    EHDSE_EXPECT_ORACLE(tk::oracles::check_quadratic_exactness(
        s.flow.design, s.flow.optimizer_seed));
}

TEST(TestkitRegressions, BudgetMonotonicity) {
    const auto s = load_regression("budget_monotonicity.json");
    EHDSE_EXPECT_ORACLE(
        tk::oracles::check_budget_monotonicity(s.flow.optimizer_seed));
}
