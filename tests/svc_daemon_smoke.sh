#!/usr/bin/env bash
# Smoke test of the REAL service binaries (docs/service.md quick-start):
# start ehdsed on a unix socket, wait for readiness, drive it with
# ehdse_client (ping, submit, stats), then SIGTERM and assert a graceful
# exit 0. Usage: svc_daemon_smoke.sh <ehdsed> <ehdse_client>
set -euo pipefail

ehdsed="$1"
client="$2"
workdir="$(mktemp -d)"
sock="$workdir/ehdsed.sock"
log="$workdir/ehdsed.log"

cleanup() {
    [[ -n "${daemon_pid:-}" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

"$ehdsed" --unix "$sock" --metrics-out "$workdir/metrics.json" > "$log" 2>&1 &
daemon_pid=$!

# Readiness: retry ping until the daemon answers (bounded).
for _ in $(seq 1 100); do
    if "$client" --unix "$sock" ping > "$workdir/pong.json" 2>/dev/null; then
        break
    fi
    kill -0 "$daemon_pid" 2>/dev/null || { echo "FAIL: daemon died early"; cat "$log"; exit 1; }
    sleep 0.1
done
grep -q '"type":"pong"' "$workdir/pong.json" || { echo "FAIL: no pong"; exit 1; }
grep -q '"protocol":"ehdse.svc/1"' "$workdir/pong.json" || { echo "FAIL: wrong protocol"; exit 1; }

# Submit twice (identical default spec): second run must be a cache hit.
"$client" --unix "$sock" submit --id smoke-1 > "$workdir/run1.log"
grep -q '"type":"result"' "$workdir/run1.log" || { echo "FAIL: no result"; exit 1; }
grep -q '"status":"ok"' "$workdir/run1.log" || { echo "FAIL: result not ok"; exit 1; }
"$client" --unix "$sock" submit --id smoke-2 --quiet > "$workdir/run2.log"

"$client" --unix "$sock" stats > "$workdir/stats.json"
grep -q '"completed":2' "$workdir/stats.json" || { echo "FAIL: expected 2 completed"; cat "$workdir/stats.json"; exit 1; }
grep -q '"hits":1' "$workdir/stats.json" || { echo "FAIL: expected 1 cache hit"; cat "$workdir/stats.json"; exit 1; }

# Graceful drain on SIGTERM: exit 0, metrics snapshot written.
kill -TERM "$daemon_pid"
wait "$daemon_pid"
status=$?
daemon_pid=""
[[ "$status" -eq 0 ]] || { echo "FAIL: ehdsed exited $status"; cat "$log"; exit 1; }
grep -q draining "$log" || { echo "FAIL: no drain line"; cat "$log"; exit 1; }
[[ -s "$workdir/metrics.json" ]] || { echo "FAIL: no metrics snapshot"; exit 1; }
grep -q 'svc.requests.accepted' "$workdir/metrics.json" || { echo "FAIL: no svc.* metrics"; exit 1; }
[[ -e "$sock" ]] && { echo "FAIL: socket not unlinked"; exit 1; }

echo "svc daemon smoke OK"
