// Metamorphic properties about energy and time: extending the horizon
// only grows cumulative counters, a silenced vibration source harvests
// nothing, the two fidelities agree on the harvested energy, and every
// run respects basic energy/voltage sanity bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <cmath>

#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;
namespace spec = ehdse::spec;
using ehdse::dse::evaluation_result;
using ehdse::dse::system_evaluator;

namespace {

spec::experiment_spec gen_envelope_case(tk::prng& r) {
    spec::experiment_spec s = tk::gen_experiment_spec(r);
    s.eval.record_traces = false;
    return s;
}

}  // namespace

TEST(TestkitEnergyProperty, ExtendingTheHorizonNeverShrinksCounters) {
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitEnergyProperty.ExtendingTheHorizonNeverShrinksCounters";
    def.generate = gen_envelope_case;
    def.property = [](const spec::experiment_spec& s) {
        const system_evaluator short_eval(s.scn);
        spec::scenario extended = s.scn;
        extended.duration_s = s.scn.duration_s * 1.5;
        const system_evaluator long_eval(extended);
        const evaluation_result a = short_eval.evaluate(s.config, s.eval);
        const evaluation_result b = long_eval.evaluate(s.config, s.eval);
        tk::require(b.transmissions >= a.transmissions,
                    "transmissions shrank when the horizon grew");
        tk::require(b.events >= a.events,
                    "event count shrank when the horizon grew");
        // Harvested energy is a monotone integral; allow integrator noise.
        tk::require(b.harvested_energy_j >=
                        a.harvested_energy_j * (1.0 - 1e-9) - 1e-12,
                    "harvested energy shrank when the horizon grew");
    };
    def.shrink = [](const spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    def.show = [](const spec::experiment_spec& s) {
        return spec::to_json(s).dump();
    };
    tk::property_options options;
    options.cases = 40;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitEnergyProperty, SilencedVibrationHarvestsNothing) {
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitEnergyProperty.SilencedVibrationHarvestsNothing";
    def.generate = [](tk::prng& r) {
        spec::experiment_spec s = gen_envelope_case(r);
        s.scn.amplitude_schedule = {{0.0, 0.0}};  // source off for the whole run
        return s;
    };
    def.property = [](const spec::experiment_spec& s) {
        const system_evaluator evaluator(s.scn);
        const evaluation_result out = evaluator.evaluate(s.config, s.eval);
        tk::require(out.harvested_energy_j <= 1e-9,
                    "harvested energy with the vibration source off: " +
                        std::to_string(out.harvested_energy_j));
    };
    def.shrink = [](const spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    tk::property_options options;
    options.cases = 30;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitEnergyProperty, EnvelopeAndTransientAgreeOnHarvest) {
    // The differential pair: the cycle-averaged envelope and the fully
    // resolved transient model must tell the same energy story. Few cases,
    // short horizon — the transient model resolves every vibration cycle.
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitEnergyProperty.EnvelopeAndTransientAgreeOnHarvest";
    def.generate = [](tk::prng& r) {
        spec::experiment_spec s;
        s.scn.duration_s = r.uniform(40.0, 60.0);
        s.scn.accel_mg = r.uniform(50.0, 70.0);
        s.scn.f_start_hz = r.uniform(62.0, 68.0);
        s.scn.f_step_hz = 0.0;
        s.scn.step_count = 0;
        s.scn.v_initial = r.uniform(2.6, 3.0);
        s.config = tk::gen_system_config(r);
        // The models only agree once the controller has tuned the harvester
        // to the stimulus: untuned, the transient bridge sits below its
        // conduction threshold while the cycle average still trickles
        // charge. Guarantee several retunes inside the horizon.
        s.config.watchdog_period_s = r.uniform(5.0, s.scn.duration_s / 4.0);
        return s;
    };
    def.property = [](const spec::experiment_spec& s) {
        const system_evaluator evaluator(s.scn);
        spec::evaluation_options envelope;
        envelope.model = spec::fidelity::envelope;
        spec::evaluation_options transient;
        transient.model = spec::fidelity::transient;
        const evaluation_result e = evaluator.evaluate(s.config, envelope);
        const evaluation_result t = evaluator.evaluate(s.config, transient);
        tk::require(e.sim_ok && t.sim_ok, "a fidelity failed to simulate");
        const double e_h = e.harvested_energy_j;
        const double t_h = t.harvested_energy_j;
        tk::require(std::isfinite(e_h) && e_h >= 0.0 &&
                        std::isfinite(t_h) && t_h >= 0.0,
                    "harvested energy not finite and non-negative");
        // Outside the tunable band both models correctly harvest ~nothing;
        // only when either one reports a meaningful harvest must the other
        // agree to 25% relative.
        const double big = std::max(e_h, t_h);
        if (big > 1e-3) {
            const double diff = std::abs(e_h - t_h);
            tk::require(diff <= 0.25 * big,
                        "envelope (" + std::to_string(e_h) +
                            " J) vs transient (" + std::to_string(t_h) +
                            " J) harvested energy disagree beyond 25%");
        }
    };
    def.show = [](const spec::experiment_spec& s) {
        return spec::to_json(s).dump();
    };
    tk::property_options options;
    options.cases = 8;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitEnergyProperty, EveryRunRespectsSanityBounds) {
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitEnergyProperty.EveryRunRespectsSanityBounds";
    def.generate = gen_envelope_case;
    def.property = [](const spec::experiment_spec& s) {
        const system_evaluator evaluator(s.scn);
        const evaluation_result out = evaluator.evaluate(s.config, s.eval);
        tk::require(out.sim_ok, "simulation failed on a valid request");
        tk::require(std::isfinite(out.harvested_energy_j) &&
                        out.harvested_energy_j >= 0.0,
                    "harvested energy not finite and non-negative");
        tk::require(out.withdrawn_energy_j >= 0.0,
                    "withdrawn energy negative");
        tk::require(out.min_voltage_v <= out.final_voltage_v &&
                        out.final_voltage_v <= out.max_voltage_v,
                    "final voltage outside the observed [min, max] band");
        tk::require(out.min_voltage_v <= s.scn.v_initial &&
                        s.scn.v_initial <= out.max_voltage_v,
                    "initial voltage outside the observed [min, max] band");
    };
    def.shrink = [](const spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    def.show = [](const spec::experiment_spec& s) {
        return spec::to_json(s).dump();
    };
    tk::property_options options;
    options.cases = 60;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}
