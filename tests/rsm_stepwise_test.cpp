// Backward elimination: recovers sparse truth, keeps real terms, and the
// reduced model predicts at least as well out-of-sample as the full one
// when most terms are noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "doe/designs.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"
#include "rsm/stepwise.hpp"

namespace er = ehdse::rsm;
namespace en = ehdse::numeric;

namespace {

/// Sparse truth in 3 vars: y = 4 - 3 x3 + 2 x3^2 + noise.
struct sparse_case {
    std::vector<en::vec> points;
    en::vec y;
};

sparse_case make_sparse(double sigma, std::uint64_t seed) {
    sparse_case s;
    en::rng rng(seed);
    s.points = ehdse::doe::full_factorial(3, 3);
    for (const auto& p : s.points)
        s.y.push_back(4.0 - 3.0 * p[2] + 2.0 * p[2] * p[2] + rng.normal(0.0, sigma));
    return s;
}

bool has_term(const er::reduced_model& m, std::size_t term) {
    return std::find(m.active_terms().begin(), m.active_terms().end(), term) !=
           m.active_terms().end();
}

}  // namespace

TEST(Stepwise, RecoversSparseStructure) {
    const auto s = make_sparse(0.05, 1);
    const auto r = er::backward_eliminate(s.points, s.y, 0.05);
    // Layout for k=3: 0:1, 1..3:x1..x3, 4..6:x^2, 7..9:interactions.
    EXPECT_TRUE(has_term(r.model, 0));  // intercept
    EXPECT_TRUE(has_term(r.model, 3));  // x3
    EXPECT_TRUE(has_term(r.model, 6));  // x3^2
    // Most of the 7 noise terms eliminated.
    EXPECT_LE(r.model.active_terms().size(), 5u);
    EXPECT_GE(r.dropped.size(), 5u);
    EXPECT_GT(r.r_squared, 0.99);
}

TEST(Stepwise, CoefficientsNearTruth) {
    const auto s = make_sparse(0.05, 2);
    const auto r = er::backward_eliminate(s.points, s.y, 0.05);
    // Find x3's coefficient.
    for (std::size_t i = 0; i < r.model.active_terms().size(); ++i) {
        if (r.model.active_terms()[i] == 3)
            EXPECT_NEAR(r.model.coefficients()[i], -3.0, 0.1);
        if (r.model.active_terms()[i] == 6)
            EXPECT_NEAR(r.model.coefficients()[i], 2.0, 0.15);
    }
    // Prediction matches truth off the training grid.
    EXPECT_NEAR(r.model.predict({0.3, -0.7, 0.5}), 4.0 - 1.5 + 0.5, 0.1);
}

TEST(Stepwise, PureNoiseCollapsesTowardsIntercept) {
    en::rng rng(3);
    const auto points = ehdse::doe::full_factorial(3, 3);
    en::vec y;
    for (std::size_t i = 0; i < points.size(); ++i) y.push_back(rng.normal(5.0, 1.0));
    const auto r = er::backward_eliminate(points, y, 0.01);
    EXPECT_LE(r.model.active_terms().size(), 3u);  // ~1% false keep rate
    EXPECT_TRUE(has_term(r.model, 0));
}

TEST(Stepwise, ReducedBeatsFullOutOfSample) {
    // Train on the 27-grid, test on off-grid points: with sparse truth the
    // reduced model generalises at least as well as the full quadratic.
    const auto s = make_sparse(0.5, 4);
    const auto full = er::fit_quadratic(s.points, s.y);
    const auto red = er::backward_eliminate(s.points, s.y, 0.05);

    en::rng rng(5);
    en::vec truth, pred_full, pred_red;
    for (int i = 0; i < 200; ++i) {
        en::vec x{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                  rng.uniform(-1.0, 1.0)};
        truth.push_back(4.0 - 3.0 * x[2] + 2.0 * x[2] * x[2]);
        pred_full.push_back(full.model.predict(x));
        pred_red.push_back(red.model.predict(x));
    }
    EXPECT_LE(en::rmse(truth, pred_red), en::rmse(truth, pred_full) * 1.02);
}

TEST(Stepwise, ToStringNamesActiveTerms) {
    const auto s = make_sparse(0.05, 6);
    const auto r = er::backward_eliminate(s.points, s.y, 0.05);
    const std::string text = r.model.to_string(2);
    EXPECT_NE(text.find("x3"), std::string::npos);
    EXPECT_EQ(text.find("x1*x2"), std::string::npos);
}

TEST(Stepwise, Validation) {
    const auto s = make_sparse(0.05, 7);
    EXPECT_THROW(er::backward_eliminate(s.points, s.y, 0.0), std::invalid_argument);
    EXPECT_THROW(er::backward_eliminate(s.points, s.y, 1.0), std::invalid_argument);
    EXPECT_THROW(er::backward_eliminate({}, {}, 0.05), std::invalid_argument);
    // Saturated design rejected.
    std::vector<en::vec> few(s.points.begin(), s.points.begin() + 10);
    en::vec y_few(s.y.begin(), s.y.begin() + 10);
    EXPECT_THROW(er::backward_eliminate(few, y_few, 0.05), std::invalid_argument);
}

TEST(ReducedModel, ConstructionValidation) {
    EXPECT_THROW(er::reduced_model(2, {0, 1}, {1.0}), std::invalid_argument);
    EXPECT_THROW(er::reduced_model(2, {99}, {1.0}), std::out_of_range);
    er::reduced_model m(2, {0, 2}, {5.0, -1.0});  // 5 - x2
    EXPECT_DOUBLE_EQ(m.predict({0.0, 2.0}), 3.0);
}
