// Analytic Sobol decomposition: closed-form identities and Monte-Carlo
// cross-validation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "rsm/sensitivity.hpp"

namespace er = ehdse::rsm;
namespace en = ehdse::numeric;

TEST(Sobol, PureLinearSingleVariable) {
    // y = 2 x1 in 2 vars: all variance on x1, none on x2.
    er::quadratic_model m(2, {0.0, 2.0, 0.0, 0.0, 0.0, 0.0});
    const auto s = er::sobol_indices(m);
    EXPECT_NEAR(s.total_variance, 4.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.first_order[0], 1.0, 1e-12);
    EXPECT_NEAR(s.first_order[1], 0.0, 1e-12);
    EXPECT_NEAR(s.total_order[0], 1.0, 1e-12);
}

TEST(Sobol, QuadraticTermVariance) {
    // y = x1^2: Var = 4/45.
    er::quadratic_model m(1, {0.0, 0.0, 1.0});
    const auto s = er::sobol_indices(m);
    EXPECT_NEAR(s.total_variance, 4.0 / 45.0, 1e-12);
    EXPECT_NEAR(s.first_order[0], 1.0, 1e-12);
}

TEST(Sobol, InteractionOnlySplitsAcrossTotals) {
    // y = 3 x1 x2: V = 1, S_i = 0, ST_i = 1 for both.
    er::quadratic_model m(2, {0.0, 0.0, 0.0, 0.0, 0.0, 3.0});
    const auto s = er::sobol_indices(m);
    EXPECT_NEAR(s.total_variance, 1.0, 1e-12);
    EXPECT_NEAR(s.first_order[0], 0.0, 1e-12);
    EXPECT_NEAR(s.first_order[1], 0.0, 1e-12);
    EXPECT_NEAR(s.total_order[0], 1.0, 1e-12);
    EXPECT_NEAR(s.total_order[1], 1.0, 1e-12);
}

TEST(Sobol, ConstantModelAllZero) {
    er::quadratic_model m(2, {7.0, 0.0, 0.0, 0.0, 0.0, 0.0});
    const auto s = er::sobol_indices(m);
    EXPECT_DOUBLE_EQ(s.total_variance, 0.0);
    EXPECT_DOUBLE_EQ(s.first_order[0], 0.0);
    EXPECT_DOUBLE_EQ(s.total_order[1], 0.0);
}

TEST(Sobol, IndicesSumRules) {
    // General model: sum of first-order + all interaction shares = 1;
    // ST_i >= S_i; all in [0, 1].
    er::quadratic_model m(3, {484.0, -121.8, -16.8, -208.4, 121.0, 106.7, -69.8,
                              -34.2, -121.8, 32.5});
    const auto s = er::sobol_indices(m);
    double sum_first = std::accumulate(s.first_order.begin(), s.first_order.end(), 0.0);
    double sum_inter = 0.0;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = i + 1; j < 3; ++j)
            sum_inter += s.interaction_variance(i, j) / s.total_variance;
    EXPECT_NEAR(sum_first + sum_inter, 1.0, 1e-12);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_GE(s.total_order[i], s.first_order[i]);
        EXPECT_GE(s.first_order[i], 0.0);
        EXPECT_LE(s.total_order[i], 1.0 + 1e-12);
    }
}

TEST(Sobol, PaperSurfaceDominatedByX3) {
    er::quadratic_model m(3, {484.02, -121.79, -16.77, -208.43, 120.98, 106.69,
                              -69.75, -34.23, -121.79, 32.54});
    const auto s = er::sobol_indices(m);
    EXPECT_GT(s.first_order[2], s.first_order[0]);
    EXPECT_GT(s.first_order[2], s.first_order[1]);
    EXPECT_GT(s.total_order[2], 0.4);  // x3 carries the biggest share
}

TEST(Sobol, AnalyticVarianceMatchesMonteCarlo) {
    er::quadratic_model m(3, {10.0, 3.0, -2.0, 1.0, 0.5, -1.5, 2.0, 0.7, -0.9, 1.2});
    const auto s = er::sobol_indices(m);
    const double mc = er::monte_carlo_variance(m, 400000, 42);
    EXPECT_NEAR(mc, s.total_variance, 0.02 * s.total_variance);
}
