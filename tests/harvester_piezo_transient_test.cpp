// Piezo transient model vs the cycle-averaged solution — cross-validation
// of the piezo formulas, mirroring the EM transient/envelope agreement test.
#include <gtest/gtest.h>

#include <cmath>

#include "harvester/piezo_transient.hpp"
#include "harvester/tuning_table.hpp"
#include "power/supercapacitor.hpp"
#include "sim/simulator.hpp"

namespace eh = ehdse::harvester;
namespace ep = ehdse::power;
namespace es = ehdse::sim;

namespace {
constexpr double k_accel_60mg = 0.060 * eh::k_gravity;

struct rig {
    eh::piezo_microgenerator gen;
    eh::tuning_table table{eh::microgenerator{}};
    ep::supercapacitor cap{};
    ep::load_bank loads;
};

es::ode_options options_for(double f) {
    es::ode_options opt;
    opt.abs_tol = 1e-9;
    opt.rel_tol = 1e-6;
    opt.initial_dt = 1e-6;
    opt.max_dt = eh::piezo_transient_model::suggested_max_dt(f);
    return opt;
}
}  // namespace

TEST(PiezoTransient, RestStaysAtRest) {
    rig r;
    const eh::vibration_source vib(0.0, 69.0);
    eh::piezo_transient_model model(r.gen, vib, r.cap, r.loads);
    model.set_position(r.table.lookup(69.0));
    auto x = eh::piezo_transient_model::initial_state(2.8);
    es::simulator sim(model, x, options_for(69.0));
    ASSERT_TRUE(sim.run_until(0.3));
    EXPECT_NEAR(sim.state_at(eh::piezo_transient_model::ix_displacement), 0.0, 1e-12);
    EXPECT_NEAR(sim.state_at(eh::piezo_transient_model::ix_harvested), 0.0, 1e-15);
}

TEST(PiezoTransient, BridgeClampBehaviour) {
    rig r;
    const eh::vibration_source vib(k_accel_60mg, 69.0);
    eh::piezo_transient_model model(r.gen, vib, r.cap, r.loads);
    EXPECT_DOUBLE_EQ(model.bridge_current(2.0, 2.8), 0.0);   // below U = 3.4
    EXPECT_GT(model.bridge_current(4.0, 2.8), 0.0);
    EXPECT_LT(model.bridge_current(-4.0, 2.8), 0.0);
    EXPECT_THROW(model.set_position(256), std::out_of_range);
    EXPECT_THROW(eh::piezo_transient_model(r.gen, vib, r.cap, r.loads, {}, 0.0),
                 std::invalid_argument);
}

TEST(PiezoTransient, ChargingAgreesWithAveragedSolution) {
    rig r;
    const double f = 69.0;
    const int pos = r.table.lookup(f);
    const eh::vibration_source vib(k_accel_60mg, f);
    eh::piezo_transient_model model(r.gen, vib, r.cap, r.loads);
    model.set_position(pos);

    auto x = eh::piezo_transient_model::initial_state(2.8);
    es::simulator sim(model, x, options_for(f));
    ASSERT_TRUE(sim.run_until(4.0));  // settle
    const double e0 = sim.state_at(eh::piezo_transient_model::ix_harvested);
    ASSERT_TRUE(sim.run_until(10.0));
    const double e1 = sim.state_at(eh::piezo_transient_model::ix_harvested);
    const double p_transient = (e1 - e0) / 6.0;

    const auto avg = r.gen.solve(pos, f, k_accel_60mg, 2.8);
    ASSERT_GT(avg.p_store_w, 0.0);
    // The averaged model ignores the clamp overshoot and the piezo-voltage
    // waveform distortion; 15% is the expected agreement class.
    EXPECT_NEAR(p_transient, avg.p_store_w, 0.15 * avg.p_store_w);
}

TEST(PiezoTransient, BlockedAtHighStoreVoltage) {
    rig r;
    const double f = 69.0;
    const eh::vibration_source vib(k_accel_60mg, f);
    eh::piezo_transient_model model(r.gen, vib, r.cap, r.loads);
    model.set_position(r.table.lookup(f));
    // Open-circuit piezo amplitude is ~7.2 V; a sink above it blocks fully.
    auto x = eh::piezo_transient_model::initial_state(6.8);
    es::simulator sim(model, x, options_for(f));
    ASSERT_TRUE(sim.run_until(3.0));
    EXPECT_LT(sim.state_at(eh::piezo_transient_model::ix_harvested), 1e-6);
}
