// Property suite over the canonical spec layer: JSON round-trip
// identity, canonicalisation idempotence, hash stability and
// sensitivity, typed rejection of corrupted documents, legacy /1
// acceptance, and unknown registry names.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"
#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;
namespace spec = ehdse::spec;

namespace {

tk::property_def<spec::experiment_spec> spec_property(
    std::string name, std::function<void(const spec::experiment_spec&)> body) {
    tk::property_def<spec::experiment_spec> def;
    def.name = std::move(name);
    def.generate = [](tk::prng& r) { return tk::gen_experiment_spec(r); };
    def.property = std::move(body);
    def.shrink = [](const spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    def.show = [](const spec::experiment_spec& s) {
        return spec::to_json(s).dump();
    };
    return def;
}

}  // namespace

TEST(TestkitSpecProperty, JsonRoundTripIsIdentity) {
    const auto result = tk::run_property(spec_property(
        "TestkitSpecProperty.JsonRoundTripIsIdentity",
        tk::oracles::check_spec_roundtrip));
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitSpecProperty, CanonicalizeIsIdempotentAndHashStable) {
    const auto result = tk::run_property(spec_property(
        "TestkitSpecProperty.CanonicalizeIsIdempotentAndHashStable",
        tk::oracles::check_canonical_idempotence));
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitSpecProperty, HashSeesEveryObservableField) {
    const auto result = tk::run_property(spec_property(
        "TestkitSpecProperty.HashSeesEveryObservableField",
        [](const spec::experiment_spec& s) {
            const std::uint64_t base = spec::spec_hash(s);
            spec::experiment_spec t = s;
            t.scn.duration_s += 1.0;
            tk::require(spec::spec_hash(t) != base,
                        "duration change did not change the hash");
            t = s;
            t.config.mcu_clock_hz += 1.0;
            tk::require(spec::spec_hash(t) != base,
                        "clock change did not change the hash");
            t = s;
            t.eval.controller_seed ^= 1;
            tk::require(spec::spec_hash(t) != base,
                        "controller seed change did not change the hash");
            t = s;
            t.flow.optimizer_seed ^= 1;
            tk::require(spec::spec_hash(t) != base,
                        "optimizer seed change did not change the hash");
        }));
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitSpecProperty, CorruptedDocumentsFailTyped) {
    // Whatever the corruption, parse_spec must answer with
    // std::invalid_argument — never another exception type, never a crash,
    // never silent acceptance of an unknown key.
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitSpecProperty.CorruptedDocumentsFailTyped";
    def.generate = [](tk::prng& r) { return tk::gen_experiment_spec(r); };
    def.property = [](const spec::experiment_spec& s) {
        const std::string text = spec::to_json(s).dump();
        // One corruption per sub-check, all derived from the same document.
        const auto expect_invalid = [](const std::string& doc,
                                       const std::string& what) {
            try {
                (void)spec::parse_spec(doc);
            } catch (const std::invalid_argument&) {
                return;  // the typed rejection we demand
            } catch (const std::exception& e) {
                tk::fail(what + ": wrong exception type: " + e.what());
            }
            tk::fail(what + ": corrupted document was accepted");
        };
        // Truncation (broken JSON).
        expect_invalid(text.substr(0, text.size() / 2), "truncated");
        // Unknown key injected at the top level.
        std::string unknown = text;
        unknown.insert(1, "\"frobnicate\": 1, ");
        expect_invalid(unknown, "unknown key");
        // Wrong schema tag.
        std::string bad_schema = text;
        const std::string tag = spec::k_spec_schema;
        const std::size_t pos = bad_schema.find(tag);
        tk::require(pos != std::string::npos, "schema tag not found");
        bad_schema.replace(pos, tag.size(), "ehdse.experiment_spec/99");
        expect_invalid(bad_schema, "bad schema");
        // Not JSON at all.
        expect_invalid("cmake_minimum_required(VERSION 3.20)", "not json");
    };
    const auto result = tk::run_property(def);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitSpecProperty, LegacySchemaOneStillParses) {
    // A /1 document never carries flow.design / flow.surrogate; stripping
    // them and retagging must parse to the same spec with the registry
    // defaults (d_optimal + quadratic — what /1 hardwired).
    tk::property_def<spec::experiment_spec> def;
    def.name = "TestkitSpecProperty.LegacySchemaOneStillParses";
    def.generate = [](tk::prng& r) {
        spec::experiment_spec s = tk::gen_experiment_spec(r);
        s.flow.design = "d_optimal";
        s.flow.surrogate = "quadratic";
        return s;
    };
    def.property = [](const spec::experiment_spec& s) {
        ehdse::obs::json_value doc = spec::to_json(s);
        auto& root = doc.as_object();
        for (auto& [key, value] : root) {
            if (key == "schema") value = spec::k_spec_schema_legacy;
            if (key == "flow") {
                auto& flow = value.as_object();
                std::erase_if(flow, [](const auto& member) {
                    return member.first == "design" ||
                           member.first == "surrogate";
                });
            }
        }
        const spec::experiment_spec parsed = spec::parse_spec(doc.dump());
        tk::require(parsed == s, "legacy /1 document did not parse to the "
                                 "equivalent /2 spec");
    };
    const auto result = tk::run_property(def);
    EXPECT_TRUE(result.ok) << result.report();
}

TEST(TestkitSpecProperty, UnknownRegistryNamesAreRejectedByName) {
    const auto result = tk::run_property(spec_property(
        "TestkitSpecProperty.UnknownRegistryNamesAreRejectedByName",
        [](const spec::experiment_spec& s) {
            const auto expect_named_rejection = [](spec::experiment_spec bad,
                                                   const std::string& name) {
                try {
                    bad.validate();
                } catch (const std::invalid_argument& e) {
                    tk::require(std::string(e.what()).find(name) !=
                                    std::string::npos,
                                "rejection does not name the offender: " +
                                    std::string(e.what()));
                    return;
                }
                tk::fail("unknown name '" + name + "' validated");
            };
            spec::experiment_spec bad = s;
            bad.flow.design = "taguchi";
            expect_named_rejection(bad, "taguchi");
            bad = s;
            bad.flow.surrogate = "cubic";
            expect_named_rejection(bad, "cubic");
            bad = s;
            bad.flow.optimizers.push_back("gradient_descent");
            expect_named_rejection(bad, "gradient_descent");
        }));
    EXPECT_TRUE(result.ok) << result.report();
}
