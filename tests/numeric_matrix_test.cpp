// Unit tests for the dense matrix/vector primitives.
#include <gtest/gtest.h>

#include "numeric/matrix.hpp"

namespace en = ehdse::numeric;

TEST(Matrix, ConstructionAndFill) {
    en::matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerList) {
    en::matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, InitializerListRaggedThrows) {
    EXPECT_THROW((en::matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IndexOutOfRangeThrows) {
    en::matrix m(2, 2);
    EXPECT_THROW(m(2, 0), std::out_of_range);
    EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, Identity) {
    const en::matrix id = en::matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Diagonal) {
    const en::matrix d = en::matrix::diagonal({2.0, 5.0});
    EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, RowAccessAndSetRow) {
    en::matrix m{{1, 2}, {3, 4}};
    auto row = m.row(1);
    EXPECT_DOUBLE_EQ(row[0], 3.0);
    const en::vec newrow{7.0, 8.0};
    m.set_row(0, newrow);
    EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
    EXPECT_THROW(m.set_row(0, en::vec{1.0}), std::invalid_argument);
}

TEST(Matrix, AppendRowBuildsFromEmpty) {
    en::matrix m;
    m.append_row(en::vec{1.0, 2.0, 3.0});
    m.append_row(en::vec{4.0, 5.0, 6.0});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
    EXPECT_THROW(m.append_row(en::vec{1.0}), std::invalid_argument);
}

TEST(Matrix, RemoveRow) {
    en::matrix m{{1, 2}, {3, 4}, {5, 6}};
    m.remove_row(1);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_DOUBLE_EQ(m(1, 0), 5.0);
    EXPECT_THROW(m.remove_row(5), std::out_of_range);
}

TEST(Matrix, Transpose) {
    en::matrix m{{1, 2, 3}, {4, 5, 6}};
    const en::matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Product) {
    en::matrix a{{1, 2}, {3, 4}};
    en::matrix b{{5, 6}, {7, 8}};
    const en::matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductDimensionMismatchThrows) {
    en::matrix a(2, 3);
    en::matrix b(2, 3);
    EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
    en::matrix a{{1, 2}, {3, 4}};
    const en::vec y = a * en::vec{1.0, 1.0};
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_THROW(a * en::vec{1.0}, std::invalid_argument);
}

TEST(Matrix, AddSubScale) {
    en::matrix a{{1, 2}, {3, 4}};
    en::matrix b{{1, 1}, {1, 1}};
    EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
    EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
    EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6.0);
    EXPECT_THROW(a + en::matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, GramMatchesExplicitProduct) {
    en::matrix x{{1, 2}, {3, 4}, {5, 6}};
    const en::matrix g = x.gram();
    const en::matrix expected = x.transposed() * x;
    EXPECT_LT(g.max_abs_diff(expected), 1e-12);
}

TEST(Matrix, FrobeniusNorm) {
    en::matrix m{{3, 4}};
    EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotNormAddSubScaleAxpy) {
    const en::vec a{1.0, 2.0, 2.0};
    const en::vec b{2.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(en::dot(a, b), 4.0);
    EXPECT_DOUBLE_EQ(en::norm(a), 3.0);
    EXPECT_DOUBLE_EQ(en::add(a, b)[0], 3.0);
    EXPECT_DOUBLE_EQ(en::sub(a, b)[1], 1.0);
    EXPECT_DOUBLE_EQ(en::scale(a, 2.0)[2], 4.0);
    EXPECT_DOUBLE_EQ(en::axpy(a, 3.0, b)[0], 7.0);
    EXPECT_DOUBLE_EQ(en::max_abs(en::vec{-5.0, 2.0}), 5.0);
    EXPECT_THROW(en::dot(a, en::vec{1.0}), std::invalid_argument);
}
