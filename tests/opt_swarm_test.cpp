// Particle swarm and differential evolution on the shared test surfaces.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/swarm.hpp"
#include "rsm/quadratic_model.hpp"

namespace eo = ehdse::opt;
namespace en = ehdse::numeric;

namespace {

eo::objective_fn neg_sphere(en::vec c) {
    return [c = std::move(c)](const en::vec& x) {
        double acc = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
            acc -= (x[i] - c[i]) * (x[i] - c[i]);
        return acc;
    };
}

double rippled_bowl(const en::vec& x) {
    double r2 = 0.0;
    for (double v : x) r2 += v * v;
    return std::cos(3.0 * std::sqrt(r2)) - 0.5 * r2;
}

const ehdse::rsm::quadratic_model& paper_surface() {
    static ehdse::rsm::quadratic_model m(
        3, {484.02, -121.79, -16.77, -208.43, 120.98, 106.69, -69.75, -34.23,
            -121.79, 32.54});
    return m;
}

}  // namespace

class SwarmOptimizers : public ::testing::TestWithParam<std::tuple<int, int>> {
protected:
    std::shared_ptr<eo::optimizer> make(int which) const {
        if (which == 0) return std::make_shared<eo::particle_swarm>();
        return std::make_shared<eo::differential_evolution>();
    }
};

TEST_P(SwarmOptimizers, FindsInteriorMaximum) {
    const auto [which, seed] = GetParam();
    const auto optimizer = make(which);
    en::rng rng(static_cast<std::uint64_t>(seed));
    const auto r = optimizer->maximize(neg_sphere({0.2, -0.7, 0.4}),
                                       eo::box_bounds::unit(3), rng);
    EXPECT_GT(r.best_value, -1e-4) << optimizer->name();
}

TEST_P(SwarmOptimizers, EscapesRippleLocalMaxima) {
    const auto [which, seed] = GetParam();
    const auto optimizer = make(which);
    en::rng rng(static_cast<std::uint64_t>(seed) + 50);
    const auto r =
        optimizer->maximize(rippled_bowl, eo::box_bounds::unit(2), rng);
    EXPECT_GT(r.best_value, 0.97) << optimizer->name();
    EXPECT_LT(en::norm(r.best_x), 0.3) << optimizer->name();
}

TEST_P(SwarmOptimizers, MatchesPaperSurfaceOptimum) {
    const auto [which, seed] = GetParam();
    const auto optimizer = make(which);
    en::rng rng(static_cast<std::uint64_t>(seed) + 99);
    const auto r = optimizer->maximize(
        [](const en::vec& x) { return paper_surface().predict(x); },
        eo::box_bounds::unit(3), rng);
    // Eq. 9 carries a flat ridge between two corner maxima (~861 at the
    // paper's GA corner, ~934 at the box optimum) — the same structure
    // that made MATLAB's SA and GA land on different corners in Table VI.
    // A single-population optimiser may settle on either end of it.
    EXPECT_GT(r.best_value, 855.0) << optimizer->name();
    EXPECT_LT(r.best_x[2], -0.3) << optimizer->name();
}

INSTANTIATE_TEST_SUITE_P(AlgoSeeds, SwarmOptimizers,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1, 7, 42)));

TEST(Swarm, OptionValidation) {
    en::rng rng(1);
    eo::pso_options bad_pso;
    bad_pso.particles = 1;
    EXPECT_THROW(eo::particle_swarm(bad_pso).maximize(
                     neg_sphere({0.0}), eo::box_bounds::unit(1), rng),
                 std::invalid_argument);
    eo::de_options bad_de;
    bad_de.population = 3;
    EXPECT_THROW(eo::differential_evolution(bad_de).maximize(
                     neg_sphere({0.0}), eo::box_bounds::unit(1), rng),
                 std::invalid_argument);
}

TEST(Swarm, StaysInsideBox) {
    const auto f = neg_sphere({5.0, -5.0});
    en::rng rng(11);
    for (const auto& optimizer :
         std::vector<std::shared_ptr<eo::optimizer>>{
             std::make_shared<eo::particle_swarm>(),
             std::make_shared<eo::differential_evolution>()}) {
        const auto r = optimizer->maximize(f, eo::box_bounds::unit(2), rng);
        EXPECT_TRUE(eo::box_bounds::unit(2).contains(r.best_x)) << optimizer->name();
        EXPECT_GT(r.best_x[0], 0.97) << optimizer->name();
        EXPECT_LT(r.best_x[1], -0.97) << optimizer->name();
    }
}

TEST(Swarm, DeterministicGivenSeed) {
    for (const auto& optimizer :
         std::vector<std::shared_ptr<eo::optimizer>>{
             std::make_shared<eo::particle_swarm>(),
             std::make_shared<eo::differential_evolution>()}) {
        en::rng a(5), b(5);
        const auto ra = optimizer->maximize(rippled_bowl, eo::box_bounds::unit(2), a);
        const auto rb = optimizer->maximize(rippled_bowl, eo::box_bounds::unit(2), b);
        EXPECT_DOUBLE_EQ(ra.best_value, rb.best_value) << optimizer->name();
    }
}
