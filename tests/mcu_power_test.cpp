// MCU / actuator / accelerometer power models against the paper Table IV
// anchors, and the clock-dependent measurement model.
#include <gtest/gtest.h>

#include <cmath>

#include "mcu/frequency_meter.hpp"
#include "mcu/power_model.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"

namespace em = ehdse::mcu;

TEST(McuPower, ActivePowerLinearInClock) {
    em::mcu_params p;
    p.clock_hz = 4e6;
    const double p4m = em::mcu_active_power(p);
    p.clock_hz = 8e6;
    const double p8m = em::mcu_active_power(p);
    EXPECT_NEAR(p8m - p4m, p.energy_per_cycle_j * 4e6, 1e-12);
    // Calibration anchor: ~5 mW at the original design's 4 MHz (Table IV).
    p.clock_hz = 4e6;
    EXPECT_NEAR(em::mcu_active_power(p), 5.0e-3, 0.5e-3);
    p.clock_hz = 0.0;
    EXPECT_THROW(em::mcu_active_power(p), std::invalid_argument);
}

TEST(McuPower, MeasurementWindowSetBySignalNotClock) {
    em::mcu_params p;
    // 8 periods of a 64 Hz signal = 125 ms regardless of the clock.
    p.clock_hz = 125e3;
    EXPECT_NEAR(em::measurement_duration(p, 64.0), 0.125, 1e-12);
    p.clock_hz = 8e6;
    EXPECT_NEAR(em::measurement_duration(p, 64.0), 0.125, 1e-12);
    EXPECT_THROW(em::measurement_duration(p, 0.0), std::invalid_argument);
}

TEST(McuPower, CoarseEnergyNearTable4AtOriginalClock) {
    em::mcu_params p;  // 4 MHz default
    // Paper Table IV: coarse-grain tuning 0.745 mJ (149 ms at 5 mW).
    EXPECT_NEAR(em::coarse_energy(p, 64.0), 0.745e-3, 0.25e-3);
}

TEST(McuPower, FineEnergyNearTable4AtOriginalClock) {
    em::mcu_params p;
    // Paper Table IV: fine-grain tuning 2.11 mJ per iteration.
    EXPECT_NEAR(em::fine_energy(p, 64.0), 2.11e-3, 1.0e-3);
}

TEST(McuPower, HigherClockCostsMoreForSameMeasurement) {
    em::mcu_params lo, hi;
    lo.clock_hz = 125e3;
    hi.clock_hz = 8e6;
    EXPECT_GT(em::coarse_energy(hi, 64.0), 3.0 * em::coarse_energy(lo, 64.0));
}

TEST(Actuator, Table4Anchors) {
    em::actuator_params a;
    EXPECT_NEAR(em::actuator_move_energy(a, 1), 4.06e-3, 1e-9);    // 1 step
    EXPECT_NEAR(em::actuator_move_energy(a, 100), 203e-3, 1e-6);   // 100 steps
    EXPECT_NEAR(em::actuator_move_time(a, 1), 5e-3, 1e-12);
    EXPECT_NEAR(em::actuator_move_time(a, 100), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(em::actuator_move_energy(a, 0), 0.0);
    EXPECT_THROW(em::actuator_move_energy(a, -1), std::invalid_argument);
    EXPECT_THROW(em::actuator_move_time(a, -1), std::invalid_argument);
}

TEST(Accelerometer, Table4Anchors) {
    em::accelerometer_params a;
    EXPECT_NEAR(a.on_time_s, 0.153, 1e-12);
    EXPECT_NEAR(a.energy_per_use_j, 2.02e-3, 1e-9);
    // Consistency: P * t ~= E within rounding of the published values.
    EXPECT_NEAR(a.power_w * a.on_time_s, a.energy_per_use_j, 0.1e-3);
}

TEST(FrequencyMeter, SigmaInverseInClock) {
    em::mcu_params p;
    p.clock_hz = 125e3;
    em::frequency_meter lo(p);
    p.clock_hz = 8e6;
    em::frequency_meter hi(p);
    EXPECT_NEAR(lo.frequency_sigma(64.0) / hi.frequency_sigma(64.0), 64.0, 1e-9);
    EXPECT_THROW(lo.frequency_sigma(0.0), std::invalid_argument);
}

TEST(FrequencyMeter, SigmaQuadraticInSignalFrequency) {
    em::frequency_meter m(em::mcu_params{});
    EXPECT_NEAR(m.frequency_sigma(128.0) / m.frequency_sigma(64.0), 4.0, 1e-9);
}

TEST(FrequencyMeter, PhaseSigmaIsLoopOverClock) {
    em::mcu_params p;
    p.clock_hz = 1e6;
    em::frequency_meter m(p);
    EXPECT_NEAR(m.phase_sigma(), p.capture_loop_cycles / 1e6, 1e-15);
}

TEST(FrequencyMeter, MeasurementNeverNonPositive) {
    em::mcu_params p;
    p.clock_hz = 125e3;
    p.capture_loop_cycles = 1e6;  // absurd noise
    em::frequency_meter m(p);
    ehdse::numeric::rng rng(1);
    for (int i = 0; i < 1000; ++i) ASSERT_GT(m.measure_frequency(64.0, rng), 0.0);
}

// Statistical sweep: the empirical spread of measurements must match the
// configured sigma at every clock.
class MeterStatistics : public ::testing::TestWithParam<double> {};

TEST_P(MeterStatistics, EmpiricalSigmaMatchesModel) {
    em::mcu_params p;
    p.clock_hz = GetParam();
    em::frequency_meter m(p);
    ehdse::numeric::rng rng(99);
    constexpr int n = 20000;
    std::vector<double> xs(n);
    for (double& x : xs) x = m.measure_frequency(64.0, rng);
    EXPECT_NEAR(ehdse::numeric::mean(xs), 64.0, 5.0 * m.frequency_sigma(64.0) / std::sqrt(n) + 1e-6);
    EXPECT_NEAR(ehdse::numeric::sample_stddev(xs), m.frequency_sigma(64.0),
                0.05 * m.frequency_sigma(64.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Clocks, MeterStatistics,
                         ::testing::Values(125e3, 1e6, 4e6, 8e6));
