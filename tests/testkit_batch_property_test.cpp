// Differential property: the SoA batch kernel is an implementation
// detail. For any valid spec, evaluating a config inside a batch equals
// evaluating it alone (bitwise — lane independence), and both agree with
// the scalar evaluate() path to solver tolerance. Batch width (1..16)
// and the extra lane configs derive from the spec hash, so a shrunk
// counterexample pins the whole batch, not just one lane.
#include <gtest/gtest.h>

#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;

TEST(TestkitBatchProperty, BatchMatchesScalarForAllWidths) {
    tk::property_def<ehdse::spec::experiment_spec> def;
    def.name = "TestkitBatchProperty.BatchMatchesScalarForAllWidths";
    def.generate = [](tk::prng& r) {
        ehdse::spec::experiment_spec s = tk::gen_experiment_spec(r);
        // Keep cases short: each one costs up to 16 lanes x 3 evaluation
        // paths, and the invariant does not depend on the horizon.
        s.scn.duration_s = r.uniform(60.0, 180.0);
        return s;
    };
    def.property = tk::oracles::check_batch_vs_scalar;
    def.shrink = [](const ehdse::spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    def.show = [](const ehdse::spec::experiment_spec& s) {
        return ehdse::spec::to_json(s).dump();
    };
    tk::property_options options;
    options.cases = 30;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}
