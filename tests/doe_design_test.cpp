// The design registry: doe::make_design resolves every registered name to
// a coded point set with the documented shape, deterministically, and
// unknown names fail listing the valid choices.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "doe/d_optimal.hpp"
#include "doe/design.hpp"
#include "doe/designs.hpp"
#include "rsm/quadratic_model.hpp"

namespace ed = ehdse::doe;
namespace nm = ehdse::numeric;

namespace {

ed::design_request request_for(const std::string& name, std::size_t k = 3,
                               std::size_t runs = 10) {
    ed::design_request r;
    r.name = name;
    r.dimension = k;
    r.runs = runs;
    r.basis = [](const nm::vec& x) { return ehdse::rsm::quadratic_basis(x); };
    return r;
}

}  // namespace

TEST(DesignRegistry, ListsTheFiveDesigns) {
    const auto& registry = ed::design_registry();
    ASSERT_EQ(registry.size(), 5u);
    EXPECT_EQ(registry[0].name, "d_optimal");
    EXPECT_EQ(registry[1].name, "full_factorial");
    EXPECT_EQ(registry[2].name, "central_composite");
    EXPECT_EQ(registry[3].name, "box_behnken");
    EXPECT_EQ(registry[4].name, "lhs");
    for (const auto& info : registry) {
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_TRUE(ed::is_known_design(info.name));
    }
    EXPECT_FALSE(ed::is_known_design("plackett_burman"));
}

TEST(DesignRegistry, UnknownNameListsValidChoices) {
    try {
        ed::make_design(request_for("taguchi"));
        FAIL() << "unknown design was accepted";
    } catch (const std::invalid_argument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("unknown design 'taguchi'"), std::string::npos)
            << message;
        EXPECT_NE(message.find("d_optimal"), std::string::npos) << message;
        EXPECT_NE(message.find("box_behnken"), std::string::npos) << message;
    }
    EXPECT_THROW(ed::design_uses_runs("taguchi"), std::invalid_argument);
    EXPECT_THROW(ed::design_uses_levels("taguchi"), std::invalid_argument);
}

TEST(DesignRegistry, RunAndLevelUsageFlags) {
    EXPECT_TRUE(ed::design_uses_runs("d_optimal"));
    EXPECT_TRUE(ed::design_uses_levels("d_optimal"));
    EXPECT_FALSE(ed::design_uses_runs("full_factorial"));
    EXPECT_TRUE(ed::design_uses_levels("full_factorial"));
    EXPECT_FALSE(ed::design_uses_runs("central_composite"));
    EXPECT_FALSE(ed::design_uses_levels("central_composite"));
    EXPECT_FALSE(ed::design_uses_runs("box_behnken"));
    EXPECT_FALSE(ed::design_uses_levels("box_behnken"));
    EXPECT_TRUE(ed::design_uses_runs("lhs"));
    EXPECT_FALSE(ed::design_uses_levels("lhs"));
}

TEST(DesignRegistry, ShapesMatchTheClassicalDesigns) {
    // D-optimal: `runs` points picked from the 3^k grid.
    const auto dopt = ed::make_design(request_for("d_optimal"));
    EXPECT_EQ(dopt.candidates.size(), 27u);
    EXPECT_EQ(dopt.points.size(), 10u);
    EXPECT_TRUE(std::isfinite(dopt.log_det));

    // Full factorial: every grid point, identity selection.
    const auto full = ed::make_design(request_for("full_factorial"));
    EXPECT_EQ(full.points.size(), 27u);
    ASSERT_EQ(full.selected.size(), 27u);
    for (std::size_t i = 0; i < full.selected.size(); ++i)
        EXPECT_EQ(full.selected[i], i);

    // Face-centred CCD for k = 3: 8 corners + 6 axial + 1 centre = 15.
    const auto ccd = ed::make_design(request_for("central_composite"));
    EXPECT_EQ(ccd.points.size(), 15u);

    // Box-Behnken for k = 3: 12 edge midpoints + 1 centre = 13.
    const auto bb = ed::make_design(request_for("box_behnken"));
    EXPECT_EQ(bb.points.size(), 13u);

    // LHS: exactly `runs` points inside the coded box.
    const auto lhs = ed::make_design(request_for("lhs", 3, 12));
    EXPECT_EQ(lhs.points.size(), 12u);
    for (const nm::vec& x : lhs.points) {
        ASSERT_EQ(x.size(), 3u);
        for (double v : x) {
            EXPECT_GE(v, -1.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

// Same request, same options -> identical points (the LHS draws from the
// seeded rng in design_options, not from global state).
TEST(DesignRegistry, DeterministicAcrossCalls) {
    for (const auto& info : ed::design_registry()) {
        const auto a = ed::make_design(request_for(info.name));
        const auto b = ed::make_design(request_for(info.name));
        ASSERT_EQ(a.points.size(), b.points.size()) << info.name;
        for (std::size_t i = 0; i < a.points.size(); ++i)
            EXPECT_EQ(a.points[i], b.points[i]) << info.name << " point " << i;
    }
    // A different seed moves the stochastic designs.
    ed::design_options other;
    other.seed = 123;
    const auto lhs_a = ed::make_design(request_for("lhs"));
    const auto lhs_b = ed::make_design(request_for("lhs"), other);
    EXPECT_NE(lhs_a.points, lhs_b.points);
}

// The registry's d_optimal agrees with the legacy direct call it wraps.
TEST(DesignRegistry, DOptimalMatchesLegacyEntryPoint) {
    const auto request = request_for("d_optimal");
    const auto via_registry = ed::make_design(request);
    const auto candidates = ed::full_factorial(3, 3);
    ed::d_optimal_options legacy_options;
    const auto legacy =
        ed::d_optimal_design(candidates, request.basis, 10, legacy_options);
    EXPECT_EQ(via_registry.selected, legacy.selected);
    EXPECT_DOUBLE_EQ(via_registry.log_det, legacy.log_det);
}

// d_optimal needs a basis to score information; asking for it without one
// is a caller error, while basis-free designs work without it.
TEST(DesignRegistry, BasisRequirement) {
    ed::design_request bare;
    bare.name = "d_optimal";
    EXPECT_THROW(ed::make_design(bare), std::invalid_argument);

    bare.name = "box_behnken";
    const auto bb = ed::make_design(bare);
    EXPECT_EQ(bb.points.size(), 13u);
    EXPECT_TRUE(std::isnan(bb.log_det));  // no basis, no information score
}
