// Gaussian-process surrogate: interpolation, predictive variance shape,
// hyperparameter selection and comparison against the quadratic RSM on a
// non-quadratic truth.
#include <gtest/gtest.h>

#include <cmath>

#include "doe/designs.hpp"
#include "doe/sampling.hpp"
#include "numeric/decomp.hpp"
#include "numeric/stats.hpp"
#include "rsm/kriging.hpp"
#include "rsm/quadratic_model.hpp"

namespace er = ehdse::rsm;
namespace en = ehdse::numeric;

TEST(Cholesky, FactorisesAndSolvesSpdSystem) {
    en::matrix a{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}};
    en::cholesky_decomposition chol(a);
    ASSERT_TRUE(chol.positive_definite());
    const en::vec x = chol.solve({1.0, 2.0, 3.0});
    const en::vec r = en::sub(a * x, {1.0, 2.0, 3.0});
    EXPECT_LT(en::max_abs(r), 1e-12);
    EXPECT_NEAR(chol.log_determinant(), std::log(en::determinant(a)), 1e-10);
    // L L' reconstructs A.
    const en::matrix rec = chol.l() * chol.l().transposed();
    EXPECT_LT(rec.max_abs_diff(a), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
    en::matrix indefinite{{1, 2}, {2, 1}};
    en::cholesky_decomposition chol(indefinite);
    EXPECT_FALSE(chol.positive_definite());
    EXPECT_THROW(chol.solve({1.0, 1.0}), std::domain_error);
    EXPECT_THROW(en::cholesky_decomposition(en::matrix(2, 3)),
                 std::invalid_argument);
}

namespace {
double bumpy(const en::vec& x) {
    // Smooth but distinctly non-quadratic over [-1,1]^2.
    return std::sin(3.0 * x[0]) + 0.5 * std::cos(4.0 * x[1]) + 0.3 * x[0] * x[1];
}
}  // namespace

TEST(Gp, InterpolatesTrainingPoints) {
    const auto points = ehdse::doe::full_factorial(2, 4);
    en::vec y;
    for (const auto& p : points) y.push_back(bumpy(p));
    er::gp_model gp(points, y, {0.8, 1.0, 1e-10});
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_NEAR(gp.predict(points[i]), y[i], 1e-5);
}

TEST(Gp, VarianceNearZeroAtTrainingGrowsAway) {
    const auto points = ehdse::doe::full_factorial(2, 3);
    en::vec y;
    for (const auto& p : points) y.push_back(bumpy(p));
    er::gp_model gp(points, y, {0.6, 1.0, 1e-8});
    EXPECT_LT(gp.predict_variance(points[4]), 1e-5);  // a training point
    const double far = gp.predict_variance({5.0, 5.0});
    EXPECT_NEAR(far, 1.0 + 1e-8, 1e-6);  // reverts to prior variance
    EXPECT_GT(far, gp.predict_variance({0.2, 0.1}));
}

TEST(Gp, InputValidation) {
    const std::vector<en::vec> pts{{0.0}, {1.0}};
    const en::vec y{1.0, 2.0};
    EXPECT_THROW(er::gp_model({}, {}, {}), std::invalid_argument);
    EXPECT_THROW(er::gp_model(pts, en::vec{1.0}, {}), std::invalid_argument);
    EXPECT_THROW(er::gp_model(pts, y, {0.0, 1.0, 1e-6}), std::invalid_argument);
    er::gp_model gp(pts, y, {});
    EXPECT_THROW(gp.predict({0.0, 0.0}), std::invalid_argument);
}

TEST(Gp, DuplicatePointsNeedNugget) {
    // Two identical points make K singular at zero noise; the nugget must
    // rescue it and the domain error must fire without one.
    const std::vector<en::vec> pts{{0.5}, {0.5}, {1.0}};
    const en::vec y{1.0, 1.0, 2.0};
    EXPECT_THROW(er::gp_model(pts, y, {1.0, 1.0, 0.0}), std::domain_error);
    EXPECT_NO_THROW(er::gp_model(pts, y, {1.0, 1.0, 1e-6}));
}

TEST(Gp, AutoFitImprovesLikelihoodOverArbitraryParams) {
    en::rng rng(31);
    const auto points = ehdse::doe::maximin_latin_hypercube(2, 20, rng);
    en::vec y;
    for (const auto& p : points) y.push_back(bumpy(p));

    const er::gp_model arbitrary(points, y, {3.0, 0.1, 1e-6});
    const er::gp_model tuned = er::fit_gp_auto(points, y, 1e-6);
    EXPECT_GT(tuned.log_marginal_likelihood(),
              arbitrary.log_marginal_likelihood());
}

TEST(Gp, BeatsQuadraticOnNonQuadraticTruth) {
    // Same 16-point budget for both surrogates; evaluate on a dense grid.
    en::rng rng(17);
    const auto train = ehdse::doe::maximin_latin_hypercube(2, 16, rng);
    en::vec y;
    for (const auto& p : train) y.push_back(bumpy(p));

    const auto quad = er::fit_quadratic(train, y);
    const auto gp = er::fit_gp_auto(train, y, 1e-8);

    en::vec truth, quad_pred, gp_pred;
    for (double a = -0.95; a <= 0.96; a += 0.19)
        for (double b = -0.95; b <= 0.96; b += 0.19) {
            const en::vec x{a, b};
            truth.push_back(bumpy(x));
            quad_pred.push_back(quad.model.predict(x));
            gp_pred.push_back(gp.predict(x));
        }
    const double quad_rmse = en::rmse(truth, quad_pred);
    const double gp_rmse = en::rmse(truth, gp_pred);
    EXPECT_LT(gp_rmse, 0.5 * quad_rmse);
}
