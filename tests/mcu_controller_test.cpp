// Tuning controller (Algorithms 1-3) driven against a scripted plant.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numbers>

#include "mcu/tuning_controller.hpp"
#include "sim/simulator.hpp"

namespace em = ehdse::mcu;
namespace eh = ehdse::harvester;
namespace es = ehdse::sim;

namespace {

class null_system final : public es::analog_system {
public:
    std::size_t state_size() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> dxdt) const override {
        dxdt[0] = 0.0;
    }
};

/// Plant whose phase response is consistent with the tuning table:
/// time offset = slope * (f_vib - f_r(position)).
class scripted_plant final : public eh::plant {
public:
    explicit scripted_plant(const eh::tuning_table& table) : table_(table) {}

    double voltage = 2.9;
    double freq = 69.0;
    int pos = 0;
    std::map<std::string, double> withdrawals;
    double offset_slope_s_per_hz = 300e-6;

    double storage_voltage() const override { return voltage; }
    void withdraw(double joules, const std::string& account) override {
        withdrawals[account] += joules;
    }
    void set_sustained_draw(const std::string&, double) override {}
    int position() const override { return pos; }
    void set_position(int p) override { pos = p; }
    double vibration_frequency() const override { return freq; }
    double phase_lag() const override {
        const double detune = freq - table_.frequency_at(pos);
        return std::numbers::pi / 2.0 +
               offset_slope_s_per_hz * detune * 2.0 * std::numbers::pi * freq;
    }

    double total_withdrawn() const {
        double acc = 0.0;
        for (const auto& [k, v] : withdrawals) acc += v;
        return acc;
    }

private:
    const eh::tuning_table& table_;
};

struct fixture {
    eh::microgenerator gen;
    eh::tuning_table table{gen};
    null_system sys;
};

}  // namespace

TEST(Controller, WatchdogCadence) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.pos = f.table.lookup(69.0);  // already tuned: wakes stay cheap
    em::controller_params params;
    params.watchdog_period_s = 100.0;
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(1000.0));
    // 10 periods fit in the horizon; each wake's ~130 ms measurement delays
    // the next sleep slightly, so the final wake may fall just past it.
    EXPECT_GE(ctl.stats().wakeups, 9u);
    EXPECT_LE(ctl.stats().wakeups, 10u);
}

TEST(Controller, SkipsWhenStoreBelowActuatorMinimum) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.voltage = 2.5;  // below the 2.6 V actuator gate
    em::controller_params params;
    params.watchdog_period_s = 50.0;
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(500.0));
    EXPECT_EQ(ctl.stats().low_energy_skips, ctl.stats().wakeups);
    EXPECT_EQ(ctl.stats().measurements, 0u);
    EXPECT_EQ(ctl.stats().coarse_tunings, 0u);
}

TEST(Controller, CoarseTunesTowardsLookupTarget) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.freq = 74.0;
    plant.pos = 0;  // far from the 74 Hz position
    em::controller_params params;
    params.watchdog_period_s = 60.0;
    params.mcu.clock_hz = 8e6;  // accurate measurement
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(300.0));
    EXPECT_GE(ctl.stats().coarse_tunings, 1u);
    EXPECT_GT(ctl.stats().coarse_steps, 50u);
    const int target = f.table.lookup(74.0);
    EXPECT_NEAR(plant.pos, target, 3);
}

TEST(Controller, DeadbandSuppressesSmallCorrections) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.freq = 69.0;
    plant.pos = f.table.lookup(69.0) + 2;  // within the default deadband of 2
    em::controller_params params;
    params.watchdog_period_s = 50.0;
    params.mcu.clock_hz = 8e6;
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(500.0));
    EXPECT_EQ(ctl.stats().coarse_tunings, 0u);
    EXPECT_EQ(ctl.stats().position_matches, ctl.stats().measurements);
}

TEST(Controller, ChargesEnergyToExpectedAccounts) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.freq = 74.0;
    plant.pos = 0;
    em::controller_params params;
    params.watchdog_period_s = 60.0;
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(200.0));
    EXPECT_GT(plant.withdrawals["mcu.wake_check"], 0.0);
    EXPECT_GT(plant.withdrawals["mcu.measure"], 0.0);
    EXPECT_GT(plant.withdrawals["actuator.coarse"], 0.0);
    // A ~120-step coarse move at ~2 mJ/step dominates the budget.
    EXPECT_GT(plant.withdrawals["actuator.coarse"], 0.1e-3 * 100);
}

TEST(Controller, FineTuningRunsAfterCoarse) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.freq = 74.0;
    plant.pos = 0;
    em::controller_params params;
    params.watchdog_period_s = 60.0;
    params.mcu.clock_hz = 8e6;
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(300.0));
    EXPECT_GE(ctl.stats().fine_iterations, 1u);
    EXPECT_GT(plant.withdrawals["accelerometer"], 0.0);
    EXPECT_GT(plant.withdrawals["mcu.fine"], 0.0);
}

TEST(Controller, DisabledModeNeverTouchesPlant) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.freq = 74.0;
    plant.pos = 0;
    em::controller_params params;
    params.mode = em::tuning_mode::disabled;
    params.watchdog_period_s = 50.0;
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(500.0));
    EXPECT_GT(ctl.stats().wakeups, 0u);
    EXPECT_EQ(ctl.stats().measurements, 0u);
    EXPECT_EQ(plant.pos, 0);
    EXPECT_DOUBLE_EQ(plant.total_withdrawn(), 0.0);
}

TEST(Controller, CoarseOnlySkipsFine) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.freq = 74.0;
    plant.pos = 0;
    em::controller_params params;
    params.mode = em::tuning_mode::coarse_only;
    params.watchdog_period_s = 60.0;
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(300.0));
    EXPECT_GE(ctl.stats().coarse_tunings, 1u);
    EXPECT_EQ(ctl.stats().fine_iterations, 0u);
    EXPECT_EQ(plant.withdrawals.count("accelerometer"), 0u);
}

TEST(Controller, FineOnlyWalksWithoutCoarse) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.freq = 69.0;
    // Start far enough off that the true phase offset (~0.066 Hz/step *
    // 300 us/Hz) clearly exceeds the 100 us convergence threshold.
    const int start = f.table.lookup(69.0) - 12;
    plant.pos = start;
    em::controller_params params;
    params.mode = em::tuning_mode::fine_only;
    params.watchdog_period_s = 60.0;
    params.mcu.clock_hz = 8e6;
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(600.0));
    EXPECT_EQ(ctl.stats().coarse_tunings, 0u);
    EXPECT_GE(ctl.stats().fine_iterations, 1u);
    EXPECT_GT(ctl.stats().fine_steps, 0u);
    // The walk moves towards (not away from) the optimum.
    EXPECT_GT(plant.pos, start);
}

TEST(Controller, AccurateClockConvergesFineTuning) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    plant.freq = 74.0;
    plant.pos = 0;
    em::controller_params params;
    params.watchdog_period_s = 60.0;
    params.mcu.clock_hz = 8e6;  // phase noise ~4 us << 100 us threshold
    em::tuning_controller ctl(sim, plant, f.table, params);
    ASSERT_TRUE(sim.run_until(600.0));
    EXPECT_GE(ctl.stats().fine_converged, 1u);
}

TEST(Controller, InvalidParamsThrow) {
    fixture f;
    es::simulator sim(f.sys, {0.0});
    scripted_plant plant(f.table);
    em::controller_params params;
    params.watchdog_period_s = 0.0;
    EXPECT_THROW(em::tuning_controller(sim, plant, f.table, params),
                 std::invalid_argument);
    params = {};
    params.phase_threshold_s = 0.0;
    EXPECT_THROW(em::tuning_controller(sim, plant, f.table, params),
                 std::invalid_argument);
    params = {};
    params.settle_time_s = -1.0;
    EXPECT_THROW(em::tuning_controller(sim, plant, f.table, params),
                 std::invalid_argument);
}
