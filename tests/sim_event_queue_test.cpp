// Event queue ordering, FIFO tie-break, and cancellation semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace es = ehdse::sim;

TEST(EventQueue, EmptyQueueBehaviour) {
    es::event_queue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_THROW(q.next_time(), std::logic_error);
    EXPECT_THROW(q.pop_and_run(), std::logic_error);
}

TEST(EventQueue, TimeOrdering) {
    es::event_queue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
    es::event_queue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsEventTime) {
    es::event_queue q;
    q.schedule(2.5, [] {});
    EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
    EXPECT_DOUBLE_EQ(q.pop_and_run(), 2.5);
}

TEST(EventQueue, CancelPreventsExecution) {
    es::event_queue q;
    bool ran = false;
    const es::event_id id = q.schedule(1.0, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
    es::event_queue q;
    const es::event_id id = q.schedule(1.0, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelFiredEventFails) {
    es::event_queue q;
    const es::event_id id = q.schedule(1.0, [] {});
    q.pop_and_run();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
    es::event_queue q;
    EXPECT_FALSE(q.cancel(12345));
    EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueue, CancelledEntrySkippedByNextTime) {
    es::event_queue q;
    const es::event_id early = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    ASSERT_TRUE(q.cancel(early));
    EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
    es::event_queue q;
    std::vector<double> fired;
    q.schedule(1.0, [&] {
        fired.push_back(1.0);
        q.schedule(1.5, [&] { fired.push_back(1.5); });
    });
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(fired, (std::vector<double>{1.0, 1.5}));
    EXPECT_EQ(q.executed_count(), 2u);
}

TEST(EventQueue, SameTimeSelfScheduledEventRunsAfter) {
    es::event_queue q;
    std::vector<int> order;
    q.schedule(1.0, [&] {
        order.push_back(0);
        q.schedule(1.0, [&] { order.push_back(1); });
    });
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, LargeVolumeStaysSorted) {
    es::event_queue q;
    // Pseudo-random insertion order, must drain in sorted order.
    double last = -1.0;
    std::uint64_t state = 88172645463325252ULL;
    for (int i = 0; i < 10000; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        q.schedule(static_cast<double>(state % 100000) / 1000.0, [] {});
    }
    bool sorted = true;
    while (!q.empty()) {
        const double t = q.pop_and_run();
        if (t < last) sorted = false;
        last = t;
    }
    EXPECT_TRUE(sorted);
}
