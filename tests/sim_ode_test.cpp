// Integrator accuracy against closed forms, across tolerance sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/ode.hpp"

namespace es = ehdse::sim;

namespace {

/// dx/dt = -k x, solution x(t) = x0 exp(-k t).
es::functional_system exp_decay(double k) {
    return es::functional_system(
        1, [k](double, std::span<const double> x, std::span<double> dxdt) {
            dxdt[0] = -k * x[0];
        });
}

/// Harmonic oscillator x'' = -w^2 x as a 2-state system.
es::functional_system oscillator(double w) {
    return es::functional_system(
        2, [w](double, std::span<const double> x, std::span<double> dxdt) {
            dxdt[0] = x[1];
            dxdt[1] = -w * w * x[0];
        });
}

}  // namespace

TEST(Rk4, ExponentialDecaySingleStepOrder) {
    const auto sys = exp_decay(1.0);
    // Error of one RK4 step scales as dt^5.
    double prev_err = 0.0;
    for (int i = 0; i < 2; ++i) {
        const double dt = i == 0 ? 0.1 : 0.05;
        std::vector<double> x{1.0};
        es::rk4_step(sys, 0.0, dt, x);
        const double err = std::abs(x[0] - std::exp(-dt));
        if (i == 0)
            prev_err = err;
        else
            EXPECT_LT(err, prev_err / 16.0);  // at least 4th-order convergence
    }
}

TEST(FixedIntegration, MatchesClosedForm) {
    const auto sys = exp_decay(2.0);
    std::vector<double> x{3.0};
    es::integrate_fixed(sys, 0.0, 1.0, 1e-3, x);
    EXPECT_NEAR(x[0], 3.0 * std::exp(-2.0), 1e-8);
}

TEST(FixedIntegration, BadDtThrows) {
    const auto sys = exp_decay(1.0);
    std::vector<double> x{1.0};
    EXPECT_THROW(es::integrate_fixed(sys, 0.0, 1.0, 0.0, x), std::invalid_argument);
}

TEST(Rk45, ExponentialDecayWithinTolerance) {
    const auto sys = exp_decay(1.0);
    es::ode_options opt;
    opt.abs_tol = 1e-10;
    opt.rel_tol = 1e-8;
    es::rk45_integrator integ(opt);
    std::vector<double> x{1.0};
    const auto status = integ.integrate(sys, 0.0, 5.0, x);
    EXPECT_TRUE(status.ok);
    EXPECT_NEAR(x[0], std::exp(-5.0), 1e-7);
}

TEST(Rk45, OscillatorEnergyConserved) {
    const double w = 2.0 * std::numbers::pi;
    const auto sys = oscillator(w);
    es::ode_options opt;
    opt.abs_tol = 1e-11;
    opt.rel_tol = 1e-9;
    es::rk45_integrator integ(opt);
    std::vector<double> x{1.0, 0.0};
    ASSERT_TRUE(integ.integrate(sys, 0.0, 10.0, x).ok);
    const double energy = w * w * x[0] * x[0] + x[1] * x[1];
    EXPECT_NEAR(energy, w * w, w * w * 1e-6);
}

TEST(Rk45, ObserverSeesMonotoneTime) {
    const auto sys = exp_decay(1.0);
    es::rk45_integrator integ;
    std::vector<double> x{1.0};
    double last_t = 0.0;
    std::size_t calls = 0;
    ASSERT_TRUE(integ
                    .integrate(sys, 0.0, 1.0, x,
                               [&](double t, std::span<const double>) {
                                   EXPECT_GT(t, last_t);
                                   last_t = t;
                                   ++calls;
                               })
                    .ok);
    EXPECT_GT(calls, 0u);
    EXPECT_DOUBLE_EQ(last_t, 1.0);
}

TEST(Rk45, SegmentedIntegrationMatchesSingleSegment) {
    const auto sys = exp_decay(1.5);
    es::rk45_integrator a, b;
    std::vector<double> xa{2.0}, xb{2.0};
    ASSERT_TRUE(a.integrate(sys, 0.0, 2.0, xa).ok);
    // Same span in many small segments, as the event-driven kernel does.
    double t = 0.0;
    while (t < 2.0) {
        const double t_next = std::min(t + 0.05, 2.0);
        ASSERT_TRUE(b.integrate(sys, t, t_next, xb).ok);
        t = t_next;
    }
    EXPECT_NEAR(xa[0], xb[0], 1e-7);
}

TEST(Rk45, RejectsBackwardSpanAndBadState) {
    const auto sys = exp_decay(1.0);
    es::rk45_integrator integ;
    std::vector<double> x{1.0};
    EXPECT_THROW(integ.integrate(sys, 1.0, 0.0, x), std::invalid_argument);
    std::vector<double> wrong{1.0, 2.0};
    EXPECT_THROW(integ.integrate(sys, 0.0, 1.0, wrong), std::invalid_argument);
}

TEST(Rk45, MaxDtHonoured) {
    const auto sys = exp_decay(0.01);  // nearly constant: steps would grow huge
    es::ode_options opt;
    opt.max_dt = 0.125;
    es::rk45_integrator integ(opt);
    std::vector<double> x{1.0};
    const auto status = integ.integrate(sys, 0.0, 10.0, x);
    EXPECT_TRUE(status.ok);
    EXPECT_GE(status.steps_taken, static_cast<std::size_t>(10.0 / 0.125));
}

// ---------------------------------------------------------------------------
// Tolerance sweep: tighter tolerances must give monotonically better accuracy.

class Rk45ToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(Rk45ToleranceSweep, DecayErrorBoundedByTolerance) {
    const double tol = GetParam();
    const auto sys = exp_decay(1.0);
    es::ode_options opt;
    opt.abs_tol = tol;
    opt.rel_tol = tol;
    es::rk45_integrator integ(opt);
    std::vector<double> x{1.0};
    ASSERT_TRUE(integ.integrate(sys, 0.0, 3.0, x).ok);
    // Global error is bounded by a modest multiple of the per-step tolerance.
    EXPECT_NEAR(x[0], std::exp(-3.0), 1e4 * tol + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, Rk45ToleranceSweep,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10));
