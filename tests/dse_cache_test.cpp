// Memoising evaluator: hit/miss accounting, canonical keying (no
// collisions across any observable config/option field, shared entries
// for canonically equivalent requests), single-flight concurrency, LRU
// eviction, and obs integration.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "dse/cached_evaluator.hpp"
#include "dse/rsm_flow.hpp"
#include "obs/metrics.hpp"
#include "obs/run_manifest.hpp"
#include "opt/simulated_annealing.hpp"

namespace ed = ehdse::dse;

namespace {

/// Two minutes of simulated time: long enough to transmit, fast to run.
ed::scenario fast_scenario() {
    ed::scenario s;
    s.duration_s = 120.0;
    s.step_period_s = 50.0;
    s.step_count = 1;
    return s;
}

}  // namespace

TEST(CachedEvaluator, SecondEvaluationHitsCache) {
    ed::system_evaluator inner(fast_scenario());
    ed::cached_evaluator cache(inner);
    const ed::system_config cfg = ed::system_config::original();

    const auto first = cache.evaluate(cfg);
    const auto second = cache.evaluate(cfg);

    EXPECT_EQ(inner.runs(), 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
    EXPECT_EQ(first.transmissions, second.transmissions);
    EXPECT_DOUBLE_EQ(first.final_voltage_v, second.final_voltage_v);
}

// Every OBSERVABLE field of system_config and evaluation_options
// participates in the key (spec::evaluation_request_hash over the
// canonical forms): perturbing any single one in a configuration where
// the run can see it must be a miss, never a collision — seeds,
// fidelities and effective front-ends never alias.
TEST(CachedEvaluator, DistinctKeysNeverCollide) {
    ed::system_evaluator inner(fast_scenario());
    ed::cached_evaluator cache(inner);

    const ed::system_config base_cfg = ed::system_config::original();
    const ed::evaluation_options base_eval;
    cache.evaluate(base_cfg, base_eval);

    std::uint64_t expected_misses = 1;
    const auto expect_miss = [&](const ed::system_config& cfg,
                                 const ed::evaluation_options& eval,
                                 const char* what) {
        cache.evaluate(cfg, eval);
        ++expected_misses;
        EXPECT_EQ(cache.stats().misses, expected_misses) << what;
        EXPECT_EQ(cache.stats().hits, 0u) << what;
    };

    {
        auto cfg = base_cfg;
        cfg.mcu_clock_hz *= 2.0;
        expect_miss(cfg, base_eval, "mcu_clock_hz");
    }
    {
        auto cfg = base_cfg;
        cfg.watchdog_period_s += 1.0;
        expect_miss(cfg, base_eval, "watchdog_period_s");
    }
    {
        auto cfg = base_cfg;
        cfg.tx_interval_s += 0.5;
        expect_miss(cfg, base_eval, "tx_interval_s");
    }
    {
        auto eval = base_eval;
        eval.controller_seed += 1;
        expect_miss(base_cfg, eval, "controller_seed");
    }
    {
        auto eval = base_eval;
        eval.record_traces = true;
        expect_miss(base_cfg, eval, "record_traces");
    }
    {
        // Observable only while tracing is on.
        auto eval = base_eval;
        eval.record_traces = true;
        eval.trace_interval_s *= 2.0;
        expect_miss(base_cfg, eval, "trace_interval_s");
    }
    {
        auto eval = base_eval;
        eval.model = ed::fidelity::transient;
        expect_miss(base_cfg, eval, "model");
    }
    {
        auto eval = base_eval;
        eval.frontend = ed::frontend_kind::mppt;
        expect_miss(base_cfg, eval, "frontend");
    }
    {
        // Observable only under the mppt front-end.
        auto eval = base_eval;
        eval.frontend = ed::frontend_kind::mppt;
        eval.frontend_efficiency = 0.5;
        expect_miss(base_cfg, eval, "frontend_efficiency");
    }
    EXPECT_EQ(inner.runs(), expected_misses);
}

// The complement of DistinctKeysNeverCollide: requests differing only in
// a field the run cannot observe canonicalise to the same key and share
// one simulation.
TEST(CachedEvaluator, EquivalentRequestsShareAnEntry) {
    ed::system_evaluator inner(fast_scenario());
    ed::cached_evaluator cache(inner);
    const ed::system_config cfg = ed::system_config::original();

    std::uint64_t expected_hits = 0;
    const auto expect_hit = [&](const ed::evaluation_options& a,
                                const ed::evaluation_options& b,
                                const char* what) {
        cache.evaluate(cfg, a);
        cache.evaluate(cfg, b);
        ++expected_hits;
        EXPECT_EQ(cache.stats().hits, expected_hits) << what;
    };

    {
        // Trace interval is inert while tracing is off.
        ed::evaluation_options a;
        a.controller_seed = 201;  // distinct base key per block
        ed::evaluation_options b = a;
        b.trace_interval_s = a.trace_interval_s * 4.0;
        expect_hit(a, b, "trace_interval_s with tracing off");
    }
    {
        // Mppt efficiency is inert behind the diode bridge.
        ed::evaluation_options a;
        a.controller_seed = 202;
        a.frontend = ed::frontend_kind::diode_bridge;
        ed::evaluation_options b = a;
        b.frontend_efficiency = 0.5;
        expect_hit(a, b, "frontend_efficiency under diode_bridge");
    }
    {
        // The transient model always resolves the physical bridge, so the
        // front-end selection (and its efficiency) is inert.
        ed::evaluation_options a;
        a.controller_seed = 203;
        a.model = ed::fidelity::transient;
        ed::evaluation_options b = a;
        b.frontend = ed::frontend_kind::mppt;
        b.frontend_efficiency = 0.3;
        expect_hit(a, b, "frontend under transient fidelity");
    }
    EXPECT_EQ(inner.runs(), cache.stats().misses);
}

// Eight threads race over two distinct keys: single-flight means exactly
// one simulation per key, with every other request served as a hit.
TEST(CachedEvaluator, ConcurrentLookupsAreSingleFlight) {
    ed::system_evaluator inner(fast_scenario());
    ed::cached_evaluator cache(inner);
    const ed::system_config cfg = ed::system_config::original();

    std::vector<std::thread> threads;
    std::vector<std::uint64_t> tx(8, 0);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            ed::evaluation_options eval;
            eval.controller_seed = 100 + static_cast<std::uint64_t>(t % 2);
            tx[static_cast<std::size_t>(t)] =
                cache.evaluate(cfg, eval).transmissions;
        });
    for (auto& th : threads) th.join();

    EXPECT_EQ(inner.runs(), 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 6u);
    // Same key -> same result object, across threads.
    for (int t = 2; t < 8; ++t)
        EXPECT_EQ(tx[static_cast<std::size_t>(t)],
                  tx[static_cast<std::size_t>(t % 2)]);
}

TEST(CachedEvaluator, EvictsLeastRecentlyUsed) {
    ed::system_evaluator inner(fast_scenario());
    ed::cached_evaluator cache(inner, 2);
    const ed::system_config cfg = ed::system_config::original();

    ed::evaluation_options a, b, c;
    a.controller_seed = 1;
    b.controller_seed = 2;
    c.controller_seed = 3;

    cache.evaluate(cfg, a);
    cache.evaluate(cfg, b);
    cache.evaluate(cfg, a);  // touch a: b becomes the LRU entry
    cache.evaluate(cfg, c);  // evicts b

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);

    cache.evaluate(cfg, a);  // still cached
    EXPECT_EQ(cache.stats().hits, 2u);
    cache.evaluate(cfg, b);  // evicted: re-runs the simulation
    EXPECT_EQ(inner.runs(), 4u);
}

TEST(CachedEvaluator, ZeroCapacityRejected) {
    ed::system_evaluator inner(fast_scenario());
    EXPECT_THROW(ed::cached_evaluator(inner, 0), std::invalid_argument);
}

TEST(CachedEvaluator, ClearKeepsTotalsDropsEntries) {
    ed::system_evaluator inner(fast_scenario());
    ed::cached_evaluator cache(inner);
    const ed::system_config cfg = ed::system_config::original();
    cache.evaluate(cfg);
    cache.evaluate(cfg);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    cache.evaluate(cfg);  // re-simulates after clear
    EXPECT_EQ(inner.runs(), 2u);
}

// Optimiser revisits reach the cache through the flow: two identically
// seeded optimisers produce bitwise-identical optima, so the second
// validation must be a hit, and the manifest must say so.
TEST(CachedEvaluator, FlowOptimiserRevisitsHitCache) {
    ed::scenario s = fast_scenario();
    s.duration_s = 600.0;
    ed::system_evaluator ev(s);

    ehdse::obs::run_manifest manifest;
    ed::flow_options opts;
    opts.manifest = &manifest;
    opts.optimizers = {std::make_shared<ehdse::opt::simulated_annealing>(),
                       std::make_shared<ehdse::opt::simulated_annealing>()};
    const auto r = ed::run_rsm_flow(ev, opts);

    EXPECT_GT(r.cache.hits, 0u);
    EXPECT_GT(r.cache.hit_rate(), 0.0);
    EXPECT_EQ(r.outcomes[0].validated.transmissions,
              r.outcomes[1].validated.transmissions);
    EXPECT_NE(manifest.to_json().dump().find("cache_hits"), std::string::npos);
}

TEST(CachedEvaluator, StatsLandInMetricsSnapshot) {
    ehdse::obs::metrics_registry registry;
    ehdse::obs::set_global_registry(&registry);
    ed::system_evaluator inner(fast_scenario());
    ed::cached_evaluator cache(inner, 1);
    ehdse::obs::set_global_registry(nullptr);

    const ed::system_config cfg = ed::system_config::original();
    ed::evaluation_options other;
    other.controller_seed = 99;
    cache.evaluate(cfg);
    cache.evaluate(cfg);
    cache.evaluate(cfg, other);  // capacity 1: evicts the first entry

    EXPECT_EQ(registry.get_counter("dse.cache.hits").value(), 1u);
    EXPECT_EQ(registry.get_counter("dse.cache.misses").value(), 2u);
    EXPECT_EQ(registry.get_counter("dse.cache.evictions").value(), 1u);
    EXPECT_DOUBLE_EQ(registry.get_gauge("dse.cache.size").value(), 1.0);

    // The snapshot serialises cleanly into a manifest metrics block.
    const auto json = registry.to_json().dump();
    EXPECT_NE(json.find("dse.cache.hits"), std::string::npos);
}
