// obs::json_value — writer/parser round trips, escaping, error reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/json.hpp"

namespace eo = ehdse::obs;

TEST(Json, ScalarRoundTrips) {
    EXPECT_EQ(eo::json_value::parse("null"), eo::json_value(nullptr));
    EXPECT_EQ(eo::json_value::parse("true").as_bool(), true);
    EXPECT_EQ(eo::json_value::parse("false").as_bool(), false);
    EXPECT_DOUBLE_EQ(eo::json_value::parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(eo::json_value::parse("-1.5e3").as_number(), -1500.0);
    EXPECT_EQ(eo::json_value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersPrintWithoutFraction) {
    EXPECT_EQ(eo::json_value(10).dump(), "10");
    EXPECT_EQ(eo::json_value(0).dump(), "0");
    EXPECT_EQ(eo::json_value(-3).dump(), "-3");
    EXPECT_EQ(eo::json_value(1e15).dump(), "1000000000000000");
    // Non-integral values keep a shortest round-trip representation.
    const double v = 0.1;
    EXPECT_DOUBLE_EQ(eo::json_value::parse(eo::json_value(v).dump()).as_number(), v);
}

TEST(Json, NonFiniteSerialisesAsNull) {
    EXPECT_EQ(eo::json_value(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(eo::json_value(std::nan("")).dump(), "null");
}

TEST(Json, StringEscapes) {
    // Note the split: "\x01f" would parse as the single char 0x1F.
    const std::string raw = "a\"b\\c\nd\te\x01" "f";
    const std::string dumped = eo::json_value(raw).dump();
    EXPECT_EQ(eo::json_value::parse(dumped).as_string(), raw);
    EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
}

TEST(Json, UnicodeEscapeParses) {
    EXPECT_EQ(eo::json_value::parse("\"\\u0041\"").as_string(), "A");
    EXPECT_EQ(eo::json_value::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
    EXPECT_EQ(eo::json_value::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
}

TEST(Json, ObjectPreservesInsertionOrder) {
    eo::json_value obj = eo::json_object{};
    obj.set("zebra", eo::json_value(1));
    obj.set("alpha", eo::json_value(2));
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2}");
    const auto back = eo::json_value::parse(obj.dump());
    EXPECT_EQ(back.as_object()[0].first, "zebra");
    EXPECT_DOUBLE_EQ(back.at("alpha").as_number(), 2.0);
}

TEST(Json, NestedDocumentRoundTrips) {
    const std::string text =
        R"({"a":[1,2,{"b":null}],"c":{"d":true,"e":[[],{}]},"f":-0.25})";
    const auto v = eo::json_value::parse(text);
    EXPECT_EQ(v.dump(), text);
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_TRUE(v.at("a").at(2).at("b").is_null());
    EXPECT_TRUE(v.at("c").at("e").at(0).is_array());
    EXPECT_DOUBLE_EQ(v.at("f").as_number(), -0.25);
}

TEST(Json, PrettyPrintReparses) {
    const auto v = eo::json_value::parse(R"({"x":[1,2],"y":{"z":"w"}})");
    const std::string pretty = v.dump(2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    EXPECT_EQ(eo::json_value::parse(pretty), v);
}

TEST(Json, WhitespaceTolerated) {
    const auto v = eo::json_value::parse(" \t\r\n{ \"a\" : [ 1 , 2 ] } \n");
    EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(Json, MalformedInputsThrow) {
    EXPECT_THROW(eo::json_value::parse(""), std::invalid_argument);
    EXPECT_THROW(eo::json_value::parse("{"), std::invalid_argument);
    EXPECT_THROW(eo::json_value::parse("[1,]"), std::invalid_argument);
    EXPECT_THROW(eo::json_value::parse("{\"a\" 1}"), std::invalid_argument);
    EXPECT_THROW(eo::json_value::parse("tru"), std::invalid_argument);
    EXPECT_THROW(eo::json_value::parse("1 2"), std::invalid_argument);
    EXPECT_THROW(eo::json_value::parse("\"unterminated"), std::invalid_argument);
    EXPECT_THROW(eo::json_value::parse("nan"), std::invalid_argument);
    EXPECT_THROW(eo::json_value::parse("--1"), std::invalid_argument);
}

TEST(Json, DeepNestingRejected) {
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_THROW(eo::json_value::parse(deep), std::invalid_argument);
}

TEST(Json, AccessErrors) {
    const auto v = eo::json_value::parse(R"({"a":1})");
    EXPECT_THROW(v.at("missing"), std::out_of_range);
    EXPECT_THROW(v.as_array(), std::logic_error);
    EXPECT_THROW(v.at("a").as_string(), std::logic_error);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_TRUE(v.contains("a"));
}
