// Soak: hundreds of concurrent spec submissions across many client
// connections against one server, asserting ZERO lost responses (every
// accepted submit reaches exactly one terminal frame) and cross-client
// cache hits (clients submitting overlapping canonical specs share
// simulations through the one dse.cache.* -instrumented evaluator).
//
// Scale is environment-tunable so the same binary drives the quick CI
// pass and scripts/run_soak.sh:
//   EHDSE_SOAK_CLIENTS  concurrent connections   (default 8)
//   EHDSE_SOAK_SPECS    submissions per client   (default 25)
//   EHDSE_SOAK_CONFIGS  distinct design points   (default 10)
// Defaults give 8 x 25 = 200 submissions over 10 unique evaluations.
// This test runs under TSan via the `svc` label (scripts/run_sanitizers.sh).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "spec/experiment_spec.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc_test_util.hpp"

namespace {

using namespace ehdse;
using svc::testutil::test_client;
using svc::testutil::type_of;
using svc::testutil::unique_socket_path;

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* value = std::getenv(name);
    if (!value || *value == '\0') return fallback;
    const long parsed = std::atol(value);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Distinct fast design points: 2-minute envelope runs (~2.5 ms each),
/// clock spread over the paper's x1 range so each is a separate cache key.
spec::experiment_spec soak_spec(std::size_t config_index) {
    spec::experiment_spec request;
    request.scn.duration_s = 120.0;
    request.config.mcu_clock_hz =
        1.0e6 + 0.5e6 * static_cast<double>(config_index);
    return request;
}

struct client_outcome {
    std::size_t ok_results = 0;
    std::size_t failed_results = 0;
    std::size_t rejected = 0;
    std::size_t errors = 0;
    std::string first_error;
};

/// Pipelines `specs` submissions, then reads until every accepted request
/// has its terminal frame. Runs on its own thread, one per client.
client_outcome run_client(const std::string& path, std::size_t client_index,
                          std::size_t specs, std::size_t configs) {
    client_outcome outcome;
    try {
        test_client client(path);
        for (std::size_t i = 0; i < specs; ++i) {
            const std::string id =
                "c" + std::to_string(client_index) + "-" + std::to_string(i);
            client.send(svc::make_submit(id, svc::workload::simulate,
                                         soak_spec(i % configs)));
        }
        std::map<std::string, int> terminal;  // id -> terminal frame count
        std::size_t accepted = 0;
        std::size_t settled = 0;
        while (settled < specs) {
            const obs::json_value frame = client.read_frame(120000);
            const std::string type = type_of(frame);
            if (type == "accepted") {
                ++accepted;
                continue;
            }
            if (type == "event") continue;
            const std::string id = frame.at("id").as_string();
            if (type == "result") {
                if (frame.at("status").as_string() == "ok")
                    ++outcome.ok_results;
                else
                    ++outcome.failed_results;
            } else if (type == "rejected") {
                ++outcome.rejected;
            } else {
                ++outcome.errors;
                if (outcome.first_error.empty())
                    outcome.first_error = frame.dump();
                continue;  // error frames are not terminal
            }
            ++settled;
            if (++terminal[id] > 1) {
                ++outcome.errors;
                if (outcome.first_error.empty())
                    outcome.first_error = "duplicate terminal frame for " + id;
            }
        }
        if (accepted + outcome.rejected != specs) {
            ++outcome.errors;
            if (outcome.first_error.empty())
                outcome.first_error = "acceptance accounting mismatch";
        }
    } catch (const std::exception& e) {
        ++outcome.errors;
        if (outcome.first_error.empty()) outcome.first_error = e.what();
    }
    return outcome;
}

TEST(SvcSoak, ConcurrentClientsZeroLostResponsesAndSharedCache) {
    const std::size_t clients = env_size("EHDSE_SOAK_CLIENTS", 8);
    const std::size_t specs = env_size("EHDSE_SOAK_SPECS", 25);
    const std::size_t configs = env_size("EHDSE_SOAK_CONFIGS", 10);
    const std::size_t total = clients * specs;

    // Registry installed BEFORE the server so svc.* and dse.cache.*
    // instruments bind (docs/observability.md). Static: instruments are
    // cached by objects that may outlive this scope on other threads.
    static obs::metrics_registry registry;
    obs::set_global_registry(&registry);

    svc::server_config config;
    config.unix_path = unique_socket_path();
    // Admission must never reject in this test: the assertion is about
    // lost responses, not back-pressure (svc_server_test covers that).
    config.limits.max_queued = total;
    config.limits.max_per_client = specs;
    config.cache_capacity = configs * 2;
    svc::server server(config);
    server.start();

    std::vector<std::thread> threads;
    std::vector<client_outcome> outcomes(clients);
    for (std::size_t c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            outcomes[c] = run_client(config.unix_path, c, specs, configs);
        });
    for (std::thread& thread : threads) thread.join();

    std::size_t ok = 0;
    for (std::size_t c = 0; c < clients; ++c) {
        const client_outcome& outcome = outcomes[c];
        EXPECT_EQ(outcome.errors, 0u)
            << "client " << c << ": " << outcome.first_error;
        EXPECT_EQ(outcome.rejected, 0u) << "client " << c;
        EXPECT_EQ(outcome.failed_results, 0u) << "client " << c;
        EXPECT_EQ(outcome.ok_results, specs) << "client " << c;
        ok += outcome.ok_results;
    }
    EXPECT_EQ(ok, total);  // zero lost responses

    // Cross-client cache sharing: `configs` distinct evaluations serve
    // all `total` requests; everything beyond the first simulation of
    // each design point is a hit (single-flight: concurrent requests for
    // one key converge on the producing run).
    const svc::server_stats stats = server.stats();
    EXPECT_EQ(stats.accepted, total);
    EXPECT_EQ(stats.completed, total);
    EXPECT_EQ(stats.cache.hits + stats.cache.misses, total);
    EXPECT_LE(stats.cache.misses, configs);
    EXPECT_GE(stats.cache.hits, total - configs);

    // The instrumented counters saw the same traffic.
    EXPECT_EQ(registry.get_counter("svc.requests.accepted").value(), total);
    EXPECT_EQ(registry.get_counter("svc.requests.completed").value(), total);
    EXPECT_GE(registry.get_counter("dse.cache.hits").value(), total - configs);

    server.drain();
    ::unlink(config.unix_path.c_str());
}

}  // namespace
