// Odds-and-ends coverage: public surfaces not exercised elsewhere
// (renderers, accessors, small helpers).
#include <gtest/gtest.h>

#include <sstream>

#include "numeric/decomp.hpp"
#include "numeric/matrix.hpp"
#include "sim/trace.hpp"

namespace en = ehdse::numeric;
namespace es = ehdse::sim;

TEST(MatrixToString, RendersRowsAndSeparators) {
    en::matrix m{{1.5, -2.0}, {0.0, 3.25}};
    const std::string s = m.to_string(3);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("3.25"), std::string::npos);
    EXPECT_NE(s.find(";"), std::string::npos);  // row separator
    EXPECT_EQ(s.front(), '[');
    EXPECT_EQ(s.back(), ']');
}

TEST(MatrixData, RowMajorLayout) {
    en::matrix m{{1, 2}, {3, 4}};
    const auto& d = m.data();
    ASSERT_EQ(d.size(), 4u);
    EXPECT_DOUBLE_EQ(d[0], 1.0);
    EXPECT_DOUBLE_EQ(d[1], 2.0);
    EXPECT_DOUBLE_EQ(d[2], 3.0);
    EXPECT_DOUBLE_EQ(d[3], 4.0);
}

TEST(QrFactor, RIsUpperTriangularAndReproducesNorms) {
    en::matrix a{{1, 2}, {3, 1}, {0, 2}};
    en::qr_decomposition qr(a);
    const en::matrix r = qr.r();
    ASSERT_EQ(r.rows(), 2u);
    ASSERT_EQ(r.cols(), 2u);
    EXPECT_DOUBLE_EQ(r(1, 0), 0.0);
    // R'R = A'A (Q orthogonal).
    const en::matrix rtr = r.transposed() * r;
    EXPECT_LT(rtr.max_abs_diff(a.gram()), 1e-10);
}

TEST(LuMatrixSolve, MultipleRhsColumns) {
    en::matrix a{{2, 0}, {0, 4}};
    en::matrix b{{2, 4}, {8, 12}};
    const en::matrix x = en::lu_decomposition(a).solve(b);
    EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(x(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(x(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(x(1, 1), 3.0);
    EXPECT_THROW(en::lu_decomposition(a).solve(en::matrix(3, 1)),
                 std::invalid_argument);
}

TEST(TraceCsv, HeaderAndRows) {
    es::trace tr("vcap");
    tr.record(0.0, 2.8);
    tr.record(1.5, 2.79);
    std::ostringstream os;
    tr.write_csv(os);
    EXPECT_EQ(os.str(), "time,vcap\n0,2.8\n1.5,2.79\n");
}

TEST(TraceClear, EmptiesAndAllowsReuse) {
    es::trace tr("x");
    tr.record(1.0, 1.0);
    tr.clear();
    EXPECT_TRUE(tr.empty());
    // After clear, earlier times are legal again.
    tr.record(0.5, 9.0);
    EXPECT_DOUBLE_EQ(tr.last_value(), 9.0);
}
