// The canonical experiment spec: JSON round trip (byte-identical golden
// document), content-hash stability against pinned reference values,
// strict parsing (unknown keys named), validation (offending field
// named), and canonical-form semantics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "doe/design.hpp"
#include "opt/optimizer.hpp"
#include "rsm/surrogate.hpp"
#include "spec/experiment_spec.hpp"
#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"

namespace es = ehdse::spec;

namespace {

/// A spec exercising every optional part: schedules, transient fidelity,
/// replication, named optimisers.
es::experiment_spec rich_spec() {
    es::experiment_spec s;
    s.scn.duration_s = 1800.0;
    s.scn.accel_mg = 80.0;
    s.scn.v_initial = 3.0;
    s.scn.initial_position = 4;
    s.scn.frequency_schedule = {{0.0, 64.0}, {600.0, 69.0}, {1200.0, 74.0}};
    s.scn.amplitude_schedule = {{0.0, 1.0}, {900.0, 0.0}, {1000.0, 1.0}};
    s.config.mcu_clock_hz = 8.0e6;
    s.config.watchdog_period_s = 60.0;
    s.config.tx_interval_s = 0.25;
    s.eval.record_traces = true;
    s.eval.trace_interval_s = 0.5;
    s.eval.controller_seed = 0xdead'beef;
    s.eval.model = es::fidelity::envelope;
    s.eval.frontend = es::frontend_kind::mppt;
    s.eval.frontend_efficiency = 0.6;
    s.flow.doe_runs = 12;
    s.flow.design = "lhs";
    s.flow.surrogate = "gp";
    s.flow.optimizer_seed = 99;
    s.flow.replicates = 3;
    s.flow.replicate_seed_base = 1000;
    s.flow.parallel = true;
    s.flow.jobs = 4;
    s.flow.optimizers = {"nelder-mead", "particle-swarm"};
    return s;
}

std::string serialize(const es::experiment_spec& s) {
    return es::to_json(s).dump();
}

}  // namespace

// serialise -> parse -> serialise must reproduce the exact bytes: the
// shortest-round-trip double formatter plus insertion-ordered objects
// make a spec document a stable artefact.
TEST(SpecJson, RoundTripIsByteIdentical) {
    for (const es::experiment_spec& s :
         {es::experiment_spec{}, rich_spec()}) {
        const std::string text = serialize(s);
        const es::experiment_spec parsed = es::parse_spec(text);
        EXPECT_EQ(parsed, s);
        EXPECT_EQ(serialize(parsed), text);
    }
}

// Pretty-printed output parses back to the same value too (the form
// `ehdse_cli --dump-spec` writes).
TEST(SpecJson, IndentedFormParsesBack) {
    const es::experiment_spec s = rich_spec();
    EXPECT_EQ(es::parse_spec(es::to_json(s).dump(2)), s);
}

// The default spec's document, byte for byte. This golden string pins
// the schema tag, field names, field order and number formatting; any
// layout change must bump k_spec_schema and update this test knowingly.
TEST(SpecJson, GoldenDefaultDocument) {
    const std::string expected = std::string("{\"schema\":\"") +
        es::k_spec_schema +
        "\","
        "\"scenario\":{\"duration_s\":3600,\"accel_mg\":60,"
        "\"f_start_hz\":64,\"f_step_hz\":5,\"step_period_s\":1500,"
        "\"step_count\":2,\"v_initial\":2.8,\"initial_position\":-1,"
        "\"frequency_schedule\":[],\"amplitude_schedule\":[]},"
        "\"harvester\":{\"model\":\"electromagnetic\"},"
        "\"config\":{\"mcu_clock_hz\":4000000,\"watchdog_period_s\":320,"
        "\"tx_interval_s\":5},"
        "\"evaluation\":{\"record_traces\":false,\"trace_interval_s\":1,"
        "\"controller_seed\":24301,\"fidelity\":\"envelope\","
        "\"frontend\":\"diode_bridge\",\"frontend_efficiency\":0.75},"
        "\"flow\":{\"doe_runs\":10,\"factorial_levels\":3,"
        "\"design\":\"d_optimal\",\"surrogate\":\"quadratic\","
        "\"optimizer_seed\":47009,\"replicates\":1,"
        "\"replicate_seed_base\":1,\"parallel\":false,\"jobs\":0,"
        "\"cache\":true,\"cache_capacity\":128,\"optimizers\":[]}}";
    EXPECT_EQ(serialize(es::experiment_spec{}), expected);
}

// Reference hashes, computed once and pinned. A change here means every
// previously stored manifest/cache key stops matching — bump
// k_spec_hash_version when that is intentional.
TEST(SpecHash, ReferenceValuesAreStable) {
    ASSERT_EQ(es::k_spec_hash_version, 3);
    EXPECT_EQ(es::spec_hash_hex(es::spec_hash(es::experiment_spec{})),
              "d08ba15096d6b676");
    EXPECT_EQ(es::spec_hash_hex(es::spec_hash(rich_spec())),
              "17c4a65a2d371629");
    es::experiment_spec estat;
    estat.harv.model = "electrostatic";
    EXPECT_EQ(es::spec_hash_hex(es::spec_hash(estat)), "ab4688736d5c86af");
}

// The hash sees every part: perturbing one field in any of the five
// sub-structs changes the spec hash.
TEST(SpecHash, EveryPartParticipates) {
    const es::experiment_spec base = rich_spec();
    const std::uint64_t h0 = es::spec_hash(base);

    es::experiment_spec a = base;
    a.scn.accel_mg += 1.0;
    EXPECT_NE(es::spec_hash(a), h0);

    es::experiment_spec h = base;
    h.harv.model = "electrostatic";
    EXPECT_NE(es::spec_hash(h), h0);

    es::experiment_spec b = base;
    b.config.tx_interval_s += 0.125;
    EXPECT_NE(es::spec_hash(b), h0);

    es::experiment_spec c = base;
    c.eval.controller_seed += 1;
    EXPECT_NE(es::spec_hash(c), h0);

    es::experiment_spec d = base;
    d.flow.optimizers.push_back("random-search");
    EXPECT_NE(es::spec_hash(d), h0);
}

// Canonically equivalent specs hash equal after canonicalized(); the
// canonical form is idempotent.
TEST(SpecHash, CanonicalFormsOfEquivalentSpecsAgree) {
    es::experiment_spec a;
    es::experiment_spec b;
    b.eval.trace_interval_s = 7.0;       // inert: tracing is off
    b.eval.frontend_efficiency = 0.31;   // inert: diode bridge
    b.flow.jobs = 12;                    // inert: not parallel
    EXPECT_NE(a, b);
    EXPECT_EQ(a.canonicalized(), b.canonicalized());
    EXPECT_EQ(es::spec_hash(a.canonicalized()),
              es::spec_hash(b.canonicalized()));
    EXPECT_EQ(b.canonicalized().canonicalized(), b.canonicalized());

    // Design-dependent knobs are unobservable for designs that ignore
    // them: a CCD fixes its own run count and uses no candidate grid.
    es::experiment_spec c;
    c.flow.design = "central_composite";
    es::experiment_spec d = c;
    d.flow.doe_runs = 99;
    d.flow.factorial_levels = 5;
    EXPECT_NE(c, d);
    EXPECT_EQ(c.canonicalized(), d.canonicalized());
}

TEST(SpecJson, UnknownKeyIsRejectedByName) {
    std::string text = serialize(es::experiment_spec{});
    // Smuggle an unknown key into the scenario object.
    const std::string needle = "\"duration_s\"";
    text.replace(text.find(needle), needle.size(), "\"duration_sec\"");
    try {
        es::parse_spec(text);
        FAIL() << "unknown key was accepted";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("duration_sec"),
                  std::string::npos)
            << e.what();
    }
}

// A document with non-default surrogate / design pins its own golden
// bytes: the two fields serialise by name, in declaration order.
TEST(SpecJson, GoldenNonDefaultSurrogateAndDesign) {
    es::experiment_spec s;
    s.flow.design = "box_behnken";
    s.flow.surrogate = "gp";
    const std::string text = serialize(s);
    EXPECT_NE(text.find("\"design\":\"box_behnken\""), std::string::npos);
    EXPECT_NE(text.find("\"surrogate\":\"gp\""), std::string::npos);
    EXPECT_EQ(es::parse_spec(text), s);
}

// Pre-refactor documents carry schema /1, no harvester section and no
// design / surrogate keys; they must still load, with the absent fields
// meaning the defaults (electromagnetic harvester included).
TEST(SpecJson, LegacySchemaV1StillLoads) {
    std::string text = serialize(es::experiment_spec{});
    const std::string tag = es::k_spec_schema;
    text.replace(text.find(tag), tag.size(), es::k_spec_schema_legacy);
    const std::string harvester_field =
        "\"harvester\":{\"model\":\"electromagnetic\"},";
    text.replace(text.find(harvester_field), harvester_field.size(), "");
    const std::string design_field = "\"design\":\"d_optimal\",";
    text.replace(text.find(design_field), design_field.size(), "");
    const std::string surrogate_field = "\"surrogate\":\"quadratic\",";
    text.replace(text.find(surrogate_field), surrogate_field.size(), "");
    const es::experiment_spec parsed = es::parse_spec(text);
    EXPECT_EQ(parsed, es::experiment_spec{});
    EXPECT_EQ(parsed.flow.design, "d_optimal");
    EXPECT_EQ(parsed.flow.surrogate, "quadratic");
    EXPECT_EQ(parsed.harv.model, "electromagnetic");
}

// Schema /2 documents (pre-harvester) load with the electromagnetic
// default, and re-encode byte-identically to the canonical /3 form of
// the same experiment.
TEST(SpecJson, SchemaV2MigratesToCanonicalV3) {
    const std::string v3 = serialize(rich_spec());
    std::string v2 = v3;
    const std::string tag = es::k_spec_schema;
    v2.replace(v2.find(tag), tag.size(), es::k_spec_schema_v2);
    const std::string harvester_field =
        "\"harvester\":{\"model\":\"electromagnetic\"},";
    v2.replace(v2.find(harvester_field), harvester_field.size(), "");
    const es::experiment_spec parsed = es::parse_spec(v2);
    EXPECT_EQ(parsed, rich_spec());
    EXPECT_EQ(parsed.harv.model, "electromagnetic");
    EXPECT_EQ(serialize(parsed), v3);
    // Same canonical v3 value => same spec hash => same cache keys.
    EXPECT_EQ(es::spec_hash(parsed.canonicalized()),
              es::spec_hash(rich_spec().canonicalized()));
}

// A v2/v1 document naming a harvester is impossible (the section arrived
// with /3), but a /3 document may spell any registered backend.
TEST(SpecJson, HarvesterSectionRoundTrips) {
    es::experiment_spec s;
    s.harv.model = "electrostatic";
    const std::string text = serialize(s);
    EXPECT_NE(text.find("\"harvester\":{\"model\":\"electrostatic\"}"),
              std::string::npos);
    EXPECT_EQ(es::parse_spec(text), s);
}

TEST(SpecValidate, UnknownHarvesterIsRejectedByName) {
    es::experiment_spec s;
    s.harv.model = "piezoelectric";
    try {
        s.validate();
        FAIL() << "unknown harvester was accepted";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown harvester 'piezoelectric'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("electromagnetic"), std::string::npos) << msg;
        EXPECT_NE(msg.find("electrostatic"), std::string::npos) << msg;
    }
}

// Every name each registry exports survives serialise -> parse inside a
// spec — the property that makes --list-* output directly usable.
TEST(SpecJson, RegistryNamesRoundTripThroughSpec) {
    for (const auto& info : ehdse::rsm::surrogate_registry()) {
        es::experiment_spec s;
        s.flow.surrogate = info.name;
        EXPECT_EQ(es::parse_spec(serialize(s)).flow.surrogate, info.name);
    }
    for (const auto& info : ehdse::doe::design_registry()) {
        es::experiment_spec s;
        s.flow.design = info.name;
        EXPECT_EQ(es::parse_spec(serialize(s)).flow.design, info.name);
    }
    for (const auto& info : ehdse::opt::optimizer_registry()) {
        es::experiment_spec s;
        s.flow.optimizers = {info.name};
        EXPECT_EQ(es::parse_spec(serialize(s)).flow.optimizers.front(),
                  info.name);
    }
}

TEST(SpecJson, SchemaMismatchIsRejected) {
    std::string text = serialize(es::experiment_spec{});
    const std::string needle = es::k_spec_schema;
    text.replace(text.find(needle), needle.size(), "ehdse.experiment_spec/99");
    EXPECT_THROW(es::parse_spec(text), std::invalid_argument);
}

TEST(SpecJson, MalformedTextIsRejected) {
    EXPECT_THROW(es::parse_spec("not json"), std::invalid_argument);
    EXPECT_THROW(es::parse_spec("[1,2,3]"), std::invalid_argument);
}

// validate() names the offending field, for schedules down to the entry.
TEST(SpecValidate, NamesTheOffendingField) {
    const auto message_of = [](const es::experiment_spec& s) -> std::string {
        try {
            s.validate();
        } catch (const std::invalid_argument& e) {
            return e.what();
        }
        return "";
    };

    es::experiment_spec s;
    s.scn.duration_s = 0.0;
    EXPECT_NE(message_of(s).find("duration_s"), std::string::npos);

    s = {};
    s.scn.frequency_schedule = {{5.0, 64.0}};  // must start at t = 0
    EXPECT_NE(message_of(s).find("frequency_schedule[0]"), std::string::npos);

    s = {};
    s.scn.frequency_schedule = {{0.0, 64.0}, {10.0, 69.0}, {10.0, 74.0}};
    EXPECT_NE(message_of(s).find("frequency_schedule[2]"), std::string::npos);

    s = {};
    s.scn.amplitude_schedule = {{0.0, 1.0}, {10.0, -0.5}};
    EXPECT_NE(message_of(s).find("amplitude_schedule[1]"), std::string::npos);

    s = {};
    s.eval.trace_interval_s = -1.0;
    EXPECT_NE(message_of(s).find("trace_interval_s"), std::string::npos);

    s = {};
    s.config.watchdog_period_s = 0.0;
    EXPECT_NE(message_of(s).find("watchdog_period_s"), std::string::npos);

    s = {};
    s.flow.factorial_levels = 1;
    EXPECT_NE(message_of(s).find("factorial_levels"), std::string::npos);

    // Unknown registry names are rejected naming the offender AND the
    // valid choices.
    s = {};
    s.flow.surrogate = "cubic";
    EXPECT_NE(message_of(s).find("unknown surrogate 'cubic'"),
              std::string::npos);
    EXPECT_NE(message_of(s).find("quadratic"), std::string::npos);

    s = {};
    s.flow.design = "plackett_burman";
    EXPECT_NE(message_of(s).find("unknown design 'plackett_burman'"),
              std::string::npos);
    EXPECT_NE(message_of(s).find("box_behnken"), std::string::npos);
}

// A parsed spec is validated: a well-formed document describing an
// invalid experiment is rejected.
TEST(SpecJson, ParsingValidates) {
    es::experiment_spec s;
    s.config.tx_interval_s = -2.0;
    EXPECT_THROW(es::parse_spec(serialize(s)), std::invalid_argument);
}
