// Averaged bridge model: closed-form values, power-split identity, and a
// numerical cross-check integrating the instantaneous waveform.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "power/rectifier.hpp"

namespace ep = ehdse::power;

TEST(Rectifier, BlockedWhenEmfBelowSink) {
    ep::rectifier_params rp;  // 0.3 V per diode
    const auto op = ep::bridge_average(2.0, 2.8, 1000.0, rp);
    EXPECT_FALSE(op.conducting);
    EXPECT_DOUBLE_EQ(op.i_avg_a, 0.0);
    EXPECT_DOUBLE_EQ(op.p_mech_w, 0.0);
}

TEST(Rectifier, BlockedExactlyAtThreshold) {
    const auto op = ep::bridge_average(3.4, 2.8, 1000.0);  // U = 3.4
    EXPECT_FALSE(op.conducting);
}

TEST(Rectifier, ConductsAboveThreshold) {
    const auto op = ep::bridge_average(5.0, 2.8, 1000.0);
    EXPECT_TRUE(op.conducting);
    EXPECT_GT(op.i_avg_a, 0.0);
    EXPECT_GT(op.conduction_angle, 0.0);
    EXPECT_LT(op.conduction_angle, std::numbers::pi);
}

TEST(Rectifier, PowerSplitIdentity) {
    const auto op = ep::bridge_average(6.0, 2.8, 2000.0);
    EXPECT_NEAR(op.p_mech_w, op.p_coil_w + op.p_store_w + op.p_diode_w,
                1e-15 + 1e-9 * op.p_mech_w);
    EXPECT_GT(op.p_coil_w, 0.0);
    EXPECT_GT(op.p_store_w, 0.0);
    EXPECT_GT(op.p_diode_w, 0.0);
}

TEST(Rectifier, ZeroSinkFullConduction) {
    // With zero store voltage and zero diode drop, conduction spans the
    // whole half-cycle and the averages reduce to textbook forms.
    ep::rectifier_params rp;
    rp.diode_drop_v = 0.0;
    const double e = 4.0, r = 100.0;
    const auto op = ep::bridge_average(e, 0.0, r, rp);
    EXPECT_NEAR(op.conduction_angle, std::numbers::pi, 1e-9);
    EXPECT_NEAR(op.i_avg_a, 2.0 * e / (std::numbers::pi * r), 1e-12);
    EXPECT_NEAR(op.p_mech_w, e * e / (2.0 * r), 1e-12);
}

TEST(Rectifier, InvalidInputsThrow) {
    EXPECT_THROW(ep::bridge_average(-1.0, 2.8, 100.0), std::invalid_argument);
    EXPECT_THROW(ep::bridge_average(5.0, -0.1, 100.0), std::invalid_argument);
    EXPECT_THROW(ep::bridge_average(5.0, 2.8, 0.0), std::invalid_argument);
}

TEST(Rectifier, CurrentDecreasesWithStoreVoltage) {
    double last = 1e9;
    for (double v = 0.0; v < 4.5; v += 0.5) {
        const double i = ep::bridge_average(5.0, v, 1000.0).i_avg_a;
        EXPECT_LT(i, last);
        last = i;
    }
}

// ---------------------------------------------------------------------------
// Cross-check against direct numerical integration of the waveform:
//   i(theta) = max(0, (E|sin| - U)) / R, current into the store = |i|.

class RectifierNumerical
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(RectifierNumerical, AveragesMatchQuadrature) {
    const auto [e, v, r] = GetParam();
    const ep::rectifier_params rp;
    const double u = v + 2.0 * rp.diode_drop_v;

    const int n = 2'000'000;
    double i_sum = 0.0, p_sum = 0.0;
    for (int s = 0; s < n; ++s) {
        const double theta = 2.0 * std::numbers::pi * (s + 0.5) / n;
        const double emf = e * std::sin(theta);
        if (std::abs(emf) > u) {
            const double i = (std::abs(emf) - u) / r;
            i_sum += i;                 // rectified current into the store
            p_sum += std::abs(emf) * i; // power leaving the mechanics
        }
    }
    const double i_avg = i_sum / n;
    const double p_avg = p_sum / n;

    const auto op = ep::bridge_average(e, v, r, rp);
    EXPECT_NEAR(op.i_avg_a, i_avg, 1e-6 * std::max(1.0, i_avg) + 1e-12);
    EXPECT_NEAR(op.p_mech_w, p_avg, 1e-5 * std::max(1.0, p_avg) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, RectifierNumerical,
    ::testing::Values(std::make_tuple(5.0, 2.8, 1000.0),
                      std::make_tuple(4.0, 2.8, 5000.0),
                      std::make_tuple(10.0, 0.5, 200.0),
                      std::make_tuple(3.45, 2.8, 5000.0),   // barely conducting
                      std::make_tuple(20.0, 2.8, 5000.0))); // deep conduction
