// Latin hypercube sampling and the A-/I-optimality metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "doe/sampling.hpp"
#include "rsm/quadratic_model.hpp"

namespace ed = ehdse::doe;
namespace en = ehdse::numeric;

namespace {
en::vec quad_basis(const en::vec& x) { return ehdse::rsm::quadratic_basis(x); }
}  // namespace

TEST(LatinHypercube, PointsInBoxAndStratified) {
    en::rng rng(5);
    const std::size_t n = 16;
    const auto pts = ed::latin_hypercube(3, n, rng);
    ASSERT_EQ(pts.size(), n);
    for (const auto& p : pts)
        for (double v : p) {
            ASSERT_GE(v, -1.0);
            ASSERT_LE(v, 1.0);
        }
    // Stratification: along each axis, every stratum of width 2/n holds
    // exactly one point.
    for (std::size_t axis = 0; axis < 3; ++axis) {
        std::vector<int> counts(n, 0);
        for (const auto& p : pts) {
            const double u = (p[axis] + 1.0) / 2.0;
            auto stratum = std::min(static_cast<std::size_t>(u * n), n - 1);
            ++counts[stratum];
        }
        for (int c : counts) ASSERT_EQ(c, 1);
    }
}

TEST(LatinHypercube, Validation) {
    en::rng rng(1);
    EXPECT_THROW(ed::latin_hypercube(0, 5, rng), std::invalid_argument);
    EXPECT_THROW(ed::latin_hypercube(2, 0, rng), std::invalid_argument);
    EXPECT_THROW(ed::maximin_latin_hypercube(2, 5, rng, 0), std::invalid_argument);
}

TEST(LatinHypercube, MaximinImprovesSpread) {
    en::rng rng_a(9), rng_b(9);
    const auto plain = ed::latin_hypercube(2, 12, rng_a);
    const auto maximin = ed::maximin_latin_hypercube(2, 12, rng_b, 64);
    EXPECT_GE(ed::min_pairwise_distance(maximin),
              ed::min_pairwise_distance(plain));
}

TEST(MinPairwiseDistance, KnownValues) {
    EXPECT_DOUBLE_EQ(ed::min_pairwise_distance({}), 0.0);
    EXPECT_DOUBLE_EQ(ed::min_pairwise_distance({{0.0, 0.0}}), 0.0);
    const std::vector<en::vec> pts{{0.0, 0.0}, {3.0, 4.0}, {0.0, 1.0}};
    EXPECT_DOUBLE_EQ(ed::min_pairwise_distance(pts), 1.0);
}

TEST(OptimalityMetrics, FactorialBeatsPoorDesignOnAandI) {
    const auto candidates = ed::full_factorial(2, 3);
    const auto full = ehdse::rsm::build_design_matrix(candidates);

    // A deliberately lopsided (but non-singular) 9-point design.
    std::vector<en::vec> lopsided;
    en::rng rng(3);
    for (int i = 0; i < 9; ++i) {
        en::vec p{rng.uniform(0.4, 1.0), rng.uniform(0.4, 1.0)};
        lopsided.push_back(p);
    }
    const auto bad = ehdse::rsm::build_design_matrix(lopsided);

    EXPECT_LT(ed::a_criterion(full), ed::a_criterion(bad));
    EXPECT_LT(ed::i_criterion(full, candidates, quad_basis),
              ed::i_criterion(bad, candidates, quad_basis));
}

TEST(OptimalityMetrics, SingularDesignRejected) {
    const std::vector<en::vec> degenerate(6, en::vec{0.5, 0.5});
    const auto x = ehdse::rsm::build_design_matrix(degenerate);
    EXPECT_THROW(ed::a_criterion(x), std::domain_error);
    EXPECT_THROW(ed::i_criterion(x, degenerate, quad_basis), std::domain_error);
    EXPECT_THROW(ed::i_criterion(x, {}, quad_basis), std::invalid_argument);
}

TEST(OptimalityMetrics, DOptimalTenIsCompetitiveOnI) {
    // The D-optimal 10-run design should also have a reasonable average
    // prediction variance relative to the factorial (they optimise
    // different criteria, but good designs correlate).
    const auto candidates = ed::full_factorial(3, 3);
    const auto dopt = ed::d_optimal_design(candidates, quad_basis, 10);
    std::vector<en::vec> pts;
    for (std::size_t idx : dopt.selected) pts.push_back(candidates[idx]);
    const double i_dopt = ed::i_criterion(ehdse::rsm::build_design_matrix(pts),
                                          candidates, quad_basis);
    const double i_full = ed::i_criterion(
        ehdse::rsm::build_design_matrix(candidates), candidates, quad_basis);
    // Per-run-adjusted: 10-run design within ~2x of factorial's average
    // variance scaled by run ratio.
    EXPECT_LT(i_dopt, 2.0 * i_full * 27.0 / 10.0);
}

TEST(LatinHypercube, SupportsQuadraticFitAtModestN) {
    en::rng rng(77);
    const auto pts = ed::maximin_latin_hypercube(3, 14, rng);
    en::vec y;
    for (const auto& p : pts) y.push_back(1.0 + p[0] - 2.0 * p[2] + p[1] * p[1]);
    const auto fit = ehdse::rsm::fit_quadratic(pts, y);
    EXPECT_GT(fit.r_squared, 0.999);
}
