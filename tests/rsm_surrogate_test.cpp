// The surrogate registry: every model rsm::make_surrogate builds must fit
// the same (points, responses) pair through the same surrogate_fit shape —
// deterministic predictions, uniform diagnostics (R^2, adjusted R^2,
// LOO-CV RMSE) — and unknown names must fail naming the offender and the
// valid choices.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "doe/design.hpp"
#include "rsm/quadratic_model.hpp"
#include "rsm/surrogate.hpp"

namespace er = ehdse::rsm;
namespace nm = ehdse::numeric;

namespace {

/// Shared 10-run training set: a k = 2 LHS (6 quadratic terms, so the
/// stepwise surrogate has residual degrees of freedom too) with a smooth
/// deterministic response.
struct training_set {
    std::vector<nm::vec> points;
    nm::vec y;
};

const training_set& shared_training() {
    static const training_set data = [] {
        ehdse::doe::design_request request;
        request.name = "lhs";
        request.dimension = 2;
        request.runs = 10;
        const auto design = ehdse::doe::make_design(request);
        training_set out;
        out.points = design.points;
        for (const nm::vec& x : out.points)
            out.y.push_back(5.0 + 2.0 * x[0] - 3.0 * x[1] + 1.5 * x[0] * x[1] -
                            0.8 * x[0] * x[0] + std::sin(1.3 * x[1]));
        return out;
    }();
    return data;
}

}  // namespace

TEST(SurrogateRegistry, ListsTheThreeModels) {
    const auto& registry = er::surrogate_registry();
    ASSERT_EQ(registry.size(), 3u);
    EXPECT_EQ(registry[0].name, "quadratic");
    EXPECT_EQ(registry[1].name, "stepwise");
    EXPECT_EQ(registry[2].name, "gp");
    for (const auto& info : registry) {
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_TRUE(er::is_known_surrogate(info.name));
        EXPECT_EQ(er::make_surrogate(info.name)->name(), info.name);
    }
    EXPECT_FALSE(er::is_known_surrogate("cubic"));
}

TEST(SurrogateRegistry, UnknownNameListsValidChoices) {
    try {
        er::make_surrogate("splines");
        FAIL() << "unknown surrogate was accepted";
    } catch (const std::invalid_argument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("unknown surrogate 'splines'"),
                  std::string::npos) << message;
        EXPECT_NE(message.find("quadratic"), std::string::npos) << message;
        EXPECT_NE(message.find("stepwise"), std::string::npos) << message;
        EXPECT_NE(message.find("gp"), std::string::npos) << message;
    }
}

// Every registered surrogate fits the same 10-run design: predictions are
// finite and deterministic across refits, and the uniform LOO-CV RMSE
// diagnostic is populated.
TEST(SurrogateRegistry, EveryModelFitsTheSharedDesign) {
    const auto& data = shared_training();
    for (const auto& info : er::surrogate_registry()) {
        const auto model = er::make_surrogate(info.name);
        const er::surrogate_fit a = model->fit(data.points, data.y);
        const er::surrogate_fit b = model->fit(data.points, data.y);
        EXPECT_EQ(a.surrogate, info.name);
        ASSERT_NE(a.surface, nullptr) << info.name;
        EXPECT_EQ(a.surface->dimension(), 2u) << info.name;
        EXPECT_TRUE(std::isfinite(a.r_squared)) << info.name;
        EXPECT_TRUE(std::isfinite(a.adj_r_squared)) << info.name;
        EXPECT_TRUE(std::isfinite(a.loo_rmse)) << info.name;
        EXPECT_GE(a.loo_rmse, 0.0) << info.name;
        ASSERT_EQ(a.fitted.size(), data.y.size()) << info.name;
        ASSERT_EQ(a.residuals.size(), data.y.size()) << info.name;
        for (const nm::vec& x : data.points) {
            const double pa = a.predict(x);
            EXPECT_TRUE(std::isfinite(pa)) << info.name;
            EXPECT_DOUBLE_EQ(pa, b.predict(x)) << info.name;
        }
        // The fit describes itself as JSON-able diagnostics.
        const auto doc = a.diagnostics();
        EXPECT_EQ(doc.at("surrogate").as_string(), info.name);
        EXPECT_TRUE(doc.at("model").is_object()) << info.name;
    }
}

// The quadratic adapter is the paper's least-squares fit verbatim: same
// coefficients, and LOO-CV RMSE equal to the analytic PRESS RMSE.
TEST(SurrogateRegistry, QuadraticAdapterMatchesFitQuadratic) {
    const auto& data = shared_training();
    const auto fit = er::make_surrogate("quadratic")->fit(data.points, data.y);
    const er::fit_result direct = er::fit_quadratic(data.points, data.y);
    const er::fit_result* via_accessor = fit.quadratic();
    ASSERT_NE(via_accessor, nullptr);
    ASSERT_EQ(via_accessor->model.coefficients().size(),
              direct.model.coefficients().size());
    for (std::size_t i = 0; i < direct.model.coefficients().size(); ++i)
        EXPECT_DOUBLE_EQ(via_accessor->model.coefficients()[i],
                         direct.model.coefficients()[i]);
    EXPECT_DOUBLE_EQ(fit.r_squared, direct.r_squared);
    EXPECT_DOUBLE_EQ(fit.adj_r_squared, direct.adj_r_squared);
    EXPECT_DOUBLE_EQ(fit.sse, direct.sse);
    EXPECT_DOUBLE_EQ(fit.loo_rmse, direct.press_rmse);
}

// Only the GP carries predictive variance; the polynomial surfaces say so
// rather than returning garbage.
TEST(SurrogateRegistry, VarianceOnlyOnTheGp) {
    const auto& data = shared_training();
    const auto gp = er::make_surrogate("gp")->fit(data.points, data.y);
    EXPECT_TRUE(gp.surface->has_variance());
    const double var = gp.surface->predict_variance({0.25, -0.5});
    EXPECT_TRUE(std::isfinite(var));
    EXPECT_GE(var, 0.0);

    const auto quad = er::make_surrogate("quadratic")->fit(data.points, data.y);
    EXPECT_FALSE(quad.surface->has_variance());
    EXPECT_THROW(quad.surface->predict_variance({0.0, 0.0}), std::logic_error);

    // The non-quadratic surfaces expose no fit_result.
    EXPECT_EQ(gp.quadratic(), nullptr);
}

// A saturated design (k = 3, 10 runs = 10 terms) leaves no degrees of
// freedom for cross-validation: the quadratic reports +inf, and the
// stepwise surrogate (which needs runs > term count) refuses to fit.
TEST(SurrogateRegistry, SaturatedDesignDiagnostics) {
    ehdse::doe::design_request request;
    request.dimension = 3;
    request.runs = 10;
    request.basis = [](const nm::vec& x) { return er::quadratic_basis(x); };
    const auto design = ehdse::doe::make_design(request);
    nm::vec y;
    for (const nm::vec& x : design.points)
        y.push_back(1.0 + x[0] + 2.0 * x[1] - x[2]);
    const auto quad = er::make_surrogate("quadratic")->fit(design.points, y);
    EXPECT_NEAR(quad.r_squared, 1.0, 1e-9);
    EXPECT_TRUE(std::isinf(quad.loo_rmse));
    EXPECT_THROW(er::make_surrogate("stepwise")->fit(design.points, y),
                 std::exception);
}

TEST(SurrogateRegistry, ShapeMismatchRejected) {
    const auto model = er::make_surrogate("quadratic");
    EXPECT_THROW(model->fit({}, {}), std::invalid_argument);
    EXPECT_THROW(model->fit({{0.0, 0.0}}, {1.0, 2.0}), std::invalid_argument);
}
