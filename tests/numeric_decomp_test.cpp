// LU / QR decompositions: closed-form cases plus randomised property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/decomp.hpp"
#include "numeric/rng.hpp"

namespace en = ehdse::numeric;

TEST(Lu, DeterminantOfKnownMatrix) {
    en::matrix a{{4, 3}, {6, 3}};
    EXPECT_NEAR(en::determinant(a), -6.0, 1e-12);
}

TEST(Lu, DeterminantOfIdentity) {
    EXPECT_NEAR(en::determinant(en::matrix::identity(5)), 1.0, 1e-12);
}

TEST(Lu, SingularMatrixDetected) {
    en::matrix a{{1, 2}, {2, 4}};
    en::lu_decomposition lu(a);
    EXPECT_TRUE(lu.singular());
    EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
    EXPECT_THROW(lu.solve(en::vec{1.0, 1.0}), std::domain_error);
}

TEST(Lu, NonSquareThrows) {
    EXPECT_THROW(en::lu_decomposition(en::matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, SolveKnownSystem) {
    en::matrix a{{2, 1}, {1, 3}};
    const en::vec x = en::solve_linear(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
    en::matrix a{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}};
    const en::matrix prod = a * en::inverse(a);
    EXPECT_LT(prod.max_abs_diff(en::matrix::identity(3)), 1e-10);
}

TEST(Lu, LogAbsDeterminantMatchesDeterminant) {
    en::matrix a{{3, 1}, {2, 5}};
    en::lu_decomposition lu(a);
    const auto [log_abs, sign] = lu.log_abs_determinant();
    EXPECT_NEAR(sign * std::exp(log_abs), lu.determinant(), 1e-9);
}

TEST(Lu, RhsSizeMismatchThrows) {
    en::lu_decomposition lu(en::matrix::identity(3));
    EXPECT_THROW(lu.solve(en::vec{1.0}), std::invalid_argument);
}

TEST(Qr, SolvesExactSquareSystem) {
    en::matrix a{{2, 1}, {1, 3}};
    const en::vec x = en::qr_decomposition(a).solve({5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Qr, LeastSquaresLine) {
    // Fit y = 1 + 2t through noiseless points: exact recovery.
    en::matrix a;
    en::vec y;
    for (double t : {0.0, 1.0, 2.0, 3.0}) {
        a.append_row(en::vec{1.0, t});
        y.push_back(1.0 + 2.0 * t);
    }
    const en::vec beta = en::solve_least_squares(a, y);
    EXPECT_NEAR(beta[0], 1.0, 1e-12);
    EXPECT_NEAR(beta[1], 2.0, 1e-12);
}

TEST(Qr, UnderdeterminedThrows) {
    EXPECT_THROW(en::qr_decomposition(en::matrix(2, 3)), std::invalid_argument);
}

TEST(Qr, RankDeficiencyDetected) {
    en::matrix a{{1, 2}, {2, 4}, {3, 6}};
    en::qr_decomposition qr(a);
    EXPECT_TRUE(qr.rank_deficient());
    EXPECT_THROW(qr.solve(en::vec{1.0, 2.0, 3.0}), std::domain_error);
}

TEST(Qr, AbsDetRMatchesGramDeterminant) {
    en::matrix a{{1, 2}, {3, 1}, {0, 2}};
    en::qr_decomposition qr(a);
    const double det_gram = en::determinant(a.gram());
    EXPECT_NEAR(qr.abs_det_r() * qr.abs_det_r(), det_gram, 1e-9);
}

// ---------------------------------------------------------------------------
// Property sweep: random well-conditioned systems across sizes and seeds.

class DecompRandomised : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecompRandomised, LuSolveResidualSmall) {
    const auto [n, seed] = GetParam();
    en::rng rng(static_cast<std::uint64_t>(seed));
    en::matrix a(n, n);
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            a(r, c) = rng.uniform(-1.0, 1.0) + (r == c ? static_cast<double>(n) : 0.0);
    en::vec b(n);
    for (double& v : b) v = rng.uniform(-2.0, 2.0);

    const en::vec x = en::solve_linear(a, b);
    const en::vec r = en::sub(a * x, b);
    EXPECT_LT(en::max_abs(r), 1e-9);
}

TEST_P(DecompRandomised, QrNormalEquationsHold) {
    const auto [n, seed] = GetParam();
    en::rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
    const std::size_t rows = static_cast<std::size_t>(n) + 5;
    const std::size_t cols = static_cast<std::size_t>(n);
    en::matrix a(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    en::vec b(rows);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);

    const en::vec x = en::solve_least_squares(a, b);
    // Least-squares optimality: A'(Ax - b) = 0.
    const en::vec grad = a.transposed() * en::sub(a * x, b);
    EXPECT_LT(en::max_abs(grad), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, DecompRandomised,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 12),
                                            ::testing::Values(1, 2, 3)));
