// Tuning lookup table: inverse-map property, clamping, quantisation bound.
#include <gtest/gtest.h>

#include <cmath>

#include "harvester/tuning_table.hpp"

namespace eh = ehdse::harvester;

namespace {
const eh::microgenerator& shared_gen() {
    static eh::microgenerator gen;
    return gen;
}
const eh::tuning_table& shared_table() {
    static eh::tuning_table table(shared_gen());
    return table;
}
}  // namespace

TEST(TuningTable, FrequenciesMatchGenerator) {
    for (int p = 0; p < eh::tuning_table::k_entries; p += 17)
        EXPECT_DOUBLE_EQ(shared_table().frequency_at(p),
                         shared_gen().resonant_frequency(p));
    EXPECT_THROW(shared_table().frequency_at(-1), std::out_of_range);
    EXPECT_THROW(shared_table().frequency_at(256), std::out_of_range);
}

TEST(TuningTable, LookupOfExactEntryReturnsThatEntry) {
    for (int p : {0, 1, 31, 128, 254, 255})
        EXPECT_EQ(shared_table().lookup(shared_table().frequency_at(p)), p);
}

TEST(TuningTable, LookupClampsOutsideRange) {
    EXPECT_EQ(shared_table().lookup(1.0), 0);
    EXPECT_EQ(shared_table().lookup(1e4), eh::tuning_table::k_entries - 1);
}

TEST(TuningTable, QuantisationErrorBoundHolds) {
    const double bound = shared_table().max_quantisation_error();
    EXPECT_GT(bound, 0.0);
    // The bound must dominate the worst case over a dense frequency sweep.
    for (double f = shared_table().min_frequency();
         f <= shared_table().max_frequency(); f += 0.01) {
        const int p = shared_table().lookup(f);
        const double err = std::abs(shared_table().frequency_at(p) - f);
        ASSERT_LE(err, bound + 1e-12);
    }
}

TEST(TuningTable, MagneticDipoleLawAlsoMonotone) {
    // The raw 1/d^4 law gives a strongly non-uniform but still monotone
    // map; the table must accept it and keep its nearest-entry property.
    eh::microgenerator_params p;
    p.law = eh::tuning_law::magnetic_dipole;
    const eh::microgenerator gen(p);
    const eh::tuning_table table(gen);
    EXPECT_LT(table.min_frequency(), table.max_frequency());
    for (double f = table.min_frequency(); f <= table.max_frequency(); f += 0.5) {
        const int pos = table.lookup(f);
        const double err = std::abs(table.frequency_at(pos) - f);
        ASSERT_LE(err, table.max_quantisation_error() + 1e-12);
    }
    // Non-uniformity signature: entries crowd at the low-frequency end.
    const double low_gap = table.frequency_at(1) - table.frequency_at(0);
    const double high_gap = table.frequency_at(255) - table.frequency_at(254);
    EXPECT_LT(low_gap, high_gap / 5.0);
}

// Property sweep: lookup must return the nearest entry for arbitrary targets.
class TuningTableNearest : public ::testing::TestWithParam<double> {};

TEST_P(TuningTableNearest, LookupIsNearestEntry) {
    const double f = GetParam();
    const int p = shared_table().lookup(f);
    const double err = std::abs(shared_table().frequency_at(p) - f);
    for (int q = std::max(0, p - 2); q <= std::min(255, p + 2); ++q)
        ASSERT_LE(err, std::abs(shared_table().frequency_at(q) - f) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(FrequencySweep, TuningTableNearest,
                         ::testing::Values(64.0, 64.37, 66.6, 69.0, 71.125,
                                           74.0, 77.7, 80.01, 84.5, 87.9));
