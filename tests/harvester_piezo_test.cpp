// Piezoelectric harvester variant: classic analytical properties.
#include <gtest/gtest.h>

#include <cmath>

#include "harvester/piezo.hpp"
#include "harvester/tuning_table.hpp"
#include "harvester/vibration.hpp"

namespace eh = ehdse::harvester;

namespace {
constexpr double k_accel_60mg = 0.060 * eh::k_gravity;

const eh::piezo_microgenerator& gen() {
    static eh::piezo_microgenerator g;
    return g;
}

int tuned_pos(double f) {
    static eh::tuning_table table{eh::microgenerator{}};
    return table.lookup(f);
}
}  // namespace

TEST(Piezo, ParameterValidation) {
    eh::piezo_params p;
    p.coupling_n_per_v = 0.0;
    EXPECT_THROW(eh::piezo_microgenerator{p}, std::invalid_argument);
    p = {};
    p.clamped_capacitance_f = -1e-9;
    EXPECT_THROW(eh::piezo_microgenerator{p}, std::invalid_argument);
}

TEST(Piezo, OpenCircuitVoltageFormula) {
    const auto& p = gen().params();
    EXPECT_NEAR(gen().open_circuit_voltage(1e-4),
                p.coupling_n_per_v * 1e-4 / p.clamped_capacitance_f, 1e-12);
}

TEST(Piezo, SharesTuningModelWithEmDevice) {
    const eh::microgenerator em;
    for (int pos : {0, 100, 255})
        EXPECT_DOUBLE_EQ(gen().resonant_frequency(pos), em.resonant_frequency(pos));
}

TEST(Piezo, ConductsAtResonanceModerateVoltage) {
    const auto pt = gen().solve(tuned_pos(69.0), 69.0, k_accel_60mg, 2.8);
    EXPECT_TRUE(pt.converged);
    EXPECT_TRUE(pt.conducting);
    EXPECT_GT(pt.p_store_w, 0.0);
    EXPECT_GT(pt.c_electrical, 0.0);
    // Power split: P_mech = P_store + P_diode.
    EXPECT_NEAR(pt.p_mech_w, pt.p_store_w + pt.p_diode_w, 1e-12 + 1e-9 * pt.p_mech_w);
}

TEST(Piezo, BlockedAtHighStorageVoltage) {
    const auto pt = gen().solve(tuned_pos(69.0), 69.0, k_accel_60mg, 50.0);
    EXPECT_FALSE(pt.conducting);
    EXPECT_DOUBLE_EQ(pt.p_store_w, 0.0);
    EXPECT_DOUBLE_EQ(pt.c_electrical, 0.0);
}

TEST(Piezo, MechanicalPowerBounded) {
    const auto& mech = gen().mechanics();
    const double p_max =
        std::pow(mech.params().mass_kg * k_accel_60mg, 2) / (8.0 * mech.mech_damping());
    for (double v : {0.5, 1.5, 2.8, 4.0}) {
        const auto pt = gen().solve(tuned_pos(69.0), 69.0, k_accel_60mg, v);
        ASSERT_LE(pt.p_mech_w, p_max * (1.0 + 1e-9)) << "V=" << v;
    }
}

TEST(Piezo, OptimalSinkNearHalfOpenCircuitVoltage) {
    // Ottman's classic result: stored power peaks when the rectifier sink
    // voltage is about half the open-circuit amplitude. With the damping
    // feedback the optimum shifts, but must bracket U*/2 within ~35%.
    const int pos = tuned_pos(69.0);
    const double u_star = gen().optimal_sink_voltage(pos, 69.0, k_accel_60mg);
    ASSERT_GT(u_star, 0.7);  // the device must be scaled to conduct

    double best_v = 0.0, best_p = -1.0;
    for (double v = 0.05; v < 4.0 * u_star; v += 0.05) {
        const auto pt = gen().solve(pos, 69.0, k_accel_60mg, v);
        if (pt.p_store_w > best_p) {
            best_p = pt.p_store_w;
            best_v = v;
        }
    }
    const double vd = 0.30;
    EXPECT_NEAR(best_v + 2.0 * vd, u_star, 0.35 * u_star);
}

TEST(Piezo, DetuningCollapsesOutput) {
    const int pos = tuned_pos(69.0);
    const auto tuned = gen().solve(pos, 69.0, k_accel_60mg, 2.8);
    const auto detuned = gen().solve(pos, 74.0, k_accel_60mg, 2.8);
    EXPECT_LT(detuned.p_store_w, 0.1 * tuned.p_store_w);
}

TEST(Piezo, InvalidSolveInputs) {
    EXPECT_THROW(gen().solve(0, 0.0, 1.0, 2.8), std::invalid_argument);
    EXPECT_THROW(gen().solve(0, 69.0, -1.0, 2.8), std::invalid_argument);
    EXPECT_THROW(gen().solve(0, 69.0, 1.0, -0.1), std::invalid_argument);
}

// Current falls monotonically with storage voltage (as with the EM bridge).
class PiezoVoltageSweep : public ::testing::TestWithParam<double> {};

TEST_P(PiezoVoltageSweep, CurrentMonotoneInStoreVoltage) {
    const double f = GetParam();
    const int pos = tuned_pos(f);
    double last = 1e9;
    for (double v = 0.2; v <= 4.0; v += 0.2) {
        const auto pt = gen().solve(pos, f, k_accel_60mg, v);
        ASSERT_LE(pt.i_avg_a, last + 1e-12) << "f=" << f << " v=" << v;
        last = pt.i_avg_a;
    }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, PiezoVoltageSweep,
                         ::testing::Values(66.0, 69.0, 75.0, 84.0));
