// Message layer of the wire protocol: strict request decoding, the
// builder/parse round trip, and the closed error-code vocabulary
// (docs/service.md §Messages, §Error codes).
#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"

namespace {

using namespace ehdse;
using svc::error_code;
using svc::parse_request;
using svc::protocol_error;

error_code code_of_throw(const obs::json_value& doc) {
    try {
        parse_request(doc);
    } catch (const protocol_error& e) {
        return e.code();
    }
    throw std::logic_error("expected protocol_error");
}

TEST(SvcProtocol, SubmitRoundTrip) {
    spec::experiment_spec request_spec;
    request_spec.scn.duration_s = 120.0;
    const obs::json_value doc =
        svc::make_submit("req-7", svc::workload::flow, request_spec);

    const svc::client_request request = parse_request(doc);
    EXPECT_EQ(request.kind, svc::request_kind::submit);
    EXPECT_EQ(request.id, "req-7");
    EXPECT_EQ(request.work, svc::workload::flow);
    EXPECT_EQ(request.spec, request_spec);
}

TEST(SvcProtocol, SubmitDefaultsToSimulate) {
    obs::json_value doc =
        svc::make_submit("r", svc::workload::simulate, spec::experiment_spec{});
    // Remove nothing — "kind" present. A kind-less submit also parses:
    obs::json_object bare;
    bare.emplace_back("type", obs::json_value("submit"));
    bare.emplace_back("id", obs::json_value("r"));
    bare.emplace_back("spec", spec::to_json(spec::experiment_spec{}));
    const svc::client_request request =
        parse_request(obs::json_value(std::move(bare)));
    EXPECT_EQ(request.work, svc::workload::simulate);
}

TEST(SvcProtocol, CancelPingStatsParse) {
    EXPECT_EQ(parse_request(svc::make_cancel("x")).kind,
              svc::request_kind::cancel);
    EXPECT_EQ(parse_request(svc::make_cancel("x")).id, "x");
    EXPECT_EQ(parse_request(svc::make_ping()).kind, svc::request_kind::ping);
    EXPECT_EQ(parse_request(svc::make_stats_request()).kind,
              svc::request_kind::stats);
}

TEST(SvcProtocol, NonObjectFrameIsBadFrame) {
    EXPECT_EQ(code_of_throw(obs::json_value(3.0)), error_code::bad_frame);
    EXPECT_EQ(code_of_throw(obs::json_value("ping")), error_code::bad_frame);
}

TEST(SvcProtocol, UnknownTypeIsBadType) {
    obs::json_object doc;
    doc.emplace_back("type", obs::json_value("frobnicate"));
    EXPECT_EQ(code_of_throw(obs::json_value(std::move(doc))),
              error_code::bad_type);
}

TEST(SvcProtocol, MissingOrBadFieldsAreBadType) {
    {  // submit without id
        obs::json_object doc;
        doc.emplace_back("type", obs::json_value("submit"));
        doc.emplace_back("spec", spec::to_json(spec::experiment_spec{}));
        EXPECT_EQ(code_of_throw(obs::json_value(std::move(doc))),
                  error_code::bad_type);
    }
    {  // cancel with numeric id
        obs::json_object doc;
        doc.emplace_back("type", obs::json_value("cancel"));
        doc.emplace_back("id", obs::json_value(7.0));
        EXPECT_EQ(code_of_throw(obs::json_value(std::move(doc))),
                  error_code::bad_type);
    }
    {  // submit with unknown workload kind
        obs::json_object doc;
        doc.emplace_back("type", obs::json_value("submit"));
        doc.emplace_back("id", obs::json_value("r"));
        doc.emplace_back("kind", obs::json_value("transmogrify"));
        doc.emplace_back("spec", spec::to_json(spec::experiment_spec{}));
        EXPECT_EQ(code_of_throw(obs::json_value(std::move(doc))),
                  error_code::bad_type);
    }
    {  // submit without spec
        obs::json_object doc;
        doc.emplace_back("type", obs::json_value("submit"));
        doc.emplace_back("id", obs::json_value("r"));
        EXPECT_EQ(code_of_throw(obs::json_value(std::move(doc))),
                  error_code::bad_type);
    }
}

TEST(SvcProtocol, OversizedIdIsBadType) {
    obs::json_object doc;
    doc.emplace_back("type", obs::json_value("cancel"));
    doc.emplace_back("id",
                     obs::json_value(std::string(svc::k_max_request_id + 1,
                                                 'x')));
    EXPECT_EQ(code_of_throw(obs::json_value(std::move(doc))),
              error_code::bad_type);
}

TEST(SvcProtocol, UnknownSpecSchemaIsBadSchema) {
    obs::json_value spec_doc = spec::to_json(spec::experiment_spec{});
    // Rewrite the schema tag to a version this server does not speak.
    for (auto& [key, value] : spec_doc.as_object())
        if (key == "schema") value = obs::json_value("ehdse.experiment_spec/99");
    obs::json_object doc;
    doc.emplace_back("type", obs::json_value("submit"));
    doc.emplace_back("id", obs::json_value("r"));
    doc.emplace_back("spec", std::move(spec_doc));
    EXPECT_EQ(code_of_throw(obs::json_value(std::move(doc))),
              error_code::bad_schema);
}

TEST(SvcProtocol, InvalidSpecIsBadSpec) {
    spec::experiment_spec bad;
    bad.scn.duration_s = -5.0;  // fails scenario::validate()
    obs::json_value doc = svc::make_submit("r", svc::workload::simulate, bad);
    EXPECT_EQ(code_of_throw(doc), error_code::bad_spec);
}

TEST(SvcProtocol, LegacySchemaStillAccepted) {
    obs::json_value spec_doc = spec::to_json(spec::experiment_spec{});
    obs::json_object legacy;
    for (const auto& [key, value] : spec_doc.as_object()) {
        if (key == "schema")
            legacy.emplace_back("schema",
                                obs::json_value(spec::k_spec_schema_legacy));
        else if (key == "flow")
            continue;  // /1 documents predate the flow registry fields
        else
            legacy.emplace_back(key, value);
    }
    obs::json_object doc;
    doc.emplace_back("type", obs::json_value("submit"));
    doc.emplace_back("id", obs::json_value("r"));
    doc.emplace_back("spec", obs::json_value(std::move(legacy)));
    EXPECT_NO_THROW(parse_request(obs::json_value(std::move(doc))));
}

TEST(SvcProtocol, ErrorCodeNamesRoundTrip) {
    for (const error_code code :
         {error_code::bad_frame, error_code::frame_too_large,
          error_code::bad_type, error_code::bad_schema, error_code::bad_spec,
          error_code::duplicate_id, error_code::unknown_id,
          error_code::too_late, error_code::queue_full,
          error_code::quota_exceeded, error_code::draining,
          error_code::internal}) {
        EXPECT_EQ(svc::error_code_from_string(svc::to_string(code)), code);
    }
    EXPECT_THROW(svc::error_code_from_string("no_such_code"),
                 std::invalid_argument);
}

TEST(SvcProtocol, WorkloadNamesRoundTrip) {
    EXPECT_EQ(svc::workload_from_string("simulate"), svc::workload::simulate);
    EXPECT_EQ(svc::workload_from_string("flow"), svc::workload::flow);
    EXPECT_THROW(svc::workload_from_string("sweep"), std::invalid_argument);
}

TEST(SvcProtocol, ServerFrameShapes) {
    const obs::json_value accepted = svc::make_accepted("r", "abcd", 3);
    EXPECT_EQ(accepted.at("type").as_string(), "accepted");
    EXPECT_EQ(accepted.at("id").as_string(), "r");
    EXPECT_EQ(accepted.at("spec_hash").as_string(), "abcd");
    EXPECT_EQ(accepted.at("queue_depth").as_number(), 3.0);

    const obs::json_value rejected =
        svc::make_rejected("r", error_code::queue_full, "full");
    EXPECT_EQ(rejected.at("type").as_string(), "rejected");
    EXPECT_EQ(rejected.at("code").as_string(), "queue_full");

    const obs::json_value pong = svc::make_pong("ehdsed");
    EXPECT_EQ(pong.at("type").as_string(), "pong");
    EXPECT_EQ(pong.at("protocol").as_string(), svc::k_protocol);

    const obs::json_value error =
        svc::make_error(error_code::too_late, "late", "r");
    EXPECT_EQ(error.at("type").as_string(), "error");
    EXPECT_EQ(error.at("id").as_string(), "r");

    const obs::json_value scoped = svc::make_error(error_code::bad_frame, "x");
    EXPECT_FALSE(scoped.contains("id"));

    const obs::json_value result = svc::make_result(
        "r", true, obs::json_value(obs::json_object{}), obs::json_value());
    EXPECT_EQ(result.at("status").as_string(), "ok");
}

/// Every frame builder emits compact JSON with no raw newline — the
/// property the framing layer's one-frame-per-line mapping rests on.
TEST(SvcProtocol, CompactDumpsNeverContainNewlines) {
    spec::experiment_spec request_spec;
    const obs::json_value frames[] = {
        svc::make_submit("id-with\nnewline", svc::workload::flow,
                         request_spec),
        svc::make_event("r", "progress", "line one\nline two"),
        svc::make_error(error_code::bad_frame, "text\nwith\nnewlines"),
    };
    for (const obs::json_value& frame : frames)
        EXPECT_EQ(frame.dump().find('\n'), std::string::npos);
}

}  // namespace
