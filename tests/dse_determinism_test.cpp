// Bitwise determinism of the flow under the execution engine: the same
// seed must produce identical responses, fit coefficients, and Table VI
// numbers whether the flow runs sequentially, on an owned pool of any
// size, on an external pool, or with the memoisation cache on or off.
#include <gtest/gtest.h>

#include "dse/rsm_flow.hpp"
#include "rsm/quadratic_model.hpp"
#include "exec/thread_pool.hpp"

namespace ed = ehdse::dse;

namespace {

ed::scenario flow_scenario() {
    ed::scenario s;
    s.duration_s = 1200.0;
    s.step_period_s = 500.0;
    s.step_count = 2;
    return s;
}

/// Exact equality — EXPECT_DOUBLE_EQ, not EXPECT_NEAR — across everything
/// Table VI reports plus the fitted surface itself.
void expect_identical(const ed::flow_result& a, const ed::flow_result& b) {
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i)
        EXPECT_DOUBLE_EQ(a.responses[i], b.responses[i]) << "response " << i;

    const ehdse::rsm::fit_result* fa = a.fit.quadratic();
    const ehdse::rsm::fit_result* fb = b.fit.quadratic();
    ASSERT_NE(fa, nullptr);
    ASSERT_NE(fb, nullptr);
    const auto& ca = fa->model.coefficients();
    const auto& cb = fb->model.coefficients();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i)
        EXPECT_DOUBLE_EQ(ca[i], cb[i]) << "coefficient " << i;
    EXPECT_DOUBLE_EQ(a.fit.r_squared, b.fit.r_squared);

    EXPECT_EQ(a.original_eval.transmissions, b.original_eval.transmissions);

    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        const auto& oa = a.outcomes[i];
        const auto& ob = b.outcomes[i];
        EXPECT_EQ(oa.name, ob.name);
        ASSERT_EQ(oa.coded.size(), ob.coded.size());
        for (std::size_t d = 0; d < oa.coded.size(); ++d)
            EXPECT_DOUBLE_EQ(oa.coded[d], ob.coded[d]) << oa.name;
        EXPECT_DOUBLE_EQ(oa.predicted, ob.predicted) << oa.name;
        EXPECT_EQ(oa.validated.transmissions, ob.validated.transmissions)
            << oa.name;
        EXPECT_DOUBLE_EQ(oa.config.mcu_clock_hz, ob.config.mcu_clock_hz);
        EXPECT_DOUBLE_EQ(oa.config.watchdog_period_s,
                         ob.config.watchdog_period_s);
        EXPECT_DOUBLE_EQ(oa.config.tx_interval_s, ob.config.tx_interval_s);
    }
}

const ed::flow_result& sequential_flow() {
    static const ed::flow_result result = [] {
        ed::system_evaluator ev(flow_scenario());
        return ed::run_rsm_flow(ev, {});
    }();
    return result;
}

}  // namespace

TEST(Determinism, ParallelJobsMatchSequential) {
    ed::system_evaluator ev(flow_scenario());
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        ed::flow_options opts;
        opts.parallel = true;
        opts.jobs = jobs;
        const auto parallel = ed::run_rsm_flow(ev, opts);
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        expect_identical(sequential_flow(), parallel);
    }
}

TEST(Determinism, ExternalPoolMatchesSequential) {
    ed::system_evaluator ev(flow_scenario());
    ehdse::exec::thread_pool pool(3);
    ed::flow_options opts;
    opts.pool = &pool;  // engages the pool even without `parallel`
    const auto result = ed::run_rsm_flow(ev, opts);
    expect_identical(sequential_flow(), result);
}

TEST(Determinism, CacheDoesNotChangeResults) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options no_cache;
    no_cache.cache = false;
    const auto uncached = ed::run_rsm_flow(ev, no_cache);
    expect_identical(sequential_flow(), uncached);
    // The default (cached) flow never misses the simulate-phase points.
    EXPECT_GT(sequential_flow().cache.misses, 0u);
    EXPECT_EQ(uncached.cache.misses, 0u);
}

TEST(Determinism, ReplicatedFlowsMatchAcrossModes) {
    ed::system_evaluator ev(flow_scenario());
    ed::flow_options seq, par;
    seq.replicates = par.replicates = 2;
    par.parallel = true;
    par.jobs = 4;
    const auto a = ed::run_rsm_flow(ev, seq);
    const auto b = ed::run_rsm_flow(ev, par);
    expect_identical(a, b);
    EXPECT_EQ(a.responses.size(), 20u);
}
