// Standalone validator for a run manifest produced by `ehdse_cli flow
// --metrics-out`. Registered in CTest behind the cli_flow_metrics fixture,
// so the acceptance path "the CLI writes a manifest and a test parses it"
// is exercised end-to-end against the real binary's real output file.
//
//   manifest_check <manifest.json> [expected_doe_runs]
//
// Exits 0 when the manifest is well-formed and complete, 1 with a message
// on the first violation.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/run_manifest.hpp"

namespace {

int fail(const std::string& what) {
    std::fprintf(stderr, "manifest_check: %s\n", what.c_str());
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return fail("usage: manifest_check <manifest.json> [doe_runs]");
    const std::size_t expected_runs =
        argc > 2 ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
                 : 0;

    std::ifstream in(argv[1]);
    if (!in) return fail(std::string("cannot read ") + argv[1]);
    std::ostringstream buf;
    buf << in.rdbuf();

    ehdse::obs::json_value doc;
    try {
        doc = ehdse::obs::json_value::parse(buf.str());
    } catch (const std::exception& e) {
        return fail(std::string("invalid JSON: ") + e.what());
    }

    try {
        if (doc.at("schema").as_string() != ehdse::obs::run_manifest::k_schema)
            return fail("unexpected schema id");

        // Per-phase wall times: every flow phase present and timed.
        const auto& phases = doc.at("phases").as_array();
        if (phases.empty()) return fail("no phases recorded");
        bool saw_simulate = false;
        for (const auto& p : phases) {
            if (p.at("wall_s").as_number() < 0.0)
                return fail("negative phase wall time");
            if (p.at("name").as_string() == "simulate") saw_simulate = true;
        }
        if (!saw_simulate) return fail("no 'simulate' phase");

        // Per-design-point simulation stats.
        const auto& runs = doc.at("runs").as_array();
        std::size_t design_points = 0;
        for (const auto& r : runs) {
            if (r.at("ode_steps").as_number() <= 0.0)
                return fail("run without ODE steps");
            if (r.at("events").as_number() <= 0.0)
                return fail("run without events");
            if (r.at("wall_s").as_number() < 0.0)
                return fail("negative run wall time");
            if (!r.at("sim_ok").as_bool()) return fail("failed simulation");
            if (r.at("config").at("mcu_clock_hz").as_number() <= 0.0)
                return fail("run without a configuration");
            if (r.at("kind").as_string() == "design_point") ++design_points;
        }
        if (expected_runs && design_points != expected_runs)
            return fail("expected " + std::to_string(expected_runs) +
                        " design points, found " + std::to_string(design_points));

        // Per-optimiser evaluation counts; SA must report acceptance.
        const auto& optimizers = doc.at("optimizers").as_array();
        if (optimizers.empty()) return fail("no optimizer records");
        bool saw_acceptance = false;
        for (const auto& o : optimizers) {
            if (o.at("evaluations").as_number() <= 0.0)
                return fail("optimizer without evaluations");
            if (const auto* rate = o.find("acceptance_rate")) {
                const double v = rate->as_number();
                if (v < 0.0 || v > 1.0) return fail("acceptance rate out of range");
                saw_acceptance = true;
            }
        }
        if (!saw_acceptance)
            return fail("no optimizer reported an acceptance rate");

        // The metrics snapshot rides along with live counters.
        const auto& counters = doc.at("metrics").at("counters");
        if (counters.at("sim.ode_steps").as_number() <= 0.0)
            return fail("metrics snapshot missing sim.ode_steps");
        if (counters.at("dse.evaluate.runs").as_number() <
            static_cast<double>(design_points))
            return fail("metrics snapshot undercounts evaluations");
    } catch (const std::exception& e) {
        return fail(std::string("manifest incomplete: ") + e.what());
    }

    std::printf("manifest_check: %s ok\n", argv[1]);
    return 0;
}
