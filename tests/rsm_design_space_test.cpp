// Coded-variable transform (paper eq. 3) and design-space plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "rsm/design_space.hpp"

namespace er = ehdse::rsm;

namespace {
er::design_space paper_like() {
    return er::design_space({
        {"clock", 125e3, 8e6, er::axis_scale::linear},
        {"watchdog", 60.0, 600.0, er::axis_scale::linear},
        {"interval", 0.005, 10.0, er::axis_scale::linear},
    });
}
}  // namespace

TEST(DesignSpace, EndpointsCodeToPlusMinusOne) {
    const auto space = paper_like();
    for (std::size_t i = 0; i < space.dimension(); ++i) {
        EXPECT_NEAR(space.code(i, space.parameter(i).min), -1.0, 1e-12);
        EXPECT_NEAR(space.code(i, space.parameter(i).max), +1.0, 1e-12);
    }
}

TEST(DesignSpace, CenterCodesToZero) {
    const auto space = paper_like();
    EXPECT_NEAR(space.code(0, (125e3 + 8e6) / 2.0), 0.0, 1e-12);
    EXPECT_NEAR(space.code(1, 330.0), 0.0, 1e-12);
}

TEST(DesignSpace, VectorFormsAndValidation) {
    const auto space = paper_like();
    const ehdse::numeric::vec natural{4e6, 320.0, 5.0};
    const auto coded = space.code(natural);
    EXPECT_EQ(coded.size(), 3u);
    const auto back = space.decode(coded);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], natural[i], 1e-9);
    EXPECT_THROW(space.code(ehdse::numeric::vec{1.0}), std::invalid_argument);
    EXPECT_THROW(space.decode(ehdse::numeric::vec{1.0}), std::invalid_argument);
}

TEST(DesignSpace, ClampAndContains) {
    const auto space = paper_like();
    const auto clamped = space.clamp({-3.0, 0.5, 2.0});
    EXPECT_DOUBLE_EQ(clamped[0], -1.0);
    EXPECT_DOUBLE_EQ(clamped[1], 0.5);
    EXPECT_DOUBLE_EQ(clamped[2], 1.0);
    EXPECT_TRUE(space.contains(clamped));
    EXPECT_FALSE(space.contains({-3.0, 0.0, 0.0}));
    EXPECT_FALSE(space.contains({0.0, 0.0}));  // wrong dimension
}

TEST(DesignSpace, LogScaleRoundTrip) {
    er::design_space space({{"clock", 125e3, 8e6, er::axis_scale::logarithmic}});
    EXPECT_NEAR(space.code(0, 125e3), -1.0, 1e-12);
    EXPECT_NEAR(space.code(0, 8e6), 1.0, 1e-12);
    // Geometric centre codes to zero on a log axis.
    EXPECT_NEAR(space.code(0, std::sqrt(125e3 * 8e6)), 0.0, 1e-12);
    EXPECT_NEAR(space.decode(0, space.code(0, 1e6)), 1e6, 1e-3);
}

TEST(DesignSpace, InvalidRangesThrow) {
    EXPECT_THROW(er::design_space({{"x", 1.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(er::design_space({{"x", 2.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(er::design_space({{"x", -1.0, 1.0, er::axis_scale::logarithmic}}),
                 std::invalid_argument);
    EXPECT_THROW(paper_like().parameter(7), std::out_of_range);
}

// Round-trip property across ranges and values.
class CodingRoundTrip : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CodingRoundTrip, DecodeInvertsCode) {
    const auto [lo, width] = GetParam();
    er::design_space space({{"p", lo, lo + width}});
    for (double frac : {0.0, 0.1, 0.25, 0.5, 0.77, 1.0}) {
        const double natural = lo + frac * width;
        const double coded = space.code(0, natural);
        EXPECT_GE(coded, -1.0 - 1e-12);
        EXPECT_LE(coded, 1.0 + 1e-12);
        EXPECT_NEAR(space.decode(0, coded), natural,
                    1e-12 * (std::abs(natural) + width));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, CodingRoundTrip,
    ::testing::Values(std::make_tuple(0.005, 9.995), std::make_tuple(-5.0, 10.0),
                      std::make_tuple(125e3, 7.875e6), std::make_tuple(60.0, 540.0),
                      std::make_tuple(-1e6, 2e6)));
