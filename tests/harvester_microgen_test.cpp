// Microgenerator physics: tuning law, resonance, linear response.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "harvester/microgenerator.hpp"

namespace eh = ehdse::harvester;

namespace {
constexpr double two_pi = 2.0 * std::numbers::pi;
}

TEST(Microgenerator, DerivedConstants) {
    eh::microgenerator gen;
    const auto& p = gen.params();
    const double w0 = two_pi * p.f_nominal_hz;
    EXPECT_NEAR(gen.base_stiffness(), p.mass_kg * w0 * w0, 1e-9);
    EXPECT_NEAR(gen.mech_damping(),
                2.0 * p.damping_ratio * std::sqrt(gen.base_stiffness() * p.mass_kg),
                1e-12);
}

TEST(Microgenerator, InvalidParamsThrow) {
    eh::microgenerator_params p;
    p.mass_kg = 0.0;
    EXPECT_THROW(eh::microgenerator{p}, std::invalid_argument);
    p = {};
    p.gap_min_m = 0.01;
    p.gap_max_m = 0.005;
    EXPECT_THROW(eh::microgenerator{p}, std::invalid_argument);
    p = {};
    p.damping_ratio = 0.0;
    EXPECT_THROW(eh::microgenerator{p}, std::invalid_argument);
}

TEST(Microgenerator, GapMonotoneDecreasingInPosition) {
    eh::microgenerator gen;
    double last = gen.gap_at(0);
    EXPECT_DOUBLE_EQ(last, gen.params().gap_max_m);
    for (int p = 1; p < 256; ++p) {
        const double g = gen.gap_at(p);
        EXPECT_LT(g, last);
        last = g;
    }
    EXPECT_DOUBLE_EQ(last, gen.params().gap_min_m);
    EXPECT_THROW(gen.gap_at(-1), std::out_of_range);
    EXPECT_THROW(gen.gap_at(256), std::out_of_range);
}

TEST(Microgenerator, MagneticForceInverseFourthPower) {
    eh::microgenerator gen;
    const double f1 = gen.magnetic_force(0.005);
    const double f2 = gen.magnetic_force(0.010);
    EXPECT_NEAR(f1 / f2, 16.0, 1e-9);
    EXPECT_THROW(gen.magnetic_force(0.0), std::invalid_argument);
}

TEST(Microgenerator, CalibratedTuningRange) {
    eh::microgenerator gen;
    // DESIGN.md calibration: ~64 Hz at position 0, ~88 Hz at position 255.
    EXPECT_NEAR(gen.min_frequency(), 64.0, 0.2);
    EXPECT_NEAR(gen.max_frequency(), 88.0, 0.2);
}

TEST(Microgenerator, ResonantFrequencyMonotoneInPosition) {
    eh::microgenerator gen;
    double last = gen.resonant_frequency(0);
    for (int p = 1; p < 256; ++p) {
        const double f = gen.resonant_frequency(p);
        EXPECT_GT(f, last);
        last = f;
    }
}

TEST(Microgenerator, ResponsePeaksAtResonance) {
    eh::microgenerator gen;
    const int pos = 128;
    const double fr = gen.resonant_frequency(pos);
    const double a = 0.5886;  // 60 mg
    const double at_res =
        gen.response(two_pi * fr, a, pos, 0.0).displacement_amp_m;
    const double below =
        gen.response(two_pi * (fr - 3.0), a, pos, 0.0).displacement_amp_m;
    const double above =
        gen.response(two_pi * (fr + 3.0), a, pos, 0.0).displacement_amp_m;
    EXPECT_GT(at_res, 3.0 * below);
    EXPECT_GT(at_res, 3.0 * above);
}

TEST(Microgenerator, ResonantAmplitudeMatchesClosedForm) {
    eh::microgenerator gen;
    const int pos = 0;
    const double fr = gen.resonant_frequency(pos);
    const double w = two_pi * fr;
    const double a = 0.1;
    const auto r = gen.response(w, a, pos, 0.0);
    // At resonance |Z| = m A / (c w).
    const double expected = gen.params().mass_kg * a / (gen.mech_damping() * w);
    if (!r.displacement_limited)
        EXPECT_NEAR(r.displacement_amp_m, expected, expected * 1e-9);
}

TEST(Microgenerator, EmfProportionalToVelocity) {
    eh::microgenerator gen;
    const auto r = gen.response(two_pi * 70.0, 0.3, 100, 0.01);
    EXPECT_NEAR(r.velocity_amp_ms, two_pi * 70.0 * r.displacement_amp_m, 1e-12);
    EXPECT_NEAR(r.emf_amp_v, gen.params().coupling_v_per_ms * r.velocity_amp_ms,
                1e-12);
}

TEST(Microgenerator, DisplacementLimiterEngages) {
    eh::microgenerator_params p;
    p.max_displacement_m = 1e-6;  // absurdly tight stop
    eh::microgenerator gen(p);
    const double fr = gen.resonant_frequency(0);
    const auto r = gen.response(two_pi * fr, 0.5886, 0, 0.0);
    EXPECT_TRUE(r.displacement_limited);
    EXPECT_DOUBLE_EQ(r.displacement_amp_m, 1e-6);
}

TEST(Microgenerator, ElectricalDampingReducesAmplitude) {
    eh::microgenerator gen;
    const double fr = gen.resonant_frequency(50);
    const double w = two_pi * fr;
    const double open = gen.response(w, 0.5886, 50, 0.0).displacement_amp_m;
    const double damped = gen.response(w, 0.5886, 50, 0.1).displacement_amp_m;
    EXPECT_LT(damped, open);
}

TEST(Microgenerator, QualityFactorAndSettlingTau) {
    eh::microgenerator gen;
    const double q_open = gen.quality_factor(0, 0.0);
    EXPECT_NEAR(q_open, 1.0 / (2.0 * gen.params().damping_ratio) *
                            std::sqrt(gen.effective_stiffness(0) / gen.base_stiffness()),
                q_open * 0.01);
    EXPECT_GT(q_open, gen.quality_factor(0, 0.05));
    EXPECT_NEAR(gen.settling_tau(0.0), 2.0 * gen.params().mass_kg / gen.mech_damping(),
                1e-12);
    EXPECT_LT(gen.settling_tau(0.1), gen.settling_tau(0.0));
}

TEST(Microgenerator, ResponseInputValidation) {
    eh::microgenerator gen;
    EXPECT_THROW(gen.response(0.0, 1.0, 0, 0.0), std::invalid_argument);
    EXPECT_THROW(gen.response(1.0, 1.0, 0, -0.1), std::invalid_argument);
}
