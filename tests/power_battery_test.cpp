// Thin-film battery storage model and its use through the storage_model
// interface in a whole-system run.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dse/system_evaluator.hpp"
#include "power/battery.hpp"

namespace ep = ehdse::power;

TEST(Battery, ParameterValidation) {
    ep::battery_params p;
    p.capacity_c = 0.0;
    EXPECT_THROW(ep::thin_film_battery{p}, std::invalid_argument);
    p = {};
    p.v_full = p.v_empty;
    EXPECT_THROW(ep::thin_film_battery{p}, std::invalid_argument);
    p = {};
    p.charge_current_limit_a = 0.0;
    EXPECT_THROW(ep::thin_film_battery{p}, std::invalid_argument);
}

TEST(Battery, StateOfChargeLinearInVoltage) {
    ep::thin_film_battery bat;
    const auto& p = bat.params();
    EXPECT_DOUBLE_EQ(bat.state_of_charge(p.v_empty), 0.0);
    EXPECT_DOUBLE_EQ(bat.state_of_charge(p.v_full), 1.0);
    EXPECT_NEAR(bat.state_of_charge((p.v_empty + p.v_full) / 2.0), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(bat.state_of_charge(0.0), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(bat.state_of_charge(10.0), 1.0);  // clamped
}

TEST(Battery, EffectiveCapacitance) {
    ep::thin_film_battery bat;
    const auto& p = bat.params();
    EXPECT_NEAR(bat.effective_capacitance(),
                p.capacity_c / (p.v_full - p.v_empty), 1e-12);
    // A 1 mAh cell over 0.35 V is a "10 F class" equivalent store.
    EXPECT_GT(bat.effective_capacitance(), 5.0);
}

TEST(Battery, WithdrawalConsistentWithEnergy) {
    ep::thin_film_battery bat;
    const double v0 = 3.0;
    const double joules = 0.05;
    const double v1 = bat.voltage_after_withdrawal(v0, joules);
    EXPECT_LT(v1, v0);
    EXPECT_NEAR(bat.energy_at(v0) - bat.energy_at(v1), joules, 1e-9);
    EXPECT_THROW(bat.voltage_after_withdrawal(v0, -1.0), std::invalid_argument);
    // Overdraw floors at the empty voltage, not zero.
    EXPECT_DOUBLE_EQ(bat.voltage_after_withdrawal(v0, 1e9),
                     bat.params().v_empty);
}

TEST(Battery, ChargeAcceptanceLimit) {
    ep::thin_film_battery bat;
    const double v = 2.9;
    const double slope_ok = bat.dv_dt(v, 1e-3);
    const double slope_capped = bat.dv_dt(v, 1.0);  // 1 A demanded
    EXPECT_GT(slope_ok, 0.0);
    EXPECT_NEAR(slope_capped,
                (bat.params().charge_current_limit_a - bat.params().self_discharge_a) /
                    bat.effective_capacitance(),
                1e-12);
}

TEST(Battery, WindowClamps) {
    ep::thin_film_battery bat;
    EXPECT_DOUBLE_EQ(bat.dv_dt(bat.params().v_full, 1e-3), 0.0);   // full: no charge
    EXPECT_DOUBLE_EQ(bat.dv_dt(bat.params().v_empty, -1e-3), 0.0); // empty: no drain
    EXPECT_LT(bat.dv_dt(bat.params().v_full, -1e-3), 0.0);         // discharge ok
    EXPECT_DOUBLE_EQ(bat.max_voltage(), bat.params().v_full);
}

TEST(Battery, WholeSystemRunThroughEvaluator) {
    // Battery-backed node: the terminal voltage stays above the 2.8 V band
    // for the whole hour, so the node runs at its fast interval throughout.
    ehdse::dse::scenario s;
    s.duration_s = 600.0;
    s.v_initial = 2.95;
    s.step_period_s = 250.0;
    s.step_count = 1;
    ehdse::dse::system_evaluator ev(s);
    ev.set_storage(std::make_shared<ep::thin_film_battery>());
    const auto r = ev.evaluate(ehdse::dse::system_config::original());
    EXPECT_TRUE(r.sim_ok);
    EXPECT_EQ(r.transmissions, 121u);  // 600 s / 5 s + the t=0 burst
    EXPECT_GT(r.min_voltage_v, 2.8);
    // Millivolt-scale swing: the battery buffers everything.
    EXPECT_LT(r.max_voltage_v - r.min_voltage_v, 0.05);

    // Restoring the default supercapacitor changes the behaviour again.
    ev.set_storage(nullptr);
    const auto r2 = ev.evaluate(ehdse::dse::system_config::original());
    EXPECT_GT(r2.max_voltage_v - r2.min_voltage_v,
              r.max_voltage_v - r.min_voltage_v);
}
