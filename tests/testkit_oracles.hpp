// Shared metamorphic / differential oracles: each function checks ONE
// cross-layer invariant for one concrete input and throws
// testkit::property_failure (via require) when it is violated. The
// property suites run them over ~10^2 generated cases; the regression
// suite replays each one on a pinned shrunk case from
// tests/data/regressions/ — same oracle code, no PRNG.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "doe/design.hpp"
#include "dse/cached_evaluator.hpp"
#include "dse/rsm_flow.hpp"
#include "dse/system_evaluator.hpp"
#include "numeric/rng.hpp"
#include "opt/genetic_algorithm.hpp"
#include "opt/optimizer.hpp"
#include "opt/simulated_annealing.hpp"
#include "rsm/quadratic_model.hpp"
#include "rsm/surrogate.hpp"
#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"
#include "testkit/generators.hpp"
#include "testkit/property.hpp"

namespace ehdse::testkit::oracles {

// --- spec layer ------------------------------------------------------------

/// serialise -> parse recovers the identical spec; re-serialising the
/// parsed spec is byte-identical (the golden-file guarantee).
inline void check_spec_roundtrip(const spec::experiment_spec& s) {
    const std::string text = spec::to_json(s).dump();
    const spec::experiment_spec parsed = spec::parse_spec(text);
    require(parsed == s, "parse(serialise(spec)) != spec");
    require(spec::to_json(parsed).dump() == text,
            "serialise -> parse -> serialise is not byte-identical");
}

/// canonicalized() is idempotent, valid, and hash-stable across a JSON
/// round trip.
inline void check_canonical_idempotence(const spec::experiment_spec& s) {
    const spec::experiment_spec c1 = s.canonicalized();
    const spec::experiment_spec c2 = c1.canonicalized();
    require(c1 == c2, "canonicalized() is not idempotent");
    c1.validate();  // canonicalisation must never invalidate a valid spec
    require(spec::spec_hash(c1) == spec::spec_hash(c2),
            "idempotent canonical forms hash differently");
    const spec::experiment_spec parsed =
        spec::parse_spec(spec::to_json(s).dump());
    require(spec::spec_hash(s) == spec::spec_hash(parsed),
            "spec_hash changed across a JSON round trip");
}

// --- evaluator / cache -----------------------------------------------------

/// Exact equality of every deterministic field of two evaluation results
/// (wall_time_s is excluded — it is the one legitimately nondeterministic
/// field).
inline void require_results_bit_equal(const dse::evaluation_result& a,
                                      const dse::evaluation_result& b,
                                      const std::string& what) {
    const auto eq = [&](bool ok, const char* field) {
        if (!ok) fail(what + ": field '" + field + "' differs");
    };
    eq(a.transmissions == b.transmissions, "transmissions");
    eq(a.suppressed_wakeups == b.suppressed_wakeups, "suppressed_wakeups");
    eq(a.low_band_transmissions == b.low_band_transmissions,
       "low_band_transmissions");
    eq(a.final_voltage_v == b.final_voltage_v, "final_voltage_v");
    eq(a.min_voltage_v == b.min_voltage_v, "min_voltage_v");
    eq(a.max_voltage_v == b.max_voltage_v, "max_voltage_v");
    eq(a.harvested_energy_j == b.harvested_energy_j, "harvested_energy_j");
    eq(a.sustained_load_energy_j == b.sustained_load_energy_j,
       "sustained_load_energy_j");
    eq(a.withdrawn_energy_j == b.withdrawn_energy_j, "withdrawn_energy_j");
    eq(a.ode_steps == b.ode_steps, "ode_steps");
    eq(a.events == b.events, "events");
    eq(a.sim_ok == b.sim_ok, "sim_ok");
}

/// Cached and uncached evaluation of the same request are bit-equal, a
/// repeat request hits the cache, and a request differing only in
/// canonicalised-away fields hits too.
inline void check_cache_bit_equality(const spec::experiment_spec& s) {
    const dse::system_evaluator inner(s.scn, s.harv);
    const dse::cached_evaluator cached(inner, 8);
    const dse::evaluation_result direct = inner.evaluate(s.config, s.eval);
    const dse::evaluation_result first = cached.evaluate(s.config, s.eval);
    const dse::evaluation_result repeat = cached.evaluate(s.config, s.eval);
    require(cached.stats().hits >= 1,
            "repeat of an identical request missed the cache");
    require_results_bit_equal(direct, first, "cached vs uncached");
    require_results_bit_equal(first, repeat, "cache hit vs stored result");
    if (!s.eval.record_traces) {
        // trace_interval_s is unobservable with traces off; the cache key
        // canonicalises it away, so this must be a hit, not a re-run.
        dse::evaluation_options alias = s.eval;
        alias.trace_interval_s = s.eval.trace_interval_s + 1.0;
        const std::uint64_t hits_before = cached.stats().hits;
        const dse::evaluation_result aliased = cached.evaluate(s.config, alias);
        require(cached.stats().hits == hits_before + 1,
                "canonically-equal request missed the cache");
        require_results_bit_equal(first, aliased, "canonical alias hit");
    }
}

/// Equivalence of a batch-kernel result with its scalar counterpart. The
/// batch path solves the same envelope fixed point with a polynomial
/// asin, so continuous fields agree to solver tolerance rather than bit
/// for bit, and event-driven integer counters may shift by a count or
/// two when a decision threshold is crossed within that tolerance.
/// ode_steps is not compared at all — step-size control legitimately
/// differs at the last ulp.
inline void require_results_equivalent(const dse::evaluation_result& a,
                                       const dse::evaluation_result& b,
                                       const std::string& what) {
    const auto near_count = [&](std::uint64_t x, std::uint64_t y,
                                const char* field) {
        const std::uint64_t hi = std::max(x, y);
        const std::uint64_t diff = hi - std::min(x, y);
        const std::uint64_t slack =
            std::max<std::uint64_t>(2, hi / 500);  // 2 counts or 0.2%
        if (diff > slack) {
            std::ostringstream os;
            os << what << ": field '" << field << "' diverged: " << x
               << " vs " << y;
            fail(os.str());
        }
    };
    const auto near_value = [&](double x, double y, const char* field) {
        const double tol = 1e-6 + 1e-3 * std::max(std::abs(x), std::abs(y));
        if (!(std::abs(x - y) <= tol)) {
            std::ostringstream os;
            os << what << ": field '" << field << "' diverged: " << x
               << " vs " << y;
            fail(os.str());
        }
    };
    if (a.sim_ok != b.sim_ok) fail(what + ": sim_ok differs");
    near_count(a.transmissions, b.transmissions, "transmissions");
    near_count(a.suppressed_wakeups, b.suppressed_wakeups,
               "suppressed_wakeups");
    near_count(a.low_band_transmissions, b.low_band_transmissions,
               "low_band_transmissions");
    near_count(a.events, b.events, "events");
    near_value(a.final_voltage_v, b.final_voltage_v, "final_voltage_v");
    near_value(a.min_voltage_v, b.min_voltage_v, "min_voltage_v");
    near_value(a.max_voltage_v, b.max_voltage_v, "max_voltage_v");
    near_value(a.harvested_energy_j, b.harvested_energy_j,
               "harvested_energy_j");
    near_value(a.sustained_load_energy_j, b.sustained_load_energy_j,
               "sustained_load_energy_j");
    near_value(a.withdrawn_energy_j, b.withdrawn_energy_j,
               "withdrawn_energy_j");
}

/// Differential property of the SoA batch kernel. The batch width and the
/// extra lane configs derive deterministically from the spec (hash-seeded
/// PRNG), so a pinned spec replays the identical case. Two invariants:
///
///  1. Lane independence, bitwise: evaluating a config in a batch of B
///     equals evaluating it alone through the same kernel, field for
///     field including ode_steps — masked lockstep means batch
///     composition must not leak into any lane.
///  2. Scalar equivalence, to tolerance: each lane agrees with the scalar
///     evaluate() path per require_results_equivalent.
inline void check_batch_vs_scalar(const spec::experiment_spec& s) {
    // The kernel covers envelope fidelity without traces; other requests
    // fall back to the scalar path and are exercised elsewhere.
    spec::evaluation_options eval = s.eval;
    eval.model = spec::fidelity::envelope;
    eval.record_traces = false;

    const std::uint64_t seed = spec::spec_hash(s);
    prng lane_rng(seed);
    const std::size_t width = 1 + static_cast<std::size_t>(seed % 16);
    std::vector<dse::system_config> configs;
    configs.push_back(s.config);
    while (configs.size() < width) configs.push_back(gen_system_config(lane_rng));

    const dse::system_evaluator evaluator(s.scn, s.harv);
    const std::vector<dse::evaluation_result> batch =
        evaluator.evaluate_batch(configs, eval);
    require(batch.size() == configs.size(),
            "evaluate_batch returned the wrong number of results");

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const std::string lane = "lane " + std::to_string(i) + "/" +
                                 std::to_string(configs.size());
        const std::vector<dse::evaluation_result> alone = evaluator.evaluate_batch(
            std::span<const dse::system_config>(&configs[i], 1), eval);
        require_results_bit_equal(batch[i], alone.front(),
                                  lane + " batched vs alone (independence)");
        require_results_equivalent(batch[i], evaluator.evaluate(configs[i], eval),
                                   lane + " batch kernel vs scalar path");
    }
}

// --- flow ------------------------------------------------------------------

/// A sequential flow and a 3-worker parallel flow over the same spec
/// produce identical responses, fits, and optimiser outcomes.
inline void check_jobs_determinism(const spec::experiment_spec& s) {
    const dse::system_evaluator evaluator(s.scn, s.harv);
    dse::flow_options seq = dse::flow_options_from_spec(s);
    seq.parallel = false;
    seq.jobs = 0;
    dse::flow_options par = dse::flow_options_from_spec(s);
    par.parallel = true;
    par.jobs = 3;
    const dse::flow_result a = dse::run_rsm_flow(evaluator, seq);
    const dse::flow_result b = dse::run_rsm_flow(evaluator, par);
    require(a.responses == b.responses,
            "design-point responses differ between --jobs 1 and --jobs 3");
    require(a.fit.r_squared == b.fit.r_squared,
            "fit r_squared differs under parallel execution");
    require(a.outcomes.size() == b.outcomes.size(),
            "optimiser outcome count differs under parallel execution");
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        const dse::optimizer_outcome& oa = a.outcomes[i];
        const dse::optimizer_outcome& ob = b.outcomes[i];
        require(oa.name == ob.name, "optimiser order differs");
        require(oa.coded == ob.coded,
                oa.name + ": optimum coded point differs under parallel");
        require(oa.predicted == ob.predicted,
                oa.name + ": predicted optimum differs under parallel");
        require_results_bit_equal(oa.validated, ob.validated,
                                  oa.name + ": validation run");
    }
}

// --- surrogate -------------------------------------------------------------

/// The quadratic surrogate reproduces a synthetic quadratic exactly when
/// trained on any registered design family's points.
inline void check_quadratic_exactness(const std::string& design,
                                      std::uint64_t seed) {
    prng r(seed);
    const std::size_t k = 3;
    const numeric::vec beta = gen_quadratic_coefficients(r, k);
    doe::design_request request;
    request.name = design;
    request.dimension = k;
    // 14 > 10 coefficients, so even the sampled families are comfortably
    // overdetermined (an exact quadratic has zero residual regardless).
    request.runs = 14;
    request.factorial_levels = 3;
    request.basis = [](const numeric::vec& x) {
        return rsm::quadratic_basis(x);
    };
    const doe::design_result d = doe::make_design(request);
    require(d.points.size() >= 10,
            design + ": design too small to determine a quadratic");
    numeric::vec y(d.points.size(), 0.0);
    for (std::size_t i = 0; i < d.points.size(); ++i)
        y[i] = eval_quadratic(beta, d.points[i]);
    const rsm::surrogate_fit fit =
        rsm::make_surrogate("quadratic")->fit(d.points, y);
    for (std::size_t i = 0; i < 5; ++i) {
        const numeric::vec x = gen_coded_point(r, k);
        require_near(fit.predict(x), eval_quadratic(beta, x), 1e-4,
                     design + ": quadratic surrogate is not exact");
    }
}

// --- optimisers ------------------------------------------------------------

/// Doubling an optimiser's budget under the same seed never worsens the
/// reported optimum (both run the same iteration prefix; the incumbent is
/// best-ever).
inline void check_budget_monotonicity(std::uint64_t seed) {
    prng r(seed);
    const numeric::vec beta = gen_quadratic_coefficients(r, 3);
    const opt::objective_fn f = [beta](const numeric::vec& x) {
        return eval_quadratic(beta, x);
    };
    opt::box_bounds bounds;
    bounds.lo = numeric::vec(3, -1.0);
    bounds.hi = numeric::vec(3, 1.0);
    const std::uint64_t opt_seed = r.next();
    {
        opt::sa_options small;
        small.max_epochs = 30;
        small.steps_per_epoch = 10;
        small.calibration_samples = 8;
        opt::sa_options big = small;
        big.max_epochs = 60;
        numeric::rng r1(opt_seed), r2(opt_seed);
        const double v1 =
            opt::simulated_annealing(small).maximize(f, bounds, r1).best_value;
        const double v2 =
            opt::simulated_annealing(big).maximize(f, bounds, r2).best_value;
        std::ostringstream os;
        os << "SA optimum worsened when max_epochs doubled: " << v1 << " -> "
           << v2;
        require(v2 >= v1, os.str());
    }
    {
        opt::ga_options small;
        small.population = 16;
        small.generations = 10;
        opt::ga_options big = small;
        big.generations = 25;
        numeric::rng r1(opt_seed), r2(opt_seed);
        const double v1 =
            opt::genetic_algorithm(small).maximize(f, bounds, r1).best_value;
        const double v2 =
            opt::genetic_algorithm(big).maximize(f, bounds, r2).best_value;
        std::ostringstream os;
        os << "GA optimum worsened when generations grew: " << v1 << " -> "
           << v2;
        require(v2 >= v1, os.str());
    }
}

}  // namespace ehdse::testkit::oracles
