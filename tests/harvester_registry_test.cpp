// The harvester-backend registry contract plus the electrostatic device
// class itself: registry listings, construction by name, the per-backend
// invariants every entry must satisfy (ascending tuning law, tuning-table
// compatibility, sane describe()), and the electrostatic physics — bias
// ramp, spring softening, charge-pump extraction, and the envelope /
// transient energy agreement the equivalent-damping construction promises.
#include <cmath>
#include <memory>
#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

#include "dse/system_evaluator.hpp"
#include "harvester/electromagnetic.hpp"
#include "harvester/electrostatic.hpp"
#include "harvester/harvester_model.hpp"
#include "harvester/tuning_table.hpp"
#include "harvester/vibration.hpp"
#include "power/load_bank.hpp"
#include "power/supercapacitor.hpp"

namespace {

using namespace ehdse;
namespace eh = ehdse::harvester;

TEST(HarvesterRegistry, ListsBothDeviceClasses) {
    const auto& registry = eh::harvester_registry();
    ASSERT_EQ(registry.size(), 2u);
    // The paper's device stays first: it is the default every legacy spec
    // resolves to.
    EXPECT_EQ(registry[0].name, "electromagnetic");
    EXPECT_EQ(registry[1].name, "electrostatic");
    for (const eh::harvester_info& info : registry) {
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_TRUE(eh::is_known_harvester(info.name)) << info.name;
    }
    EXPECT_FALSE(eh::is_known_harvester("piezoelectric"));
    EXPECT_NE(eh::harvester_names().find("electromagnetic"), std::string::npos);
    EXPECT_NE(eh::harvester_names().find("electrostatic"), std::string::npos);
}

TEST(HarvesterRegistry, MakeHarvesterBuildsEveryEntry) {
    for (const eh::harvester_info& info : eh::harvester_registry()) {
        const auto model = eh::make_harvester(info.name);
        ASSERT_NE(model, nullptr) << info.name;
        EXPECT_EQ(model->name(), info.name);
        // Both device classes use the paper's 8-bit actuator resolution.
        EXPECT_EQ(model->position_count(), 256) << info.name;
        const obs::json_value doc = model->describe();
        EXPECT_TRUE(doc.is_object()) << info.name;
        EXPECT_EQ(doc.at("name").as_string(), info.name);
    }
}

TEST(HarvesterRegistry, UnknownNameIsRejectedListingChoices) {
    try {
        (void)eh::make_harvester("piezoelectric");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("piezoelectric"), std::string::npos);
        EXPECT_NE(what.find("electromagnetic"), std::string::npos);
        EXPECT_NE(what.find("electrostatic"), std::string::npos);
    }
}

TEST(HarvesterRegistry, TuningLawAscendsForEveryEntry) {
    for (const eh::harvester_info& info : eh::harvester_registry()) {
        const auto model = eh::make_harvester(info.name);
        double prev = model->resonant_frequency(0);
        for (int pos = 1; pos < model->position_count(); ++pos) {
            const double f = model->resonant_frequency(pos);
            EXPECT_GT(f, prev) << info.name << " position " << pos;
            prev = f;
        }
        EXPECT_DOUBLE_EQ(model->min_frequency(), model->resonant_frequency(0));
        EXPECT_DOUBLE_EQ(
            model->max_frequency(),
            model->resonant_frequency(model->position_count() - 1));
    }
}

TEST(HarvesterRegistry, TuningTableAcceptsEveryEntry) {
    for (const eh::harvester_info& info : eh::harvester_registry()) {
        const auto model = eh::make_harvester(info.name);
        const eh::tuning_table table(*model);
        EXPECT_DOUBLE_EQ(table.min_frequency(), model->min_frequency());
        EXPECT_DOUBLE_EQ(table.max_frequency(), model->max_frequency());
        // The table must invert the tuning law exactly at its own samples.
        for (int pos : {0, 17, 128, 255})
            EXPECT_EQ(table.lookup(model->resonant_frequency(pos)), pos)
                << info.name;
    }
}

TEST(HarvesterRegistry, ActuatorCostsMatchEachMechanism) {
    // Electromagnetic: the Haydon stepper (milliseconds, millijoules).
    const eh::retune_cost em = eh::make_harvester("electromagnetic")->actuator();
    EXPECT_DOUBLE_EQ(em.step_time_s, 5.0e-3);
    EXPECT_DOUBLE_EQ(em.single_step_energy_j, 4.06e-3);
    EXPECT_DOUBLE_EQ(em.multi_step_energy_j, 2.03e-3);
    EXPECT_DOUBLE_EQ(em.min_drive_voltage_v, 2.6);
    // Electrostatic: a bias-DAC write (microseconds, microjoules).
    const eh::retune_cost es = eh::make_harvester("electrostatic")->actuator();
    EXPECT_DOUBLE_EQ(es.step_time_s, 1.0e-4);
    EXPECT_DOUBLE_EQ(es.single_step_energy_j, 2.0e-6);
    EXPECT_DOUBLE_EQ(es.multi_step_energy_j, 1.0e-6);
    EXPECT_DOUBLE_EQ(es.min_drive_voltage_v, 1.8);
}

TEST(Electrostatic, BiasRampFallsAsResonanceRises) {
    const eh::electrostatic_harvester dev;
    const eh::electrostatic_params& p = dev.params();
    EXPECT_DOUBLE_EQ(dev.bias_at(0), p.bias_max_v);
    EXPECT_DOUBLE_EQ(dev.bias_at(255), p.bias_min_v);
    // Falling bias -> stiffer (less softened) spring -> higher resonance.
    for (int pos = 1; pos < dev.position_count(); ++pos) {
        EXPECT_LT(dev.bias_at(pos), dev.bias_at(pos - 1));
        EXPECT_GT(dev.effective_stiffness(pos),
                  dev.effective_stiffness(pos - 1));
        EXPECT_LT(dev.electrical_damping(pos),
                  dev.electrical_damping(pos - 1));
    }
    // Default calibration: a 58..94 Hz band bracketing the paper device's
    // 64..88 Hz.
    EXPECT_NEAR(dev.min_frequency(), 58.0, 0.1);
    EXPECT_NEAR(dev.max_frequency(), 94.0, 0.1);
    EXPECT_THROW((void)dev.bias_at(-1), std::out_of_range);
    EXPECT_THROW((void)dev.bias_at(256), std::out_of_range);
}

TEST(Electrostatic, SofteningAndExtractionFollowBiasSquared) {
    const eh::electrostatic_harvester dev;
    const eh::electrostatic_params& p = dev.params();
    for (int pos : {0, 100, 255}) {
        const double u = dev.bias_at(pos) / p.pull_in_voltage_v;
        EXPECT_NEAR(dev.effective_stiffness(pos),
                    dev.base_stiffness() * (1.0 - p.softening_alpha * u * u),
                    1e-9 * dev.base_stiffness());
        EXPECT_NEAR(dev.electrical_damping(pos), p.coupling_damping * u * u,
                    1e-12);
    }
}

TEST(Electrostatic, DisplacementClipsAtEndStops) {
    const eh::electrostatic_harvester dev;
    const double omega = 2.0 * std::numbers::pi * dev.resonant_frequency(128);
    // Resonant drive at an absurd acceleration must saturate at the stops.
    EXPECT_DOUBLE_EQ(dev.displacement_amplitude(omega, 500.0, 128),
                     dev.params().max_displacement_m);
    // A gentle off-resonance drive stays well inside them.
    EXPECT_LT(dev.displacement_amplitude(0.5 * omega, 0.1, 128),
              dev.params().max_displacement_m);
}

TEST(Electrostatic, EnvelopeRelaxesTowardSteadyStateAmplitude) {
    const eh::electrostatic_harvester dev;
    const power::rectifier_params rect;
    const double f = dev.resonant_frequency(64);
    const double accel = 0.6;
    const int pos = 64;
    const double target = dev.initial_amplitude(f, accel, pos, 2.5, rect);
    const auto below = dev.envelope_dynamics(
        f, accel, pos, 2.5, 0.5 * target, eh::conditioning_kind::diode_bridge,
        1.0, rect);
    const auto at = dev.envelope_dynamics(
        f, accel, pos, 2.5, target, eh::conditioning_kind::diode_bridge, 1.0,
        rect);
    EXPECT_GT(below.amplitude_rate, 0.0);
    EXPECT_NEAR(at.amplitude_rate, 0.0, 1e-12);
    EXPECT_GT(at.charge_current_a, 0.0);
    // Below the priming threshold the pump cannot deliver.
    const auto unprimed = dev.envelope_dynamics(
        f, accel, pos, 0.1, target, eh::conditioning_kind::diode_bridge, 1.0,
        rect);
    EXPECT_DOUBLE_EQ(unprimed.charge_current_a, 0.0);
}

TEST(Electrostatic, InvalidParametersAreRejected) {
    eh::electrostatic_params bad_mass;
    bad_mass.mass_kg = 0.0;
    EXPECT_THROW(eh::electrostatic_harvester{bad_mass}, std::invalid_argument);
    eh::electrostatic_params inverted;
    inverted.bias_min_v = 50.0;  // above bias_max_v
    EXPECT_THROW(eh::electrostatic_harvester{inverted}, std::invalid_argument);
    eh::electrostatic_params collapsed;
    collapsed.bias_max_v = collapsed.pull_in_voltage_v * 1.3;
    EXPECT_THROW(eh::electrostatic_harvester{collapsed}, std::invalid_argument);
}

TEST(Electrostatic, TransientSystemContract) {
    const eh::electrostatic_harvester dev;
    const eh::vibration_source vib(0.6, 70.0);
    const power::supercapacitor cap;
    const power::load_bank loads;
    const power::rectifier_params rect;
    const auto rhs = dev.make_transient(vib, cap, loads, rect);
    ASSERT_NE(rhs, nullptr);
    EXPECT_EQ(rhs->state_size(), 4u);
    const auto x0 = rhs->initial_state(2.7);
    ASSERT_EQ(x0.size(), 4u);
    EXPECT_DOUBLE_EQ(x0[rhs->voltage_index()], 2.7);
    EXPECT_DOUBLE_EQ(x0[rhs->harvested_index()], 0.0);
    rhs->set_position(200);
    EXPECT_EQ(rhs->position(), 200);
    EXPECT_THROW(rhs->set_position(-1), std::out_of_range);
    EXPECT_THROW(rhs->set_position(256), std::out_of_range);
    // The step ceiling resolves the fastest achievable resonance.
    EXPECT_LE(rhs->suggested_max_dt(), 1.0 / (20.0 * dev.max_frequency()));
}

TEST(Electrostatic, EnvelopeAndTransientAgreeOnHarvestedEnergy) {
    // The charge pump enters both fidelities as the same equivalent
    // viscous damping, so the envelope fast path and the cycle-resolving
    // transient model must agree on the energy actually delivered.
    dse::scenario s;
    s.duration_s = 240.0;
    s.step_period_s = 100.0;
    s.step_count = 1;
    const dse::system_evaluator ev(s, spec::harvester_spec{"electrostatic"});
    dse::evaluation_options env_opts, tr_opts;
    tr_opts.model = dse::fidelity::transient;
    const auto env = ev.evaluate(dse::system_config::original(), env_opts);
    const auto tr = ev.evaluate(dse::system_config::original(), tr_opts);
    EXPECT_TRUE(env.sim_ok);
    EXPECT_TRUE(tr.sim_ok);
    EXPECT_GT(env.harvested_energy_j, 0.0);
    EXPECT_NEAR(tr.harvested_energy_j, env.harvested_energy_j,
                0.10 * env.harvested_energy_j);
    EXPECT_NEAR(static_cast<double>(tr.transmissions),
                static_cast<double>(env.transmissions), 2.0);
    // The transient kernel resolves every vibration cycle.
    EXPECT_GT(tr.ode_steps, 20u * env.ode_steps);
}

}  // namespace
