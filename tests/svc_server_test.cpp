// End-to-end contract of the experiment service over real sockets:
// submit/stream/result, protocol edge cases (malformed frames, oversized
// frames, unknown schema versions), cancellation, admission control, and
// graceful drain (docs/service.md). Each test runs its own server on a
// unique unix socket; one test covers the TCP listener.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <thread>

#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"
#include "svc/framing.hpp"
#include "svc/protocol.hpp"
#include "svc_test_util.hpp"

namespace {

using namespace ehdse;
using svc::testutil::code_of;
using svc::testutil::test_client;
using svc::testutil::type_of;
using svc::testutil::unique_socket_path;

/// Fast request: a 2-minute envelope scenario (~2.5 ms of wall time).
spec::experiment_spec fast_spec(double duration_s = 120.0) {
    spec::experiment_spec request;
    request.scn.duration_s = duration_s;
    return request;
}

/// Slow request: hours of simulated time keep a runner busy long enough
/// to observe queued states (~20 ms of wall per simulated hour).
spec::experiment_spec blocker_spec(std::uint64_t seed = 1) {
    spec::experiment_spec request;
    request.scn.duration_s = 36000.0;
    request.eval.controller_seed = seed;  // distinct seeds dodge the cache
    return request;
}

struct server_fixture {
    explicit server_fixture(svc::server_config config = {}) {
        config.unix_path = unique_socket_path();
        path = config.unix_path;
        server = std::make_unique<svc::server>(std::move(config));
        server->start();
    }
    ~server_fixture() {
        server->stop();
        ::unlink(path.c_str());
    }

    std::string path;
    std::unique_ptr<svc::server> server;
};

TEST(SvcServer, PingPong) {
    server_fixture fixture;
    test_client client(fixture.path);
    client.send(svc::make_ping());
    const obs::json_value pong = client.read_frame();
    EXPECT_EQ(type_of(pong), "pong");
    EXPECT_EQ(pong.at("protocol").as_string(), svc::k_protocol);
}

TEST(SvcServer, SubmitSimulateStreamsToResult) {
    server_fixture fixture;
    test_client client(fixture.path);
    const spec::experiment_spec request = fast_spec();
    client.send(svc::make_submit("sim-1", svc::workload::simulate, request));

    const obs::json_value accepted = client.read_frame();
    ASSERT_EQ(type_of(accepted), "accepted");
    EXPECT_EQ(accepted.at("id").as_string(), "sim-1");
    const std::string expected_hash =
        spec::spec_hash_hex(spec::spec_hash(request.canonicalized()));
    EXPECT_EQ(accepted.at("spec_hash").as_string(), expected_hash);

    const obs::json_value started = client.read_frame();
    ASSERT_EQ(type_of(started), "event");
    EXPECT_EQ(started.at("event").as_string(), "started");

    const obs::json_value result = client.read_until("result");
    EXPECT_EQ(result.at("id").as_string(), "sim-1");
    EXPECT_EQ(result.at("status").as_string(), "ok");
    EXPECT_GT(result.at("response").at("transmissions").as_number(), 0.0);
    // The embedded manifest identifies the experiment it answers.
    EXPECT_EQ(result.at("manifest").at("options").at("spec_hash").as_string(),
              expected_hash);
    EXPECT_EQ(result.at("manifest").at("options").at("request_id").as_string(),
              "sim-1");
}

TEST(SvcServer, SubmitFlowStreamsProgressAndOutcomes) {
    server_fixture fixture;
    test_client client(fixture.path);
    spec::experiment_spec request = fast_spec();
    request.flow.parallel = true;  // fan the DoE out over the shared pool
    client.send(svc::make_submit("flow-1", svc::workload::flow, request));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");

    std::size_t progress_events = 0;
    obs::json_value result;
    for (;;) {
        const obs::json_value frame = client.read_frame(120000);
        if (type_of(frame) == "event") {
            if (frame.at("event").as_string() == "progress") ++progress_events;
            continue;
        }
        ASSERT_EQ(type_of(frame), "result");
        result = frame;
        break;
    }
    EXPECT_GT(progress_events, 0u);
    EXPECT_EQ(result.at("status").as_string(), "ok");
    // The paper's pair of optimisers validated on the surface.
    EXPECT_EQ(result.at("response").at("outcomes").size(), 2u);
    EXPECT_GE(result.at("manifest").at("optimizers").size(), 2u);
}

TEST(SvcServer, MalformedFrameKeepsConnectionUsable) {
    server_fixture fixture;
    test_client client(fixture.path);
    client.send_raw("this is not json\n");
    const obs::json_value error = client.read_frame();
    ASSERT_EQ(type_of(error), "error");
    EXPECT_EQ(code_of(error), "bad_frame");
    // Framing is intact — the connection still serves requests.
    client.send(svc::make_ping());
    EXPECT_EQ(type_of(client.read_frame()), "pong");
}

TEST(SvcServer, OversizedFrameClosesConnection) {
    server_fixture fixture;
    test_client client(fixture.path);
    std::string giant(svc::k_max_frame_bytes + 16, 'x');
    client.send_raw(giant);
    const obs::json_value error = client.read_frame();
    ASSERT_EQ(type_of(error), "error");
    EXPECT_EQ(code_of(error), "frame_too_large");
    EXPECT_TRUE(client.reads_eof());
}

TEST(SvcServer, UnknownSchemaVersionRejected) {
    server_fixture fixture;
    test_client client(fixture.path);
    obs::json_value spec_doc = spec::to_json(fast_spec());
    for (auto& [key, value] : spec_doc.as_object())
        if (key == "schema") value = obs::json_value("ehdse.experiment_spec/99");
    obs::json_object doc;
    doc.emplace_back("type", obs::json_value("submit"));
    doc.emplace_back("id", obs::json_value("future"));
    doc.emplace_back("spec", std::move(spec_doc));
    client.send(obs::json_value(std::move(doc)));

    const obs::json_value rejected = client.read_frame();
    ASSERT_EQ(type_of(rejected), "rejected");
    EXPECT_EQ(rejected.at("id").as_string(), "future");
    EXPECT_EQ(code_of(rejected), "bad_schema");
    // Connection survives a rejected submit.
    client.send(svc::make_ping());
    EXPECT_EQ(type_of(client.read_frame()), "pong");
}

TEST(SvcServer, InvalidSpecRejected) {
    server_fixture fixture;
    test_client client(fixture.path);
    obs::json_value doc =
        svc::make_submit("bad", svc::workload::simulate, fast_spec());
    // Corrupt the duration after building the frame (make_submit would
    // not serialise an invalid spec otherwise).
    for (auto& [key, value] : doc.as_object())
        if (key == "spec")
            for (auto& [spec_key, spec_value] : value.as_object())
                if (spec_key == "scenario")
                    for (auto& [field, field_value] : spec_value.as_object())
                        if (field == "duration_s")
                            field_value = obs::json_value(-1.0);
    client.send(doc);
    const obs::json_value rejected = client.read_frame();
    ASSERT_EQ(type_of(rejected), "rejected");
    EXPECT_EQ(code_of(rejected), "bad_spec");
}

TEST(SvcServer, CancelQueuedRequestIsCancelled) {
    svc::server_config config;
    config.jobs = 1;  // one runner: the second submit stays queued
    server_fixture fixture(std::move(config));
    test_client client(fixture.path);

    client.send(svc::make_submit("blocker", svc::workload::simulate,
                                 blocker_spec()));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");
    client.read_until("event");  // blocker started — runner is busy

    client.send(svc::make_submit("victim", svc::workload::simulate,
                                 blocker_spec(2)));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");
    client.send(svc::make_cancel("victim"));
    const obs::json_value cancelled = client.read_frame();
    ASSERT_EQ(type_of(cancelled), "cancelled");
    EXPECT_EQ(cancelled.at("id").as_string(), "victim");
    // The blocker still completes; the victim never produces a result.
    const obs::json_value result = client.read_until("result", 120000);
    EXPECT_EQ(result.at("id").as_string(), "blocker");
}

TEST(SvcServer, CancelRunningRequestIsTooLate) {
    server_fixture fixture;
    test_client client(fixture.path);
    client.send(svc::make_submit("running", svc::workload::simulate,
                                 blocker_spec()));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");
    client.read_until("event");  // started
    client.send(svc::make_cancel("running"));
    const obs::json_value error = client.read_frame();
    ASSERT_EQ(type_of(error), "error");
    EXPECT_EQ(code_of(error), "too_late");
    // ... and the request still runs to completion.
    EXPECT_EQ(client.read_until("result", 120000).at("id").as_string(),
              "running");
}

TEST(SvcServer, CancelUnknownIdIsUnknownId) {
    server_fixture fixture;
    test_client client(fixture.path);
    client.send(svc::make_cancel("never-submitted"));
    const obs::json_value error = client.read_frame();
    ASSERT_EQ(type_of(error), "error");
    EXPECT_EQ(code_of(error), "unknown_id");
}

TEST(SvcServer, DuplicateIdRejected) {
    svc::server_config config;
    config.jobs = 1;
    server_fixture fixture(std::move(config));
    test_client client(fixture.path);
    client.send(svc::make_submit("blocker", svc::workload::simulate,
                                 blocker_spec()));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");
    client.read_until("event");
    client.send(svc::make_submit("blocker", svc::workload::simulate,
                                 fast_spec()));
    const obs::json_value rejected = client.read_frame();
    ASSERT_EQ(type_of(rejected), "rejected");
    EXPECT_EQ(code_of(rejected), "duplicate_id");
    client.read_until("result", 120000);
}

TEST(SvcServer, PerClientQuotaRejected) {
    svc::server_config config;
    config.jobs = 1;
    config.limits.max_per_client = 2;  // queued + running
    server_fixture fixture(std::move(config));
    test_client client(fixture.path);

    client.send(svc::make_submit("r1", svc::workload::simulate,
                                 blocker_spec(1)));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");
    client.read_until("event");  // r1 running
    client.send(svc::make_submit("r2", svc::workload::simulate,
                                 blocker_spec(2)));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");  // r2 queued

    client.send(svc::make_submit("r3", svc::workload::simulate,
                                 blocker_spec(3)));
    const obs::json_value rejected = client.read_frame();
    ASSERT_EQ(type_of(rejected), "rejected");
    EXPECT_EQ(code_of(rejected), "quota_exceeded");

    // A SECOND connection has its own quota and is admitted.
    test_client other(fixture.path);
    other.send(svc::make_submit("r1", svc::workload::simulate,
                                blocker_spec(4)));
    EXPECT_EQ(type_of(other.read_frame()), "accepted");

    client.read_until("result", 120000);  // r1
    client.read_until("result", 120000);  // r2
    other.read_until("result", 120000);
}

TEST(SvcServer, GlobalQueueFullRejected) {
    svc::server_config config;
    config.jobs = 1;
    config.limits.max_queued = 1;
    server_fixture fixture(std::move(config));
    test_client client(fixture.path);

    client.send(svc::make_submit("running", svc::workload::simulate,
                                 blocker_spec(1)));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");
    client.read_until("event");  // runner busy; queue empty again
    client.send(svc::make_submit("queued", svc::workload::simulate,
                                 blocker_spec(2)));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");

    test_client other(fixture.path);  // global bound hits every client
    other.send(svc::make_submit("overflow", svc::workload::simulate,
                                blocker_spec(3)));
    const obs::json_value rejected = other.read_frame();
    ASSERT_EQ(type_of(rejected), "rejected");
    EXPECT_EQ(code_of(rejected), "queue_full");

    client.read_until("result", 120000);
    client.read_until("result", 120000);
}

TEST(SvcServer, StatsFrameReportsTotalsAndCacheHits) {
    server_fixture fixture;
    test_client producer(fixture.path);
    const spec::experiment_spec request = fast_spec();
    producer.send(svc::make_submit("a", svc::workload::simulate, request));
    producer.read_until("result");
    // Same canonical spec from a DIFFERENT client: must hit the shared
    // cross-request cache.
    test_client consumer(fixture.path);
    consumer.send(svc::make_submit("b", svc::workload::simulate, request));
    consumer.read_until("result");

    consumer.send(svc::make_stats_request());
    const obs::json_value stats = consumer.read_frame();
    ASSERT_EQ(type_of(stats), "stats");
    EXPECT_GE(stats.at("server").at("accepted").as_number(), 2.0);
    EXPECT_GE(stats.at("server").at("completed").as_number(), 2.0);
    EXPECT_GE(stats.at("cache").at("hits").as_number(), 1.0);
    EXPECT_EQ(stats.at("server").at("evaluators").as_number(), 1.0);
}

TEST(SvcServer, DrainRejectsNewCompletesAcceptedSendsGoodbye) {
    svc::server_config config;
    config.jobs = 1;
    server_fixture fixture(std::move(config));
    test_client client(fixture.path);
    client.send(svc::make_submit("accepted-before-drain",
                                 svc::workload::simulate, blocker_spec()));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");
    client.read_until("event");  // started

    std::thread drainer([&] { fixture.server->drain(); });
    while (!fixture.server->draining())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    client.send(svc::make_submit("late", svc::workload::simulate,
                                 fast_spec()));
    const obs::json_value rejected = client.read_frame();
    ASSERT_EQ(type_of(rejected), "rejected");
    EXPECT_EQ(code_of(rejected), "draining");

    // The accepted request reaches its terminal frame, then goodbye.
    const obs::json_value result = client.read_until("result", 120000);
    EXPECT_EQ(result.at("id").as_string(), "accepted-before-drain");
    EXPECT_EQ(type_of(client.read_frame()), "goodbye");
    EXPECT_TRUE(client.reads_eof());
    drainer.join();
}

TEST(SvcServer, StopCancelsQueuedWork) {
    svc::server_config config;
    config.jobs = 1;
    server_fixture fixture(std::move(config));
    test_client client(fixture.path);
    client.send(svc::make_submit("running", svc::workload::simulate,
                                 blocker_spec(1)));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");
    client.read_until("event");
    client.send(svc::make_submit("queued", svc::workload::simulate,
                                 blocker_spec(2)));
    ASSERT_EQ(type_of(client.read_frame()), "accepted");

    std::thread stopper([&] { fixture.server->stop(); });
    // Terminal frames for BOTH requests: queued is cancelled, running
    // completes. Order between them is not guaranteed.
    bool saw_cancelled = false;
    bool saw_result = false;
    while (!saw_cancelled || !saw_result) {
        const obs::json_value frame = client.read_frame(120000);
        if (type_of(frame) == "cancelled") {
            EXPECT_EQ(frame.at("id").as_string(), "queued");
            saw_cancelled = true;
        } else if (type_of(frame) == "result") {
            EXPECT_EQ(frame.at("id").as_string(), "running");
            saw_result = true;
        }
    }
    stopper.join();
}

TEST(SvcServer, DisconnectSweepsQueuedRequests) {
    svc::server_config config;
    config.jobs = 1;
    server_fixture fixture(std::move(config));
    {
        test_client doomed(fixture.path);
        doomed.send(svc::make_submit("running", svc::workload::simulate,
                                     blocker_spec(1)));
        ASSERT_EQ(type_of(doomed.read_frame()), "accepted");
        doomed.read_until("event");
        doomed.send(svc::make_submit("queued", svc::workload::simulate,
                                     blocker_spec(2)));
        ASSERT_EQ(type_of(doomed.read_frame()), "accepted");
        doomed.close();  // mid-stream disconnect
    }
    // The queued request is swept; the running one finishes against the
    // dead socket without disturbing the server.
    test_client observer(fixture.path);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
        observer.send(svc::make_stats_request());
        const obs::json_value stats = observer.read_frame();
        if (stats.at("server").at("cancelled").as_number() >= 1.0 &&
            stats.at("server").at("queued").as_number() == 0.0 &&
            stats.at("server").at("running").as_number() == 0.0)
            break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Server is fully operational for new clients afterwards.
    observer.send(svc::make_ping());
    EXPECT_EQ(type_of(observer.read_frame()), "pong");
}

TEST(SvcServer, TcpListenerWithEphemeralPort) {
    svc::server_config config;
    config.unix_path.clear();
    config.tcp_port = 0;  // ephemeral
    svc::server server(std::move(config));
    server.start();
    ASSERT_GT(server.tcp_port(), 0);

    test_client client("127.0.0.1", server.tcp_port());
    client.send(svc::make_ping());
    EXPECT_EQ(type_of(client.read_frame()), "pong");
    client.send(svc::make_submit("tcp-1", svc::workload::simulate,
                                 fast_spec()));
    EXPECT_EQ(client.read_until("result").at("status").as_string(), "ok");
    server.stop();
}

}  // namespace
