// System-level evaluator: configuration plumbing, energy bookkeeping
// consistency, reproducibility, and traces.
#include <gtest/gtest.h>

#include <cmath>

#include "dse/system_evaluator.hpp"

namespace ed = ehdse::dse;

namespace {
/// Shorter scenario for unit-level checks (full hour runs live in the
/// integration test file).
ed::scenario short_scenario() {
    ed::scenario s;
    s.duration_s = 600.0;
    s.step_period_s = 250.0;
    s.step_count = 1;  // one 5 Hz step at t = 250 s
    return s;
}
}  // namespace

TEST(SystemConfig, VectorRoundTrip) {
    const ed::system_config c{2e6, 100.0, 1.5};
    const auto v = c.to_vector();
    const auto back = ed::system_config::from_vector(v);
    EXPECT_DOUBLE_EQ(back.mcu_clock_hz, 2e6);
    EXPECT_DOUBLE_EQ(back.watchdog_period_s, 100.0);
    EXPECT_DOUBLE_EQ(back.tx_interval_s, 1.5);
    EXPECT_THROW(ed::system_config::from_vector({1.0}), std::invalid_argument);
}

TEST(SystemConfig, PaperSpaceMatchesTableV) {
    const auto space = ed::paper_design_space();
    ASSERT_EQ(space.dimension(), 3u);
    EXPECT_DOUBLE_EQ(space.parameter(0).min, 125e3);
    EXPECT_DOUBLE_EQ(space.parameter(0).max, 8e6);
    EXPECT_DOUBLE_EQ(space.parameter(1).min, 60.0);
    EXPECT_DOUBLE_EQ(space.parameter(1).max, 600.0);
    EXPECT_DOUBLE_EQ(space.parameter(2).min, 0.005);
    EXPECT_DOUBLE_EQ(space.parameter(2).max, 10.0);
}

TEST(SystemConfig, OriginalDesignCodesNearOrigin) {
    const auto space = ed::paper_design_space();
    const auto coded = ed::config_to_coded(space, ed::system_config::original());
    // 4 MHz / 320 s / 5 s sit essentially at the centre of Table V's ranges.
    for (double x : coded) EXPECT_NEAR(x, 0.0, 0.04);
}

TEST(SystemConfig, CodedCornersDecodeToRangeEnds) {
    const auto space = ed::paper_design_space();
    const auto lo = ed::config_from_coded(space, {-1.0, -1.0, -1.0});
    EXPECT_NEAR(lo.mcu_clock_hz, 125e3, 1.0);
    EXPECT_NEAR(lo.watchdog_period_s, 60.0, 1e-9);
    EXPECT_NEAR(lo.tx_interval_s, 0.005, 1e-9);
    const auto hi = ed::config_from_coded(space, {1.0, 1.0, 1.0});
    EXPECT_NEAR(hi.mcu_clock_hz, 8e6, 1.0);
    EXPECT_NEAR(hi.tx_interval_s, 10.0, 1e-9);
}

TEST(Evaluator, ProducesTransmissionsAndCleanKernelRun) {
    ed::system_evaluator ev(short_scenario());
    const auto r = ev.evaluate(ed::system_config::original());
    EXPECT_TRUE(r.sim_ok);
    EXPECT_GT(r.transmissions, 0u);
    EXPECT_GT(r.events, r.transmissions);
    EXPECT_GT(r.ode_steps, 0u);
    EXPECT_EQ(ev.runs(), 1u);
}

TEST(Evaluator, EnergyBookkeepingConsistent) {
    ed::system_evaluator ev(short_scenario());
    const auto r = ev.evaluate(ed::system_config::original());
    // Stored-energy balance: E(V_end) - E(V_0) = harvested - withdrawn -
    // sustained - leakage. Leakage is the only unlogged term and is
    // bounded by V^2/R * T.
    ehdse::power::supercapacitor cap;
    const double dE = cap.energy_at(r.final_voltage_v) - cap.energy_at(2.80);
    const double leak_max =
        3.0 * 3.0 / cap.params().leakage_resistance_ohm * 600.0;
    const double balance =
        r.harvested_energy_j - r.withdrawn_energy_j - r.sustained_load_energy_j;
    EXPECT_LT(std::abs(dE - balance), leak_max);
    EXPECT_GT(std::abs(dE - balance), 0.0);  // leakage exists

    // Ledger covers the known discrete accounts.
    EXPECT_GT(r.ledger.total("node.transmission"), 0.0);
    EXPECT_GT(r.ledger.total("mcu.measure"), 0.0);
}

TEST(Evaluator, DeterministicForSameSeed) {
    ed::system_evaluator ev(short_scenario());
    const auto a = ev.evaluate(ed::system_config::original());
    const auto b = ev.evaluate(ed::system_config::original());
    EXPECT_EQ(a.transmissions, b.transmissions);
    EXPECT_DOUBLE_EQ(a.final_voltage_v, b.final_voltage_v);
    EXPECT_EQ(a.tuning.coarse_steps, b.tuning.coarse_steps);
}

TEST(Evaluator, SeedChangesMeasurementNoise) {
    ed::system_evaluator ev(short_scenario());
    ed::evaluation_options a, b;
    a.controller_seed = 1;
    b.controller_seed = 2;
    // At the lowest clock the measurement noise is largest, so different
    // noise streams visibly change the tuning behaviour.
    ed::system_config cfg{125e3, 60.0, 5.0};
    const auto ra = ev.evaluate(cfg, a);
    const auto rb = ev.evaluate(cfg, b);
    // Different noise streams: some tuning detail must differ.
    EXPECT_TRUE(ra.tuning.fine_steps != rb.tuning.fine_steps ||
                ra.tuning.coarse_steps != rb.tuning.coarse_steps ||
                ra.transmissions != rb.transmissions);
}

TEST(Evaluator, TracesRecordedOnRequest) {
    ed::system_evaluator ev(short_scenario());
    ed::evaluation_options opts;
    opts.record_traces = true;
    opts.trace_interval_s = 1.0;
    const auto r = ev.evaluate(ed::system_config::original(), opts);
    ASSERT_TRUE(r.voltage_trace.has_value());
    ASSERT_TRUE(r.position_trace.has_value());
    EXPECT_GT(r.voltage_trace->size(), 100u);
    EXPECT_NEAR(r.voltage_trace->sample(0.0), 2.80, 0.01);
    // Voltage stays within physical bounds throughout.
    EXPECT_GT(r.voltage_trace->min_value(), 0.0);
    EXPECT_LT(r.voltage_trace->max_value(), 5.0);
    // The tuning controller moved the magnet after the frequency step.
    EXPECT_GT(r.position_trace->max_value(), r.position_trace->values().front());
}

TEST(Evaluator, NoTracesByDefault) {
    ed::system_evaluator ev(short_scenario());
    const auto r = ev.evaluate(ed::system_config::original());
    EXPECT_FALSE(r.voltage_trace.has_value());
    EXPECT_FALSE(r.position_trace.has_value());
}

TEST(Evaluator, SmallerIntervalNeverFewerTransmissionsWhenEnergyRich) {
    // Over a short window starting from a full store, shrinking the
    // interval must not reduce the transmission count.
    ed::scenario s = short_scenario();
    s.duration_s = 120.0;
    s.v_initial = 2.95;
    ed::system_evaluator ev(s);
    ed::system_config c = ed::system_config::original();
    c.tx_interval_s = 10.0;
    const auto slow = ev.evaluate(c);
    c.tx_interval_s = 1.0;
    const auto fast = ev.evaluate(c);
    EXPECT_GT(fast.transmissions, slow.transmissions);
}

TEST(Evaluator, DisabledTuningHarvestsLessAfterFrequencyStep) {
    // The whole point of the tunable harvester: without retuning, the
    // frequency step strands the device off-resonance.
    ed::scenario s = short_scenario();
    ehdse::mcu::controller_params ctl;
    ctl.mode = ehdse::mcu::tuning_mode::disabled;
    ed::system_evaluator tuned(s);
    ed::system_evaluator fixed(s, ehdse::harvester::microgenerator_params{}, {},
                               {}, {}, ctl);
    const auto with = tuned.evaluate(ed::system_config::original());
    const auto without = fixed.evaluate(ed::system_config::original());
    EXPECT_LT(without.harvested_energy_j, 0.8 * with.harvested_energy_j);
}

TEST(Evaluator, TransientFidelityMatchesEnvelope) {
    // The same digital stack over the full nonlinear model must agree with
    // the envelope fast path on the discrete outcomes of a short scenario.
    ed::scenario s;
    s.duration_s = 240.0;
    s.step_period_s = 100.0;
    s.step_count = 1;
    ed::system_evaluator ev(s);
    ed::evaluation_options env_opts, tr_opts;
    tr_opts.model = ed::fidelity::transient;
    const auto env = ev.evaluate(ed::system_config::original(), env_opts);
    const auto tr = ev.evaluate(ed::system_config::original(), tr_opts);
    EXPECT_TRUE(tr.sim_ok);
    EXPECT_NEAR(static_cast<double>(tr.transmissions),
                static_cast<double>(env.transmissions), 2.0);
    EXPECT_NEAR(tr.harvested_energy_j, env.harvested_energy_j,
                0.05 * env.harvested_energy_j);
    EXPECT_NEAR(tr.final_voltage_v, env.final_voltage_v, 0.002);
    EXPECT_EQ(tr.tuning.coarse_tunings, env.tuning.coarse_tunings);
    // The transient kernel resolves every vibration cycle.
    EXPECT_GT(tr.ode_steps, 20u * env.ode_steps);
}

TEST(Evaluator, InvalidScenarioThrows) {
    ed::scenario s;
    s.duration_s = 0.0;
    EXPECT_THROW(ed::system_evaluator{s}, std::invalid_argument);
}
