// Direct unit tests of the two plant implementations (envelope and
// transient systems): withdrawal accounting, sustained draws, position
// validation, measurement taps.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dse/envelope_system.hpp"
#include "dse/transient_system.hpp"
#include "harvester/tuning_table.hpp"

namespace ed = ehdse::dse;
namespace eh = ehdse::harvester;
namespace es = ehdse::sim;

namespace {

struct env_rig {
    eh::microgenerator gen;
    eh::vibration_source vib{0.060 * eh::k_gravity, 69.0};
    ed::envelope_system system{gen, vib};
    es::simulator sim;

    env_rig()
        : sim(system, [this] {
              eh::tuning_table table(gen);
              return system.initial_state(2.8, table.lookup(69.0));
          }()) {
        system.attach(sim);
    }
};

}  // namespace

TEST(EnvelopePlant, UnattachedThrows) {
    eh::microgenerator gen;
    eh::vibration_source vib(0.1, 69.0);
    ed::envelope_system system(gen, vib);
    EXPECT_THROW(system.storage_voltage(), std::logic_error);
    EXPECT_THROW(system.vibration_frequency(), std::logic_error);
}

TEST(EnvelopePlant, WithdrawalRemovesEnergyAndLedgers) {
    env_rig rig;
    const double v0 = rig.system.storage_voltage();
    rig.system.withdraw(10e-3, "test.account");
    const double v1 = rig.system.storage_voltage();
    EXPECT_LT(v1, v0);
    ehdse::power::supercapacitor cap;
    EXPECT_NEAR(cap.energy_at(v0) - cap.energy_at(v1), 10e-3, 1e-9);
    EXPECT_DOUBLE_EQ(rig.system.ledger().total("test.account"), 10e-3);
    EXPECT_THROW(rig.system.withdraw(-1.0, "x"), std::invalid_argument);
}

TEST(EnvelopePlant, SustainedDrawDischargesOverTime) {
    env_rig rig;
    // Detune far so essentially nothing is harvested.
    rig.system.set_position(255);
    rig.system.set_sustained_draw("burn", 5e-3);  // 5 mA
    ASSERT_TRUE(rig.sim.run_until(10.0));
    // dV ~ I t / C = 5e-3 * 10 / 0.55 ~ 0.09 V.
    EXPECT_NEAR(rig.system.storage_voltage(), 2.8 - 0.0909, 0.01);
    // Updating the same account replaces, not stacks.
    rig.system.set_sustained_draw("burn", 0.0);
    const double v_now = rig.system.storage_voltage();
    ASSERT_TRUE(rig.sim.run_until(20.0));
    EXPECT_NEAR(rig.system.storage_voltage(), v_now, 0.005);
}

TEST(EnvelopePlant, PositionAndMeasurementTaps) {
    env_rig rig;
    EXPECT_DOUBLE_EQ(rig.system.vibration_frequency(), 69.0);
    rig.system.set_position(100);
    EXPECT_EQ(rig.system.position(), 100);
    EXPECT_THROW(rig.system.set_position(-1), std::out_of_range);
    EXPECT_THROW(rig.system.set_position(256), std::out_of_range);

    // Tuned: phase lag ~ pi/2; resonance above drive: lag < pi/2.
    eh::tuning_table table(rig.gen);
    rig.system.set_position(table.lookup(69.0));
    EXPECT_NEAR(rig.system.phase_lag(), std::numbers::pi / 2.0, 0.35);
    rig.system.set_position(255);
    EXPECT_LT(rig.system.phase_lag(), 0.3);
}

TEST(EnvelopePlant, InitialStateRejectsNegativeVoltage) {
    eh::microgenerator gen;
    eh::vibration_source vib(0.1, 69.0);
    ed::envelope_system system(gen, vib);
    EXPECT_THROW(system.initial_state(-1.0, 0), std::invalid_argument);
}

TEST(TransientPlant, MirrorsEnvelopeSemantics) {
    eh::microgenerator gen;
    eh::vibration_source vib(0.060 * eh::k_gravity, 69.0);
    ed::transient_system system(gen, vib);
    eh::tuning_table table(gen);
    auto x0 = system.initial_state(2.8, table.lookup(69.0));
    es::ode_options ode;
    ode.max_dt = system.suggested_max_dt();
    ode.initial_dt = 1e-5;
    es::simulator sim(system, std::move(x0), ode);
    system.attach(sim);

    EXPECT_NEAR(system.storage_voltage(), 2.8, 1e-12);
    system.withdraw(5e-3, "probe");
    EXPECT_LT(system.storage_voltage(), 2.8);
    EXPECT_DOUBLE_EQ(system.ledger().total("probe"), 5e-3);
    EXPECT_DOUBLE_EQ(system.vibration_frequency(), 69.0);
    EXPECT_NEAR(system.phase_lag(), std::numbers::pi / 2.0, 0.35);
    EXPECT_THROW(system.withdraw(-1.0, "x"), std::invalid_argument);
    EXPECT_THROW(system.initial_state(-0.1, 0), std::invalid_argument);

    system.set_sustained_draw("load", 1e-3);
    ASSERT_TRUE(sim.run_until(0.5));
    EXPECT_LT(system.storage_voltage(), 2.8 - 5e-3 * 2.8 / 0.55 / 10.0);
}

TEST(TransientPlant, UnattachedThrows) {
    eh::microgenerator gen;
    eh::vibration_source vib(0.1, 69.0);
    ed::transient_system system(gen, vib);
    EXPECT_THROW(system.storage_voltage(), std::logic_error);
}
