// Shared helpers for the svc test suites: a blocking test client that
// speaks one frame at a time with a deadline, and unique unix socket
// paths. Kept header-only — each suite is its own binary.
#pragma once

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"
#include "svc/framing.hpp"
#include "svc/socket.hpp"

namespace ehdse::svc::testutil {

/// Unique-per-call unix socket path, short enough for sockaddr_un.
inline std::string unique_socket_path() {
    static std::atomic<unsigned> counter{0};
    return "/tmp/ehdse-svc-test-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Synchronous framed client with per-read deadlines, so a server bug
/// fails the test instead of hanging the suite.
class test_client {
public:
    explicit test_client(const std::string& unix_path)
        : fd_(connect_unix(unix_path)) {}
    test_client(const std::string& host, int port)
        : fd_(connect_tcp(host, port)) {}

    int fd() const noexcept { return fd_.get(); }

    void send(const obs::json_value& doc) {
        std::string line = doc.dump();
        line.push_back('\n');
        if (!send_all(fd_.get(), line.data(), line.size()))
            throw std::runtime_error("test_client: send failed");
    }

    void send_raw(const std::string& bytes) {
        if (!send_all(fd_.get(), bytes.data(), bytes.size()))
            throw std::runtime_error("test_client: send failed");
    }

    /// Next frame as parsed JSON. Throws on timeout or EOF.
    obs::json_value read_frame(int timeout_ms = 30000) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        std::string frame;
        for (;;) {
            const frame_splitter::status st = splitter_.next(frame);
            if (st == frame_splitter::status::frame)
                return obs::json_value::parse(frame);
            if (st == frame_splitter::status::overflow)
                throw std::runtime_error("test_client: oversized frame");
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (remaining <= 0)
                throw std::runtime_error("test_client: read timed out");
            if (!wait_readable(fd_.get(), static_cast<int>(remaining)))
                throw std::runtime_error("test_client: read timed out");
            char buf[4096];
            const long n = recv_some(fd_.get(), buf, sizeof buf);
            if (n <= 0)
                throw std::runtime_error("test_client: connection closed");
            splitter_.feed(buf, static_cast<std::size_t>(n));
        }
    }

    /// Skip frames until one with type == `wanted` arrives.
    obs::json_value read_until(const std::string& wanted,
                               int timeout_ms = 30000) {
        for (;;) {
            obs::json_value doc = read_frame(timeout_ms);
            const obs::json_value* type = doc.find("type");
            if (type && type->is_string() && type->as_string() == wanted)
                return doc;
        }
    }

    /// True when the server closed the connection (EOF within timeout).
    bool reads_eof(int timeout_ms = 5000) {
        for (;;) {
            if (!wait_readable(fd_.get(), timeout_ms)) return false;
            char buf[4096];
            const long n = recv_some(fd_.get(), buf, sizeof buf);
            if (n == 0) return true;
            if (n < 0) return true;
            splitter_.feed(buf, static_cast<std::size_t>(n));
        }
    }

    void close() { fd_.close(); }

private:
    socket_fd fd_;
    frame_splitter splitter_;
};

inline std::string type_of(const obs::json_value& doc) {
    const obs::json_value* type = doc.find("type");
    return type && type->is_string() ? type->as_string() : "";
}

inline std::string code_of(const obs::json_value& doc) {
    const obs::json_value* code = doc.find("code");
    return code && code->is_string() ? code->as_string() : "";
}

}  // namespace ehdse::svc::testutil
