// Metamorphic property: memoisation is invisible. For any valid request,
// the cached evaluator answers bit-identically to the uncached one, a
// repeated request hits, and requests equal after canonicalisation share
// one entry.
#include <gtest/gtest.h>

#include "testkit_oracles.hpp"

namespace tk = ehdse::testkit;

TEST(TestkitCacheProperty, CachedEqualsUncachedBitForBit) {
    tk::property_def<ehdse::spec::experiment_spec> def;
    def.name = "TestkitCacheProperty.CachedEqualsUncachedBitForBit";
    def.generate = [](tk::prng& r) {
        ehdse::spec::experiment_spec s = tk::gen_experiment_spec(r);
        // Keep the evaluation itself short: the property needs four runs
        // per case, and the invariant is fidelity-independent.
        s.scn.duration_s = r.uniform(60.0, 180.0);
        return s;
    };
    def.property = tk::oracles::check_cache_bit_equality;
    def.shrink = [](const ehdse::spec::experiment_spec& s) {
        return tk::shrink_spec(s);
    };
    def.show = [](const ehdse::spec::experiment_spec& s) {
        return ehdse::spec::to_json(s).dump();
    };
    tk::property_options options;
    options.cases = 60;
    const auto result = tk::run_property(def, options);
    EXPECT_TRUE(result.ok) << result.report();
}
