// obs metrics — concurrent counter/gauge/histogram correctness, log-scale
// bucketing edge cases, registry snapshots, scoped timers.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timing.hpp"

namespace eo = ehdse::obs;

TEST(Counter, ConcurrentIncrementsAreExact) {
    eo::metrics_registry reg;
    constexpr int k_threads = 8;
    constexpr int k_increments = 50'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < k_threads; ++t)
        threads.emplace_back([&reg] {
            // Every thread resolves the same name; lookups contend on the
            // registry mutex but the returned instrument is shared.
            eo::counter& c = reg.get_counter("test.hits");
            for (int i = 0; i < k_increments; ++i) c.add();
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(reg.get_counter("test.hits").value(),
              static_cast<std::uint64_t>(k_threads) * k_increments);
}

TEST(Gauge, ConcurrentAddAccumulates) {
    eo::metrics_registry reg;
    eo::gauge& g = reg.get_gauge("test.level");
    constexpr int k_threads = 4;
    constexpr int k_adds = 10'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < k_threads; ++t)
        threads.emplace_back([&g] {
            for (int i = 0; i < k_adds; ++i) g.add(0.5);
        });
    for (auto& t : threads) t.join();
    EXPECT_DOUBLE_EQ(g.value(), k_threads * k_adds * 0.5);
    g.set(-3.25);
    EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(Histogram, BucketEdges) {
    using h = eo::histogram;
    // Bucket 0 starts exactly at the minimum trackable value.
    EXPECT_EQ(h::bucket_index(h::k_min_value), 0u);
    EXPECT_DOUBLE_EQ(h::bucket_lower(0), h::k_min_value);
    // Each bucket doubles the previous lower edge.
    for (std::size_t b = 1; b < h::k_buckets; ++b)
        EXPECT_DOUBLE_EQ(h::bucket_lower(b), 2.0 * h::bucket_lower(b - 1));
    // Midpoints land in their own bucket; index is monotone in value.
    for (std::size_t b = 0; b < h::k_buckets; ++b)
        EXPECT_EQ(h::bucket_index(1.5 * h::bucket_lower(b)), b) << b;
    // Values past the last bucket clamp to the overflow index.
    EXPECT_EQ(h::bucket_index(h::bucket_lower(h::k_buckets) * 10.0),
              h::k_buckets);
}

TEST(Histogram, UnderflowOverflowAndNan) {
    eo::histogram h;
    h.observe(0.0);                       // below min -> underflow
    h.observe(-1.0);                      // negative -> underflow
    h.observe(0.5e-9);                    // below min -> underflow
    h.observe(std::nan(""));              // NaN -> underflow, not summed
    h.observe(1e12);                      // past the top -> overflow
    h.observe(1.0);                       // a regular bucket
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.underflow(), 4u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1e12);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 - 1.0 + 0.5e-9 + 1e12 + 1.0);
}

TEST(Histogram, EmptyIsWellDefined) {
    eo::histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesApproximateDistribution) {
    eo::histogram h;
    // 100 observations at ~1 ms, 10 at ~1 s: p50 near 1 ms, p99 near 1 s.
    for (int i = 0; i < 100; ++i) h.observe(1.1e-3);
    for (int i = 0; i < 10; ++i) h.observe(1.1);
    const double p50 = h.quantile(0.5);
    EXPECT_GT(p50, 0.5e-3);
    EXPECT_LT(p50, 4e-3);
    const double p99 = h.quantile(0.99);
    EXPECT_GT(p99, 0.5);
    EXPECT_LT(p99, 4.0);
    // Quantiles are monotone in q.
    EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
}

TEST(Histogram, ConcurrentObservationsKeepTotals) {
    eo::histogram h;
    constexpr int k_threads = 8;
    constexpr int k_obs = 20'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < k_threads; ++t)
        threads.emplace_back([&h, t] {
            for (int i = 0; i < k_obs; ++i)
                h.observe(1e-3 * (1 + t));  // distinct buckets per thread
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(k_threads) * k_obs);
    std::uint64_t bucketed = h.underflow() + h.overflow();
    for (std::size_t b = 0; b < eo::histogram::k_buckets; ++b)
        bucketed += h.bucket(b);
    EXPECT_EQ(bucketed, h.count());
    EXPECT_NEAR(h.sum(), k_obs * 1e-3 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8), 1e-6);
}

TEST(Registry, SameNameReturnsSameInstrument) {
    eo::metrics_registry reg;
    EXPECT_EQ(&reg.get_counter("a"), &reg.get_counter("a"));
    EXPECT_NE(&reg.get_counter("a"), &reg.get_counter("b"));
    // Counters, gauges and histograms live in separate namespaces.
    reg.get_gauge("a");
    reg.get_histogram("a");
    EXPECT_EQ(reg.counter_names(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(reg.gauge_names(), (std::vector<std::string>{"a"}));
    EXPECT_EQ(reg.histogram_names(), (std::vector<std::string>{"a"}));
}

TEST(Registry, JsonSnapshot) {
    eo::metrics_registry reg;
    reg.get_counter("runs").add(3);
    reg.get_gauge("level").set(1.5);
    reg.get_histogram("lat").observe(0.25);
    const eo::json_value snap = reg.to_json();
    EXPECT_DOUBLE_EQ(snap.at("counters").at("runs").as_number(), 3.0);
    EXPECT_DOUBLE_EQ(snap.at("gauges").at("level").as_number(), 1.5);
    const auto& lat = snap.at("histograms").at("lat");
    EXPECT_DOUBLE_EQ(lat.at("count").as_number(), 1.0);
    EXPECT_DOUBLE_EQ(lat.at("sum").as_number(), 0.25);
    EXPECT_EQ(lat.at("buckets").size(), 1u);
    // The snapshot survives a serialise/parse round trip.
    EXPECT_EQ(eo::json_value::parse(snap.dump(2)), snap);
}

TEST(ScopedTimer, RecordsIntoHistogram) {
    eo::histogram h;
    {
        eo::scoped_timer timer(&h);
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.max(), 0.0);
}

TEST(ScopedTimer, StopIsIdempotentAndReturnsElapsed) {
    eo::histogram h;
    eo::scoped_timer timer(&h);
    const double s = timer.stop();
    EXPECT_GE(s, 0.0);
    EXPECT_DOUBLE_EQ(timer.stop(), 0.0);  // second stop is a no-op
    EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimer, NullSinkIsSafe) {
    eo::scoped_timer a(static_cast<eo::histogram*>(nullptr));
    eo::scoped_timer b(static_cast<eo::metrics_registry*>(nullptr), "x");
    EXPECT_DOUBLE_EQ(a.stop(), 0.0);
    // b records nothing at scope exit either.
}

TEST(GlobalRegistry, DefaultsOffAndInstallable) {
    // Note: other tests must not leave a global registry installed.
    EXPECT_EQ(eo::global_registry(), nullptr);
    eo::metrics_registry reg;
    eo::set_global_registry(&reg);
    EXPECT_EQ(eo::global_registry(), &reg);
    eo::set_global_registry(nullptr);
    EXPECT_EQ(eo::global_registry(), nullptr);
}
