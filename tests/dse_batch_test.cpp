// Batch evaluation path: system_evaluator::evaluate_batch (positional
// results, lane independence, scalar fallbacks), the memoising
// cached_evaluator::evaluate_batch (hit/miss accounting, duplicates,
// exception recovery), and run_rsm_flow equivalence with batching on
// vs off.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dse/cached_evaluator.hpp"
#include "dse/rsm_flow.hpp"
#include "obs/run_manifest.hpp"

namespace ed = ehdse::dse;

namespace {

/// Two minutes with one frequency step: long enough to transmit and to
/// exercise the tuning controller, fast enough for a unit test.
ed::scenario fast_scenario() {
    ed::scenario s;
    s.duration_s = 120.0;
    s.step_period_s = 50.0;
    s.step_count = 1;
    return s;
}

std::vector<ed::system_config> spread_configs(std::size_t n) {
    std::vector<ed::system_config> configs;
    for (std::size_t i = 0; i < n; ++i) {
        ed::system_config cfg = ed::system_config::original();
        cfg.tx_interval_s += static_cast<double>(i);
        cfg.watchdog_period_s += 10.0 * static_cast<double>(i);
        configs.push_back(cfg);
    }
    return configs;
}

/// Exact equality of the deterministic fields (wall_time_s excluded).
void expect_results_equal(const ed::evaluation_result& a,
                          const ed::evaluation_result& b,
                          const std::string& what) {
    EXPECT_EQ(a.transmissions, b.transmissions) << what;
    EXPECT_EQ(a.suppressed_wakeups, b.suppressed_wakeups) << what;
    EXPECT_EQ(a.events, b.events) << what;
    EXPECT_EQ(a.ode_steps, b.ode_steps) << what;
    EXPECT_EQ(a.final_voltage_v, b.final_voltage_v) << what;
    EXPECT_EQ(a.min_voltage_v, b.min_voltage_v) << what;
    EXPECT_EQ(a.max_voltage_v, b.max_voltage_v) << what;
    EXPECT_EQ(a.harvested_energy_j, b.harvested_energy_j) << what;
    EXPECT_EQ(a.sim_ok, b.sim_ok) << what;
}

/// Cross-kernel equality: integer objectives exact, continuous fields to
/// solver tolerance (the batch kernel's polynomial asin differs from
/// libm at ~1e-9 relative).
void expect_results_close(const ed::evaluation_result& a,
                          const ed::evaluation_result& b,
                          const std::string& what) {
    const auto near = [&](double x, double y, const char* field) {
        EXPECT_NEAR(x, y, 1e-12 + 1e-6 * std::abs(y)) << what << ": " << field;
    };
    EXPECT_EQ(a.transmissions, b.transmissions) << what;
    EXPECT_EQ(a.suppressed_wakeups, b.suppressed_wakeups) << what;
    EXPECT_EQ(a.sim_ok, b.sim_ok) << what;
    near(a.final_voltage_v, b.final_voltage_v, "final_voltage_v");
    near(a.min_voltage_v, b.min_voltage_v, "min_voltage_v");
    near(a.max_voltage_v, b.max_voltage_v, "max_voltage_v");
    near(a.harvested_energy_j, b.harvested_energy_j, "harvested_energy_j");
}

}  // namespace

TEST(EvaluateBatch, MatchesScalarWithinKernelTolerance) {
    const ed::system_evaluator evaluator(fast_scenario());
    const auto configs = spread_configs(5);

    const auto batch = evaluator.evaluate_batch(configs);
    ASSERT_EQ(batch.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto scalar = evaluator.evaluate(configs[i]);
        // The batch kernel solves the same envelope fixed point with a
        // polynomial asin, so continuous fields agree to solver tolerance
        // and event counts to a step or two, not bit for bit.
        EXPECT_NEAR(static_cast<double>(batch[i].transmissions),
                    static_cast<double>(scalar.transmissions), 2.0)
            << "lane " << i;
        EXPECT_NEAR(batch[i].final_voltage_v, scalar.final_voltage_v,
                    1e-6 + 1e-3 * std::abs(scalar.final_voltage_v))
            << "lane " << i;
        EXPECT_NEAR(batch[i].harvested_energy_j, scalar.harvested_energy_j,
                    1e-6 + 1e-3 * std::abs(scalar.harvested_energy_j))
            << "lane " << i;
        EXPECT_EQ(batch[i].sim_ok, scalar.sim_ok) << "lane " << i;
    }
}

TEST(EvaluateBatch, ResultsArePositionalAndLaneIndependent) {
    const ed::system_evaluator evaluator(fast_scenario());
    const auto two = spread_configs(2);
    const std::vector<ed::system_config> mixed = {two[0], two[1], two[0]};

    const auto batch = evaluator.evaluate_batch(mixed);
    ASSERT_EQ(batch.size(), 3u);
    // Identical configs in different lanes produce bitwise-identical
    // results, and each lane equals the same config run as a batch of one.
    expect_results_equal(batch[0], batch[2], "duplicate lanes");
    const auto alone = evaluator.evaluate_batch({&mixed[1], 1});
    expect_results_equal(batch[1], alone.front(), "batched vs alone");
}

TEST(EvaluateBatch, ChunksBeyondMaxLanes) {
    const ed::system_evaluator evaluator(fast_scenario());
    const auto configs =
        spread_configs(ed::system_evaluator::k_max_batch_lanes + 4);

    const auto batch = evaluator.evaluate_batch(configs);
    ASSERT_EQ(batch.size(), configs.size());
    // Chunk boundaries are invisible: every lane equals its batch-of-one
    // evaluation regardless of which chunk it landed in.
    for (const std::size_t i :
         {std::size_t{0}, ed::system_evaluator::k_max_batch_lanes - 1,
          ed::system_evaluator::k_max_batch_lanes,
          configs.size() - 1}) {
        const auto alone = evaluator.evaluate_batch({&configs[i], 1});
        expect_results_equal(batch[i], alone.front(),
                             "chunked lane " + std::to_string(i));
    }
}

TEST(EvaluateBatch, FallsBackToScalarForTraces) {
    const ed::system_evaluator evaluator(fast_scenario());
    ed::evaluation_options eval;
    eval.record_traces = true;
    const auto configs = spread_configs(2);

    const auto batch = evaluator.evaluate_batch(configs, eval);
    ASSERT_EQ(batch.size(), 2u);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(batch[i].voltage_trace.has_value()) << "lane " << i;
        // The fallback IS the scalar path, so equality is bitwise here.
        expect_results_equal(batch[i], evaluator.evaluate(configs[i], eval),
                             "traced lane " + std::to_string(i));
    }
}

TEST(EvaluateBatch, FallsBackToScalarForTransientFidelity) {
    ed::scenario s = fast_scenario();
    s.duration_s = 20.0;  // transient runs resolve the carrier — keep short
    s.step_count = 0;
    const ed::system_evaluator evaluator(s);
    ed::evaluation_options eval;
    eval.model = ed::fidelity::transient;
    const auto configs = spread_configs(2);

    const auto batch = evaluator.evaluate_batch(configs, eval);
    ASSERT_EQ(batch.size(), 2u);
    for (std::size_t i = 0; i < batch.size(); ++i)
        expect_results_equal(batch[i], evaluator.evaluate(configs[i], eval),
                             "transient lane " + std::to_string(i));
}

TEST(CachedEvaluatorBatch, MissesOnceThenHits) {
    const ed::system_evaluator inner(fast_scenario());
    const ed::cached_evaluator cache(inner);
    const auto configs = spread_configs(4);

    const auto first = cache.evaluate_batch(configs);
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(inner.runs(), 4u);

    const auto second = cache.evaluate_batch(configs);
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().hits, 4u);
    EXPECT_EQ(inner.runs(), 4u);  // nothing re-simulated
    for (std::size_t i = 0; i < configs.size(); ++i)
        expect_results_equal(first[i], second[i],
                             "hit lane " + std::to_string(i));

    // The scalar path shares the same entries.
    const auto scalar = cache.evaluate(configs[2]);
    EXPECT_EQ(cache.stats().hits, 5u);
    expect_results_equal(first[2], scalar, "scalar hit on batch entry");
}

TEST(CachedEvaluatorBatch, DuplicatesWithinOneBatchSimulateOnce) {
    const ed::system_evaluator inner(fast_scenario());
    const ed::cached_evaluator cache(inner);
    const auto two = spread_configs(2);
    const std::vector<ed::system_config> mixed = {two[0], two[1], two[0],
                                                  two[0]};

    const auto results = cache.evaluate_batch(mixed);
    ASSERT_EQ(results.size(), 4u);
    // Two distinct keys simulate; the repeats join the first lane's
    // future inside the same call.
    EXPECT_EQ(inner.runs(), 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().entries, 2u);
    expect_results_equal(results[0], results[2], "duplicate joins future");
    expect_results_equal(results[0], results[3], "duplicate joins future");
}

namespace {

/// Throws on the first batch, works from the second on — exercises the
/// cache's error path: waiters get the exception, entries are removed, a
/// retry re-simulates.
class flaky_once_evaluator final : public ed::system_evaluator {
public:
    using ed::system_evaluator::system_evaluator;

    std::vector<ed::evaluation_result> evaluate_batch(
        std::span<const ed::system_config> configs,
        const ed::evaluation_options& options = {}) const override {
        if (!failed_) {
            failed_ = true;
            throw std::runtime_error("injected batch failure");
        }
        return ed::system_evaluator::evaluate_batch(configs, options);
    }

private:
    mutable bool failed_ = false;
};

}  // namespace

TEST(CachedEvaluatorBatch, ExceptionEvictsEntriesAndRetrySucceeds) {
    const flaky_once_evaluator inner(fast_scenario());
    const ed::cached_evaluator cache(inner);
    const auto configs = spread_configs(3);

    EXPECT_THROW(cache.evaluate_batch(configs), std::runtime_error);
    // Failed entries must not poison the cache: nothing retained, and the
    // identical request re-simulates instead of rethrowing a stored error.
    EXPECT_EQ(cache.stats().entries, 0u);
    const auto retry = cache.evaluate_batch(configs);
    ASSERT_EQ(retry.size(), configs.size());
    for (const auto& r : retry) EXPECT_TRUE(r.sim_ok);
    EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(FlowBatch, BatchingOnAndOffProduceTheSameFlow) {
    const ed::system_evaluator evaluator(fast_scenario());

    const auto run = [&](std::size_t width, ehdse::obs::run_manifest* m) {
        ed::flow_options opts;
        opts.doe_runs = 10;
        opts.batch_width = width;
        opts.manifest = m;
        return ed::run_rsm_flow(evaluator, opts);
    };

    ehdse::obs::run_manifest with_m, without_m;
    const auto with = run(16, &with_m);
    const auto without = run(0, &without_m);

    // Same design, same responses, same optimum: batch_width is a runtime
    // execution knob, invisible in every recorded objective.
    ASSERT_EQ(with.responses.size(), without.responses.size());
    for (std::size_t i = 0; i < with.responses.size(); ++i)
        EXPECT_EQ(with.responses[i], without.responses[i]) << "point " << i;
    expect_results_close(with.original_eval, without.original_eval,
                         "baseline");
    ASSERT_EQ(with.outcomes.size(), without.outcomes.size());
    for (std::size_t i = 0; i < with.outcomes.size(); ++i) {
        EXPECT_EQ(with.outcomes[i].name, without.outcomes[i].name);
        expect_results_close(with.outcomes[i].validated,
                             without.outcomes[i].validated,
                             "outcome " + with.outcomes[i].name);
    }

    // The manifests key the same experiment: batch_width is absent from
    // the canonical spec, so both runs stamp the identical spec_hash.
    const auto hash_of = [](const ehdse::obs::run_manifest& m) {
        const std::string dump = m.to_json().dump();
        const auto pos = dump.find("\"spec_hash\"");
        EXPECT_NE(pos, std::string::npos);
        return dump.substr(pos, 40);
    };
    EXPECT_EQ(hash_of(with_m), hash_of(without_m));
}
