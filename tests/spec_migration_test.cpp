// Golden migration suite for the spec schema lineage. The fixtures under
// tests/data/spec_migration are one "rich" experiment pinned in every
// layout the codec has ever written:
//
//   rich_v1.json           ehdse.experiment_spec/1 (no design/surrogate,
//                          no harvester section)
//   rich_v2.json           ehdse.experiment_spec/2 (no harvester section)
//   rich_v3_canonical.json the canonical /3 document
//   rich_spec_hash.txt     spec_hash_hex of the canonicalized spec
//
// Every layout must decode to the SAME experiment_spec (absent sections
// fill in the defaults those layouts hardwired — in particular the
// electromagnetic harvester), re-encode byte-identically to the canonical
// /3 document, and hash to the pinned value. A failure here means old
// dumped specs would replay differently or lose their cache keys.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"

namespace {

using namespace ehdse;

std::string load_fixture(const std::string& name) {
    const std::string path =
        std::string(EHDSE_TEST_DATA_DIR) + "/spec_migration/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string reencode(const spec::experiment_spec& parsed) {
    return spec::to_json(parsed).dump(2) + "\n";
}

std::string trimmed(std::string text) {
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();
    return text;
}

class SpecMigration : public ::testing::Test {
protected:
    const std::string v1_text_ = load_fixture("rich_v1.json");
    const std::string v2_text_ = load_fixture("rich_v2.json");
    const std::string v3_text_ = load_fixture("rich_v3_canonical.json");
    const std::string pinned_hash_ = trimmed(load_fixture("rich_spec_hash.txt"));
};

TEST_F(SpecMigration, EveryLayoutDecodesToTheSameSpec) {
    const spec::experiment_spec v1 = spec::parse_spec(v1_text_);
    const spec::experiment_spec v2 = spec::parse_spec(v2_text_);
    const spec::experiment_spec v3 = spec::parse_spec(v3_text_);
    EXPECT_EQ(v1, v3);
    EXPECT_EQ(v2, v3);
}

TEST_F(SpecMigration, AbsentHarvesterSectionMeansElectromagnetic) {
    EXPECT_EQ(spec::parse_spec(v1_text_).harv.model, "electromagnetic");
    EXPECT_EQ(spec::parse_spec(v2_text_).harv.model, "electromagnetic");
}

TEST_F(SpecMigration, ReencodeIsByteIdenticalCanonicalV3) {
    EXPECT_EQ(reencode(spec::parse_spec(v1_text_)), v3_text_);
    EXPECT_EQ(reencode(spec::parse_spec(v2_text_)), v3_text_);
    // The canonical document itself is a fixed point of the codec.
    EXPECT_EQ(reencode(spec::parse_spec(v3_text_)), v3_text_);
}

TEST_F(SpecMigration, CanonicalHashIsPinned) {
    for (const std::string* text : {&v1_text_, &v2_text_, &v3_text_}) {
        const spec::experiment_spec parsed = spec::parse_spec(*text);
        EXPECT_EQ(spec::spec_hash_hex(spec::spec_hash(parsed.canonicalized())),
                  pinned_hash_);
    }
}

// The schema tag is an accepted-version allowlist, not a per-version key
// filter: a document carrying newer sections under an older tag still
// parses to the same spec (content wins), while an unknown tag fails.
TEST_F(SpecMigration, SchemaTagIsAnAllowlist) {
    const spec::experiment_spec canonical = spec::parse_spec(v3_text_);
    const std::string from = std::string("\"") + spec::k_spec_schema + "\"";
    for (const char* schema :
         {spec::k_spec_schema_legacy, spec::k_spec_schema_v2}) {
        std::string text = v3_text_;
        text.replace(text.find(from), from.size(),
                     std::string("\"") + schema + "\"");
        EXPECT_EQ(spec::parse_spec(text), canonical) << schema;
    }
    std::string unknown = v3_text_;
    unknown.replace(unknown.find(from), from.size(),
                    "\"ehdse.experiment_spec/99\"");
    EXPECT_THROW((void)spec::parse_spec(unknown), std::invalid_argument);
}

}  // namespace
