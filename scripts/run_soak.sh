#!/usr/bin/env bash
# run_soak.sh — drive the experiment-service soak (svc_soak_test) at a
# configurable scale: N concurrent client connections pipelining M spec
# submissions each against one server, asserting zero lost responses and
# cross-client cache hits (docs/service.md, docs/testing.md).
#
# Usage:
#   scripts/run_soak.sh                      # 8 clients x 25 specs
#   scripts/run_soak.sh --clients 16 --specs 100 --configs 20
#   scripts/run_soak.sh --duration 60        # repeat for ~60 seconds
#   scripts/run_soak.sh --tsan               # run in the TSan build tree
#
# The soak binary scales through EHDSE_SOAK_CLIENTS / EHDSE_SOAK_SPECS /
# EHDSE_SOAK_CONFIGS; this script builds the right tree, exports them,
# and loops the test until the requested wall-clock duration has passed
# (at least one iteration always runs).
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

clients=8
specs=25
configs=10
duration=0
tree=build
cmake_args=()

while [ $# -gt 0 ]; do
    case "$1" in
        --clients)  clients="$2"; shift 2 ;;
        --specs)    specs="$2"; shift 2 ;;
        --configs)  configs="$2"; shift 2 ;;
        --duration) duration="$2"; shift 2 ;;
        --tsan)     tree=build-thread
                    cmake_args=(-DEHDSE_SANITIZE=thread
                                -DEHDSE_BUILD_BENCH=OFF
                                -DEHDSE_BUILD_EXAMPLES=OFF)
                    shift ;;
        *) echo "run_soak: unknown argument '$1'" >&2
           echo "usage: $0 [--clients N] [--specs M] [--configs K]" >&2
           echo "          [--duration SECONDS] [--tsan]" >&2
           exit 2 ;;
    esac
done

cmake -B "$tree" -S . "${cmake_args[@]+"${cmake_args[@]}"}"
cmake --build "$tree" -j --target svc_soak_test

export EHDSE_SOAK_CLIENTS="$clients"
export EHDSE_SOAK_SPECS="$specs"
export EHDSE_SOAK_CONFIGS="$configs"

total=$((clients * specs))
echo "== soak: $clients clients x $specs specs = $total submissions" \
     "over $configs design points (tree: $tree) =="

start=$(date +%s)
iteration=0
while :; do
    iteration=$((iteration + 1))
    echo "-- soak iteration $iteration --"
    "$tree/tests/svc_soak_test"
    elapsed=$(( $(date +%s) - start ))
    [ "$elapsed" -ge "$duration" ] && break
done

echo "run_soak: $iteration iteration(s) passed in ${elapsed}s"
