#!/usr/bin/env bash
# check_perf.sh — compare a freshly produced BENCH_<name>.json against the
# committed baseline at the repo root and fail on a throughput regression.
# This is the perf gate behind the `perf`-labelled ctest: the batch kernel
# must not silently decay.
#
# Usage: check_perf.sh <fresh.json> [<baseline.json>]
#   When <baseline.json> is omitted it is looked up at the repo root by
#   the fresh file's basename.
#
# Rules (per metric, matched by name):
#   * unit "evals/s": fresh must be >= (1 - tolerance) * baseline —
#     default tolerance 0.15 (the >15% regression gate), override with
#     EHDSE_PERF_TOLERANCE.
#   * metric "batch_speedup_x": fresh must also be >= the hard floor of
#     4.0 (override with EHDSE_MIN_BATCH_SPEEDUP) — the batch kernel's
#     contract is machine-relative, so this check is stable across hosts.
#   * other units are informational only.
#
# Exit codes: 0 ok, 1 regression, 2 usage/parse error,
#   77 skipped (EHDSE_SKIP_PERF_GATE set — ctest reports SKIP).
set -u

if [ -n "${EHDSE_SKIP_PERF_GATE:-}" ]; then
    echo "perf gate skipped (EHDSE_SKIP_PERF_GATE set)"
    exit 77
fi

fresh="${1:-}"
if [ -z "$fresh" ] || [ ! -f "$fresh" ]; then
    echo "usage: $0 <fresh.json> [<baseline.json>]" >&2
    exit 2
fi
root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="${2:-$root/$(basename "$fresh")}"
if [ ! -f "$baseline" ]; then
    echo "check_perf: no committed baseline at $baseline" >&2
    exit 2
fi

tolerance="${EHDSE_PERF_TOLERANCE:-0.15}"
min_speedup="${EHDSE_MIN_BATCH_SPEEDUP:-4.0}"

# The metric lines are flat (one object per line, fixed key order — see
# bench/bench_json.hpp), so awk can read them without a JSON library.
read_metrics() {
    awk -F'"' '/"metric":/ {
        name = $4; unit = $10;
        split($0, parts, /"value": /); split(parts[2], v, /,/);
        print name, v[1], unit;
    }' "$1"
}

status=0
checked=0
while read -r name value unit; do
    base=$(read_metrics "$baseline" | awk -v n="$name" '$1 == n {print $2; exit}')
    if [ -z "$base" ]; then
        echo "  new metric $name = $value $unit (no baseline)"
        continue
    fi
    case "$unit" in
    evals/s)
        checked=$((checked + 1))
        ok=$(awk -v f="$value" -v b="$base" -v t="$tolerance" \
                 'BEGIN {print (f >= (1 - t) * b) ? 1 : 0}')
        delta=$(awk -v f="$value" -v b="$base" 'BEGIN {printf "%+.1f%%", 100 * (f / b - 1)}')
        if [ "$ok" = 1 ]; then
            echo "  ok   $name: $value $unit vs baseline $base ($delta)"
        else
            echo "  FAIL $name: $value $unit vs baseline $base ($delta, tolerance -$(awk -v t="$tolerance" 'BEGIN {printf "%.0f%%", 100*t}'))"
            status=1
        fi
        ;;
    *)
        if [ "$name" = "batch_speedup_x" ]; then
            checked=$((checked + 1))
            ok=$(awk -v f="$value" -v m="$min_speedup" 'BEGIN {print (f >= m) ? 1 : 0}')
            if [ "$ok" = 1 ]; then
                echo "  ok   $name: ${value}x (floor ${min_speedup}x)"
            else
                echo "  FAIL $name: ${value}x below the ${min_speedup}x floor"
                status=1
            fi
        else
            echo "  info $name = $value $unit"
        fi
        ;;
    esac
done < <(read_metrics "$fresh")

if [ "$checked" -eq 0 ]; then
    echo "check_perf: no gated metrics found in $fresh" >&2
    exit 2
fi
[ "$status" -eq 0 ] && echo "perf gate ok ($checked metrics checked)"
exit "$status"
