# gnuplot script for the Fig. 5 reproduction CSVs written by
# bench_fig5_supercap_voltage (run the bench first, from this directory).
set datafile separator ','
set xlabel 'time (s)'
set ylabel 'supercapacitor voltage (V)'
set key bottom right
set grid
set terminal pngcairo size 1000,500
set output 'fig5.png'
plot 'fig5_original.csv'  using 1:2 skip 1 with lines lw 2 title 'original design', \
     'fig5_optimised.csv' using 1:2 skip 1 with lines lw 2 title 'optimised design'
