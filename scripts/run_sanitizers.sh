#!/usr/bin/env bash
# run_sanitizers.sh — build and run the concurrency + property suites
# under the sanitizer presets:
#
#   thread    TSan: the parallel flow / pool / cache code
#   address   ASan+UBSan (-fsanitize=address,undefined): lifetime and UB
#
# Each preset gets its own build tree (build-<preset>) and runs
#   ctest -L "testkit|exec|rsm|svc|harvester"
# The svc label includes the service soak (svc_soak_test), so the TSan
# pass exercises hundreds of concurrent submissions through the server's
# reader threads, runner tasks and shared caches. The exec label carries
# the SoA batch-kernel suites (sim_batch_test, dse_batch_test) plus the
# batched single-flight cache path, so TSan sees evaluate_batch driven
# from pool tasks too. The harvester label runs the backend-registry and
# electrostatic device suites, so both device classes' physics hooks get
# the lifetime/UB pass as well.
# Usage:
#   scripts/run_sanitizers.sh              # both presets
#   EHDSE_SANITIZE=address scripts/run_sanitizers.sh   # one preset
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

presets="${EHDSE_SANITIZE:-thread address}"
labels='testkit|exec|rsm|svc|harvester'
status=0

for preset in $presets; do
    tree="build-$preset"
    echo "== sanitizer pass: $preset (tree: $tree) =="
    cmake -B "$tree" -S . -DEHDSE_SANITIZE="$preset" \
          -DEHDSE_BUILD_BENCH=OFF -DEHDSE_BUILD_EXAMPLES=OFF
    cmake --build "$tree" -j
    if ! ctest --test-dir "$tree" -L "$labels" --output-on-failure -j; then
        echo "run_sanitizers: $preset pass FAILED" >&2
        status=1
    fi
done

exit $status
