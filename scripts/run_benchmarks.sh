#!/usr/bin/env bash
# run_benchmarks.sh — produce the committed perf trajectory: build the
# bench harnesses in Release, run the JSON-emitting ones, and collect
# their BENCH_*.json files at the repo root (where EXPERIMENTS.md points
# and scripts/check_perf.sh reads its baselines). After a deliberate perf
# change, run this and commit the refreshed BENCH_*.json files; the
# one-line deltas printed at the end show what moved.
#
# Usage:
#   scripts/run_benchmarks.sh             # build + run + collect + delta
#   EHDSE_BENCH_BUILD_DIR=build-foo ...   # override the build tree
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

build="${EHDSE_BENCH_BUILD_DIR:-build-bench}"
cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=Release \
    -DEHDSE_BUILD_TESTS=OFF -DEHDSE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$build" -j --target bench_batch_kernel bench_exec_throughput \
    bench_harvester_backends

# Each bench writes BENCH_<name>.json into $EHDSE_BENCH_OUT.
out="$build/bench_out"
mkdir -p "$out"
for bench in bench_batch_kernel bench_exec_throughput bench_harvester_backends; do
    echo "=== $bench ==="
    EHDSE_BENCH_OUT="$out" "$build/bench/$bench"
    echo
done

# One-line delta per metric against the committed baselines, then install
# the fresh files at the repo root.
for fresh in "$out"/BENCH_*.json; do
    name="$(basename "$fresh")"
    if [ -f "$root/$name" ]; then
        echo "--- $name vs committed baseline ---"
        EHDSE_SKIP_PERF_GATE= scripts/check_perf.sh "$fresh" "$root/$name" || true
    else
        echo "--- $name: no committed baseline yet ---"
    fi
    cp "$fresh" "$root/$name"
    echo "updated $root/$name"
done
