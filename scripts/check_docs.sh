#!/usr/bin/env bash
# check_docs.sh — fail when README.md or docs/*.md reference repo paths
# that do not exist, so documentation cannot silently rot as the tree
# moves, and when a load-bearing doc section disappears. Wired into
# CTest as `docs_references` (tier-1 catches it).
#
# What counts as a reference:
#   * any token rooted at a first-level source dir:
#       src/... docs/... tests/... tools/... bench/... examples/... scripts/...
#     (tokens inside longer paths, e.g. ./build/tools/..., are ignored);
#   * any ALL-CAPS top-level markdown file (ROADMAP.md, DESIGN.md, ...).
# Tokens containing a glob (*) are skipped. Trailing sentence punctuation
# is stripped. A path passes when it exists as a file or directory.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 2

status=0
checked=0

check_file() {
    local doc="$1"
    local refs
    refs=$(grep -oP '(?<![A-Za-z0-9_/.-])(src|docs|tests|tools|bench|examples|scripts)/[A-Za-z0-9_./-]+|(?<![A-Za-z0-9_/.-])[A-Z][A-Z_]*\.md' \
               "$doc" 2>/dev/null | sed 's/[.,:;)]*$//' | sort -u)
    while IFS= read -r ref; do
        [ -z "$ref" ] && continue
        case "$ref" in
            *'*'*) continue ;;  # glob patterns are not concrete paths
        esac
        checked=$((checked + 1))
        if [ ! -e "$ref" ]; then
            echo "check_docs: $doc references missing path: $ref" >&2
            status=1
        fi
    done <<EOF
$refs
EOF
}

# Sections other docs/tests/tools point readers at; deleting one must
# fail CI, not silently orphan the pointers.
require_section() {
    local doc="$1" pattern="$2"
    checked=$((checked + 1))
    if ! grep -qE -e "$pattern" "$doc" 2>/dev/null; then
        echo "check_docs: $doc lost required section matching: $pattern" >&2
        status=1
    fi
}

check_file README.md
for doc in docs/*.md; do
    [ -f "$doc" ] && check_file "$doc"
done

require_section docs/architecture.md '^## .*[Ee]xperiment spec'
require_section docs/architecture.md '^## .*[Dd]eterminism'
require_section docs/architecture.md '^## .*[Pp]luggable pipeline'
require_section docs/architecture.md 'make_surrogate'
require_section docs/architecture.md 'make_design'
require_section docs/architecture.md '^## .*[Bb]atch kernel'
require_section docs/architecture.md '^### Harvester backends'
require_section docs/architecture.md 'make_harvester'
require_section DESIGN.md '^### Harvester parameter envelopes'
require_section docs/observability.md '^### Manifest JSON schema'
require_section docs/observability.md 'sim\.batch\.'
require_section docs/observability.md 'dse\.batch\.'
require_section EXPERIMENTS.md 'BENCH_batch_kernel\.json'
require_section EXPERIMENTS.md 'BENCH_harvester_backends\.json'
require_section EXPERIMENTS.md 'run_benchmarks\.sh'
require_section docs/observability.md '\-\-dump\-spec'
require_section docs/observability.md 'spec_hash'
require_section docs/observability.md 'options\.fit'
require_section docs/observability.md 'options\.surrogate'
require_section docs/service.md '^## Framing'
require_section docs/service.md '^## Messages'
require_section docs/service.md '^## Error codes'
require_section docs/service.md '^## Cancellation'
require_section docs/service.md '^## Quotas'
require_section docs/service.md '^## Graceful drain'
require_section docs/service.md 'ehdse\.svc/1'
require_section docs/service.md 'frame_too_large'
require_section docs/service.md 'k_max_frame_bytes'
require_section docs/service.md '\-\-list\-harvesters'
require_section docs/service.md 'ehdse\.experiment_spec/3'
require_section docs/paper_mapping.md 'Electrostatic backend'
require_section docs/testing.md '^## Test taxonomy'
require_section docs/testing.md '^## Seed-repro workflow'
require_section docs/testing.md '^## Fault injection'
require_section docs/testing.md 'EHDSE_TESTKIT_SEED'
require_section docs/testing.md 'EHDSE_FUZZ_MS'
require_section docs/testing.md 'ctest --test-dir build -L testkit'

if [ "$status" -eq 0 ]; then
    echo "check_docs: $checked references ok"
else
    echo "check_docs: FAILED (stale references above)" >&2
fi
exit $status
