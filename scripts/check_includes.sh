#!/usr/bin/env bash
# check_includes.sh — header-hygiene gate for the pluggable pipeline.
#
# dse/rsm_flow.hpp is the flow's public face; it must speak only the
# registry interfaces (rsm/surrogate.hpp, doe/design.hpp), never a
# concrete model or design header. If one leaks back in, every flow
# consumer silently recouples to that implementation and the registries
# stop being the single extension point. Wired into CTest as
# `header_hygiene` (tier-1 catches it).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 2

header="src/dse/rsm_flow.hpp"
status=0

# Concrete implementation headers the public flow header must not name.
forbidden=(
    'rsm/quadratic_model.hpp'
    'rsm/stepwise.hpp'
    'rsm/kriging.hpp'
    'doe/d_optimal.hpp'
    'doe/designs.hpp'
    'doe/sampling.hpp'
)

for inc in "${forbidden[@]}"; do
    if grep -qE "^#include[[:space:]]+\"$inc\"" "$header"; then
        echo "check_includes: $header includes concrete header $inc" >&2
        status=1
    fi
done

# And it must keep speaking the registry interfaces.
for inc in 'rsm/surrogate.hpp' 'doe/design.hpp'; do
    if ! grep -qE "^#include[[:space:]]+\"$inc\"" "$header"; then
        echo "check_includes: $header lost registry include $inc" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_includes: $header is registry-only"
else
    echo "check_includes: FAILED" >&2
fi
exit $status
