#!/usr/bin/env bash
# run_nightly_fuzz.sh — the deep randomised pass: run every
# testkit-labelled suite with a fresh seed and a per-suite wall-time
# budget instead of the fixed smoke-test case count.
#
# The chosen seed is printed FIRST, so a nightly failure is reproducible
# even if only the tail of the log survives; each in-test failure also
# prints its own one-line EHDSE_TESTKIT_SEED=... repro (docs/testing.md).
#
# Usage:
#   scripts/run_nightly_fuzz.sh [build-dir]
# Environment:
#   EHDSE_TESTKIT_SEED   seed override (default: derived from date+RANDOM)
#   EHDSE_FUZZ_MS        per-suite budget in ms (default 60000)
#   EHDSE_TESTKIT_CASES  case-count floor override (default 1000)
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"

if [ ! -d "$build" ]; then
    cmake -B "$build" -S "$root"
fi
cmake --build "$build" -j

seed="${EHDSE_TESTKIT_SEED:-$(( $(date +%s) ^ (RANDOM << 16) ^ RANDOM ))}"
export EHDSE_TESTKIT_SEED="$seed"
export EHDSE_FUZZ_MS="${EHDSE_FUZZ_MS:-60000}"
export EHDSE_TESTKIT_CASES="${EHDSE_TESTKIT_CASES:-1000}"

echo "run_nightly_fuzz: EHDSE_TESTKIT_SEED=$EHDSE_TESTKIT_SEED" \
     "EHDSE_FUZZ_MS=$EHDSE_FUZZ_MS EHDSE_TESTKIT_CASES=$EHDSE_TESTKIT_CASES"

ctest --test-dir "$build" -L testkit --output-on-failure -j
