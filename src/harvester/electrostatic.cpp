#include "harvester/electrostatic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "harvester/vibration.hpp"

namespace ehdse::harvester {

namespace {

constexpr double k_pi = std::numbers::pi;

/// Full transient model of the electrostatic chain: resonator + charge
/// pump as the equivalent viscous damping of the cycle-averaged model, so
/// the two fidelities agree on extracted energy by construction. States
/// mirror the electromagnetic transient layout:
///   x[0] = z, x[1] = zdot, x[2] = V (store), x[3] = E_h.
class es_transient final : public transient_rhs {
public:
    enum state_index : std::size_t {
        ix_displacement = 0,
        ix_velocity = 1,
        ix_voltage = 2,
        ix_harvested = 3,
        k_state_count = 4,
    };

    es_transient(const electrostatic_harvester& dev,
                 const vibration_source& vib,
                 const power::storage_model& cap,
                 const power::load_bank& loads)
        : dev_(dev), vib_(vib), cap_(cap), loads_(loads) {
        end_stop_stiffness_ = 100.0 * dev_.base_stiffness();
    }

    std::size_t state_size() const override { return k_state_count; }

    void derivatives(double t, std::span<const double> x,
                     std::span<double> dxdt) const override {
        const double z = x[ix_displacement];
        const double v = x[ix_velocity];
        const double vc = std::max(x[ix_voltage], 0.0);

        const electrostatic_params& p = dev_.params();
        const double k = dev_.effective_stiffness(position_);
        const double c_e = dev_.electrical_damping(position_);
        const double a = vib_.acceleration(t);

        double spring_force = -k * z;
        const double limit = p.max_displacement_m;
        if (z > limit) spring_force -= end_stop_stiffness_ * (z - limit);
        else if (z < -limit) spring_force -= end_stop_stiffness_ * (z + limit);

        dxdt[ix_displacement] = v;
        dxdt[ix_velocity] =
            (spring_force - (dev_.mech_damping() + c_e) * v) / p.mass_kg - a;

        // Instantaneous extraction c_e zdot^2; the flyback returns eta of
        // it to the store once the pump is primed.
        const double p_extracted = c_e * v * v;
        const double i_store = vc > p.priming_voltage_v
                                   ? p.flyback_efficiency * p_extracted / vc
                                   : 0.0;
        dxdt[ix_voltage] = cap_.dv_dt(vc, i_store - loads_.total_current(vc));
        dxdt[ix_harvested] = vc * i_store;
    }

    std::vector<double> initial_state(double v0) const override {
        std::vector<double> x(k_state_count, 0.0);
        x[ix_voltage] = v0;
        return x;
    }

    int position() const override { return position_; }
    void set_position(int position) override {
        if (position < 0 || position >= electrostatic_params::k_position_count)
            throw std::out_of_range(
                "electrostatic_harvester: actuator position outside [0,255]");
        position_ = position;
    }

    std::size_t voltage_index() const override { return ix_voltage; }
    std::size_t harvested_index() const override { return ix_harvested; }

    double suggested_max_dt() const override {
        // Twenty points per cycle of the fastest achievable resonance.
        return 1.0 / (20.0 * dev_.max_frequency());
    }

private:
    const electrostatic_harvester& dev_;
    const vibration_source& vib_;
    const power::storage_model& cap_;
    const power::load_bank& loads_;
    int position_ = 0;
    double end_stop_stiffness_;
};

}  // namespace

electrostatic_harvester::electrostatic_harvester(electrostatic_params params)
    : params_(params) {
    if (!(params_.mass_kg > 0.0))
        throw std::invalid_argument("electrostatic_harvester: mass must be > 0");
    if (!(params_.pull_in_voltage_v > 0.0))
        throw std::invalid_argument(
            "electrostatic_harvester: pull-in voltage must be > 0");
    if (!(params_.bias_min_v <= params_.bias_max_v))
        throw std::invalid_argument(
            "electrostatic_harvester: bias_min_v must be <= bias_max_v");
    const double u_max = params_.bias_max_v / params_.pull_in_voltage_v;
    if (!(params_.softening_alpha * u_max * u_max < 1.0))
        throw std::invalid_argument(
            "electrostatic_harvester: softened stiffness must stay positive");
    const double omega0 = 2.0 * k_pi * params_.f_unbiased_hz;
    k0_ = params_.mass_kg * omega0 * omega0;
    c_mech_ = 2.0 * params_.damping_ratio * std::sqrt(k0_ * params_.mass_kg);
}

double electrostatic_harvester::bias_at(int position) const {
    if (position < 0 || position >= electrostatic_params::k_position_count)
        throw std::out_of_range(
            "electrostatic_harvester: actuator position outside [0,255]");
    const double frac = static_cast<double>(position) /
                        (electrostatic_params::k_position_count - 1);
    return params_.bias_max_v - (params_.bias_max_v - params_.bias_min_v) * frac;
}

double electrostatic_harvester::effective_stiffness(int position) const {
    const double u = bias_at(position) / params_.pull_in_voltage_v;
    return k0_ * (1.0 - params_.softening_alpha * u * u);
}

double electrostatic_harvester::electrical_damping(int position) const {
    const double u = bias_at(position) / params_.pull_in_voltage_v;
    return params_.coupling_damping * u * u;
}

const std::string& electrostatic_harvester::name() const noexcept {
    static const std::string k_name = "electrostatic";
    return k_name;
}

obs::json_value electrostatic_harvester::describe() const {
    obs::json_value out{obs::json_object{}};
    out.set("name", name());
    out.set("device",
            "electrostatic harvester, auto-adaptive charge pump (Galayko)");
    out.set("mass_kg", params_.mass_kg);
    out.set("damping_ratio", params_.damping_ratio);
    out.set("pull_in_voltage_v", params_.pull_in_voltage_v);
    out.set("bias_range_v",
            obs::json_array{obs::json_value(params_.bias_min_v),
                            obs::json_value(params_.bias_max_v)});
    out.set("flyback_efficiency", params_.flyback_efficiency);
    out.set("max_displacement_m", params_.max_displacement_m);
    out.set("f_min_hz", min_frequency());
    out.set("f_max_hz", max_frequency());
    out.set("positions", position_count());
    out.set("conditioning", "charge pump + flyback, auto-adaptive bias");
    out.set("tuning", "bias-voltage spring softening, DAC actuator");
    return out;
}

double electrostatic_harvester::resonant_frequency(int position) const {
    return std::sqrt(effective_stiffness(position) / params_.mass_kg) /
           (2.0 * k_pi);
}

retune_cost electrostatic_harvester::actuator() const noexcept {
    // A retune is a bias-DAC write plus charge-pump rebias: microseconds
    // and microjoules (DESIGN.md records the budget) — the device class's
    // structural advantage over the stepper-tuned cantilever.
    retune_cost cost;
    cost.step_time_s = 1.0e-4;
    cost.single_step_energy_j = 2.0e-6;
    cost.multi_step_energy_j = 1.0e-6;
    cost.min_drive_voltage_v = 1.8;
    return cost;
}

double electrostatic_harvester::displacement_amplitude(
    double omega_rad, double accel_amp_ms2, int position) const {
    const double k = effective_stiffness(position);
    const double c_total = c_mech_ + electrical_damping(position);
    const double re = k - params_.mass_kg * omega_rad * omega_rad;
    const double im = c_total * omega_rad;
    const double denom = std::sqrt(re * re + im * im);
    const double z = params_.mass_kg * accel_amp_ms2 / denom;
    return std::min(z, params_.max_displacement_m);
}

double electrostatic_harvester::initial_amplitude(
    double freq_hz, double accel_amp_ms2, int position, double /*store_v*/,
    const power::rectifier_params& /*rect*/) const {
    return displacement_amplitude(2.0 * k_pi * freq_hz, accel_amp_ms2,
                                  position);
}

envelope_rates electrostatic_harvester::envelope_dynamics(
    double freq_hz, double accel_amp_ms2, int position, double store_v,
    double z_env, conditioning_kind /*conditioning*/, double /*efficiency*/,
    const power::rectifier_params& /*rect*/) const {
    // The charge-pump conditioning is integral to the device: the envelope
    // front-end selector (diode bridge / mppt) does not apply here.
    const double omega = 2.0 * k_pi * freq_hz;
    const double c_e = electrical_damping(position);
    const double c_total = c_mech_ + c_e;
    const double target =
        displacement_amplitude(omega, accel_amp_ms2, position);
    const double tau = 2.0 * params_.mass_kg / c_total;

    envelope_rates out;
    out.amplitude_rate = (target - z_env) / tau;

    // Cycle-averaged extraction at the instantaneous envelope amplitude,
    // delivered through the flyback once the pump is primed.
    const double vel_env = omega * z_env;
    const double p_extracted = 0.5 * c_e * vel_env * vel_env;
    out.charge_current_a = store_v > params_.priming_voltage_v
                               ? params_.flyback_efficiency * p_extracted /
                                     store_v
                               : 0.0;
    return out;
}

double electrostatic_harvester::phase_lag(
    double freq_hz, double /*accel_amp_ms2*/, int position,
    double /*store_v*/, const power::rectifier_params& /*rect*/) const {
    const double omega = 2.0 * k_pi * freq_hz;
    const double k = effective_stiffness(position);
    const double c_total = c_mech_ + electrical_damping(position);
    return std::atan2(c_total * omega,
                      k - params_.mass_kg * omega * omega);
}

std::unique_ptr<transient_rhs> electrostatic_harvester::make_transient(
    const vibration_source& vib, const power::storage_model& storage,
    const power::load_bank& loads,
    const power::rectifier_params& /*rect*/) const {
    return std::make_unique<es_transient>(*this, vib, storage, loads);
}

}  // namespace ehdse::harvester
