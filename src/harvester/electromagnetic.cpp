#include "harvester/electromagnetic.hpp"

#include <cmath>
#include <numbers>

#include "harvester/envelope.hpp"
#include "harvester/transient_model.hpp"
#include "harvester/vibration.hpp"

namespace ehdse::harvester {

namespace {

/// transient_rhs over the existing full nonlinear transient model.
class em_transient final : public transient_rhs {
public:
    em_transient(const microgenerator& gen, const vibration_source& vib,
                 const power::storage_model& storage,
                 const power::load_bank& loads,
                 const power::rectifier_params& rect)
        : gen_(gen), model_(gen, vib, storage, loads, rect) {}

    std::size_t state_size() const override { return model_.state_size(); }
    void derivatives(double t, std::span<const double> x,
                     std::span<double> dxdt) const override {
        model_.derivatives(t, x, dxdt);
    }

    std::vector<double> initial_state(double v0) const override {
        return transient_model::initial_state(v0);
    }
    int position() const override { return model_.position(); }
    void set_position(int position) override { model_.set_position(position); }
    std::size_t voltage_index() const override {
        return transient_model::ix_voltage;
    }
    std::size_t harvested_index() const override {
        return transient_model::ix_harvested;
    }
    double suggested_max_dt() const override {
        return transient_model::suggested_max_dt(gen_.max_frequency());
    }

private:
    const microgenerator& gen_;
    transient_model model_;
};

}  // namespace

electromagnetic_harvester::electromagnetic_harvester(
    microgenerator_params params)
    : gen_(params) {}

const std::string& electromagnetic_harvester::name() const noexcept {
    static const std::string k_name = "electromagnetic";
    return k_name;
}

obs::json_value electromagnetic_harvester::describe() const {
    const microgenerator_params& p = gen_.params();
    obs::json_value out{obs::json_object{}};
    out.set("name", name());
    out.set("device", "tunable electromagnetic cantilever (Southampton)");
    out.set("mass_kg", p.mass_kg);
    out.set("damping_ratio", p.damping_ratio);
    out.set("coupling_v_per_ms", p.coupling_v_per_ms);
    out.set("coil_resistance_ohm", p.coil_resistance_ohm);
    out.set("max_displacement_m", p.max_displacement_m);
    out.set("f_min_hz", min_frequency());
    out.set("f_max_hz", max_frequency());
    out.set("positions", position_count());
    out.set("conditioning", "diode bridge (or idealised mppt front-end)");
    out.set("tuning", "magnetic-spring stiffening, stepper actuator");
    return out;
}

double electromagnetic_harvester::initial_amplitude(
    double freq_hz, double accel_amp_ms2, int position, double store_v,
    const power::rectifier_params& rect) const {
    const envelope_point pt = solve_envelope(gen_, position, freq_hz,
                                             accel_amp_ms2, store_v, rect);
    return pt.mech.displacement_amp_m;
}

envelope_rates electromagnetic_harvester::envelope_dynamics(
    double freq_hz, double accel_amp_ms2, int position, double store_v,
    double z_env, conditioning_kind conditioning, double efficiency,
    const power::rectifier_params& rect) const {
    const double omega = 2.0 * std::numbers::pi * freq_hz;
    envelope_rates out;
    if (conditioning == conditioning_kind::diode_bridge) {
        const envelope_point pt = solve_envelope(gen_, position, freq_hz,
                                                 accel_amp_ms2, store_v, rect);
        // Amplitude envelope relaxes towards the steady state.
        const double tau = gen_.settling_tau(pt.c_electrical);
        out.amplitude_rate = (pt.mech.displacement_amp_m - z_env) / tau;

        // Charging from the instantaneous envelope amplitude (not the target).
        const double emf = gen_.params().coupling_v_per_ms * omega * z_env;
        const power::rectifier_operating_point op = power::bridge_average(
            emf, store_v, gen_.params().coil_resistance_ohm, rect);
        out.charge_current_a = op.i_avg_a;
    } else {
        // MPPT front-end: the converter holds the coil at the matched load
        // (c_e = c_mech) regardless of the store voltage, and delivers the
        // extracted mechanical power at the conversion efficiency.
        const double c_match = gen_.mech_damping();
        const linear_response mech =
            gen_.response(omega, accel_amp_ms2, position, c_match);
        const double tau = gen_.settling_tau(c_match);
        out.amplitude_rate = (mech.displacement_amp_m - z_env) / tau;

        const double vel_env = omega * z_env;
        const double p_extracted = 0.5 * c_match * vel_env * vel_env;
        out.charge_current_a =
            store_v > 0.05 ? efficiency * p_extracted / store_v : 0.0;
    }
    return out;
}

double electromagnetic_harvester::phase_lag(
    double freq_hz, double accel_amp_ms2, int position, double store_v,
    const power::rectifier_params& rect) const {
    const envelope_point pt = solve_envelope(gen_, position, freq_hz,
                                             accel_amp_ms2, store_v, rect);
    const double omega = 2.0 * std::numbers::pi * freq_hz;
    const double k = gen_.effective_stiffness(position);
    const double m = gen_.params().mass_kg;
    const double c_total = gen_.mech_damping() + pt.c_electrical;
    return std::atan2(c_total * omega, k - m * omega * omega);
}

std::unique_ptr<transient_rhs> electromagnetic_harvester::make_transient(
    const vibration_source& vib, const power::storage_model& storage,
    const power::load_bank& loads, const power::rectifier_params& rect) const {
    return std::make_unique<em_transient>(gen_, vib, storage, loads, rect);
}

}  // namespace ehdse::harvester
