#include "harvester/microgenerator.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ehdse::harvester {

namespace {
constexpr double two_pi = 2.0 * std::numbers::pi;
}

microgenerator::microgenerator(microgenerator_params params)
    : params_(params) {
    if (params_.mass_kg <= 0.0)
        throw std::invalid_argument("microgenerator: mass must be > 0");
    if (params_.f_nominal_hz <= 0.0)
        throw std::invalid_argument("microgenerator: nominal frequency must be > 0");
    if (params_.damping_ratio <= 0.0)
        throw std::invalid_argument("microgenerator: damping ratio must be > 0");
    if (params_.gap_min_m <= 0.0 || params_.gap_max_m <= params_.gap_min_m)
        throw std::invalid_argument("microgenerator: require 0 < gap_min < gap_max");
    if (params_.critical_load_n <= 0.0)
        throw std::invalid_argument("microgenerator: critical load must be > 0");
    if (params_.law == tuning_law::linearised &&
        (params_.f_min_hz <= 0.0 || params_.f_max_hz <= params_.f_min_hz))
        throw std::invalid_argument("microgenerator: require 0 < f_min < f_max");

    const double w0 = two_pi * params_.f_nominal_hz;
    k0_ = params_.mass_kg * w0 * w0;
    c_mech_ = 2.0 * params_.damping_ratio * std::sqrt(k0_ * params_.mass_kg);
}

double microgenerator::gap_at(int position) const {
    constexpr int last = microgenerator_params::k_position_count - 1;
    if (position < 0 || position > last)
        throw std::out_of_range("microgenerator: actuator position outside [0,255]");
    const double frac = static_cast<double>(position) / last;
    return params_.gap_max_m - frac * (params_.gap_max_m - params_.gap_min_m);
}

double microgenerator::magnetic_force(double gap_m) const {
    if (gap_m <= 0.0)
        throw std::invalid_argument("microgenerator: gap must be > 0");
    // Inverse-fourth-power law of two axially magnetised dipoles, anchored
    // at the minimum-gap force.
    const double r = params_.gap_min_m / gap_m;
    return params_.tuning_force_at_min_gap_n * r * r * r * r;
}

double microgenerator::effective_stiffness(int position) const {
    if (params_.law == tuning_law::linearised) {
        constexpr int last = microgenerator_params::k_position_count - 1;
        if (position < 0 || position > last)
            throw std::out_of_range("microgenerator: actuator position outside [0,255]");
        const double frac = static_cast<double>(position) / last;
        const double f = params_.f_min_hz + frac * (params_.f_max_hz - params_.f_min_hz);
        const double w = two_pi * f;
        return params_.mass_kg * w * w;
    }
    const double fm = magnetic_force(gap_at(position));
    return k0_ * (1.0 + fm / params_.critical_load_n);
}

double microgenerator::resonant_frequency(int position) const {
    return std::sqrt(effective_stiffness(position) / params_.mass_kg) / two_pi;
}

linear_response microgenerator::response(double omega_rad, double accel_amp_ms2,
                                         int position, double c_electrical) const {
    if (omega_rad <= 0.0)
        throw std::invalid_argument("microgenerator: omega must be > 0");
    if (c_electrical < 0.0)
        throw std::invalid_argument("microgenerator: electrical damping must be >= 0");

    const double k = effective_stiffness(position);
    const double m = params_.mass_kg;
    const double c_total = c_mech_ + c_electrical;

    const double re = k - m * omega_rad * omega_rad;
    const double im = c_total * omega_rad;
    const double denom = std::sqrt(re * re + im * im);

    linear_response out;
    out.displacement_amp_m = m * accel_amp_ms2 / denom;
    if (out.displacement_amp_m > params_.max_displacement_m) {
        out.displacement_amp_m = params_.max_displacement_m;
        out.displacement_limited = true;
    }
    out.velocity_amp_ms = omega_rad * out.displacement_amp_m;
    out.emf_amp_v = params_.coupling_v_per_ms * out.velocity_amp_ms;
    return out;
}

double microgenerator::quality_factor(int position, double c_electrical) const {
    const double k = effective_stiffness(position);
    return std::sqrt(k * params_.mass_kg) / (c_mech_ + c_electrical);
}

double microgenerator::settling_tau(double c_electrical) const {
    return 2.0 * params_.mass_kg / (c_mech_ + c_electrical);
}

}  // namespace ehdse::harvester
