// Tunable electromagnetic cantilever microgenerator.
//
// Physics follows the Southampton tunable harvester (Garcia et al.,
// PowerMEMS 2009 — paper ref [12]) as modelled in paper ref [9]:
//
//   * second-order mechanics:  m z'' + c z' + k_eff z = -m a(t)
//     where z is the proof-mass displacement relative to the base and a(t)
//     the base acceleration;
//   * electromagnetic transduction:  emf e = phi * z',  reaction force
//     F = phi * i  on the mass, coil resistance R_c (inductance is
//     negligible at vibration frequencies and is carried only for the full
//     transient model);
//   * magnetic-spring tuning: an axial attractive force between a beam-tip
//     magnet and an actuator-borne magnet, F_m(d) ~ 1/d^4 with gap d,
//     pre-tensions the cantilever and raises its effective stiffness:
//         k_eff(d) = k0 * (1 + F_m(d) / F_cr)
//     giving resonance  f_r(d) = f0 * sqrt(1 + F_m(d)/F_cr).
//
// Default parameters are calibrated to the published device class: untuned
// resonance 64 Hz, tuning range up to ~78 Hz at minimum gap, and an output
// power of order 100 uW at 60 mg excitation (DESIGN.md section 5).
#pragma once

#include <cstdint>

namespace ehdse::harvester {

/// How actuator travel maps to resonant frequency.
enum class tuning_law {
    /// Calibrated linear f(position) map. Tunable-harvester mechanisms are
    /// designed (lever/cam geometry, operating the magnetic spring in its
    /// quasi-linear region) so that frequency is roughly uniform in travel;
    /// the firmware LUT is calibrated against the realised map either way.
    /// This is the default — it also keeps the energy cost of a retune
    /// proportional to the frequency change, as the paper's energy budget
    /// implies.
    linearised,
    /// Raw magnetic-dipole stiffening: F_m ~ 1/d^4 with a linear-travel
    /// gap. Physically primitive variant; strongly non-uniform (positions
    /// crowd at the low-frequency end).
    magnetic_dipole,
};

/// Physical parameter set of the tunable microgenerator.
struct microgenerator_params {
    // --- mechanics ---
    double mass_kg = 0.02;          ///< proof mass (coil + magnets)
    double damping_ratio = 0.0025;   ///< open-circuit mechanical damping ratio
    double f_nominal_hz = 60.0;     ///< zero-tuning-force resonance (unreachable:
                                    ///< even at max gap some tuning force remains)
    double max_displacement_m = 1.5e-3;  ///< end-stop limit (saturates response)

    // --- transduction ---
    double coupling_v_per_ms = 70.0;  ///< phi: emf per unit velocity (= N/A)
    double coil_resistance_ohm = 5000.0;
    double coil_inductance_h = 0.10;  ///< used only by the full transient model

    // --- magnetic tuning mechanism ---
    // Calibrated to a position-0 resonance of 64 Hz and a position-255
    // resonance of 88 Hz — the tuning-range class of the Southampton
    // magnetically tuned cantilever devices.
    tuning_law law = tuning_law::linearised;
    double f_min_hz = 64.0;  ///< linearised law: resonance at position 0
    double f_max_hz = 88.0;  ///< linearised law: resonance at position 255

    // magnetic_dipole law parameters (also used by magnetic_force()):
    double gap_min_m = 5e-3;      ///< actuator fully extended (highest f_r)
    double gap_max_m = 8.5e-3;    ///< actuator fully retracted (lowest f_r)
    double tuning_force_at_min_gap_n = 4.854;  ///< F_m at gap_min
    double critical_load_n = 4.2168;           ///< F_cr stiffening scale

    /// Number of discrete actuator positions (8-bit in the paper).
    static constexpr int k_position_count = 256;
};

/// Steady-state response of the microgenerator against a purely resistive
/// load (the rectifier-coupled solution lives in envelope.hpp).
struct linear_response {
    double displacement_amp_m = 0.0;  ///< |Z|
    double velocity_amp_ms = 0.0;     ///< omega * |Z|
    double emf_amp_v = 0.0;           ///< phi * omega * |Z| (open-circuit emf)
    bool displacement_limited = false;  ///< clipped at the end stops
};

/// Stateless physics of one microgenerator; all queries are pure functions
/// of the parameter set, which keeps the model trivially usable from both
/// the envelope and the full transient simulators.
class microgenerator {
public:
    explicit microgenerator(microgenerator_params params = {});

    const microgenerator_params& params() const noexcept { return params_; }

    /// Base (untuned) stiffness k0 = m (2 pi f0)^2.
    double base_stiffness() const noexcept { return k0_; }

    /// Mechanical damping coefficient c = 2 zeta sqrt(k0 m).
    double mech_damping() const noexcept { return c_mech_; }

    /// Magnet gap for a discrete actuator position in [0, 255].
    /// Position 0 = max gap (lowest f_r); 255 = min gap (highest f_r).
    double gap_at(int position) const;

    /// Axial magnetic tuning force at gap d (attractive, in newtons).
    double magnetic_force(double gap_m) const;

    /// Effective stiffness at a discrete actuator position.
    double effective_stiffness(int position) const;

    /// Resonant frequency (Hz) at a discrete actuator position.
    double resonant_frequency(int position) const;

    /// Lowest / highest achievable resonant frequency.
    double min_frequency() const { return resonant_frequency(0); }
    double max_frequency() const {
        return resonant_frequency(microgenerator_params::k_position_count - 1);
    }

    /// Steady-state linear response at excitation (omega, accel amplitude A)
    /// with total damping c_total = mech_damping() + c_electrical.
    /// The displacement is clipped to the end-stop limit.
    linear_response response(double omega_rad, double accel_amp_ms2,
                             int position, double c_electrical) const;

    /// Quality factor at a position with the given electrical damping.
    double quality_factor(int position, double c_electrical) const;

    /// Envelope (amplitude) settling time constant tau = 2 m / c_total —
    /// how long the mechanical amplitude takes to approach a new steady
    /// state after a retune (the paper's algorithms wait 5 s for this).
    double settling_tau(double c_electrical) const;

private:
    microgenerator_params params_;
    double k0_;
    double c_mech_;
};

}  // namespace ehdse::harvester
