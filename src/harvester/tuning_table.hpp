// Pre-computed frequency -> actuator-position lookup table.
//
// Algorithm 1 (paper) retrieves "the new desired position of the tuning
// magnet from a look-up table which has been pre-obtained and stored in the
// microcontroller memory", with 8-bit position resolution. This class is
// that table: built once from the microgenerator physics, then queried by
// the digital tuning controller.
#pragma once

#include <array>
#include <cstdint>

#include "harvester/harvester_model.hpp"
#include "harvester/microgenerator.hpp"

namespace ehdse::harvester {

/// Maps a target vibration frequency to the 8-bit actuator position whose
/// resonant frequency is closest.
class tuning_table {
public:
    static constexpr int k_entries = microgenerator_params::k_position_count;

    /// Sample resonant_frequency() at every discrete position.
    explicit tuning_table(const microgenerator& gen);

    /// Same, for any registered harvester backend (the model's tuning law
    /// must span exactly k_entries positions — both device classes use the
    /// paper's 8-bit actuator resolution).
    explicit tuning_table(const harvester_model& model);

    /// Resonant frequency (Hz) of entry `position`.
    double frequency_at(int position) const;

    /// Best 8-bit position for the requested frequency; clamps outside the
    /// achievable range (as the real table must).
    int lookup(double target_hz) const;

    /// Worst-case |f_r(lookup(f)) - f| over the achievable range — the
    /// quantisation floor of coarse tuning ("accuracy is 1/2^8", paper).
    double max_quantisation_error() const;

    double min_frequency() const { return freqs_.front(); }
    double max_frequency() const { return freqs_.back(); }

private:
    std::array<double, k_entries> freqs_{};
};

}  // namespace ehdse::harvester
