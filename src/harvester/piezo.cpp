#include "harvester/piezo.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ehdse::harvester {

piezo_microgenerator::piezo_microgenerator(piezo_params params)
    : params_(params), mech_(params.mech) {
    if (params_.coupling_n_per_v <= 0.0)
        throw std::invalid_argument("piezo_microgenerator: coupling must be > 0");
    if (params_.clamped_capacitance_f <= 0.0)
        throw std::invalid_argument("piezo_microgenerator: capacitance must be > 0");
}

double piezo_microgenerator::open_circuit_voltage(double displacement_amp_m) const {
    return params_.coupling_n_per_v * displacement_amp_m /
           params_.clamped_capacitance_f;
}

namespace {

struct trial {
    linear_response mech;
    double i_avg = 0.0;
    double p_mech = 0.0;
    double c_target = 0.0;
};

}  // namespace

piezo_point piezo_microgenerator::solve(int position, double freq_hz,
                                        double accel_amp_ms2, double store_v,
                                        const power::rectifier_params& rect) const {
    if (freq_hz <= 0.0)
        throw std::invalid_argument("piezo_microgenerator::solve: frequency must be > 0");
    if (accel_amp_ms2 < 0.0)
        throw std::invalid_argument("piezo_microgenerator::solve: negative acceleration");
    if (store_v < 0.0)
        throw std::invalid_argument("piezo_microgenerator::solve: negative voltage");

    const double omega = 2.0 * std::numbers::pi * freq_hz;
    const double u = store_v + 2.0 * rect.diode_drop_v;
    const double theta = params_.coupling_n_per_v;
    const double cp = params_.clamped_capacitance_f;

    const auto evaluate = [&](double c_e) {
        trial tp;
        tp.mech = mech_.response(omega, accel_amp_ms2, position, c_e);
        const double dq = theta * tp.mech.displacement_amp_m - cp * u;
        if (dq > 0.0) {
            tp.i_avg = 2.0 * omega * dq / std::numbers::pi;
            tp.p_mech = u * tp.i_avg;
            const double vel2 = tp.mech.velocity_amp_ms * tp.mech.velocity_amp_ms;
            if (vel2 > 0.0) tp.c_target = 2.0 * tp.p_mech / vel2;
        }
        return tp;
    };

    piezo_point pt;
    const double tol = 1e-6 * mech_.mech_damping();

    trial at_zero = evaluate(0.0);
    pt.iterations = 1;
    double c_e = 0.0;
    if (at_zero.c_target > tol) {
        // Physical ceiling on the presented damping: all conduction charge
        // at the maximum piezo force. theta^2/(C_p w) bounds it.
        double hi = theta * theta / (cp * omega) + mech_.mech_damping();
        trial at_hi = evaluate(hi);
        ++pt.iterations;
        int expand = 0;
        while (at_hi.c_target > hi && expand < 8) {
            hi *= 2.0;
            at_hi = evaluate(hi);
            ++pt.iterations;
            ++expand;
        }
        double lo = 0.0;
        for (int it = 0; it < 200 && (hi - lo) > tol; ++it) {
            const double mid = 0.5 * (lo + hi);
            const trial tp = evaluate(mid);
            ++pt.iterations;
            if (tp.c_target > mid)
                lo = mid;
            else
                hi = mid;
        }
        c_e = 0.5 * (lo + hi);
        pt.converged = (hi - lo) <= tol;
    }

    const trial final_tp = evaluate(c_e);
    pt.mech = final_tp.mech;
    pt.v_oc_amp_v = open_circuit_voltage(final_tp.mech.displacement_amp_m);
    pt.i_avg_a = final_tp.i_avg;
    pt.p_mech_w = final_tp.p_mech;
    pt.p_store_w = store_v * final_tp.i_avg;
    pt.p_diode_w = 2.0 * rect.diode_drop_v * final_tp.i_avg;
    pt.conducting = final_tp.i_avg > 0.0;
    pt.c_electrical = c_e;
    return pt;
}

double piezo_microgenerator::optimal_sink_voltage(int position, double freq_hz,
                                                  double accel_amp_ms2) const {
    const double omega = 2.0 * std::numbers::pi * freq_hz;
    const linear_response open =
        mech_.response(omega, accel_amp_ms2, position, 0.0);
    return open_circuit_voltage(open.displacement_amp_m) / 2.0;
}

}  // namespace ehdse::harvester
