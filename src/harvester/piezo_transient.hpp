// Full transient model of the piezoelectric harvester chain — the ground
// truth behind piezo_microgenerator's cycle-averaged solution (the same
// role transient_model plays for the electromagnetic device).
//
// States:
//   x[0] = z     proof-mass displacement (m)
//   x[1] = v     velocity (m/s)
//   x[2] = v_p   piezo element voltage (V)
//   x[3] = V     storage voltage (V)
//   x[4] = E_h   cumulative energy delivered into the store (J)
//
// Equations:
//   m z'' = -k_eff z - c z' - theta v_p - m a(t)     (piezo back-force)
//   C_p v_p' = theta z' - i_bridge
//   i_bridge = g_on (|v_p| - U)+ sign(v_p),  U = V + 2 Vd
// with g_on a stiff-but-integrable bridge conductance standing in for the
// ideal diode clamp (the residual overshoot is ~i/g_on, kept small against
// the storage voltage).
#pragma once

#include "harvester/piezo.hpp"
#include "harvester/vibration.hpp"
#include "power/load_bank.hpp"
#include "power/storage.hpp"
#include "sim/ode.hpp"

namespace ehdse::harvester {

class piezo_transient_model final : public sim::analog_system {
public:
    enum state_index : std::size_t {
        ix_displacement = 0,
        ix_velocity = 1,
        ix_piezo_voltage = 2,
        ix_voltage = 3,
        ix_harvested = 4,
        k_state_count = 5,
    };

    /// All referenced objects must outlive the model.
    piezo_transient_model(const piezo_microgenerator& gen,
                          const vibration_source& vib,
                          const power::storage_model& storage,
                          const power::load_bank& loads,
                          power::rectifier_params rect = {},
                          double bridge_conductance_s = 2e-3);

    int position() const noexcept { return position_; }
    void set_position(int position);

    /// Instantaneous bridge current for a piezo voltage and store voltage.
    double bridge_current(double piezo_v, double store_v) const;

    std::size_t state_size() const override { return k_state_count; }
    void derivatives(double t, std::span<const double> x,
                     std::span<double> dxdt) const override;

    /// Mass at rest, piezo discharged, store at v0.
    static std::vector<double> initial_state(double v0);

    static double suggested_max_dt(double freq_hz) { return 1.0 / (40.0 * freq_hz); }

private:
    const piezo_microgenerator& gen_;
    const vibration_source& vib_;
    const power::storage_model& storage_;
    const power::load_bank& loads_;
    power::rectifier_params rect_;
    double g_on_;
    int position_ = 0;
};

}  // namespace ehdse::harvester
