// Ambient vibration stimulus.
//
// The paper's evaluation fixes the acceleration amplitude at 60 mg and steps
// the input frequency by 5 Hz every 25 minutes (Fig. 5). A vibration_source
// is a piecewise-constant-frequency sinusoid with phase kept continuous
// across frequency steps so that the full transient model sees no
// discontinuity in acceleration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

namespace ehdse::harvester {

/// Standard gravity, used to convert "mg" amplitudes to m/s^2.
inline constexpr double k_gravity = 9.80665;

/// Sinusoidal base acceleration with piecewise-constant frequency.
class vibration_source {
public:
    /// Constant-frequency source.
    vibration_source(double amplitude_ms2, double frequency_hz);

    /// Stepped source: starts at `start_hz`, adds `step_hz` every
    /// `step_period_s` seconds, for `step_count` steps (then holds).
    /// This reproduces the paper's "changes by 5 Hz every 25 minutes".
    static vibration_source stepped(double amplitude_ms2, double start_hz,
                                    double step_hz, double step_period_s,
                                    std::size_t step_count);

    /// Amplitude expressed in milli-g, as the paper quotes levels.
    static vibration_source stepped_mg(double amplitude_mg, double start_hz,
                                       double step_hz, double step_period_s,
                                       std::size_t step_count);

    /// Arbitrary piecewise-constant frequency schedule: (time, frequency)
    /// pairs with strictly increasing times, the first at t = 0. Phase is
    /// kept continuous across every change. Useful for replaying measured
    /// ambient profiles or adversarial robustness scenarios.
    static vibration_source from_schedule(
        double amplitude_ms2,
        const std::vector<std::pair<double, double>>& schedule);

    /// Bounded random-walk schedule: starting at `start_hz`, every
    /// `dwell_s` seconds the frequency jumps by a uniform step in
    /// [-max_step_hz, +max_step_hz], reflected off [f_min, f_max].
    /// Deterministic for a given seed.
    static vibration_source random_walk(double amplitude_ms2, double start_hz,
                                        double dwell_s, double max_step_hz,
                                        double f_min, double f_max,
                                        std::size_t changes, std::uint64_t seed);

    /// Parse a "time_s,frequency_hz" CSV stream (optional header, blank
    /// lines and '#' comments ignored) into a schedule suitable for
    /// from_schedule — the ingestion path for measured ambient profiles.
    /// Throws std::invalid_argument on malformed rows.
    static std::vector<std::pair<double, double>> parse_schedule_csv(
        std::istream& in);

    /// Base acceleration amplitude in m/s^2 (before any amplitude schedule).
    double amplitude() const noexcept { return amplitude_; }

    /// Acceleration amplitude active at time t: the base amplitude scaled
    /// by the amplitude schedule (1.0 when none is set).
    double amplitude_at(double t) const;

    /// Return a copy with a piecewise-constant amplitude scale schedule:
    /// (time, scale) pairs, first at t = 0, times strictly increasing,
    /// scales >= 0. Scale 0 models the source switching off (a machine's
    /// duty cycle); 1 is the base amplitude.
    vibration_source with_amplitude_schedule(
        std::vector<std::pair<double, double>> schedule) const;

    /// Convenience: a square on/off duty cycle starting ON at t = 0.
    vibration_source with_duty_cycle(double on_s, double off_s,
                                     std::size_t cycles) const;

    /// Frequency in Hz active at time t.
    double frequency_at(double t) const;

    /// Instantaneous base acceleration a(t) in m/s^2, phase-continuous.
    double acceleration(double t) const;

    /// Times at which the frequency changes (ascending).
    const std::vector<double>& change_times() const noexcept { return change_times_; }

private:
    struct segment {
        double t_start;    ///< segment begin time
        double freq_hz;    ///< frequency within the segment
        double phase;      ///< accumulated phase at t_start (radians)
    };

    const segment& segment_at(double t) const;

    double amplitude_;
    std::vector<segment> segments_;
    std::vector<double> change_times_;
    /// Optional (time, scale) amplitude schedule; empty = constant 1.0.
    std::vector<std::pair<double, double>> amplitude_schedule_;
};

}  // namespace ehdse::harvester
