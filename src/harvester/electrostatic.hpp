// Electrostatic vibration harvester with a charge-pump conditioning
// circuit and auto-adaptive bias calibration — the registry's second
// device class, after the architecture of Galayko et al. (arXiv:0805.0877)
// with mechanical parameter envelopes from Beeby et al.'s macro-device
// survey (arXiv:0711.3314). DESIGN.md section "Harvester parameter
// envelopes" records the calibration.
//
// Model:
//
//   * mechanics — the same linear mass-spring-damper resonator as the
//     electromagnetic device: m z'' + c z' + k_eff z = -m a(t), with end
//     stops at |z| = z_max;
//
//   * electrostatic spring softening as the tuning law — a DC bias
//     voltage V_b on the variable capacitor softens the suspension,
//         k_eff(V_b) = k0 (1 - alpha (V_b / V_pi)^2),
//     where V_pi is the pull-in voltage and alpha the softening gain.
//     The discrete actuator maps positions 0..255 to a linearly FALLING
//     bias ramp, so resonance RISES with position (the ascending-
//     frequency invariant the firmware tuning LUT requires). A retune is
//     a bias-DAC write: microseconds and microjoules, not the stepper
//     motor's milliseconds and millijoules;
//
//   * conditioning — Galayko's charge pump + flyback keeps the
//     transducer's charge/discharge cycle centred on the calibrated bias
//     (their "auto-adaptive" behaviour). Cycle-averaged, that extraction
//     is an equivalent viscous damping proportional to the bias squared,
//         c_e(V_b) = c_t (V_b / V_pi)^2,
//     extracting P = c_e <zdot^2> = 0.5 c_e omega^2 Z^2 per cycle, of
//     which a fraction eta (flyback efficiency) reaches the store once
//     the pump is primed (store above the priming threshold). The
//     conditioning circuit is integral to the device, so the envelope
//     conditioning selector (diode bridge / mppt) does not alter it.
//
// The envelope and transient paths share the same equivalent damping, so
// their harvested-energy totals agree by construction — asserted per
// registered harvester by the testkit energy-agreement property.
#pragma once

#include "harvester/harvester_model.hpp"

namespace ehdse::harvester {

/// Physical parameter set of the tunable electrostatic harvester.
/// Defaults give a 58..94 Hz tuning band bracketing the electromagnetic
/// device's 64..88 Hz, and ~100 uW extraction at 60 mg.
struct electrostatic_params {
    // --- mechanics (Beeby macro-device envelope) ---
    double mass_kg = 0.012;        ///< proof mass
    double damping_ratio = 0.004;  ///< open-circuit mechanical damping ratio
    double f_unbiased_hz = 95.0;   ///< zero-bias resonance (k0 scale)
    double max_displacement_m = 1.0e-3;  ///< end-stop limit

    // --- electrostatic tuning (spring softening) ---
    double pull_in_voltage_v = 42.0;  ///< V_pi: softening voltage scale
    double softening_alpha = 0.7;     ///< alpha: softening gain at V_b = V_pi
    double bias_max_v = 39.76;        ///< bias at position 0 (lowest f_r)
    double bias_min_v = 7.27;         ///< bias at position 255 (highest f_r)

    // --- charge-pump conditioning ---
    double coupling_damping = 0.064;  ///< c_t: equivalent damping at V_b = V_pi
    double flyback_efficiency = 0.70; ///< eta: extracted power reaching the store
    double priming_voltage_v = 0.25;  ///< store floor to operate the pump

    /// Same 8-bit actuator resolution as the paper's firmware LUT.
    static constexpr int k_position_count = 256;
};

class electrostatic_harvester final : public harvester_model {
public:
    explicit electrostatic_harvester(electrostatic_params params = {});

    const electrostatic_params& params() const noexcept { return params_; }

    /// Base (zero-bias) stiffness k0 = m (2 pi f_unbiased)^2.
    double base_stiffness() const noexcept { return k0_; }
    /// Mechanical damping coefficient c = 2 zeta sqrt(k0 m).
    double mech_damping() const noexcept { return c_mech_; }

    /// Bias voltage the calibration maps to a discrete position
    /// (linearly falling ramp: position 0 = bias_max_v).
    double bias_at(int position) const;
    /// Softened suspension stiffness at a position's bias.
    double effective_stiffness(int position) const;
    /// Equivalent viscous damping the charge pump presents at a position.
    double electrical_damping(int position) const;

    const std::string& name() const noexcept override;
    obs::json_value describe() const override;
    int position_count() const noexcept override {
        return electrostatic_params::k_position_count;
    }
    double resonant_frequency(int position) const override;
    retune_cost actuator() const noexcept override;

    double initial_amplitude(double freq_hz, double accel_amp_ms2,
                             int position, double store_v,
                             const power::rectifier_params& rect) const override;
    envelope_rates envelope_dynamics(
        double freq_hz, double accel_amp_ms2, int position, double store_v,
        double z_env, conditioning_kind conditioning, double efficiency,
        const power::rectifier_params& rect) const override;
    double phase_lag(double freq_hz, double accel_amp_ms2, int position,
                     double store_v,
                     const power::rectifier_params& rect) const override;
    std::unique_ptr<transient_rhs> make_transient(
        const vibration_source& vib, const power::storage_model& storage,
        const power::load_bank& loads,
        const power::rectifier_params& rect) const override;

    /// Steady-state displacement amplitude at (omega, accel) against the
    /// position's softened stiffness and total damping, clipped to the end
    /// stops (shared by the envelope hooks and tests).
    double displacement_amplitude(double omega_rad, double accel_amp_ms2,
                                  int position) const;

private:
    electrostatic_params params_;
    double k0_;
    double c_mech_;
};

}  // namespace ehdse::harvester
