#include "harvester/harvester_model.hpp"

#include <stdexcept>

#include "harvester/electromagnetic.hpp"
#include "harvester/electrostatic.hpp"

namespace ehdse::harvester {

const std::vector<harvester_info>& harvester_registry() {
    static const std::vector<harvester_info> k_registry = {
        {"electromagnetic",
         "tunable electromagnetic cantilever, magnetic-spring tuning "
         "(paper default)"},
        {"electrostatic",
         "electrostatic harvester, auto-adaptive charge-pump conditioning, "
         "bias-voltage tuning"},
    };
    return k_registry;
}

bool is_known_harvester(std::string_view name) noexcept {
    for (const harvester_info& info : harvester_registry())
        if (info.name == name) return true;
    return false;
}

std::string harvester_names() {
    std::string out;
    for (const harvester_info& info : harvester_registry()) {
        if (!out.empty()) out += ", ";
        out += info.name;
    }
    return out;
}

std::unique_ptr<harvester_model> make_harvester(std::string_view name) {
    if (name == "electromagnetic")
        return std::make_unique<electromagnetic_harvester>();
    if (name == "electrostatic")
        return std::make_unique<electrostatic_harvester>();
    throw std::invalid_argument("make_harvester: unknown harvester '" +
                                std::string(name) + "' (valid: " +
                                harvester_names() + ")");
}

}  // namespace ehdse::harvester
