#include "harvester/envelope.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ehdse::harvester {

namespace {

/// One evaluation of the coupled pair at a trial electrical damping c_e,
/// returning the equivalent damping the bridge actually presents there:
///     T(c_e) = 2 P_mech(c_e) / (omega^2 |Z(c_e)|^2).
/// T is monotonically non-increasing in c_e (more damping -> smaller
/// amplitude -> smaller emf -> less conduction), so the self-consistent
/// operating point is the unique root of T(c) - c, found by bisection.
struct trial_point {
    linear_response mech;
    power::rectifier_operating_point elec;
    double c_target = 0.0;
};

trial_point evaluate_at(const microgenerator& gen, int position, double omega,
                        double accel_amp_ms2, double store_v, double r_coil,
                        const power::rectifier_params& rect, double c_e) {
    trial_point tp;
    tp.mech = gen.response(omega, accel_amp_ms2, position, c_e);
    tp.elec = power::bridge_average(tp.mech.emf_amp_v, store_v, r_coil, rect);
    if (tp.elec.conducting && tp.mech.velocity_amp_ms > 0.0) {
        const double vel2 = tp.mech.velocity_amp_ms * tp.mech.velocity_amp_ms;
        tp.c_target = 2.0 * tp.elec.p_mech_w / vel2;
    }
    return tp;
}

}  // namespace

envelope_point solve_envelope(const microgenerator& gen, int position,
                              double freq_hz, double accel_amp_ms2,
                              double store_v,
                              const power::rectifier_params& rect,
                              const envelope_options& options) {
    if (freq_hz <= 0.0)
        throw std::invalid_argument("solve_envelope: frequency must be > 0");
    if (accel_amp_ms2 < 0.0)
        throw std::invalid_argument("solve_envelope: negative acceleration");

    const double omega = 2.0 * std::numbers::pi * freq_hz;
    const double r_coil = gen.params().coil_resistance_ohm;
    const double tol = options.tolerance * gen.mech_damping();

    envelope_point pt;

    // Root-bracket [0, c_hi]. The bridge can never present more equivalent
    // damping than a short-circuited coil, phi^2 / R, so that (plus margin)
    // bounds the root from above.
    const double phi = gen.params().coupling_v_per_ms;
    const double c_hi_limit = phi * phi / r_coil + gen.mech_damping();

    trial_point at_zero = evaluate_at(gen, position, omega, accel_amp_ms2,
                                      store_v, r_coil, rect, 0.0);
    pt.iterations = 1;
    if (at_zero.c_target <= tol) {
        // Bridge blocked (or negligibly loaded) even at the open amplitude.
        pt.mech = at_zero.mech;
        pt.elec = at_zero.elec;
        pt.c_electrical = 0.0;
        pt.converged = true;
        return pt;
    }

    double lo = 0.0;
    double hi = c_hi_limit;
    // Ensure T(hi) - hi < 0 (guaranteed by the physical bound, but the
    // displacement limiter can distort T; expand defensively).
    trial_point at_hi = evaluate_at(gen, position, omega, accel_amp_ms2,
                                    store_v, r_coil, rect, hi);
    ++pt.iterations;
    int expand = 0;
    while (at_hi.c_target > hi && expand < 8) {
        hi *= 2.0;
        at_hi = evaluate_at(gen, position, omega, accel_amp_ms2, store_v,
                            r_coil, rect, hi);
        ++pt.iterations;
        ++expand;
    }

    trial_point mid_tp = at_zero;
    for (int it = 0; it < options.max_iterations && (hi - lo) > tol; ++it) {
        const double mid = 0.5 * (lo + hi);
        mid_tp = evaluate_at(gen, position, omega, accel_amp_ms2, store_v,
                             r_coil, rect, mid);
        ++pt.iterations;
        if (mid_tp.c_target > mid)
            lo = mid;
        else
            hi = mid;
    }

    const double c_e = 0.5 * (lo + hi);
    const trial_point final_tp = evaluate_at(gen, position, omega, accel_amp_ms2,
                                             store_v, r_coil, rect, c_e);
    ++pt.iterations;
    pt.mech = final_tp.mech;
    pt.elec = final_tp.elec;
    pt.c_electrical = c_e;
    pt.converged = (hi - lo) <= tol;
    return pt;
}

}  // namespace ehdse::harvester
