// Envelope (cycle-averaged) harvester solution — the "accelerated
// simulation" technique of paper ref [9], re-derived for the rectifier-
// coupled case.
//
// Instead of integrating the 60-plus-Hz mechanical oscillation for an hour
// of simulated time, the envelope model computes the periodic steady state
// at the current (excitation frequency, actuator position, storage voltage)
// triple. The mechanical and electrical sides couple through the
// equivalent electrical damping
//     c_e = 2 P_mech / (omega^2 |Z|^2),
// where P_mech is the cycle-averaged power the bridge extracts (see
// power/rectifier.hpp). The bridge's presented damping T(c_e) is monotone
// non-increasing in c_e, so the self-consistent point is the unique root of
// T(c) - c, found by bisection — unconditionally convergent, unlike the
// naive fixed-point iteration which cycles between the bridge's blocked and
// saturated regimes at strong coupling.
//
// The result feeds the slow dynamics: the supercapacitor sees the averaged
// charging current i_avg, and the mechanical amplitude relaxes towards the
// new steady state with time constant 2m / c_total after each retune.
#pragma once

#include "harvester/microgenerator.hpp"
#include "power/rectifier.hpp"

namespace ehdse::harvester {

/// Converged cycle-averaged operating point.
struct envelope_point {
    linear_response mech;                      ///< steady-state mechanics
    power::rectifier_operating_point elec;     ///< averaged bridge quantities
    double c_electrical = 0.0;                 ///< equivalent electrical damping
    int iterations = 0;                        ///< fixed-point iterations used
    bool converged = true;
};

/// Solver knobs; the bisection brackets c_e within
/// tolerance * mech_damping in ~50 cheap evaluations.
struct envelope_options {
    double tolerance = 1e-6;   ///< on c_e, relative to mechanical damping
    int max_iterations = 200;  ///< bisection step limit
};

/// Solve the coupled steady state at excitation `freq_hz` / amplitude
/// `accel_amp_ms2`, actuator position `position`, storage voltage `store_v`.
envelope_point solve_envelope(const microgenerator& gen, int position,
                              double freq_hz, double accel_amp_ms2,
                              double store_v,
                              const power::rectifier_params& rect = {},
                              const envelope_options& options = {});

}  // namespace ehdse::harvester
