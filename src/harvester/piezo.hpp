// Piezoelectric harvester variant — the other dominant transduction in the
// vibration-harvesting literature (Roundy/Ottman analyses; the paper's
// refs [4-6] motivate both families). An extension beyond the paper's
// electromagnetic device, sharing the mechanics and tuning model.
//
// Electrical model: the piezo element is a current source i = theta * z'
// in parallel with its clamped capacitance C_p, feeding the storage
// capacitor through the same diode bridge. Cycle-averaged standard result
// for a sinusoidal displacement of amplitude Z at angular frequency w,
// against a rectifier sink U = V + 2 Vd:
//
//   open-circuit voltage amplitude  V_oc = theta Z / C_p
//   charge into the store per half cycle = 2 (theta Z - C_p U), if > 0
//   I_avg  = (2 w / pi) (theta Z - C_p U)
//   P_mech = U * I_avg          (the mechanics only work against +-U)
//
// with the optimum rectifier voltage at U* = V_oc / 2 (Ottman 2002) —
// verified as a property test. The mechanical/electrical coupling is
// closed exactly like the electromagnetic envelope: c_e(U, Z) is monotone,
// solved by bisection.
#pragma once

#include "harvester/microgenerator.hpp"
#include "power/rectifier.hpp"

namespace ehdse::harvester {

/// Piezo element parameters on top of the shared mechanics/tuning model.
struct piezo_params {
    /// Mechanics and tuning mechanism (coil-related fields unused).
    microgenerator_params mech{};
    double coupling_n_per_v = 1.0e-3;   ///< theta: force per volt (= C/m)
    double clamped_capacitance_f = 100e-9;  ///< C_p
};

/// Cycle-averaged piezo-bridge operating point.
struct piezo_point {
    linear_response mech;        ///< steady-state mechanics
    double v_oc_amp_v = 0.0;     ///< open-circuit voltage amplitude
    bool conducting = false;
    double i_avg_a = 0.0;        ///< average current into the store
    double p_mech_w = 0.0;       ///< power drawn from the mechanics
    double p_store_w = 0.0;      ///< into the supercapacitor
    double p_diode_w = 0.0;      ///< bridge loss
    double c_electrical = 0.0;   ///< equivalent damping at the solution
    int iterations = 0;
    bool converged = true;
};

class piezo_microgenerator {
public:
    explicit piezo_microgenerator(piezo_params params = {});

    const piezo_params& params() const noexcept { return params_; }
    const microgenerator& mechanics() const noexcept { return mech_; }

    /// Resonant frequency at an actuator position (same tuning model as
    /// the electromagnetic device).
    double resonant_frequency(int position) const {
        return mech_.resonant_frequency(position);
    }

    /// Open-circuit voltage amplitude for a displacement amplitude Z.
    double open_circuit_voltage(double displacement_amp_m) const;

    /// Solve the coupled steady state at (position, frequency, acceleration
    /// amplitude, storage voltage).
    piezo_point solve(int position, double freq_hz, double accel_amp_ms2,
                      double store_v, const power::rectifier_params& rect = {}) const;

    /// The classic optimal rectifier sink voltage U* = V_oc / 2 evaluated
    /// at the *open-circuit* amplitude (a useful first-order design value;
    /// the exact optimum shifts slightly once c_e feedback is included).
    double optimal_sink_voltage(int position, double freq_hz,
                                double accel_amp_ms2) const;

private:
    piezo_params params_;
    microgenerator mech_;
};

}  // namespace ehdse::harvester
