// The Southampton tunable electromagnetic cantilever as a registered
// harvester_model — the paper's device, and the registry's default entry.
//
// This is a thin adapter: the physics stays in microgenerator / envelope /
// transient_model, and every interface hook is implemented with the exact
// expressions the envelope_system used before the registry existed, so a
// generic system dispatching through harvester_model is bit-identical to
// the pre-refactor hard-wired path (the testkit differential properties
// pin this).
#pragma once

#include "harvester/harvester_model.hpp"
#include "harvester/microgenerator.hpp"

namespace ehdse::harvester {

class electromagnetic_harvester final : public harvester_model {
public:
    explicit electromagnetic_harvester(microgenerator_params params = {});

    /// The wrapped physics object — the SoA batch kernel and legacy call
    /// sites operate on it directly.
    const microgenerator& generator() const noexcept { return gen_; }

    const std::string& name() const noexcept override;
    obs::json_value describe() const override;
    int position_count() const noexcept override {
        return microgenerator_params::k_position_count;
    }
    double resonant_frequency(int position) const override {
        return gen_.resonant_frequency(position);
    }
    retune_cost actuator() const noexcept override { return {}; }

    double initial_amplitude(double freq_hz, double accel_amp_ms2,
                             int position, double store_v,
                             const power::rectifier_params& rect) const override;
    envelope_rates envelope_dynamics(
        double freq_hz, double accel_amp_ms2, int position, double store_v,
        double z_env, conditioning_kind conditioning, double efficiency,
        const power::rectifier_params& rect) const override;
    double phase_lag(double freq_hz, double accel_amp_ms2, int position,
                     double store_v,
                     const power::rectifier_params& rect) const override;
    std::unique_ptr<transient_rhs> make_transient(
        const vibration_source& vib, const power::storage_model& storage,
        const power::load_bank& loads,
        const power::rectifier_params& rect) const override;

private:
    microgenerator gen_;
};

}  // namespace ehdse::harvester
