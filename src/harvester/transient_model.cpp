#include "harvester/transient_model.hpp"

#include <cmath>
#include <stdexcept>

namespace ehdse::harvester {

transient_model::transient_model(const microgenerator& gen,
                                 const vibration_source& vib,
                                 const power::storage_model& cap,
                                 const power::load_bank& loads,
                                 power::rectifier_params rect)
    : gen_(gen), vib_(vib), cap_(cap), loads_(loads), rect_(rect) {
    // Stiff enough that the excursion past the stop stays small against the
    // travel, soft enough not to wreck the integrator step size.
    end_stop_stiffness_ = 100.0 * gen_.base_stiffness();
}

void transient_model::set_position(int position) {
    if (position < 0 || position >= microgenerator_params::k_position_count)
        throw std::out_of_range("transient_model: actuator position outside [0,255]");
    position_ = position;
}

double transient_model::coil_current(double velocity, double store_v) const {
    const double e = gen_.params().coupling_v_per_ms * velocity;
    const double u = store_v + 2.0 * rect_.diode_drop_v;
    const double mag = std::abs(e);
    if (mag <= u) return 0.0;
    const double i = (mag - u) / gen_.params().coil_resistance_ohm;
    return e >= 0.0 ? i : -i;
}

void transient_model::derivatives(double t, std::span<const double> x,
                                  std::span<double> dxdt) const {
    const double z = x[ix_displacement];
    const double v = x[ix_velocity];
    const double vc = std::max(x[ix_voltage], 0.0);

    const auto& p = gen_.params();
    const double k = gen_.effective_stiffness(position_);
    const double a = vib_.acceleration(t);
    const double i_coil = coil_current(v, vc);

    double spring_force = -k * z;
    const double limit = p.max_displacement_m;
    if (z > limit) spring_force -= end_stop_stiffness_ * (z - limit);
    else if (z < -limit) spring_force -= end_stop_stiffness_ * (z + limit);

    dxdt[ix_displacement] = v;
    dxdt[ix_velocity] =
        (spring_force - gen_.mech_damping() * v - p.coupling_v_per_ms * i_coil) /
            p.mass_kg -
        a;
    const double i_store = std::abs(i_coil);
    dxdt[ix_voltage] = cap_.dv_dt(vc, i_store - loads_.total_current(vc));
    dxdt[ix_harvested] = vc * i_store;
}

std::vector<double> transient_model::initial_state(double v0) {
    std::vector<double> x(k_state_count, 0.0);
    x[ix_voltage] = v0;
    return x;
}

}  // namespace ehdse::harvester
