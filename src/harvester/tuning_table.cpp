#include "harvester/tuning_table.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ehdse::harvester {

tuning_table::tuning_table(const microgenerator& gen) {
    for (int p = 0; p < k_entries; ++p)
        freqs_[static_cast<std::size_t>(p)] = gen.resonant_frequency(p);
    // The magnetic stiffening law is monotone in position; guard the
    // invariant the lookup relies on.
    if (!std::is_sorted(freqs_.begin(), freqs_.end()))
        throw std::logic_error("tuning_table: resonant frequency not monotone in position");
}

tuning_table::tuning_table(const harvester_model& model) {
    if (model.position_count() != k_entries)
        throw std::logic_error(
            "tuning_table: harvester position count does not match the "
            "8-bit firmware LUT");
    for (int p = 0; p < k_entries; ++p)
        freqs_[static_cast<std::size_t>(p)] = model.resonant_frequency(p);
    if (!std::is_sorted(freqs_.begin(), freqs_.end()))
        throw std::logic_error("tuning_table: resonant frequency not monotone in position");
}

double tuning_table::frequency_at(int position) const {
    if (position < 0 || position >= k_entries)
        throw std::out_of_range("tuning_table: position outside [0,255]");
    return freqs_[static_cast<std::size_t>(position)];
}

int tuning_table::lookup(double target_hz) const {
    const auto it = std::lower_bound(freqs_.begin(), freqs_.end(), target_hz);
    if (it == freqs_.begin()) return 0;
    if (it == freqs_.end()) return k_entries - 1;
    const auto hi = static_cast<int>(it - freqs_.begin());
    const int lo = hi - 1;
    const double d_lo = target_hz - freqs_[static_cast<std::size_t>(lo)];
    const double d_hi = freqs_[static_cast<std::size_t>(hi)] - target_hz;
    return d_lo <= d_hi ? lo : hi;
}

double tuning_table::max_quantisation_error() const {
    // Worst case is half the largest gap between adjacent entries.
    double worst = 0.0;
    for (int p = 1; p < k_entries; ++p) {
        const double gap = freqs_[static_cast<std::size_t>(p)] -
                           freqs_[static_cast<std::size_t>(p - 1)];
        worst = std::max(worst, gap / 2.0);
    }
    return worst;
}

}  // namespace ehdse::harvester
