#include "harvester/vibration.hpp"

#include <cmath>
#include <istream>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace ehdse::harvester {

namespace {
constexpr double two_pi = 2.0 * std::numbers::pi;
}

vibration_source::vibration_source(double amplitude_ms2, double frequency_hz)
    : amplitude_(amplitude_ms2) {
    if (amplitude_ms2 < 0.0)
        throw std::invalid_argument("vibration_source: negative amplitude");
    if (frequency_hz <= 0.0)
        throw std::invalid_argument("vibration_source: frequency must be > 0");
    segments_.push_back({0.0, frequency_hz, 0.0});
}

vibration_source vibration_source::stepped(double amplitude_ms2, double start_hz,
                                           double step_hz, double step_period_s,
                                           std::size_t step_count) {
    if (step_period_s <= 0.0)
        throw std::invalid_argument("vibration_source: step period must be > 0");
    vibration_source src(amplitude_ms2, start_hz);
    double phase = 0.0;
    double freq = start_hz;
    double t = 0.0;
    for (std::size_t i = 0; i < step_count; ++i) {
        // Accumulate phase to the end of the current segment, then step.
        phase += two_pi * freq * step_period_s;
        t += step_period_s;
        freq += step_hz;
        if (freq <= 0.0)
            throw std::invalid_argument("vibration_source: stepped frequency fell to <= 0");
        src.segments_.push_back({t, freq, phase});
        src.change_times_.push_back(t);
    }
    return src;
}

vibration_source vibration_source::stepped_mg(double amplitude_mg, double start_hz,
                                              double step_hz, double step_period_s,
                                              std::size_t step_count) {
    return stepped(amplitude_mg * 1e-3 * k_gravity, start_hz, step_hz,
                   step_period_s, step_count);
}

vibration_source vibration_source::from_schedule(
    double amplitude_ms2,
    const std::vector<std::pair<double, double>>& schedule) {
    if (schedule.empty() || schedule.front().first != 0.0)
        throw std::invalid_argument(
            "vibration_source: schedule must start with an entry at t = 0");
    vibration_source src(amplitude_ms2, schedule.front().second);
    double phase = 0.0;
    for (std::size_t i = 1; i < schedule.size(); ++i) {
        const auto [t_prev, f_prev] = schedule[i - 1];
        const auto [t, f] = schedule[i];
        if (t <= t_prev)
            throw std::invalid_argument(
                "vibration_source: schedule times must be strictly increasing");
        if (f <= 0.0)
            throw std::invalid_argument(
                "vibration_source: schedule frequencies must be > 0");
        phase += two_pi * f_prev * (t - t_prev);
        src.segments_.push_back({t, f, phase});
        src.change_times_.push_back(t);
    }
    return src;
}

vibration_source vibration_source::random_walk(double amplitude_ms2,
                                               double start_hz, double dwell_s,
                                               double max_step_hz, double f_min,
                                               double f_max, std::size_t changes,
                                               std::uint64_t seed) {
    if (dwell_s <= 0.0)
        throw std::invalid_argument("vibration_source: dwell must be > 0");
    if (!(f_min > 0.0) || !(f_max > f_min))
        throw std::invalid_argument("vibration_source: need 0 < f_min < f_max");
    if (start_hz < f_min || start_hz > f_max)
        throw std::invalid_argument("vibration_source: start outside [f_min, f_max]");

    // Small local xorshift so the harvester layer needs no numeric dep here.
    std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
    const auto uniform = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return static_cast<double>(state >> 11) * 0x1.0p-53;
    };

    std::vector<std::pair<double, double>> schedule{{0.0, start_hz}};
    double f = start_hz;
    for (std::size_t i = 1; i <= changes; ++i) {
        f += (2.0 * uniform() - 1.0) * max_step_hz;
        // Reflect off the band edges.
        if (f < f_min) f = 2.0 * f_min - f;
        if (f > f_max) f = 2.0 * f_max - f;
        if (f < f_min) f = f_min;  // pathological step sizes
        schedule.emplace_back(static_cast<double>(i) * dwell_s, f);
    }
    return from_schedule(amplitude_ms2, schedule);
}

std::vector<std::pair<double, double>> vibration_source::parse_schedule_csv(
    std::istream& in) {
    std::vector<std::pair<double, double>> schedule;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

        std::istringstream row(line);
        std::string t_str, f_str;
        if (!std::getline(row, t_str, ',') || !std::getline(row, f_str)) {
            throw std::invalid_argument(
                "parse_schedule_csv: line " + std::to_string(line_no) +
                ": expected 'time,frequency'");
        }
        char* end = nullptr;
        const double t = std::strtod(t_str.c_str(), &end);
        if (end == t_str.c_str()) {
            // Permit one non-numeric header row.
            if (schedule.empty() && line_no <= 2) continue;
            throw std::invalid_argument("parse_schedule_csv: line " +
                                        std::to_string(line_no) +
                                        ": bad time value '" + t_str + "'");
        }
        const double f = std::strtod(f_str.c_str(), &end);
        if (end == f_str.c_str())
            throw std::invalid_argument("parse_schedule_csv: line " +
                                        std::to_string(line_no) +
                                        ": bad frequency value '" + f_str + "'");
        schedule.emplace_back(t, f);
    }
    if (schedule.empty())
        throw std::invalid_argument("parse_schedule_csv: no data rows");
    return schedule;
}

const vibration_source::segment& vibration_source::segment_at(double t) const {
    // Few segments (the paper uses 3): linear scan beats binary search here.
    for (std::size_t i = segments_.size(); i-- > 0;)
        if (t >= segments_[i].t_start) return segments_[i];
    return segments_.front();
}

double vibration_source::amplitude_at(double t) const {
    if (amplitude_schedule_.empty()) return amplitude_;
    // Few entries expected; scan from the back for the active scale.
    for (std::size_t i = amplitude_schedule_.size(); i-- > 0;)
        if (t >= amplitude_schedule_[i].first)
            return amplitude_ * amplitude_schedule_[i].second;
    return amplitude_ * amplitude_schedule_.front().second;
}

vibration_source vibration_source::with_amplitude_schedule(
    std::vector<std::pair<double, double>> schedule) const {
    if (schedule.empty() || schedule.front().first != 0.0)
        throw std::invalid_argument(
            "vibration_source: amplitude schedule must start at t = 0");
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (schedule[i].second < 0.0)
            throw std::invalid_argument(
                "vibration_source: amplitude scales must be >= 0");
        if (i > 0 && schedule[i].first <= schedule[i - 1].first)
            throw std::invalid_argument(
                "vibration_source: amplitude schedule times must increase");
    }
    vibration_source out = *this;
    out.amplitude_schedule_ = std::move(schedule);
    return out;
}

vibration_source vibration_source::with_duty_cycle(double on_s, double off_s,
                                                   std::size_t cycles) const {
    if (on_s <= 0.0 || off_s <= 0.0)
        throw std::invalid_argument("vibration_source: duty phases must be > 0");
    std::vector<std::pair<double, double>> schedule;
    double t = 0.0;
    for (std::size_t c = 0; c < cycles; ++c) {
        schedule.emplace_back(t, 1.0);
        schedule.emplace_back(t + on_s, 0.0);
        t += on_s + off_s;
    }
    return with_amplitude_schedule(std::move(schedule));
}

double vibration_source::frequency_at(double t) const {
    return segment_at(t).freq_hz;
}

double vibration_source::acceleration(double t) const {
    const segment& s = segment_at(t);
    const double phase = s.phase + two_pi * s.freq_hz * (t - s.t_start);
    return amplitude_at(t) * std::sin(phase);
}

}  // namespace ehdse::harvester
