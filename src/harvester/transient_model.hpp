// Full nonlinear transient model of the analogue chain:
// microgenerator mechanics -> coil -> diode bridge -> supercapacitor -> loads.
//
// This is the "ground truth" model used to validate the envelope fast path
// (bench_ablation_statespace) and for short-window waveform studies. It is
// an analog_system with four continuous states:
//   x[0] = z      proof-mass displacement relative to the base (m)
//   x[1] = v      relative velocity (m/s)
//   x[2] = V      supercapacitor voltage (V)
//   x[3] = E_h    cumulative energy delivered into the store (J)
//
// The coil inductance is negligible at vibration frequencies, so the coil
// current is algebraic: the bridge conducts when |phi v| exceeds
// V + 2 Vd, giving i = sign(e) (|e| - V - 2 Vd)/R_c. End stops are modelled
// as a stiff one-sided spring beyond the displacement limit.
#pragma once

#include "harvester/microgenerator.hpp"
#include "harvester/vibration.hpp"
#include "power/load_bank.hpp"
#include "power/rectifier.hpp"
#include "power/storage.hpp"
#include "sim/ode.hpp"

namespace ehdse::harvester {

class transient_model final : public sim::analog_system {
public:
    /// Indices into the state vector.
    enum state_index : std::size_t {
        ix_displacement = 0,
        ix_velocity = 1,
        ix_voltage = 2,
        ix_harvested = 3,
        k_state_count = 4,
    };

    /// All referenced objects must outlive the model.
    transient_model(const microgenerator& gen, const vibration_source& vib,
                    const power::storage_model& cap, const power::load_bank& loads,
                    power::rectifier_params rect = {});

    /// Actuator position used for k_eff; changed by the tuning controller.
    int position() const noexcept { return position_; }
    void set_position(int position);

    /// Instantaneous coil current for a given (velocity, store voltage).
    double coil_current(double velocity, double store_v) const;

    std::size_t state_size() const override { return k_state_count; }
    void derivatives(double t, std::span<const double> x,
                     std::span<double> dxdt) const override;

    /// Suggested initial state: mass at rest, store at `v0` volts.
    static std::vector<double> initial_state(double v0);

    /// Suggested max integrator step for excitation at `freq_hz`
    /// (twenty points per cycle keeps the bridge switching resolved).
    static double suggested_max_dt(double freq_hz) { return 1.0 / (20.0 * freq_hz); }

private:
    const microgenerator& gen_;
    const vibration_source& vib_;
    const power::storage_model& cap_;
    const power::load_bank& loads_;
    power::rectifier_params rect_;
    int position_ = 0;
    double end_stop_stiffness_;
};

}  // namespace ehdse::harvester
