// Abstract view of the analogue plant as seen by the digital controllers.
//
// The sensor node (node/) and the microcontroller (mcu/) are written
// against this interface, so the same digital processes run unchanged on
// top of either the envelope fast-path system or the full transient model
// — exactly the property the paper gets from SystemC-A's common kernel.
#pragma once

#include <string>

namespace ehdse::harvester {

class plant {
public:
    virtual ~plant() = default;

    /// Present supercapacitor voltage (V).
    virtual double storage_voltage() const = 0;

    /// Instantaneously withdraw `joules` from the store, attributed to the
    /// named energy-ledger account. Used for sub-millisecond bursts.
    virtual void withdraw(double joules, const std::string& account) = 0;

    /// Begin/adjust a sustained draw (amps) attributed to a named account;
    /// pass 0 to stop. Used for phases lasting many milliseconds or more.
    virtual void set_sustained_draw(const std::string& account, double amps) = 0;

    /// Present 8-bit actuator position.
    virtual int position() const = 0;

    /// Command the actuator to an absolute position (clamped to [0,255]).
    virtual void set_position(int position) = 0;

    /// True instantaneous ambient vibration frequency (Hz). The controller
    /// must NOT use this directly — it applies its own measurement model on
    /// top (clock-dependent quantisation); exposed for that purpose and for
    /// benchmarks.
    virtual double vibration_frequency() const = 0;

    /// Steady-state phase lag of proof-mass displacement behind base
    /// acceleration (radians, in (0, pi)); pi/2 at perfect resonance. The
    /// fine-tuning algorithm compares this (offset by pi/2) against its
    /// 100 us threshold.
    virtual double phase_lag() const = 0;
};

}  // namespace ehdse::harvester
