// Pluggable harvester backend interface — the registry pattern (PR 4's
// design/surrogate/optimizer registries) applied to the physics layer.
//
// A harvester_model bundles everything the node simulators need from one
// device class:
//
//   * the tuning law          resonant_frequency(position) over a discrete
//                             actuator range (the firmware LUT samples it);
//   * the power envelope      envelope_dynamics(): cycle-averaged amplitude
//                             relaxation rate and store charging current at
//                             one (excitation, position, store voltage)
//                             point — the RHS contribution the envelope
//                             fast path integrates;
//   * the transient RHS       make_transient(): the full per-cycle ODE
//                             system for validation runs;
//   * the retune energy cost  actuator(): what one tuning move costs the
//                             energy budget (stepper motor for the
//                             electromagnetic device, bias DAC for the
//                             electrostatic one);
//   * describe()              machine-readable parameter summary for
//                             --list-harvesters and service manifests.
//
// Numerical contract: envelope_dynamics / initial_amplitude / phase_lag
// are pure functions of their arguments. The electromagnetic entry
// implements them with the exact code the envelope_system used before the
// refactor, so the generic system calling through the interface stays
// bit-identical — the testkit batch-vs-scalar and golden-value properties
// pin that.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "power/load_bank.hpp"
#include "power/rectifier.hpp"
#include "power/storage.hpp"
#include "sim/ode.hpp"

namespace ehdse::harvester {

class vibration_source;

/// Power-conditioning mode of the envelope path. Mirrors
/// spec::frontend_kind (spec depends on harvester, so the canonical enum
/// cannot be referenced from here); dse::make_node_system maps between
/// the two.
enum class conditioning_kind {
    diode_bridge,  ///< passive bridge straight into the store
    mppt,          ///< matched-load converter at fixed efficiency
};

/// What one actuator move costs — the numbers the tuning controller
/// budgets against before committing to a retune. Defaults are the
/// electromagnetic device's Haydon 21000 stepper (mcu::actuator_params).
struct retune_cost {
    double step_time_s = 5.0e-3;         ///< wall time per position step
    double single_step_energy_j = 4.06e-3;
    double multi_step_energy_j = 2.03e-3;  ///< per step in a multi-step move
    double min_drive_voltage_v = 2.6;    ///< store voltage floor to actuate
};

/// Envelope RHS contribution at one operating point: how fast the
/// displacement-amplitude envelope relaxes and what average current the
/// conditioning circuit delivers into the store.
struct envelope_rates {
    double amplitude_rate = 0.0;    ///< d z_env / dt (m/s)
    double charge_current_a = 0.0;  ///< average current into the store
};

/// Full transient ODE system of one harvester: mechanics + conditioning
/// circuit resolved every vibration cycle. The wrapper (transient_system)
/// only needs the state layout taps and integration ceiling; everything
/// else is the analog_system contract.
class transient_rhs : public sim::analog_system {
public:
    ~transient_rhs() override = default;

    /// Initial state: mass at rest, store at `v0` volts.
    virtual std::vector<double> initial_state(double v0) const = 0;

    virtual int position() const = 0;
    virtual void set_position(int position) = 0;

    /// Where the store voltage / cumulative harvested energy live.
    virtual std::size_t voltage_index() const = 0;
    virtual std::size_t harvested_index() const = 0;

    /// Integrator step ceiling resolving the fastest dynamics.
    virtual double suggested_max_dt() const = 0;
};

/// One registered harvester device class. Stateless and thread-safe: all
/// queries are pure functions of the parameters, shared read-only across
/// concurrent evaluations exactly like the microgenerator it generalises.
class harvester_model {
public:
    virtual ~harvester_model() = default;

    /// Registry name ("electromagnetic", "electrostatic").
    virtual const std::string& name() const noexcept = 0;

    /// Machine-readable parameter summary (JSON object) for
    /// --list-harvesters, manifests and debugging.
    virtual obs::json_value describe() const = 0;

    /// Number of discrete actuator positions (8-bit in the paper).
    virtual int position_count() const noexcept = 0;

    /// Tuning law: resonant frequency (Hz) at a discrete position. Must be
    /// monotone non-decreasing in position (tuning_table's invariant).
    virtual double resonant_frequency(int position) const = 0;

    double min_frequency() const { return resonant_frequency(0); }
    double max_frequency() const {
        return resonant_frequency(position_count() - 1);
    }

    /// Energy/time cost of actuating the tuning mechanism.
    virtual retune_cost actuator() const noexcept = 0;

    /// Converged steady-state displacement amplitude at t = 0 — the
    /// envelope integrator's initial condition (so the run does not start
    /// on an artificial transient).
    virtual double initial_amplitude(double freq_hz, double accel_amp_ms2,
                                     int position, double store_v,
                                     const power::rectifier_params& rect) const = 0;

    /// Envelope RHS at one operating point: amplitude relaxation rate for
    /// the current envelope value `z_env` plus the average charging
    /// current the conditioning circuit delivers at store voltage
    /// `store_v`. `efficiency` applies to the mppt conditioning kind only.
    virtual envelope_rates envelope_dynamics(
        double freq_hz, double accel_amp_ms2, int position, double store_v,
        double z_env, conditioning_kind conditioning, double efficiency,
        const power::rectifier_params& rect) const = 0;

    /// Steady-state phase lag between excitation and displacement — the
    /// measurement tap the fine-tuning controller's phase detector reads.
    virtual double phase_lag(double freq_hz, double accel_amp_ms2,
                             int position, double store_v,
                             const power::rectifier_params& rect) const = 0;

    /// Build the full transient ODE system for validation-fidelity runs.
    /// All referenced objects must outlive the returned system.
    virtual std::unique_ptr<transient_rhs> make_transient(
        const vibration_source& vib, const power::storage_model& storage,
        const power::load_bank& loads,
        const power::rectifier_params& rect) const = 0;
};

/// One registry row: the spellings --list-harvesters prints.
struct harvester_info {
    std::string name;
    std::string description;
};

/// Registered harvester device classes, in presentation order.
const std::vector<harvester_info>& harvester_registry();

/// True when `name` is a registered harvester.
bool is_known_harvester(std::string_view name) noexcept;

/// Comma-separated registered names, for error messages.
std::string harvester_names();

/// Build the named harvester with its default (paper-calibrated)
/// parameters. Throws std::invalid_argument for an unknown name
/// (offender named, valid choices listed).
std::unique_ptr<harvester_model> make_harvester(std::string_view name);

}  // namespace ehdse::harvester
