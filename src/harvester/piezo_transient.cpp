#include "harvester/piezo_transient.hpp"

#include <cmath>
#include <stdexcept>

namespace ehdse::harvester {

piezo_transient_model::piezo_transient_model(const piezo_microgenerator& gen,
                                             const vibration_source& vib,
                                             const power::storage_model& storage,
                                             const power::load_bank& loads,
                                             power::rectifier_params rect,
                                             double bridge_conductance_s)
    : gen_(gen), vib_(vib), storage_(storage), loads_(loads), rect_(rect),
      g_on_(bridge_conductance_s) {
    if (g_on_ <= 0.0)
        throw std::invalid_argument(
            "piezo_transient_model: bridge conductance must be > 0");
}

void piezo_transient_model::set_position(int position) {
    if (position < 0 || position >= microgenerator_params::k_position_count)
        throw std::out_of_range(
            "piezo_transient_model: actuator position outside [0,255]");
    position_ = position;
}

double piezo_transient_model::bridge_current(double piezo_v, double store_v) const {
    const double u = store_v + 2.0 * rect_.diode_drop_v;
    const double over = std::abs(piezo_v) - u;
    if (over <= 0.0) return 0.0;
    return piezo_v >= 0.0 ? g_on_ * over : -g_on_ * over;
}

void piezo_transient_model::derivatives(double t, std::span<const double> x,
                                        std::span<double> dxdt) const {
    const double z = x[ix_displacement];
    const double v = x[ix_velocity];
    const double vp = x[ix_piezo_voltage];
    const double vc = std::max(x[ix_voltage], 0.0);

    const auto& mech = gen_.mechanics();
    const auto& p = gen_.params();
    const double k = mech.effective_stiffness(position_);
    const double a = vib_.acceleration(t);
    const double i_br = bridge_current(vp, vc);

    dxdt[ix_displacement] = v;
    dxdt[ix_velocity] =
        (-k * z - mech.mech_damping() * v - p.coupling_n_per_v * vp) /
            p.mech.mass_kg -
        a;
    dxdt[ix_piezo_voltage] =
        (p.coupling_n_per_v * v - i_br) / p.clamped_capacitance_f;
    const double i_store = std::abs(i_br);
    dxdt[ix_voltage] = storage_.dv_dt(vc, i_store - loads_.total_current(vc));
    dxdt[ix_harvested] = vc * i_store;
}

std::vector<double> piezo_transient_model::initial_state(double v0) {
    std::vector<double> x(k_state_count, 0.0);
    x[ix_voltage] = v0;
    return x;
}

}  // namespace ehdse::harvester
