#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace ehdse::obs {

namespace {

void atomic_add(std::atomic<double>& a, double delta) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

}  // namespace

std::size_t histogram::bucket_index(double v) noexcept {
    // v >= k_min_value and finite. ilogb gives floor(log2(v / 1)) cheaply;
    // rescale so bucket 0 starts at k_min_value.
    const int e = std::ilogb(v / k_min_value);
    if (e < 0) return 0;  // rounding guard at the lower edge
    return std::min<std::size_t>(static_cast<std::size_t>(e), k_buckets);
}

double histogram::bucket_lower(std::size_t b) noexcept {
    return k_min_value * std::ldexp(1.0, static_cast<int>(b));
}

void histogram::observe(double v) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    if (std::isnan(v)) {  // uncountable: tallied as underflow, excluded from moments
        underflow_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (v < k_min_value) {
        underflow_.fetch_add(1, std::memory_order_relaxed);
    } else {
        const std::size_t b = bucket_index(v);
        if (b >= k_buckets)
            overflow_.fetch_add(1, std::memory_order_relaxed);
        else
            buckets_[b].fetch_add(1, std::memory_order_relaxed);
    }
    atomic_add(sum_, v);
    atomic_min(min_, v);
    atomic_max(max_, v);
}

double histogram::quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    std::uint64_t seen = underflow();
    if (seen >= target && seen > 0) return min();
    for (std::size_t b = 0; b < k_buckets; ++b) {
        seen += bucket(b);
        if (seen >= target)
            return 0.5 * (bucket_lower(b) + bucket_lower(b + 1));
    }
    return max();
}

json_value histogram::to_json() const {
    json_object o;
    o.emplace_back("count", json_value(count()));
    o.emplace_back("sum", json_value(sum()));
    o.emplace_back("mean", json_value(mean()));
    o.emplace_back("min", json_value(min()));
    o.emplace_back("max", json_value(max()));
    o.emplace_back("p50", json_value(quantile(0.50)));
    o.emplace_back("p90", json_value(quantile(0.90)));
    o.emplace_back("p99", json_value(quantile(0.99)));
    o.emplace_back("underflow", json_value(underflow()));
    o.emplace_back("overflow", json_value(overflow()));
    json_array buckets;
    for (std::size_t b = 0; b < k_buckets; ++b) {
        const std::uint64_t c = bucket(b);
        if (c == 0) continue;
        buckets.push_back(json_value(json_array{
            json_value(bucket_lower(b)), json_value(c)}));
    }
    o.emplace_back("buckets", json_value(std::move(buckets)));
    return json_value(std::move(o));
}

counter& metrics_registry::get_counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(std::string(name), std::make_unique<counter>()).first;
    return *it->second;
}

gauge& metrics_registry::get_gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), std::make_unique<gauge>()).first;
    return *it->second;
}

histogram& metrics_registry::get_histogram(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(std::string(name), std::make_unique<histogram>())
                 .first;
    return *it->second;
}

std::vector<std::string> metrics_registry::counter_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    for (const auto& [name, _] : counters_) names.push_back(name);
    return names;
}

std::vector<std::string> metrics_registry::gauge_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    for (const auto& [name, _] : gauges_) names.push_back(name);
    return names;
}

std::vector<std::string> metrics_registry::histogram_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    for (const auto& [name, _] : histograms_) names.push_back(name);
    return names;
}

json_value metrics_registry::to_json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    json_object counters;
    for (const auto& [name, c] : counters_)
        counters.emplace_back(name, json_value(c->value()));
    json_object gauges;
    for (const auto& [name, g] : gauges_)
        gauges.emplace_back(name, json_value(g->value()));
    json_object histograms;
    for (const auto& [name, h] : histograms_)
        histograms.emplace_back(name, h->to_json());
    json_object root;
    root.emplace_back("counters", json_value(std::move(counters)));
    root.emplace_back("gauges", json_value(std::move(gauges)));
    root.emplace_back("histograms", json_value(std::move(histograms)));
    return json_value(std::move(root));
}

void metrics_registry::write_json(std::ostream& os, int indent) const {
    to_json().write(os, indent);
    os << '\n';
}

namespace {
std::atomic<metrics_registry*> g_registry{nullptr};
}  // namespace

metrics_registry* global_registry() noexcept {
    return g_registry.load(std::memory_order_relaxed);
}

void set_global_registry(metrics_registry* registry) noexcept {
    g_registry.store(registry, std::memory_order_release);
}

}  // namespace ehdse::obs
