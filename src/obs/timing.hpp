// Wall-clock instrumentation: an always-on stopwatch for phase timings
// (the caller wants the number regardless of any sink) and an RAII
// scoped_timer that records into a histogram only when one is attached —
// with no sink it never reads the clock at all.
#pragma once

#include <chrono>
#include <string_view>

#include "obs/metrics.hpp"

namespace ehdse::obs {

/// Monotonic elapsed-seconds clock. Starts on construction.
class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}

    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Restart and return the lap time in seconds.
    double lap() {
        const auto now = clock::now();
        const double s = std::chrono::duration<double>(now - start_).count();
        start_ = now;
        return s;
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Records elapsed seconds into a histogram on destruction (or on an
/// explicit stop()). A nullptr sink disarms the timer entirely — the
/// constructor and destructor then cost two branches, no clock reads.
class scoped_timer {
public:
    explicit scoped_timer(histogram* sink) : sink_(sink) {
        if (sink_) start_ = std::chrono::steady_clock::now();
    }

    /// Time into `registry`'s histogram `name`; nullptr registry disarms.
    scoped_timer(metrics_registry* registry, std::string_view name)
        : scoped_timer(registry ? &registry->get_histogram(name) : nullptr) {}

    scoped_timer(const scoped_timer&) = delete;
    scoped_timer& operator=(const scoped_timer&) = delete;

    ~scoped_timer() { stop(); }

    /// Record now instead of at scope exit; returns the elapsed seconds
    /// (0.0 when disarmed or already stopped). Idempotent.
    double stop() {
        if (!sink_) return 0.0;
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
        sink_->observe(s);
        sink_ = nullptr;
        return s;
    }

private:
    histogram* sink_;
    std::chrono::steady_clock::time_point start_{};
};

}  // namespace ehdse::obs
