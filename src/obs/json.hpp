// Minimal JSON document model: enough to serialise run manifests and
// metrics snapshots and to parse them back (round-trip tests, downstream
// tooling). Zero dependencies beyond the standard library, by design —
// the obs layer must be linkable everywhere, including the benches.
//
// Numbers are stored as double; integral values within 2^53 survive a
// write/parse round trip exactly (they are printed without a fraction).
// Object member order is preserved (insertion order), which keeps
// manifests diff-friendly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ehdse::obs {

class json_value;

/// Object members in insertion order. Lookup is linear — manifest objects
/// are small and diff-stability matters more than O(log n) access.
using json_object = std::vector<std::pair<std::string, json_value>>;
using json_array = std::vector<json_value>;

class json_value {
public:
    json_value() : data_(nullptr) {}
    json_value(std::nullptr_t) : data_(nullptr) {}
    json_value(bool b) : data_(b) {}
    json_value(double d) : data_(d) {}
    json_value(int i) : data_(static_cast<double>(i)) {}
    json_value(unsigned u) : data_(static_cast<double>(u)) {}
    json_value(long long i) : data_(static_cast<double>(i)) {}
    json_value(unsigned long long u) : data_(static_cast<double>(u)) {}
    json_value(long i) : data_(static_cast<double>(i)) {}
    json_value(unsigned long u) : data_(static_cast<double>(u)) {}
    json_value(const char* s) : data_(std::string(s)) {}
    json_value(std::string s) : data_(std::move(s)) {}
    json_value(std::string_view s) : data_(std::string(s)) {}
    json_value(json_array a) : data_(std::move(a)) {}
    json_value(json_object o) : data_(std::move(o)) {}

    bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
    bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
    bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
    bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
    bool is_array() const noexcept { return std::holds_alternative<json_array>(data_); }
    bool is_object() const noexcept { return std::holds_alternative<json_object>(data_); }

    /// Typed accessors throw std::logic_error on kind mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const json_array& as_array() const;
    const json_object& as_object() const;
    json_array& as_array();
    json_object& as_object();

    /// Object member by key; throws std::out_of_range when absent.
    const json_value& at(std::string_view key) const;
    /// Array element by index; throws std::out_of_range when absent.
    const json_value& at(std::size_t index) const;
    bool contains(std::string_view key) const;
    /// Pointer to a member, nullptr when absent (or not an object).
    const json_value* find(std::string_view key) const;
    /// Array/object element count; 0 for scalars.
    std::size_t size() const noexcept;

    /// Append a member to an object (no duplicate-key check; callers own
    /// uniqueness). Throws std::logic_error unless *this is an object.
    void set(std::string key, json_value value);
    /// Append an element to an array.
    void push_back(json_value value);

    /// Serialise. indent < 0 = compact one-line form; indent >= 0 =
    /// pretty-printed with that many spaces per level.
    void write(std::ostream& os, int indent = -1) const;
    std::string dump(int indent = -1) const;

    /// Parse a complete JSON document. Throws std::invalid_argument with
    /// an offset-bearing message on malformed input or trailing garbage.
    static json_value parse(std::string_view text);

    friend bool operator==(const json_value& a, const json_value& b) {
        return a.data_ == b.data_;
    }

private:
    void write_impl(std::ostream& os, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::string, json_array, json_object>
        data_;
};

/// Write `s` as a JSON string literal (quotes + escapes) to `os`.
void write_json_string(std::ostream& os, std::string_view s);

/// Format a double the way the serialiser does: shortest round-trip form,
/// integral values without a fraction, non-finite values as null.
std::string json_number_to_string(double v);

}  // namespace ehdse::obs
