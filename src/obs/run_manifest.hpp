// Machine-readable record of one flow execution — the automated version
// of the paper's Table VI / Fig. 5 bookkeeping: which configuration was
// simulated when, at what cost (wall time, ODE steps, events), what every
// optimiser did, and how the optima validated. One manifest per
// run_rsm_flow call; serialises to a single JSON document or to JSONL
// (one record per line, for appending across runs).
//
// Appending records is thread-safe (the flow's parallel path records
// design points from worker threads); serialisation is not — write only
// after the run completes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace ehdse::obs {

/// One timed stage of the flow (candidates, d_optimal, simulate, ...).
struct phase_record {
    std::string name;
    double wall_s = 0.0;
    std::uint64_t items = 0;  ///< units processed (points, runs, ...), 0 = n/a
};

/// One whole-system simulation: a DoE design point (possibly a replicate),
/// the baseline, or an optimiser-validation re-run.
struct sim_run_record {
    std::string kind;             ///< "design_point" | "baseline" | "validation"
    std::size_t index = 0;        ///< design-point / optimiser ordinal
    std::vector<double> coded;    ///< coded coordinates (empty for baseline)
    double mcu_clock_hz = 0.0;
    double watchdog_period_s = 0.0;
    double tx_interval_s = 0.0;
    std::uint64_t seed = 0;       ///< controller measurement-noise seed
    double response = 0.0;        ///< transmissions (the paper's y)
    double wall_s = 0.0;
    std::uint64_t ode_steps = 0;
    std::uint64_t ode_steps_rejected = 0;
    std::uint64_t events = 0;
    bool sim_ok = true;
};

/// One optimiser's pass over the fitted surface.
struct optimizer_record {
    std::string name;
    std::uint64_t evaluations = 0;  ///< objective (surface) evaluations
    std::uint64_t iterations = 0;   ///< epochs (SA) / generations (GA)
    std::uint64_t proposed_moves = 0;  ///< moves offered to an acceptance rule
    std::uint64_t accepted_moves = 0;  ///< SA Metropolis acceptances (0 = n/a)
    double acceptance_rate = -1.0;  ///< accepted/evaluated; < 0 = n/a
    bool converged = false;
    double predicted = 0.0;         ///< surface value at the optimum
    double validated_response = 0.0;  ///< re-simulated transmissions
    std::vector<double> coded;      ///< optimum in coded coordinates
    double wall_s = 0.0;
};

class run_manifest {
public:
    /// Identify the producing tool (echoed into the header record).
    void set_tool(std::string name, std::string version);

    /// Echo one configuration option / seed into the manifest header.
    /// Call before serialising; later calls with the same key append (the
    /// reader sees the last value — keep keys unique).
    void set_option(std::string key, json_value value);

    void add_phase(phase_record record);
    void add_sim_run(sim_run_record record);
    void add_optimizer(optimizer_record record);

    /// Attach a metrics snapshot (typically registry.to_json()).
    void set_metrics(json_value snapshot);

    std::vector<phase_record> phases() const;
    std::vector<sim_run_record> sim_runs() const;
    std::vector<optimizer_record> optimizers() const;

    /// Count of sim runs of one kind ("design_point", ...).
    std::size_t sim_run_count(std::string_view kind) const;

    /// One JSON document:
    /// {schema, tool, options, phases, runs, optimizers, metrics?}
    json_value to_json() const;
    void write_json(std::ostream& os, int indent = 2) const;

    /// JSONL: a header line {record:"header",...} followed by one line per
    /// phase/run/optimizer record, each tagged with "record".
    void write_jsonl(std::ostream& os) const;

    /// Schema identifier written into every manifest.
    static constexpr const char* k_schema = "ehdse.run_manifest/1";

private:
    json_value header_json() const;  ///< caller holds mutex_

    mutable std::mutex mutex_;
    std::string tool_name_ = "ehdse";
    std::string tool_version_;
    json_object options_;
    std::vector<phase_record> phases_;
    std::vector<sim_run_record> runs_;
    std::vector<optimizer_record> optimizers_;
    json_value metrics_ = json_value(nullptr);
};

}  // namespace ehdse::obs
