#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ehdse::obs {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
    throw std::logic_error(std::string("json_value: not a ") + wanted);
}

}  // namespace

bool json_value::as_bool() const {
    if (const bool* b = std::get_if<bool>(&data_)) return *b;
    kind_error("bool");
}

double json_value::as_number() const {
    if (const double* d = std::get_if<double>(&data_)) return *d;
    kind_error("number");
}

const std::string& json_value::as_string() const {
    if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
    kind_error("string");
}

const json_array& json_value::as_array() const {
    if (const json_array* a = std::get_if<json_array>(&data_)) return *a;
    kind_error("array");
}

const json_object& json_value::as_object() const {
    if (const json_object* o = std::get_if<json_object>(&data_)) return *o;
    kind_error("object");
}

json_array& json_value::as_array() {
    if (json_array* a = std::get_if<json_array>(&data_)) return *a;
    kind_error("array");
}

json_object& json_value::as_object() {
    if (json_object* o = std::get_if<json_object>(&data_)) return *o;
    kind_error("object");
}

const json_value* json_value::find(std::string_view key) const {
    const json_object* o = std::get_if<json_object>(&data_);
    if (!o) return nullptr;
    for (const auto& [k, v] : *o)
        if (k == key) return &v;
    return nullptr;
}

const json_value& json_value::at(std::string_view key) const {
    if (const json_value* v = find(key)) return *v;
    throw std::out_of_range("json_value: no member '" + std::string(key) + "'");
}

const json_value& json_value::at(std::size_t index) const {
    const json_array& a = as_array();
    if (index >= a.size())
        throw std::out_of_range("json_value: array index out of range");
    return a[index];
}

bool json_value::contains(std::string_view key) const {
    return find(key) != nullptr;
}

std::size_t json_value::size() const noexcept {
    if (const json_array* a = std::get_if<json_array>(&data_)) return a->size();
    if (const json_object* o = std::get_if<json_object>(&data_)) return o->size();
    return 0;
}

void json_value::set(std::string key, json_value value) {
    as_object().emplace_back(std::move(key), std::move(value));
}

void json_value::push_back(json_value value) {
    as_array().push_back(std::move(value));
}

// ---------------------------------------------------------------- writing

void write_json_string(std::ostream& os, std::string_view s) {
    os.put('"');
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\b': os << "\\b"; break;
            case '\f': os << "\\f"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    os << buf;
                } else {
                    os.put(c);
                }
        }
    }
    os.put('"');
}

std::string json_number_to_string(double v) {
    if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
    // Integral values within the exactly-representable range print without
    // a fraction, so counters survive round trips textually unchanged.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        auto [end, ec] =
            std::to_chars(buf, buf + sizeof buf, static_cast<long long>(v));
        if (ec == std::errc()) return std::string(buf, end);
    }
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    if (ec != std::errc()) return "null";
    return std::string(buf, end);
}

void json_value::write_impl(std::ostream& os, int indent, int depth) const {
    const auto newline_pad = [&](int d) {
        if (indent < 0) return;
        os.put('\n');
        for (int i = 0; i < indent * d; ++i) os.put(' ');
    };
    if (is_null()) {
        os << "null";
    } else if (const bool* b = std::get_if<bool>(&data_)) {
        os << (*b ? "true" : "false");
    } else if (const double* d = std::get_if<double>(&data_)) {
        os << json_number_to_string(*d);
    } else if (const std::string* s = std::get_if<std::string>(&data_)) {
        write_json_string(os, *s);
    } else if (const json_array* a = std::get_if<json_array>(&data_)) {
        if (a->empty()) {
            os << "[]";
            return;
        }
        os.put('[');
        for (std::size_t i = 0; i < a->size(); ++i) {
            if (i) os.put(',');
            newline_pad(depth + 1);
            (*a)[i].write_impl(os, indent, depth + 1);
        }
        newline_pad(depth);
        os.put(']');
    } else if (const json_object* o = std::get_if<json_object>(&data_)) {
        if (o->empty()) {
            os << "{}";
            return;
        }
        os.put('{');
        for (std::size_t i = 0; i < o->size(); ++i) {
            if (i) os.put(',');
            newline_pad(depth + 1);
            write_json_string(os, (*o)[i].first);
            os.put(':');
            if (indent >= 0) os.put(' ');
            (*o)[i].second.write_impl(os, indent, depth + 1);
        }
        newline_pad(depth);
        os.put('}');
    }
}

void json_value::write(std::ostream& os, int indent) const {
    write_impl(os, indent, 0);
}

std::string json_value::dump(int indent) const {
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

// ---------------------------------------------------------------- parsing

namespace {

class parser {
public:
    explicit parser(std::string_view text) : text_(text) {}

    json_value run() {
        json_value v = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    static constexpr int k_max_depth = 128;

    [[noreturn]] void fail(const std::string& what) const {
        throw std::invalid_argument("json parse error at offset " +
                                    std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    json_value parse_value(int depth) {
        if (depth > k_max_depth) fail("nesting too deep");
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object(depth);
            case '[': return parse_array(depth);
            case '"': return json_value(parse_string());
            case 't':
                if (consume_literal("true")) return json_value(true);
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return json_value(false);
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return json_value(nullptr);
                fail("invalid literal");
            default: return parse_number();
        }
    }

    json_value parse_object(int depth) {
        expect('{');
        json_object members;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return json_value(std::move(members));
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            members.emplace_back(std::move(key), parse_value(depth + 1));
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == '}') break;
            if (c != ',') fail("expected ',' or '}' in object");
        }
        return json_value(std::move(members));
    }

    json_value parse_array(int depth) {
        expect('[');
        json_array elements;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return json_value(std::move(elements));
        }
        while (true) {
            elements.push_back(parse_value(depth + 1));
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == ']') break;
            if (c != ',') fail("expected ',' or ']' in array");
        }
        return json_value(std::move(elements));
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') break;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("invalid hex digit in \\u escape");
                    }
                    append_utf8(out, code);
                    break;
                }
                default: fail("invalid escape character");
            }
        }
        return out;
    }

    static void append_utf8(std::string& out, unsigned code) {
        // Surrogate pairs are not recombined — the manifest writer never
        // emits them (only control characters are \u-escaped).
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    json_value parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                c == '+' || c == '-')
                ++pos_;
            else
                break;
        }
        if (pos_ == start) fail("invalid value");
        double v = 0.0;
        const char* first = text_.data() + start;
        const char* last = text_.data() + pos_;
        const auto [end, ec] = std::from_chars(first, last, v);
        if (ec != std::errc() || end != last) {
            pos_ = start;
            fail("malformed number");
        }
        return json_value(v);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

json_value json_value::parse(std::string_view text) {
    return parser(text).run();
}

}  // namespace ehdse::obs
