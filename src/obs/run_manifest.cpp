#include "obs/run_manifest.hpp"

#include <ostream>

namespace ehdse::obs {

namespace {

json_value coded_json(const std::vector<double>& coded) {
    json_array a;
    a.reserve(coded.size());
    for (double c : coded) a.push_back(json_value(c));
    return json_value(std::move(a));
}

json_value phase_json(const phase_record& p) {
    json_object o;
    o.emplace_back("name", json_value(p.name));
    o.emplace_back("wall_s", json_value(p.wall_s));
    if (p.items) o.emplace_back("items", json_value(p.items));
    return json_value(std::move(o));
}

json_value sim_run_json(const sim_run_record& r) {
    json_object o;
    o.emplace_back("kind", json_value(r.kind));
    o.emplace_back("index", json_value(static_cast<std::uint64_t>(r.index)));
    if (!r.coded.empty()) o.emplace_back("coded", coded_json(r.coded));
    json_object cfg;
    cfg.emplace_back("mcu_clock_hz", json_value(r.mcu_clock_hz));
    cfg.emplace_back("watchdog_period_s", json_value(r.watchdog_period_s));
    cfg.emplace_back("tx_interval_s", json_value(r.tx_interval_s));
    o.emplace_back("config", json_value(std::move(cfg)));
    o.emplace_back("seed", json_value(r.seed));
    o.emplace_back("response", json_value(r.response));
    o.emplace_back("wall_s", json_value(r.wall_s));
    o.emplace_back("ode_steps", json_value(r.ode_steps));
    o.emplace_back("ode_steps_rejected", json_value(r.ode_steps_rejected));
    o.emplace_back("events", json_value(r.events));
    o.emplace_back("sim_ok", json_value(r.sim_ok));
    return json_value(std::move(o));
}

json_value optimizer_json(const optimizer_record& r) {
    json_object o;
    o.emplace_back("name", json_value(r.name));
    o.emplace_back("evaluations", json_value(r.evaluations));
    o.emplace_back("iterations", json_value(r.iterations));
    if (r.acceptance_rate >= 0.0) {
        o.emplace_back("proposed_moves", json_value(r.proposed_moves));
        o.emplace_back("accepted_moves", json_value(r.accepted_moves));
        o.emplace_back("acceptance_rate", json_value(r.acceptance_rate));
    }
    o.emplace_back("converged", json_value(r.converged));
    o.emplace_back("predicted", json_value(r.predicted));
    o.emplace_back("validated_response", json_value(r.validated_response));
    if (!r.coded.empty()) o.emplace_back("coded", coded_json(r.coded));
    o.emplace_back("wall_s", json_value(r.wall_s));
    return json_value(std::move(o));
}

}  // namespace

void run_manifest::set_tool(std::string name, std::string version) {
    const std::lock_guard<std::mutex> lock(mutex_);
    tool_name_ = std::move(name);
    tool_version_ = std::move(version);
}

void run_manifest::set_option(std::string key, json_value value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    options_.emplace_back(std::move(key), std::move(value));
}

void run_manifest::add_phase(phase_record record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    phases_.push_back(std::move(record));
}

void run_manifest::add_sim_run(sim_run_record record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    runs_.push_back(std::move(record));
}

void run_manifest::add_optimizer(optimizer_record record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    optimizers_.push_back(std::move(record));
}

void run_manifest::set_metrics(json_value snapshot) {
    const std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = std::move(snapshot);
}

std::vector<phase_record> run_manifest::phases() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return phases_;
}

std::vector<sim_run_record> run_manifest::sim_runs() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return runs_;
}

std::vector<optimizer_record> run_manifest::optimizers() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return optimizers_;
}

std::size_t run_manifest::sim_run_count(std::string_view kind) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& r : runs_)
        if (r.kind == kind) ++n;
    return n;
}

json_value run_manifest::header_json() const {
    json_object tool;
    tool.emplace_back("name", json_value(tool_name_));
    if (!tool_version_.empty())
        tool.emplace_back("version", json_value(tool_version_));
    return json_value(std::move(tool));
}

json_value run_manifest::to_json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    json_object root;
    root.emplace_back("schema", json_value(k_schema));
    root.emplace_back("tool", header_json());
    root.emplace_back("options", json_value(options_));
    json_array phases;
    for (const auto& p : phases_) phases.push_back(phase_json(p));
    root.emplace_back("phases", json_value(std::move(phases)));
    json_array runs;
    for (const auto& r : runs_) runs.push_back(sim_run_json(r));
    root.emplace_back("runs", json_value(std::move(runs)));
    json_array optimizers;
    for (const auto& r : optimizers_) optimizers.push_back(optimizer_json(r));
    root.emplace_back("optimizers", json_value(std::move(optimizers)));
    if (!metrics_.is_null()) root.emplace_back("metrics", metrics_);
    return json_value(std::move(root));
}

void run_manifest::write_json(std::ostream& os, int indent) const {
    to_json().write(os, indent);
    os << '\n';
}

void run_manifest::write_jsonl(std::ostream& os) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto line = [&os](const char* kind, json_value v) {
        json_object o;
        o.emplace_back("record", json_value(kind));
        for (auto& [k, member] : v.as_object())
            o.emplace_back(std::move(k), std::move(member));
        json_value(std::move(o)).write(os, -1);
        os << '\n';
    };
    json_object header;
    header.emplace_back("schema", json_value(k_schema));
    header.emplace_back("tool", header_json());
    header.emplace_back("options", json_value(options_));
    line("header", json_value(std::move(header)));
    for (const auto& p : phases_) line("phase", phase_json(p));
    for (const auto& r : runs_) line("run", sim_run_json(r));
    for (const auto& r : optimizers_) line("optimizer", optimizer_json(r));
    if (!metrics_.is_null()) line("metrics", metrics_);
}

}  // namespace ehdse::obs
