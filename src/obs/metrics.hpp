// Thread-safe process metrics: named counters, gauges and fixed-bucket
// log-scale histograms behind a registry, plus an optional process-wide
// sink. Everything here is lock-free on the hot path:
//
//   * instruments (counter/gauge/histogram) are plain atomics — safe to
//     hit from the flow's concurrent design-point evaluations;
//   * the registry's name->instrument maps take a mutex only on first
//     lookup; call sites cache the returned reference/pointer;
//   * when no sink is attached (obs::global_registry() == nullptr, the
//     default) instrumented code paths reduce to one relaxed pointer
//     load and a branch — cheap enough to stay on in the benches.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace ehdse::obs {

/// Monotonically increasing event count.
class counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (also supports accumulate).
class gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(double delta) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed)) {
        }
    }
    double value() const noexcept { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Distribution sketch with fixed base-2 log-scale buckets.
///
/// Bucket b (0-based) spans [min_value * 2^b, min_value * 2^(b+1)) with
/// min_value = 1e-9; 64 buckets reach ~1.8e10, so the same shape covers
/// nanosecond timings and whole-run step counts. Observations below
/// min_value (including zero, negatives and NaN) land in the underflow
/// bucket; observations at or past the top land in the overflow bucket.
class histogram {
public:
    static constexpr std::size_t k_buckets = 64;
    static constexpr double k_min_value = 1e-9;

    void observe(double v) noexcept;

    std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
    double mean() const noexcept {
        const std::uint64_t n = count();
        return n ? sum() / static_cast<double>(n) : 0.0;
    }
    double min() const noexcept { return count() ? min_.load(std::memory_order_relaxed) : 0.0; }
    double max() const noexcept { return count() ? max_.load(std::memory_order_relaxed) : 0.0; }

    std::uint64_t underflow() const noexcept {
        return underflow_.load(std::memory_order_relaxed);
    }
    std::uint64_t overflow() const noexcept {
        return overflow_.load(std::memory_order_relaxed);
    }
    std::uint64_t bucket(std::size_t b) const {
        return buckets_.at(b).load(std::memory_order_relaxed);
    }

    /// Lower edge of bucket b; bucket_lower(k_buckets) is the overflow edge.
    static double bucket_lower(std::size_t b) noexcept;
    /// Bucket index a finite value >= k_min_value falls into (clamped to
    /// k_buckets for overflow); exposed for the bucketing tests.
    static std::size_t bucket_index(double v) noexcept;

    /// Approximate quantile (q in [0,1]) from the bucket midpoints;
    /// under/overflow observations resolve to the range edges.
    double quantile(double q) const;

    /// {count, sum, mean, min, max, p50, p90, p99, underflow, overflow,
    ///  buckets: [[lower_edge, count], ...]}  (only non-empty buckets).
    json_value to_json() const;

private:
    std::array<std::atomic<std::uint64_t>, k_buckets> buckets_{};
    std::atomic<std::uint64_t> underflow_{0};
    std::atomic<std::uint64_t> overflow_{0};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    // +/-inf sentinels: the first observe() always wins the CAS races.
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Named instruments. Lookup creates on first use; returned references
/// stay valid for the registry's lifetime (instruments are never removed).
class metrics_registry {
public:
    counter& get_counter(std::string_view name);
    gauge& get_gauge(std::string_view name);
    histogram& get_histogram(std::string_view name);

    /// Sorted instrument names, for introspection/tests.
    std::vector<std::string> counter_names() const;
    std::vector<std::string> gauge_names() const;
    std::vector<std::string> histogram_names() const;

    /// Snapshot: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
    json_value to_json() const;
    void write_json(std::ostream& os, int indent = 2) const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<histogram>, std::less<>> histograms_;
};

/// Process-wide sink. Defaults to nullptr = observability off; library
/// instrumentation checks this once per object (cached pointer) or per
/// coarse operation, never per inner-loop iteration.
metrics_registry* global_registry() noexcept;

/// Install (or clear, with nullptr) the process-wide sink. The registry
/// must outlive all objects that cache instrument pointers from it —
/// in practice: install once at startup, detach never.
void set_global_registry(metrics_registry* registry) noexcept;

}  // namespace ehdse::obs
