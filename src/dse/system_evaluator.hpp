// One-hour whole-system evaluation of a configuration — the "simulation
// run" of the paper's methodology (its SystemC-A model run for each DOE
// design point), producing the response y = number of transmissions.
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "dse/envelope_system.hpp"
#include "dse/system_config.hpp"
#include "harvester/tuning_table.hpp"
#include "mcu/tuning_controller.hpp"
#include "node/sensor_node.hpp"
#include "sim/trace.hpp"

namespace ehdse::dse {

/// Stimulus and initial conditions (paper section V: 60 mg, +5 Hz steps
/// every 25 minutes, one-hour horizon).
struct scenario {
    double duration_s = 3600.0;
    double accel_mg = 60.0;
    double f_start_hz = 64.0;
    double f_step_hz = 5.0;
    double step_period_s = 1500.0;  ///< 25 minutes
    std::size_t step_count = 2;     ///< 64 -> 69 -> 74 Hz within the hour
    double v_initial = 2.80;        ///< storage starts at the band edge
    /// Initial actuator position; -1 = tuned to f_start via the LUT.
    int initial_position = -1;

    /// Optional explicit frequency schedule [(time, Hz), ...] starting at
    /// t = 0. When non-empty it replaces the stepped profile above (and
    /// f_start for the initial-position lookup comes from its first entry).
    std::vector<std::pair<double, double>> frequency_schedule;

    /// Optional amplitude-scale schedule [(time, scale), ...] starting at
    /// t = 0; scale 0 = vibration source off (machine duty cycles).
    std::vector<std::pair<double, double>> amplitude_schedule;

    /// Build the vibration source this scenario describes.
    harvester::vibration_source make_vibration() const;
};

/// Everything a run produces.
struct evaluation_result {
    std::uint64_t transmissions = 0;      ///< the response variable y
    std::uint64_t suppressed_wakeups = 0; ///< node polls below cut-off
    std::uint64_t low_band_transmissions = 0;
    mcu::controller_stats tuning;
    double final_voltage_v = 0.0;
    double min_voltage_v = 0.0;
    double max_voltage_v = 0.0;
    double harvested_energy_j = 0.0;      ///< delivered into the store
    double sustained_load_energy_j = 0.0; ///< sleep floors etc.
    double withdrawn_energy_j = 0.0;      ///< discrete bursts (ledger total)
    power::energy_ledger ledger;          ///< per-account discrete withdrawals
    std::size_t ode_steps = 0;
    std::size_t ode_steps_rejected = 0;   ///< error-controlled integrator retries
    std::uint64_t events = 0;
    double wall_time_s = 0.0;             ///< wall clock spent in evaluate()
    bool sim_ok = true;
    std::optional<sim::trace> voltage_trace;   ///< when tracing was requested
    std::optional<sim::trace> position_trace;  ///< actuator position over time
};

/// Analogue fidelity of a run.
enum class fidelity {
    envelope,   ///< cycle-averaged fast path (default; ~75 ms per hour)
    transient,  ///< full nonlinear model, every vibration cycle resolved
                ///< (~5000x slower; validation runs)
};

/// Options controlling one evaluation.
struct evaluation_options {
    bool record_traces = false;
    double trace_interval_s = 1.0;
    std::uint64_t controller_seed = 0x5eed;  ///< measurement-noise stream
    fidelity model = fidelity::envelope;
    /// Power front-end (envelope fidelity only; the transient model always
    /// resolves the physical diode bridge).
    frontend_kind frontend = frontend_kind::diode_bridge;
    double frontend_efficiency = 0.75;
};

/// Reusable evaluator: fixed physics (microgenerator, scenario, node and
/// controller base parameters), varying system_config per call.
class system_evaluator {
public:
    explicit system_evaluator(scenario scn = {},
                              harvester::microgenerator_params gen = {},
                              power::supercapacitor_params cap = {},
                              power::rectifier_params rect = {},
                              node::node_params node = {},
                              mcu::controller_params controller = {});

    const scenario& scene() const noexcept { return scenario_; }
    const harvester::microgenerator& generator() const noexcept { return gen_; }
    const harvester::tuning_table& table() const noexcept { return table_; }

    /// Replace the storage element for subsequent evaluations (e.g. a
    /// power::thin_film_battery); nullptr restores the default
    /// supercapacitor built from the constructor's parameters.
    void set_storage(std::shared_ptr<const power::storage_model> storage) {
        storage_ = std::move(storage);
    }

    /// Run the full mixed-signal simulation for `config`.
    evaluation_result evaluate(const system_config& config,
                               const evaluation_options& options = {}) const;

    /// Number of evaluate() calls so far (DOE bookkeeping).
    std::size_t runs() const noexcept { return runs_.load(); }

    /// evaluate() is safe to call concurrently from several threads: each
    /// call builds its own simulator/plant; the shared physics objects are
    /// only read. run_rsm_flow exploits this when flow_options::parallel
    /// is set.

private:
    scenario scenario_;
    harvester::microgenerator gen_;
    harvester::tuning_table table_;
    power::supercapacitor_params cap_;
    std::shared_ptr<const power::storage_model> storage_;  ///< optional override
    power::rectifier_params rect_;
    node::node_params node_;
    mcu::controller_params controller_;
    mutable std::atomic<std::size_t> runs_{0};
};

}  // namespace ehdse::dse
