// One-hour whole-system evaluation of a configuration — the "simulation
// run" of the paper's methodology (its SystemC-A model run for each DOE
// design point), producing the response y = number of transmissions.
//
// The request types (scenario, evaluation_options, fidelity) are part of
// the canonical experiment spec (src/spec); the aliases below keep the
// historical dse:: spellings working across the tree.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dse/envelope_system.hpp"
#include "dse/node_system.hpp"
#include "dse/system_config.hpp"
#include "harvester/harvester_model.hpp"
#include "harvester/tuning_table.hpp"
#include "mcu/tuning_controller.hpp"
#include "node/sensor_node.hpp"
#include "sim/trace.hpp"
#include "spec/experiment_spec.hpp"

namespace ehdse::dse {

/// Stimulus and initial conditions (paper section V: 60 mg, +5 Hz steps
/// every 25 minutes, one-hour horizon).
using scenario = spec::scenario;

/// Analogue fidelity of a run.
using fidelity = spec::fidelity;

/// Options controlling one evaluation.
using evaluation_options = spec::evaluation_options;

/// Everything a run produces.
struct evaluation_result {
    std::uint64_t transmissions = 0;      ///< the response variable y
    std::uint64_t suppressed_wakeups = 0; ///< node polls below cut-off
    std::uint64_t low_band_transmissions = 0;
    mcu::controller_stats tuning;
    double final_voltage_v = 0.0;
    double min_voltage_v = 0.0;
    double max_voltage_v = 0.0;
    double harvested_energy_j = 0.0;      ///< delivered into the store
    double sustained_load_energy_j = 0.0; ///< sleep floors etc.
    double withdrawn_energy_j = 0.0;      ///< discrete bursts (ledger total)
    power::energy_ledger ledger;          ///< per-account discrete withdrawals
    std::size_t ode_steps = 0;
    std::size_t ode_steps_rejected = 0;   ///< error-controlled integrator retries
    std::uint64_t events = 0;
    double wall_time_s = 0.0;             ///< wall clock spent in evaluate()
    bool sim_ok = true;
    std::optional<sim::trace> voltage_trace;   ///< when tracing was requested
    std::optional<sim::trace> position_trace;  ///< actuator position over time
};

/// Reusable evaluator: fixed physics (harvester backend, scenario, node
/// and controller base parameters), varying system_config per call.
///
/// Polymorphic by design: evaluate() and the build_system() factory hook
/// are virtual so test harnesses can interpose on the whole-request level
/// (inject an exception before any simulation starts) or on the analogue
/// model level (wrap the node_system with a fault decorator) — see
/// testkit::faulty_evaluator. Everything downstream (cached_evaluator,
/// run_rsm_flow) takes `const system_evaluator&`, so a wrapper threads
/// through the entire flow unchanged.
class system_evaluator {
public:
    /// Throws std::invalid_argument (offending field named) when the
    /// scenario fails spec::scenario::validate().
    explicit system_evaluator(scenario scn = {},
                              harvester::microgenerator_params gen = {},
                              power::supercapacitor_params cap = {},
                              power::rectifier_params rect = {},
                              node::node_params node = {},
                              mcu::controller_params controller = {});

    /// Build the harvester backend from the registry (`harv.model`).
    /// The controller's actuator cost model is taken from the backend
    /// (harvester_model::actuator()) — each device class knows its own
    /// retune mechanism — overriding whatever `controller.actuator` held.
    /// Throws std::invalid_argument for an unknown harvester name or an
    /// invalid scenario.
    system_evaluator(scenario scn, spec::harvester_spec harv,
                     power::supercapacitor_params cap = {},
                     power::rectifier_params rect = {},
                     node::node_params node = {},
                     mcu::controller_params controller = {});

    virtual ~system_evaluator() = default;

    const scenario& scene() const noexcept { return scenario_; }
    const harvester::harvester_model& model() const noexcept { return *model_; }
    const harvester::tuning_table& table() const noexcept { return table_; }

    /// Canonical spec fragment naming this evaluator's backend — rsm_flow
    /// rebuilds the full experiment spec (for hashing/manifests) from it.
    const spec::harvester_spec& harvester_config() const noexcept {
        return harv_;
    }

    /// The electromagnetic backend's microgenerator (pre-registry
    /// accessor). Throws std::logic_error when the configured harvester is
    /// not the electromagnetic device.
    const harvester::microgenerator& generator() const;

    /// Replace the storage element for subsequent evaluations (e.g. a
    /// power::thin_film_battery); nullptr restores the default
    /// supercapacitor built from the constructor's parameters.
    void set_storage(std::shared_ptr<const power::storage_model> storage) {
        storage_ = std::move(storage);
    }

    /// Run the full mixed-signal simulation for `config`. The analogue
    /// model is chosen by options.model via make_node_system().
    virtual evaluation_result evaluate(
        const system_config& config,
        const evaluation_options& options = {}) const;

    /// Evaluate many configs against the same scenario/options in one
    /// call. The default implementation routes envelope-fidelity,
    /// untraced requests through the batch kernel in chunks of at most
    /// k_max_batch_lanes — the hand-vectorised SoA sweep
    /// (batch_envelope_system) for the electromagnetic backend, the
    /// generic per-lane kernel (batch_generic_system) for every other
    /// registry entry — and falls back to per-config evaluate() for
    /// transient fidelity or when traces were requested. Results are
    /// positional: out[i] corresponds to configs[i], and each lane's
    /// result is independent of which other configs share its batch.
    ///
    /// Subclasses that interpose via evaluate()/build_system() (fault
    /// wrappers, forwarders) MUST also override this — the batch kernel
    /// does not call build_system().
    virtual std::vector<evaluation_result> evaluate_batch(
        std::span<const system_config> configs,
        const evaluation_options& options = {}) const;

    /// Widest batch the default evaluate_batch runs as one SoA sweep.
    static constexpr std::size_t k_max_batch_lanes = 16;

    /// Number of evaluated configs so far (DOE bookkeeping); batch lanes
    /// count individually.
    std::size_t runs() const noexcept { return runs_.load(); }

    /// evaluate() is safe to call concurrently from several threads: each
    /// call builds its own simulator/plant; the shared physics objects are
    /// only read. run_rsm_flow exploits this when flow_options::parallel
    /// is set. Overrides must preserve both properties (wrappers keyed on
    /// the request, never on call order, stay deterministic under a pool).

protected:
    /// Factory for the per-call analogue model; evaluate() runs the shared
    /// simulation loop against whatever this returns. The default builds
    /// the envelope / transient system `options` asks for; fault wrappers
    /// override it to decorate that system, keyed on (config, options).
    /// `vib` is the stimulus of the current call and outlives the run.
    virtual std::unique_ptr<node_system> build_system(
        const system_config& config, const evaluation_options& options,
        const harvester::vibration_source& vib) const;

private:
    scenario scenario_;
    spec::harvester_spec harv_;
    std::shared_ptr<const harvester::harvester_model> model_;
    harvester::tuning_table table_;
    power::supercapacitor_params cap_;
    std::shared_ptr<const power::storage_model> storage_;  ///< optional override
    power::rectifier_params rect_;
    node::node_params node_;
    mcu::controller_params controller_;
    mutable std::atomic<std::size_t> runs_{0};
};

}  // namespace ehdse::dse
