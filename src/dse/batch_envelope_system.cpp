#include "dse/batch_envelope_system.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "harvester/envelope.hpp"

namespace ehdse::dse {

namespace {

constexpr double k_pi = std::numbers::pi;
constexpr double k_half_pi = 0.5 * std::numbers::pi;

// Minimax-quality polynomial for asin on [0, 1]: degree-15 Chebyshev-node
// fit of g(z) = asin(sqrt(z)) / sqrt(z), combined with the standard range
// reduction
//     x <= 0.5 : asin(x) = x * P(x^2)
//     x  > 0.5 : asin(x) = pi/2 - 2 * sqrt(z) * P(z),  z = (1 - x) / 2
// Max abs error 3.3e-16 over [0, 1) — at libm rounding level, so the batch
// bridge matches the scalar std::asin path to solver tolerance.
constexpr double k_asin_c[16] = {
    0.999999999999999999892,   0.166666666666666696405,
    0.0749999999999929945523,  0.0446428571436258050417,
    0.0303819443995999728947,  0.022372160664339752716,
    0.0173527281512837325891,  0.0139654279848651728254,
    0.0115449458992990427777,  0.00982171026194061776089,
    0.0079925162814942219587,  0.00929049937150757007781,
    -0.00077758985480906203174, 0.024269122565511237245,
    -0.0254272641358987083118, 0.0311710800182602128524,
};

// Horner form, fully unrolled: a `for` over the coefficients is control
// flow the vectoriser refuses, so spell the recurrence out.
inline double asin_poly_eval(double z) {
    double p = k_asin_c[15];
    p = p * z + k_asin_c[14];
    p = p * z + k_asin_c[13];
    p = p * z + k_asin_c[12];
    p = p * z + k_asin_c[11];
    p = p * z + k_asin_c[10];
    p = p * z + k_asin_c[9];
    p = p * z + k_asin_c[8];
    p = p * z + k_asin_c[7];
    p = p * z + k_asin_c[6];
    p = p * z + k_asin_c[5];
    p = p * z + k_asin_c[4];
    p = p * z + k_asin_c[3];
    p = p * z + k_asin_c[2];
    p = p * z + k_asin_c[1];
    p = p * z + k_asin_c[0];
    return p;
}

}  // namespace

batch_envelope_system::batch_envelope_system(
    const harvester::microgenerator& gen,
    const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    power::rectifier_params rect, std::size_t lanes)
    : gen_(gen),
      vib_(vib),
      storage_(std::move(storage)),
      rect_(rect),
      lanes_(lanes),
      position_(lanes, 0),
      stiffness_(lanes, gen.effective_stiffness(0)),
      loads_(lanes),
      load_slots_(lanes),
      ledgers_(lanes),
      v_(lanes), z_(lanes), omega_(lanes), re_(lanes), ma_(lanes), u_(lanes),
      lo_(lanes), hi_(lanes), ce_(lanes), ct_(lanes), za_(lanes),
      e_(lanes), vel_(lanes), xx_(lanes), th1_(lanes), cth_(lanes),
      blocked_(lanes, 0), refine_(lanes, 0) {
    if (!storage_)
        throw std::invalid_argument("batch_envelope_system: null storage");
    if (lanes == 0)
        throw std::invalid_argument("batch_envelope_system: zero lanes");
    plants_.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l)
        plants_.push_back(std::make_unique<lane_plant>(*this, l));
}

sim::batch_simulator& batch_envelope_system::bsim() const {
    if (bsim_ == nullptr)
        throw std::logic_error("batch_envelope_system: no simulator attached");
    return *bsim_;
}

void batch_envelope_system::set_frontend(frontend_kind kind,
                                         double efficiency) {
    if (kind == frontend_kind::mppt && !(efficiency > 0.0 && efficiency <= 1.0))
        throw std::invalid_argument(
            "batch_envelope_system: mppt efficiency must be in (0, 1]");
    frontend_ = kind;
    frontend_efficiency_ = efficiency;
}

std::vector<double> batch_envelope_system::initial_state(
    double v0, int initial_position) {
    if (v0 < 0.0)
        throw std::invalid_argument(
            "batch_envelope_system: negative initial voltage");
    for (std::size_t l = 0; l < lanes_; ++l) plant(l).set_position(initial_position);
    // Scalar solve — runs once per batch; identical to the scalar system's
    // initial state so both paths start from the same point.
    const harvester::envelope_point pt = harvester::solve_envelope(
        gen_, initial_position, vib_.frequency_at(0.0), vib_.amplitude_at(0.0),
        v0, rect_);
    std::vector<double> x(k_state_count, 0.0);
    x[ix_voltage] = v0;
    x[ix_amplitude] = pt.mech.displacement_amp_m;
    return x;
}

sim::ode_options batch_envelope_system::suggested_ode_options() const {
    // Identical to envelope_system::suggested_ode_options().
    sim::ode_options ode;
    ode.abs_tol = 1e-8;
    ode.rel_tol = 1e-6;
    ode.initial_dt = 1e-3;
    ode.max_dt = 5.0;
    return ode;
}

namespace {

// The hot lane loops live in free functions whose pointer parameters are
// __restrict__: GCC only assigns no-alias cliques to restrict *parameters*
// (never to restrict locals), and without them these loops reference more
// arrays than the vectoriser's runtime alias-check budget covers and
// silently stay scalar. All call sites pass distinct scratch vectors.

// Mechanics: linear response at the trial damping (displacement limiter
// as a value select — no control flow in the loop).
inline void mechanics_lanes(std::size_t B, double c_mech, double phi,
                            double xmax, const double* __restrict__ ce,
                            const double* __restrict__ omega,
                            const double* __restrict__ re,
                            const double* __restrict__ ma,
                            const double* __restrict__ u,
                            double* __restrict__ za,
                            double* __restrict__ e,
                            double* __restrict__ vel,
                            double* __restrict__ xxv) {
    for (std::size_t l = 0; l < B; ++l) {
        const double im = (c_mech + ce[l]) * omega[l];
        const double denom = std::sqrt(re[l] * re[l] + im * im);
        double amp = ma[l] / denom;
        amp = std::min(amp, xmax);
        za[l] = amp;
        const double v = omega[l] * amp;
        vel[l] = v;
        const double ee = phi * v;
        e[l] = ee;
        // Conduction-angle argument u/e, clamped into the asin domain; a
        // blocked lane (e <= u) lands at 1 => theta1 = pi/2, zero span.
        xxv[l] = std::min(u[l] / ee, 1.0);
    }
}

// theta1 = asin(x) via the range-reduced polynomial; cos(theta1) via
// the identity cos(asin x) = sqrt(1 - x^2). Both branches are computed
// unconditionally and selected, keeping the loop vectorisable.
inline void conduction_angle_lanes(std::size_t B,
                                   const double* __restrict__ xxv,
                                   double* __restrict__ th1,
                                   double* __restrict__ cth) {
    for (std::size_t l = 0; l < B; ++l) {
        const double x = xxv[l];
        const double z_lo = x * x;
        const double z_hi = 0.5 * (1.0 - x);
        const bool upper = x > 0.5;
        const double z = upper ? z_hi : z_lo;
        const double p = asin_poly_eval(z);
        const double sq = std::sqrt(z);
        const double s = upper ? sq : x;
        const double r0 = s * p;
        th1[l] = upper ? k_half_pi - 2.0 * r0 : r0;
        cth[l] = std::sqrt(1.0 - x * x);
    }
}

// Averaged bridge power and the equivalent damping it presents:
// T(c_e) = 2 P_mech / vel^2, with sin(2 theta1) = 2 x cos(theta1).
inline void bridge_damping_lanes(std::size_t B, double inv_pir,
                                 const double* __restrict__ e,
                                 const double* __restrict__ u,
                                 const double* __restrict__ vel,
                                 const double* __restrict__ xxv,
                                 const double* __restrict__ th1,
                                 const double* __restrict__ cth,
                                 double* __restrict__ c_target) {
    for (std::size_t l = 0; l < B; ++l) {
        const double ee = e[l];
        const double span = k_pi - 2.0 * th1[l];
        const double s2 = 2.0 * xxv[l] * cth[l];
        const double p_mech =
            (ee * ee * (0.5 * span + 0.5 * s2) - 2.0 * u[l] * ee * cth[l]) *
            inv_pir;
        const double v = vel[l];
        const double ct = 2.0 * p_mech / (v * v);
        // Bitwise & keeps the two comparisons branch-free (&& would
        // reintroduce control flow and kill vectorisation).
        const bool conducting = (ee > u[l]) & (v > 0.0);
        c_target[l] = conducting ? ct : 0.0;
    }
}

}  // namespace

void batch_envelope_system::eval_damping(const double* ce, double* c_target,
                                         double* za) const {
    const std::size_t B = lanes_;
    const auto& gp = gen_.params();
    const double c_mech = gen_.mech_damping();
    const double phi = gp.coupling_v_per_ms;
    const double xmax = gp.max_displacement_m;
    const double inv_pir = 1.0 / (k_pi * gp.coil_resistance_ohm);

    mechanics_lanes(B, c_mech, phi, xmax, ce, omega_.data(), re_.data(),
                    ma_.data(), u_.data(), za, e_.data(), vel_.data(),
                    xx_.data());
    conduction_angle_lanes(B, xx_.data(), th1_.data(), cth_.data());
    bridge_damping_lanes(B, inv_pir, e_.data(), u_.data(), vel_.data(),
                         xx_.data(), th1_.data(), cth_.data(), c_target);
}

void batch_envelope_system::derivatives(
    std::span<const double> t, const sim::batch_state& x,
    sim::batch_state& dxdt, std::span<const std::uint8_t> /*active*/) const {
    // Full-width, branch-free-per-lane computation: lanes the integrator
    // masked out get (ignored) values computed too — cheaper than breaking
    // the vector loops up.
    const std::size_t B = lanes_;
    const auto& gp = gen_.params();
    const double m = gp.mass_kg;
    const double c_mech = gen_.mech_damping();
    const double phi = gp.coupling_v_per_ms;
    const double inv_pir = 1.0 / (k_pi * gp.coil_resistance_ohm);
    const double two_vd = 2.0 * rect_.diode_drop_v;

    const double* xv = x.var(ix_voltage);
    const double* xz = x.var(ix_amplitude);
    double* dv = dxdt.var(ix_voltage);
    double* dz = dxdt.var(ix_amplitude);
    double* dh = dxdt.var(ix_harvested);
    double* de = dxdt.var(ix_load_energy);

    // Per-lane stimulus and coefficients. The schedule lookups are scalar
    // per lane (piecewise-constant, a handful of segments) — negligible
    // next to the damping solve below.
    for (std::size_t l = 0; l < B; ++l) {
        const double v = std::max(xv[l], 0.0);
        v_[l] = v;
        z_[l] = std::max(xz[l], 0.0);
        const double omega = 2.0 * k_pi * vib_.frequency_at(t[l]);
        omega_[l] = omega;
        re_[l] = stiffness_[l] - m * omega * omega;
        ma_[l] = m * vib_.amplitude_at(t[l]);
        u_[l] = v + two_vd;
    }

    // i_charge lands in ct_ once the solver is done with it.
    double* ich = ct_.data();

    if (frontend_ == frontend_kind::diode_bridge) {
        // --- Lockstep bisection for the self-consistent electrical damping,
        // mirroring harvester::solve_envelope lane-for-lane (same tolerance,
        // same bracket, same expansion and stop rules). ---
        const double tol = harvester::envelope_options{}.tolerance * c_mech;
        const double c_hi_limit =
            phi * phi / gp.coil_resistance_ohm + c_mech;

        // Trial at c_e = 0: blocked lanes take the open-circuit amplitude.
        std::fill_n(ce_.data(), B, 0.0);
        eval_damping(ce_.data(), ct_.data(), za_.data());
        for (std::size_t l = 0; l < B; ++l)
            blocked_[l] = ct_[l] <= tol ? 1 : 0;

        // Bracket [0, c_hi]; the displacement limiter can distort T, so
        // expand defensively (masked, <= 8 doublings — as the scalar does).
        for (std::size_t l = 0; l < B; ++l) {
            lo_[l] = 0.0;
            hi_[l] = c_hi_limit;
        }
        eval_damping(hi_.data(), ct_.data(), za_.data());
        for (int expand = 0; expand < 8; ++expand) {
            bool any = false;
            for (std::size_t l = 0; l < B; ++l) {
                const bool need = !blocked_[l] && ct_[l] > hi_[l];
                refine_[l] = need ? 1 : 0;
                any = any || need;
            }
            if (!any) break;
            for (std::size_t l = 0; l < B; ++l)
                if (refine_[l]) hi_[l] *= 2.0;
            eval_damping(hi_.data(), ct_.data(), za_.data());
        }

        // Masked bisection: a converged lane's bracket stops moving, so
        // every lane lands exactly where its scalar run would.
        const int max_iterations =
            harvester::envelope_options{}.max_iterations;
        for (int it = 0; it < max_iterations; ++it) {
            bool any = false;
            for (std::size_t l = 0; l < B; ++l) {
                const bool r = !blocked_[l] && (hi_[l] - lo_[l]) > tol;
                refine_[l] = r ? 1 : 0;
                any = any || r;
            }
            if (!any) break;
            for (std::size_t l = 0; l < B; ++l)
                ce_[l] = 0.5 * (lo_[l] + hi_[l]);
            eval_damping(ce_.data(), ct_.data(), za_.data());
            for (std::size_t l = 0; l < B; ++l) {
                const bool r = refine_[l] != 0;
                const bool up = ct_[l] > ce_[l];
                lo_[l] = (r && up) ? ce_[l] : lo_[l];
                hi_[l] = (r && !up) ? ce_[l] : hi_[l];
            }
        }

        // Final evaluation at the converged damping (0 for blocked lanes)
        // gives the steady-state amplitude the envelope relaxes towards.
        for (std::size_t l = 0; l < B; ++l)
            ce_[l] = blocked_[l] ? 0.0 : 0.5 * (lo_[l] + hi_[l]);
        eval_damping(ce_.data(), ct_.data(), za_.data());

        for (std::size_t l = 0; l < B; ++l) {
            const double tau = 2.0 * m / (c_mech + ce_[l]);
            dz[l] = (za_[l] - z_[l]) / tau;
        }

        // Charging from the instantaneous envelope amplitude (not the
        // target): one more bridge evaluation at emf = phi * omega * z.
        for (std::size_t l = 0; l < B; ++l) {
            e_[l] = phi * omega_[l] * z_[l];
            xx_[l] = std::min(u_[l] / e_[l], 1.0);
        }
        for (std::size_t l = 0; l < B; ++l) {
            const double xw = xx_[l];
            const double z_lo = xw * xw;
            const double z_hi = 0.5 * (1.0 - xw);
            const bool upper = xw > 0.5;
            const double zz = upper ? z_hi : z_lo;
            const double p = asin_poly_eval(zz);
            const double sq = std::sqrt(zz);
            const double s = upper ? sq : xw;
            const double r0 = s * p;
            th1_[l] = upper ? k_half_pi - 2.0 * r0 : r0;
            cth_[l] = std::sqrt(1.0 - xw * xw);
        }
        for (std::size_t l = 0; l < B; ++l) {
            const double ee = e_[l];
            const double span = k_pi - 2.0 * th1_[l];
            const double i_avg =
                (2.0 * ee * cth_[l] - u_[l] * span) * inv_pir;
            ich[l] = ee > u_[l] ? i_avg : 0.0;
        }
    } else {
        // MPPT front-end: matched load c_e = c_mech independent of the
        // store voltage; extracted power delivered at fixed efficiency.
        const double c_match = c_mech;
        const double c_total = c_mech + c_match;
        const double tau = 2.0 * m / c_total;
        const double eff = frontend_efficiency_;
        const double xmax = gp.max_displacement_m;
        for (std::size_t l = 0; l < B; ++l) {
            const double im = c_total * omega_[l];
            const double denom = std::sqrt(re_[l] * re_[l] + im * im);
            double amp = ma_[l] / denom;
            amp = std::min(amp, xmax);
            dz[l] = (amp - z_[l]) / tau;
            const double vel_env = omega_[l] * z_[l];
            const double p_extracted = 0.5 * c_match * vel_env * vel_env;
            const double i = eff * p_extracted / v_[l];
            ich[l] = v_[l] > 0.05 ? i : 0.0;
        }
    }

    // Common tail: sustained loads, storage dynamics, energy integrals.
    // Per-lane load banks and the (shared, virtual) storage model run
    // scalar — they are event-rate-configured and trivially cheap next to
    // the damping solve.
    for (std::size_t l = 0; l < B; ++l) {
        const double v = v_[l];
        const double i_loads = loads_[l].total_current(v);
        dv[l] = storage_->dv_dt(v, ich[l] - i_loads);
        dh[l] = v * ich[l];
        de[l] = v * i_loads;
    }
}

// --- lane_plant -----------------------------------------------------------

double batch_envelope_system::lane_plant::storage_voltage() const {
    return owner_->bsim().state_at(lane_, ix_voltage);
}

void batch_envelope_system::lane_plant::withdraw(double joules,
                                                 const std::string& account) {
    if (joules < 0.0)
        throw std::invalid_argument(
            "batch_envelope_system: negative withdrawal");
    const double v = storage_voltage();
    owner_->bsim().set_state(
        lane_, ix_voltage, owner_->storage_->voltage_after_withdrawal(v, joules));
    owner_->ledgers_[lane_].record(account, joules);
}

void batch_envelope_system::lane_plant::set_sustained_draw(
    const std::string& account, double amps) {
    auto& slots = owner_->load_slots_[lane_];
    auto it = slots.find(account);
    if (it == slots.end())
        it = slots.emplace(account, owner_->loads_[lane_].add_load(account))
                 .first;
    owner_->loads_[lane_].set_current(it->second, amps);
}

void batch_envelope_system::lane_plant::set_position(int position) {
    if (position < 0 ||
        position >= harvester::microgenerator_params::k_position_count)
        throw std::out_of_range(
            "batch_envelope_system: actuator position outside [0,255]");
    owner_->position_[lane_] = position;
    owner_->stiffness_[lane_] = owner_->gen_.effective_stiffness(position);
}

double batch_envelope_system::lane_plant::vibration_frequency() const {
    return owner_->vib_.frequency_at(owner_->bsim().now(lane_));
}

double batch_envelope_system::lane_plant::phase_lag() const {
    // Event-rate measurement tap: the scalar solver keeps it bit-faithful
    // to the scalar system's phase_lag at the same (t, V, position).
    const double tnow = owner_->bsim().now(lane_);
    const double v = storage_voltage();
    const harvester::envelope_point pt = harvester::solve_envelope(
        owner_->gen_, owner_->position_[lane_], owner_->vib_.frequency_at(tnow),
        owner_->vib_.amplitude_at(tnow), v, owner_->rect_);
    const double omega = 2.0 * k_pi * owner_->vib_.frequency_at(tnow);
    const double k = owner_->stiffness_[lane_];
    const double m = owner_->gen_.params().mass_kg;
    const double c_total = owner_->gen_.mech_damping() + pt.c_electrical;
    return std::atan2(c_total * omega, k - m * omega * omega);
}

}  // namespace ehdse::dse
