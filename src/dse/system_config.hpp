// The three-parameter system configuration under optimisation
// (paper section III and Table V).
#pragma once

#include "numeric/matrix.hpp"
#include "rsm/design_space.hpp"

namespace ehdse::dse {

/// One point of the design space in natural units.
struct system_config {
    double mcu_clock_hz = 4.0e6;      ///< x1: 125 kHz .. 8 MHz
    double watchdog_period_s = 320.0; ///< x2: 60 .. 600 s
    double tx_interval_s = 5.0;       ///< x3: 0.005 .. 10 s

    /// The paper's original (unoptimised) design: 4 MHz / 320 s / 5 s.
    static system_config original() { return {}; }

    /// Natural-units vector [clock, watchdog, interval].
    numeric::vec to_vector() const {
        return {mcu_clock_hz, watchdog_period_s, tx_interval_s};
    }

    static system_config from_vector(const numeric::vec& v);
};

/// Table V: the optimisation ranges with their coded symbols x1..x3.
rsm::design_space paper_design_space();

/// Decode a coded point from paper_design_space() into a config.
system_config config_from_coded(const rsm::design_space& space,
                                const numeric::vec& coded);

/// Code a config into paper_design_space() coordinates.
numeric::vec config_to_coded(const rsm::design_space& space,
                             const system_config& config);

}  // namespace ehdse::dse
