// The three-parameter system configuration under optimisation
// (paper section III and Table V). The struct itself is part of the
// canonical experiment spec (spec::system_config); this header adds the
// design-space coding that only the DSE layer needs.
#pragma once

#include "numeric/matrix.hpp"
#include "rsm/design_space.hpp"
#include "spec/experiment_spec.hpp"

namespace ehdse::dse {

/// One point of the design space in natural units — canonical definition
/// in the experiment spec; historical dse:: spelling preserved.
using system_config = spec::system_config;

/// Table V: the optimisation ranges with their coded symbols x1..x3.
rsm::design_space paper_design_space();

/// Decode a coded point from paper_design_space() into a config.
system_config config_from_coded(const rsm::design_space& space,
                                const numeric::vec& coded);

/// Code a config into paper_design_space() coordinates.
numeric::vec config_to_coded(const rsm::design_space& space,
                             const system_config& config);

}  // namespace ehdse::dse
