// The complete sensor-node system as an envelope-mode analogue model plus
// the plant interface the digital processes drive.
//
// Continuous states:
//   x[0] = V      supercapacitor voltage
//   x[1] = z_env  mechanical displacement-amplitude envelope (relaxes
//                 towards the cycle-averaged steady state with the
//                 physical time constant 2m / c_total)
//   x[2] = E_h    cumulative energy delivered into the store
//   x[3] = E_l    cumulative energy consumed by sustained loads
//
// The harvester physics is dispatched through the harvester_model
// registry interface: this system owns the slow states and the plant
// bookkeeping, the model supplies the envelope RHS (amplitude relaxation
// rate + store charging current) at each operating point. The
// electromagnetic entry implements that hook with the exact pre-registry
// expressions, so dispatching through the interface is bit-identical to
// the old hard-wired path.
//
// Digital processes interact through the harvester::plant interface:
// instantaneous charge withdrawals (transmission bursts, MCU activity),
// sustained draws (sleep floors), actuator position changes, and the
// measurement taps (true vibration frequency, true phase lag) on which the
// controller's noisy measurement models operate.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "dse/node_system.hpp"
#include "harvester/harvester_model.hpp"
#include "harvester/microgenerator.hpp"
#include "harvester/plant.hpp"
#include "harvester/vibration.hpp"
#include "power/energy_ledger.hpp"
#include "power/load_bank.hpp"
#include "power/rectifier.hpp"
#include "power/supercapacitor.hpp"
#include "sim/ode.hpp"
#include "sim/simulator.hpp"

namespace ehdse::dse {

/// Power-conditioning front-end between coil and store — canonical
/// definition lives with the experiment spec (spec::frontend_kind); this
/// alias keeps the historical dse:: spelling working.
using frontend_kind = spec::frontend_kind;

/// spec::frontend_kind -> the harvester-layer conditioning enum (the
/// harvester library cannot depend on spec).
harvester::conditioning_kind conditioning_of(frontend_kind kind) noexcept;

class envelope_system final : public node_system {
public:
    enum state_index : std::size_t {
        ix_voltage = 0,
        ix_amplitude = 1,
        ix_harvested = 2,
        ix_load_energy = 3,
        k_state_count = 4,
    };

    /// `model` and `vib` must outlive the system. Storage defaults to the
    /// paper's supercapacitor built from `cap`.
    envelope_system(const harvester::harvester_model& model,
                    const harvester::vibration_source& vib,
                    power::supercapacitor_params cap = {},
                    power::rectifier_params rect = {});

    /// Same, with an explicit storage element (e.g. a thin-film battery).
    envelope_system(const harvester::harvester_model& model,
                    const harvester::vibration_source& vib,
                    std::shared_ptr<const power::storage_model> storage,
                    power::rectifier_params rect = {});

    /// Pre-registry spellings: wrap `gen` in an owned electromagnetic
    /// backend (identical physics — the microgenerator is copied by
    /// parameter set, so `gen` need not outlive the system).
    envelope_system(const harvester::microgenerator& gen,
                    const harvester::vibration_source& vib,
                    power::supercapacitor_params cap = {},
                    power::rectifier_params rect = {});
    envelope_system(const harvester::microgenerator& gen,
                    const harvester::vibration_source& vib,
                    std::shared_ptr<const power::storage_model> storage,
                    power::rectifier_params rect = {});

    // --- node_system ---
    void attach(sim::sim_context& sim) override { sim_ = &sim; }

    /// Select the power front-end (default: the paper's diode bridge).
    /// `efficiency` applies to the mppt kind only; must be in (0, 1].
    void set_frontend(frontend_kind kind, double efficiency = 0.75);
    frontend_kind frontend() const noexcept { return frontend_; }

    /// Suggested initial state for storage voltage v0 (amplitude starts at
    /// the converged steady state so t=0 is not an artificial transient).
    std::vector<double> initial_state(double v0, int initial_position) override;

    /// Volts-scale tolerances; max_dt resolves watchdog/settling dynamics.
    sim::ode_options suggested_ode_options() const override;

    state_map states() const override {
        return {ix_voltage, ix_harvested, ix_load_energy};
    }

    // --- analog_system ---
    std::size_t state_size() const override { return k_state_count; }
    void derivatives(double t, std::span<const double> x,
                     std::span<double> dxdt) const override;

    // --- plant ---
    double storage_voltage() const override;
    void withdraw(double joules, const std::string& account) override;
    void set_sustained_draw(const std::string& account, double amps) override;
    int position() const override { return position_; }
    void set_position(int position) override;
    double vibration_frequency() const override;
    double phase_lag() const override;

    /// Energy accounting of the discrete withdrawals.
    const power::energy_ledger& ledger() const noexcept override {
        return ledger_;
    }
    power::energy_ledger& ledger() noexcept { return ledger_; }

    const power::storage_model& storage() const noexcept { return *storage_; }
    const harvester::harvester_model& model() const noexcept { return *model_; }
    const harvester::vibration_source& vibration() const noexcept { return vib_; }

private:
    sim::sim_context& sim() const;

    std::unique_ptr<const harvester::harvester_model> owned_model_;
    const harvester::harvester_model* model_;
    const harvester::vibration_source& vib_;
    std::shared_ptr<const power::storage_model> storage_;
    power::rectifier_params rect_;
    power::load_bank loads_;
    std::unordered_map<std::string, power::load_id> load_slots_;
    power::energy_ledger ledger_;
    sim::sim_context* sim_ = nullptr;
    int position_ = 0;
    frontend_kind frontend_ = frontend_kind::diode_bridge;
    double frontend_efficiency_ = 0.75;
};

}  // namespace ehdse::dse
