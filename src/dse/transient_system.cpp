#include "dse/transient_system.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ehdse::dse {

transient_system::transient_system(const harvester::microgenerator& gen,
                                   const harvester::vibration_source& vib,
                                   power::supercapacitor_params cap,
                                   power::rectifier_params rect)
    : transient_system(gen, vib, std::make_shared<power::supercapacitor>(cap),
                       rect) {}

transient_system::transient_system(
    const harvester::microgenerator& gen, const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    power::rectifier_params rect)
    : gen_(gen),
      vib_(vib),
      storage_(storage ? std::move(storage)
                       : throw std::invalid_argument("transient_system: null storage")),
      rect_(rect),
      model_(gen_, vib_, *storage_, loads_, rect_) {}

sim::sim_context& transient_system::sim() const {
    if (sim_ == nullptr)
        throw std::logic_error("transient_system: no simulator attached");
    return *sim_;
}

std::vector<double> transient_system::initial_state(double v0,
                                                    int initial_position) {
    if (v0 < 0.0)
        throw std::invalid_argument("transient_system: negative initial voltage");
    model_.set_position(initial_position);
    return harvester::transient_model::initial_state(v0);
}

double transient_system::suggested_max_dt() const {
    return harvester::transient_model::suggested_max_dt(gen_.max_frequency());
}

sim::ode_options transient_system::suggested_ode_options() const {
    sim::ode_options ode;
    ode.abs_tol = 1e-9;
    ode.rel_tol = 1e-6;
    ode.initial_dt = 1e-5;
    ode.max_dt = suggested_max_dt();
    return ode;
}

node_system::state_map transient_system::states() const {
    return {harvester::transient_model::ix_voltage,
            harvester::transient_model::ix_harvested, std::nullopt};
}

double transient_system::storage_voltage() const {
    return sim().state_at(harvester::transient_model::ix_voltage);
}

void transient_system::withdraw(double joules, const std::string& account) {
    if (joules < 0.0)
        throw std::invalid_argument("transient_system: negative withdrawal");
    const double v = storage_voltage();
    sim().set_state(harvester::transient_model::ix_voltage,
                    storage_->voltage_after_withdrawal(v, joules));
    ledger_.record(account, joules);
}

void transient_system::set_sustained_draw(const std::string& account,
                                          double amps) {
    auto it = load_slots_.find(account);
    if (it == load_slots_.end())
        it = load_slots_.emplace(account, loads_.add_load(account)).first;
    loads_.set_current(it->second, amps);
}

double transient_system::vibration_frequency() const {
    return vib_.frequency_at(sim().now());
}

double transient_system::phase_lag() const {
    // Same steady-state phase formula as the envelope plant: the fine-tuning
    // loop waits 5 s after every move precisely so the transient has settled
    // onto this response when it measures.
    const double t = sim().now();
    const double v = storage_voltage();
    const harvester::envelope_point pt = harvester::solve_envelope(
        gen_, model_.position(), vib_.frequency_at(t), vib_.amplitude_at(t), v, rect_);
    const double omega = 2.0 * std::numbers::pi * vib_.frequency_at(t);
    const double k = gen_.effective_stiffness(model_.position());
    const double m = gen_.params().mass_kg;
    const double c_total = gen_.mech_damping() + pt.c_electrical;
    return std::atan2(c_total * omega, k - m * omega * omega);
}

}  // namespace ehdse::dse
