#include "dse/transient_system.hpp"

#include <cmath>
#include <stdexcept>

#include "harvester/electromagnetic.hpp"

namespace ehdse::dse {

transient_system::transient_system(const harvester::harvester_model& model,
                                   const harvester::vibration_source& vib,
                                   power::supercapacitor_params cap,
                                   power::rectifier_params rect)
    : transient_system(model, vib, std::make_shared<power::supercapacitor>(cap),
                       rect) {}

transient_system::transient_system(
    const harvester::harvester_model& model, const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    power::rectifier_params rect)
    : model_(&model),
      vib_(vib),
      storage_(storage ? std::move(storage)
                       : throw std::invalid_argument("transient_system: null storage")),
      rect_(rect),
      rhs_(model_->make_transient(vib_, *storage_, loads_, rect_)) {}

transient_system::transient_system(const harvester::microgenerator& gen,
                                   const harvester::vibration_source& vib,
                                   power::supercapacitor_params cap,
                                   power::rectifier_params rect)
    : transient_system(gen, vib, std::make_shared<power::supercapacitor>(cap),
                       rect) {}

transient_system::transient_system(
    const harvester::microgenerator& gen, const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    power::rectifier_params rect)
    : owned_model_(std::make_unique<harvester::electromagnetic_harvester>(
          gen.params())),
      model_(owned_model_.get()),
      vib_(vib),
      storage_(storage ? std::move(storage)
                       : throw std::invalid_argument("transient_system: null storage")),
      rect_(rect),
      rhs_(model_->make_transient(vib_, *storage_, loads_, rect_)) {}

sim::sim_context& transient_system::sim() const {
    if (sim_ == nullptr)
        throw std::logic_error("transient_system: no simulator attached");
    return *sim_;
}

std::vector<double> transient_system::initial_state(double v0,
                                                    int initial_position) {
    if (v0 < 0.0)
        throw std::invalid_argument("transient_system: negative initial voltage");
    rhs_->set_position(initial_position);
    return rhs_->initial_state(v0);
}

double transient_system::suggested_max_dt() const {
    return rhs_->suggested_max_dt();
}

sim::ode_options transient_system::suggested_ode_options() const {
    sim::ode_options ode;
    ode.abs_tol = 1e-9;
    ode.rel_tol = 1e-6;
    ode.initial_dt = 1e-5;
    ode.max_dt = suggested_max_dt();
    return ode;
}

node_system::state_map transient_system::states() const {
    return {rhs_->voltage_index(), rhs_->harvested_index(), std::nullopt};
}

double transient_system::storage_voltage() const {
    return sim().state_at(rhs_->voltage_index());
}

void transient_system::withdraw(double joules, const std::string& account) {
    if (joules < 0.0)
        throw std::invalid_argument("transient_system: negative withdrawal");
    const double v = storage_voltage();
    sim().set_state(rhs_->voltage_index(),
                    storage_->voltage_after_withdrawal(v, joules));
    ledger_.record(account, joules);
}

void transient_system::set_sustained_draw(const std::string& account,
                                          double amps) {
    auto it = load_slots_.find(account);
    if (it == load_slots_.end())
        it = load_slots_.emplace(account, loads_.add_load(account)).first;
    loads_.set_current(it->second, amps);
}

double transient_system::vibration_frequency() const {
    return vib_.frequency_at(sim().now());
}

double transient_system::phase_lag() const {
    // Same steady-state phase formula as the envelope plant: the fine-tuning
    // loop waits 5 s after every move precisely so the transient has settled
    // onto this response when it measures.
    const double t = sim().now();
    const double v = storage_voltage();
    return model_->phase_lag(vib_.frequency_at(t), vib_.amplitude_at(t),
                             rhs_->position(), v, rect_);
}

}  // namespace ehdse::dse
