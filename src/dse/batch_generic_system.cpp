#include "dse/batch_generic_system.hpp"

#include <algorithm>
#include <stdexcept>

namespace ehdse::dse {

batch_generic_system::batch_generic_system(
    const harvester::harvester_model& model,
    const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    power::rectifier_params rect, std::size_t lanes)
    : model_(model),
      vib_(vib),
      storage_(std::move(storage)),
      rect_(rect),
      lanes_(lanes),
      position_(lanes, 0),
      loads_(lanes),
      load_slots_(lanes),
      ledgers_(lanes) {
    if (!storage_)
        throw std::invalid_argument("batch_generic_system: null storage");
    if (lanes == 0)
        throw std::invalid_argument("batch_generic_system: zero lanes");
    plants_.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l)
        plants_.push_back(std::make_unique<lane_plant>(*this, l));
}

sim::batch_simulator& batch_generic_system::bsim() const {
    if (bsim_ == nullptr)
        throw std::logic_error("batch_generic_system: no simulator attached");
    return *bsim_;
}

void batch_generic_system::set_frontend(frontend_kind kind,
                                        double efficiency) {
    if (kind == frontend_kind::mppt && !(efficiency > 0.0 && efficiency <= 1.0))
        throw std::invalid_argument(
            "batch_generic_system: mppt efficiency must be in (0, 1]");
    frontend_ = kind;
    frontend_efficiency_ = efficiency;
}

std::vector<double> batch_generic_system::initial_state(double v0,
                                                        int initial_position) {
    if (v0 < 0.0)
        throw std::invalid_argument(
            "batch_generic_system: negative initial voltage");
    for (std::size_t l = 0; l < lanes_; ++l)
        plant(l).set_position(initial_position);
    // Identical to the scalar system's initial state so both paths start
    // from the same point.
    std::vector<double> x(k_state_count, 0.0);
    x[ix_voltage] = v0;
    x[ix_amplitude] = model_.initial_amplitude(vib_.frequency_at(0.0),
                                               vib_.amplitude_at(0.0),
                                               initial_position, v0, rect_);
    return x;
}

sim::ode_options batch_generic_system::suggested_ode_options() const {
    // Identical to envelope_system::suggested_ode_options().
    sim::ode_options ode;
    ode.abs_tol = 1e-8;
    ode.rel_tol = 1e-6;
    ode.initial_dt = 1e-3;
    ode.max_dt = 5.0;
    return ode;
}

void batch_generic_system::derivatives(
    std::span<const double> t, const sim::batch_state& x,
    sim::batch_state& dxdt, std::span<const std::uint8_t> /*active*/) const {
    // Per-lane scalar evaluation through the model hook, operand-for-
    // operand the scalar envelope_system::derivatives — so each lane stays
    // bit-identical to its scalar run regardless of backend.
    const double* xv = x.var(ix_voltage);
    const double* xz = x.var(ix_amplitude);
    double* dv = dxdt.var(ix_voltage);
    double* dz = dxdt.var(ix_amplitude);
    double* dh = dxdt.var(ix_harvested);
    double* de = dxdt.var(ix_load_energy);

    const harvester::conditioning_kind cond = conditioning_of(frontend_);
    for (std::size_t l = 0; l < lanes_; ++l) {
        const double v = std::max(xv[l], 0.0);
        const double z_env = std::max(xz[l], 0.0);

        const harvester::envelope_rates rates = model_.envelope_dynamics(
            vib_.frequency_at(t[l]), vib_.amplitude_at(t[l]), position_[l], v,
            z_env, cond, frontend_efficiency_, rect_);
        dz[l] = rates.amplitude_rate;
        const double i_charge = rates.charge_current_a;

        const double i_loads = loads_[l].total_current(v);
        dv[l] = storage_->dv_dt(v, i_charge - i_loads);
        dh[l] = v * i_charge;
        de[l] = v * i_loads;
    }
}

// --- lane_plant -----------------------------------------------------------

double batch_generic_system::lane_plant::storage_voltage() const {
    return owner_->bsim().state_at(lane_, ix_voltage);
}

void batch_generic_system::lane_plant::withdraw(double joules,
                                                const std::string& account) {
    if (joules < 0.0)
        throw std::invalid_argument("batch_generic_system: negative withdrawal");
    const double v = storage_voltage();
    owner_->bsim().set_state(
        lane_, ix_voltage, owner_->storage_->voltage_after_withdrawal(v, joules));
    owner_->ledgers_[lane_].record(account, joules);
}

void batch_generic_system::lane_plant::set_sustained_draw(
    const std::string& account, double amps) {
    auto& slots = owner_->load_slots_[lane_];
    auto it = slots.find(account);
    if (it == slots.end())
        it = slots.emplace(account, owner_->loads_[lane_].add_load(account))
                 .first;
    owner_->loads_[lane_].set_current(it->second, amps);
}

void batch_generic_system::lane_plant::set_position(int position) {
    if (position < 0 || position >= owner_->model_.position_count())
        throw std::out_of_range(
            "batch_generic_system: actuator position outside [0,255]");
    owner_->position_[lane_] = position;
}

double batch_generic_system::lane_plant::vibration_frequency() const {
    return owner_->vib_.frequency_at(owner_->bsim().now(lane_));
}

double batch_generic_system::lane_plant::phase_lag() const {
    // Event-rate measurement tap through the same model hook as the scalar
    // system, so it stays bit-faithful at the same (t, V, position).
    const double tnow = owner_->bsim().now(lane_);
    const double v = storage_voltage();
    return owner_->model_.phase_lag(owner_->vib_.frequency_at(tnow),
                                    owner_->vib_.amplitude_at(tnow),
                                    owner_->position_[lane_], v, owner_->rect_);
}

}  // namespace ehdse::dse
