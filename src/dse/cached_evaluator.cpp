#include "dse/cached_evaluator.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "spec/spec_hash.hpp"

namespace ehdse::dse {

std::size_t cached_evaluator::key_hash::operator()(
    const cache_key& key) const noexcept {
    return static_cast<std::size_t>(
        spec::evaluation_request_hash(key.config, key.eval));
}

cached_evaluator::cache_key cached_evaluator::make_key(
    const system_config& config, const evaluation_options& options) noexcept {
    return {config, options.canonicalized()};
}

cached_evaluator::cached_evaluator(const system_evaluator& inner,
                                   std::size_t capacity)
    : inner_(inner), capacity_(capacity) {
    if (capacity_ == 0)
        throw std::invalid_argument("cached_evaluator: capacity must be >= 1");
    if (auto* registry = obs::global_registry()) {
        hits_counter_ = &registry->get_counter("dse.cache.hits");
        misses_counter_ = &registry->get_counter("dse.cache.misses");
        evictions_counter_ = &registry->get_counter("dse.cache.evictions");
        size_gauge_ = &registry->get_gauge("dse.cache.size");
    }
}

void cached_evaluator::shrink_to_capacity_locked() const {
    using namespace std::chrono_literals;
    while (map_.size() > capacity_) {
        bool evicted = false;
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            const auto map_it = map_.find(*it);
            if (map_it->second.result.wait_for(0s) !=
                std::future_status::ready)
                continue;  // in flight: a producer still owns this entry
            lru_.erase(std::next(it).base());
            map_.erase(map_it);
            ++stats_.evictions;
            if (evictions_counter_) evictions_counter_->add();
            evicted = true;
            break;
        }
        if (!evicted) break;  // capacity exceeded only by in-flight entries
    }
    stats_.entries = map_.size();
    if (size_gauge_) size_gauge_->set(static_cast<double>(map_.size()));
}

evaluation_result cached_evaluator::evaluate(
    const system_config& config, const evaluation_options& options) const {
    const cache_key key = make_key(config, options);

    std::promise<evaluation_result> producer;
    std::shared_future<evaluation_result> result;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = map_.find(key); it != map_.end()) {
            ++stats_.hits;
            if (hits_counter_) hits_counter_->add();
            lru_.splice(lru_.begin(), lru_, it->second.lru_it);
            result = it->second.result;
        } else {
            ++stats_.misses;
            if (misses_counter_) misses_counter_->add();
            result = producer.get_future().share();
            lru_.push_front(key);
            map_.emplace(key, entry{result, lru_.begin()});
            shrink_to_capacity_locked();
            owner = true;
        }
    }

    if (owner) {
        try {
            producer.set_value(inner_.evaluate(config, options));
        } catch (...) {
            // Waiters get the exception; the entry goes so a retry re-runs.
            producer.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            if (const auto it = map_.find(key); it != map_.end()) {
                lru_.erase(it->second.lru_it);
                map_.erase(it);
                stats_.entries = map_.size();
                if (size_gauge_)
                    size_gauge_->set(static_cast<double>(map_.size()));
            }
        }
    }
    return result.get();
}

std::vector<evaluation_result> cached_evaluator::evaluate_batch(
    std::span<const system_config> configs,
    const evaluation_options& options) const {
    std::vector<evaluation_result> out;
    if (configs.empty()) return out;

    struct owned_miss {
        cache_key key;
        std::promise<evaluation_result> producer;
    };

    std::vector<std::shared_future<evaluation_result>> futures(configs.size());
    std::vector<owned_miss> owned;
    std::vector<system_config> miss_configs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const cache_key key = make_key(configs[i], options);
            if (const auto it = map_.find(key); it != map_.end()) {
                // Cached, in flight elsewhere, or a duplicate earlier in
                // this very batch — all three join the existing future.
                ++stats_.hits;
                if (hits_counter_) hits_counter_->add();
                lru_.splice(lru_.begin(), lru_, it->second.lru_it);
                futures[i] = it->second.result;
            } else {
                ++stats_.misses;
                if (misses_counter_) misses_counter_->add();
                owned_miss miss{key, {}};
                futures[i] = miss.producer.get_future().share();
                lru_.push_front(key);
                map_.emplace(key, entry{futures[i], lru_.begin()});
                owned.push_back(std::move(miss));
                miss_configs.push_back(configs[i]);
            }
        }
        shrink_to_capacity_locked();
    }

    if (!owned.empty()) {
        try {
            std::vector<evaluation_result> produced =
                inner_.evaluate_batch(miss_configs, options);
            for (std::size_t j = 0; j < owned.size(); ++j)
                owned[j].producer.set_value(std::move(produced[j]));
        } catch (...) {
            const std::exception_ptr error = std::current_exception();
            for (owned_miss& miss : owned)
                miss.producer.set_exception(error);
            std::lock_guard<std::mutex> lock(mutex_);
            for (const owned_miss& miss : owned) {
                if (const auto it = map_.find(miss.key); it != map_.end()) {
                    lru_.erase(it->second.lru_it);
                    map_.erase(it);
                }
            }
            stats_.entries = map_.size();
            if (size_gauge_) size_gauge_->set(static_cast<double>(map_.size()));
        }
    }

    out.reserve(configs.size());
    for (const auto& future : futures) out.push_back(future.get());
    return out;
}

cached_evaluator::cache_stats cached_evaluator::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void cached_evaluator::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    map_.clear();
    stats_.entries = 0;
    if (size_gauge_) size_gauge_->set(0.0);
}

}  // namespace ehdse::dse
