#include "dse/system_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>

#include "dse/batch_envelope_system.hpp"
#include "dse/batch_generic_system.hpp"
#include "harvester/electromagnetic.hpp"
#include "obs/metrics.hpp"
#include "obs/timing.hpp"

namespace ehdse::dse {

system_evaluator::system_evaluator(scenario scn,
                                   harvester::microgenerator_params gen,
                                   power::supercapacitor_params cap,
                                   power::rectifier_params rect,
                                   node::node_params node,
                                   mcu::controller_params controller)
    : scenario_(scn),
      harv_{},  // default: electromagnetic
      model_(std::make_shared<const harvester::electromagnetic_harvester>(gen)),
      table_(*model_),
      cap_(cap),
      rect_(rect),
      node_(node),
      controller_(controller) {
    scenario_.validate();
}

system_evaluator::system_evaluator(scenario scn, spec::harvester_spec harv,
                                   power::supercapacitor_params cap,
                                   power::rectifier_params rect,
                                   node::node_params node,
                                   mcu::controller_params controller)
    : scenario_(scn),
      harv_(harv.canonicalized()),
      model_((harv_.validate(), harvester::make_harvester(harv_.model))),
      table_(*model_),
      cap_(cap),
      rect_(rect),
      node_(node),
      controller_(controller) {
    scenario_.validate();
    // Each device class knows its own retune mechanism: the EM cantilever
    // moves a magnet with a stepper, the electrostatic device programs a
    // bias DAC. The controller charges whatever the backend quotes.
    const harvester::retune_cost cost = model_->actuator();
    controller_.actuator.step_time_s = cost.step_time_s;
    controller_.actuator.single_step_energy_j = cost.single_step_energy_j;
    controller_.actuator.multi_step_energy_j = cost.multi_step_energy_j;
    controller_.actuator.min_drive_voltage_v = cost.min_drive_voltage_v;
}

const harvester::microgenerator& system_evaluator::generator() const {
    const auto* em =
        dynamic_cast<const harvester::electromagnetic_harvester*>(model_.get());
    if (em == nullptr)
        throw std::logic_error("system_evaluator: harvester '" +
                               model_->name() + "' has no microgenerator");
    return em->generator();
}

namespace {

/// Shared digital wiring + run loop over any node_system: the system
/// supplies its own integration defaults and state layout, so neither
/// fidelity branch threads index/ode plumbing through here.
evaluation_result run_simulation(node_system& system, const scenario& scn,
                                 const harvester::tuning_table& table,
                                 const node::node_params& node_params,
                                 const mcu::controller_params& ctrl_params,
                                 const evaluation_options& options,
                                 int start_position) {
    const node_system::state_map ix = system.states();
    std::vector<double> x0 = system.initial_state(scn.v_initial, start_position);
    sim::simulator sim(system, std::move(x0), system.suggested_ode_options());
    system.attach(sim);

    node::sensor_node node(sim, system, node_params, /*first_wake_s=*/0.0);
    mcu::tuning_controller controller(sim, system, table, ctrl_params);

    evaluation_result out;
    double v_min = scn.v_initial;
    double v_max = scn.v_initial;
    sim.add_step_observer([&](double, std::span<const double> x) {
        const double v = x[ix.voltage];
        v_min = std::min(v_min, v);
        v_max = std::max(v_max, v);
    });

    if (options.record_traces) {
        out.voltage_trace.emplace("supercap_voltage", options.trace_interval_s);
        out.position_trace.emplace("actuator_position", options.trace_interval_s);
        sim.add_step_observer([&](double t, std::span<const double> x) {
            out.voltage_trace->record(t, x[ix.voltage]);
            out.position_trace->record(t, static_cast<double>(system.position()));
        });
    }

    out.sim_ok = sim.run_until(scn.duration_s);

    out.transmissions = node.transmissions();
    out.suppressed_wakeups = node.suppressed_wakeups();
    out.low_band_transmissions = node.low_band_transmissions();
    out.tuning = controller.stats();
    out.final_voltage_v = sim.state_at(ix.voltage);
    out.min_voltage_v = v_min;
    out.max_voltage_v = v_max;
    out.harvested_energy_j = sim.state_at(ix.harvested);
    if (ix.load_energy) out.sustained_load_energy_j = sim.state_at(*ix.load_energy);
    out.ledger = system.ledger();
    out.withdrawn_energy_j = out.ledger.grand_total();
    out.ode_steps = sim.total_steps();
    out.ode_steps_rejected = sim.total_rejected_steps();
    out.events = sim.total_events();
    return out;
}

/// Book one finished run into the process-wide metrics sink, if attached.
void record_run_metrics(const evaluation_result& r) {
    obs::metrics_registry* reg = obs::global_registry();
    if (!reg) return;
    reg->get_counter("dse.evaluate.runs").add();
    if (!r.sim_ok) reg->get_counter("dse.evaluate.failures").add();
    reg->get_histogram("dse.evaluate.seconds").observe(r.wall_time_s);
    reg->get_histogram("dse.evaluate.ode_steps")
        .observe(static_cast<double>(r.ode_steps));
    reg->get_histogram("dse.evaluate.transmissions")
        .observe(static_cast<double>(r.transmissions));
}

}  // namespace

evaluation_result system_evaluator::evaluate(const system_config& config,
                                             const evaluation_options& options) const {
    ++runs_;
    const obs::stopwatch watch;

    // Per-run stimulus — evaluations are independent experiments.
    const harvester::vibration_source vib = scenario_.make_vibration();
    const double f_start = scenario_.frequency_schedule.empty()
                               ? scenario_.f_start_hz
                               : scenario_.frequency_schedule.front().second;
    const int start_position = scenario_.initial_position >= 0
                                   ? scenario_.initial_position
                                   : table_.lookup(f_start);

    // Digital side: configure per the design point.
    node::node_params node_params = node_;
    node_params.fast_interval_s = config.tx_interval_s;
    mcu::controller_params ctrl_params = controller_;
    ctrl_params.mcu.clock_hz = config.mcu_clock_hz;
    ctrl_params.watchdog_period_s = config.watchdog_period_s;
    ctrl_params.rng_seed = options.controller_seed;

    const std::unique_ptr<node_system> system =
        build_system(config, options, vib);
    evaluation_result out = run_simulation(*system, scenario_, table_,
                                           node_params, ctrl_params, options,
                                           start_position);
    out.wall_time_s = watch.seconds();
    record_run_metrics(out);
    return out;
}

std::unique_ptr<node_system> system_evaluator::build_system(
    const system_config& /*config*/, const evaluation_options& options,
    const harvester::vibration_source& vib) const {
    return make_node_system(options, *model_, vib, storage_, cap_, rect_);
}

namespace {

/// Book one finished batch into the dse.batch.* metrics, if attached.
void record_batch_metrics(std::size_t lanes, bool fallback) {
    obs::metrics_registry* reg = obs::global_registry();
    if (!reg) return;
    if (fallback) {
        reg->get_counter("dse.batch.fallbacks").add();
        return;
    }
    reg->get_counter("dse.batch.batches").add();
    reg->get_counter("dse.batch.lanes").add(lanes);
}

/// One lockstep sweep over `chunk` through either batch kernel (both
/// expose the same lane API and the scalar envelope state layout). Fills
/// every result field except wall_time_s, which the caller attributes.
template <class BatchSystem>
void run_batch_chunk(BatchSystem& system, std::span<const system_config> chunk,
                     std::span<evaluation_result> results, const scenario& scn,
                     const harvester::tuning_table& table,
                     const node::node_params& node_base,
                     const mcu::controller_params& ctrl_base,
                     const evaluation_options& options, int start_position) {
    const std::size_t lanes = chunk.size();
    system.set_frontend(options.frontend, options.frontend_efficiency);
    std::vector<double> x0 = system.initial_state(scn.v_initial, start_position);
    sim::batch_simulator bsim(system, std::move(x0),
                              system.suggested_ode_options());
    system.attach(bsim);

    // Digital side per lane, wired exactly as the scalar run wires its
    // single design point (node first, then controller — the per-lane
    // event queues preserve the scalar FIFO order).
    std::deque<node::sensor_node> nodes;
    std::deque<mcu::tuning_controller> controllers;
    for (std::size_t l = 0; l < lanes; ++l) {
        const system_config& config = chunk[l];
        node::node_params node_params = node_base;
        node_params.fast_interval_s = config.tx_interval_s;
        mcu::controller_params ctrl_params = ctrl_base;
        ctrl_params.mcu.clock_hz = config.mcu_clock_hz;
        ctrl_params.watchdog_period_s = config.watchdog_period_s;
        ctrl_params.rng_seed = options.controller_seed;
        nodes.emplace_back(bsim.lane(l), system.plant(l), node_params,
                           /*first_wake_s=*/0.0);
        controllers.emplace_back(bsim.lane(l), system.plant(l), table,
                                 ctrl_params);
    }
    bsim.watch_range(BatchSystem::ix_voltage);

    bsim.run_until(scn.duration_s);

    for (std::size_t l = 0; l < lanes; ++l) {
        evaluation_result& r = results[l];
        r.sim_ok = bsim.lane_ok(l);
        r.transmissions = nodes[l].transmissions();
        r.suppressed_wakeups = nodes[l].suppressed_wakeups();
        r.low_band_transmissions = nodes[l].low_band_transmissions();
        r.tuning = controllers[l].stats();
        r.final_voltage_v = bsim.state_at(l, BatchSystem::ix_voltage);
        r.min_voltage_v = bsim.watched_min(l);
        r.max_voltage_v = bsim.watched_max(l);
        r.harvested_energy_j = bsim.state_at(l, BatchSystem::ix_harvested);
        r.sustained_load_energy_j =
            bsim.state_at(l, BatchSystem::ix_load_energy);
        r.ledger = system.ledger(l);
        r.withdrawn_energy_j = r.ledger.grand_total();
        r.ode_steps = bsim.lane_steps(l);
        r.ode_steps_rejected = bsim.lane_rejected_steps(l);
        r.events = bsim.lane_events(l);
    }
}

}  // namespace

std::vector<evaluation_result> system_evaluator::evaluate_batch(
    const std::span<const system_config> configs,
    const evaluation_options& options) const {
    std::vector<evaluation_result> out(configs.size());
    if (configs.empty()) return out;

    // The batch kernels cover the hot flow path: envelope fidelity, no
    // traces. Everything else runs the scalar path per config.
    if (options.model != fidelity::envelope || options.record_traces) {
        record_batch_metrics(configs.size(), /*fallback=*/true);
        for (std::size_t i = 0; i < configs.size(); ++i)
            out[i] = evaluate(configs[i], options);
        return out;
    }

    // The hand-vectorised SoA kernel is pinned to the electromagnetic
    // bridge algebra; every other registry entry takes the generic
    // per-lane kernel (same scheduler, scalar envelope hook per lane).
    const auto* em =
        dynamic_cast<const harvester::electromagnetic_harvester*>(model_.get());

    for (std::size_t first = 0; first < configs.size();
         first += k_max_batch_lanes) {
        const std::size_t lanes =
            std::min(k_max_batch_lanes, configs.size() - first);
        runs_ += lanes;
        const obs::stopwatch watch;

        // Per-batch stimulus — same scenario for every lane, so one
        // vibration source is shared read-only across lanes.
        const harvester::vibration_source vib = scenario_.make_vibration();
        const double f_start = scenario_.frequency_schedule.empty()
                                   ? scenario_.f_start_hz
                                   : scenario_.frequency_schedule.front().second;
        const int start_position = scenario_.initial_position >= 0
                                       ? scenario_.initial_position
                                       : table_.lookup(f_start);

        std::shared_ptr<const power::storage_model> storage = storage_;
        if (!storage)
            storage = std::make_shared<power::supercapacitor>(cap_);
        const std::span<const system_config> chunk =
            configs.subspan(first, lanes);
        const std::span<evaluation_result> results(out.data() + first, lanes);
        if (em != nullptr) {
            batch_envelope_system system(em->generator(), vib,
                                         std::move(storage), rect_, lanes);
            run_batch_chunk(system, chunk, results, scenario_, table_, node_,
                            controller_, options, start_position);
        } else {
            batch_generic_system system(*model_, vib, std::move(storage), rect_,
                                        lanes);
            run_batch_chunk(system, chunk, results, scenario_, table_, node_,
                            controller_, options, start_position);
        }

        // Wall clock is shared by construction; attribute an even share to
        // each lane so throughput metrics stay meaningful.
        const double wall_s = watch.seconds();
        for (std::size_t l = 0; l < lanes; ++l) {
            out[first + l].wall_time_s = wall_s / static_cast<double>(lanes);
            record_run_metrics(out[first + l]);
        }
        record_batch_metrics(lanes, /*fallback=*/false);
    }
    return out;
}

}  // namespace ehdse::dse
