// Generic batch implementation of the envelope-mode node system for any
// harvester_model registry entry: B design points advance in lockstep,
// each lane evaluated through the scalar envelope hook
// (harvester_model::envelope_dynamics) at that lane's own time.
//
// Unlike batch_envelope_system — the hand-vectorised SoA kernel pinned to
// the electromagnetic device's bridge algebra — this system makes no
// assumptions about the backend's physics, so it stays per-lane scalar.
// The payoff is shared scheduling: one batch_simulator amortises event
// dispatch and step control across lanes, and every lane is bit-identical
// to its scalar envelope_system run (same hook, same operand order),
// which the batch_vs_scalar testkit property enforces per registered
// harvester.
//
// Lanes are independent: per-lane actuator position, load bank and energy
// ledger, shared (read-only) model, vibration source and storage model.
// One instance hosts one batch_simulator run and is not thread-safe
// across concurrent runs — evaluate_batch builds one per call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dse/envelope_system.hpp"
#include "harvester/harvester_model.hpp"
#include "harvester/plant.hpp"
#include "harvester/vibration.hpp"
#include "power/energy_ledger.hpp"
#include "power/load_bank.hpp"
#include "power/rectifier.hpp"
#include "power/storage.hpp"
#include "sim/batch_ode.hpp"
#include "sim/batch_simulator.hpp"

namespace ehdse::dse {

class batch_generic_system final : public sim::batch_analog_system {
public:
    // Same state layout as the scalar envelope_system.
    static constexpr std::size_t ix_voltage = envelope_system::ix_voltage;
    static constexpr std::size_t ix_amplitude = envelope_system::ix_amplitude;
    static constexpr std::size_t ix_harvested = envelope_system::ix_harvested;
    static constexpr std::size_t ix_load_energy =
        envelope_system::ix_load_energy;
    static constexpr std::size_t k_state_count = envelope_system::k_state_count;

    /// `model` and `vib` must outlive the system; `storage` is shared
    /// read-only across lanes.
    batch_generic_system(const harvester::harvester_model& model,
                         const harvester::vibration_source& vib,
                         std::shared_ptr<const power::storage_model> storage,
                         power::rectifier_params rect, std::size_t lanes);

    /// Bind the batch simulator whose state the per-lane plants read/write.
    void attach(sim::batch_simulator& bsim) { bsim_ = &bsim; }

    /// Select the power front-end for every lane (default: diode bridge).
    void set_frontend(frontend_kind kind, double efficiency = 0.75);

    /// Initial state shared by all lanes (identical scenario => identical
    /// start): store at v0, amplitude at the model's converged steady
    /// state. Also sets every lane's actuator position.
    std::vector<double> initial_state(double v0, int initial_position);

    /// Same integration defaults as the scalar envelope system.
    sim::ode_options suggested_ode_options() const;

    /// Per-lane plant handle for the digital processes of lane l.
    harvester::plant& plant(std::size_t l) { return *plants_.at(l); }

    const power::energy_ledger& ledger(std::size_t l) const {
        return ledgers_.at(l);
    }

    // --- batch_analog_system ---
    std::size_t state_size() const override { return k_state_count; }
    std::size_t lanes() const override { return lanes_; }
    void derivatives(std::span<const double> t, const sim::batch_state& x,
                     sim::batch_state& dxdt,
                     std::span<const std::uint8_t> active) const override;

private:
    /// harvester::plant over one lane of this system.
    class lane_plant final : public harvester::plant {
    public:
        lane_plant(batch_generic_system& owner, std::size_t lane)
            : owner_(&owner), lane_(lane) {}
        double storage_voltage() const override;
        void withdraw(double joules, const std::string& account) override;
        void set_sustained_draw(const std::string& account,
                                double amps) override;
        int position() const override { return owner_->position_[lane_]; }
        void set_position(int position) override;
        double vibration_frequency() const override;
        double phase_lag() const override;

    private:
        batch_generic_system* owner_;
        std::size_t lane_;
    };

    sim::batch_simulator& bsim() const;

    const harvester::harvester_model& model_;
    const harvester::vibration_source& vib_;
    std::shared_ptr<const power::storage_model> storage_;
    power::rectifier_params rect_;
    std::size_t lanes_;
    sim::batch_simulator* bsim_ = nullptr;
    frontend_kind frontend_ = frontend_kind::diode_bridge;
    double frontend_efficiency_ = 0.75;

    // Per-lane digital-facing state.
    std::vector<int> position_;
    std::vector<power::load_bank> loads_;
    std::vector<std::unordered_map<std::string, power::load_id>> load_slots_;
    std::vector<power::energy_ledger> ledgers_;
    std::vector<std::unique_ptr<lane_plant>> plants_;
};

}  // namespace ehdse::dse
