// The paper's end-to-end methodology in one call (sections II and V):
//
//   1. experimental design: candidate set + run selection, by registry
//      name (paper: 3-level full factorial, D-optimal pick of 10);
//   2. one mixed-signal simulation per selected design point;
//   3. surrogate fit of the response surface, by registry name (paper:
//      least-squares quadratic, eq. 9);
//   4. global maximisation of the fitted surface with Simulated Annealing
//      and a Genetic Algorithm (paper Table VI);
//   5. validation: re-simulate each optimiser's configuration.
//
// Every pipeline stage resolves through a name registry — the design via
// doe::make_design, the surrogate via rsm::make_surrogate, the optimisers
// via opt::make_optimizer — so the whole flow is described by the
// canonical spec::experiment_spec and any stage swaps with one flag.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "doe/design.hpp"
#include "dse/cached_evaluator.hpp"
#include "dse/system_evaluator.hpp"
#include "obs/run_manifest.hpp"
#include "opt/optimizer.hpp"
#include "rsm/surrogate.hpp"
#include "spec/experiment_spec.hpp"

namespace ehdse::exec {
class thread_pool;
}  // namespace ehdse::exec

namespace ehdse::dse {

/// Typed failure of a running flow: any exception thrown by a pipeline
/// stage after validation (a failing evaluator, an unfittable surrogate
/// design, an optimiser objective error) is recorded into the attached
/// manifest ("error" + "error_phase" options) and rethrown as this type,
/// so callers always see WHERE the flow died — and a fault-injected
/// evaluator can never crash the flow with an untyped escape.
/// Registry/spec validation errors keep throwing std::invalid_argument
/// before any phase starts.
class flow_error : public std::runtime_error {
public:
    flow_error(std::string phase, const std::string& message)
        : std::runtime_error("run_rsm_flow[" + phase + "]: " + message),
          phase_(std::move(phase)) {}

    /// Name of the phase that failed ("simulate", "fit", "validate", ...).
    const std::string& phase() const noexcept { return phase_; }

private:
    std::string phase_;
};

struct flow_options {
    std::size_t doe_runs = 10;        ///< design run budget (paper: 10)
    std::size_t factorial_levels = 3; ///< candidate grid per axis (paper: 3)
    /// Experimental design by registry name (doe::design_registry):
    /// d_optimal (paper), full_factorial, central_composite, box_behnken,
    /// lhs.
    std::string design = "d_optimal";
    /// Surrogate model by registry name (rsm::surrogate_registry):
    /// quadratic (paper eq. 9), stepwise, gp.
    std::string surrogate = "quadratic";
    /// Stochastic-design knobs (d_optimal exchange restarts, lhs jitter).
    doe::design_options doe{};
    std::uint64_t optimizer_seed = 0x0b7a1;
    evaluation_options eval{};
    /// Reference design simulated for Table VI row 1 (and recorded in the
    /// manifest spec as the spec's `config` part).
    system_config baseline = system_config::original();
    /// Simulations per design point, each with its own measurement-noise
    /// seed. 1 = the paper's flow; > 1 produces replicated observations so
    /// pure error / lack-of-fit can be assessed (rsm::lack_of_fit).
    std::size_t replicates = 1;
    std::uint64_t replicate_seed_base = 1;
    /// Run the design-point simulations concurrently (one task per run).
    /// Results are identical to the sequential order — each run is seeded
    /// independently — just faster on multi-core hosts.
    bool parallel = false;
    /// Worker count when the flow creates its own pool (`parallel` set and
    /// `pool` unset). 0 = one worker per hardware thread.
    std::size_t jobs = 0;
    /// Externally owned pool. When set, the simulate / optimise / validate
    /// phases fan out over it even without `parallel`; it must outlive the
    /// call. When unset and `parallel` is set, the flow owns a pool of
    /// `jobs` workers for the duration of the call.
    exec::thread_pool* pool = nullptr;
    /// Evaluate design points through system_evaluator::evaluate_batch in
    /// groups of at most this many configs (grouping never mixes
    /// evaluation options, so replicates batch within a seed). Runtime
    /// execution knob only — it is NOT part of the experiment spec, so
    /// manifests keep the same spec_hash and per-run records regardless of
    /// the width; results are identical because batch lanes are
    /// independent. 0 or 1 disables batching (per-config evaluate()).
    std::size_t batch_width = 16;
    /// Memoise evaluations for the duration of the flow: optimiser
    /// revisits of an already-simulated configuration (common — GA and SA
    /// frequently agree on a box vertex) reuse the stored result.
    bool cache = true;
    /// Retained entries in the memoisation cache.
    std::size_t cache_capacity = 128;
    /// Optimisers to run on the fitted surface. Empty = the paper's pair
    /// (simulated annealing + genetic algorithm).
    std::vector<std::shared_ptr<opt::optimizer>> optimizers;

    // -- Observability (all optional; zero cost when unset) ---------------
    /// When set, the flow records its full execution into this manifest:
    /// option echo (design/surrogate names included) + seeds, per-phase
    /// wall times, one sim_run_record per simulation (design points —
    /// replicates included — baseline and validation re-runs), the uniform
    /// fit diagnostics under "fit", and one optimizer_record per
    /// optimiser. Caller-owned; must outlive the call. Works with
    /// `parallel` too.
    obs::run_manifest* manifest = nullptr;
    /// When set, receives one human-readable line per flow milestone
    /// (phase completions, each design-point simulation, each optimiser).
    /// Invoked from the calling thread only, including under `parallel`.
    std::function<void(const std::string&)> progress;
};

/// One optimiser's outcome: the argmax on the surface, its prediction, and
/// the validating full simulation.
struct optimizer_outcome {
    std::string name;
    numeric::vec coded;
    system_config config;
    double predicted = 0.0;    ///< surrogate value at the optimum
    evaluation_result validated;
    std::size_t evaluations = 0;  ///< objective (surface) evaluations
    opt::opt_result details;   ///< full optimiser telemetry (acceptance, trajectory)
    double optimise_wall_s = 0.0;  ///< wall time inside optimizer::maximize
};

struct flow_result {
    rsm::design_space space;
    doe::design_result design;                   ///< candidates + selection
    std::vector<numeric::vec> design_coded;      ///< simulated points (incl. replicates)
    std::vector<system_config> design_configs;   ///< natural units
    numeric::vec responses;                      ///< y per design point
    rsm::surrogate_fit fit;                      ///< the fitted surface + diagnostics
    evaluation_result original_eval;             ///< baseline (Table VI row 1)
    std::vector<optimizer_outcome> outcomes;     ///< Table VI remaining rows
    /// Memoisation totals for this run (all zero when caching is off).
    cached_evaluator::cache_stats cache;
};

/// Run the complete flow against `evaluator`. When a manifest is attached,
/// the canonical spec::experiment_spec this invocation answers — rebuilt
/// from the evaluator's scenario plus the serialisable options — is
/// embedded under the "spec" option together with its content hash
/// ("spec_hash", 16 hex chars), so any manifest identifies the experiment
/// it records and can be replayed via `ehdse_cli flow --spec`. Throws
/// std::invalid_argument (offender named, valid choices listed) for an
/// unknown design or surrogate name.
flow_result run_rsm_flow(const system_evaluator& evaluator,
                         const flow_options& options = {});

/// Translate a canonical spec into flow_options. `runtime` contributes the
/// non-serialisable wiring only (pool, manifest, progress callback,
/// design-algorithm knobs); every serialisable field is taken from the
/// spec — optimiser / design / surrogate names resolve through their
/// registries. Throws std::invalid_argument when the spec fails
/// validation or names an unknown optimiser.
flow_options flow_options_from_spec(const spec::experiment_spec& spec,
                                    flow_options runtime = {});

/// Run the complete flow described by `spec` (evaluator built from
/// spec.scn, options via flow_options_from_spec). The manifest spec/
/// spec_hash stamped by this overload equal those of the flag-driven
/// entry point given the same request — the round-trip guarantee behind
/// `--dump-spec` / `--spec`.
flow_result run_rsm_flow(const spec::experiment_spec& spec,
                         const flow_options& runtime = {});

}  // namespace ehdse::dse
