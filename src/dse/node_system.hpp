// The common shape of a whole-node analogue model: an ODE system that is
// also the plant the digital controllers drive, and that knows its own
// integration defaults and state layout. system_evaluator dispatches a
// run's fidelity through make_node_system() and then runs ONE generic
// simulation loop against this interface — the envelope/transient
// branches (and their previously hard-coded ode_options blocks and
// state-index plumbing) live with the system that owns them.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "harvester/plant.hpp"
#include "power/energy_ledger.hpp"
#include "power/rectifier.hpp"
#include "power/storage.hpp"
#include "power/supercapacitor.hpp"
#include "sim/ode.hpp"
#include "sim/context.hpp"
#include "sim/ode.hpp"
#include "spec/experiment_spec.hpp"

namespace ehdse::harvester {
class harvester_model;
class microgenerator;
class vibration_source;
}  // namespace ehdse::harvester

namespace ehdse::dse {

class node_system : public sim::analog_system, public harvester::plant {
public:
    /// Where the observables live in this system's state vector.
    struct state_map {
        std::size_t voltage = 0;    ///< storage voltage
        std::size_t harvested = 0;  ///< cumulative energy into the store
        /// Cumulative sustained-load energy; nullopt when the model folds
        /// sustained draws into dV/dt without a separate energy state.
        std::optional<std::size_t> load_energy;
    };

    /// Bind the simulator whose state vector this system reads/writes when
    /// servicing plant calls. Must be called before the first event fires.
    virtual void attach(sim::sim_context& sim) = 0;

    /// Initial state for storage voltage v0 with the actuator at
    /// `initial_position`.
    virtual std::vector<double> initial_state(double v0,
                                              int initial_position) = 0;

    /// Integrator settings tuned for this model's stiffness and time
    /// scales (tolerances, initial and maximum step).
    virtual sim::ode_options suggested_ode_options() const = 0;

    virtual state_map states() const = 0;

    /// Energy accounting of the discrete withdrawals.
    virtual const power::energy_ledger& ledger() const = 0;
};

/// Build the analogue system `options` asks for: the envelope fast path
/// (with its front-end applied) or the full transient model. `storage`
/// overrides the default supercapacitor built from `cap` when non-null.
/// `model` and `vib` must outlive the returned system.
std::unique_ptr<node_system> make_node_system(
    const spec::evaluation_options& options,
    const harvester::harvester_model& model,
    const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    const power::supercapacitor_params& cap,
    const power::rectifier_params& rect);

/// Pre-registry spelling: wraps `gen` in an electromagnetic backend.
/// `gen` and `vib` must outlive the returned system.
std::unique_ptr<node_system> make_node_system(
    const spec::evaluation_options& options,
    const harvester::microgenerator& gen,
    const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    const power::supercapacitor_params& cap,
    const power::rectifier_params& rect);

}  // namespace ehdse::dse
