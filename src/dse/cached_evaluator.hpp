// Thread-safe memoising wrapper over system_evaluator. An evaluation is a
// pure function of (system_config, evaluation_options) — the evaluator's
// physics are fixed at construction and every stochastic stream is seeded
// through the options — so identical requests (optimiser revisits of the
// same design point, repeated baselines) can return the stored result
// instead of re-integrating an hour of ODE.
//
// Keying: the key is the CANONICALIZED (system_config, evaluation_options)
// pair of the spec layer — spec::evaluation_request_hash routes buckets
// and full canonical equality (defaulted field-wise operator==) decides,
// so adding a field to either struct automatically participates in
// equality with no hand-maintained mirror to forget (a stale hash can
// only cost a bucket collision, never a false hit). Canonicalisation
// means observably equivalent requests share an entry: distinct seeds,
// fidelities and effective front-ends never collide, while fields the
// run cannot observe (trace interval with tracing off, front-end choice
// under transient fidelity, mppt efficiency without the mppt front-end)
// no longer force a re-simulation. Eviction is LRU with a fixed capacity.
//
// Concurrency: lookups are single-flight. The first thread to request a
// key runs the simulation; concurrent requests for the same key block on
// a shared future and receive the same result — the pool never burns two
// workers on one configuration. If the producing evaluation throws, every
// waiter receives the exception and the entry is removed so a later call
// retries.
//
// Observability: when a global metrics registry is installed at
// construction, hits/misses/evictions land in the dse.cache.* counters
// and dse.cache.size gauge; stats() reports the same numbers without any
// registry.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <mutex>
#include <unordered_map>

#include "dse/system_evaluator.hpp"

namespace ehdse::obs {
class counter;
class gauge;
}  // namespace ehdse::obs

namespace ehdse::dse {

class cached_evaluator {
public:
    struct cache_stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;

        double hit_rate() const noexcept {
            const std::uint64_t total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits) / static_cast<double>(total);
        }
    };

    /// Wrap `inner` (caller-owned; must outlive this object). `capacity`
    /// bounds the number of retained results; throws std::invalid_argument
    /// when zero.
    explicit cached_evaluator(const system_evaluator& inner,
                              std::size_t capacity = 128);

    /// As system_evaluator::evaluate, memoised. Safe to call concurrently.
    evaluation_result evaluate(const system_config& config,
                               const evaluation_options& options = {}) const;

    /// As system_evaluator::evaluate_batch, memoised per config. One lock
    /// pass partitions the batch: cached or in-flight keys join the
    /// existing future (single-flight, also for duplicates within the
    /// batch), the remaining misses run through the inner evaluator's
    /// batch kernel in one call. If that call throws, every waiter on an
    /// owned key receives the exception and the entries are removed so a
    /// later call retries.
    std::vector<evaluation_result> evaluate_batch(
        std::span<const system_config> configs,
        const evaluation_options& options = {}) const;

    cache_stats stats() const;

    /// Drop every cached entry (hit/miss/eviction totals are kept).
    void clear();

    std::size_t capacity() const noexcept { return capacity_; }
    const system_evaluator& inner() const noexcept { return inner_; }

private:
    /// Canonical request: full structs, defaulted exact equality — every
    /// present AND future field participates without a mirror.
    struct cache_key {
        system_config config;
        evaluation_options eval;

        bool operator==(const cache_key&) const = default;
    };
    struct key_hash {
        std::size_t operator()(const cache_key& key) const noexcept;
    };
    struct entry {
        std::shared_future<evaluation_result> result;
        std::list<cache_key>::iterator lru_it;
    };

    static cache_key make_key(const system_config& config,
                              const evaluation_options& options) noexcept;
    /// Caller holds mutex_. Evicts ready entries (never in-flight ones)
    /// from the cold end until the map fits the capacity, then refreshes
    /// the size bookkeeping.
    void shrink_to_capacity_locked() const;

    const system_evaluator& inner_;
    std::size_t capacity_;

    mutable std::mutex mutex_;
    mutable std::list<cache_key> lru_;  ///< front = most recently used
    mutable std::unordered_map<cache_key, entry, key_hash> map_;
    mutable cache_stats stats_;

    obs::counter* hits_counter_ = nullptr;
    obs::counter* misses_counter_ = nullptr;
    obs::counter* evictions_counter_ = nullptr;
    obs::gauge* size_gauge_ = nullptr;
};

}  // namespace ehdse::dse
