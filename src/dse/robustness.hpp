// Robustness analysis of an optimised configuration — how well does the
// RSM-chosen design hold up when the world deviates from the nominal
// scenario? A follow-the-paper extension: the published flow optimises for
// one fixed stimulus (60 mg, two +5 Hz steps); a deployed node faces seed-
// level measurement noise, different excitation amplitudes and different
// frequency schedules.
#pragma once

#include <string>
#include <vector>

#include "dse/system_evaluator.hpp"
#include "spec/experiment_spec.hpp"

namespace ehdse::exec {
class thread_pool;
}  // namespace ehdse::exec

namespace ehdse::dse {

/// Statistics of a configuration across a perturbation set.
struct robustness_summary {
    std::string label;
    system_config config;
    double mean_tx = 0.0;
    double min_tx = 0.0;
    double max_tx = 0.0;
    double stddev_tx = 0.0;
    std::vector<double> samples;  ///< transmissions per variant, in order
};

/// Perturbation axes for a study.
struct robustness_options {
    std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};  ///< noise streams
    std::vector<double> accel_levels_mg = {40.0, 60.0, 80.0};  ///< amplitude
    /// Alternative frequency step sizes (Hz) applied to the base scenario.
    std::vector<double> step_sizes_hz = {3.0, 5.0, 8.0};
    /// Evaluation options every variant starts from (fidelity, front-end,
    /// tracing); only controller_seed is overridden, per variant.
    evaluation_options eval{};
    /// Evaluate the variants over this pool (nullptr = sequential). Each
    /// variant is independently seeded, so samples are identical either
    /// way. Non-owning; must outlive the call.
    exec::thread_pool* pool = nullptr;
};

/// Evaluate `config` across the cross-product of one perturbation axis at a
/// time (holding the others at the base scenario's values):
///   variants = seeds  +  accel levels  +  step sizes.
robustness_summary run_robustness_study(const scenario& base,
                                        const system_config& config,
                                        const std::string& label,
                                        const robustness_options& options = {});

/// Spec-driven entry point: base scenario, configuration under study and
/// the variants' base evaluation options all come from the canonical spec
/// (spec.scn / spec.config / spec.eval); `options.eval` is ignored.
robustness_summary run_robustness_study(const spec::experiment_spec& spec,
                                        const std::string& label,
                                        const robustness_options& options = {});

}  // namespace ehdse::dse
