#include "dse/report.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "rsm/anova.hpp"
#include "rsm/sensitivity.hpp"

namespace ehdse::dse {

namespace {

void write_header(std::ostream& os, const flow_result& flow,
                  const report_options& options) {
    os << "# " << options.title << "\n\n";
    os << "* design space: ";
    for (std::size_t i = 0; i < flow.space.dimension(); ++i) {
        const auto& p = flow.space.parameter(i);
        os << (i ? "; " : "") << p.name << " in [" << p.min << ", " << p.max << "]";
    }
    os << "\n* candidates: " << flow.design.candidates.size() << "; "
       << flow.design.name << " runs: " << flow.design.points.size();
    if (std::isfinite(flow.design.log_det))
        os << " (log det X'X = " << std::fixed << std::setprecision(2)
           << flow.design.log_det << ")";
    os << "\n";
    os << "* observations (incl. replicates): " << flow.responses.size() << "\n\n";
    os.unsetf(std::ios::fixed);
}

void write_design_table(std::ostream& os, const flow_result& flow) {
    os << "## Design points and responses\n\n";
    os << "| # |";
    for (std::size_t i = 0; i < flow.space.dimension(); ++i)
        os << " " << flow.space.parameter(i).name << " |";
    os << " y |\n|---|";
    for (std::size_t i = 0; i < flow.space.dimension(); ++i) os << "---|";
    os << "---|\n";
    for (std::size_t r = 0; r < flow.design_coded.size(); ++r) {
        os << "| " << (r + 1) << " |";
        const auto natural = flow.space.decode(flow.design_coded[r]);
        for (double v : natural) os << " " << std::setprecision(5) << v << " |";
        os << " " << flow.responses[r] << " |\n";
    }
    os << "\n";
}

void write_fit(std::ostream& os, const flow_result& flow) {
    os << "## Fitted response surface\n\n";
    os << "Surrogate: `" << flow.fit.surrogate << "`\n\n";
    os << "```\ny = " << flow.fit.surface->to_string(3) << "\n```\n\n";
    os << "R^2 = " << std::setprecision(6) << flow.fit.r_squared
       << ", adjusted R^2 = " << flow.fit.adj_r_squared;
    if (std::isfinite(flow.fit.loo_rmse))
        os << ", LOO-CV RMSE = " << std::setprecision(4) << flow.fit.loo_rmse;
    os << "\n\n";
}

void write_anova_section(std::ostream& os, const flow_result& flow) {
    // The classical decomposition applies to the least-squares quadratic
    // only; other surrogates report their own diagnostics via describe().
    const rsm::fit_result* fit = flow.fit.quadratic();
    if (fit == nullptr) {
        os << "## Statistical assessment\n\nANOVA applies to the `quadratic` "
              "surrogate only; the `" << flow.fit.surrogate
           << "` fit reports R^2 / LOO-CV RMSE above.\n\n";
        return;
    }
    if (flow.design_coded.size() <= fit->model.coefficients().size()) {
        os << "## Statistical assessment\n\nSaturated design (runs == terms): "
              "no residual degrees of freedom. Re-run with more runs or "
              "replicates to assess the model.\n\n";
        return;
    }
    const auto anova = rsm::analyse_fit(flow.design_coded, flow.responses, *fit);
    os << "## Statistical assessment\n\n```\n" << rsm::format_anova(anova)
       << "```\n\n";
    const auto lof = rsm::lack_of_fit(flow.design_coded, flow.responses, *fit);
    if (lof.testable) {
        os << "Lack-of-fit: F = " << std::setprecision(3) << lof.f_statistic
           << " (p = " << std::setprecision(4) << lof.p_value << ") — the "
           << (lof.p_value < 0.05 ? "quadratic form is rejected"
                                  : "quadratic form is not rejected")
           << " at the 5% level.\n\n";
    }
}

void write_sensitivity(std::ostream& os, const flow_result& flow) {
    const rsm::fit_result* fit = flow.fit.quadratic();
    if (fit == nullptr) return;  // closed-form Sobol needs the quadratic
    const auto s = rsm::sobol_indices(fit->model);
    os << "## Sensitivity (Sobol indices)\n\n";
    os << "| variable | first-order | total |\n|---|---|---|\n";
    for (std::size_t i = 0; i < flow.space.dimension(); ++i)
        os << "| " << flow.space.parameter(i).name << " | " << std::setprecision(3)
           << 100.0 * s.first_order[i] << "% | " << 100.0 * s.total_order[i]
           << "% |\n";
    os << "\n";
}

void write_outcomes(std::ostream& os, const flow_result& flow) {
    os << "## Optimisation outcomes\n\n";
    os << "| design |";
    for (std::size_t i = 0; i < flow.space.dimension(); ++i)
        os << " " << flow.space.parameter(i).name << " |";
    os << " predicted | validated | vs baseline |\n|---|";
    for (std::size_t i = 0; i < flow.space.dimension() + 3; ++i) os << "---|";
    os << "\n";

    const double base = static_cast<double>(flow.original_eval.transmissions);
    os << "| baseline |";
    const auto orig = system_config::original().to_vector();
    for (double v : orig) os << " " << std::setprecision(5) << v << " |";
    os << " - | " << flow.original_eval.transmissions << " | 1.00x |\n";
    for (const auto& oc : flow.outcomes) {
        os << "| " << oc.name << " |";
        for (double v : oc.config.to_vector())
            os << " " << std::setprecision(5) << v << " |";
        os << " " << std::setprecision(0) << std::fixed << oc.predicted << " | "
           << oc.validated.transmissions << " | " << std::setprecision(2)
           << static_cast<double>(oc.validated.transmissions) / base << "x |\n";
        os.unsetf(std::ios::fixed);
    }
    os << "\n";
}

}  // namespace

void write_report(std::ostream& os, const flow_result& flow,
                  const report_options& options) {
    write_header(os, flow, options);
    if (options.include_design_table) write_design_table(os, flow);
    if (options.include_fit) write_fit(os, flow);
    if (options.include_anova) write_anova_section(os, flow);
    if (options.include_sensitivity) write_sensitivity(os, flow);
    if (options.include_outcomes) write_outcomes(os, flow);
}

std::string report_to_string(const flow_result& flow,
                             const report_options& options) {
    std::ostringstream os;
    write_report(os, flow, options);
    return os.str();
}

}  // namespace ehdse::dse
