#include "dse/rsm_flow.hpp"

#include <future>

#include "doe/designs.hpp"
#include "opt/genetic_algorithm.hpp"
#include "opt/simulated_annealing.hpp"

namespace ehdse::dse {

flow_result run_rsm_flow(const system_evaluator& evaluator,
                         const flow_options& options) {
    flow_result out;
    out.space = paper_design_space();
    const std::size_t k = out.space.dimension();

    // 1. Candidate grid (paper: 3^3 = 27 feasible points).
    out.candidates = doe::full_factorial(k, options.factorial_levels);

    // 2. D-optimal run selection for the quadratic basis.
    out.selection = doe::d_optimal_design(
        out.candidates, [](const numeric::vec& x) { return rsm::quadratic_basis(x); },
        options.doe_runs, options.doe);

    // 3. Simulate each selected design point (optionally replicated with
    //    distinct measurement-noise seeds, for pure-error estimation).
    const std::size_t replicates = std::max<std::size_t>(options.replicates, 1);
    struct job {
        numeric::vec coded;
        system_config config;
        evaluation_options eval;
    };
    std::vector<job> jobs;
    for (std::size_t idx : out.selection.selected) {
        const numeric::vec& coded = out.candidates[idx];
        const system_config config = config_from_coded(out.space, coded);
        for (std::size_t rep = 0; rep < replicates; ++rep) {
            evaluation_options eval = options.eval;
            if (replicates > 1)
                eval.controller_seed = options.replicate_seed_base + rep;
            jobs.push_back({coded, config, eval});
        }
    }

    std::vector<double> responses(jobs.size());
    if (options.parallel && jobs.size() > 1) {
        std::vector<std::future<double>> futures;
        futures.reserve(jobs.size());
        for (const job& j : jobs)
            futures.push_back(std::async(std::launch::async, [&evaluator, &j] {
                return static_cast<double>(
                    evaluator.evaluate(j.config, j.eval).transmissions);
            }));
        for (std::size_t i = 0; i < futures.size(); ++i)
            responses[i] = futures[i].get();
    } else {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            responses[i] = static_cast<double>(
                evaluator.evaluate(jobs[i].config, jobs[i].eval).transmissions);
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        out.design_coded.push_back(jobs[i].coded);
        out.design_configs.push_back(jobs[i].config);
        out.responses.push_back(responses[i]);
    }

    // 4. Fit the quadratic response surface (paper eq. 9).
    out.fit = rsm::fit_quadratic(out.design_coded, out.responses);

    // Baseline for Table VI.
    out.original_eval = evaluator.evaluate(system_config::original(), options.eval);

    // 5-6. Maximise the surface and validate each optimum by simulation.
    std::vector<std::shared_ptr<opt::optimizer>> optimizers = options.optimizers;
    if (optimizers.empty()) {
        optimizers.push_back(std::make_shared<opt::simulated_annealing>());
        optimizers.push_back(std::make_shared<opt::genetic_algorithm>());
    }
    const opt::box_bounds bounds = opt::box_bounds::unit(k);
    const opt::objective_fn surface = [&](const numeric::vec& x) {
        return out.fit.model.predict(x);
    };

    for (const auto& optimizer : optimizers) {
        numeric::rng rng(options.optimizer_seed);
        const opt::opt_result best = optimizer->maximize(surface, bounds, rng);

        optimizer_outcome oc;
        oc.name = optimizer->name();
        oc.coded = best.best_x;
        oc.config = config_from_coded(out.space, best.best_x);
        oc.predicted = best.best_value;
        oc.evaluations = best.evaluations;
        oc.validated = evaluator.evaluate(oc.config, options.eval);
        out.outcomes.push_back(std::move(oc));
    }
    return out;
}

}  // namespace ehdse::dse
