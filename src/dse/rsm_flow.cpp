#include "dse/rsm_flow.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>

#include "exec/batch.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/timing.hpp"
#include "opt/genetic_algorithm.hpp"
#include "opt/simulated_annealing.hpp"
#include "rsm/quadratic_model.hpp"
#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"

namespace ehdse::dse {

namespace {

/// Flow-scoped observability: phase bookkeeping against the (optional)
/// manifest and progress callback, plus the process-wide metrics sink.
/// Everything degrades to no-ops when the corresponding sink is absent.
class flow_observer {
public:
    explicit flow_observer(const flow_options& options)
        : manifest_(options.manifest),
          progress_(options.progress),
          registry_(obs::global_registry()) {}

    /// Close the current phase (if any) and open a new one.
    void phase(std::string name, std::uint64_t items = 0) {
        end_phase();
        current_ = obs::phase_record{std::move(name), 0.0, items};
        in_phase_ = true;
        watch_ = obs::stopwatch();
    }

    void set_phase_items(std::uint64_t items) { current_.items = items; }

    void end_phase() {
        if (!in_phase_) return;
        current_.wall_s = watch_.seconds();
        if (registry_)
            registry_->get_histogram("dse.flow.phase_seconds." + current_.name)
                .observe(current_.wall_s);
        if (manifest_) manifest_->add_phase(current_);
        in_phase_ = false;
    }

    void note(const std::string& line) const {
        if (progress_) progress_(line);
    }

    /// Name of the phase currently open ("" between phases).
    std::string current_phase() const { return in_phase_ ? current_.name : ""; }

    void sim_run(obs::sim_run_record record) const {
        if (manifest_) manifest_->add_sim_run(std::move(record));
    }

    void optimizer(obs::optimizer_record record) const {
        if (registry_) {
            registry_->get_counter("dse.flow.optimizer_evaluations")
                .add(record.evaluations);
        }
        if (manifest_) manifest_->add_optimizer(std::move(record));
    }

    bool manifest_attached() const noexcept { return manifest_ != nullptr; }

private:
    obs::run_manifest* manifest_;
    const std::function<void(const std::string&)>& progress_;
    obs::metrics_registry* registry_;
    obs::phase_record current_;
    obs::stopwatch watch_;
    bool in_phase_ = false;
};

obs::sim_run_record make_run_record(const char* kind, std::size_t index,
                                    const numeric::vec& coded,
                                    const system_config& config,
                                    std::uint64_t seed,
                                    const evaluation_result& r) {
    obs::sim_run_record rec;
    rec.kind = kind;
    rec.index = index;
    rec.coded.assign(coded.begin(), coded.end());
    rec.mcu_clock_hz = config.mcu_clock_hz;
    rec.watchdog_period_s = config.watchdog_period_s;
    rec.tx_interval_s = config.tx_interval_s;
    rec.seed = seed;
    rec.response = static_cast<double>(r.transmissions);
    rec.wall_s = r.wall_time_s;
    rec.ode_steps = r.ode_steps;
    rec.ode_steps_rejected = r.ode_steps_rejected;
    rec.events = r.events;
    rec.sim_ok = r.sim_ok;
    return rec;
}

/// Rebuild the canonical spec this invocation answers. The CLI constructs
/// the same value when driving the flow from a spec file, so both entry
/// points stamp identical spec / spec_hash manifest fields — the property
/// the spec_roundtrip ctest fixture asserts.
spec::experiment_spec spec_of(const system_evaluator& evaluator,
                              const flow_options& options) {
    spec::experiment_spec out;
    out.scn = evaluator.scene();
    out.harv = evaluator.harvester_config();
    out.config = options.baseline;
    out.eval = options.eval;
    out.flow.doe_runs = options.doe_runs;
    out.flow.factorial_levels = options.factorial_levels;
    out.flow.design = options.design;
    out.flow.surrogate = options.surrogate;
    out.flow.optimizer_seed = options.optimizer_seed;
    out.flow.replicates = options.replicates;
    out.flow.replicate_seed_base = options.replicate_seed_base;
    out.flow.parallel = options.parallel;
    out.flow.jobs = options.jobs;
    out.flow.cache = options.cache;
    out.flow.cache_capacity = options.cache_capacity;
    for (const auto& optimizer : options.optimizers)
        out.flow.optimizers.push_back(optimizer->name());
    return out.canonicalized();
}

void echo_options(obs::run_manifest& manifest, const flow_options& options,
                  std::size_t dimension, std::size_t resolved_jobs) {
    manifest.set_option("dimension", obs::json_value(dimension));
    manifest.set_option("doe_runs", obs::json_value(options.doe_runs));
    manifest.set_option("factorial_levels",
                        obs::json_value(options.factorial_levels));
    manifest.set_option("design", obs::json_value(options.design));
    manifest.set_option("surrogate", obs::json_value(options.surrogate));
    manifest.set_option("replicates", obs::json_value(options.replicates));
    manifest.set_option("parallel", obs::json_value(options.parallel));
    manifest.set_option("jobs", obs::json_value(resolved_jobs));
    // Execution detail, echoed for forensics only — deliberately absent
    // from the experiment spec (and so from spec_hash): lanes are
    // independent, so the width cannot change any result.
    manifest.set_option("batch_width", obs::json_value(options.batch_width));
    manifest.set_option("cache", obs::json_value(options.cache));
    manifest.set_option("cache_capacity",
                        obs::json_value(options.cache_capacity));
    manifest.set_option("optimizer_seed", obs::json_value(options.optimizer_seed));
    manifest.set_option("replicate_seed_base",
                        obs::json_value(options.replicate_seed_base));
    manifest.set_option("controller_seed",
                        obs::json_value(options.eval.controller_seed));
    manifest.set_option(
        "fidelity",
        obs::json_value(options.eval.model == fidelity::transient ? "transient"
                                                                  : "envelope"));
}

}  // namespace

/// The flow body proper — everything after fail-fast validation. Runs
/// inside run_rsm_flow's try scope so any phase failure lands in the
/// manifest and rethrows as flow_error.
static flow_result run_flow_phases(
    const system_evaluator& evaluator, const flow_options& options,
    const std::shared_ptr<rsm::surrogate_model>& surrogate,
    flow_observer& obs_hook) {
    // Execution engine: use the caller's pool when provided; otherwise own
    // one for the duration of the call when `parallel` is requested. A null
    // pool means every phase runs inline on this thread.
    exec::thread_pool* pool = options.pool;
    std::unique_ptr<exec::thread_pool> owned_pool;
    if (pool == nullptr && options.parallel) {
        owned_pool = std::make_unique<exec::thread_pool>(options.jobs);
        pool = owned_pool.get();
    }

    // Memoise evaluations so optimiser revisits of a design point (and
    // concurrent duplicates under the pool) cost one simulation.
    std::optional<cached_evaluator> cache;
    if (options.cache) cache.emplace(evaluator, options.cache_capacity);
    const auto evaluate = [&](const system_config& config,
                              const evaluation_options& eval) {
        return cache ? cache->evaluate(config, eval)
                     : evaluator.evaluate(config, eval);
    };

    // Batched evaluation of `indices` into jobs-like (config, eval) pairs:
    // every index in one call shares the same evaluation options. Chunks
    // fan out over the pool; per-lane results land at their own index, so
    // neither the chunking nor the pool changes any output.
    const auto evaluate_indices =
        [&](exec::thread_pool* run_pool, std::span<const std::size_t> order,
            const auto& config_of, const auto& eval_of, auto& results) {
            const std::size_t n = order.size();
            std::size_t chunk = std::max<std::size_t>(options.batch_width, 1);
            if (run_pool != nullptr && run_pool->size() > 1)
                chunk = std::clamp((n + run_pool->size() - 1) / run_pool->size(),
                                   std::size_t{1}, chunk);
            const std::size_t tasks = (n + chunk - 1) / chunk;
            exec::parallel_for(run_pool, tasks, [&](std::size_t ti) {
                const std::size_t first = ti * chunk;
                const std::size_t count = std::min(chunk, n - first);
                std::vector<system_config> configs;
                configs.reserve(count);
                for (std::size_t j = 0; j < count; ++j)
                    configs.push_back(config_of(order[first + j]));
                const evaluation_options& eval = eval_of(order[first]);
                std::vector<evaluation_result> batch =
                    cache ? cache->evaluate_batch(configs, eval)
                          : evaluator.evaluate_batch(configs, eval);
                for (std::size_t j = 0; j < count; ++j)
                    results[order[first + j]] = std::move(batch[j]);
            });
        };

    flow_result out;
    out.space = paper_design_space();
    const std::size_t k = out.space.dimension();
    if (options.manifest) {
        echo_options(*options.manifest, options, k, pool ? pool->size() : 1);
        const spec::experiment_spec espec = spec_of(evaluator, options);
        options.manifest->set_option("spec", spec::to_json(espec));
        options.manifest->set_option(
            "spec_hash",
            obs::json_value(spec::spec_hash_hex(spec::spec_hash(espec))));
    }

    // 1. Candidate set of the chosen design family (paper default:
    //    d_optimal over the 3^3 = 27-point grid).
    doe::design_request request;
    request.name = options.design;
    request.dimension = k;
    request.runs = options.doe_runs;
    request.factorial_levels = options.factorial_levels;
    request.basis = [](const numeric::vec& x) {
        return rsm::quadratic_basis(x);
    };
    obs_hook.phase("candidates");
    std::vector<numeric::vec> candidates =
        doe::design_candidates(request, options.doe);
    obs_hook.set_phase_items(candidates.size());
    obs_hook.note("candidates: " + std::to_string(candidates.size()) +
                  " grid points");

    // 2. Run selection (the Fedorov exchange for d_optimal; every
    //    candidate for the fixed-shape and sampled families). The phase
    //    carries the design's registry name — "d_optimal" by default,
    //    matching the pre-registry manifests.
    obs_hook.phase(options.design);
    out.design =
        doe::select_design(request, std::move(candidates), options.doe);
    obs_hook.set_phase_items(out.design.selected.size());
    if (options.design == "d_optimal") {
        std::ostringstream msg;
        msg << "d-optimal: selected " << out.design.selected.size() << "/"
            << out.design.candidates.size() << " (log det " << out.design.log_det
            << ")";
        obs_hook.note(msg.str());
    } else {
        std::ostringstream msg;
        msg << "design[" << out.design.name << "]: " << out.design.points.size()
            << " runs";
        obs_hook.note(msg.str());
    }

    // 3. Simulate each selected design point (optionally replicated with
    //    distinct measurement-noise seeds, for pure-error estimation).
    obs_hook.phase("simulate");
    const std::size_t replicates = std::max<std::size_t>(options.replicates, 1);
    struct job {
        numeric::vec coded;
        system_config config;
        evaluation_options eval;
    };
    std::vector<job> jobs;
    for (const numeric::vec& coded : out.design.points) {
        const system_config config = config_from_coded(out.space, coded);
        for (std::size_t rep = 0; rep < replicates; ++rep) {
            evaluation_options eval = options.eval;
            if (replicates > 1)
                eval.controller_seed = options.replicate_seed_base + rep;
            jobs.push_back({coded, config, eval});
        }
    }
    obs_hook.set_phase_items(jobs.size());

    std::vector<evaluation_result> results(jobs.size());
    if (options.batch_width > 1 && jobs.size() > 1) {
        // Jobs are laid out point-major (point p, replicate r at index
        // p * replicates + r) and replicates differ in controller seed, so
        // batch groups are built per replicate: within a group every job
        // shares its evaluation options.
        for (std::size_t rep = 0; rep < replicates; ++rep) {
            std::vector<std::size_t> order;
            for (std::size_t i = rep; i < jobs.size(); i += replicates)
                order.push_back(i);
            evaluate_indices(
                pool, order, [&](std::size_t i) { return jobs[i].config; },
                [&](std::size_t i) -> const evaluation_options& {
                    return jobs[i].eval;
                },
                results);
        }
    } else {
        exec::parallel_for(pool, jobs.size(), [&](std::size_t i) {
            results[i] = evaluate(jobs[i].config, jobs[i].eval);
        });
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        out.design_coded.push_back(jobs[i].coded);
        out.design_configs.push_back(jobs[i].config);
        out.responses.push_back(static_cast<double>(results[i].transmissions));
        obs_hook.sim_run(make_run_record("design_point", i, jobs[i].coded,
                                         jobs[i].config,
                                         jobs[i].eval.controller_seed,
                                         results[i]));
        std::ostringstream msg;
        msg << "run " << i + 1 << "/" << jobs.size() << ": "
            << results[i].transmissions << " tx, " << results[i].ode_steps
            << " ode steps";
        obs_hook.note(msg.str());
    }

    // 4. Fit the chosen surrogate to the responses (paper default: the
    //    least-squares quadratic of eq. 9).
    obs_hook.phase("fit");
    out.fit = surrogate->fit(out.design_coded, out.responses);
    if (options.manifest)
        options.manifest->set_option("fit", out.fit.diagnostics());
    {
        std::ostringstream msg;
        msg << "fit: R^2 = " << out.fit.r_squared;
        obs_hook.note(msg.str());
    }

    // Baseline for Table VI.
    obs_hook.phase("baseline");
    out.original_eval = evaluate(options.baseline, options.eval);
    obs_hook.sim_run(make_run_record(
        "baseline", 0, config_to_coded(out.space, options.baseline),
        options.baseline, options.eval.controller_seed, out.original_eval));

    // 5-6. Maximise the surface and validate each optimum by simulation.
    std::vector<std::shared_ptr<opt::optimizer>> optimizers = options.optimizers;
    if (optimizers.empty()) {
        optimizers.push_back(std::make_shared<opt::simulated_annealing>());
        optimizers.push_back(std::make_shared<opt::genetic_algorithm>());
    }
    const opt::box_bounds bounds = opt::box_bounds::unit(k);
    const opt::objective_fn surface = [&](const numeric::vec& x) {
        return out.fit.surface->predict(x);
    };

    obs_hook.phase("optimise", optimizers.size());
    for (const auto& optimizer : optimizers) {
        numeric::rng rng(options.optimizer_seed);
        obs::stopwatch opt_watch;
        // Lend the pool for batch objective evaluation, and take it back
        // before the (possibly caller-owned) optimiser outlives it.
        optimizer->set_execution(pool);
        opt::opt_result best;
        try {
            best = optimizer->maximize(surface, bounds, rng);
        } catch (...) {
            optimizer->set_execution(nullptr);
            throw;
        }
        optimizer->set_execution(nullptr);

        optimizer_outcome oc;
        oc.name = optimizer->name();
        oc.coded = best.best_x;
        oc.config = config_from_coded(out.space, best.best_x);
        oc.predicted = best.best_value;
        oc.evaluations = best.evaluations;
        oc.details = best;
        oc.optimise_wall_s = opt_watch.seconds();
        {
            std::ostringstream msg;
            msg << "optimise[" << oc.name << "]: " << best.evaluations
                << " evaluations, " << best.iterations << " iterations";
            if (best.acceptance_rate() >= 0.0)
                msg << ", acceptance " << best.acceptance_rate();
            obs_hook.note(msg.str());
        }
        out.outcomes.push_back(std::move(oc));
    }

    obs_hook.phase("validate", out.outcomes.size());
    // Fan the validating simulations out; manifest records and progress
    // notes stay on the calling thread, in outcome order.
    if (options.batch_width > 1 && out.outcomes.size() > 1) {
        std::vector<std::size_t> order(out.outcomes.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::vector<evaluation_result> validated(out.outcomes.size());
        evaluate_indices(
            pool, order,
            [&](std::size_t i) { return out.outcomes[i].config; },
            [&](std::size_t) -> const evaluation_options& {
                return options.eval;
            },
            validated);
        for (std::size_t i = 0; i < out.outcomes.size(); ++i)
            out.outcomes[i].validated = std::move(validated[i]);
    } else {
        exec::parallel_for(pool, out.outcomes.size(), [&](std::size_t i) {
            optimizer_outcome& oc = out.outcomes[i];
            oc.validated = evaluate(oc.config, options.eval);
        });
    }
    for (std::size_t i = 0; i < out.outcomes.size(); ++i) {
        optimizer_outcome& oc = out.outcomes[i];
        obs_hook.sim_run(make_run_record("validation", i, oc.coded, oc.config,
                                         options.eval.controller_seed,
                                         oc.validated));

        obs::optimizer_record rec;
        rec.name = oc.name;
        rec.evaluations = oc.details.evaluations;
        rec.iterations = oc.details.iterations;
        rec.proposed_moves = oc.details.proposed_moves;
        rec.accepted_moves = oc.details.accepted_moves;
        rec.acceptance_rate = oc.details.acceptance_rate();
        rec.converged = oc.details.converged;
        rec.predicted = oc.predicted;
        rec.validated_response = static_cast<double>(oc.validated.transmissions);
        rec.coded.assign(oc.coded.begin(), oc.coded.end());
        rec.wall_s = oc.optimise_wall_s;
        obs_hook.optimizer(std::move(rec));

        std::ostringstream msg;
        msg << "validate[" << oc.name << "]: " << oc.validated.transmissions
            << " tx (predicted " << oc.predicted << ")";
        obs_hook.note(msg.str());
    }
    obs_hook.end_phase();

    if (cache) {
        out.cache = cache->stats();
        if (options.manifest) {
            options.manifest->set_option("cache_hits",
                                         obs::json_value(out.cache.hits));
            options.manifest->set_option("cache_misses",
                                         obs::json_value(out.cache.misses));
            options.manifest->set_option("cache_evictions",
                                         obs::json_value(out.cache.evictions));
            options.manifest->set_option("cache_hit_rate",
                                         obs::json_value(out.cache.hit_rate()));
        }
        std::ostringstream msg;
        msg << "cache: " << out.cache.hits << " hits / " << out.cache.misses
            << " misses";
        obs_hook.note(msg.str());
    }

    return out;
}

flow_result run_rsm_flow(const system_evaluator& evaluator,
                         const flow_options& options) {
    // Fail fast on unknown registry names — before any pool is spun up,
    // manifest line written, or simulation run. Validation failures stay
    // std::invalid_argument; only running phases produce flow_error.
    const std::shared_ptr<rsm::surrogate_model> surrogate =
        rsm::make_surrogate(options.surrogate);
    if (!doe::is_known_design(options.design))
        throw std::invalid_argument("dse::run_rsm_flow: unknown design '" +
                                    options.design + "' (valid: " +
                                    doe::design_names() + ")");

    flow_observer obs_hook(options);
    if (options.manifest) {
        options.manifest->set_tool("ehdse.run_rsm_flow", "");
    }

    try {
        return run_flow_phases(evaluator, options, surrogate, obs_hook);
    } catch (const std::exception& e) {
        std::string phase = obs_hook.current_phase();
        if (phase.empty()) phase = "flow";
        obs_hook.end_phase();
        if (options.manifest) {
            options.manifest->set_option("error",
                                         obs::json_value(std::string(e.what())));
            options.manifest->set_option("error_phase", obs::json_value(phase));
        }
        obs_hook.note("error[" + phase + "]: " + e.what());
        throw flow_error(phase, e.what());
    }
}

flow_options flow_options_from_spec(const spec::experiment_spec& spec,
                                    flow_options runtime) {
    spec.validate();
    runtime.doe_runs = spec.flow.doe_runs;
    runtime.factorial_levels = spec.flow.factorial_levels;
    runtime.design = spec.flow.design;
    runtime.surrogate = spec.flow.surrogate;
    runtime.optimizer_seed = spec.flow.optimizer_seed;
    runtime.eval = spec.eval;
    runtime.baseline = spec.config;
    runtime.replicates = spec.flow.replicates;
    runtime.replicate_seed_base = spec.flow.replicate_seed_base;
    runtime.parallel = spec.flow.parallel;
    runtime.jobs = spec.flow.jobs;
    runtime.cache = spec.flow.cache;
    runtime.cache_capacity = spec.flow.cache_capacity;
    runtime.optimizers.clear();
    for (const std::string& name : spec.flow.optimizers)
        runtime.optimizers.push_back(opt::make_optimizer(name));
    return runtime;
}

flow_result run_rsm_flow(const spec::experiment_spec& spec,
                         const flow_options& runtime) {
    const system_evaluator evaluator(spec.scn, spec.harv);
    return run_rsm_flow(evaluator, flow_options_from_spec(spec, runtime));
}

}  // namespace ehdse::dse
