#include "dse/robustness.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/stats.hpp"

namespace ehdse::dse {

robustness_summary run_robustness_study(const scenario& base,
                                        const system_config& config,
                                        const std::string& label,
                                        const robustness_options& options) {
    robustness_summary out;
    out.label = label;
    out.config = config;

    auto record = [&](const scenario& scn, std::uint64_t seed) {
        system_evaluator evaluator(scn);
        evaluation_options eval;
        eval.controller_seed = seed;
        const auto r = evaluator.evaluate(config, eval);
        out.samples.push_back(static_cast<double>(r.transmissions));
    };

    // Axis 1: measurement-noise seeds at the nominal scenario.
    for (std::uint64_t seed : options.seeds) record(base, seed);

    // Axis 2: excitation amplitude.
    for (double mg : options.accel_levels_mg) {
        scenario scn = base;
        scn.accel_mg = mg;
        record(scn, options.seeds.empty() ? 1 : options.seeds.front());
    }

    // Axis 3: frequency step size.
    for (double step : options.step_sizes_hz) {
        scenario scn = base;
        scn.f_step_hz = step;
        record(scn, options.seeds.empty() ? 1 : options.seeds.front());
    }

    if (!out.samples.empty()) {
        out.mean_tx = numeric::mean(out.samples);
        const auto [lo, hi] = numeric::min_max(out.samples);
        out.min_tx = lo;
        out.max_tx = hi;
        out.stddev_tx = numeric::sample_stddev(out.samples);
    }
    return out;
}

}  // namespace ehdse::dse
