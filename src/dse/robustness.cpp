#include "dse/robustness.hpp"

#include <algorithm>
#include <cmath>

#include "exec/batch.hpp"
#include "numeric/stats.hpp"

namespace ehdse::dse {

robustness_summary run_robustness_study(const scenario& base,
                                        const system_config& config,
                                        const std::string& label,
                                        const robustness_options& options) {
    robustness_summary out;
    out.label = label;
    out.config = config;

    // Enumerate every variant first so the sweep can fan out; sample
    // order matches the sequential axis order either way.
    struct variant {
        scenario scn;
        std::uint64_t seed;
    };
    std::vector<variant> variants;
    const std::uint64_t axis_seed =
        options.seeds.empty() ? 1 : options.seeds.front();

    // Axis 1: measurement-noise seeds at the nominal scenario.
    for (std::uint64_t seed : options.seeds) variants.push_back({base, seed});

    // Axis 2: excitation amplitude.
    for (double mg : options.accel_levels_mg) {
        scenario scn = base;
        scn.accel_mg = mg;
        variants.push_back({scn, axis_seed});
    }

    // Axis 3: frequency step size.
    for (double step : options.step_sizes_hz) {
        scenario scn = base;
        scn.f_step_hz = step;
        variants.push_back({scn, axis_seed});
    }

    out.samples.resize(variants.size());
    exec::parallel_for(options.pool, variants.size(), [&](std::size_t i) {
        system_evaluator evaluator(variants[i].scn);
        evaluation_options eval = options.eval;
        eval.controller_seed = variants[i].seed;
        const auto r = evaluator.evaluate(config, eval);
        out.samples[i] = static_cast<double>(r.transmissions);
    });

    if (!out.samples.empty()) {
        out.mean_tx = numeric::mean(out.samples);
        const auto [lo, hi] = numeric::min_max(out.samples);
        out.min_tx = lo;
        out.max_tx = hi;
        out.stddev_tx = numeric::sample_stddev(out.samples);
    }
    return out;
}

robustness_summary run_robustness_study(const spec::experiment_spec& spec,
                                        const std::string& label,
                                        const robustness_options& options) {
    spec.validate();
    robustness_options opts = options;
    opts.eval = spec.eval;
    return run_robustness_study(spec.scn, spec.config, label, opts);
}

}  // namespace ehdse::dse
