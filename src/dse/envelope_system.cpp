#include "dse/envelope_system.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ehdse::dse {

envelope_system::envelope_system(const harvester::microgenerator& gen,
                                 const harvester::vibration_source& vib,
                                 power::supercapacitor_params cap,
                                 power::rectifier_params rect)
    : envelope_system(gen, vib, std::make_shared<power::supercapacitor>(cap),
                      rect) {}

envelope_system::envelope_system(const harvester::microgenerator& gen,
                                 const harvester::vibration_source& vib,
                                 std::shared_ptr<const power::storage_model> storage,
                                 power::rectifier_params rect)
    : gen_(gen), vib_(vib), storage_(std::move(storage)), rect_(rect) {
    if (!storage_)
        throw std::invalid_argument("envelope_system: null storage");
}

sim::ode_options envelope_system::suggested_ode_options() const {
    sim::ode_options ode;
    ode.abs_tol = 1e-8;   // volts-scale states: ~10 nV step error
    ode.rel_tol = 1e-6;
    ode.initial_dt = 1e-3;
    ode.max_dt = 5.0;     // resolve watchdog/settling dynamics comfortably
    return ode;
}

sim::sim_context& envelope_system::sim() const {
    if (sim_ == nullptr)
        throw std::logic_error("envelope_system: no simulator attached");
    return *sim_;
}

std::vector<double> envelope_system::initial_state(double v0, int initial_position) {
    if (v0 < 0.0)
        throw std::invalid_argument("envelope_system: negative initial voltage");
    position_ = initial_position;
    const harvester::envelope_point pt = operating_point(0.0, v0);
    std::vector<double> x(k_state_count, 0.0);
    x[ix_voltage] = v0;
    x[ix_amplitude] = pt.mech.displacement_amp_m;
    return x;
}

harvester::envelope_point envelope_system::operating_point(double t,
                                                           double store_v) const {
    return harvester::solve_envelope(gen_, position_, vib_.frequency_at(t),
                                     vib_.amplitude_at(t), store_v, rect_);
}

void envelope_system::set_frontend(frontend_kind kind, double efficiency) {
    if (kind == frontend_kind::mppt && !(efficiency > 0.0 && efficiency <= 1.0))
        throw std::invalid_argument(
            "envelope_system: mppt efficiency must be in (0, 1]");
    frontend_ = kind;
    frontend_efficiency_ = efficiency;
}

void envelope_system::derivatives(double t, std::span<const double> x,
                                  std::span<double> dxdt) const {
    const double v = std::max(x[ix_voltage], 0.0);
    const double z_env = std::max(x[ix_amplitude], 0.0);
    const double omega = 2.0 * std::numbers::pi * vib_.frequency_at(t);

    double i_charge = 0.0;
    if (frontend_ == frontend_kind::diode_bridge) {
        const harvester::envelope_point pt = operating_point(t, v);
        // Amplitude envelope relaxes towards the steady state.
        const double tau = gen_.settling_tau(pt.c_electrical);
        dxdt[ix_amplitude] = (pt.mech.displacement_amp_m - z_env) / tau;

        // Charging from the instantaneous envelope amplitude (not the target).
        const double emf = gen_.params().coupling_v_per_ms * omega * z_env;
        const power::rectifier_operating_point op = power::bridge_average(
            emf, v, gen_.params().coil_resistance_ohm, rect_);
        i_charge = op.i_avg_a;
    } else {
        // MPPT front-end: the converter holds the coil at the matched load
        // (c_e = c_mech) regardless of the store voltage, and delivers the
        // extracted mechanical power at the conversion efficiency.
        const double c_match = gen_.mech_damping();
        const harvester::linear_response mech =
            gen_.response(omega, vib_.amplitude_at(t), position_, c_match);
        const double tau = gen_.settling_tau(c_match);
        dxdt[ix_amplitude] = (mech.displacement_amp_m - z_env) / tau;

        const double vel_env = omega * z_env;
        const double p_extracted = 0.5 * c_match * vel_env * vel_env;
        i_charge = v > 0.05 ? frontend_efficiency_ * p_extracted / v : 0.0;
    }

    const double i_loads = loads_.total_current(v);
    dxdt[ix_voltage] = storage_->dv_dt(v, i_charge - i_loads);
    dxdt[ix_harvested] = v * i_charge;
    dxdt[ix_load_energy] = v * i_loads;
}

double envelope_system::storage_voltage() const {
    return sim().state_at(ix_voltage);
}

void envelope_system::withdraw(double joules, const std::string& account) {
    if (joules < 0.0)
        throw std::invalid_argument("envelope_system: negative withdrawal");
    const double v = storage_voltage();
    sim().set_state(ix_voltage, storage_->voltage_after_withdrawal(v, joules));
    ledger_.record(account, joules);
}

void envelope_system::set_sustained_draw(const std::string& account, double amps) {
    auto it = load_slots_.find(account);
    if (it == load_slots_.end())
        it = load_slots_.emplace(account, loads_.add_load(account)).first;
    loads_.set_current(it->second, amps);
}

void envelope_system::set_position(int position) {
    if (position < 0 || position >= harvester::microgenerator_params::k_position_count)
        throw std::out_of_range("envelope_system: actuator position outside [0,255]");
    position_ = position;
}

double envelope_system::vibration_frequency() const {
    return vib_.frequency_at(sim().now());
}

double envelope_system::phase_lag() const {
    const double t = sim().now();
    const double v = storage_voltage();
    const harvester::envelope_point pt = operating_point(t, v);
    const double omega = 2.0 * std::numbers::pi * vib_.frequency_at(t);
    const double k = gen_.effective_stiffness(position_);
    const double m = gen_.params().mass_kg;
    const double c_total = gen_.mech_damping() + pt.c_electrical;
    return std::atan2(c_total * omega, k - m * omega * omega);
}

}  // namespace ehdse::dse
