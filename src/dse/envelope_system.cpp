#include "dse/envelope_system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harvester/electromagnetic.hpp"

namespace ehdse::dse {

harvester::conditioning_kind conditioning_of(frontend_kind kind) noexcept {
    return kind == frontend_kind::mppt
               ? harvester::conditioning_kind::mppt
               : harvester::conditioning_kind::diode_bridge;
}

envelope_system::envelope_system(const harvester::harvester_model& model,
                                 const harvester::vibration_source& vib,
                                 power::supercapacitor_params cap,
                                 power::rectifier_params rect)
    : envelope_system(model, vib, std::make_shared<power::supercapacitor>(cap),
                      rect) {}

envelope_system::envelope_system(const harvester::harvester_model& model,
                                 const harvester::vibration_source& vib,
                                 std::shared_ptr<const power::storage_model> storage,
                                 power::rectifier_params rect)
    : model_(&model), vib_(vib), storage_(std::move(storage)), rect_(rect) {
    if (!storage_)
        throw std::invalid_argument("envelope_system: null storage");
}

envelope_system::envelope_system(const harvester::microgenerator& gen,
                                 const harvester::vibration_source& vib,
                                 power::supercapacitor_params cap,
                                 power::rectifier_params rect)
    : envelope_system(gen, vib, std::make_shared<power::supercapacitor>(cap),
                      rect) {}

envelope_system::envelope_system(const harvester::microgenerator& gen,
                                 const harvester::vibration_source& vib,
                                 std::shared_ptr<const power::storage_model> storage,
                                 power::rectifier_params rect)
    : owned_model_(std::make_unique<harvester::electromagnetic_harvester>(
          gen.params())),
      model_(owned_model_.get()),
      vib_(vib),
      storage_(std::move(storage)),
      rect_(rect) {
    if (!storage_)
        throw std::invalid_argument("envelope_system: null storage");
}

sim::ode_options envelope_system::suggested_ode_options() const {
    sim::ode_options ode;
    ode.abs_tol = 1e-8;   // volts-scale states: ~10 nV step error
    ode.rel_tol = 1e-6;
    ode.initial_dt = 1e-3;
    ode.max_dt = 5.0;     // resolve watchdog/settling dynamics comfortably
    return ode;
}

sim::sim_context& envelope_system::sim() const {
    if (sim_ == nullptr)
        throw std::logic_error("envelope_system: no simulator attached");
    return *sim_;
}

std::vector<double> envelope_system::initial_state(double v0, int initial_position) {
    if (v0 < 0.0)
        throw std::invalid_argument("envelope_system: negative initial voltage");
    position_ = initial_position;
    std::vector<double> x(k_state_count, 0.0);
    x[ix_voltage] = v0;
    x[ix_amplitude] = model_->initial_amplitude(vib_.frequency_at(0.0),
                                                vib_.amplitude_at(0.0),
                                                position_, v0, rect_);
    return x;
}

void envelope_system::set_frontend(frontend_kind kind, double efficiency) {
    if (kind == frontend_kind::mppt && !(efficiency > 0.0 && efficiency <= 1.0))
        throw std::invalid_argument(
            "envelope_system: mppt efficiency must be in (0, 1]");
    frontend_ = kind;
    frontend_efficiency_ = efficiency;
}

void envelope_system::derivatives(double t, std::span<const double> x,
                                  std::span<double> dxdt) const {
    const double v = std::max(x[ix_voltage], 0.0);
    const double z_env = std::max(x[ix_amplitude], 0.0);

    const harvester::envelope_rates rates = model_->envelope_dynamics(
        vib_.frequency_at(t), vib_.amplitude_at(t), position_, v, z_env,
        conditioning_of(frontend_), frontend_efficiency_, rect_);
    dxdt[ix_amplitude] = rates.amplitude_rate;
    const double i_charge = rates.charge_current_a;

    const double i_loads = loads_.total_current(v);
    dxdt[ix_voltage] = storage_->dv_dt(v, i_charge - i_loads);
    dxdt[ix_harvested] = v * i_charge;
    dxdt[ix_load_energy] = v * i_loads;
}

double envelope_system::storage_voltage() const {
    return sim().state_at(ix_voltage);
}

void envelope_system::withdraw(double joules, const std::string& account) {
    if (joules < 0.0)
        throw std::invalid_argument("envelope_system: negative withdrawal");
    const double v = storage_voltage();
    sim().set_state(ix_voltage, storage_->voltage_after_withdrawal(v, joules));
    ledger_.record(account, joules);
}

void envelope_system::set_sustained_draw(const std::string& account, double amps) {
    auto it = load_slots_.find(account);
    if (it == load_slots_.end())
        it = load_slots_.emplace(account, loads_.add_load(account)).first;
    loads_.set_current(it->second, amps);
}

void envelope_system::set_position(int position) {
    if (position < 0 || position >= model_->position_count())
        throw std::out_of_range("envelope_system: actuator position outside [0,255]");
    position_ = position;
}

double envelope_system::vibration_frequency() const {
    return vib_.frequency_at(sim().now());
}

double envelope_system::phase_lag() const {
    const double t = sim().now();
    const double v = storage_voltage();
    return model_->phase_lag(vib_.frequency_at(t), vib_.amplitude_at(t),
                             position_, v, rect_);
}

}  // namespace ehdse::dse
