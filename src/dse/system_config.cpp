#include "dse/system_config.hpp"

namespace ehdse::dse {

rsm::design_space paper_design_space() {
    return rsm::design_space({
        {"mcu_clock_hz", 125e3, 8e6, rsm::axis_scale::linear},
        {"watchdog_period_s", 60.0, 600.0, rsm::axis_scale::linear},
        {"tx_interval_s", 0.005, 10.0, rsm::axis_scale::linear},
    });
}

system_config config_from_coded(const rsm::design_space& space,
                                const numeric::vec& coded) {
    return system_config::from_vector(space.decode(coded));
}

numeric::vec config_to_coded(const rsm::design_space& space,
                             const system_config& config) {
    return space.code(config.to_vector());
}

}  // namespace ehdse::dse
