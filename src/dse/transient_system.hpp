// The complete sensor-node system over the FULL nonlinear transient model
// — same digital processes, same plant interface as envelope_system, but
// the analogue side resolves every vibration cycle and every conditioning-
// circuit switching event. The per-cycle ODE system comes from the
// harvester_model registry entry (harvester_model::make_transient).
//
// Roughly 5000x slower than the envelope plant (tens of milliseconds of
// wall clock per simulated minute), so it serves validation
// (bench_ablation_fidelity) and short-window studies rather than the DOE.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "dse/node_system.hpp"
#include "harvester/harvester_model.hpp"
#include "harvester/microgenerator.hpp"
#include "harvester/plant.hpp"
#include "harvester/vibration.hpp"
#include "power/energy_ledger.hpp"
#include "power/load_bank.hpp"
#include "power/supercapacitor.hpp"
#include "sim/simulator.hpp"

namespace ehdse::dse {

class transient_system final : public node_system {
public:
    /// `model` and `vib` must outlive the system. Storage defaults to the
    /// paper's supercapacitor built from `cap`.
    transient_system(const harvester::harvester_model& model,
                     const harvester::vibration_source& vib,
                     power::supercapacitor_params cap = {},
                     power::rectifier_params rect = {});

    /// Same, with an explicit storage element (e.g. a thin-film battery).
    transient_system(const harvester::harvester_model& model,
                     const harvester::vibration_source& vib,
                     std::shared_ptr<const power::storage_model> storage,
                     power::rectifier_params rect = {});

    /// Pre-registry spellings: wrap `gen` in an owned electromagnetic
    /// backend (the microgenerator is copied by parameter set).
    transient_system(const harvester::microgenerator& gen,
                     const harvester::vibration_source& vib,
                     power::supercapacitor_params cap = {},
                     power::rectifier_params rect = {});
    transient_system(const harvester::microgenerator& gen,
                     const harvester::vibration_source& vib,
                     std::shared_ptr<const power::storage_model> storage,
                     power::rectifier_params rect = {});

    // --- node_system ---
    void attach(sim::sim_context& sim) override { sim_ = &sim; }

    /// Initial state: mass at rest, store at v0, actuator at the position.
    std::vector<double> initial_state(double v0, int initial_position) override;

    /// Tight tolerances and an initial/maximum step resolving the fastest
    /// resonance. The transient models fold sustained loads into dV/dt
    /// directly, so states() reports no separate load-energy index.
    sim::ode_options suggested_ode_options() const override;

    state_map states() const override;

    /// Integrator ceiling that resolves the fastest resonance.
    double suggested_max_dt() const;

    // --- analog_system (delegated to the model's transient RHS) ---
    std::size_t state_size() const override { return rhs_->state_size(); }
    void derivatives(double t, std::span<const double> x,
                     std::span<double> dxdt) const override {
        rhs_->derivatives(t, x, dxdt);
    }

    // --- plant ---
    double storage_voltage() const override;
    void withdraw(double joules, const std::string& account) override;
    void set_sustained_draw(const std::string& account, double amps) override;
    int position() const override { return rhs_->position(); }
    void set_position(int position) override { rhs_->set_position(position); }
    double vibration_frequency() const override;
    double phase_lag() const override;

    const power::energy_ledger& ledger() const noexcept override {
        return ledger_;
    }
    const harvester::harvester_model& model() const noexcept { return *model_; }

private:
    sim::sim_context& sim() const;

    std::unique_ptr<const harvester::harvester_model> owned_model_;
    const harvester::harvester_model* model_;
    const harvester::vibration_source& vib_;
    std::shared_ptr<const power::storage_model> storage_;
    power::rectifier_params rect_;
    power::load_bank loads_;
    std::unique_ptr<harvester::transient_rhs> rhs_;
    std::unordered_map<std::string, power::load_id> load_slots_;
    power::energy_ledger ledger_;
    sim::sim_context* sim_ = nullptr;
};

}  // namespace ehdse::dse
