// Markdown report generation for a completed RSM flow — the artefact a
// user hands around after a study: the design, the runs, the surface, the
// optimisation outcome, and (when the design is over-determined) the
// statistical assessment.
#pragma once

#include <ostream>
#include <string>

#include "dse/rsm_flow.hpp"

namespace ehdse::dse {

struct report_options {
    std::string title = "Response-surface design-space exploration report";
    bool include_design_table = true;
    bool include_fit = true;
    bool include_anova = true;       ///< only rendered when n > terms
    bool include_sensitivity = true;
    bool include_outcomes = true;
};

/// Render the flow result as a Markdown document.
void write_report(std::ostream& os, const flow_result& flow,
                  const report_options& options = {});

/// Convenience: render to a string.
std::string report_to_string(const flow_result& flow,
                             const report_options& options = {});

}  // namespace ehdse::dse
