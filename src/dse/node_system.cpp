#include "dse/node_system.hpp"

#include "dse/envelope_system.hpp"
#include "dse/transient_system.hpp"

namespace ehdse::dse {

std::unique_ptr<node_system> make_node_system(
    const spec::evaluation_options& options,
    const harvester::harvester_model& model,
    const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    const power::supercapacitor_params& cap,
    const power::rectifier_params& rect) {
    if (options.model == spec::fidelity::transient) {
        return storage
                   ? std::make_unique<transient_system>(model, vib,
                                                        std::move(storage), rect)
                   : std::make_unique<transient_system>(model, vib, cap, rect);
    }
    auto system =
        storage ? std::make_unique<envelope_system>(model, vib, std::move(storage),
                                                    rect)
                : std::make_unique<envelope_system>(model, vib, cap, rect);
    system->set_frontend(options.frontend, options.frontend_efficiency);
    return system;
}

std::unique_ptr<node_system> make_node_system(
    const spec::evaluation_options& options,
    const harvester::microgenerator& gen,
    const harvester::vibration_source& vib,
    std::shared_ptr<const power::storage_model> storage,
    const power::supercapacitor_params& cap,
    const power::rectifier_params& rect) {
    if (options.model == spec::fidelity::transient) {
        return storage
                   ? std::make_unique<transient_system>(gen, vib,
                                                        std::move(storage), rect)
                   : std::make_unique<transient_system>(gen, vib, cap, rect);
    }
    auto system =
        storage ? std::make_unique<envelope_system>(gen, vib, std::move(storage),
                                                    rect)
                : std::make_unique<envelope_system>(gen, vib, cap, rect);
    system->set_frontend(options.frontend, options.frontend_efficiency);
    return system;
}

}  // namespace ehdse::dse
