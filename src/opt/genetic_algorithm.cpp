#include "opt/genetic_algorithm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ehdse::opt {

namespace {

struct individual {
    numeric::vec genes;
    double fitness = 0.0;
};

/// Non-finite objective values (NaN harvest, failed run) become -inf so the
/// sort/max_element comparators keep a strict weak ordering and a faulty
/// individual can never win a tournament against any finite one.
double sanitize_fitness(double v) {
    return std::isfinite(v) ? v : -std::numeric_limits<double>::infinity();
}

std::size_t tournament_pick(const std::vector<individual>& pop,
                            std::size_t tournament_size, numeric::rng& rng) {
    std::size_t best = rng.uniform_index(pop.size());
    for (std::size_t t = 1; t < tournament_size; ++t) {
        const std::size_t challenger = rng.uniform_index(pop.size());
        if (pop[challenger].fitness > pop[best].fitness) best = challenger;
    }
    return best;
}

}  // namespace

opt_result genetic_algorithm::maximize(const objective_fn& f,
                                       const box_bounds& bounds,
                                       numeric::rng& rng) const {
    bounds.validate();
    if (opt_.population < 2)
        throw std::invalid_argument("genetic_algorithm: population must be >= 2");
    if (opt_.elite_count >= opt_.population)
        throw std::invalid_argument("genetic_algorithm: elite count >= population");
    const std::size_t k = bounds.dimension();

    opt_result out;
    out.algorithm = name();

    // Draw the whole initial population first, then evaluate as one batch
    // (through the attached pool, if any). Evaluations never touch the
    // rng, so this is bit-identical to the evaluate-as-you-draw order.
    std::vector<individual> pop(opt_.population);
    {
        std::vector<numeric::vec> genes(opt_.population);
        for (auto& g : genes) g = bounds.random_point(rng);
        const std::vector<double> fitness = evaluate_all(f, genes);
        for (std::size_t i = 0; i < pop.size(); ++i) {
            pop[i].genes = std::move(genes[i]);
            pop[i].fitness = sanitize_fitness(fitness[i]);
            ++out.evaluations;
        }
    }

    auto best_it = std::max_element(
        pop.begin(), pop.end(),
        [](const individual& a, const individual& b) { return a.fitness < b.fitness; });
    out.best_x = best_it->genes;
    out.best_value = best_it->fitness;

    std::size_t stall = 0;
    for (std::size_t gen = 0; gen < opt_.generations; ++gen) {
        ++out.iterations;

        // Elitism: carry the best individuals over unchanged.
        std::sort(pop.begin(), pop.end(), [](const individual& a, const individual& b) {
            return a.fitness > b.fitness;
        });
        std::vector<individual> next(pop.begin(),
                                     pop.begin() + static_cast<std::ptrdiff_t>(opt_.elite_count));
        next.reserve(opt_.population);

        // Breed every child gene first, then batch-evaluate the brood.
        std::vector<numeric::vec> brood;
        brood.reserve(opt_.population - next.size());
        while (next.size() + brood.size() < opt_.population) {
            const individual& pa = pop[tournament_pick(pop, opt_.tournament_size, rng)];
            const individual& pb = pop[tournament_pick(pop, opt_.tournament_size, rng)];

            numeric::vec genes(k);
            if (rng.bernoulli(opt_.crossover_prob)) {
                // BLX-alpha: sample each gene from the expanded parent interval.
                for (std::size_t i = 0; i < k; ++i) {
                    const double lo = std::min(pa.genes[i], pb.genes[i]);
                    const double hi = std::max(pa.genes[i], pb.genes[i]);
                    const double pad = opt_.blx_alpha * (hi - lo);
                    genes[i] = rng.uniform(lo - pad, hi + pad);
                }
            } else {
                genes = pa.genes;
            }
            for (std::size_t i = 0; i < k; ++i)
                if (rng.bernoulli(opt_.mutation_prob))
                    genes[i] +=
                        rng.normal(0.0, opt_.mutation_sigma_fraction * bounds.width(i));
            brood.push_back(bounds.clamp(std::move(genes)));
        }
        const std::vector<double> brood_fitness = evaluate_all(f, brood);
        for (std::size_t i = 0; i < brood.size(); ++i) {
            next.push_back(individual{std::move(brood[i]), sanitize_fitness(brood_fitness[i])});
            ++out.evaluations;
        }
        pop = std::move(next);

        const auto gen_best = std::max_element(
            pop.begin(), pop.end(),
            [](const individual& a, const individual& b) { return a.fitness < b.fitness; });
        out.trajectory.push_back(std::max(out.best_value, gen_best->fitness));
        if (gen_best->fitness > out.best_value + opt_.stall_tolerance) {
            out.best_value = gen_best->fitness;
            out.best_x = gen_best->genes;
            stall = 0;
        } else {
            ++stall;
            if (stall >= opt_.stall_generations) {
                out.converged = true;
                break;
            }
        }
    }
    return out;
}

}  // namespace ehdse::opt
