#include "opt/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/batch.hpp"
#include "opt/genetic_algorithm.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/pattern_search.hpp"
#include "opt/simulated_annealing.hpp"
#include "opt/swarm.hpp"

namespace ehdse::opt {

namespace {

using factory_fn = std::shared_ptr<optimizer> (*)();

struct optimizer_entry {
    optimizer_info info;
    factory_fn make;
};

template <class T>
std::shared_ptr<optimizer> make_default() {
    return std::make_shared<T>();
}

const std::vector<optimizer_entry>& entries() {
    static const std::vector<optimizer_entry> table = {
        {{"simulated-annealing",
          "Metropolis annealing with geometric cooling (paper Table VI)"},
         &make_default<simulated_annealing>},
        {{"genetic-algorithm",
          "real-coded GA: tournament selection, blend crossover (paper Table VI)"},
         &make_default<genetic_algorithm>},
        {{"nelder-mead", "derivative-free downhill simplex with restarts"},
         &make_default<nelder_mead>},
        {{"pattern-search", "coordinate pattern search with shrinking mesh"},
         &make_default<pattern_search>},
        {{"random-search", "uniform random sampling baseline"},
         &make_default<random_search>},
        {{"particle-swarm", "global-best particle swarm"},
         &make_default<particle_swarm>},
        {{"differential-evolution", "DE/rand/1/bin differential evolution"},
         &make_default<differential_evolution>},
    };
    return table;
}

}  // namespace

const std::vector<optimizer_info>& optimizer_registry() {
    static const std::vector<optimizer_info> infos = [] {
        std::vector<optimizer_info> out;
        for (const optimizer_entry& e : entries()) out.push_back(e.info);
        return out;
    }();
    return infos;
}

bool is_known_optimizer(std::string_view name) {
    for (const optimizer_entry& e : entries())
        if (e.info.name == name) return true;
    return false;
}

std::string optimizer_names() {
    std::string out;
    for (const optimizer_entry& e : entries()) {
        if (!out.empty()) out += ", ";
        out += e.info.name;
    }
    return out;
}

std::shared_ptr<optimizer> make_optimizer(std::string_view name) {
    for (const optimizer_entry& e : entries())
        if (e.info.name == name) return e.make();
    throw std::invalid_argument("opt::make_optimizer: unknown optimizer '" +
                                std::string(name) + "' (valid: " +
                                optimizer_names() + ")");
}

std::vector<double> optimizer::evaluate_all(
    const objective_fn& f, const std::vector<numeric::vec>& xs) const {
    std::vector<double> values(xs.size());
    exec::parallel_for(pool_, xs.size(),
                       [&](std::size_t i) { values[i] = f(xs[i]); });
    return values;
}

box_bounds box_bounds::unit(std::size_t k) {
    return {numeric::vec(k, -1.0), numeric::vec(k, 1.0)};
}

void box_bounds::validate() const {
    if (lo.size() != hi.size() || lo.empty())
        throw std::invalid_argument("box_bounds: malformed bounds");
    for (std::size_t i = 0; i < lo.size(); ++i)
        if (!(lo[i] < hi[i]))
            throw std::invalid_argument("box_bounds: lo must be < hi on every axis");
}

numeric::vec box_bounds::clamp(numeric::vec x) const {
    if (x.size() != lo.size())
        throw std::invalid_argument("box_bounds::clamp: dimension mismatch");
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::clamp(x[i], lo[i], hi[i]);
    return x;
}

bool box_bounds::contains(const numeric::vec& x, double tol) const {
    if (x.size() != lo.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i)
        if (x[i] < lo[i] - tol || x[i] > hi[i] + tol) return false;
    return true;
}

numeric::vec box_bounds::random_point(numeric::rng& rng) const {
    numeric::vec x(lo.size());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform(lo[i], hi[i]);
    return x;
}

}  // namespace ehdse::opt
