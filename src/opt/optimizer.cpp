#include "opt/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/batch.hpp"
#include "opt/genetic_algorithm.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/pattern_search.hpp"
#include "opt/simulated_annealing.hpp"
#include "opt/swarm.hpp"

namespace ehdse::opt {

std::shared_ptr<optimizer> make_optimizer(std::string_view name) {
    if (name == "simulated-annealing")
        return std::make_shared<simulated_annealing>();
    if (name == "genetic-algorithm") return std::make_shared<genetic_algorithm>();
    if (name == "nelder-mead") return std::make_shared<nelder_mead>();
    if (name == "pattern-search") return std::make_shared<pattern_search>();
    if (name == "random-search") return std::make_shared<random_search>();
    if (name == "particle-swarm") return std::make_shared<particle_swarm>();
    if (name == "differential-evolution")
        return std::make_shared<differential_evolution>();
    throw std::invalid_argument("opt::make_optimizer: unknown optimizer '" +
                                std::string(name) + "'");
}

std::vector<double> optimizer::evaluate_all(
    const objective_fn& f, const std::vector<numeric::vec>& xs) const {
    std::vector<double> values(xs.size());
    exec::parallel_for(pool_, xs.size(),
                       [&](std::size_t i) { values[i] = f(xs[i]); });
    return values;
}

box_bounds box_bounds::unit(std::size_t k) {
    return {numeric::vec(k, -1.0), numeric::vec(k, 1.0)};
}

void box_bounds::validate() const {
    if (lo.size() != hi.size() || lo.empty())
        throw std::invalid_argument("box_bounds: malformed bounds");
    for (std::size_t i = 0; i < lo.size(); ++i)
        if (!(lo[i] < hi[i]))
            throw std::invalid_argument("box_bounds: lo must be < hi on every axis");
}

numeric::vec box_bounds::clamp(numeric::vec x) const {
    if (x.size() != lo.size())
        throw std::invalid_argument("box_bounds::clamp: dimension mismatch");
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::clamp(x[i], lo[i], hi[i]);
    return x;
}

bool box_bounds::contains(const numeric::vec& x, double tol) const {
    if (x.size() != lo.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i)
        if (x[i] < lo[i] - tol || x[i] > hi[i] + tol) return false;
    return true;
}

numeric::vec box_bounds::random_point(numeric::rng& rng) const {
    numeric::vec x(lo.size());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform(lo[i], hi[i]);
    return x;
}

}  // namespace ehdse::opt
