#include "opt/pattern_search.hpp"

#include <algorithm>
#include <limits>

namespace ehdse::opt {

opt_result pattern_search::maximize(const objective_fn& f,
                                    const box_bounds& bounds,
                                    numeric::rng& rng) const {
    bounds.validate();
    const std::size_t k = bounds.dimension();

    opt_result out;
    out.algorithm = name();
    out.best_value = -std::numeric_limits<double>::infinity();

    for (std::size_t restart = 0; restart < opt_.restarts; ++restart) {
        numeric::vec x = bounds.random_point(rng);
        double fx = f(x);
        ++out.evaluations;
        double step = opt_.initial_step_fraction;

        for (std::size_t it = 0; it < opt_.max_iterations; ++it) {
            ++out.iterations;
            bool improved = false;
            // Poll +- step along every axis, accepting the first improvement.
            for (std::size_t i = 0; i < k && !improved; ++i) {
                for (const double dir : {1.0, -1.0}) {
                    numeric::vec y = x;
                    y[i] = std::clamp(y[i] + dir * step * bounds.width(i),
                                      bounds.lo[i], bounds.hi[i]);
                    if (y[i] == x[i]) continue;
                    const double fy = f(y);
                    ++out.evaluations;
                    if (fy > fx) {
                        x = std::move(y);
                        fx = fy;
                        improved = true;
                        break;
                    }
                }
            }
            if (!improved) {
                step *= opt_.contraction;
                if (step < opt_.min_step_fraction) {
                    out.converged = true;
                    break;
                }
            }
        }
        if (fx > out.best_value) {
            out.best_value = fx;
            out.best_x = x;
        }
    }
    return out;
}

opt_result random_search::maximize(const objective_fn& f, const box_bounds& bounds,
                                   numeric::rng& rng) const {
    bounds.validate();
    opt_result out;
    out.algorithm = name();
    out.best_value = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < opt_.evaluations; ++i) {
        numeric::vec x = bounds.random_point(rng);
        const double fx = f(x);
        ++out.evaluations;
        ++out.iterations;
        if (fx > out.best_value) {
            out.best_value = fx;
            out.best_x = std::move(x);
        }
    }
    out.converged = true;
    return out;
}

}  // namespace ehdse::opt
