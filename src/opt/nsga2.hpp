// NSGA-II multi-objective optimiser (Deb et al. 2002): fast non-dominated
// sorting, crowding-distance diversity, binary tournament on (rank,
// crowding), BLX crossover and gaussian mutation.
//
// Extension beyond the paper's single-objective flow: a deployed node
// cares about more than the hourly transmission count — e.g. the energy
// left in the store at the end of the horizon (resilience against a lull).
// All objectives are MAXIMISED.
#pragma once

#include <functional>
#include <vector>

#include "opt/optimizer.hpp"

namespace ehdse::opt {

/// Vector objective: returns one value per objective (all maximised).
using multi_objective_fn =
    std::function<numeric::vec(const numeric::vec&)>;

/// One solution on (an approximation of) the Pareto front.
struct pareto_point {
    numeric::vec x;
    numeric::vec objectives;
};

struct nsga2_options {
    std::size_t population = 80;   ///< even number
    std::size_t generations = 120;
    double crossover_prob = 0.9;
    double blx_alpha = 0.3;
    double mutation_prob = 0.15;          ///< per gene
    double mutation_sigma_fraction = 0.1; ///< of box width
};

/// True when `a` Pareto-dominates `b` (>= everywhere, > somewhere).
bool dominates(const numeric::vec& a, const numeric::vec& b);

/// Fast non-dominated sort: returns front index (0 = best) per point.
std::vector<std::size_t> non_dominated_sort(
    const std::vector<numeric::vec>& objectives);

class nsga2 {
public:
    explicit nsga2(nsga2_options options = {}) : opt_(options) {}

    /// Run the optimiser; returns the final population's first front,
    /// sorted by the first objective. `objective_count` must match the
    /// size of the vectors `f` returns.
    std::vector<pareto_point> optimize(const multi_objective_fn& f,
                                       std::size_t objective_count,
                                       const box_bounds& bounds,
                                       numeric::rng& rng) const;

    /// Attach a pool for batch objective evaluation (same contract as
    /// optimizer::set_execution: non-owning, objective must be
    /// thread-safe while attached; results are identical either way).
    void set_execution(exec::thread_pool* pool) noexcept { pool_ = pool; }
    exec::thread_pool* execution() const noexcept { return pool_; }

private:
    nsga2_options opt_;
    exec::thread_pool* pool_ = nullptr;
};

}  // namespace ehdse::opt
