// Nelder–Mead downhill simplex (maximising variant) with box clamping and
// random multistart — a derivative-free local baseline for the optimiser
// ablation bench.
#pragma once

#include "opt/optimizer.hpp"

namespace ehdse::opt {

struct nm_options {
    std::size_t restarts = 8;         ///< random multistart count
    std::size_t max_iterations = 500; ///< per start
    double initial_scale = 0.25;      ///< initial simplex edge, fraction of box
    double tolerance = 1e-10;         ///< simplex value-spread stop
    double reflection = 1.0;
    double expansion = 2.0;
    double contraction = 0.5;
    double shrink = 0.5;
};

class nelder_mead final : public optimizer {
public:
    explicit nelder_mead(nm_options options = {}) : opt_(options) {}

    std::string name() const override { return "nelder-mead"; }

    opt_result maximize(const objective_fn& f, const box_bounds& bounds,
                        numeric::rng& rng) const override;

private:
    nm_options opt_;
};

}  // namespace ehdse::opt
