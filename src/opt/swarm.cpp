#include "opt/swarm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ehdse::opt {

opt_result particle_swarm::maximize(const objective_fn& f,
                                    const box_bounds& bounds,
                                    numeric::rng& rng) const {
    bounds.validate();
    if (opt_.particles < 2)
        throw std::invalid_argument("particle_swarm: need at least 2 particles");
    const std::size_t k = bounds.dimension();

    opt_result out;
    out.algorithm = name();

    struct particle {
        numeric::vec x, v, best_x;
        double best_value;
    };
    std::vector<particle> swarm(opt_.particles);
    out.best_value = -std::numeric_limits<double>::infinity();

    std::vector<double> v_max(k);
    for (std::size_t i = 0; i < k; ++i)
        v_max[i] = opt_.max_velocity_fraction * bounds.width(i);

    std::vector<numeric::vec> positions(opt_.particles);
    {
        for (std::size_t pi = 0; pi < swarm.size(); ++pi) {
            particle& p = swarm[pi];
            p.x = bounds.random_point(rng);
            p.v.resize(k);
            for (std::size_t i = 0; i < k; ++i)
                p.v[i] = rng.uniform(-v_max[i], v_max[i]);
            p.best_x = p.x;
            positions[pi] = p.x;
        }
        const std::vector<double> values = evaluate_all(f, positions);
        for (std::size_t pi = 0; pi < swarm.size(); ++pi) {
            particle& p = swarm[pi];
            p.best_value = values[pi];
            ++out.evaluations;
            if (p.best_value > out.best_value) {
                out.best_value = p.best_value;
                out.best_x = p.x;
            }
        }
    }

    std::size_t stall = 0;
    for (std::size_t it = 0; it < opt_.iterations; ++it) {
        ++out.iterations;
        const double before = out.best_value;
        // Synchronous gbest update: every velocity draw this iteration
        // sees the same iteration-start global best, so the whole swarm
        // can be moved first and evaluated as one batch.
        const numeric::vec gbest = out.best_x;
        for (std::size_t pi = 0; pi < swarm.size(); ++pi) {
            particle& p = swarm[pi];
            for (std::size_t i = 0; i < k; ++i) {
                p.v[i] = opt_.inertia * p.v[i] +
                         opt_.cognitive * rng.uniform() * (p.best_x[i] - p.x[i]) +
                         opt_.social * rng.uniform() * (gbest[i] - p.x[i]);
                p.v[i] = std::clamp(p.v[i], -v_max[i], v_max[i]);
                p.x[i] = std::clamp(p.x[i] + p.v[i], bounds.lo[i], bounds.hi[i]);
            }
            positions[pi] = p.x;
        }
        const std::vector<double> values = evaluate_all(f, positions);
        for (std::size_t pi = 0; pi < swarm.size(); ++pi) {
            particle& p = swarm[pi];
            const double value = values[pi];
            ++out.evaluations;
            if (value > p.best_value) {
                p.best_value = value;
                p.best_x = p.x;
                if (value > out.best_value) {
                    out.best_value = value;
                    out.best_x = p.x;
                }
            }
        }
        if (out.best_value > before + opt_.stall_tolerance) {
            stall = 0;
        } else if (++stall >= opt_.stall_iterations) {
            out.converged = true;
            break;
        }
    }
    return out;
}

opt_result differential_evolution::maximize(const objective_fn& f,
                                            const box_bounds& bounds,
                                            numeric::rng& rng) const {
    bounds.validate();
    if (opt_.population < 4)
        throw std::invalid_argument("differential_evolution: need population >= 4");
    const std::size_t k = bounds.dimension();
    const std::size_t np = opt_.population;

    opt_result out;
    out.algorithm = name();
    out.best_value = -std::numeric_limits<double>::infinity();

    std::vector<numeric::vec> pop(np);
    std::vector<double> value(np);
    for (std::size_t i = 0; i < np; ++i) pop[i] = bounds.random_point(rng);
    value = evaluate_all(f, pop);
    for (std::size_t i = 0; i < np; ++i) {
        ++out.evaluations;
        if (value[i] > out.best_value) {
            out.best_value = value[i];
            out.best_x = pop[i];
        }
    }

    std::size_t stall = 0;
    std::vector<numeric::vec> trials(np);
    for (std::size_t gen = 0; gen < opt_.generations; ++gen) {
        ++out.iterations;
        const double before = out.best_value;
        // Synchronous generation: every trial is bred from the
        // generation-start population, then all trials are evaluated as
        // one batch before any selection replaces a member.
        for (std::size_t i = 0; i < np; ++i) {
            // DE/rand/1: three distinct donors, none equal to i.
            std::size_t a, b, c;
            do { a = rng.uniform_index(np); } while (a == i);
            do { b = rng.uniform_index(np); } while (b == i || b == a);
            do { c = rng.uniform_index(np); } while (c == i || c == a || c == b);

            numeric::vec trial = pop[i];
            const std::size_t forced = rng.uniform_index(k);
            for (std::size_t d = 0; d < k; ++d) {
                if (d == forced || rng.uniform() < opt_.crossover_prob) {
                    const double mutant =
                        pop[a][d] +
                        opt_.differential_weight * (pop[b][d] - pop[c][d]);
                    trial[d] = std::clamp(mutant, bounds.lo[d], bounds.hi[d]);
                }
            }
            trials[i] = std::move(trial);
        }
        const std::vector<double> trial_values = evaluate_all(f, trials);
        for (std::size_t i = 0; i < np; ++i) {
            ++out.evaluations;
            if (trial_values[i] >= value[i]) {
                pop[i] = std::move(trials[i]);
                value[i] = trial_values[i];
                if (trial_values[i] > out.best_value) {
                    out.best_value = trial_values[i];
                    out.best_x = pop[i];
                }
            }
        }
        if (out.best_value > before + opt_.stall_tolerance) {
            stall = 0;
        } else if (++stall >= opt_.stall_generations) {
            out.converged = true;
            break;
        }
    }
    return out;
}

}  // namespace ehdse::opt
