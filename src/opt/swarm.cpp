#include "opt/swarm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ehdse::opt {

opt_result particle_swarm::maximize(const objective_fn& f,
                                    const box_bounds& bounds,
                                    numeric::rng& rng) const {
    bounds.validate();
    if (opt_.particles < 2)
        throw std::invalid_argument("particle_swarm: need at least 2 particles");
    const std::size_t k = bounds.dimension();

    opt_result out;
    out.algorithm = name();

    struct particle {
        numeric::vec x, v, best_x;
        double best_value;
    };
    std::vector<particle> swarm(opt_.particles);
    out.best_value = -std::numeric_limits<double>::infinity();

    std::vector<double> v_max(k);
    for (std::size_t i = 0; i < k; ++i)
        v_max[i] = opt_.max_velocity_fraction * bounds.width(i);

    for (auto& p : swarm) {
        p.x = bounds.random_point(rng);
        p.v.resize(k);
        for (std::size_t i = 0; i < k; ++i)
            p.v[i] = rng.uniform(-v_max[i], v_max[i]);
        p.best_x = p.x;
        p.best_value = f(p.x);
        ++out.evaluations;
        if (p.best_value > out.best_value) {
            out.best_value = p.best_value;
            out.best_x = p.x;
        }
    }

    std::size_t stall = 0;
    for (std::size_t it = 0; it < opt_.iterations; ++it) {
        ++out.iterations;
        const double before = out.best_value;
        for (auto& p : swarm) {
            for (std::size_t i = 0; i < k; ++i) {
                p.v[i] = opt_.inertia * p.v[i] +
                         opt_.cognitive * rng.uniform() * (p.best_x[i] - p.x[i]) +
                         opt_.social * rng.uniform() * (out.best_x[i] - p.x[i]);
                p.v[i] = std::clamp(p.v[i], -v_max[i], v_max[i]);
                p.x[i] = std::clamp(p.x[i] + p.v[i], bounds.lo[i], bounds.hi[i]);
            }
            const double value = f(p.x);
            ++out.evaluations;
            if (value > p.best_value) {
                p.best_value = value;
                p.best_x = p.x;
                if (value > out.best_value) {
                    out.best_value = value;
                    out.best_x = p.x;
                }
            }
        }
        if (out.best_value > before + opt_.stall_tolerance) {
            stall = 0;
        } else if (++stall >= opt_.stall_iterations) {
            out.converged = true;
            break;
        }
    }
    return out;
}

opt_result differential_evolution::maximize(const objective_fn& f,
                                            const box_bounds& bounds,
                                            numeric::rng& rng) const {
    bounds.validate();
    if (opt_.population < 4)
        throw std::invalid_argument("differential_evolution: need population >= 4");
    const std::size_t k = bounds.dimension();
    const std::size_t np = opt_.population;

    opt_result out;
    out.algorithm = name();
    out.best_value = -std::numeric_limits<double>::infinity();

    std::vector<numeric::vec> pop(np);
    std::vector<double> value(np);
    for (std::size_t i = 0; i < np; ++i) {
        pop[i] = bounds.random_point(rng);
        value[i] = f(pop[i]);
        ++out.evaluations;
        if (value[i] > out.best_value) {
            out.best_value = value[i];
            out.best_x = pop[i];
        }
    }

    std::size_t stall = 0;
    for (std::size_t gen = 0; gen < opt_.generations; ++gen) {
        ++out.iterations;
        const double before = out.best_value;
        for (std::size_t i = 0; i < np; ++i) {
            // DE/rand/1: three distinct donors, none equal to i.
            std::size_t a, b, c;
            do { a = rng.uniform_index(np); } while (a == i);
            do { b = rng.uniform_index(np); } while (b == i || b == a);
            do { c = rng.uniform_index(np); } while (c == i || c == a || c == b);

            numeric::vec trial = pop[i];
            const std::size_t forced = rng.uniform_index(k);
            for (std::size_t d = 0; d < k; ++d) {
                if (d == forced || rng.uniform() < opt_.crossover_prob) {
                    const double mutant =
                        pop[a][d] +
                        opt_.differential_weight * (pop[b][d] - pop[c][d]);
                    trial[d] = std::clamp(mutant, bounds.lo[d], bounds.hi[d]);
                }
            }
            const double trial_value = f(trial);
            ++out.evaluations;
            if (trial_value >= value[i]) {
                pop[i] = std::move(trial);
                value[i] = trial_value;
                if (trial_value > out.best_value) {
                    out.best_value = trial_value;
                    out.best_x = pop[i];
                }
            }
        }
        if (out.best_value > before + opt_.stall_tolerance) {
            stall = 0;
        } else if (++stall >= opt_.stall_generations) {
            out.converged = true;
            break;
        }
    }
    return out;
}

}  // namespace ehdse::opt
