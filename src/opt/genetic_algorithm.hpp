// Real-coded genetic algorithm — the second global optimiser the paper
// applies to the fitted response surface.
//
// Standard machinery: tournament selection, blend (BLX-alpha) crossover,
// per-gene gaussian mutation with box clamping, elitism, and early stop on
// a stagnating best value.
#pragma once

#include "opt/optimizer.hpp"

namespace ehdse::opt {

struct ga_options {
    std::size_t population = 60;
    std::size_t generations = 200;
    std::size_t tournament_size = 3;
    double crossover_prob = 0.9;
    double blx_alpha = 0.35;          ///< blend crossover expansion factor
    double mutation_prob = 0.15;      ///< per gene
    double mutation_sigma_fraction = 0.1;  ///< of box width
    std::size_t elite_count = 2;
    std::size_t stall_generations = 40;    ///< early stop window
    double stall_tolerance = 1e-10;
};

class genetic_algorithm final : public optimizer {
public:
    explicit genetic_algorithm(ga_options options = {}) : opt_(options) {}

    std::string name() const override { return "genetic-algorithm"; }

    opt_result maximize(const objective_fn& f, const box_bounds& bounds,
                        numeric::rng& rng) const override;

private:
    ga_options opt_;
};

}  // namespace ehdse::opt
