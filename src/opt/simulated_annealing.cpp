#include "opt/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ehdse::opt {

opt_result simulated_annealing::maximize(const objective_fn& f,
                                         const box_bounds& bounds,
                                         numeric::rng& rng) const {
    bounds.validate();
    const std::size_t k = bounds.dimension();

    opt_result out;
    out.algorithm = name();

    // Calibrate the temperature scale from the objective's sampled spread so
    // sa_options::initial_temperature is dimensionless across problems.
    double spread = 0.0;
    {
        double lo = 0.0, hi = 0.0;
        for (std::size_t s = 0; s < opt_.calibration_samples; ++s) {
            const double v = f(bounds.random_point(rng));
            ++out.evaluations;
            if (s == 0) lo = hi = v;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        spread = hi - lo;
    }
    if (spread <= 0.0) spread = 1.0;

    numeric::vec x = bounds.random_point(rng);
    double fx = f(x);
    ++out.evaluations;
    out.best_x = x;
    // A non-finite objective (NaN harvest, failed run) must not poison the
    // incumbent: every comparison against NaN is false, so an unguarded
    // assignment here would freeze best_value for the whole anneal.
    out.best_value =
        std::isfinite(fx) ? fx : -std::numeric_limits<double>::infinity();

    double temperature = opt_.initial_temperature * spread;
    const double t_floor = opt_.min_temperature * spread;
    double step_fraction = opt_.initial_step_fraction;

    for (std::size_t epoch = 0; epoch < opt_.max_epochs; ++epoch) {
        ++out.iterations;
        std::size_t accepted = 0;
        for (std::size_t s = 0; s < opt_.steps_per_epoch; ++s) {
            numeric::vec y = x;
            for (std::size_t i = 0; i < k; ++i)
                y[i] += rng.normal(0.0, step_fraction * bounds.width(i));
            y = bounds.clamp(std::move(y));
            const double fy = f(y);
            ++out.evaluations;
            ++out.proposed_moves;
            // Non-finite proposals are always rejected; a non-finite current
            // point is always abandoned for a finite proposal. The
            // finite/finite path is untouched so clean runs draw the exact
            // same rng sequence as before.
            bool accept;
            if (!std::isfinite(fy)) {
                accept = false;
            } else if (!std::isfinite(fx)) {
                accept = true;
            } else {
                const double delta = fy - fx;  // maximisation: improvement is positive
                accept = delta >= 0.0 || rng.uniform() < std::exp(delta / temperature);
            }
            if (accept) {
                x = std::move(y);
                fx = fy;
                ++accepted;
                if (fx > out.best_value) {
                    out.best_value = fx;
                    out.best_x = x;
                }
            }
        }
        out.accepted_moves += accepted;
        out.trajectory.push_back(out.best_value);
        temperature *= opt_.cooling_rate;
        // Shrink the neighbourhood as acceptance falls; keeps late epochs local.
        const double accept_rate =
            static_cast<double>(accepted) / static_cast<double>(opt_.steps_per_epoch);
        step_fraction = std::max(opt_.min_step_fraction,
                                 step_fraction * (accept_rate > 0.4 ? 1.05 : 0.90));
        if (temperature < t_floor) {
            out.converged = true;
            break;
        }
    }
    return out;
}

}  // namespace ehdse::opt
