// Hooke–Jeeves pattern search with multistart — a deterministic polling
// baseline for the optimiser ablation bench.
#pragma once

#include "opt/optimizer.hpp"

namespace ehdse::opt {

struct ps_options {
    std::size_t restarts = 8;
    std::size_t max_iterations = 2000;  ///< polls per start
    double initial_step_fraction = 0.25;
    double min_step_fraction = 1e-6;
    double contraction = 0.5;
};

class pattern_search final : public optimizer {
public:
    explicit pattern_search(ps_options options = {}) : opt_(options) {}

    std::string name() const override { return "pattern-search"; }

    opt_result maximize(const objective_fn& f, const box_bounds& bounds,
                        numeric::rng& rng) const override;

private:
    ps_options opt_;
};

/// Pure random sampling — the weakest baseline, bounding what "no strategy"
/// achieves with the same evaluation budget.
struct rs_options {
    std::size_t evaluations = 5000;
};

class random_search final : public optimizer {
public:
    explicit random_search(rs_options options = {}) : opt_(options) {}

    std::string name() const override { return "random-search"; }

    opt_result maximize(const objective_fn& f, const box_bounds& bounds,
                        numeric::rng& rng) const override;

private:
    rs_options opt_;
};

}  // namespace ehdse::opt
