#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ehdse::opt {

namespace {

struct vertex {
    numeric::vec x;
    double value = 0.0;
};

}  // namespace

opt_result nelder_mead::maximize(const objective_fn& f, const box_bounds& bounds,
                                 numeric::rng& rng) const {
    bounds.validate();
    const std::size_t k = bounds.dimension();

    opt_result out;
    out.algorithm = name();
    out.best_value = -std::numeric_limits<double>::infinity();

    for (std::size_t restart = 0; restart < opt_.restarts; ++restart) {
        // Initial simplex: random anchor plus one offset vertex per axis.
        std::vector<vertex> simplex(k + 1);
        simplex[0].x = bounds.random_point(rng);
        for (std::size_t i = 0; i < k; ++i) {
            simplex[i + 1].x = simplex[0].x;
            const double edge = opt_.initial_scale * bounds.width(i);
            // Flip direction if the offset would leave the box.
            double& xi = simplex[i + 1].x[i];
            xi = (xi + edge <= bounds.hi[i]) ? xi + edge : xi - edge;
        }
        for (auto& v : simplex) {
            v.x = bounds.clamp(std::move(v.x));
            v.value = f(v.x);
            ++out.evaluations;
        }

        for (std::size_t it = 0; it < opt_.max_iterations; ++it) {
            ++out.iterations;
            // Best value first (we maximise).
            std::sort(simplex.begin(), simplex.end(),
                      [](const vertex& a, const vertex& b) { return a.value > b.value; });
            if (simplex.front().value - simplex.back().value < opt_.tolerance) {
                out.converged = true;
                break;
            }

            // Centroid of all but the worst vertex.
            numeric::vec centroid(k, 0.0);
            for (std::size_t v = 0; v < k; ++v)
                centroid = numeric::add(centroid, simplex[v].x);
            centroid = numeric::scale(centroid, 1.0 / static_cast<double>(k));
            vertex& worst = simplex.back();

            auto probe = [&](double coeff) {
                vertex cand;
                cand.x = bounds.clamp(
                    numeric::axpy(centroid, coeff, numeric::sub(centroid, worst.x)));
                cand.value = f(cand.x);
                ++out.evaluations;
                return cand;
            };

            const vertex reflected = probe(opt_.reflection);
            if (reflected.value > simplex.front().value) {
                const vertex expanded = probe(opt_.expansion);
                worst = expanded.value > reflected.value ? expanded : reflected;
            } else if (reflected.value > simplex[k - 1].value) {
                worst = reflected;
            } else {
                const vertex contracted = probe(-opt_.contraction);
                if (contracted.value > worst.value) {
                    worst = contracted;
                } else {
                    // Shrink towards the best vertex.
                    for (std::size_t v = 1; v <= k; ++v) {
                        simplex[v].x = bounds.clamp(numeric::axpy(
                            simplex[0].x, opt_.shrink,
                            numeric::sub(simplex[v].x, simplex[0].x)));
                        simplex[v].value = f(simplex[v].x);
                        ++out.evaluations;
                    }
                }
            }
        }

        std::sort(simplex.begin(), simplex.end(),
                  [](const vertex& a, const vertex& b) { return a.value > b.value; });
        if (simplex.front().value > out.best_value) {
            out.best_value = simplex.front().value;
            out.best_x = simplex.front().x;
        }
    }
    return out;
}

}  // namespace ehdse::opt
