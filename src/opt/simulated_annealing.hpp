// Simulated annealing with geometric cooling and adaptive step scaling —
// one of the two global optimisers the paper runs on the fitted RSM.
//
// Neighbourhood: gaussian perturbation of every coordinate, scaled by the
// box width and the current temperature fraction, clamped into the box.
// Acceptance: Metropolis on the (maximised) objective. Reheat-free; the
// best-ever point is tracked separately from the current state.
#pragma once

#include "opt/optimizer.hpp"

namespace ehdse::opt {

struct sa_options {
    double initial_temperature = 1.0;   ///< in units of typical objective spread
    double cooling_rate = 0.95;         ///< geometric factor per epoch
    double min_temperature = 1e-6;      ///< stop when T falls below
    std::size_t steps_per_epoch = 50;
    std::size_t max_epochs = 400;
    double initial_step_fraction = 0.5; ///< of box width, shrinks with T
    double min_step_fraction = 1e-3;
    /// Calibrate T0 by multiplying with the sampled objective spread so the
    /// first epoch accepts most moves (temperature in objective units).
    std::size_t calibration_samples = 32;
};

class simulated_annealing final : public optimizer {
public:
    explicit simulated_annealing(sa_options options = {}) : opt_(options) {}

    std::string name() const override { return "simulated-annealing"; }

    opt_result maximize(const objective_fn& f, const box_bounds& bounds,
                        numeric::rng& rng) const override;

private:
    sa_options opt_;
};

}  // namespace ehdse::opt
